package jsontiles

// Multi-segment table directories: a Table can live in a directory of
// immutable segment files catalogued by a crash-safe manifest.
// Flush appends a new segment — O(new data), never a rewrite — and a
// size-tiered compactor folds small segments into larger ones, in the
// background or on demand via Compact. See DESIGN.md §6 for the
// on-disk story and crash-recovery invariants.

import (
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/storage"
	"repro/internal/tile"
)

// OpenDir opens (or creates) a multi-segment table rooted at dir.
// The directory holds one segment file per flush plus a MANIFEST
// cataloguing the live segments; recovery runs on open, removing
// half-written temporaries and segment files whose manifest commit
// never happened (a crash between segment write and manifest rename
// leaves exactly such a file). Queries scan the union of live
// segments with per-segment zone-map and bloom skipping; Insert +
// Flush append new segments; Compact (and, unless disabled, a
// background compactor) keeps the segment count bounded.
//
// The returned table holds open file handles; call Close when done.
// Concurrent queries during Flush, Compact, and Close are safe — each
// query pins the segment generation it started with.
//
// With opts.Store set, the table lives on that block store instead of
// the local filesystem and dir is ignored (see OpenStore).
func OpenDir(name, dir string, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	if opts.Store != nil {
		return OpenStore(name, opts.Store, opts)
	}
	maybeServeDebug(opts.DebugAddr)
	pool := bufpool.New(opts.CacheBytes)
	fanIn := opts.CompactFanIn
	auto := fanIn >= 0
	if fanIn < 0 {
		fanIn = 0 // explicit Compact still uses the default fan-in
	}
	dt, err := storage.OpenDirTable(name, dir, pool, opts.loaderConfig(), fanIn, auto)
	if err != nil {
		return nil, err
	}
	return &Table{name: name, opts: opts, rel: dt, metrics: &tile.Metrics{}}, nil
}

// Compact runs size-tiered compaction to completion on a directory-
// backed table, returning how many merge rounds ran. Queries running
// concurrently keep reading the generation they started with; the
// files they pin are deleted only after the last reader finishes.
// Tables not backed by a directory have nothing to compact and
// return 0.
func (t *Table) Compact() (int, error) {
	if dt, ok := t.rel.(*storage.DirTable); ok {
		return dt.Compact()
	}
	return 0, nil
}

// SetTenantQuota caps how many buffer-pool payload bytes queries
// running under the named tenant (obs.WithTenant) may keep resident
// in this table's pool. Exceeding the quota evicts the tenant's own
// unpinned blocks first, so one tenant's working set cannot push out
// everyone else's. Quota 0 removes the cap. A no-op for table kinds
// without a buffer pool (in-memory tables).
func (t *Table) SetTenantQuota(tenant string, quota int64) {
	if pp, ok := t.rel.(interface{ Pool() *bufpool.Pool }); ok {
		if p := pp.Pool(); p != nil {
			p.SetQuota(tenant, quota)
		}
	}
}

// NumSegments returns the number of live segment files backing a
// directory-backed table (1-per-flush until compaction folds them).
// Other table kinds return 0.
func (t *Table) NumSegments() int {
	if dt, ok := t.rel.(*storage.DirTable); ok {
		return dt.NumSegments()
	}
	return 0
}

// SizeBytes returns the total on-disk size of the live segment files
// of a directory-backed table. Other table kinds return 0.
func (t *Table) SizeBytes() int64 {
	if dt, ok := t.rel.(*storage.DirTable); ok {
		return int64(dt.SizeBytes())
	}
	return 0
}

// AppendTable appends another table's tiles to a directory-backed
// table as one new segment (src is flushed first and left unchanged).
// It is how bulk-loaded in-memory tables move into a directory:
//
//	mem, _ := jsontiles.LoadReader("t", f, opts)
//	dir, _ := jsontiles.OpenDir("t", path, opts)
//	err := dir.AppendTable(mem)
func (t *Table) AppendTable(src *Table) error {
	dt, ok := t.rel.(*storage.DirTable)
	if !ok {
		return fmt.Errorf("jsontiles: AppendTable target %q is not directory-backed", t.name)
	}
	if err := src.Flush(); err != nil {
		return err
	}
	if src.rel == nil || src.rel.NumRows() == 0 {
		return nil
	}
	ti, ok := src.rel.(storage.TileIntrospector)
	if !ok {
		return fmt.Errorf("jsontiles: AppendTable source %q is not tile-backed", src.name)
	}
	return dt.AppendTiles(ti.Tiles(), src.rel.Stats())
}
