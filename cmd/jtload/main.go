// Command jtload ingests a newline-delimited JSON file into JSON tiles
// and prints an extraction report: tiles, materialized columns,
// statistics, and the Table-6-style storage accounting.
//
//	jtgen -workload twitter | jtload
//	jtload -f tweets.jsonl -tilesize 1024
//	jtload -f tweets.jsonl -o tweets.seg    # persist to a segment file
//	jtload -f tweets.jsonl -dir tweets.jt   # append to a table directory
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	jsontiles "repro"
)

func main() {
	file := flag.String("f", "-", "input file ('-' = stdin)")
	tileSize := flag.Int("tilesize", 1024, "tuples per tile")
	partSize := flag.Int("partsize", 8, "tiles per reordering partition")
	threshold := flag.Float64("threshold", 0.6, "extraction threshold")
	noReorder := flag.Bool("no-reorder", false, "disable partition reordering")
	out := flag.String("o", "", "write the loaded table to a segment file at this path")
	dir := flag.String("dir", "", "append the input to a multi-segment table directory (created if absent)")
	compact := flag.Bool("compact", false, "with -dir: compact the table after appending")
	store := flag.String("store", "fs", "with -dir: block store backing the table: fs (direct filesystem), mem (in-process, lost on exit), fakes3 (simulated object store over -dir)")
	storeLatency := flag.Duration("store-latency", 0, "with -store fakes3: simulated per-request round trip")
	verbose := flag.Bool("v", false, "print per-tile extracted columns")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/queries, /debug/trace, and pprof on this address")
	flag.Parse()

	if *debugAddr != "" {
		addr, err := jsontiles.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtload:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "jtload: debug server on http://%s\n", addr)
	}

	opts := jsontiles.DefaultOptions()
	opts.TileSize = *tileSize
	opts.PartitionSize = *partSize
	opts.ExtractionThreshold = *threshold
	opts.Reorder = !*noReorder

	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtload:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	tbl, err := jsontiles.LoadReader("input", in, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jtload:", err)
		os.Exit(1)
	}

	info := tbl.StorageInfo()
	fmt.Printf("documents:          %d\n", tbl.NumRows())
	fmt.Printf("tiles:              %d (tile size %d, partition %d, threshold %.0f%%)\n",
		info.NumTiles, *tileSize, *partSize, *threshold*100)
	fmt.Printf("extracted columns:  %d total", info.ExtractedColumns)
	if info.NumTiles > 0 {
		fmt.Printf(" (%.1f per tile)", float64(info.ExtractedColumns)/float64(info.NumTiles))
	}
	fmt.Println()
	fmt.Printf("binary JSON:        %d bytes\n", info.BinaryJSONBytes)
	fmt.Printf("tile columns:       %d bytes (+%.1f%%)\n", info.TileColumnBytes,
		pct(info.TileColumnBytes, info.BinaryJSONBytes))
	fmt.Printf("LZ4 tile columns:   %d bytes (+%.1f%%)\n", info.CompressedTileColumnBytes,
		pct(info.CompressedTileColumnBytes, info.BinaryJSONBytes))

	if *out != "" {
		if err := tbl.WriteSegment(*out); err != nil {
			fmt.Fprintln(os.Stderr, "jtload:", err)
			os.Exit(1)
		}
		fi, err := os.Stat(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtload:", err)
			os.Exit(1)
		}
		fmt.Printf("segment:            %s (%d bytes)\n", *out, fi.Size())
	}

	if *dir != "" {
		dopts := opts
		dopts.CompactFanIn = -1 // compaction only on request below
		dopts.Store, err = storeFor(*store, *dir, *storeLatency)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtload:", err)
			os.Exit(1)
		}
		dt, err := jsontiles.OpenDir("input", *dir, dopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtload:", err)
			os.Exit(1)
		}
		if err := dt.AppendTable(tbl); err != nil {
			fmt.Fprintln(os.Stderr, "jtload:", err)
			os.Exit(1)
		}
		if *compact {
			if _, err := dt.Compact(); err != nil {
				fmt.Fprintln(os.Stderr, "jtload:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("directory:          %s (%d segments, %d rows, %d bytes)\n",
			*dir, dt.NumSegments(), dt.NumRows(), dt.SizeBytes())
		if err := dt.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "jtload:", err)
			os.Exit(1)
		}
	}

	st := tbl.Stats()
	fmt.Printf("\nmost frequent key paths:\n")
	paths := st.TrackedPaths()
	if len(paths) > 15 {
		paths = paths[:15]
	}
	for _, p := range paths {
		fmt.Printf("  %-40s count=%-8d distinct≈%.0f\n", p, st.PathCount(p), st.DistinctCount(p))
	}

	if *verbose {
		fmt.Printf("\nper-tile extraction:\n")
		for i, cols := range tbl.ExtractedPaths() {
			fmt.Printf("  tile %d: %v\n", i, cols)
		}
	}
}

// storeFor builds the BlockStore selected by -store, rooted at dir.
// "fs" returns nil — the table uses the direct filesystem path. The
// fakes3 store persists through an FS store over dir, so tables loaded
// through it reopen in later processes (jtquery/jtserve -store fakes3).
func storeFor(kind, dir string, latency time.Duration) (jsontiles.BlockStore, error) {
	switch kind {
	case "", "fs":
		return nil, nil
	case "mem":
		return jsontiles.NewMemStore(), nil
	case "fakes3":
		inner, err := jsontiles.NewFSStore(dir)
		if err != nil {
			return nil, err
		}
		return jsontiles.NewFakeS3Store(inner, jsontiles.FakeS3Options{Latency: latency}), nil
	}
	return nil, fmt.Errorf("unknown -store %q (want fs, mem, or fakes3)", kind)
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}
