package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestCheckAcceptsRegistryOutput(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("queries_run").Add(3)
	r.Gauge("bufpool_bytes").Set(4096)
	h := r.Histogram("query_wall_seconds", obs.DurationBuckets)
	h.Observe(0.01)
	h.Observe(2)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	n, err := check(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("registry output rejected: %v\n%s", err, sb.String())
	}
	if n != 3 {
		t.Fatalf("metrics = %d, want 3", n)
	}
}

func TestCheckRejectsMissingType(t *testing.T) {
	_, err := check(strings.NewReader("# TYPE a counter\na 1\nb 2\n"))
	if err == nil || !strings.Contains(err.Error(), "no TYPE line") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRejectsInfMismatch(t *testing.T) {
	in := `# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 2
h_sum 3
h_count 5
`
	_, err := check(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "+Inf") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRejectsNonCumulativeBuckets(t *testing.T) {
	in := `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 3
h_count 5
`
	_, err := check(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "cumulative") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRejectsMissingSumCount(t *testing.T) {
	in := `# TYPE h histogram
h_bucket{le="+Inf"} 0
h_count 0
`
	_, err := check(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "_sum") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRejectsNegativeCounter(t *testing.T) {
	_, err := check(strings.NewReader("# TYPE c counter\nc -1\n"))
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("err = %v", err)
	}
}
