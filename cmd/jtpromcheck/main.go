// Command jtpromcheck validates Prometheus text exposition format on
// stdin — the CI smoke check behind the /metrics endpoint:
//
//	curl -s localhost:9811/metrics | jtpromcheck
//
// It verifies that every sample belongs to a metric announced by a
// "# TYPE" line, that histogram series are complete (_bucket with a
// +Inf bound, _sum, _count), that bucket counts are cumulative
// (non-decreasing) with the +Inf bucket equal to _count, and that
// counter and histogram-count samples are not negative.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	metrics, err := check(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jtpromcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("OK: %d metrics\n", metrics)
}

// sample is one parsed line: name, optional le label, value.
type sample struct {
	name  string
	le    string
	value float64
}

// check validates the exposition text and returns the number of
// metrics (TYPE declarations) seen.
func check(r io.Reader) (int, error) {
	types := map[string]string{} // metric -> counter|gauge|histogram
	var samples []sample

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, kind := fields[2], fields[3]
				if kind != "counter" && kind != "gauge" && kind != "histogram" {
					return 0, fmt.Errorf("line %d: unknown type %q for %s", lineNo, kind, name)
				}
				if prev, ok := types[name]; ok && prev != kind {
					return 0, fmt.Errorf("line %d: %s re-declared as %s (was %s)", lineNo, name, kind, prev)
				}
				types[name] = kind
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return 0, fmt.Errorf("line %d: %v", lineNo, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if len(types) == 0 {
		return 0, fmt.Errorf("no TYPE lines found")
	}

	// Every sample must belong to a declared metric. Histogram series
	// map back to their base name by stripping the suffix.
	hist := map[string]*histState{}
	for _, s := range samples {
		base, part := s.name, ""
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(s.name, suffix)
			if trimmed != s.name && types[trimmed] == "histogram" {
				base, part = trimmed, suffix
				break
			}
		}
		kind, ok := types[base]
		if !ok {
			return 0, fmt.Errorf("sample %s has no TYPE line", s.name)
		}
		switch kind {
		case "counter":
			if s.value < 0 {
				return 0, fmt.Errorf("counter %s is negative (%g)", s.name, s.value)
			}
		case "histogram":
			if part == "" {
				return 0, fmt.Errorf("histogram %s has a bare sample %s", base, s.name)
			}
			h := hist[base]
			if h == nil {
				h = &histState{}
				hist[base] = h
			}
			switch part {
			case "_bucket":
				if s.le == "" {
					return 0, fmt.Errorf("%s without le label", s.name)
				}
				h.buckets = append(h.buckets, s)
			case "_sum":
				h.sum, h.hasSum = s.value, true
			case "_count":
				h.count, h.hasCount = s.value, true
			}
		}
	}

	// Histogram invariants.
	for name, kind := range types {
		if kind != "histogram" {
			continue
		}
		h := hist[name]
		if h == nil {
			return 0, fmt.Errorf("histogram %s has no samples", name)
		}
		if !h.hasSum || !h.hasCount {
			return 0, fmt.Errorf("histogram %s missing _sum or _count", name)
		}
		if h.count < 0 {
			return 0, fmt.Errorf("histogram %s count is negative (%g)", name, h.count)
		}
		if len(h.buckets) == 0 {
			return 0, fmt.Errorf("histogram %s has no _bucket series", name)
		}
		if err := checkBuckets(name, h.buckets, h.count); err != nil {
			return 0, err
		}
	}
	return len(types), nil
}

type histState struct {
	buckets          []sample
	sum, count       float64
	hasSum, hasCount bool
}

// checkBuckets verifies the bucket series is cumulative in bound
// order and ends in a +Inf bucket equal to _count.
func checkBuckets(name string, buckets []sample, count float64) error {
	type bb struct {
		bound float64
		value float64
	}
	parsed := make([]bb, 0, len(buckets))
	sawInf := false
	for _, b := range buckets {
		if b.le == "+Inf" {
			sawInf = true
			if b.value != count {
				return fmt.Errorf("histogram %s: le=\"+Inf\" bucket %g != count %g", name, b.value, count)
			}
			parsed = append(parsed, bb{bound: maxFloat, value: b.value})
			continue
		}
		bound, err := strconv.ParseFloat(b.le, 64)
		if err != nil {
			return fmt.Errorf("histogram %s: bad le %q", name, b.le)
		}
		parsed = append(parsed, bb{bound: bound, value: b.value})
	}
	if !sawInf {
		return fmt.Errorf("histogram %s lacks a +Inf bucket", name)
	}
	sort.Slice(parsed, func(i, j int) bool { return parsed[i].bound < parsed[j].bound })
	prev := 0.0
	for _, b := range parsed {
		if b.value < prev {
			return fmt.Errorf("histogram %s: bucket counts not cumulative at le=%g (%g < %g)",
				name, b.bound, b.value, prev)
		}
		prev = b.value
	}
	return nil
}

const maxFloat = 1.797693134862315708145274237317043567981e+308

// parseSample splits `name[{le="..."}] value` into its parts. Only the
// le label matters to the checks; other labels are tolerated.
func parseSample(line string) (sample, error) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return sample{}, fmt.Errorf("malformed sample %q", line)
	}
	head, valStr := line[:sp], line[sp+1:]
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return sample{}, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s := sample{name: head, value: v}
	if i := strings.IndexByte(head, '{'); i >= 0 {
		if !strings.HasSuffix(head, "}") {
			return sample{}, fmt.Errorf("unclosed label set in %q", line)
		}
		s.name = head[:i]
		labels := head[i+1 : len(head)-1]
		for _, kv := range strings.Split(labels, ",") {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				return sample{}, fmt.Errorf("malformed label %q in %q", kv, line)
			}
			key := strings.TrimSpace(kv[:eq])
			val := strings.TrimSpace(kv[eq+1:])
			uq, err := strconv.Unquote(val)
			if err != nil {
				return sample{}, fmt.Errorf("label %s not quoted in %q", key, line)
			}
			if key == "le" {
				s.le = uq
			}
		}
	}
	if s.name == "" {
		return sample{}, fmt.Errorf("empty metric name in %q", line)
	}
	return s, nil
}
