// Command jtbench reproduces the paper's evaluation: one experiment
// per table and figure of §6. Run a single experiment by id, several,
// or all of them:
//
//	jtbench -list
//	jtbench tab1
//	jtbench -scale 0.02 -repeats 5 fig9 fig10
//	jtbench all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	jsontiles "repro"
	"repro/internal/bench"
)

func main() {
	opts := bench.DefaultOptions()
	flag.Float64Var(&opts.Scale, "scale", opts.Scale, "TPC-H scale factor (sizes all workloads)")
	flag.IntVar(&opts.Workers, "workers", 0, "scan/load parallelism (0 = all CPUs)")
	flag.IntVar(&opts.Repeats, "repeats", opts.Repeats, "timed repetitions per measurement (median reported)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/queries, /debug/trace, and pprof on this address")
	morselMin := flag.Float64("morsel-min-speedup", 0,
		"CI gate: require at least this groupby speedup at 4 workers vs 1 (0 = off; skipped on <4 cores)")
	ingestMin := flag.Float64("ingest-min-speedup", 0,
		"CI gate: require at least this tape-vs-tree tiles load speedup in docs/sec (0 = off)")
	blockstoreMin := flag.Float64("blockstore-min-coalesce", 0,
		"CI gate: require at least this request-count reduction from coalesced remote reads vs one-per-block (0 = off)")
	flag.Parse()

	if *debugAddr != "" {
		addr, err := jsontiles.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "jtbench: debug server on http://%s\n", addr)
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		return
	}
	if *morselMin > 0 {
		ctx := bench.NewContext(opts)
		if err := bench.MorselSmoke(os.Stdout, ctx, *morselMin); err != nil {
			fmt.Fprintln(os.Stderr, "jtbench:", err)
			os.Exit(1)
		}
		if flag.NArg() == 0 && *ingestMin <= 0 && *blockstoreMin <= 0 {
			return
		}
	}
	if *ingestMin > 0 {
		ctx := bench.NewContext(opts)
		if err := bench.IngestSmoke(os.Stdout, ctx, *ingestMin); err != nil {
			fmt.Fprintln(os.Stderr, "jtbench:", err)
			os.Exit(1)
		}
		if flag.NArg() == 0 && *blockstoreMin <= 0 {
			return
		}
	}
	if *blockstoreMin > 0 {
		ctx := bench.NewContext(opts)
		if err := bench.BlockstoreSmoke(os.Stdout, ctx, *blockstoreMin); err != nil {
			fmt.Fprintln(os.Stderr, "jtbench:", err)
			os.Exit(1)
		}
		if flag.NArg() == 0 {
			return
		}
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: jtbench [flags] <experiment-id>... | all   (see -list)")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	ctx := bench.NewContext(opts)
	for _, id := range ids {
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "jtbench: unknown experiment %q (see -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		start := time.Now()
		base := ctx.Metrics.Snapshot()
		if err := e.Run(os.Stdout, ctx); err != nil {
			fmt.Fprintf(os.Stderr, "jtbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if delta := ctx.Metrics.Snapshot().Sub(base); delta.TilesBuilt > 0 {
			fmt.Printf("-- load breakdown: %s --\n", delta)
		}
		fmt.Printf("-- %s done in %s --\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
