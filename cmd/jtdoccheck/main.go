// Command jtdoccheck fails when code and docs drift apart. It is a CI
// step, not a linter: the rules are exactly the repo's documentation
// invariants, so a failure means a doc edit is part of the change.
//
// Checks:
//
//  1. Every instrument registered in internal/obs (Default.Counter,
//     Default.Gauge, Default.Histogram) is documented in DESIGN.md's
//     observability-mapping section (§7).
//  2. Every BENCH_*.json artifact committed at the repo root is
//     referenced in EXPERIMENTS.md.
//
//	jtdoccheck            # from the repo root
//	jtdoccheck -root ..   # from elsewhere
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var instrumentRE = regexp.MustCompile(`Default\.(Counter|Gauge|Histogram)\("([a-z0-9_]+)"`)

// obsInstruments scans the obs package source for registered
// instrument names.
func obsInstruments(obsDir string) (map[string]string, error) {
	files, err := filepath.Glob(filepath.Join(obsDir, "*.go"))
	if err != nil {
		return nil, err
	}
	names := map[string]string{} // name -> kind
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for _, m := range instrumentRE.FindAllStringSubmatch(string(b), -1) {
			names[m[2]] = strings.ToLower(m[1])
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no instruments found under %s — wrong -root?", obsDir)
	}
	return names, nil
}

// observabilitySection extracts DESIGN.md's §7 (observability mapping)
// region: from its heading to the next top-level section or EOF.
func observabilitySection(design []byte) (string, error) {
	lines := strings.Split(string(design), "\n")
	start := -1
	for i, l := range lines {
		if start < 0 && strings.HasPrefix(l, "## 7.") {
			start = i
			continue
		}
		if start >= 0 && strings.HasPrefix(l, "## ") {
			return strings.Join(lines[start:i], "\n"), nil
		}
	}
	if start < 0 {
		return "", fmt.Errorf("DESIGN.md has no '## 7.' observability section")
	}
	return strings.Join(lines[start:], "\n"), nil
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	var problems []string

	// 1. Every obs instrument appears in DESIGN.md §7.
	names, err := obsInstruments(filepath.Join(*root, "internal", "obs"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jtdoccheck:", err)
		os.Exit(1)
	}
	design, err := os.ReadFile(filepath.Join(*root, "DESIGN.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jtdoccheck:", err)
		os.Exit(1)
	}
	section, err := observabilitySection(design)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jtdoccheck:", err)
		os.Exit(1)
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		if !strings.Contains(section, "`"+n+"`") {
			problems = append(problems, fmt.Sprintf(
				"obs %s %q is not documented in DESIGN.md §7 (add a `| `%s` | ... |` row)", names[n], n, n))
		}
	}

	// 2. Every committed BENCH_*.json is referenced in EXPERIMENTS.md.
	benches, err := filepath.Glob(filepath.Join(*root, "BENCH_*.json"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jtdoccheck:", err)
		os.Exit(1)
	}
	experiments, err := os.ReadFile(filepath.Join(*root, "EXPERIMENTS.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jtdoccheck:", err)
		os.Exit(1)
	}
	for _, b := range benches {
		name := filepath.Base(b)
		if !strings.Contains(string(experiments), name) {
			problems = append(problems, fmt.Sprintf(
				"%s is committed but never referenced in EXPERIMENTS.md", name))
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "jtdoccheck:", p)
		}
		fmt.Fprintf(os.Stderr, "jtdoccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("jtdoccheck: %d instruments documented, %d bench artifacts referenced\n",
		len(names), len(benches))
}
