// Command jtquery runs ad-hoc projection queries with PostgreSQL-style
// JSON access expressions over a newline-delimited JSON file:
//
//	jtgen -workload twitter | jtquery "data->'user'->>'screen_name'" "data->>'retweet_count'::BigInt"
//	jtquery -f reviews.jsonl -where-not-null 0 -limit 10 "data->>'stars'::BigInt"
//	jtquery -f reviews.jsonl -analyze -where-not-null 0 "data->>'stars'::BigInt"
//	jtquery -seg reviews.seg "data->>'stars'::BigInt"   # query a segment file
//	jtquery -dir reviews.jt "data->>'stars'::BigInt"    # query a table directory
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	jsontiles "repro"
	"repro/internal/obs"
)

func main() {
	file := flag.String("f", "-", "input file ('-' = stdin)")
	seg := flag.String("seg", "", "query a segment file written by 'jtload -o' instead of loading JSON")
	dir := flag.String("dir", "", "query a multi-segment table directory written by 'jtload -dir'")
	limit := flag.Int("limit", 20, "max rows to print (0 = all)")
	notNull := flag.Int("where-not-null", -1, "keep rows where this select column is not null")
	tileSize := flag.Int("tilesize", 1024, "tuples per tile")
	workers := flag.Int("workers", 0, "load and scan parallelism (0 = all CPUs)")
	explain := flag.Bool("explain", false, "print the chosen plan without executing")
	analyze := flag.Bool("analyze", false, "execute and print the plan with measured per-operator stats")
	metrics := flag.Bool("metrics", false, "dump the process-wide metrics registry after the query")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/queries, /debug/trace, and pprof on this address")
	serve := flag.Bool("serve", false, "with -debug-addr: keep re-running the query so the debug endpoints stay observable (ctrl-c to stop)")
	slowMS := flag.Int("slow-ms", 0, "log queries slower than this many milliseconds as JSON lines on stderr")
	store := flag.String("store", "fs", "with -dir/-seg: block store serving the bytes: fs (direct filesystem), fakes3 (simulated object store over the same files)")
	storeLatency := flag.Duration("store-latency", 0, "with -store fakes3: simulated per-request round trip")
	storeGap := flag.Int64("store-gap", 0, "coalescing gap in bytes for store reads (0 = default 32KiB, negative disables merging)")
	url := flag.String("url", "", "query a running jtserve instead of local data, e.g. http://localhost:8080 (uses -table, -tenant)")
	table := flag.String("table", "input", "with -url: table name on the server")
	tenant := flag.String("tenant", "", "with -url: tenant identity sent in X-JT-Tenant")
	flag.Parse()

	selects := flag.Args()
	if len(selects) == 0 {
		fmt.Fprintln(os.Stderr, "usage: jtquery [flags] <access-expression>...")
		os.Exit(2)
	}

	if *url != "" {
		runRemote(*url, *table, *tenant, selects, *notNull, *limit)
		return
	}

	if *debugAddr != "" {
		addr, err := jsontiles.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtquery:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "jtquery: debug server on http://%s\n", addr)
	}

	opts := jsontiles.DefaultOptions()
	opts.TileSize = *tileSize
	opts.Workers = *workers
	if *slowMS > 0 {
		opts.SlowQueryThreshold = time.Duration(*slowMS) * time.Millisecond
	}
	opts.StoreReadGap = *storeGap
	var tbl *jsontiles.Table
	var err error
	switch {
	case *dir != "":
		opts.CompactFanIn = -1 // read-only use: no background compaction
		opts.Store, err = storeFor(*store, *dir, *storeLatency)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtquery:", err)
			os.Exit(1)
		}
		tbl, err = jsontiles.OpenDir("input", *dir, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtquery:", err)
			os.Exit(1)
		}
		defer tbl.Close()
	case *seg != "":
		// With a store, the segment object lives under its directory
		// and is addressed by base name.
		object := *seg
		opts.Store, err = storeFor(*store, filepath.Dir(*seg), *storeLatency)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtquery:", err)
			os.Exit(1)
		}
		if opts.Store != nil {
			object = filepath.Base(*seg)
		}
		tbl, err = jsontiles.OpenSegment("input", object, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtquery:", err)
			os.Exit(1)
		}
		defer tbl.Close()
	default:
		in := os.Stdin
		if *file != "-" {
			f, err := os.Open(*file)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jtquery:", err)
				os.Exit(1)
			}
			defer f.Close()
			in = f
		}
		tbl, err = jsontiles.LoadReader("input", in, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtquery:", err)
			os.Exit(1)
		}
	}

	q := tbl.Query(selects...)
	if *notNull >= 0 {
		q = q.WhereNotNull(*notNull)
	}
	if *limit > 0 {
		q = q.Limit(*limit)
	}
	switch {
	case *explain:
		plan, err := q.Explain()
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtquery:", err)
			os.Exit(1)
		}
		fmt.Print(plan)
	case *analyze:
		res, stats, err := q.RunAnalyzed()
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtquery:", err)
			os.Exit(1)
		}
		fmt.Print(res)
		fmt.Printf("(%d rows)\n\n", res.NumRows())
		fmt.Print(stats)
	default:
		res, err := q.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtquery:", err)
			os.Exit(1)
		}
		fmt.Print(res)
		fmt.Printf("(%d rows)\n", res.NumRows())
	}
	if err := tbl.ScanErr(); err != nil {
		fmt.Fprintln(os.Stderr, "jtquery: degraded read:", err)
		os.Exit(1)
	}
	if *metrics {
		fmt.Println()
		if _, err := obs.Default.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "jtquery:", err)
			os.Exit(1)
		}
	}
	if *serve {
		// Keep the process observable: re-run the query forever so
		// /debug/queries has in-flight entries and the histograms keep
		// filling. CI smoke tests and interactive profiling use this.
		fmt.Fprintln(os.Stderr, "jtquery: -serve: re-running query until interrupted")
		for {
			if _, err := q.Run(); err != nil {
				fmt.Fprintln(os.Stderr, "jtquery:", err)
				os.Exit(1)
			}
		}
	}
}

// storeFor builds the BlockStore selected by -store, rooted at dir;
// "fs" returns nil (the direct filesystem path). fakes3 persists
// through an FS store over dir, so data written by `jtload -store
// fakes3` is queryable here. A mem store would always be empty in a
// fresh process, so jtquery does not offer it.
func storeFor(kind, dir string, latency time.Duration) (jsontiles.BlockStore, error) {
	switch kind {
	case "", "fs":
		return nil, nil
	case "fakes3":
		inner, err := jsontiles.NewFSStore(dir)
		if err != nil {
			return nil, err
		}
		return jsontiles.NewFakeS3Store(inner, jsontiles.FakeS3Options{Latency: latency}), nil
	}
	return nil, fmt.Errorf("unknown -store %q (want fs or fakes3)", kind)
}

// remoteEnvelope mirrors the service's query envelope (the subset the
// CLI can express).
type remoteEnvelope struct {
	Table  string        `json:"table"`
	Select []string      `json:"select"`
	Where  []remoteWhere `json:"where,omitempty"`
	Limit  *int          `json:"limit,omitempty"`
}

type remoteWhere struct {
	Col int    `json:"col"`
	Op  string `json:"op"`
}

// runRemote posts the query to a jtserve and streams the NDJSON
// response to stdout.
func runRemote(url, table, tenant string, selects []string, notNull, limit int) {
	env := remoteEnvelope{Table: table, Select: selects}
	if notNull >= 0 {
		env.Where = append(env.Where, remoteWhere{Col: notNull, Op: "not_null"})
	}
	if limit > 0 {
		env.Limit = &limit
	}
	body, err := json.Marshal(env)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jtquery:", err)
		os.Exit(1)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jtquery:", err)
		os.Exit(1)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-JT-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jtquery:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fmt.Fprintf(os.Stderr, "jtquery: server: %s: %s", resp.Status, msg)
		os.Exit(1)
	}
	// Stream the NDJSON lines through verbatim.
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if _, err := io.Copy(out, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, "jtquery:", err)
		os.Exit(1)
	}
}
