// Command jtgen emits the synthetic evaluation workloads as
// newline-delimited JSON on stdout:
//
//	jtgen -workload tpch -scale 0.01 > tpch.jsonl
//	jtgen -workload twitter -n 50000 > tweets.jsonl
//	jtgen -workload yelp | head
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/workload/hackernews"
	"repro/internal/workload/tpch"
	"repro/internal/workload/twitter"
	"repro/internal/workload/yelp"
)

func main() {
	workload := flag.String("workload", "tpch", "tpch | tpch-shuffled | yelp | twitter | twitter-changing | hackernews")
	scale := flag.Float64("scale", 0.01, "TPC-H scale factor")
	n := flag.Int("n", 20000, "document count (twitter, hackernews)")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	var lines [][]byte
	switch *workload {
	case "tpch":
		lines, _ = tpch.Generate(tpch.Config{ScaleFactor: *scale, Seed: *seed})
	case "tpch-shuffled":
		base, _ := tpch.Generate(tpch.Config{ScaleFactor: *scale, Seed: *seed})
		lines = tpch.Shuffle(base, *seed+1)
	case "yelp":
		f := *scale / 0.01
		cfg := yelp.Config{
			Businesses: int(2000 * f), Users: int(4000 * f), Reviews: int(16000 * f),
			Tips: int(4000 * f), Checkins: int(2000 * f), Seed: *seed,
		}
		lines, _ = yelp.Generate(cfg)
	case "twitter":
		lines = twitter.Generate(twitter.Config{Tweets: *n, DeleteRatio: 0.4, Seed: *seed})
	case "twitter-changing":
		lines = twitter.Generate(twitter.Config{Tweets: *n, Changing: true, Seed: *seed})
	case "hackernews":
		lines = hackernews.Generate(*n, false, *seed)
	default:
		fmt.Fprintf(os.Stderr, "jtgen: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()
	for _, l := range lines {
		w.Write(l)
		w.WriteByte('\n')
	}
}
