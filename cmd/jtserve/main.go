// Command jtserve is the query service: it opens one or more table
// directories and serves them over HTTP with admission control and
// per-tenant accounting.
//
//	jtload -dir /data/tweets.jt tweets.jsonl
//	jtserve -dir /data/tweets.jt -addr :8080
//	curl -s -H 'X-JT-Tenant: analytics' -d '{
//	    "table": "tweets",
//	    "select": ["data->>'user'->>'screen_name'", "data->>'retweet_count'::BigInt"],
//	    "where":  [{"col": 1, "op": ">", "value": 100}],
//	    "limit":  10
//	}' http://localhost:8080/query
//
// The response is NDJSON: a {"columns": [...]} header, one JSON array
// per row, and a {"rows": N, "wall_ms": ...} trailer. SIGINT/SIGTERM
// drains in-flight queries (bounded by -drain-timeout), cancels
// stragglers, and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	jsontiles "repro"
	"repro/internal/service"
)

// tenantQuotaFlag accumulates repeated -tenant-quota tenant=bytes
// pairs.
type tenantQuotaFlag map[string]int64

func (f tenantQuotaFlag) String() string { return fmt.Sprint(map[string]int64(f)) }

func (f tenantQuotaFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want tenant=bytes, got %q", s)
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil || n < 0 {
		return fmt.Errorf("bad quota in %q", s)
	}
	f[name] = n
	return nil
}

func main() {
	var dirs stringsFlag
	flag.Var(&dirs, "dir", "table directory to serve (repeatable; table name = directory base name without .jt)")
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 4, "queries executing at once")
	queueDepth := flag.Int("queue-depth", 0, "admission queue depth (0 = 2×max-concurrent)")
	queueTimeout := flag.Duration("queue-timeout", 2*time.Second, "max wait for an execution slot")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline")
	workers := flag.Int("workers", 0, "per-query scan parallelism (0 = all CPUs)")
	cacheMB := flag.Int("cache-mb", 0, "buffer-pool capacity per table in MiB (0 = default)")
	quotas := tenantQuotaFlag{}
	flag.Var(quotas, "tenant-quota", "per-tenant buffer-pool byte quota, tenant=bytes (repeatable)")
	debugAddr := flag.String("debug-addr", "", "also serve the debug surface (pprof, /debug/queries) on this address")
	slowMS := flag.Int("slow-ms", 0, "log queries slower than this many milliseconds as JSON lines on stderr")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight queries before cancelling them")
	store := flag.String("store", "fs", "block store serving each -dir: fs (direct filesystem), fakes3 (simulated object store over the same files)")
	storeLatency := flag.Duration("store-latency", 0, "with -store fakes3: simulated per-request round trip")
	storeGap := flag.Int64("store-gap", 0, "coalescing gap in bytes for store reads (0 = default 32KiB, negative disables merging)")
	flag.Parse()

	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: jtserve -dir <table.jt> [-dir ...] [flags]")
		os.Exit(2)
	}

	opts := jsontiles.DefaultOptions()
	opts.Workers = *workers
	if *cacheMB > 0 {
		opts.CacheBytes = int64(*cacheMB) << 20
	}
	if *slowMS > 0 {
		opts.SlowQueryThreshold = time.Duration(*slowMS) * time.Millisecond
	}

	srv := service.New(service.Config{
		Addr:           *addr,
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		QueueTimeout:   *queueTimeout,
		DefaultTimeout: *timeout,
	})

	opts.StoreReadGap = *storeGap
	var tables []*jsontiles.Table
	for _, dir := range dirs {
		name := strings.TrimSuffix(filepath.Base(dir), ".jt")
		topts := opts
		st, err := storeFor(*store, dir, *storeLatency)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jtserve: open %s: %v\n", dir, err)
			os.Exit(1)
		}
		topts.Store = st
		tbl, err := jsontiles.OpenDir(name, dir, topts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jtserve: open %s: %v\n", dir, err)
			os.Exit(1)
		}
		for tenant, quota := range quotas {
			tbl.SetTenantQuota(tenant, quota)
		}
		srv.Register(name, tbl)
		tables = append(tables, tbl)
		fmt.Fprintf(os.Stderr, "jtserve: serving %q from %s (%d rows, %d segments)\n",
			name, dir, tbl.NumRows(), tbl.NumSegments())
	}

	if *debugAddr != "" {
		dbg, err := jsontiles.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jtserve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "jtserve: debug server on http://%s\n", dbg)
	}

	actual, err := srv.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jtserve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "jtserve: listening on http://%s\n", actual)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "jtserve: draining...")

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "jtserve: shutdown:", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	jsontiles.ShutdownDebug(sctx)
	for _, tbl := range tables {
		tbl.Close()
	}
	fmt.Fprintln(os.Stderr, "jtserve: bye")
}

// storeFor builds the BlockStore selected by -store, rooted at dir;
// "fs" returns nil (the direct filesystem path). fakes3 persists
// through an FS store over dir, so directories loaded by `jtload
// -store fakes3` serve unchanged — with the simulated object-store
// round trips showing up in scan latency and /metrics store counters.
func storeFor(kind, dir string, latency time.Duration) (jsontiles.BlockStore, error) {
	switch kind {
	case "", "fs":
		return nil, nil
	case "fakes3":
		inner, err := jsontiles.NewFSStore(dir)
		if err != nil {
			return nil, err
		}
		return jsontiles.NewFakeS3Store(inner, jsontiles.FakeS3Options{Latency: latency}), nil
	}
	return nil, fmt.Errorf("unknown -store %q (want fs or fakes3)", kind)
}

// stringsFlag collects repeated flag values.
type stringsFlag []string

func (f *stringsFlag) String() string { return strings.Join(*f, ",") }

func (f *stringsFlag) Set(s string) error {
	*f = append(*f, s)
	return nil
}
