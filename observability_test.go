package jsontiles

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuffer is an io.Writer safe for the process-wide slow-query
// logger to share with test assertions.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// Satellite regression: OnQueryDone used to consult only the first
// table of a multi-table query; a hook registered on a joined table
// never fired. The rule now: the first table in add order that sets a
// hook provides it.
func TestOnQueryDoneHookOnJoinedTable(t *testing.T) {
	users, err := Load("users", usersDocs(20), opts())
	if err != nil {
		t.Fatal(err)
	}
	hooked := opts()
	var got []QueryStats
	hooked.OnQueryDone = func(s QueryStats) { got = append(got, s) }
	orders, err := Load("orders", ordersDocs(200), hooked)
	if err != nil {
		t.Fatal(err)
	}

	// users (no hook) is the root table; orders (hooked) is joined in.
	_, err = users.Query("data->>'uid'", "data->>'plan'").
		Join(orders, []string{"data->>'user'", "data->>'total'::BigInt"}, 0, 0).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("hook on joined table fired %d times, want 1", len(got))
	}
	if got[0].Plan == nil || got[0].Plan.Find("HashJoin") == nil {
		t.Fatalf("hook stats lack the join plan: %+v", got[0])
	}
}

func TestQueryStatsCarryIDAndDigest(t *testing.T) {
	tbl, err := Load("logs", mixedDocs(512), opts())
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Query {
		return tbl.Query("data->>'status'::BigInt").WhereNotNull(0)
	}
	_, s1, err := build().RunAnalyzed()
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := build().RunAnalyzed()
	if err != nil {
		t.Fatal(err)
	}
	if s1.QueryID == 0 || s2.QueryID == s1.QueryID {
		t.Fatalf("query ids = %d, %d: want distinct nonzero", s1.QueryID, s2.QueryID)
	}
	if len(s1.PlanDigest) != 16 {
		t.Fatalf("plan digest = %q, want 16 hex chars", s1.PlanDigest)
	}
	if s1.PlanDigest != s2.PlanDigest {
		t.Fatalf("same query template, digests %q vs %q", s1.PlanDigest, s2.PlanDigest)
	}
	_, s3, err := tbl.Query("data->>'kind'").GroupBy(0).Aggregate(CountAll("n")).RunAnalyzed()
	if err != nil {
		t.Fatal(err)
	}
	if s3.PlanDigest == s1.PlanDigest {
		t.Fatalf("different plans share digest %q", s3.PlanDigest)
	}
}

func TestSlowQueryLogEmitsOneLine(t *testing.T) {
	o := opts()
	var log syncBuffer
	o.SlowQueryThreshold = time.Nanosecond // everything is slow
	o.SlowQueryLog = &log
	tbl, err := Load("logs", mixedDocs(1024), o)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tbl.Query("data->>'status'::BigInt").
		WhereNotNull(0).
		GroupBy(0).
		Aggregate(CountAll("n")).
		Run()
	if err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSuffix(log.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow query produced %d lines, want 1: %q", len(lines), log.String())
	}
	var rec SlowQueryRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("slow-query line is not valid JSON: %v\n%s", err, lines[0])
	}
	if rec.QueryID == 0 || len(rec.PlanDigest) != 16 {
		t.Fatalf("record lacks identity: %+v", rec)
	}
	if rec.WallMS <= 0 || rec.ExecMS <= 0 {
		t.Fatalf("record lacks timings: %+v", rec)
	}
	if len(rec.TopOperators) == 0 || len(rec.TopOperators) > 3 {
		t.Fatalf("top operators = %d, want 1..3: %+v", len(rec.TopOperators), rec.TopOperators)
	}
	for i := 1; i < len(rec.TopOperators); i++ {
		if rec.TopOperators[i].WallMS > rec.TopOperators[i-1].WallMS {
			t.Fatalf("top operators not sorted by wall time: %+v", rec.TopOperators)
		}
	}
	if _, err := time.Parse(time.RFC3339Nano, rec.Time); err != nil {
		t.Fatalf("bad timestamp %q: %v", rec.Time, err)
	}

	// A fast query (threshold far away) logs nothing.
	fast := opts()
	fast.SlowQueryThreshold = time.Hour
	var quiet syncBuffer
	fast.SlowQueryLog = &quiet
	tbl2, err := Load("logs2", mixedDocs(256), fast)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl2.Query("data->>'kind'").Run(); err != nil {
		t.Fatal(err)
	}
	if quiet.String() != "" {
		t.Fatalf("fast query logged: %q", quiet.String())
	}
}

// Zero-valued layout options (TileSize == 0) substitute the paper
// defaults but must keep caller-set runtime fields — a regression test
// for options being replaced wholesale, dropping the slow-query
// settings and the OnQueryDone hook.
func TestZeroLayoutOptionsKeepRuntimeFields(t *testing.T) {
	var log syncBuffer
	var hooked int
	tbl := New("t", Options{
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog:       &log,
		OnQueryDone:        func(QueryStats) { hooked++ },
	})
	for i := 0; i < 50; i++ {
		if err := tbl.Insert([]byte(fmt.Sprintf(`{"v": %d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Query("data->>'v'::BigInt").Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(log.String(), "\n"); got != 1 {
		t.Fatalf("slow-query lines = %d, want 1 (threshold dropped by defaulting?)", got)
	}
	if hooked != 1 {
		t.Fatalf("OnQueryDone fired %d times, want 1", hooked)
	}
}

func TestSlowQueryThresholdFromJoinedTable(t *testing.T) {
	users, err := Load("users", usersDocs(20), opts())
	if err != nil {
		t.Fatal(err)
	}
	slow := opts()
	var log syncBuffer
	slow.SlowQueryThreshold = time.Nanosecond
	slow.SlowQueryLog = &log
	orders, err := Load("orders", ordersDocs(200), slow)
	if err != nil {
		t.Fatal(err)
	}
	_, err = users.Query("data->>'uid'").
		Join(orders, []string{"data->>'user'"}, 0, 0).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "plan_digest") {
		t.Fatalf("threshold on joined table produced no log line: %q", log.String())
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	tbl, err := Load("logs", mixedDocs(1024), opts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Query("data->>'status'::BigInt").WhereNotNull(0).Run(); err != nil {
		t.Fatal(err)
	}

	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The server is process-wide: a second call returns the same addr.
	again, err := ServeDebug("127.0.0.1:0")
	if err != nil || again != addr {
		t.Fatalf("second ServeDebug = %q, %v; want %q", again, err, addr)
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE queries_run counter",
		"# TYPE bufpool_bytes gauge",
		"# TYPE query_wall_seconds histogram",
		"query_wall_seconds_bucket{le=\"+Inf\"}",
		"query_wall_seconds_sum",
		"query_wall_seconds_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	queries := get("/debug/queries")
	var live []obs.QueryProgress
	if err := json.Unmarshal([]byte(queries), &live); err != nil {
		t.Fatalf("/debug/queries is not a JSON array: %v\n%s", err, queries)
	}

	trace := get("/debug/trace?last=4")
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(trace), &parsed); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v\n%s", err, trace)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatalf("/debug/trace has no events after a query:\n%s", trace)
	}

	if resp, err := http.Get("http://" + addr + "/debug/trace?last=bogus"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bogus ?last= returned %d, want 400", resp.StatusCode)
		}
	}

	pprofIdx := get("/debug/pprof/")
	if !strings.Contains(pprofIdx, "goroutine") {
		t.Fatalf("pprof index unexpected:\n%.200s", pprofIdx)
	}
}

// The live-query registry must show a query with progress while it
// executes. A hook observes the registry mid-query: it runs after
// execution but the handle is only finished right before it — so
// instead we check from a second goroutine polling during a join
// query over enough rows to be observable.
func TestLiveQueriesVisibleDuringRun(t *testing.T) {
	tbl, err := Load("logs", mixedDocs(4096), opts())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	seen := make(chan obs.QueryProgress, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, p := range obs.Queries.Live() {
				if p.Rows > 0 {
					select {
					case seen <- p:
					default:
					}
					return
				}
			}
		}
	}()
	deadline := time.After(10 * time.Second)
	for {
		if _, err := tbl.Query("data->>'status'::BigInt").WhereNotNull(0).Run(); err != nil {
			t.Fatal(err)
		}
		select {
		case p := <-seen:
			close(stop)
			if p.ID == 0 || p.Digest == "" {
				t.Fatalf("in-flight progress lacks identity: %+v", p)
			}
			if obs.Queries.NumLive() != 0 {
				t.Fatalf("queries still live after Run: %d", obs.Queries.NumLive())
			}
			return
		case <-deadline:
			close(stop)
			t.Skip("poller never caught a query in flight (machine too fast); covered by obs unit tests")
		default:
		}
	}
}

func TestMetricsSnapshotJSONRoundTrip(t *testing.T) {
	tbl, err := Load("logs", mixedDocs(512), opts())
	if err != nil {
		t.Fatal(err)
	}
	base := obs.Default.Snapshot()
	if _, err := tbl.Query("data->>'kind'").Run(); err != nil {
		t.Fatal(err)
	}
	diff := obs.Default.Snapshot().Diff(base)
	b, err := json.Marshal(diff)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Get("queries_run") != 1 {
		t.Fatalf("round-tripped queries_run = %d, want 1\n%s", back.Get("queries_run"), b)
	}
	if back.Hist("query_wall_seconds").Count != 1 {
		t.Fatalf("round-tripped wall histogram count = %d, want 1", back.Hist("query_wall_seconds").Count)
	}
}
