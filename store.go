package jsontiles

// Storage/compute separation: tables can live on any BlockStore — the
// local filesystem, process memory, or an object store — instead of
// being tied to a directory path. The storage contract (immutability,
// atomic Put, read-after-commit visibility) and the remote-scan read
// path (footer-first opens, coalesced range reads, bounded readahead)
// are documented in DESIGN.md §6.9.

import (
	"time"

	"repro/internal/blockstore"
	"repro/internal/bufpool"
	"repro/internal/storage"
	"repro/internal/tile"
)

// BlockStore is the segment I/O abstraction every disk-backed table
// speaks: named immutable objects with ranged reads and atomic
// whole-object writes. Implementations ship for the local filesystem
// (NewFSStore), process memory (NewMemStore), and a latency/failure-
// injecting object-store fake (NewFakeS3Store); any user type
// satisfying the interface works the same. See DESIGN.md §6.9 for the
// contract implementations must honor.
type BlockStore = blockstore.Store

// NewFSStore returns a BlockStore over a local directory (created if
// absent). Put writes are atomic: temp file, fsync, rename.
func NewFSStore(dir string) (BlockStore, error) {
	return blockstore.NewFS(dir)
}

// NewMemStore returns an empty in-memory BlockStore. Contents live
// and die with the process; two NewMemStore calls never share data.
func NewMemStore() BlockStore {
	return blockstore.NewMem()
}

// FakeS3Options configures the simulated object store.
type FakeS3Options struct {
	// Latency is added to every request (the per-request round trip).
	Latency time.Duration
	// ThroughputBps, when positive, adds n/ThroughputBps of transfer
	// time to an n-byte read.
	ThroughputBps int64
	// FailEveryN, when positive, makes every Nth range read fail with
	// a transient error (readers retry with backoff).
	FailEveryN int
}

// NewFakeS3Store wraps inner (nil selects a fresh in-memory store) in
// a simulated object store: per-request latency, bounded throughput,
// and injectable transient range-read failures. It is how the
// remote-scan path — coalescing, readahead, retry — is exercised and
// benchmarked without a real object store (see `jtbench blockstore`).
func NewFakeS3Store(inner BlockStore, o FakeS3Options) BlockStore {
	return blockstore.NewFakeS3(inner, blockstore.FakeS3Config{
		Latency:       o.Latency,
		ThroughputBps: o.ThroughputBps,
		FailEveryN:    o.FailEveryN,
	})
}

// OpenStore opens (or creates) a multi-segment table on a BlockStore —
// OpenDir generalized from a directory path to any store. Catalog,
// recovery, flushes, compaction, and scans all go through the store;
// the caller keeps ownership of it (Close leaves the store open, so
// one store can back several tables).
func OpenStore(name string, store BlockStore, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	maybeServeDebug(opts.DebugAddr)
	pool := bufpool.New(opts.CacheBytes)
	fanIn := opts.CompactFanIn
	auto := fanIn >= 0
	if fanIn < 0 {
		fanIn = 0
	}
	dt, err := storage.OpenDirStore(name, store, pool, opts.loaderConfig(), fanIn, auto)
	if err != nil {
		return nil, err
	}
	return &Table{name: name, opts: opts, rel: dt, metrics: &tile.Metrics{}}, nil
}
