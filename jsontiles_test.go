package jsontiles

import (
	"fmt"
	"strings"
	"testing"
)

func opts() Options {
	o := DefaultOptions()
	o.TileSize = 64
	o.Workers = 2
	return o
}

func docs(srcs ...string) [][]byte {
	out := make([][]byte, len(srcs))
	for i, s := range srcs {
		out[i] = []byte(s)
	}
	return out
}

func reviewDocs(n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		out = append(out, []byte(fmt.Sprintf(
			`{"review_id":"r%04d","business":"b%02d","stars":%d,"useful":%d,"date":"2020-06-%02d"}`,
			i, i%10, 1+i%5, i%50, 1+i%28)))
	}
	return out
}

func TestLoadAndScan(t *testing.T) {
	tbl, err := Load("reviews", reviewDocs(500), opts())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 500 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	res, err := tbl.Query("data->>'review_id'", "data->>'stars'::BigInt").
		WhereCmp(1, Eq, 5).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 100 {
		t.Fatalf("5-star rows = %d", res.NumRows())
	}
	if res.Value(0, 1).Int64() != 5 {
		t.Errorf("value = %v", res.Value(0, 1))
	}
}

func TestGroupByAggregates(t *testing.T) {
	tbl, err := Load("reviews", reviewDocs(500), opts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Query("data->>'stars'::BigInt", "data->>'useful'::BigInt").
		GroupBy(0).
		Aggregate(CountAll("n"), Sum(1, "useful_total"), Avg(1, "useful_avg"),
			Min(1, "min"), Max(1, "max")).
		OrderBy(0, false).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 5 {
		t.Fatalf("groups = %d\n%s", res.NumRows(), res)
	}
	if res.Value(0, 0).Int64() != 1 || res.Value(4, 0).Int64() != 5 {
		t.Errorf("group keys wrong:\n%s", res)
	}
	total := int64(0)
	for i := 0; i < res.NumRows(); i++ {
		total += res.Value(i, 1).Int64()
	}
	if total != 500 {
		t.Errorf("counts sum to %d", total)
	}
	if got := res.Columns(); got[1] != "n" || got[2] != "useful_total" {
		t.Errorf("columns = %v", got)
	}
}

func TestJoin(t *testing.T) {
	reviews, err := Load("reviews", reviewDocs(300), opts())
	if err != nil {
		t.Fatal(err)
	}
	var bdocs [][]byte
	for i := 0; i < 10; i++ {
		bdocs = append(bdocs, []byte(fmt.Sprintf(`{"id":"b%02d","city":"city%d"}`, i, i%3)))
	}
	business, err := Load("business", bdocs, opts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := reviews.Query("data->>'business'", "data->>'stars'::BigInt").
		Join(business, []string{"data->>'id'", "data->>'city'"}, 0, 0).
		GroupBy(3).
		Aggregate(CountAll("reviews"), Avg(1, "avg_stars")).
		OrderBy(0, false).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("cities = %d\n%s", res.NumRows(), res)
	}
	total := int64(0)
	for i := 0; i < 3; i++ {
		total += res.Value(i, 1).Int64()
	}
	if total != 300 {
		t.Errorf("joined review count = %d", total)
	}
}

func TestWhereVariants(t *testing.T) {
	tbl, _ := Load("t", docs(
		`{"s":"hello world","n":1}`,
		`{"s":"goodbye","n":2}`,
		`{"n":3}`,
		`{"s":"hello there","n":null}`,
	), opts())

	if res, _ := tbl.Query("data->>'s'").WhereLike(0, "hello%").Run(); res.NumRows() != 2 {
		t.Errorf("like: %d", res.NumRows())
	}
	if res, _ := tbl.Query("data->>'s'").WhereNull(0).Run(); res.NumRows() != 1 {
		t.Errorf("null: %d", res.NumRows())
	}
	if res, _ := tbl.Query("data->>'n'::BigInt").WhereIn(0, 1, 3).Run(); res.NumRows() != 2 {
		t.Errorf("in: %d", res.NumRows())
	}
	if res, _ := tbl.Query("data->>'n'::BigInt").WhereCmp(0, Ge, 2).Run(); res.NumRows() != 2 {
		t.Errorf("ge: %d", res.NumRows())
	}
}

func TestInsertFlushAndUpdate(t *testing.T) {
	o := opts()
	o.TileSize = 16
	o.PartitionSize = 2
	tbl := New("inc", o)
	for i := 0; i < 100; i++ {
		if err := tbl.Insert([]byte(fmt.Sprintf(`{"k":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Flush()
	if tbl.NumRows() != 100 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	res, _ := tbl.Query("data->>'k'::BigInt").WhereCmp(0, Lt, 10).Run()
	if res.NumRows() != 10 {
		t.Errorf("filtered = %d", res.NumRows())
	}

	// In-place update.
	if _, err := tbl.Update(5, []byte(`{"k":9999}`)); err != nil {
		t.Fatal(err)
	}
	res, _ = tbl.Query("data->>'k'::BigInt").WhereCmp(0, Eq, 9999).Run()
	if res.NumRows() != 1 {
		t.Errorf("updated row not found: %d", res.NumRows())
	}
}

func TestInsertRejectsMalformed(t *testing.T) {
	tbl := New("x", opts())
	if err := tbl.Insert([]byte(`{oops`)); err == nil {
		t.Error("malformed insert accepted")
	}
}

func TestStatsAndStorageInfo(t *testing.T) {
	tbl, _ := Load("reviews", reviewDocs(512), opts())
	st := tbl.Stats()
	if st.Rows() != 512 {
		t.Errorf("stats rows = %d", st.Rows())
	}
	if got := st.PathCount("stars"); got != 512 {
		t.Errorf("PathCount(stars) = %d", got)
	}
	if d := st.DistinctCount("stars"); d < 4 || d > 6 {
		t.Errorf("DistinctCount(stars) = %f", d)
	}
	if len(st.TrackedPaths()) == 0 {
		t.Error("no tracked paths")
	}
	info := tbl.StorageInfo()
	if info.NumTiles != 8 {
		t.Errorf("tiles = %d (512 docs / 64)", info.NumTiles)
	}
	if info.ExtractedColumns == 0 || info.BinaryJSONBytes == 0 || info.TileColumnBytes == 0 {
		t.Errorf("storage info: %+v", info)
	}
	if info.CompressedTileColumnBytes >= info.TileColumnBytes {
		t.Errorf("compression did not shrink: %+v", info)
	}
	paths := tbl.ExtractedPaths()
	if len(paths) != 8 || len(paths[0]) == 0 {
		t.Errorf("extracted paths: %v", paths)
	}
	// Dates must be detected as Timestamp.
	found := false
	for _, c := range paths[0] {
		if strings.HasPrefix(c, "date ") && strings.Contains(c, "Timestamp") {
			found = true
		}
	}
	if !found {
		t.Errorf("date column not detected: %v", paths[0])
	}
}

func TestLoadReader(t *testing.T) {
	input := "{\"a\":1}\n\n{\"a\":2}\n  {\"a\":3}\n"
	tbl, err := LoadReader("r", strings.NewReader(input), opts())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
}

func TestQueryErrors(t *testing.T) {
	tbl, _ := Load("t", docs(`{"a":1}`), opts())
	if _, err := tbl.Query("not an expression").Run(); err == nil {
		t.Error("bad access expression accepted")
	}
	if _, err := tbl.Query("data->>'a'").WhereCmp(9, Eq, 1).Run(); err == nil {
		t.Error("out-of-range filter column accepted")
	}
	if _, err := tbl.Query("data->>'a'").OrderBy(7, false).Run(); err == nil {
		t.Error("out-of-range order column accepted")
	}
	if _, err := tbl.Query("data->>'a'").WhereCmp(0, Eq, struct{}{}).Run(); err == nil {
		t.Error("unsupported constant accepted")
	}
}

func TestTimestampRoundTrip(t *testing.T) {
	tbl, _ := Load("t", docs(
		`{"ts":"2020-06-01 10:00:00"}`,
		`{"ts":"2020-06-02 10:00:00"}`,
	), opts())
	res, err := tbl.Query("data->>'ts'::Timestamp").Run()
	if err != nil {
		t.Fatal(err)
	}
	v := res.Value(0, 0)
	if v.IsNull() || v.Time().Year() != 2020 || v.Time().Month() != 6 {
		t.Errorf("timestamp = %v", v)
	}
}

func TestThreeWayJoin(t *testing.T) {
	region := docs(
		`{"rid":0,"rname":"EU"}`,
		`{"rid":1,"rname":"US"}`,
	)
	var nations, customers [][]byte
	for i := 0; i < 6; i++ {
		nations = append(nations, []byte(fmt.Sprintf(`{"nid":%d,"region":%d}`, i, i%2)))
	}
	for i := 0; i < 60; i++ {
		customers = append(customers, []byte(fmt.Sprintf(`{"cid":%d,"nation":%d,"bal":%d}`, i, i%6, i)))
	}
	rTbl, _ := Load("region", region, opts())
	nTbl, _ := Load("nation", nations, opts())
	cTbl, _ := Load("customer", customers, opts())

	res, err := cTbl.Query("data->>'cid'::BigInt", "data->>'nation'::BigInt", "data->>'bal'::BigInt").
		Join(nTbl, []string{"data->>'nid'::BigInt", "data->>'region'::BigInt"}, 1, 0).
		Join(rTbl, []string{"data->>'rid'::BigInt", "data->>'rname'"}, 4, 0).
		GroupBy(6).
		Aggregate(CountAll("customers"), Sum(2, "total_bal")).
		OrderBy(0, false).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("regions = %d\n%s", res.NumRows(), res)
	}
	if res.Value(0, 0).Text() != "EU" || res.Value(0, 1).Int64() != 30 {
		t.Errorf("EU row wrong:\n%s", res)
	}
	total := res.Value(0, 2).Int64() + res.Value(1, 2).Int64()
	if total != 59*60/2 {
		t.Errorf("balance sum = %d", total)
	}
}
