package jsontiles

// Statistics and storage introspection (paper §4.4, §4.6, Table 6).

import (
	"repro/internal/storage"
)

// TableStats exposes the relation-level statistics JSON tiles maintain
// for the query optimizer: per-key-path frequency counters and
// HyperLogLog distinct counts.
type TableStats struct {
	t *Table
}

// Stats returns the statistics view of the table.
func (t *Table) Stats() TableStats { return TableStats{t: t} }

// Rows returns the total tuple count covered by statistics.
func (s TableStats) Rows() int64 {
	if st := s.t.rel.Stats(); st != nil {
		return st.RowCount()
	}
	return 0
}

// PathCount estimates how many documents carry the key path (canonical
// dotted form, e.g. "user.id") with a non-null value.
func (s TableStats) PathCount(path string) int64 {
	if st := s.t.rel.Stats(); st != nil {
		return st.PathCount(path)
	}
	return 0
}

// DistinctCount estimates the number of distinct values under the key
// path.
func (s TableStats) DistinctCount(path string) float64 {
	if st := s.t.rel.Stats(); st != nil {
		return st.DistinctCount(path)
	}
	return 0
}

// TrackedPaths lists the key paths with exact frequency counters, most
// frequent first.
func (s TableStats) TrackedPaths() []string {
	if st := s.t.rel.Stats(); st != nil {
		return st.TrackedPaths()
	}
	return nil
}

// StorageInfo describes the table's physical layout.
type StorageInfo struct {
	// NumTiles is the number of materialized tiles.
	NumTiles int
	// ExtractedColumns is the total number of materialized columns
	// across all tiles.
	ExtractedColumns int
	// BinaryJSONBytes is the size of the per-document binary JSON.
	BinaryJSONBytes int
	// TileColumnBytes is the extracted-column overhead ("+Tiles").
	TileColumnBytes int
	// CompressedTileColumnBytes is the LZ4-compressed column size
	// ("+LZ4-Tiles").
	CompressedTileColumnBytes int
}

// StorageInfo reports the physical layout of the table.
func (t *Table) StorageInfo() StorageInfo {
	info := StorageInfo{}
	tr, ok := t.rel.(storage.TileIntrospector)
	if !ok {
		return info
	}
	tiles := tr.Tiles()
	info.NumTiles = len(tiles)
	for _, tl := range tiles {
		info.ExtractedColumns += len(tl.Columns())
	}
	info.BinaryJSONBytes = tr.RawSizeBytes()
	info.TileColumnBytes = tr.ColumnSizeBytes()
	info.CompressedTileColumnBytes = tr.CompressedColumnSizeBytes()
	return info
}

// ExtractedPaths returns, per tile index, the extracted key paths with
// their column types — a window into what the extraction algorithm
// decided (diagnostics, demos).
func (t *Table) ExtractedPaths() [][]string {
	tr, ok := t.rel.(storage.TileIntrospector)
	if !ok {
		return nil
	}
	var out [][]string
	for _, tl := range tr.Tiles() {
		var cols []string
		for _, c := range tl.Columns() {
			cols = append(cols, c.Path+" "+c.StorageType.String())
		}
		out = append(out, cols)
	}
	return out
}
