package jsontiles

// Slow-query logging: queries whose wall time reaches
// Options.SlowQueryThreshold emit one self-contained JSON line. The
// line carries enough to triage without re-running the query — total
// times, result size, the plan digest to group recurrences of the
// same template, and the top operators by exclusive wall time.

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// slowLogMu serializes slow-query lines process-wide so concurrent
// queries (possibly on different tables sharing one writer) never
// interleave partial lines.
var slowLogMu sync.Mutex

// SlowQueryRecord is the JSON shape of one slow-query log line.
type SlowQueryRecord struct {
	// Time is when the line was written (RFC 3339, UTC).
	Time string `json:"time"`
	// Tenant is the identity the query ran under; omitted for direct
	// library calls (lines from older versions also lack it).
	Tenant string `json:"tenant,omitempty"`
	// QueryID and PlanDigest match QueryStats and /debug/queries.
	QueryID    uint64 `json:"query_id"`
	PlanDigest string `json:"plan_digest"`
	// WallMS/PlanMS/ExecMS are the total, optimizer, and execution
	// wall times in milliseconds.
	WallMS float64 `json:"wall_ms"`
	PlanMS float64 `json:"plan_ms"`
	ExecMS float64 `json:"exec_ms"`
	// RowsReturned is the final result size.
	RowsReturned int64 `json:"rows_returned"`
	// TopOperators are the up-to-three plan operators with the
	// largest exclusive wall time (own time minus children's),
	// largest first.
	TopOperators []SlowQueryOperator `json:"top_operators"`
}

// SlowQueryOperator is one entry of SlowQueryRecord.TopOperators.
type SlowQueryOperator struct {
	Op     string  `json:"op"`
	Detail string  `json:"detail,omitempty"`
	WallMS float64 `json:"wall_ms"`
	Rows   int64   `json:"rows"`
}

// writeSlowQueryLog emits one JSON line for stats to w.
func writeSlowQueryLog(w io.Writer, stats *QueryStats) {
	if w == nil || stats == nil {
		return
	}
	rec := SlowQueryRecord{
		Time:         time.Now().UTC().Format(time.RFC3339Nano),
		Tenant:       stats.Tenant,
		QueryID:      stats.QueryID,
		PlanDigest:   stats.PlanDigest,
		WallMS:       durationMS(stats.Wall),
		PlanMS:       durationMS(stats.PlanTime),
		ExecMS:       durationMS(stats.ExecTime),
		RowsReturned: stats.RowsReturned,
		TopOperators: topOperators(stats.Plan, 3),
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	slowLogMu.Lock()
	w.Write(line)
	slowLogMu.Unlock()
}

func durationMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// topOperators ranks the plan's operators by exclusive wall time —
// the node's inclusive time minus its children's, clamped at zero —
// and returns the n largest.
func topOperators(plan *PlanNode, n int) []SlowQueryOperator {
	var all []SlowQueryOperator
	var walk func(*PlanNode)
	walk = func(p *PlanNode) {
		if p == nil {
			return
		}
		if p.Analyzed {
			excl := p.Wall
			for _, c := range p.Children {
				excl -= c.Wall
			}
			if excl < 0 {
				excl = 0
			}
			all = append(all, SlowQueryOperator{
				Op: p.Op, Detail: p.Detail, WallMS: durationMS(excl), Rows: p.Rows,
			})
		}
		for _, c := range p.Children {
			walk(c)
		}
	}
	walk(plan)
	// Insertion sort by descending wall time; plans are small.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].WallMS > all[j-1].WallMS; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if len(all) > n {
		all = all[:n]
	}
	return all
}
