package jsontiles

// End-to-end acceptance tests for multi-segment table directories: a
// table built with 8 incremental flushes answers identical query
// results before compaction, after Compact(), and after a
// crash-recovery reopen, with segments_live visible in EXPLAIN
// ANALYZE.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/manifest"
)

func dirOpts() Options {
	o := opts()
	o.CompactFanIn = -1 // tests drive compaction explicitly
	return o
}

// flushBatches inserts docs in n equal batches, flushing after each,
// so the directory accumulates one segment per batch.
func flushBatches(t *testing.T, tbl *Table, all [][]byte, n int) {
	t.Helper()
	per := len(all) / n
	for b := 0; b < n; b++ {
		batch := all[b*per : (b+1)*per]
		for _, d := range batch {
			if err := tbl.Insert(d); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		if err := tbl.Flush(); err != nil {
			t.Fatalf("Flush %d: %v", b, err)
		}
	}
}

func dirQueries() []func(*Table) *Query {
	return []func(*Table) *Query{
		func(tb *Table) *Query {
			return tb.Query("data->>'review_id'", "data->>'stars'::BigInt",
				"data->>'business'", "data->>'date'").OrderBy(0, false)
		},
		func(tb *Table) *Query {
			return tb.Query("data->>'stars'::BigInt", "data->>'useful'::BigInt").
				GroupBy(0).
				Aggregate(CountAll("n"), Sum(1, "u"), Avg(1, "avg")).
				OrderBy(0, false)
		},
		func(tb *Table) *Query {
			return tb.Query("data->>'review_id'", "data->>'stars'::BigInt").
				WhereCmp(1, Ge, 4).OrderBy(0, false)
		},
	}
}

func runAll(t *testing.T, tbl *Table, label string) []string {
	t.Helper()
	var out []string
	for qi, mk := range dirQueries() {
		res, err := mk(tbl).Run()
		if err != nil {
			t.Fatalf("%s query %d: %v", label, qi, err)
		}
		out = append(out, res.String())
	}
	return out
}

func TestDirConformanceAcrossCompactionAndReopen(t *testing.T) {
	const batches = 8
	dir := filepath.Join(t.TempDir(), "reviews")
	o := dirOpts()
	tbl, err := OpenDir("reviews", dir, o)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	all := reviewDocs(800)
	flushBatches(t, tbl, all, batches)

	if got := tbl.NumSegments(); got != batches {
		t.Fatalf("NumSegments = %d, want %d", got, batches)
	}
	if tbl.NumRows() != len(all) {
		t.Fatalf("NumRows = %d, want %d", tbl.NumRows(), len(all))
	}

	// Ground truth: the same documents in one in-memory table.
	mem, err := Load("reviews", all, opts())
	if err != nil {
		t.Fatal(err)
	}
	want := runAll(t, mem, "memory")

	before := runAll(t, tbl, "before compaction")
	for i := range want {
		if before[i] != want[i] {
			t.Fatalf("query %d differs before compaction:\nmemory:\n%s\ndir:\n%s", i, want[i], before[i])
		}
	}

	// segments_live is visible in EXPLAIN ANALYZE.
	_, stats, err := tbl.Query("data->>'stars'::BigInt").WhereCmp(0, Ge, 4).RunAnalyzed()
	if err != nil {
		t.Fatalf("RunAnalyzed: %v", err)
	}
	if !strings.Contains(stats.Plan.String(), fmt.Sprintf("segments_live=%d", batches)) {
		t.Fatalf("EXPLAIN ANALYZE misses segments_live=%d:\n%s", batches, stats.Plan)
	}

	rounds, err := tbl.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if rounds == 0 {
		t.Fatal("Compact ran no rounds over 8 small segments")
	}
	if got := tbl.NumSegments(); got >= batches {
		t.Fatalf("NumSegments = %d after compaction, want < %d", got, batches)
	}
	after := runAll(t, tbl, "after compaction")
	for i := range want {
		if after[i] != want[i] {
			t.Fatalf("query %d differs after Compact:\nmemory:\n%s\ndir:\n%s", i, want[i], after[i])
		}
	}
	if err := tbl.ScanErr(); err != nil {
		t.Fatalf("ScanErr: %v", err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: recovery finds a clean directory and the compacted
	// generation serves the same results.
	tbl2, err := OpenDir("reviews", dir, o)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer tbl2.Close()
	reopened := runAll(t, tbl2, "after reopen")
	for i := range want {
		if reopened[i] != want[i] {
			t.Fatalf("query %d differs after reopen:\nmemory:\n%s\ndir:\n%s", i, want[i], reopened[i])
		}
	}
	// Statistics survive the manifest round trip.
	if tbl2.Stats().Rows() != mem.Stats().Rows() {
		t.Errorf("stats rows: dir %d, memory %d", tbl2.Stats().Rows(), mem.Stats().Rows())
	}
}

// TestDirCrashRecoveryEndToEnd simulates a kill between segment write
// and manifest rename: the injected rename hook fails, leaving the
// new segment file on disk with no manifest referencing it. Reopening
// must serve the pre-crash generation and garbage-collect the orphan.
func TestDirCrashRecoveryEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "reviews")
	o := dirOpts()
	tbl, err := OpenDir("reviews", dir, o)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	all := reviewDocs(400)
	flushBatches(t, tbl, all[:200], 2)
	want := runAll(t, tbl, "pre-crash")

	// The crash: everything up to the manifest rename runs (the
	// segment file is written and synced), then the process "dies".
	// Segment puts rename too, so the hook fails only MANIFEST.
	blockstore.Rename = func(oldpath, newpath string) error {
		if strings.HasSuffix(newpath, manifest.FileName) {
			return fmt.Errorf("injected crash before manifest rename")
		}
		return os.Rename(oldpath, newpath)
	}
	for _, d := range all[200:] {
		if err := tbl.Insert(d); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	err = tbl.Flush()
	blockstore.Rename = os.Rename
	if err == nil {
		t.Fatal("Flush succeeded despite failing manifest rename")
	}
	tbl.Close()

	// The orphan is on disk before recovery.
	segFiles := func() []string {
		var names []string
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if manifest.IsSegmentFileName(e.Name()) {
				names = append(names, e.Name())
			}
		}
		return names
	}
	if got := segFiles(); len(got) != 3 {
		t.Fatalf("segment files before recovery = %v, want 2 live + 1 orphan", got)
	}

	tbl2, err := OpenDir("reviews", dir, o)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer tbl2.Close()
	if tbl2.NumSegments() != 2 || tbl2.NumRows() != 200 {
		t.Fatalf("recovered table: %d segments, %d rows; want 2, 200",
			tbl2.NumSegments(), tbl2.NumRows())
	}
	got := runAll(t, tbl2, "recovered")
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d differs after recovery:\npre-crash:\n%s\nrecovered:\n%s", i, want[i], got[i])
		}
	}
	if files := segFiles(); len(files) != 2 {
		t.Fatalf("segment files after recovery = %v, want the 2 live ones", files)
	}

	// The lost batch can simply be flushed again.
	for _, d := range all[200:] {
		if err := tbl2.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl2.Flush(); err != nil {
		t.Fatalf("re-flush after recovery: %v", err)
	}
	if tbl2.NumRows() != 400 {
		t.Fatalf("NumRows after re-flush = %d, want 400", tbl2.NumRows())
	}
}

func TestDirBackgroundCompactionKeepsResults(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "reviews")
	o := opts()
	o.CompactFanIn = 2 // aggressive fan-in so background compaction triggers
	tbl, err := OpenDir("reviews", dir, o)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	all := reviewDocs(600)
	flushBatches(t, tbl, all, 6)

	mem, err := Load("reviews", all, opts())
	if err != nil {
		t.Fatal(err)
	}
	want := runAll(t, mem, "memory")
	got := runAll(t, tbl, "dir")
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d differs under background compaction:\nmemory:\n%s\ndir:\n%s",
				i, want[i], got[i])
		}
	}
	if err := tbl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestCompactOnInMemoryTableIsNoop(t *testing.T) {
	tbl, err := Load("reviews", reviewDocs(100), opts())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := tbl.Compact(); n != 0 || err != nil {
		t.Fatalf("Compact on in-memory table = %d, %v", n, err)
	}
	if tbl.NumSegments() != 0 {
		t.Fatalf("NumSegments on in-memory table = %d", tbl.NumSegments())
	}
}

// trimSpace must strip every ASCII whitespace byte; historically \n,
// \v, and \f were missed, so NDJSON containing blank-ish separator
// lines (e.g. around array framing) failed to load.
func TestLoadReaderSkipsAllWhitespaceLines(t *testing.T) {
	input := "{\"a\":1}\n" +
		" \t\r\n" + // space/tab/CR line
		"\v\n" + // vertical tab line
		"\f\n" + // form feed line
		"\v\f \t{\"a\":2}\f\v \n" + // payload wrapped in exotic whitespace
		"\n" +
		"{\"a\":3}"
	tbl, err := LoadReader("ws", strings.NewReader(input), opts())
	if err != nil {
		t.Fatalf("LoadReader: %v", err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", tbl.NumRows())
	}
	res, err := tbl.Query("data->>'a'::BigInt").OrderBy(0, false).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 || res.Value(1, 0).Int64() != 2 {
		t.Fatalf("unexpected result:\n%s", res)
	}
}

func TestTrimSpace(t *testing.T) {
	cases := map[string]string{
		"":                "",
		"   ":             "",
		"\n\v\f\r\t ":     "",
		" {\"a\":1} ":     `{"a":1}`,
		"\n{\"a\":1}\v":   `{"a":1}`,
		"\f\r{\"a\":1}\t": `{"a":1}`,
		"{\"a\":\" x \"}": `{"a":" x "}`,
		"\va b\f":         "a b",
	}
	for in, want := range cases {
		if got := string(trimSpace([]byte(in))); got != want {
			t.Errorf("trimSpace(%q) = %q, want %q", in, got, want)
		}
	}
}
