// Benchmarks regenerating every table and figure of the paper's
// evaluation as testing.B benchmarks (one family per exhibit; the
// cmd/jtbench tool prints the same data as formatted tables). Run
// with:
//
//	go test -bench=. -benchmem
//
// Fixtures are built once per process at a small scale factor so the
// whole suite completes on a laptop; absolute numbers scale with -sf
// via jtbench, shapes do not change.
package jsontiles

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bson"
	"repro/internal/cbor"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/exprparse"
	"repro/internal/fpgrowth"
	"repro/internal/jsonb"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/storage"
	"repro/internal/tile"
	"repro/internal/workload/simdjsonfiles"
	"repro/internal/workload/tpch"
	"repro/internal/workload/twitter"
	"repro/internal/workload/yelp"
)

const benchScale = 0.002

var (
	fixOnce sync.Once
	fix     struct {
		tpchLines     [][]byte
		tpchShuffled  [][]byte
		lineitemLines [][]byte
		yelpLines     [][]byte
		twitterLines  [][]byte
		changingLines [][]byte

		rels        map[storage.FormatKind]storage.Relation
		shuffled    map[storage.FormatKind]storage.Relation
		yelpRels    map[storage.FormatKind]storage.Relation
		twitterRels map[storage.FormatKind]storage.Relation
		star        *storage.TilesStar
	}
)

var benchFormats = []storage.FormatKind{storage.KindJSON, storage.KindJSONB,
	storage.KindSinew, storage.KindTiles, storage.KindShredded}

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		lines, spans := tpch.Generate(tpch.Config{ScaleFactor: benchScale, Seed: 42})
		fix.tpchLines = lines
		sp := spans["lineitem"]
		fix.lineitemLines = lines[sp[0]:sp[1]]
		fix.tpchShuffled = tpch.Shuffle(lines, 77)
		fix.yelpLines, _ = yelp.Generate(yelp.Config{
			Businesses: 400, Users: 800, Reviews: 3200, Tips: 800, Checkins: 400, Seed: 42})
		fix.twitterLines = twitter.Generate(twitter.Config{Tweets: 6000, DeleteRatio: 0.4, Seed: 42})
		fix.changingLines = twitter.Generate(twitter.Config{Tweets: 6000, Changing: true, Seed: 42})

		loadAll := func(name string, data [][]byte) map[storage.FormatKind]storage.Relation {
			out := map[storage.FormatKind]storage.Relation{}
			for _, k := range benchFormats {
				l, err := storage.NewLoader(k, storage.DefaultLoaderConfig())
				if err != nil {
					panic(err)
				}
				rel, err := l.Load(name, data, 4)
				if err != nil {
					panic(err)
				}
				out[k] = rel
			}
			return out
		}
		fix.rels = loadAll("tpch", fix.tpchLines)
		fix.shuffled = loadAll("tpch-shuffled", fix.tpchShuffled)
		fix.yelpRels = loadAll("yelp", fix.yelpLines)
		fix.twitterRels = loadAll("twitter", fix.twitterLines)
		star, err := storage.BuildTilesStar("twitter", fix.twitterLines,
			storage.DefaultLoaderConfig(), 4, twitter.IDPath(), twitter.ArrayPaths()...)
		if err != nil {
			panic(err)
		}
		fix.star = star
	})
}

// BenchmarkFig7 — Q1/Q18 throughput per storage format.
func BenchmarkFig7(b *testing.B) {
	fixtures(b)
	for _, num := range []int{1, 18} {
		q, _ := tpch.QueryByNum(num)
		for _, kind := range benchFormats {
			b.Run(fmt.Sprintf("Q%d/%s", num, kind), func(b *testing.B) {
				rel := fix.rels[kind]
				for i := 0; i < b.N; i++ {
					q.Run(rel, 4)
				}
			})
		}
	}
}

// BenchmarkFig8 — scalability over worker counts (Tiles).
func BenchmarkFig8(b *testing.B) {
	fixtures(b)
	q, _ := tpch.QueryByNum(1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("Q1/Tiles/workers=%d", workers), func(b *testing.B) {
			rel := fix.rels[storage.KindTiles]
			for i := 0; i < b.N; i++ {
				q.Run(rel, workers)
			}
		})
	}
}

// BenchmarkTable1 — all 22 TPC-H queries on JSONB, Sinew and Tiles
// (the full grid runs via cmd/jtbench tab1).
func BenchmarkTable1(b *testing.B) {
	fixtures(b)
	for _, q := range tpch.Queries() {
		q := q
		for _, kind := range []storage.FormatKind{storage.KindJSONB, storage.KindSinew, storage.KindTiles} {
			b.Run(fmt.Sprintf("Q%d/%s", q.Num, kind), func(b *testing.B) {
				rel := fix.rels[kind]
				for i := 0; i < b.N; i++ {
					q.Run(rel, 4)
				}
			})
		}
	}
}

// BenchmarkTable2 — the Yelp queries.
func BenchmarkTable2(b *testing.B) {
	fixtures(b)
	for _, q := range yelp.Queries() {
		q := q
		for _, kind := range []storage.FormatKind{storage.KindJSONB, storage.KindSinew, storage.KindTiles} {
			b.Run(fmt.Sprintf("Y%d/%s", q.Num, kind), func(b *testing.B) {
				rel := fix.yelpRels[kind]
				for i := 0; i < b.N; i++ {
					q.Run(rel, 4)
				}
			})
		}
	}
}

// BenchmarkTable3 — the Twitter queries including Tiles-*.
func BenchmarkTable3(b *testing.B) {
	fixtures(b)
	for _, q := range twitter.Queries() {
		q := q
		for _, kind := range []storage.FormatKind{storage.KindJSONB, storage.KindSinew, storage.KindTiles} {
			b.Run(fmt.Sprintf("T%d/%s", q.Num, kind), func(b *testing.B) {
				rel := fix.twitterRels[kind]
				for i := 0; i < b.N; i++ {
					q.Run(rel, 4)
				}
			})
		}
		if q.RunStar != nil {
			b.Run(fmt.Sprintf("T%d/Tiles-star", q.Num), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q.RunStar(fix.star, 4)
				}
			})
		}
	}
}

// BenchmarkTable4 — the changing-structure data set (Tiles).
func BenchmarkTable4(b *testing.B) {
	fixtures(b)
	l, _ := storage.NewLoader(storage.KindTiles, storage.DefaultLoaderConfig())
	rel, err := l.Load("changing", fix.changingLines, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range twitter.Queries() {
		q := q
		b.Run(fmt.Sprintf("T%d/Tiles/changing", q.Num), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q.Run(rel, 4)
			}
		})
	}
}

// BenchmarkFig9 — shuffled TPC-H (robustness): the representative
// query subset per format.
func BenchmarkFig9(b *testing.B) {
	fixtures(b)
	for _, kind := range []storage.FormatKind{storage.KindJSONB, storage.KindSinew, storage.KindTiles} {
		b.Run(string(kind), func(b *testing.B) {
			rel := fix.shuffled[kind]
			for i := 0; i < b.N; i++ {
				for _, num := range []int{1, 3, 6, 18} {
					q, _ := tpch.QueryByNum(num)
					q.Run(rel, 4)
				}
			}
		})
	}
}

// BenchmarkFig10 — query speed vs tile size on shuffled data.
func BenchmarkFig10(b *testing.B) {
	fixtures(b)
	q, _ := tpch.QueryByNum(1)
	for _, ts := range []int{1 << 8, 1 << 10, 1 << 12} {
		cfg := storage.DefaultLoaderConfig()
		cfg.Tile.TileSize = ts
		l, _ := storage.NewLoader(storage.KindTiles, cfg)
		rel, err := l.Load("sweep", fix.tpchShuffled, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Q1/tile=%d", ts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q.Run(rel, 4)
			}
		})
	}
}

// BenchmarkFig11 — loading time vs tile and partition size.
func BenchmarkFig11(b *testing.B) {
	fixtures(b)
	for _, ts := range []int{1 << 8, 1 << 10, 1 << 12} {
		for _, ps := range []int{1, 8} {
			b.Run(fmt.Sprintf("tile=%d/part=%d", ts, ps), func(b *testing.B) {
				cfg := storage.DefaultLoaderConfig()
				cfg.Tile.TileSize = ts
				cfg.Tile.PartitionSize = ps
				cfg.Reorder = ps > 1
				l, _ := storage.NewLoader(storage.KindTiles, cfg)
				for i := 0; i < b.N; i++ {
					if _, err := l.Load("sweep", fix.tpchShuffled, 4); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig12 / BenchmarkFig13 — Yelp and Twitter geo-mean proxies
// vs tile size.
func BenchmarkFig12(b *testing.B) {
	fixtures(b)
	benchTileSweep(b, fix.yelpLines, func(rel storage.Relation) {
		for _, q := range yelp.Queries() {
			q.Run(rel, 4)
		}
	})
}

func BenchmarkFig13(b *testing.B) {
	fixtures(b)
	benchTileSweep(b, fix.twitterLines, func(rel storage.Relation) {
		for _, q := range twitter.Queries() {
			q.Run(rel, 4)
		}
	})
}

func benchTileSweep(b *testing.B, lines [][]byte, run func(storage.Relation)) {
	for _, ts := range []int{1 << 8, 1 << 10, 1 << 12} {
		cfg := storage.DefaultLoaderConfig()
		cfg.Tile.TileSize = ts
		l, _ := storage.NewLoader(storage.KindTiles, cfg)
		rel, err := l.Load("sweep", lines, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("tile=%d", ts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run(rel)
			}
		})
	}
}

// BenchmarkFig14 — the optimization ablations on TPC-H.
func BenchmarkFig14(b *testing.B) {
	fixtures(b)
	q1, _ := tpch.QueryByNum(1)
	levels := []struct {
		name        string
		dates, skip bool
	}{
		{"noOpt", false, false},
		{"noDate", false, true},
		{"noSkip", true, false},
		{"Tiles", true, true},
	}
	for _, lv := range levels {
		cfg := storage.DefaultLoaderConfig()
		cfg.Tile.DetectDates = lv.dates
		cfg.SkipTiles = lv.skip
		l, _ := storage.NewLoader(storage.KindTiles, cfg)
		rel, err := l.Load("ablate", fix.tpchLines, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(lv.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q1.Run(rel, 4)
			}
		})
	}
}

// sumLinenumber is the §6.7 micro query.
func benchSumQuery(rel storage.Relation, workers int) *engine.Result {
	scan := engine.NewScan(rel, []storage.Access{
		exprparse.MustParse(`data->>'l_linenumber'::BigInt`),
	}, nil, nil)
	gb := engine.NewGroupBy(scan, nil, nil,
		[]engine.AggSpec{{Func: engine.Sum, Arg: expr.NewCol(0, expr.TBigInt), Name: "sum"}})
	return engine.Materialize(gb, workers)
}

// BenchmarkFig15 / BenchmarkTable5 — the summation micro benchmark;
// ns/op and allocs/op substitute the paper's hardware counters.
func BenchmarkFig15(b *testing.B) {
	fixtures(b)
	only := map[storage.FormatKind]storage.Relation{}
	for _, kind := range []storage.FormatKind{storage.KindJSONB, storage.KindSinew, storage.KindTiles} {
		l, _ := storage.NewLoader(kind, storage.DefaultLoaderConfig())
		rel, err := l.Load("lineitem", fix.lineitemLines, 4)
		if err != nil {
			b.Fatal(err)
		}
		only[kind] = rel
	}
	cases := []struct {
		name string
		rel  storage.Relation
		rows int
	}{
		{"JSONB-Comb", fix.rels[storage.KindJSONB], len(fix.tpchLines)},
		{"Sinew-Only", only[storage.KindSinew], len(fix.lineitemLines)},
		{"Sinew-Comb", fix.rels[storage.KindSinew], len(fix.tpchLines)},
		{"Tiles-Only", only[storage.KindTiles], len(fix.lineitemLines)},
		{"Tiles-Comb", fix.rels[storage.KindTiles], len(fix.tpchLines)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSumQuery(tc.rel, 1)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tc.rows), "ns/tuple")
		})
	}
}

// BenchmarkFig16 — tiles loading (the breakdown prints via jtbench).
func BenchmarkFig16(b *testing.B) {
	fixtures(b)
	var m tile.Metrics
	l := storage.NewTilesLoader(storage.DefaultLoaderConfig(), &m)
	b.Run("load-tiles-tpch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := l.Load("tpch", fix.tpchLines, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig17 — loading throughput per format.
func BenchmarkFig17(b *testing.B) {
	fixtures(b)
	for _, kind := range benchFormats {
		b.Run(string(kind), func(b *testing.B) {
			l, _ := storage.NewLoader(kind, storage.DefaultLoaderConfig())
			for i := 0; i < b.N; i++ {
				if _, err := l.Load("tpch", fix.tpchLines, 4); err != nil {
					b.Fatal(err)
				}
			}
			tuplesPerSec := float64(len(fix.tpchLines)) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(tuplesPerSec/1000, "ktuples/s")
		})
	}
}

// BenchmarkTable6 — storage sizes as reported metrics.
func BenchmarkTable6(b *testing.B) {
	fixtures(b)
	tr := fix.rels[storage.KindTiles].(interface {
		RawSizeBytes() int
		ColumnSizeBytes() int
		CompressedColumnSizeBytes() int
	})
	b.Run("sizes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tr.ColumnSizeBytes()
		}
		b.ReportMetric(float64(tr.RawSizeBytes()), "jsonb-bytes")
		b.ReportMetric(float64(tr.ColumnSizeBytes()), "tiles-bytes")
		b.ReportMetric(float64(tr.CompressedColumnSizeBytes()), "lz4-tiles-bytes")
	})
}

// BenchmarkFig18 — (de)serialization of the binary formats.
func BenchmarkFig18(b *testing.B) {
	for _, name := range []string{"canada", "twitter_api", "numbers"} {
		doc := simdjsonfiles.MustGenerate(name, 1, 99)
		jb := jsonb.Encode(doc)
		bs := bson.Marshal(doc)
		cb := cbor.Marshal(doc)
		b.Run("serialize/"+name+"/JSONB", func(b *testing.B) {
			var e jsonb.Encoder
			for i := 0; i < b.N; i++ {
				e.Encode(doc)
			}
		})
		b.Run("serialize/"+name+"/BSON", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bson.Marshal(doc)
			}
		})
		b.Run("serialize/"+name+"/CBOR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cbor.Marshal(doc)
			}
		})
		b.Run("deserialize/"+name+"/JSONB", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				jsonb.NewDoc(jb).Decode()
			}
		})
		b.Run("deserialize/"+name+"/BSON", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bson.Unmarshal(bs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("deserialize/"+name+"/CBOR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cbor.Unmarshal(cb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig19 — encoded sizes as metrics.
func BenchmarkFig19(b *testing.B) {
	for _, name := range simdjsonfiles.Names() {
		doc := simdjsonfiles.MustGenerate(name, 1, 99)
		b.Run(name, func(b *testing.B) {
			var jb []byte
			for i := 0; i < b.N; i++ {
				jb = jsonb.Encode(doc)
			}
			text := len(jsontext.Serialize(doc))
			b.ReportMetric(float64(len(bson.Marshal(doc)))/float64(text), "bson-rel")
			b.ReportMetric(float64(len(cbor.Marshal(doc)))/float64(text), "cbor-rel")
			b.ReportMetric(float64(len(jb))/float64(text), "jsonb-rel")
		})
	}
}

// BenchmarkFig20 — random nested accesses on each binary format.
func BenchmarkFig20(b *testing.B) {
	doc := simdjsonfiles.MustGenerate("twitter_api", 1, 99)
	jb := jsonb.Encode(doc)
	bs := bson.Marshal(doc)
	cb := cbor.Marshal(doc)
	b.Run("JSONB", func(b *testing.B) {
		d := jsonb.NewDoc(jb)
		for i := 0; i < b.N; i++ {
			st, _ := d.Get("statuses")
			el, _ := st.Index(i % 20)
			u, _ := el.Get("user")
			u.Get("screen_name")
		}
	})
	b.Run("BSON", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bson.LookupPath(bs, "statuses", fmt.Sprintf("%d", i%20), "user", "screen_name")
		}
	})
	b.Run("CBOR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, _ := cbor.Lookup(cb, "statuses")
			if v.Kind() == jsonvalue.KindArray && v.Len() > 0 {
				v.Elem(i%v.Len()).GetPath("user", "screen_name")
			}
		}
	})
}

// Ablation benchmarks for the design decisions DESIGN.md calls out.

// BenchmarkAblationCastRewrite — typed pushed-down access (the §4.3
// rewriting) vs Text access plus an engine-level cast.
func BenchmarkAblationCastRewrite(b *testing.B) {
	fixtures(b)
	rel := fix.rels[storage.KindTiles]
	b.Run("rewritten", func(b *testing.B) {
		scan := engine.NewScan(rel, []storage.Access{
			exprparse.MustParse(`data->>'l_quantity'::BigInt`)}, nil, nil)
		gb := engine.NewGroupBy(scan, nil, nil, []engine.AggSpec{
			{Func: engine.Sum, Arg: expr.NewCol(0, expr.TBigInt), Name: "s"}})
		for i := 0; i < b.N; i++ {
			engine.Materialize(gb, 4)
		}
	})
	b.Run("text-then-cast", func(b *testing.B) {
		scan := engine.NewScan(rel, []storage.Access{
			exprparse.MustParse(`data->>'l_quantity'`)}, nil, nil)
		gb := engine.NewGroupBy(scan, nil, nil, []engine.AggSpec{
			{Func: engine.Sum, Arg: expr.NewCast(expr.NewCol(0, expr.TText), expr.TBigInt), Name: "s"}})
		for i := 0; i < b.N; i++ {
			engine.Materialize(gb, 4)
		}
	})
}

// BenchmarkAblationReorder — querying shuffled data loaded with and
// without partition reordering. The query mix includes joins over the
// smaller tables: those structures fall below the extraction threshold
// in *every* unordered tile (the dominant lineitem structure crowds
// them out), so reordering is what makes them columnar at all. A
// lineitem-only query (Q1) is neutral to reordering on this workload —
// the dominant structure already exceeds the threshold everywhere.
func BenchmarkAblationReorder(b *testing.B) {
	fixtures(b)
	for _, reorderOn := range []bool{false, true} {
		cfg := storage.DefaultLoaderConfig()
		cfg.Reorder = reorderOn
		l, _ := storage.NewLoader(storage.KindTiles, cfg)
		rel, err := l.Load("r", fix.tpchShuffled, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("querymix/reorder=%v", reorderOn), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, num := range []int{3, 6, 10, 18} {
					q, _ := tpch.QueryByNum(num)
					q.Run(rel, 4)
				}
			}
		})
	}
}

// BenchmarkAblationMiningBudget — the Eq. 1 budget's effect on tile
// build time for wide documents.
func BenchmarkAblationMiningBudget(b *testing.B) {
	var docs []jsonvalue.Value
	for i := 0; i < 1024; i++ {
		var ms []jsonvalue.Member
		for k := 0; k < 24; k++ { // 24 co-occurring keys: 2^24 potential itemsets
			ms = append(ms, jsonvalue.M(fmt.Sprintf("k%02d", k), jsonvalue.Int(int64(i))))
		}
		docs = append(docs, jsonvalue.Object(ms...))
	}
	for _, budget := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			cfg := tile.DefaultConfig()
			cfg.Budget = budget
			builder := tile.NewBuilder(cfg, nil)
			for i := 0; i < b.N; i++ {
				builder.Build(docs)
			}
		})
	}
}

// BenchmarkAblationNumericString — §5.2 typed numeric strings vs text
// parsing on a price-heavy access.
func BenchmarkAblationNumericString(b *testing.B) {
	v, err := jsontext.ParseString(`{"price":"12345.67"}`)
	if err != nil {
		b.Fatal(err)
	}
	buf := jsonb.Encode(v)
	d := jsonb.NewDoc(buf)
	b.Run("typed-numeric-string", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, _ := d.Get("price")
			if _, _, ok := p.NumericString(); !ok {
				b.Fatal("not numeric")
			}
		}
	})
	b.Run("text-parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, _ := d.Get("price")
			s, _ := p.String()
			_ = s
		}
	})
}

// BenchmarkMiningFPGrowth — raw miner throughput on tile-sized inputs.
func BenchmarkMiningFPGrowth(b *testing.B) {
	txs := make([][]int32, 1024)
	for i := range txs {
		for k := int32(0); k < 12; k++ {
			if (i+int(k))%3 != 0 {
				txs[i] = append(txs[i], k)
			}
		}
	}
	m := fpgrowth.Miner{MinSupport: 614}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mine(txs)
	}
}
