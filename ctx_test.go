package jsontiles

// Per-query context tests: cancellation and deadlines propagate into
// the scan, cancelled queries release every buffer-pool pin (so
// compaction can still drop their segments), and tenant identity on
// the context flows into counters and the slow-query log.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bufpool"
	"repro/internal/obs"
)

func TestRunContextPreCancelled(t *testing.T) {
	tbl, err := Load("reviews", reviewDocs(500), opts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := obs.QueriesCancelled.Load()
	_, err = tbl.Query("data->>'stars'::BigInt").WhereCmp(0, Ge, 4).RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext(cancelled) = %v, want context.Canceled", err)
	}
	if got := obs.QueriesCancelled.Load(); got != before+1 {
		t.Fatalf("queries_cancelled %d -> %d, want +1", before, got)
	}
}

func TestRunContextDeadlineExceeded(t *testing.T) {
	tbl, err := Load("reviews", reviewDocs(200), opts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = tbl.Query("data->>'review_id'").RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext(expired) = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunContextNilMatchesRun(t *testing.T) {
	tbl, err := Load("reviews", reviewDocs(300), opts())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Query {
		return tbl.Query("data->>'business'", "data->>'stars'::BigInt").
			GroupBy(0).Aggregate(CountAll("n"), Avg(1, "avg")).OrderBy(0, false)
	}
	want, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := mk().RunContext(nil) //nolint:staticcheck // nil must behave like Background
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("RunContext(nil) differs from Run:\n%s\nvs\n%s", got, want)
	}
}

// pool extracts the buffer pool behind a directory-backed table (the
// same assertion SetTenantQuota uses).
func poolOf(t *testing.T, tbl *Table) *bufpool.Pool {
	t.Helper()
	pp, ok := tbl.rel.(interface{ Pool() *bufpool.Pool })
	if !ok {
		t.Fatalf("table relation %T exposes no pool", tbl.rel)
	}
	return pp.Pool()
}

// TestCancelledDirQueryReleasesPinsAndCompacts: whatever moment the
// cancel lands — before the scan, mid-morsel, or after the last tile
// — a finished RunContext leaves zero pinned buffer-pool bytes, so
// compaction can rewrite and drop the segments it read.
func TestCancelledDirQueryReleasesPinsAndCompacts(t *testing.T) {
	const batches = 8
	dir := filepath.Join(t.TempDir(), "reviews")
	o := dirOpts()
	tbl, err := OpenDir("reviews", dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	all := reviewDocs(800)
	flushBatches(t, tbl, all, batches)
	pool := poolOf(t, tbl)

	// Deterministic case first: pre-cancelled context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tbl.Query("data->>'review_id'").RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: %v", err)
	}
	if st := pool.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("pre-cancelled query left %d pinned bytes", st.PinnedBytes)
	}

	// Racy case: cancel while scans are (probably) in flight. The
	// invariant — no pins survive the query — holds for every
	// interleaving even when the cancel lands too late to matter.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		qctx, qcancel := context.WithCancel(context.Background())
		wg.Add(1)
		go func() {
			defer wg.Done()
			tbl.Query("data->>'review_id'", "data->>'stars'::BigInt").
				WhereCmp(1, Ge, 1).RunContext(qctx)
		}()
		time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
		qcancel()
	}
	wg.Wait()
	if st := pool.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("cancelled queries left %d pinned bytes", st.PinnedBytes)
	}

	// Compaction proceeds: nothing the cancelled queries touched is
	// still pinned or refcounted.
	rounds, err := tbl.Compact()
	if err != nil {
		t.Fatalf("Compact after cancelled queries: %v", err)
	}
	if rounds == 0 {
		t.Fatal("Compact ran no rounds")
	}
	if got := tbl.NumSegments(); got >= batches {
		t.Fatalf("NumSegments = %d after compaction, want < %d", got, batches)
	}

	// And the table still answers correctly.
	mem, err := Load("reviews", all, opts())
	if err != nil {
		t.Fatal(err)
	}
	want, err := mem.Query("data->>'stars'::BigInt").GroupBy(0).
		Aggregate(CountAll("n")).OrderBy(0, false).Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Query("data->>'stars'::BigInt").GroupBy(0).
		Aggregate(CountAll("n")).OrderBy(0, false).
		RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("post-compaction results differ:\n%s\nvs\n%s", got, want)
	}
}

// TestCancelledQueriesLeakNoGoroutines: repeated cancelled queries
// must not strand scan helpers. The shared scheduler's workers are
// created once at init, so after a warm-up the goroutine count is
// steady state.
func TestCancelledQueriesLeakNoGoroutines(t *testing.T) {
	tbl, err := Load("reviews", reviewDocs(600), opts())
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: instantiate the shared pool's workers and any lazy
	// runtime goroutines.
	if _, err := tbl.Query("data->>'review_id'").Run(); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		tbl.Query("data->>'review_id'", "data->>'stars'::BigInt").RunContext(ctx)
	}
	// Helpers retire asynchronously; poll briefly before judging.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 || time.Now().After(deadline) {
			if n > base+2 {
				t.Fatalf("goroutines grew %d -> %d after 25 cancelled queries", base, n)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTenantOnContextFlowsToCountersAndStats(t *testing.T) {
	tbl, err := Load("reviews", reviewDocs(400), opts())
	if err != nil {
		t.Fatal(err)
	}
	tc := obs.Tenants.Get("ctx-test-tenant")
	q0, r0 := tc.Queries.Load(), tc.RowsReturned.Load()
	ctx := obs.WithTenant(context.Background(), "ctx-test-tenant")
	res, stats, err := tbl.Query("data->>'review_id'").RunAnalyzedContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tenant != "ctx-test-tenant" {
		t.Fatalf("stats.Tenant = %q", stats.Tenant)
	}
	if got := tc.Queries.Load(); got != q0+1 {
		t.Fatalf("tenant queries %d -> %d, want +1", q0, got)
	}
	if got := tc.RowsReturned.Load(); got != r0+int64(res.NumRows()) {
		t.Fatalf("tenant rows %d -> %d, want +%d", r0, got, res.NumRows())
	}
	// A cancelled tenanted query counts as cancelled for the tenant.
	c0 := tc.Cancelled.Load()
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := tbl.Query("data->>'review_id'").RunContext(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if got := tc.Cancelled.Load(); got != c0+1 {
		t.Fatalf("tenant cancelled %d -> %d, want +1", c0, got)
	}
}

func TestSlowQueryLogCarriesTenant(t *testing.T) {
	var log bytes.Buffer
	o := opts()
	o.SlowQueryThreshold = time.Nanosecond // everything is slow
	o.SlowQueryLog = &log
	tbl, err := Load("reviews", reviewDocs(100), o)
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.WithTenant(context.Background(), "acme")
	if _, err := tbl.Query("data->>'review_id'").RunContext(ctx); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(log.String())
	var rec SlowQueryRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("unmarshal slow-query line: %v\n%s", err, line)
	}
	if rec.Tenant != "acme" {
		t.Fatalf("slow-query tenant = %q, want acme\n%s", rec.Tenant, line)
	}

	// Untenanted queries omit the field entirely, so lines written by
	// older versions (no tenant key) and new direct-library lines are
	// the same shape.
	log.Reset()
	if _, err := tbl.Query("data->>'review_id'").Run(); err != nil {
		t.Fatal(err)
	}
	plain := strings.TrimSpace(log.String())
	if strings.Contains(plain, `"tenant"`) {
		t.Fatalf("untenanted line carries a tenant field:\n%s", plain)
	}
	var old SlowQueryRecord
	if err := json.Unmarshal([]byte(plain), &old); err != nil {
		t.Fatalf("old-shape line unreadable: %v", err)
	}
	if old.Tenant != "" {
		t.Fatalf("old-shape tenant = %q, want empty", old.Tenant)
	}
}
