package jsontiles

// EXPLAIN / EXPLAIN ANALYZE: the optimizer's chosen plan as a tree,
// optionally annotated with measured per-operator wall times, row
// counts, and per-table tile-skip ratios (paper §4.8) and column-hit
// vs binary-JSON-fallback splits (§4.5/§5).

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/xxhash"
)

// PlanNode is one operator of a query plan. A node from Explain
// carries the plan shape and cardinality estimates; a node from
// RunAnalyzed additionally carries measured execution statistics
// (Analyzed is set).
type PlanNode struct {
	// Op is the operator kind ("Scan", "HashJoin", "GroupBy", ...).
	Op string
	// Detail describes the operator (table, join sides, key counts).
	Detail string
	// EstRows is the optimizer's cardinality estimate (< 0 when the
	// operator has none).
	EstRows float64
	// Children are the input operators (build side first for joins).
	Children []*PlanNode

	// Analyzed is set when the node carries measured statistics.
	Analyzed bool
	// Wall is the operator's inclusive wall time (its whole subtree).
	Wall time.Duration
	// Rows is the number of rows the operator emitted.
	Rows int64
	// Scan holds the storage-level counters for scan nodes.
	Scan *ScanStats
	// AggPartitions is the hash-partition fan-out of a GroupBy node's
	// merge phase (0 for other operators; 1 = serial merge).
	AggPartitions int64
}

// ScanStats are the storage-level counters of one table scan.
type ScanStats struct {
	// Table is the scanned relation's name.
	Table string
	// NumTiles is the relation's total tile count (0 for formats
	// without tiles); TilesScanned + TilesSkipped == NumTiles.
	NumTiles int64
	// SegmentsLive is the number of live segment files backing the
	// relation at plan time (0 for in-memory and single-file tables).
	SegmentsLive int64
	// Morsels is the number of work units the morsel scheduler cut the
	// scan into (what parallel workers pulled from the shared queue).
	Morsels      int64
	TilesScanned int64
	// TilesSkipped counts tiles pruned without reading any tuple
	// (§4.8).
	TilesSkipped int64
	RowsScanned  int64
	// ColumnHits counts accesses served from a materialized column;
	// JSONBFallbacks counts accesses that fell back to the per-tuple
	// binary JSON (§4.5/§5).
	ColumnHits     int64
	JSONBFallbacks int64
	// CastErrors counts stored non-null values a requested cast could
	// not convert.
	CastErrors int64
	// Batches counts column batches emitted when the scan took the
	// vectorized path (0 on the row-at-a-time path). RowsVectorized
	// counts rows whose every access came from a typed column vector;
	// RowsFallback counts rows that needed at least one cell
	// materialized from binary JSON.
	Batches        int64
	RowsVectorized int64
	RowsFallback   int64
	// Segment I/O (zero for in-memory relations): blocks and stored
	// bytes read from disk, and buffer-pool hits vs misses for the
	// scan's block accesses. Skipped tiles and unaccessed columns
	// never appear here — their blocks are simply never requested.
	BlocksRead int64
	BlockBytes int64
	PoolHits   int64
	PoolMisses int64
	// Block-store traffic (zero for in-memory relations): ranged read
	// requests issued to the store (retry attempts included), payload
	// bytes those requests returned (coalescing gap bytes included),
	// block fetches saved by coalescing adjacent reads, pool hits on
	// readahead-resident blocks, and transient-failure retries.
	StoreRangeReads   int64
	StoreBytesRead    int64
	StoreCoalesced    int64
	StorePrefetchHits int64
	StoreRetries      int64
}

// SkipRatio is the fraction of tiles skipped.
func (s ScanStats) SkipRatio() float64 {
	total := s.TilesScanned + s.TilesSkipped
	if total == 0 {
		return 0
	}
	return float64(s.TilesSkipped) / float64(total)
}

// QueryStats summarizes one query execution; Options.OnQueryDone
// receives it after every Run/RunAnalyzed (e.g. for slow-query
// logging).
type QueryStats struct {
	// Tenant is the identity the query ran under (obs.WithTenant);
	// empty for direct library calls.
	Tenant string
	// Plan is the executed plan; per-operator stats are filled only
	// when Analyzed is set (RunAnalyzed).
	Plan *PlanNode
	// Wall is the end-to-end query time, PlanTime the optimizer's
	// share, ExecTime the operator execution and materialization.
	Wall     time.Duration
	PlanTime time.Duration
	ExecTime time.Duration
	// RowsReturned is the final result size.
	RowsReturned int64
	// Analyzed reports whether per-operator statistics were collected.
	Analyzed bool
	// QueryID is the live-query registry's ID for this execution;
	// PlanDigest is a stable 64-bit hash of the plan shape (hex), the
	// key used to correlate slow-query log lines, /debug/queries rows,
	// and trace-ring entries of the same query template.
	QueryID    uint64
	PlanDigest string
	// DictKernelShortcuts counts predicate kernels that evaluated in
	// dictionary code space during this query's execution window;
	// DictGroupByBatches counts batches aggregated through the
	// code-indexed GROUP BY fast path. Both are process-wide counter
	// deltas: exact when queries run one at a time.
	DictKernelShortcuts int64
	DictGroupByBatches  int64
}

// String renders the summary line followed by the plan tree.
func (s QueryStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "wall %s  plan %s  exec %s  rows %d",
		s.Wall.Round(time.Microsecond), s.PlanTime.Round(time.Microsecond),
		s.ExecTime.Round(time.Microsecond), s.RowsReturned)
	if s.DictKernelShortcuts > 0 || s.DictGroupByBatches > 0 {
		fmt.Fprintf(&sb, "  dict_kernels=%d dict_groupby=%d",
			s.DictKernelShortcuts, s.DictGroupByBatches)
	}
	sb.WriteByte('\n')
	if s.Plan != nil {
		sb.WriteString(s.Plan.String())
	}
	return sb.String()
}

// Explain returns the plan the optimizer chooses for the query — join
// order, cardinality estimates, pushed-down filters — without
// executing it.
func (q *Query) Explain() (*PlanNode, error) {
	root, err := q.buildPlan(context.Background(), true, nil, nil)
	if err != nil {
		return nil, err
	}
	return planNode(root, false), nil
}

// planDigest hashes the plan's shape — operator kinds, details, and
// tree structure, not runtime statistics — so repeated executions of
// the same query template share one digest.
func planDigest(root engine.Operator) string {
	var sb strings.Builder
	digestWalk(&sb, root)
	return fmt.Sprintf("%016x", xxhash.Sum64([]byte(sb.String())))
}

func digestWalk(sb *strings.Builder, op engine.Operator) {
	if tr, ok := op.(*engine.Traced); ok {
		fmt.Fprintf(sb, "%s(%s)", tr.Label, tr.Detail)
		sb.WriteByte('[')
		digestWalk(sb, tr.In)
		sb.WriteByte(']')
		return
	}
	n := describeOperator(op)
	fmt.Fprintf(sb, "%s(%s)", n.Op, n.Detail)
	sb.WriteByte('[')
	for _, in := range engine.Inputs(op) {
		digestWalk(sb, in)
		sb.WriteByte(';')
	}
	sb.WriteByte(']')
}

// RunAnalyzed executes the query with per-operator instrumentation and
// returns the result together with the analyzed plan: measured wall
// time and row count per operator, and per-table scan statistics
// (tiles scanned vs skipped, column hits vs binary-JSON fallbacks).
func (q *Query) RunAnalyzed() (*Result, *QueryStats, error) {
	return q.run(context.Background(), true)
}

// RunAnalyzedContext is RunAnalyzed under a per-query context (see
// RunContext for the cancellation and tenant semantics).
func (q *Query) RunAnalyzedContext(ctx context.Context) (*Result, *QueryStats, error) {
	return q.run(ctx, true)
}

// planNode converts an operator (sub)tree into its plan description.
func planNode(op engine.Operator, analyzed bool) *PlanNode {
	if tr, ok := op.(*engine.Traced); ok {
		n := &PlanNode{Op: tr.Label, Detail: tr.Detail, EstRows: tr.EstRows}
		if analyzed && tr.Ran() {
			n.Analyzed = true
			n.Wall = tr.WallTime()
			n.Rows = tr.Rows()
			if gb, ok := tr.In.(*engine.GroupBy); ok {
				n.AggPartitions = gb.Partitions()
			}
			if tr.ScanStats != nil {
				s := snapshotScanStats(tr.ScanStats)
				if sc, ok := tr.In.(*engine.Scan); ok {
					s.Table = sc.Rel.Name()
				}
				n.Scan = &s
			}
		}
		n.Children = planChildren(tr.In)
		return n
	}
	n := describeOperator(op)
	n.Children = planChildren(op)
	return n
}

func planChildren(op engine.Operator) []*PlanNode {
	ins := engine.Inputs(op)
	if len(ins) == 0 {
		return nil
	}
	out := make([]*PlanNode, len(ins))
	for i, in := range ins {
		out[i] = planNode(in, true)
	}
	return out
}

// describeOperator labels an untraced operator (the plain Run path
// still reports the plan shape to OnQueryDone).
func describeOperator(op engine.Operator) *PlanNode {
	switch x := op.(type) {
	case *engine.Scan:
		return &PlanNode{Op: "Scan", Detail: x.Rel.Name(), EstRows: -1}
	case *engine.Select:
		return &PlanNode{Op: "Select", EstRows: -1}
	case *engine.Project:
		return &PlanNode{Op: "Project", Detail: fmt.Sprintf("%d cols", len(x.Exprs)), EstRows: -1}
	case *engine.HashJoin:
		return &PlanNode{Op: "HashJoin", Detail: fmt.Sprintf("%d keys", len(x.LeftKeys)), EstRows: -1}
	case *engine.GroupBy:
		return &PlanNode{Op: "GroupBy",
			Detail: fmt.Sprintf("%d groups, %d aggs", len(x.Groups), len(x.Aggs)), EstRows: -1}
	case *engine.OrderBy:
		return &PlanNode{Op: "OrderBy", Detail: fmt.Sprintf("%d keys", len(x.Keys)), EstRows: -1}
	case *engine.Limit:
		return &PlanNode{Op: "Limit", Detail: fmt.Sprintf("%d", x.N), EstRows: -1}
	default:
		return &PlanNode{Op: fmt.Sprintf("%T", op), EstRows: -1}
	}
}

func snapshotScanStats(st *obs.ScanStats) ScanStats {
	return ScanStats{
		NumTiles:       st.NumTiles,
		SegmentsLive:   st.SegmentsLive,
		Morsels:        st.Morsels.Load(),
		TilesScanned:   st.TilesScanned.Load(),
		TilesSkipped:   st.TilesSkipped.Load(),
		RowsScanned:    st.RowsScanned.Load(),
		ColumnHits:     st.ColumnHits.Load(),
		JSONBFallbacks: st.JSONBFallbacks.Load(),
		CastErrors:     st.CastErrors.Load(),
		Batches:        st.Batches.Load(),
		RowsVectorized: st.RowsVectorized.Load(),
		RowsFallback:   st.RowsFallback.Load(),
		BlocksRead:     st.BlocksRead.Load(),
		BlockBytes:     st.BlockBytes.Load(),
		PoolHits:       st.PoolHits.Load(),
		PoolMisses:     st.PoolMisses.Load(),

		StoreRangeReads:   st.StoreRangeReads.Load(),
		StoreBytesRead:    st.StoreBytesRead.Load(),
		StoreCoalesced:    st.StoreCoalesced.Load(),
		StorePrefetchHits: st.StorePrefetchHits.Load(),
		StoreRetries:      st.StoreRetries.Load(),
	}
}

// Find returns the first node (pre-order) whose Op matches, or nil —
// a convenience for tests and tools digging into one operator.
func (n *PlanNode) Find(op string) *PlanNode {
	if n == nil {
		return nil
	}
	if n.Op == op {
		return n
	}
	for _, c := range n.Children {
		if m := c.Find(op); m != nil {
			return m
		}
	}
	return nil
}

// String renders the plan as an indented tree, one operator per line:
//
//	GroupBy (1 groups, 2 aggs)  [rows=4 wall=1.2ms]
//	└─ Project (2 cols)  [rows=980 wall=3.1ms]
//	   └─ Scan t0 logs (filtered)  [rows=980 wall=2.9ms; tiles 8/12 scanned, 4 skipped (33%); hits=1960 fallbacks=0]
func (n *PlanNode) String() string {
	var sb strings.Builder
	n.write(&sb, "", "")
	return sb.String()
}

func (n *PlanNode) write(sb *strings.Builder, prefix, childPrefix string) {
	sb.WriteString(prefix)
	sb.WriteString(n.Op)
	if n.Detail != "" {
		fmt.Fprintf(sb, " (%s)", n.Detail)
	}
	if n.EstRows >= 0 {
		fmt.Fprintf(sb, " est=%.0f", n.EstRows)
	}
	if n.Analyzed {
		fmt.Fprintf(sb, "  [rows=%d wall=%s", n.Rows, n.Wall.Round(time.Microsecond))
		if n.AggPartitions > 0 {
			fmt.Fprintf(sb, " agg_partitions=%d", n.AggPartitions)
		}
		if s := n.Scan; s != nil {
			if s.SegmentsLive > 0 {
				fmt.Fprintf(sb, "; segments_live=%d", s.SegmentsLive)
			}
			if s.Morsels > 0 {
				fmt.Fprintf(sb, "; morsels=%d", s.Morsels)
			}
			if s.NumTiles > 0 {
				fmt.Fprintf(sb, "; tiles %d/%d scanned, %d skipped (%.0f%%)",
					s.TilesScanned, s.NumTiles, s.TilesSkipped, 100*s.SkipRatio())
			}
			fmt.Fprintf(sb, "; hits=%d fallbacks=%d", s.ColumnHits, s.JSONBFallbacks)
			if s.CastErrors > 0 {
				fmt.Fprintf(sb, " cast_errors=%d", s.CastErrors)
			}
			if s.Batches > 0 {
				fmt.Fprintf(sb, "; batches=%d vec=%d rowfb=%d",
					s.Batches, s.RowsVectorized, s.RowsFallback)
			}
			if s.PoolHits+s.PoolMisses > 0 {
				fmt.Fprintf(sb, "; blocks=%d io=%dB pool %d hit/%d miss",
					s.BlocksRead, s.BlockBytes, s.PoolHits, s.PoolMisses)
			}
			if s.StoreRangeReads > 0 {
				fmt.Fprintf(sb, "; store reads=%d bytes=%dB coalesced=%d prefetch_hits=%d",
					s.StoreRangeReads, s.StoreBytesRead, s.StoreCoalesced, s.StorePrefetchHits)
				if s.StoreRetries > 0 {
					fmt.Fprintf(sb, " retries=%d", s.StoreRetries)
				}
			}
		}
		sb.WriteString("]")
	}
	sb.WriteByte('\n')
	for i, c := range n.Children {
		connector, next := "├─ ", "│  "
		if i == len(n.Children)-1 {
			connector, next = "└─ ", "   "
		}
		c.write(sb, childPrefix+connector, childPrefix+next)
	}
}
