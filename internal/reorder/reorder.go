// Package reorder implements the tile-partition tuple reordering of
// paper §3.2. Workloads without spatial locality (Figure 3's news
// items, shuffled inserts, parallel loading) spread each document
// structure thinly over all tiles, so no structure reaches the
// extraction threshold anywhere. Reordering clusters tuples with the
// same frequent itemset into the same tiles of a partition so the
// original threshold is met again.
//
// The six steps of the paper:
//
//  1. mine each tile with the threshold reduced to threshold/partitionSize
//  2. exchange itemsets across the partition; keep those whose exact
//     partition-wide frequency reaches threshold × tileSize
//  3. match every tuple to the itemset that describes it best (most
//     items in common, then largest, ties by minimal item-id sum so
//     every equal tuple matches the same itemset)
//  4. aggregate per-itemset counts and greedily map itemset groups to
//     tiles so the original threshold is reached where possible
//  5. move tuples to their assigned tiles (we apply the computed
//     permutation directly — the in-place swap schedule of the paper
//     is an artifact of paged storage and yields the same layout)
//  6. the caller re-mines each reordered tile with the original
//     threshold to find the final extraction columns (tile.Builder.Build)
package reorder

import (
	"math"
	"sort"
	"time"

	"repro/internal/fpgrowth"
	"repro/internal/jsontape"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/tile"
)

// Result reports what reordering did, for tests and diagnostics.
type Result struct {
	// SurvivingItemsets is the number of partition-wide frequent
	// itemsets used as cluster targets.
	SurvivingItemsets int
	// Matched is the number of tuples matched to some itemset.
	Matched int
	// Moved is the number of tuples whose position changed.
	Moved int
}

// Partition reorders one partition's documents in place. docs holds
// up to PartitionSize × TileSize documents in insertion order; after
// the call they are permuted so that tiles (consecutive TileSize
// runs) cluster tuples of equal frequent structure.
func Partition(docs []jsonvalue.Value, cfg tile.Config, m *tile.Metrics) Result {
	start := time.Now()
	defer func() {
		if m != nil {
			m.ReorderNanos.Add(time.Since(start).Nanoseconds())
		}
	}()
	if len(docs) == 0 || cfg.PartitionSize <= 1 {
		return Result{}
	}
	tileSize := effectiveTileSize(cfg)
	if len(docs) <= tileSize {
		return Result{} // a single tile: nothing to redistribute
	}

	dict := keypath.NewDict()
	txs := tile.CollectTransactions(docs, cfg.MaxArraySlots, dict)
	order, res := computeOrder(txs, cfg, tileSize)
	if order == nil {
		return res
	}

	// Apply the permutation.
	newDocs := make([]jsonvalue.Value, len(docs))
	for newPos, oldPos := range order {
		newDocs[newPos] = docs[oldPos]
		if newPos != oldPos {
			res.Moved++
		}
	}
	copy(docs, newDocs)
	return res
}

// PartitionTapes is the tape-ingest analogue of Partition: it reorders
// parsed tape documents in place using transactions collected straight
// from the tapes, with the identical clustering algorithm — the
// resulting permutation matches Partition over the materialized trees.
func PartitionTapes(tapes []*jsontape.Doc, cfg tile.Config, m *tile.Metrics) Result {
	start := time.Now()
	defer func() {
		if m != nil {
			m.ReorderNanos.Add(time.Since(start).Nanoseconds())
		}
	}()
	if len(tapes) == 0 || cfg.PartitionSize <= 1 {
		return Result{}
	}
	tileSize := effectiveTileSize(cfg)
	if len(tapes) <= tileSize {
		return Result{} // a single tile: nothing to redistribute
	}

	dict := keypath.NewDict()
	txs := tile.CollectTapeTransactions(tapes, cfg.MaxArraySlots, dict)
	order, res := computeOrder(txs, cfg, tileSize)
	if order == nil {
		return res
	}

	newTapes := make([]*jsontape.Doc, len(tapes))
	for newPos, oldPos := range order {
		newTapes[newPos] = tapes[oldPos]
		if newPos != oldPos {
			res.Moved++
		}
	}
	copy(tapes, newTapes)
	return res
}

func effectiveTileSize(cfg tile.Config) int {
	if cfg.TileSize > 0 {
		return cfg.TileSize
	}
	return tile.DefaultConfig().TileSize
}

// computeOrder runs steps 1-4 over the collected transactions and
// returns the tuple permutation (nil when nothing survives filtering)
// plus the partial Result (Moved is filled in by the caller).
func computeOrder(txs [][]int32, cfg tile.Config, tileSize int) ([]int, Result) {
	// Step 1: per-tile mining with the reduced threshold.
	reduced := cfg.Threshold / float64(cfg.PartitionSize)
	var candidates []fpgrowth.Itemset
	for lo := 0; lo < len(txs); lo += tileSize {
		hi := lo + tileSize
		if hi > len(txs) {
			hi = len(txs)
		}
		support := int(math.Ceil(reduced * float64(hi-lo)))
		if support < 1 {
			support = 1
		}
		miner := fpgrowth.Miner{MinSupport: support, Budget: cfg.Budget}
		sets := miner.Mine(txs[lo:hi])
		candidates = append(candidates, fpgrowth.Maximal(sets)...)
	}

	// Step 2: exchange and filter. Deduplicate the candidates, then
	// count each one's exact partition-wide frequency; survivors need
	// threshold × tileSize matches.
	seen := map[string]bool{}
	var unique []fpgrowth.Itemset
	for _, s := range candidates {
		k := itemsKey(s.Items)
		if !seen[k] {
			seen[k] = true
			unique = append(unique, s)
		}
	}
	need := int(math.Ceil(cfg.Threshold * float64(tileSize)))
	var survivors []fpgrowth.Itemset
	for _, s := range unique {
		count := 0
		for _, tx := range txs {
			if containsAll(tx, s.Items) {
				count++
			}
		}
		if count >= need {
			s.Count = count
			survivors = append(survivors, s)
		}
	}
	if len(survivors) == 0 {
		return nil, Result{}
	}
	// Deterministic survivor order: size desc, count desc, items asc.
	sort.Slice(survivors, func(i, j int) bool {
		a, b := survivors[i], survivors[j]
		if len(a.Items) != len(b.Items) {
			return len(a.Items) > len(b.Items)
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return itemsKey(a.Items) < itemsKey(b.Items)
	})

	// Step 3: match each tuple to its best itemset.
	matchOf := make([]int, len(txs)) // survivor index, -1 = unmatched
	matched := 0
	for i, tx := range txs {
		matchOf[i] = -1
		bestOverlap, bestSize := 0, 0
		bestSum := int64(math.MaxInt64)
		for si, s := range survivors {
			ov := fpgrowth.Overlap(s.Items, tx)
			if ov == 0 {
				continue
			}
			sum := itemSum(s.Items)
			better := false
			switch {
			case ov > bestOverlap:
				better = true
			case ov == bestOverlap && len(s.Items) > bestSize:
				better = true
			case ov == bestOverlap && len(s.Items) == bestSize && sum < bestSum:
				better = true
			}
			if better {
				bestOverlap, bestSize, bestSum = ov, len(s.Items), sum
				matchOf[i] = si
			}
		}
		if matchOf[i] >= 0 {
			matched++
		}
	}

	// Step 4+5: group tuples by matched itemset and map groups to
	// tiles greedily so each tile reaches the original threshold where
	// possible. Every tile is anchored by the largest remaining group;
	// leftover space is filled from unmatched tuples and the smallest
	// groups (which could not have filled a tile anyway), so large
	// groups are never diluted across tile boundaries — plain
	// contiguous packing would create boundary tiles where two groups
	// both miss the threshold. Within a group the original order is
	// kept (stable clustering preserves existing locality).
	groups := make([][]int, len(survivors))
	var unmatched []int
	for i, si := range matchOf {
		if si < 0 {
			unmatched = append(unmatched, i)
		} else {
			groups[si] = append(groups[si], i)
		}
	}
	groupIdx := make([]int, 0, len(groups))
	for gi := range groups {
		if len(groups[gi]) > 0 {
			groupIdx = append(groupIdx, gi)
		}
	}
	// Largest groups first; unmatched tuples act as the very smallest
	// "group" and are consumed as filler from the end of the list.
	sort.SliceStable(groupIdx, func(a, b int) bool {
		return len(groups[groupIdx[a]]) > len(groups[groupIdx[b]])
	})
	pools := make([][]int, 0, len(groupIdx)+1)
	for _, gi := range groupIdx {
		pools = append(pools, groups[gi])
	}
	pools = append(pools, unmatched)

	order := make([]int, 0, len(txs))
	head, tail := 0, len(pools)-1
	for len(order) < len(txs) {
		space := tileSize
		if remaining := len(txs) - len(order); remaining < space {
			space = remaining
		}
		// Anchor: the largest remaining group.
		for head <= tail && len(pools[head]) == 0 {
			head++
		}
		if head > tail {
			break
		}
		take := space
		if take > len(pools[head]) {
			take = len(pools[head])
		}
		order = append(order, pools[head][:take]...)
		pools[head] = pools[head][take:]
		space -= take
		// Fill remaining space from the smallest pools backwards.
		for space > 0 {
			for tail >= head && len(pools[tail]) == 0 {
				tail--
			}
			if tail < head {
				break
			}
			t := space
			pool := pools[tail]
			if t > len(pool) {
				t = len(pool)
			}
			// Take from the pool's end: its head stays contiguous for
			// its own anchor tile later.
			order = append(order, pool[len(pool)-t:]...)
			pools[tail] = pool[:len(pool)-t]
			space -= t
		}
	}

	return order, Result{SurvivingItemsets: len(survivors), Matched: matched}
}

func itemsKey(items []int32) string {
	b := make([]byte, 0, len(items)*4)
	for _, it := range items {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

func itemSum(items []int32) int64 {
	total := int64(0)
	for _, it := range items {
		total += int64(it)
	}
	return total
}

// containsAll reports whether the sorted transaction contains every
// item of the sorted itemset.
func containsAll(tx, items []int32) bool {
	i := 0
	for _, x := range items {
		for i < len(tx) && tx[i] < x {
			i++
		}
		if i >= len(tx) || tx[i] != x {
			return false
		}
		i++
	}
	return true
}
