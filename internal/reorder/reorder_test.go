package reorder

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/tile"
)

// mkDocs builds n docs of the given structure id. Structures are
// disjoint (no shared key paths), like Figure 4's patterns.
func mkDocs(n, structure int) []jsonvalue.Value {
	out := make([]jsonvalue.Value, n)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(`{"s%d_a":%d, "s%d_b":"v%d", "s%d_c":%d}`,
			structure, i, structure, i, structure, i%7)
		v, err := jsontext.ParseString(src)
		if err != nil {
			panic(err)
		}
		out[i] = v
	}
	return out
}

func interleave(groups ...[]jsonvalue.Value) []jsonvalue.Value {
	var out []jsonvalue.Value
	for i := 0; ; i++ {
		appended := false
		for _, g := range groups {
			if i < len(g) {
				out = append(out, g[i])
				appended = true
			}
		}
		if !appended {
			return out
		}
	}
}

func cfg(tileSize, partSize int) tile.Config {
	c := tile.DefaultConfig()
	c.TileSize = tileSize
	c.PartitionSize = partSize
	c.DetectDates = false
	return c
}

// extractionQuality builds tiles from docs and returns the fraction of
// (doc, own-structure-path) pairs served by a materialized column.
func extractionQuality(t *testing.T, docs []jsonvalue.Value, c tile.Config) float64 {
	t.Helper()
	b := tile.NewBuilder(c, nil)
	totalCols := 0
	tiles := 0
	for lo := 0; lo < len(docs); lo += c.TileSize {
		hi := lo + c.TileSize
		if hi > len(docs) {
			hi = len(docs)
		}
		tl := b.Build(docs[lo:hi])
		totalCols += len(tl.Columns())
		tiles++
	}
	return float64(totalCols) / float64(tiles)
}

func TestFigure4Scenario(t *testing.T) {
	// 4 disjoint structures interleaved round-robin: before reordering
	// each structure is 25% per tile — below the 60% threshold, so no
	// tile can extract anything. After reordering, tiles are pure.
	const tileSize = 40
	groups := [][]jsonvalue.Value{
		mkDocs(40, 0), mkDocs(40, 1), mkDocs(40, 2), mkDocs(40, 3),
	}
	docs := interleave(groups...)
	c := cfg(tileSize, 4)

	before := extractionQuality(t, append([]jsonvalue.Value(nil), docs...), c)
	if before != 0 {
		t.Fatalf("before reordering, %f columns/tile extracted; scenario broken", before)
	}

	res := Partition(docs, c, nil)
	if res.SurvivingItemsets == 0 {
		t.Fatal("no itemsets survived")
	}
	if res.Matched != len(docs) {
		t.Errorf("matched %d of %d", res.Matched, len(docs))
	}

	after := extractionQuality(t, docs, c)
	if after < 3 { // each structure has 3 key paths
		t.Errorf("after reordering only %.1f columns/tile", after)
	}
}

func TestReorderingClustersStructures(t *testing.T) {
	const tileSize = 10
	docs := interleave(mkDocs(20, 0), mkDocs(20, 1))
	c := cfg(tileSize, 4)
	Partition(docs, c, nil)
	// Every tile must now be homogeneous: all docs in a tile share
	// their first key's structure prefix.
	for lo := 0; lo < len(docs); lo += tileSize {
		first := docs[lo].Members()[0].Key
		for i := lo; i < lo+tileSize && i < len(docs); i++ {
			if docs[i].Members()[0].Key != first {
				t.Fatalf("tile starting at %d mixes structures (%s vs %s)",
					lo, first, docs[i].Members()[0].Key)
			}
		}
	}
}

func TestNoReorderingNeeded(t *testing.T) {
	// Already-clustered docs must not lose extraction quality.
	docs := append(mkDocs(40, 0), mkDocs(40, 1)...)
	c := cfg(40, 2)
	before := extractionQuality(t, append([]jsonvalue.Value(nil), docs...), c)
	Partition(docs, c, nil)
	after := extractionQuality(t, docs, c)
	if after < before {
		t.Errorf("reordering degraded quality: %.1f -> %.1f", before, after)
	}
}

func TestPermutationPreservesMultiset(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var docs []jsonvalue.Value
	for i := 0; i < 100; i++ {
		docs = append(docs, mkDocs(1, r.Intn(5))...)
	}
	idSet := map[string]int{}
	for _, d := range docs {
		idSet[jsontext.SerializeString(d)]++
	}
	Partition(docs, cfg(10, 8), nil)
	after := map[string]int{}
	for _, d := range docs {
		after[jsontext.SerializeString(d)]++
	}
	if len(idSet) != len(after) {
		t.Fatal("document multiset changed")
	}
	for k, v := range idSet {
		if after[k] != v {
			t.Fatalf("document %s count changed %d -> %d", k, v, after[k])
		}
	}
}

func TestEdgeCases(t *testing.T) {
	c := cfg(10, 8)
	// Empty.
	if res := Partition(nil, c, nil); res.Moved != 0 {
		t.Error("empty partition moved tuples")
	}
	// Single tile: no redistribution possible.
	docs := mkDocs(5, 0)
	if res := Partition(docs, c, nil); res.Moved != 0 {
		t.Error("single-tile partition moved tuples")
	}
	// Partition size 1 disables reordering.
	docs2 := interleave(mkDocs(20, 0), mkDocs(20, 1))
	c1 := cfg(10, 1)
	if res := Partition(docs2, c1, nil); res.Moved != 0 {
		t.Error("partitionSize=1 still reordered")
	}
}

func TestHackerNewsFigure3(t *testing.T) {
	// Figure 3: news items of different document types arriving
	// interleaved (story, poll, pollop, comment).
	mk := func(src string) jsonvalue.Value {
		v, err := jsontext.ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	var docs []jsonvalue.Value
	for i := 0; i < 40; i++ {
		docs = append(docs,
			mk(fmt.Sprintf(`{"id":%d,"date":"1/11","type":"story","score":3,"desc":2,"title":"t","url":"u"}`, i*4)),
			mk(fmt.Sprintf(`{"id":%d,"date":"1/12","type":"poll","score":5,"desc":2,"title":"t"}`, i*4+1)),
			mk(fmt.Sprintf(`{"id":%d,"date":"1/13","type":"pollop","score":6,"poll":2,"title":"t"}`, i*4+2)),
			mk(fmt.Sprintf(`{"id":%d,"date":"1/14","type":"comment","parent":4,"text":"x"}`, i*4+3)),
		)
	}
	c := cfg(40, 4)
	res := Partition(docs, c, nil)
	if res.SurvivingItemsets == 0 {
		t.Fatal("no itemsets survived on news items")
	}
	after := extractionQuality(t, docs, c)
	// Comments have 6 paths, stories 7 — after clustering each tile
	// should extract roughly its type's full schema.
	if after < 5 {
		t.Errorf("columns/tile = %.1f after reordering", after)
	}
}

func TestMetricsReorderTime(t *testing.T) {
	var m tile.Metrics
	docs := interleave(mkDocs(20, 0), mkDocs(20, 1))
	Partition(docs, cfg(10, 4), &m)
	if m.ReorderNanos.Load() <= 0 {
		t.Error("reorder time not recorded")
	}
}

func TestSharedKeyPathsAcrossStructures(t *testing.T) {
	// Structures share "id" and "type" but differ otherwise (the
	// realistic combined-log case). Reordering must still cluster, and
	// the shared paths stay extractable everywhere.
	mk := func(i, s int) jsonvalue.Value {
		var src string
		if s == 0 {
			src = fmt.Sprintf(`{"id":%d,"type":"a","payload":%d}`, i, i)
		} else {
			src = fmt.Sprintf(`{"id":%d,"type":"b","msg":"m%d","level":%d}`, i, i, i%3)
		}
		v, _ := jsontext.ParseString(src)
		return v
	}
	var docs []jsonvalue.Value
	for i := 0; i < 80; i++ {
		docs = append(docs, mk(i, i%2))
	}
	c := cfg(20, 4)
	Partition(docs, c, nil)
	b := tile.NewBuilder(c, nil)
	for lo := 0; lo < len(docs); lo += c.TileSize {
		tl := b.Build(docs[lo : lo+c.TileSize])
		if tl.FindColumn("id", keypath.TypeBigInt) < 0 {
			t.Errorf("tile at %d lost shared path id", lo)
		}
	}
}
