// Package simdjsonfiles synthesizes documents with the shape
// characteristics of the standardized test files from the SIMD-JSON
// repository [37], which §6.9 uses to compare binary JSON formats on
// "a wide variety of complex and nested JSON documents". The real
// files are third-party data; each generator here matches its
// namesake's structural profile — nesting depth, container fan-out,
// and type mix — which is what (de)serialization speed, encoded size
// and random-access cost respond to.
package simdjsonfiles

import (
	"fmt"
	"math/rand"

	"repro/internal/jsonvalue"
)

// Names lists the modeled files in the paper's figure order.
func Names() []string {
	return []string{"apache", "canada", "gsoc-2018", "marine_ik",
		"mesh", "numbers", "random", "twitter_api"}
}

// Generate returns one document with the named file's shape. Scale
// stretches the element counts (1 = a few hundred KB equivalent).
func Generate(name string, scale int, seed int64) (jsonvalue.Value, error) {
	if scale < 1 {
		scale = 1
	}
	r := rand.New(rand.NewSource(seed + int64(len(name))))
	switch name {
	case "apache":
		return apacheBuilds(r, scale), nil
	case "canada":
		return canada(r, scale), nil
	case "gsoc-2018":
		return gsoc(r, scale), nil
	case "marine_ik":
		return marineIK(r, scale), nil
	case "mesh":
		return mesh(r, scale), nil
	case "numbers":
		return numbers(r, scale), nil
	case "random":
		return randomUsers(r, scale), nil
	case "twitter_api":
		return twitterAPI(r, scale), nil
	default:
		return jsonvalue.Null(), fmt.Errorf("simdjsonfiles: unknown file %q", name)
	}
}

// MustGenerate panics on unknown names (static benchmark tables).
func MustGenerate(name string, scale int, seed int64) jsonvalue.Value {
	v, err := Generate(name, scale, seed)
	if err != nil {
		panic(err)
	}
	return v
}

func word(r *rand.Rand) string {
	pool := []string{"build", "stable", "jenkins", "module", "commit", "tree",
		"release", "linux", "windows", "failed", "success", "pending", "x86"}
	return pool[r.Intn(len(pool))]
}

// apacheBuilds: a flat-ish object with a large "jobs" array of small,
// uniform string-heavy objects.
func apacheBuilds(r *rand.Rand, scale int) jsonvalue.Value {
	n := 120 * scale
	jobs := make([]jsonvalue.Value, n)
	for i := range jobs {
		jobs[i] = jsonvalue.Object(
			jsonvalue.M("name", jsonvalue.String(fmt.Sprintf("%s-%s-%d", word(r), word(r), i))),
			jsonvalue.M("url", jsonvalue.String(fmt.Sprintf("https://builds.apache.org/job/j%d/", i))),
			jsonvalue.M("color", jsonvalue.String([]string{"blue", "red", "disabled"}[r.Intn(3)])),
		)
	}
	return jsonvalue.Object(
		jsonvalue.M("mode", jsonvalue.String("NORMAL")),
		jsonvalue.M("nodeDescription", jsonvalue.String("the master Jenkins node")),
		jsonvalue.M("numExecutors", jsonvalue.Int(0)),
		jsonvalue.M("useSecurity", jsonvalue.Bool(true)),
		jsonvalue.M("jobs", jsonvalue.Array(jobs...)),
	)
}

// canada: GeoJSON — overwhelmingly float coordinate pairs in deep
// array nesting.
func canada(r *rand.Rand, scale int) jsonvalue.Value {
	nPolys := 12 * scale
	features := make([]jsonvalue.Value, 0, nPolys)
	for p := 0; p < nPolys; p++ {
		nPts := 80 + r.Intn(120)
		ring := make([]jsonvalue.Value, nPts)
		for i := range ring {
			ring[i] = jsonvalue.Array(
				jsonvalue.Float(-141+r.Float64()*88),
				jsonvalue.Float(41+r.Float64()*42),
			)
		}
		features = append(features, jsonvalue.Object(
			jsonvalue.M("type", jsonvalue.String("Feature")),
			jsonvalue.M("properties", jsonvalue.Object(
				jsonvalue.M("name", jsonvalue.String("Canada")))),
			jsonvalue.M("geometry", jsonvalue.Object(
				jsonvalue.M("type", jsonvalue.String("Polygon")),
				jsonvalue.M("coordinates", jsonvalue.Array(jsonvalue.Array(ring...))),
			)),
		))
	}
	return jsonvalue.Object(
		jsonvalue.M("type", jsonvalue.String("FeatureCollection")),
		jsonvalue.M("features", jsonvalue.Array(features...)),
	)
}

// gsoc-2018: one huge object whose members are uniform sub-objects —
// many keys at one level, string heavy.
func gsoc(r *rand.Rand, scale int) jsonvalue.Value {
	n := 100 * scale
	members := make([]jsonvalue.Member, n)
	for i := range members {
		members[i] = jsonvalue.M(fmt.Sprintf("%d", i+1), jsonvalue.Object(
			jsonvalue.M("@context", jsonvalue.Object(
				jsonvalue.M("@vocab", jsonvalue.String("http://schema.org/")))),
			jsonvalue.M("@type", jsonvalue.String("SoftwareSourceCode")),
			jsonvalue.M("name", jsonvalue.String(fmt.Sprintf("project %s %d", word(r), i))),
			jsonvalue.M("description", jsonvalue.String(fmt.Sprintf("%s %s %s %s", word(r), word(r), word(r), word(r)))),
			jsonvalue.M("sponsor", jsonvalue.Object(
				jsonvalue.M("@type", jsonvalue.String("Organization")),
				jsonvalue.M("name", jsonvalue.String(word(r))),
			)),
			jsonvalue.M("author", jsonvalue.Object(
				jsonvalue.M("@type", jsonvalue.String("Person")),
				jsonvalue.M("name", jsonvalue.String(word(r))),
			)),
		))
	}
	return jsonvalue.Object(members...)
}

// marine_ik: a 3D model export — deep nesting with long float arrays
// (keyframe tracks) and int index arrays.
func marineIK(r *rand.Rand, scale int) jsonvalue.Value {
	nTracks := 8 * scale
	tracks := make([]jsonvalue.Value, nTracks)
	for tIdx := range tracks {
		nKeys := 200 + r.Intn(100)
		times := make([]jsonvalue.Value, nKeys)
		values := make([]jsonvalue.Value, nKeys*3)
		for i := 0; i < nKeys; i++ {
			times[i] = jsonvalue.Float(float64(i) / 30)
		}
		for i := range values {
			values[i] = jsonvalue.Float(r.NormFloat64())
		}
		tracks[tIdx] = jsonvalue.Object(
			jsonvalue.M("name", jsonvalue.String(fmt.Sprintf("bone%03d.position", tIdx))),
			jsonvalue.M("type", jsonvalue.String("vector3")),
			jsonvalue.M("times", jsonvalue.Array(times...)),
			jsonvalue.M("values", jsonvalue.Array(values...)),
		)
	}
	nVerts := 600 * scale
	verts := make([]jsonvalue.Value, nVerts)
	for i := range verts {
		verts[i] = jsonvalue.Float(r.NormFloat64() * 10)
	}
	return jsonvalue.Object(
		jsonvalue.M("metadata", jsonvalue.Object(
			jsonvalue.M("version", jsonvalue.Float(4.5)),
			jsonvalue.M("type", jsonvalue.String("Object")),
		)),
		jsonvalue.M("geometries", jsonvalue.Array(jsonvalue.Object(
			jsonvalue.M("uuid", jsonvalue.String("0A8F2988-626F-411C-BCBE")),
			jsonvalue.M("type", jsonvalue.String("BufferGeometry")),
			jsonvalue.M("data", jsonvalue.Object(
				jsonvalue.M("vertices", jsonvalue.Array(verts...)))),
		))),
		jsonvalue.M("animations", jsonvalue.Array(jsonvalue.Object(
			jsonvalue.M("name", jsonvalue.String("idle")),
			jsonvalue.M("tracks", jsonvalue.Array(tracks...)),
		))),
	)
}

// mesh: mostly integer index arrays and float vertex arrays, shallow.
func mesh(r *rand.Rand, scale int) jsonvalue.Value {
	nIdx := 3000 * scale
	idx := make([]jsonvalue.Value, nIdx)
	for i := range idx {
		idx[i] = jsonvalue.Int(int64(r.Intn(10000)))
	}
	nV := 1500 * scale
	verts := make([]jsonvalue.Value, nV)
	for i := range verts {
		verts[i] = jsonvalue.Float(r.NormFloat64())
	}
	return jsonvalue.Object(
		jsonvalue.M("indices", jsonvalue.Array(idx...)),
		jsonvalue.M("vertices", jsonvalue.Array(verts...)),
		jsonvalue.M("count", jsonvalue.Int(int64(nIdx))),
	)
}

// numbers: a flat array of doubles.
func numbers(r *rand.Rand, scale int) jsonvalue.Value {
	n := 3000 * scale
	elems := make([]jsonvalue.Value, n)
	for i := range elems {
		elems[i] = jsonvalue.Float(r.NormFloat64() * 1000)
	}
	return jsonvalue.Array(elems...)
}

// random: user records with unicode strings and mixed scalar types.
func randomUsers(r *rand.Rand, scale int) jsonvalue.Value {
	n := 150 * scale
	users := make([]jsonvalue.Value, n)
	names := []string{"Дмитрий", "Олег", "Анна", "José", "François", "青木",
		"علی", "Müller", "Ольга", "Екатерина"}
	for i := range users {
		users[i] = jsonvalue.Object(
			jsonvalue.M("id", jsonvalue.Int(int64(i))),
			jsonvalue.M("name", jsonvalue.String(names[r.Intn(len(names))])),
			jsonvalue.M("language", jsonvalue.String([]string{"ru", "en", "de"}[r.Intn(3)])),
			jsonvalue.M("bio", jsonvalue.String(fmt.Sprintf("%s %s %s", word(r), word(r), word(r)))),
			jsonvalue.M("version", jsonvalue.Float(float64(r.Intn(100))/10)),
			jsonvalue.M("verified", jsonvalue.Bool(r.Intn(2) == 0)),
		)
	}
	return jsonvalue.Object(
		jsonvalue.M("result", jsonvalue.Array(users...)))
}

// twitterAPI: nested tweet objects with entities, like the search API
// response the file snapshots.
func twitterAPI(r *rand.Rand, scale int) jsonvalue.Value {
	n := 25 * scale
	statuses := make([]jsonvalue.Value, n)
	for i := range statuses {
		nTags := r.Intn(4)
		tags := make([]jsonvalue.Value, nTags)
		for tIdx := range tags {
			tags[tIdx] = jsonvalue.Object(
				jsonvalue.M("text", jsonvalue.String(word(r))),
				jsonvalue.M("indices", jsonvalue.Array(jsonvalue.Int(0), jsonvalue.Int(8))),
			)
		}
		statuses[i] = jsonvalue.Object(
			jsonvalue.M("created_at", jsonvalue.String("Sun Aug 31 00:29:15 +0000 2014")),
			jsonvalue.M("id", jsonvalue.Int(505874924095815700+int64(i))),
			jsonvalue.M("id_str", jsonvalue.String(fmt.Sprintf("%d", 505874924095815700+int64(i)))),
			jsonvalue.M("text", jsonvalue.String(fmt.Sprintf("%s %s %s %s", word(r), word(r), word(r), word(r)))),
			jsonvalue.M("user", jsonvalue.Object(
				jsonvalue.M("id", jsonvalue.Int(int64(r.Intn(100000)))),
				jsonvalue.M("screen_name", jsonvalue.String(word(r))),
				jsonvalue.M("followers_count", jsonvalue.Int(int64(r.Intn(10000)))),
				jsonvalue.M("profile_image_url", jsonvalue.String("http://pbs.twimg.com/profile_images/x.jpeg")),
			)),
			jsonvalue.M("entities", jsonvalue.Object(
				jsonvalue.M("hashtags", jsonvalue.Array(tags...)),
				jsonvalue.M("symbols", jsonvalue.Array()),
			)),
			jsonvalue.M("retweet_count", jsonvalue.Int(int64(r.Intn(100)))),
			jsonvalue.M("favorited", jsonvalue.Bool(false)),
			jsonvalue.M("lang", jsonvalue.String("en")),
		)
	}
	return jsonvalue.Object(
		jsonvalue.M("statuses", jsonvalue.Array(statuses...)),
		jsonvalue.M("search_metadata", jsonvalue.Object(
			jsonvalue.M("completed_in", jsonvalue.Float(0.087)),
			jsonvalue.M("count", jsonvalue.Int(int64(n))),
		)),
	)
}
