package simdjsonfiles

import (
	"testing"

	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
)

func TestAllFilesGenerate(t *testing.T) {
	for _, name := range Names() {
		v, err := Generate(name, 1, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Round-trips through text (valid JSON, no NaN/Inf leakage).
		text := jsontext.Serialize(v)
		back, err := jsontext.Parse(text)
		if err != nil {
			t.Fatalf("%s does not serialize to valid JSON: %v", name, err)
		}
		if !back.Equal(v) {
			t.Errorf("%s round trip changed the document", name)
		}
		if len(text) < 5000 {
			t.Errorf("%s suspiciously small: %d bytes", name, len(text))
		}
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := Generate("nope", 1, 1); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestDeterministic(t *testing.T) {
	a := MustGenerate("canada", 1, 5)
	b := MustGenerate("canada", 1, 5)
	if !a.Equal(b) {
		t.Error("generation not deterministic")
	}
}

func TestScaleGrows(t *testing.T) {
	small := len(jsontext.Serialize(MustGenerate("numbers", 1, 1)))
	big := len(jsontext.Serialize(MustGenerate("numbers", 3, 1)))
	if big < 2*small {
		t.Errorf("scale did not grow output: %d -> %d", small, big)
	}
}

func TestShapeProfiles(t *testing.T) {
	// canada: overwhelmingly floats in nested arrays.
	canada := MustGenerate("canada", 1, 1)
	floats, strings := 0, 0
	var walk func(v jsonvalue.Value)
	walk = func(v jsonvalue.Value) {
		switch v.Kind() {
		case jsonvalue.KindFloat:
			floats++
		case jsonvalue.KindString:
			strings++
		case jsonvalue.KindArray:
			for _, e := range v.Elems() {
				walk(e)
			}
		case jsonvalue.KindObject:
			for _, m := range v.Members() {
				walk(m.Value)
			}
		}
	}
	walk(canada)
	if floats < strings*10 {
		t.Errorf("canada shape wrong: %d floats vs %d strings", floats, strings)
	}

	// gsoc-2018: a single wide object.
	gsoc := MustGenerate("gsoc-2018", 1, 1)
	if gsoc.Kind() != jsonvalue.KindObject || gsoc.Len() < 50 {
		t.Errorf("gsoc shape: kind=%v len=%d", gsoc.Kind(), gsoc.Len())
	}

	// numbers: a flat array root.
	nums := MustGenerate("numbers", 1, 1)
	if nums.Kind() != jsonvalue.KindArray {
		t.Errorf("numbers root: %v", nums.Kind())
	}
}
