package hackernews

import (
	"bytes"
	"testing"

	"repro/internal/jsontext"
)

func TestGenerate(t *testing.T) {
	lines := Generate(100, false, 1)
	if len(lines) != 100 {
		t.Fatalf("%d lines", len(lines))
	}
	counts := map[string]int{}
	for i, l := range lines {
		if !jsontext.Valid(l) {
			t.Fatalf("doc %d invalid: %s", i, l)
		}
		for _, typ := range ItemTypes() {
			if bytes.Contains(l, []byte(`"type":"`+typ+`"`)) {
				counts[typ]++
			}
		}
	}
	// Round-robin: exactly 25 of each.
	for _, typ := range ItemTypes() {
		if counts[typ] != 25 {
			t.Errorf("%s count = %d", typ, counts[typ])
		}
	}
	// Interleaved: consecutive docs differ in type.
	if bytes.Contains(lines[0], []byte(`"type":"story"`)) == bytes.Contains(lines[1], []byte(`"type":"story"`)) {
		t.Error("not interleaved")
	}
}

func TestGenerateShuffled(t *testing.T) {
	lines := Generate(200, true, 1)
	if len(lines) != 200 {
		t.Fatal("count")
	}
	for _, l := range lines {
		if !jsontext.Valid(l) {
			t.Fatal("invalid doc")
		}
	}
}
