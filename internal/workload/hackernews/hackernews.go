// Package hackernews generates the news-item mix of the paper's
// Figure 3: a collection where every document is one of several item
// types (story, poll, pollopt, comment) with little spatial locality —
// the motivating case for tile-partition tuple reordering (§3.2).
package hackernews

import (
	"fmt"
	"math/rand"
)

// ItemTypes lists the document types in the mix.
func ItemTypes() []string { return []string{"story", "poll", "pollopt", "comment"} }

// Generate emits n interleaved items, round-robin across types when
// shuffle is false (the worst case for locality) or i.i.d. random when
// shuffle is true.
func Generate(n int, shuffle bool, seed int64) [][]byte {
	r := rand.New(rand.NewSource(seed + 13))
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		var t string
		if shuffle {
			t = ItemTypes()[r.Intn(4)]
		} else {
			t = ItemTypes()[i%4]
		}
		out = append(out, item(r, i, t))
	}
	return out
}

func item(r *rand.Rand, id int, typ string) []byte {
	date := fmt.Sprintf("2020-0%d-%02d", 1+r.Intn(9), 1+r.Intn(28))
	switch typ {
	case "story":
		return []byte(fmt.Sprintf(
			`{"id":%d,"date":"%s","type":"story","score":%d,"descendants":%d,"title":"story %d","url":"https://example.com/%d","by":"user%d"}`,
			id, date, r.Intn(500), r.Intn(100), id, id, r.Intn(1000)))
	case "poll":
		return []byte(fmt.Sprintf(
			`{"id":%d,"date":"%s","type":"poll","score":%d,"descendants":%d,"title":"poll %d","parts":[%d,%d],"by":"user%d"}`,
			id, date, r.Intn(200), r.Intn(50), id, id+1, id+2, r.Intn(1000)))
	case "pollopt":
		return []byte(fmt.Sprintf(
			`{"id":%d,"date":"%s","type":"pollopt","score":%d,"poll":%d,"title":"option %d"}`,
			id, date, r.Intn(100), id-1, id))
	default: // comment
		return []byte(fmt.Sprintf(
			`{"id":%d,"date":"%s","type":"comment","parent":%d,"text":"comment text %d","by":"user%d"}`,
			id, date, r.Intn(id+1), id, r.Intn(1000)))
	}
}
