package yelp

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/jsontext"
	"repro/internal/storage"
)

func smallConfig() Config {
	return Config{Businesses: 150, Users: 300, Reviews: 1200, Tips: 300, Checkins: 150, Seed: 3}
}

func TestGenerateValidAndShaped(t *testing.T) {
	lines, spans := Generate(smallConfig())
	for i, l := range lines {
		if !jsontext.Valid(l) {
			t.Fatalf("doc %d invalid: %s", i, l)
		}
	}
	for _, tbl := range []string{"business", "user", "review", "checkin", "tip"} {
		sp := spans[tbl]
		if sp[1] <= sp[0] {
			t.Errorf("table %s empty", tbl)
		}
	}
	// Business stars are floats (halves), review stars ints.
	b := lines[spans["business"][0]]
	if !bytes.Contains(b, []byte(`"stars":`)) || !bytes.Contains(b, []byte(`"postal_code":"`)) {
		t.Errorf("business doc: %s", b)
	}
}

func resultString(res *engine.Result) string {
	res.SortRows()
	var b bytes.Buffer
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			if !v.Null && v.Typ == expr.TFloat {
				fmt.Fprintf(&b, "%.4f", v.F)
			} else {
				b.WriteString(v.String())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestQueriesAgreeAcrossFormats(t *testing.T) {
	lines, _ := Generate(smallConfig())
	cfg := storage.DefaultLoaderConfig()
	cfg.Tile.TileSize = 128
	kinds := []storage.FormatKind{storage.KindJSON, storage.KindJSONB,
		storage.KindSinew, storage.KindTiles, storage.KindShredded}
	rels := map[storage.FormatKind]storage.Relation{}
	for _, k := range kinds {
		l, _ := storage.NewLoader(k, cfg)
		rel, err := l.Load(string(k), lines, 2)
		if err != nil {
			t.Fatal(err)
		}
		rels[k] = rel
	}
	for _, q := range Queries() {
		want := ""
		for _, k := range kinds {
			got := resultString(q.Run(rels[k], 2))
			if want == "" {
				want = got
				if got == "" {
					t.Errorf("Y%d returned nothing", q.Num)
				}
				continue
			}
			if got != want {
				t.Errorf("Y%d: %s differs\n got: %s\nwant: %s", q.Num, k, got, want)
			}
		}
	}
}

func TestY4IsStarHistogram(t *testing.T) {
	lines, _ := Generate(smallConfig())
	l, _ := storage.NewLoader(storage.KindTiles, storage.DefaultLoaderConfig())
	rel, err := l.Load("yelp", lines, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := y4(rel, 2)
	if len(res.Rows) != 5 {
		t.Fatalf("%d star groups, want 5", len(res.Rows))
	}
	total := int64(0)
	for _, row := range res.Rows {
		if row[0].I < 1 || row[0].I > 5 {
			t.Errorf("stars = %v", row[0])
		}
		total += row[1].I
	}
	if total != 1200 {
		t.Errorf("reviews counted = %d, want 1200 (no float business stars leaked in)", total)
	}
}
