// Package yelp generates a combined Yelp-style data set and the five
// analytical queries of the paper's §6.2. The real Yelp Open Dataset
// (~9 GB) is proprietary-licensed; this generator reproduces its
// documented document schemas (business, review, user, checkin, tip),
// their cardinality ratios, and their type quirks — float star
// ratings, ISO timestamps as strings, numeric strings (postal codes),
// nested attribute objects — which are what the storage formats react
// to.
package yelp

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/exprparse"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// Config scales generation. Reviews dominate (as in the real data
// set: ~8M reviews vs ~200k businesses).
type Config struct {
	Businesses int
	Users      int
	Reviews    int
	Tips       int
	Checkins   int
	Seed       int64
}

// DefaultConfig returns a laptop-scale data set with the real set's
// ratios.
func DefaultConfig() Config {
	return Config{Businesses: 1500, Users: 3000, Reviews: 12000, Tips: 3000, Checkins: 1500, Seed: 1}
}

var (
	cities = []string{"Phoenix", "Las Vegas", "Toronto", "Charlotte",
		"Pittsburgh", "Montreal", "Mesa", "Henderson", "Tempe", "Chandler"}
	states     = []string{"AZ", "NV", "ON", "NC", "PA", "QC"}
	categories = []string{"Restaurants", "Food", "Nightlife", "Bars",
		"Shopping", "Coffee & Tea", "Pizza", "Mexican", "Burgers", "Italian"}
	firstNames = []string{"James", "Maria", "Wei", "Fatima", "John", "Aisha",
		"Carlos", "Yuki", "Anna", "Omar"}
	tipWords = []string{"great", "service", "amazing", "food", "try", "the",
		"best", "in", "town", "love", "this", "place", "friendly", "staff"}
)

// Generate emits the combined collection, table by table.
func Generate(cfg Config) (lines [][]byte, spans map[string][2]int) {
	if cfg.Businesses == 0 {
		cfg = DefaultConfig()
	}
	r := rand.New(rand.NewSource(cfg.Seed + 31))
	spans = map[string][2]int{}
	add := func(s string) { lines = append(lines, []byte(s)) }
	mark := func(name string, body func()) {
		start := len(lines)
		body()
		spans[name] = [2]int{start, len(lines)}
	}

	date := func() string {
		return fmt.Sprintf("20%02d-%02d-%02d %02d:%02d:%02d",
			10+r.Intn(10), 1+r.Intn(12), 1+r.Intn(28),
			r.Intn(24), r.Intn(60), r.Intn(60))
	}
	text := func(n int) string {
		s := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				s += " "
			}
			s += tipWords[r.Intn(len(tipWords))]
		}
		return s
	}

	mark("business", func() {
		for i := 0; i < cfg.Businesses; i++ {
			stars := float64(2+r.Intn(7)) / 2 // 1.0..5.0 halves
			attrs := ""
			// Attribute objects are heterogeneous: present for ~70%,
			// with varying keys — real Yelp behaviour.
			if r.Intn(10) < 7 {
				attrs = fmt.Sprintf(`,"attributes":{"RestaurantsPriceRange2":"%d","BusinessAcceptsCreditCards":%v`,
					1+r.Intn(4), r.Intn(2) == 0)
				if r.Intn(2) == 0 {
					attrs += fmt.Sprintf(`,"WiFi":"%s"`, []string{"free", "no", "paid"}[r.Intn(3)])
				}
				attrs += "}"
			}
			add(fmt.Sprintf(`{"business_id":"b%06d","name":"%s %s","city":"%s","state":"%s","postal_code":"%05d","latitude":%.4f,"longitude":%.4f,"stars":%s,"review_count":%d,"is_open":%d,"categories":"%s, %s"%s}`,
				i, firstNames[r.Intn(len(firstNames))], categories[r.Intn(len(categories))],
				cities[r.Intn(len(cities))], states[r.Intn(len(states))], 10000+r.Intn(89999),
				33+r.Float64()*10, -115+r.Float64()*10,
				strconv.FormatFloat(stars, 'f', 1, 64),
				r.Intn(500), r.Intn(5)/4,
				categories[r.Intn(len(categories))], categories[r.Intn(len(categories))], attrs))
		}
	})
	mark("user", func() {
		for i := 0; i < cfg.Users; i++ {
			elite := `""`
			if r.Intn(10) == 0 {
				elite = `"2017,2018"`
			}
			add(fmt.Sprintf(`{"user_id":"u%06d","name":"%s","review_count":%d,"yelping_since":"%s","useful":%d,"funny":%d,"cool":%d,"fans":%d,"elite":%s,"average_stars":%.2f}`,
				i, firstNames[r.Intn(len(firstNames))], r.Intn(300), date(),
				r.Intn(1000), r.Intn(500), r.Intn(500), r.Intn(100), elite,
				1+r.Float64()*4))
		}
	})
	mark("review", func() {
		for i := 0; i < cfg.Reviews; i++ {
			add(fmt.Sprintf(`{"review_id":"r%08d","user_id":"u%06d","business_id":"b%06d","stars":%d,"useful":%d,"funny":%d,"cool":%d,"text":"%s","date":"%s"}`,
				i, r.Intn(cfg.Users), r.Intn(cfg.Businesses), 1+r.Intn(5),
				r.Intn(50), r.Intn(20), r.Intn(20), text(8), date()))
		}
	})
	mark("checkin", func() {
		for i := 0; i < cfg.Checkins; i++ {
			add(fmt.Sprintf(`{"business_id":"b%06d","date":"%s, %s"}`,
				r.Intn(cfg.Businesses), date(), date()))
		}
	})
	mark("tip", func() {
		for i := 0; i < cfg.Tips; i++ {
			add(fmt.Sprintf(`{"user_id":"u%06d","business_id":"b%06d","text":"%s","date":"%s","compliment_count":%d}`,
				r.Intn(cfg.Users), r.Intn(cfg.Businesses), text(5), date(), r.Intn(6)))
		}
	})
	return lines, spans
}

// Query is one Yelp analytics query.
type Query struct {
	Num  int
	Name string
	Run  func(rel storage.Relation, workers int) *engine.Result
}

func acc(s string) storage.Access         { return exprparse.MustParse(s) }
func col(i int, t expr.SQLType) *expr.Col { return expr.NewCol(i, t) }

// Queries returns the five business-insight queries (§6.2).
func Queries() []Query {
	return []Query{
		{1, "average stars of open businesses per city", y1},
		{2, "top cities by five-star reviews", y2},
		{3, "elite users' review activity per state", y3},
		{4, "review count per star rating", y4},
		{5, "most-complimented businesses", y5},
	}
}

// QueryByNum returns one query.
func QueryByNum(n int) (Query, bool) {
	for _, q := range Queries() {
		if q.Num == n {
			return q, true
		}
	}
	return Query{}, false
}

// y1: scan-heavy aggregation over business documents.
func y1(rel storage.Relation, workers int) *engine.Result {
	scan := engine.NewScan(rel, []storage.Access{
		acc(`data->>'city'`),
		acc(`data->>'stars'::Float`),
		acc(`data->>'is_open'::BigInt`),
		acc(`data->>'review_count'::BigInt`),
	}, nil, expr.NewCmp(expr.EQ, col(2, expr.TBigInt), expr.NewConst(expr.IntValue(1))))
	gb := engine.NewGroupBy(scan,
		[]expr.Expr{col(0, expr.TText)}, []string{"city"},
		[]engine.AggSpec{
			{Func: engine.Avg, Arg: col(1, expr.TFloat), Name: "avg_stars"},
			{Func: engine.Sum, Arg: col(3, expr.TBigInt), Name: "reviews"},
			{Func: engine.CountStar, Name: "businesses"},
		})
	res := engine.Materialize(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(1, expr.TFloat), Desc: true}), workers)
	return res
}

// y2: business ⋈ review join with selective filter.
func y2(rel storage.Relation, workers int) *engine.Result {
	op, m, err := optimizer.Plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			{Alias: "b", Rel: rel, Accesses: []storage.Access{
				acc(`data->>'business_id'`),
				acc(`data->>'city'`),
				acc(`data->>'review_count'::BigInt`),
			}},
			{Alias: "r", Rel: rel, Accesses: []storage.Access{
				acc(`data->>'business_id'`),
				acc(`data->>'stars'::BigInt`),
				acc(`data->>'review_id'`),
			}, Filter: expr.NewAnd(
				expr.NewCmp(expr.EQ, col(1, expr.TBigInt), expr.NewConst(expr.IntValue(5))),
				expr.NewIsNull(col(2, expr.TText), true))},
		},
		Joins: []optimizer.JoinSpec{{LeftAlias: "b", LeftSlot: 0, RightAlias: "r", RightSlot: 0}},
	})
	if err != nil {
		panic(err)
	}
	gb := engine.NewGroupBy(op,
		[]expr.Expr{m.ColFor("b", 1, expr.TText)}, []string{"city"},
		[]engine.AggSpec{{Func: engine.CountStar, Name: "five_star_reviews"}})
	top := engine.NewLimit(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(1, expr.TBigInt), Desc: true},
		engine.OrderKey{E: col(0, expr.TText)}), 10)
	return engine.Materialize(top, workers)
}

// y3: three-way join user ⋈ review ⋈ business.
func y3(rel storage.Relation, workers int) *engine.Result {
	op, m, err := optimizer.Plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			{Alias: "u", Rel: rel, Accesses: []storage.Access{
				acc(`data->>'user_id'`),
				acc(`data->>'elite'`),
				acc(`data->>'fans'::BigInt`),
			}, Filter: expr.NewCmp(expr.NE, col(1, expr.TText), expr.NewConst(expr.TextValue("")))},
			{Alias: "r", Rel: rel, Accesses: []storage.Access{
				acc(`data->>'user_id'`),
				acc(`data->>'business_id'`),
				acc(`data->>'stars'::BigInt`),
				acc(`data->>'review_id'`),
			}, Filter: expr.NewIsNull(col(3, expr.TText), true)},
			{Alias: "b", Rel: rel, Accesses: []storage.Access{
				acc(`data->>'business_id'`),
				acc(`data->>'state'`),
				acc(`data->>'city'`),
			}, Filter: expr.NewIsNull(col(2, expr.TText), true)},
		},
		Joins: []optimizer.JoinSpec{
			{LeftAlias: "u", LeftSlot: 0, RightAlias: "r", RightSlot: 0},
			{LeftAlias: "r", LeftSlot: 1, RightAlias: "b", RightSlot: 0},
		},
	})
	if err != nil {
		panic(err)
	}
	gb := engine.NewGroupBy(op,
		[]expr.Expr{m.ColFor("b", 1, expr.TText)}, []string{"state"},
		[]engine.AggSpec{
			{Func: engine.CountStar, Name: "elite_reviews"},
			{Func: engine.Avg, Arg: m.ColFor("r", 2, expr.TBigInt), Name: "avg_stars"},
		})
	return engine.Materialize(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(1, expr.TBigInt), Desc: true}), workers)
}

// y4: the paper's example — "counts the number of reviews in groups
// of stars". Star ratings are integers only on review documents, so
// the filter on review_id keeps business stars (floats) out.
func y4(rel storage.Relation, workers int) *engine.Result {
	scan := engine.NewScan(rel, []storage.Access{
		acc(`data->>'stars'::BigInt`),
		acc(`data->>'review_id'`),
	}, nil, expr.NewIsNull(col(1, expr.TText), true))
	gb := engine.NewGroupBy(scan,
		[]expr.Expr{col(0, expr.TBigInt)}, []string{"stars"},
		[]engine.AggSpec{{Func: engine.CountStar, Name: "reviews"}})
	return engine.Materialize(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(0, expr.TBigInt)}), workers)
}

// y5: tips joined with businesses, complimented tips only.
func y5(rel storage.Relation, workers int) *engine.Result {
	op, m, err := optimizer.Plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			{Alias: "t", Rel: rel, Accesses: []storage.Access{
				acc(`data->>'business_id'`),
				acc(`data->>'compliment_count'::BigInt`),
			}, Filter: expr.NewCmp(expr.GE, col(1, expr.TBigInt), expr.NewConst(expr.IntValue(2)))},
			{Alias: "b", Rel: rel, Accesses: []storage.Access{
				acc(`data->>'business_id'`),
				acc(`data->>'name'`),
				acc(`data->>'stars'::Float`),
			}, Filter: expr.NewIsNull(col(2, expr.TFloat), true)},
		},
		Joins: []optimizer.JoinSpec{{LeftAlias: "t", LeftSlot: 0, RightAlias: "b", RightSlot: 0}},
	})
	if err != nil {
		panic(err)
	}
	gb := engine.NewGroupBy(op,
		[]expr.Expr{m.ColFor("b", 1, expr.TText)}, []string{"name"},
		[]engine.AggSpec{
			{Func: engine.CountStar, Name: "good_tips"},
			{Func: engine.Sum, Arg: m.ColFor("t", 1, expr.TBigInt), Name: "compliments"},
		})
	top := engine.NewLimit(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(2, expr.TBigInt), Desc: true},
		engine.OrderKey{E: col(0, expr.TText)}), 10)
	return engine.Materialize(top, workers)
}
