package tpch

import (
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

func q12(rel storage.Relation, workers int) *engine.Result {
	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "o", nil,
				acc(`data->>'o_orderkey'::BigInt`),
				acc(`data->>'o_orderpriority'`)),
			table(rel, "l",
				and(
					expr.NewIn(col(1, expr.TText), expr.TextValue("MAIL"), expr.TextValue("SHIP")),
					lt(col(2, expr.TTimestamp), col(3, expr.TTimestamp)),
					lt(col(4, expr.TTimestamp), col(2, expr.TTimestamp)),
					ge(col(3, expr.TTimestamp), cDate("1994-01-01")),
					lt(col(3, expr.TTimestamp), cDate("1995-01-01"))),
				acc(`data->>'l_orderkey'::BigInt`),
				acc(`data->>'l_shipmode'`),
				acc(`data->>'l_commitdate'::Date`),
				acc(`data->>'l_receiptdate'::Date`),
				acc(`data->>'l_shipdate'::Date`)),
		},
		Joins: []optimizer.JoinSpec{join("o", 0, "l", 0)},
	})
	high := expr.NewCase([]expr.When{{
		Cond: expr.NewIn(m.ColFor("o", 1, expr.TText),
			expr.TextValue("1-URGENT"), expr.TextValue("2-HIGH")),
		Result: cInt(1),
	}}, cInt(0))
	low := expr.NewCase([]expr.When{{
		Cond: expr.NewIn(m.ColFor("o", 1, expr.TText),
			expr.TextValue("1-URGENT"), expr.TextValue("2-HIGH")),
		Result: cInt(0),
	}}, cInt(1))
	gb := engine.NewGroupBy(op,
		[]expr.Expr{m.ColFor("l", 1, expr.TText)}, []string{"l_shipmode"},
		[]engine.AggSpec{
			{Func: engine.Sum, Arg: high, Name: "high_line_count"},
			{Func: engine.Sum, Arg: low, Name: "low_line_count"},
		})
	return run(engine.NewOrderBy(gb, engine.OrderKey{E: col(0, expr.TText)}), workers)
}

func q13(rel storage.Relation, workers int) *engine.Result {
	orders := scan1(rel,
		expr.NewNot(expr.NewLike(col(2, expr.TText), "%special requests%")),
		acc(`data->>'o_orderkey'::BigInt`),
		acc(`data->>'o_custkey'::BigInt`),
		acc(`data->>'o_comment'`),
	)
	cust := scan1(rel, nil, acc(`data->>'c_custkey'::BigInt`))
	outer := engine.NewHashJoin(orders, cust, []int{1}, []int{0}, engine.OuterJoin)
	// Per-customer order counts (o_orderkey is NULL for unmatched).
	perCust := engine.NewGroupBy(outer,
		[]expr.Expr{col(0, expr.TBigInt)}, []string{"c_custkey"},
		[]engine.AggSpec{{Func: engine.Count, Arg: col(1, expr.TBigInt), Name: "c_count"}})
	dist := engine.NewGroupBy(perCust,
		[]expr.Expr{col(1, expr.TBigInt)}, []string{"c_count"},
		[]engine.AggSpec{{Func: engine.CountStar, Name: "custdist"}})
	return run(engine.NewOrderBy(dist,
		engine.OrderKey{E: col(1, expr.TBigInt), Desc: true},
		engine.OrderKey{E: col(0, expr.TBigInt), Desc: true},
	), workers)
}

func q14(rel storage.Relation, workers int) *engine.Result {
	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "l",
				and(ge(col(2, expr.TTimestamp), cDate("1995-09-01")),
					lt(col(2, expr.TTimestamp), cDate("1995-10-01"))),
				acc(`data->>'l_partkey'::BigInt`),
				acc(`data->>'l_extendedprice'::Float`),
				acc(`data->>'l_shipdate'::Date`),
				acc(`data->>'l_discount'::Float`)),
			table(rel, "p", nil,
				acc(`data->>'p_partkey'::BigInt`),
				acc(`data->>'p_type'`)),
		},
		Joins: []optimizer.JoinSpec{join("l", 0, "p", 0)},
	})
	rev := mul(m.ColFor("l", 1, expr.TFloat), sub(cFloat(1), m.ColFor("l", 3, expr.TFloat)))
	promo := expr.NewCase([]expr.When{{
		Cond:   expr.NewLike(m.ColFor("p", 1, expr.TText), "PROMO%"),
		Result: rev,
	}}, cFloat(0))
	gb := engine.NewGroupBy(op, nil, nil, []engine.AggSpec{
		{Func: engine.Sum, Arg: promo, Name: "promo_revenue"},
		{Func: engine.Sum, Arg: rev, Name: "total_revenue"},
	})
	pct := engine.NewProject(gb, []expr.Expr{
		expr.NewArith(expr.Div, mul(cFloat(100), col(0, expr.TFloat)), col(1, expr.TFloat)),
	}, []string{"promo_revenue_pct"})
	return run(pct, workers)
}

func q15(rel storage.Relation, workers int) *engine.Result {
	// revenue0 view: per-supplier revenue for 1996 Q1.
	lscan := scan1(rel,
		and(ge(col(1, expr.TTimestamp), cDate("1996-01-01")),
			lt(col(1, expr.TTimestamp), cDate("1996-04-01"))),
		acc(`data->>'l_suppkey'::BigInt`),
		acc(`data->>'l_shipdate'::Date`),
		acc(`data->>'l_extendedprice'::Float`),
		acc(`data->>'l_discount'::Float`),
	)
	revView := run(engine.NewGroupBy(lscan,
		[]expr.Expr{col(0, expr.TBigInt)}, []string{"supplier_no"},
		[]engine.AggSpec{{Func: engine.Sum, Arg: revenue(2, 3), Name: "total_revenue"}}), workers)

	maxRev := 0.0
	for _, row := range revView.Rows {
		if f, ok := row[1].AsFloat(); ok && f > maxRev {
			maxRev = f
		}
	}
	top := &engine.Result{Cols: revView.Cols}
	for _, row := range revView.Rows {
		if f, ok := row[1].AsFloat(); ok && f == maxRev {
			top.Rows = append(top.Rows, row)
		}
	}
	supp := scan1(rel, nil,
		acc(`data->>'s_suppkey'::BigInt`),
		acc(`data->>'s_name'`),
		acc(`data->>'s_address'`),
		acc(`data->>'s_phone'`),
	)
	joined := engine.NewHashJoin(engine.NewValues(top), supp, []int{0}, []int{0}, engine.InnerJoin)
	proj := engine.NewProject(joined, []expr.Expr{
		col(0, expr.TBigInt), col(1, expr.TText), col(2, expr.TText),
		col(3, expr.TText), col(5, expr.TFloat),
	}, []string{"s_suppkey", "s_name", "s_address", "s_phone", "total_revenue"})
	return run(engine.NewOrderBy(proj, engine.OrderKey{E: col(0, expr.TBigInt)}), workers)
}

func q16(rel storage.Relation, workers int) *engine.Result {
	complainers := scan1(rel,
		expr.NewLike(col(1, expr.TText), "%Customer Complaints%"),
		acc(`data->>'s_suppkey'::BigInt`),
		acc(`data->>'s_comment'`),
	)
	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "ps", nil,
				acc(`data->>'ps_partkey'::BigInt`),
				acc(`data->>'ps_suppkey'::BigInt`)),
			table(rel, "p",
				and(ne(col(1, expr.TText), cText("Brand#45")),
					expr.NewNot(expr.NewLike(col(2, expr.TText), "MEDIUM POLISHED%")),
					expr.NewIn(col(3, expr.TBigInt),
						expr.IntValue(49), expr.IntValue(14), expr.IntValue(23),
						expr.IntValue(45), expr.IntValue(19), expr.IntValue(3),
						expr.IntValue(36), expr.IntValue(9))),
				acc(`data->>'p_partkey'::BigInt`),
				acc(`data->>'p_brand'`),
				acc(`data->>'p_type'`),
				acc(`data->>'p_size'::BigInt`)),
		},
		Joins: []optimizer.JoinSpec{join("ps", 0, "p", 0)},
	})
	// Anti join against complaint suppliers.
	anti := engine.NewHashJoin(complainers, op,
		[]int{0}, []int{m.Slot("ps", 1)}, engine.AntiJoin)
	gb := engine.NewGroupBy(anti,
		[]expr.Expr{
			m.ColFor("p", 1, expr.TText),
			m.ColFor("p", 2, expr.TText),
			m.ColFor("p", 3, expr.TBigInt),
		},
		[]string{"p_brand", "p_type", "p_size"},
		[]engine.AggSpec{{Func: engine.Count, Arg: m.ColFor("ps", 1, expr.TBigInt),
			Name: "supplier_cnt", Distinct: true}})
	return run(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(3, expr.TBigInt), Desc: true},
		engine.OrderKey{E: col(0, expr.TText)},
		engine.OrderKey{E: col(1, expr.TText)},
		engine.OrderKey{E: col(2, expr.TBigInt)},
	), workers)
}

func q17(rel storage.Relation, workers int) *engine.Result {
	// Phase 1: average quantity per part.
	lAvg := scan1(rel, nil,
		acc(`data->>'l_partkey'::BigInt`),
		acc(`data->>'l_quantity'::BigInt`),
	)
	avgPerPart := run(engine.NewGroupBy(lAvg,
		[]expr.Expr{col(0, expr.TBigInt)}, []string{"partkey"},
		[]engine.AggSpec{{Func: engine.Avg, Arg: col(1, expr.TBigInt), Name: "avg_qty"}}), workers)

	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "l", nil,
				acc(`data->>'l_partkey'::BigInt`),
				acc(`data->>'l_quantity'::BigInt`),
				acc(`data->>'l_extendedprice'::Float`)),
			table(rel, "p",
				and(eq(col(1, expr.TText), cText("Brand#23")),
					eq(col(2, expr.TText), cText("MED BOX"))),
				acc(`data->>'p_partkey'::BigInt`),
				acc(`data->>'p_brand'`),
				acc(`data->>'p_container'`)),
		},
		Joins: []optimizer.JoinSpec{join("l", 0, "p", 0)},
	})
	withAvg := engine.NewHashJoin(engine.NewValues(avgPerPart), op,
		[]int{0}, []int{m.Slot("l", 0)}, engine.InnerJoin)
	width := len(op.Columns())
	sel := engine.NewSelect(withAvg,
		lt(expr.NewCast(m.ColFor("l", 1, expr.TBigInt), expr.TFloat),
			mul(cFloat(0.2), col(width+1, expr.TFloat))))
	gb := engine.NewGroupBy(sel, nil, nil,
		[]engine.AggSpec{{Func: engine.Sum, Arg: m.ColFor("l", 2, expr.TFloat), Name: "sum_price"}})
	final := engine.NewProject(gb, []expr.Expr{
		expr.NewArith(expr.Div, col(0, expr.TFloat), cFloat(7)),
	}, []string{"avg_yearly"})
	return run(final, workers)
}

func q18(rel storage.Relation, workers int) *engine.Result {
	// Phase 1: orders with sum(l_quantity) > 300.
	lscan := scan1(rel, nil,
		acc(`data->>'l_orderkey'::BigInt`),
		acc(`data->>'l_quantity'::BigInt`),
	)
	sums := engine.NewGroupBy(lscan,
		[]expr.Expr{col(0, expr.TBigInt)}, []string{"orderkey"},
		[]engine.AggSpec{{Func: engine.Sum, Arg: col(1, expr.TBigInt), Name: "sum_qty"}})
	big := run(engine.NewSelect(sums, gt(col(1, expr.TBigInt), cInt(300))), workers)

	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "c", nil,
				acc(`data->>'c_custkey'::BigInt`),
				acc(`data->>'c_name'`)),
			table(rel, "o", nil,
				acc(`data->>'o_orderkey'::BigInt`),
				acc(`data->>'o_custkey'::BigInt`),
				acc(`data->>'o_orderdate'::Date`),
				acc(`data->>'o_totalprice'::Float`)),
		},
		Joins: []optimizer.JoinSpec{join("c", 0, "o", 1)},
	})
	joined := engine.NewHashJoin(engine.NewValues(big), op,
		[]int{0}, []int{m.Slot("o", 0)}, engine.InnerJoin)
	width := len(op.Columns())
	gb := engine.NewGroupBy(joined,
		[]expr.Expr{
			m.ColFor("c", 1, expr.TText),
			m.ColFor("c", 0, expr.TBigInt),
			m.ColFor("o", 0, expr.TBigInt),
			m.ColFor("o", 2, expr.TTimestamp),
			m.ColFor("o", 3, expr.TFloat),
		},
		[]string{"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"},
		[]engine.AggSpec{{Func: engine.Sum, Arg: col(width+1, expr.TBigInt), Name: "sum_qty"}})
	return run(engine.NewLimit(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(4, expr.TFloat), Desc: true},
		engine.OrderKey{E: col(3, expr.TTimestamp)},
	), 100), workers)
}

func q19(rel storage.Relation, workers int) *engine.Result {
	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "l",
				expr.NewIn(col(4, expr.TText),
					expr.TextValue("AIR"), expr.TextValue("REG AIR")),
				acc(`data->>'l_partkey'::BigInt`),
				acc(`data->>'l_quantity'::BigInt`),
				acc(`data->>'l_extendedprice'::Float`),
				acc(`data->>'l_discount'::Float`),
				acc(`data->>'l_shipmode'`)),
			table(rel, "p", nil,
				acc(`data->>'p_partkey'::BigInt`),
				acc(`data->>'p_brand'`),
				acc(`data->>'p_size'::BigInt`)),
		},
		Joins: []optimizer.JoinSpec{join("l", 0, "p", 0)},
	})
	qty := m.ColFor("l", 1, expr.TBigInt)
	brand := m.ColFor("p", 1, expr.TText)
	size := m.ColFor("p", 2, expr.TBigInt)
	cond := or(
		and(eq(brand, cText("Brand#12")), ge(qty, cInt(1)), le(qty, cInt(11)),
			ge(size, cInt(1)), le(size, cInt(5))),
		or(
			and(eq(brand, cText("Brand#23")), ge(qty, cInt(10)), le(qty, cInt(20)),
				ge(size, cInt(1)), le(size, cInt(10))),
			and(eq(brand, cText("Brand#33")), ge(qty, cInt(20)), le(qty, cInt(30)),
				ge(size, cInt(1)), le(size, cInt(15)))))
	sel := engine.NewSelect(op, cond)
	gb := engine.NewGroupBy(sel, nil, nil,
		[]engine.AggSpec{{Func: engine.Sum,
			Arg:  mul(m.ColFor("l", 2, expr.TFloat), sub(cFloat(1), m.ColFor("l", 3, expr.TFloat))),
			Name: "revenue"}})
	return run(gb, workers)
}

func q20(rel storage.Relation, workers int) *engine.Result {
	// Phase 1: half the quantity moved per (part, supplier) in 1994.
	lscan := scan1(rel,
		and(ge(col(2, expr.TTimestamp), cDate("1994-01-01")),
			lt(col(2, expr.TTimestamp), cDate("1995-01-01"))),
		acc(`data->>'l_partkey'::BigInt`),
		acc(`data->>'l_suppkey'::BigInt`),
		acc(`data->>'l_shipdate'::Date`),
		acc(`data->>'l_quantity'::BigInt`),
	)
	moved := run(engine.NewGroupBy(lscan,
		[]expr.Expr{col(0, expr.TBigInt), col(1, expr.TBigInt)},
		[]string{"partkey", "suppkey"},
		[]engine.AggSpec{{Func: engine.Sum, Arg: col(3, expr.TBigInt), Name: "sum_qty"}}), workers)

	// Phase 2: partsupp for forest% parts with enough availability.
	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "ps", nil,
				acc(`data->>'ps_partkey'::BigInt`),
				acc(`data->>'ps_suppkey'::BigInt`),
				acc(`data->>'ps_availqty'::BigInt`)),
			table(rel, "p", expr.NewLike(col(1, expr.TText), "forest%"),
				acc(`data->>'p_partkey'::BigInt`),
				acc(`data->>'p_name'`)),
		},
		Joins: []optimizer.JoinSpec{join("ps", 0, "p", 0)},
	})
	width := len(op.Columns())
	withMoved := engine.NewHashJoin(engine.NewValues(moved), op,
		[]int{0, 1}, []int{m.Slot("ps", 0), m.Slot("ps", 1)}, engine.InnerJoin)
	qualified := engine.NewSelect(withMoved,
		gt(expr.NewCast(m.ColFor("ps", 2, expr.TBigInt), expr.TFloat),
			mul(cFloat(0.5), expr.NewCast(col(width+2, expr.TBigInt), expr.TFloat))))

	// Phase 3: suppliers in CANADA having such stock.
	suppOp, sm := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "s", nil,
				acc(`data->>'s_suppkey'::BigInt`),
				acc(`data->>'s_name'`),
				acc(`data->>'s_address'`),
				acc(`data->>'s_nationkey'::BigInt`)),
			table(rel, "n", eq(col(1, expr.TText), cText("CANADA")),
				acc(`data->>'n_nationkey'::BigInt`),
				acc(`data->>'n_name'`)),
		},
		Joins: []optimizer.JoinSpec{join("s", 3, "n", 0)},
	})
	semi := engine.NewHashJoin(qualified, suppOp,
		[]int{m.Slot("ps", 1)}, []int{sm.Slot("s", 0)}, engine.SemiJoin)
	proj := engine.NewProject(semi, []expr.Expr{
		sm.ColFor("s", 1, expr.TText), sm.ColFor("s", 2, expr.TText),
	}, []string{"s_name", "s_address"})
	return run(engine.NewOrderBy(proj, engine.OrderKey{E: col(0, expr.TText)}), workers)
}

func q21(rel storage.Relation, workers int) *engine.Result {
	// Per-order supplier counts: all suppliers, and late suppliers.
	all := scan1(rel, nil,
		acc(`data->>'l_orderkey'::BigInt`),
		acc(`data->>'l_suppkey'::BigInt`),
	)
	allCnt := run(engine.NewGroupBy(all,
		[]expr.Expr{col(0, expr.TBigInt)}, []string{"orderkey"},
		[]engine.AggSpec{{Func: engine.Count, Arg: col(1, expr.TBigInt), Name: "nsupp", Distinct: true}}), workers)
	late := scan1(rel,
		gt(col(2, expr.TTimestamp), col(3, expr.TTimestamp)),
		acc(`data->>'l_orderkey'::BigInt`),
		acc(`data->>'l_suppkey'::BigInt`),
		acc(`data->>'l_receiptdate'::Date`),
		acc(`data->>'l_commitdate'::Date`),
	)
	lateCnt := run(engine.NewGroupBy(late,
		[]expr.Expr{col(0, expr.TBigInt)}, []string{"orderkey"},
		[]engine.AggSpec{{Func: engine.Count, Arg: col(1, expr.TBigInt), Name: "nlate", Distinct: true}}), workers)

	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "s", nil,
				acc(`data->>'s_suppkey'::BigInt`),
				acc(`data->>'s_name'`),
				acc(`data->>'s_nationkey'::BigInt`)),
			table(rel, "l1",
				gt(col(2, expr.TTimestamp), col(3, expr.TTimestamp)),
				acc(`data->>'l_orderkey'::BigInt`),
				acc(`data->>'l_suppkey'::BigInt`),
				acc(`data->>'l_receiptdate'::Date`),
				acc(`data->>'l_commitdate'::Date`)),
			table(rel, "o", eq(col(1, expr.TText), cText("F")),
				acc(`data->>'o_orderkey'::BigInt`),
				acc(`data->>'o_orderstatus'`)),
			table(rel, "n", eq(col(1, expr.TText), cText("SAUDI ARABIA")),
				acc(`data->>'n_nationkey'::BigInt`),
				acc(`data->>'n_name'`)),
		},
		Joins: []optimizer.JoinSpec{
			join("s", 0, "l1", 1), join("l1", 0, "o", 0), join("s", 2, "n", 0),
		},
	})
	// exists other supplier (nsupp >= 2) and not exists other late
	// supplier (nlate == 1).
	withAll := engine.NewHashJoin(engine.NewValues(allCnt), op,
		[]int{0}, []int{m.Slot("l1", 0)}, engine.InnerJoin)
	w1 := len(op.Columns())
	selAll := engine.NewSelect(withAll, ge(col(w1+1, expr.TBigInt), cInt(2)))
	withLate := engine.NewHashJoin(engine.NewValues(lateCnt), selAll,
		[]int{0}, []int{m.Slot("l1", 0)}, engine.InnerJoin)
	w2 := w1 + 2
	selLate := engine.NewSelect(withLate, eq(col(w2+1, expr.TBigInt), cInt(1)))
	gb := engine.NewGroupBy(selLate,
		[]expr.Expr{m.ColFor("s", 1, expr.TText)}, []string{"s_name"},
		[]engine.AggSpec{{Func: engine.CountStar, Name: "numwait"}})
	return run(engine.NewLimit(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(1, expr.TBigInt), Desc: true},
		engine.OrderKey{E: col(0, expr.TText)},
	), 100), workers)
}

func q22(rel storage.Relation, workers int) *engine.Result {
	codes := []expr.Value{
		expr.TextValue("13"), expr.TextValue("31"), expr.TextValue("23"),
		expr.TextValue("29"), expr.TextValue("30"), expr.TextValue("18"),
		expr.TextValue("17"),
	}
	cntry := func(phoneSlot int) expr.Expr {
		return expr.NewSubstr(col(phoneSlot, expr.TText), 1, 2)
	}
	// Phase 1: average positive balance among matching country codes.
	custAll := scan1(rel,
		and(gt(col(1, expr.TFloat), cFloat(0)),
			expr.NewIn(cntry(0), codes...)),
		acc(`data->>'c_phone'`),
		acc(`data->>'c_acctbal'::Float`),
	)
	avgBal := scalarFloat(run(engine.NewGroupBy(custAll, nil, nil,
		[]engine.AggSpec{{Func: engine.Avg, Arg: col(1, expr.TFloat), Name: "avg_bal"}}), workers))

	// Phase 2: rich, inactive customers.
	cust := scan1(rel,
		and(gt(col(1, expr.TFloat), cFloat(avgBal)),
			expr.NewIn(cntry(0), codes...)),
		acc(`data->>'c_phone'`),
		acc(`data->>'c_acctbal'::Float`),
		acc(`data->>'c_custkey'::BigInt`),
	)
	orders := scan1(rel, nil, acc(`data->>'o_custkey'::BigInt`))
	anti := engine.NewHashJoin(orders, cust, []int{0}, []int{2}, engine.AntiJoin)
	gb := engine.NewGroupBy(anti,
		[]expr.Expr{expr.NewSubstr(col(0, expr.TText), 1, 2)}, []string{"cntrycode"},
		[]engine.AggSpec{
			{Func: engine.CountStar, Name: "numcust"},
			{Func: engine.Sum, Arg: col(1, expr.TFloat), Name: "totacctbal"},
		})
	return run(engine.NewOrderBy(gb, engine.OrderKey{E: col(0, expr.TText)}), workers)
}
