package tpch

import (
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// Query is one of the 22 TPC-H queries adapted to the combined JSON
// collection (paper §6.1): the relational queries return the same
// results as on the original schema, with every column reference
// rewritten to a JSON access expression as in Figure 5. Multi-phase
// formulations replace correlated subqueries (scalar aggregates are
// computed first and joined back), preserving each query's chokepoint
// characteristics — expression-heavy aggregation (Q1), selective
// multi-way joins (Q3, Q10), high-cardinality aggregation joins (Q18).
type Query struct {
	Num  int
	Name string
	Run  func(rel storage.Relation, workers int) *engine.Result
}

// Queries returns all 22 queries.
func Queries() []Query {
	return []Query{
		{1, "pricing summary report", q1},
		{2, "minimum cost supplier", q2},
		{3, "shipping priority", q3},
		{4, "order priority checking", q4},
		{5, "local supplier volume", q5},
		{6, "forecasting revenue change", q6},
		{7, "volume shipping", q7},
		{8, "national market share", q8},
		{9, "product type profit", q9},
		{10, "returned item reporting", q10},
		{11, "important stock identification", q11},
		{12, "shipping modes and order priority", q12},
		{13, "customer distribution", q13},
		{14, "promotion effect", q14},
		{15, "top supplier", q15},
		{16, "parts/supplier relationship", q16},
		{17, "small-quantity-order revenue", q17},
		{18, "large volume customer", q18},
		{19, "discounted revenue", q19},
		{20, "potential part promotion", q20},
		{21, "suppliers who kept orders waiting", q21},
		{22, "global sales opportunity", q22},
	}
}

// QueryByNum returns one query.
func QueryByNum(n int) (Query, bool) {
	for _, q := range Queries() {
		if q.Num == n {
			return q, true
		}
	}
	return Query{}, false
}

func q1(rel storage.Relation, workers int) *engine.Result {
	scan := scan1(rel,
		le(col(0, expr.TTimestamp), cDate("1998-09-02")),
		acc(`data->>'l_shipdate'::Date`),
		acc(`data->>'l_returnflag'`),
		acc(`data->>'l_linestatus'`),
		acc(`data->>'l_quantity'::BigInt`),
		acc(`data->>'l_extendedprice'::Float`),
		acc(`data->>'l_discount'::Float`),
		acc(`data->>'l_tax'::Float`),
	)
	discPrice := revenue(4, 5)
	charge := mul(discPrice, add(cFloat(1), col(6, expr.TFloat)))
	gb := engine.NewGroupBy(scan,
		[]expr.Expr{col(1, expr.TText), col(2, expr.TText)},
		[]string{"l_returnflag", "l_linestatus"},
		[]engine.AggSpec{
			{Func: engine.Sum, Arg: col(3, expr.TBigInt), Name: "sum_qty"},
			{Func: engine.Sum, Arg: col(4, expr.TFloat), Name: "sum_base_price"},
			{Func: engine.Sum, Arg: discPrice, Name: "sum_disc_price"},
			{Func: engine.Sum, Arg: charge, Name: "sum_charge"},
			{Func: engine.Avg, Arg: col(3, expr.TBigInt), Name: "avg_qty"},
			{Func: engine.Avg, Arg: col(4, expr.TFloat), Name: "avg_price"},
			{Func: engine.Avg, Arg: col(5, expr.TFloat), Name: "avg_disc"},
			{Func: engine.CountStar, Name: "count_order"},
		})
	ob := engine.NewOrderBy(gb,
		engine.OrderKey{E: col(0, expr.TText)},
		engine.OrderKey{E: col(1, expr.TText)})
	return run(ob, workers)
}

func q2(rel storage.Relation, workers int) *engine.Result {
	// Phase 1: minimum supply cost per part among EUROPE suppliers.
	minOp, minMap := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "ps", nil,
				acc(`data->>'ps_partkey'::BigInt`),
				acc(`data->>'ps_suppkey'::BigInt`),
				acc(`data->>'ps_supplycost'::Float`)),
			table(rel, "s", nil,
				acc(`data->>'s_suppkey'::BigInt`),
				acc(`data->>'s_nationkey'::BigInt`)),
			table(rel, "n", nil,
				acc(`data->>'n_nationkey'::BigInt`),
				acc(`data->>'n_regionkey'::BigInt`)),
			table(rel, "r", eq(col(1, expr.TText), cText("EUROPE")),
				acc(`data->>'r_regionkey'::BigInt`),
				acc(`data->>'r_name'`)),
		},
		Joins: []optimizer.JoinSpec{
			join("ps", 1, "s", 0), join("s", 1, "n", 0), join("n", 1, "r", 0),
		},
	})
	minCost := run(engine.NewGroupBy(minOp,
		[]expr.Expr{minMap.ColFor("ps", 0, expr.TBigInt)}, []string{"partkey"},
		[]engine.AggSpec{{Func: engine.Min, Arg: minMap.ColFor("ps", 2, expr.TFloat), Name: "min_cost"}},
	), workers)

	// Phase 2: qualifying parts joined back to the per-part minimum.
	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "p",
				and(eq(col(1, expr.TBigInt), cInt(15)),
					expr.NewLike(col(2, expr.TText), "%BRASS")),
				acc(`data->>'p_partkey'::BigInt`),
				acc(`data->>'p_size'::BigInt`),
				acc(`data->>'p_type'`),
				acc(`data->>'p_mfgr'`)),
			table(rel, "ps", nil,
				acc(`data->>'ps_partkey'::BigInt`),
				acc(`data->>'ps_suppkey'::BigInt`),
				acc(`data->>'ps_supplycost'::Float`)),
			table(rel, "s", nil,
				acc(`data->>'s_suppkey'::BigInt`),
				acc(`data->>'s_nationkey'::BigInt`),
				acc(`data->>'s_acctbal'::Float`),
				acc(`data->>'s_name'`),
				acc(`data->>'s_address'`),
				acc(`data->>'s_phone'`),
				acc(`data->>'s_comment'`)),
			table(rel, "n", nil,
				acc(`data->>'n_nationkey'::BigInt`),
				acc(`data->>'n_name'`),
				acc(`data->>'n_regionkey'::BigInt`)),
			table(rel, "r", eq(col(1, expr.TText), cText("EUROPE")),
				acc(`data->>'r_regionkey'::BigInt`),
				acc(`data->>'r_name'`)),
		},
		Joins: []optimizer.JoinSpec{
			join("p", 0, "ps", 0), join("ps", 1, "s", 0),
			join("s", 1, "n", 0), join("n", 2, "r", 0),
		},
	})
	joined := engine.NewHashJoin(engine.NewValues(minCost), op,
		[]int{0, 1}, []int{m.Slot("ps", 0), m.Slot("ps", 2)}, engine.InnerJoin)
	proj := engine.NewProject(joined, []expr.Expr{
		m.ColFor("s", 2, expr.TFloat), // s_acctbal
		m.ColFor("s", 3, expr.TText),  // s_name
		m.ColFor("n", 1, expr.TText),  // n_name
		m.ColFor("p", 0, expr.TBigInt),
		m.ColFor("p", 3, expr.TText),
		m.ColFor("s", 4, expr.TText),
		m.ColFor("s", 5, expr.TText),
		m.ColFor("s", 6, expr.TText),
	}, []string{"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr", "s_address", "s_phone", "s_comment"})
	ob := engine.NewLimit(engine.NewOrderBy(proj,
		engine.OrderKey{E: col(0, expr.TFloat), Desc: true},
		engine.OrderKey{E: col(2, expr.TText)},
		engine.OrderKey{E: col(1, expr.TText)},
		engine.OrderKey{E: col(3, expr.TBigInt)},
	), 100)
	return run(ob, workers)
}

func q3(rel storage.Relation, workers int) *engine.Result {
	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "c", eq(col(1, expr.TText), cText("BUILDING")),
				acc(`data->>'c_custkey'::BigInt`),
				acc(`data->>'c_mktsegment'`)),
			table(rel, "o", lt(col(2, expr.TTimestamp), cDate("1995-03-15")),
				acc(`data->>'o_orderkey'::BigInt`),
				acc(`data->>'o_custkey'::BigInt`),
				acc(`data->>'o_orderdate'::Date`),
				acc(`data->>'o_shippriority'::BigInt`)),
			table(rel, "l", gt(col(1, expr.TTimestamp), cDate("1995-03-15")),
				acc(`data->>'l_orderkey'::BigInt`),
				acc(`data->>'l_shipdate'::Date`),
				acc(`data->>'l_extendedprice'::Float`),
				acc(`data->>'l_discount'::Float`)),
		},
		Joins: []optimizer.JoinSpec{
			join("c", 0, "o", 1), join("o", 0, "l", 0),
		},
	})
	gb := engine.NewGroupBy(op,
		[]expr.Expr{
			m.ColFor("l", 0, expr.TBigInt),
			m.ColFor("o", 2, expr.TTimestamp),
			m.ColFor("o", 3, expr.TBigInt),
		},
		[]string{"l_orderkey", "o_orderdate", "o_shippriority"},
		[]engine.AggSpec{{Func: engine.Sum,
			Arg:  mul(m.ColFor("l", 2, expr.TFloat), sub(cFloat(1), m.ColFor("l", 3, expr.TFloat))),
			Name: "revenue"}})
	ob := engine.NewLimit(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(3, expr.TFloat), Desc: true},
		engine.OrderKey{E: col(1, expr.TTimestamp)},
	), 10)
	return run(ob, workers)
}

func q4(rel storage.Relation, workers int) *engine.Result {
	late := scan1(rel,
		lt(col(1, expr.TTimestamp), col(2, expr.TTimestamp)),
		acc(`data->>'l_orderkey'::BigInt`),
		acc(`data->>'l_commitdate'::Date`),
		acc(`data->>'l_receiptdate'::Date`),
	)
	orders := scan1(rel,
		and(ge(col(1, expr.TTimestamp), cDate("1993-07-01")),
			lt(col(1, expr.TTimestamp), cDate("1993-10-01"))),
		acc(`data->>'o_orderkey'::BigInt`),
		acc(`data->>'o_orderdate'::Date`),
		acc(`data->>'o_orderpriority'`),
	)
	semi := engine.NewHashJoin(late, orders, []int{0}, []int{0}, engine.SemiJoin)
	gb := engine.NewGroupBy(semi,
		[]expr.Expr{col(2, expr.TText)}, []string{"o_orderpriority"},
		[]engine.AggSpec{{Func: engine.CountStar, Name: "order_count"}})
	return run(engine.NewOrderBy(gb, engine.OrderKey{E: col(0, expr.TText)}), workers)
}

func q5(rel storage.Relation, workers int) *engine.Result {
	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "c", nil,
				acc(`data->>'c_custkey'::BigInt`),
				acc(`data->>'c_nationkey'::BigInt`)),
			table(rel, "o",
				and(ge(col(2, expr.TTimestamp), cDate("1994-01-01")),
					lt(col(2, expr.TTimestamp), cDate("1995-01-01"))),
				acc(`data->>'o_orderkey'::BigInt`),
				acc(`data->>'o_custkey'::BigInt`),
				acc(`data->>'o_orderdate'::Date`)),
			table(rel, "l", nil,
				acc(`data->>'l_orderkey'::BigInt`),
				acc(`data->>'l_suppkey'::BigInt`),
				acc(`data->>'l_extendedprice'::Float`),
				acc(`data->>'l_discount'::Float`)),
			table(rel, "s", nil,
				acc(`data->>'s_suppkey'::BigInt`),
				acc(`data->>'s_nationkey'::BigInt`)),
			table(rel, "n", nil,
				acc(`data->>'n_nationkey'::BigInt`),
				acc(`data->>'n_name'`),
				acc(`data->>'n_regionkey'::BigInt`)),
			table(rel, "r", eq(col(1, expr.TText), cText("ASIA")),
				acc(`data->>'r_regionkey'::BigInt`),
				acc(`data->>'r_name'`)),
		},
		Joins: []optimizer.JoinSpec{
			join("c", 0, "o", 1), join("o", 0, "l", 0), join("l", 1, "s", 0),
			join("c", 1, "s", 1), // local supplier: customer and supplier share the nation
			join("s", 1, "n", 0), join("n", 2, "r", 0),
		},
	})
	gb := engine.NewGroupBy(op,
		[]expr.Expr{m.ColFor("n", 1, expr.TText)}, []string{"n_name"},
		[]engine.AggSpec{{Func: engine.Sum,
			Arg:  mul(m.ColFor("l", 2, expr.TFloat), sub(cFloat(1), m.ColFor("l", 3, expr.TFloat))),
			Name: "revenue"}})
	return run(engine.NewOrderBy(gb, engine.OrderKey{E: col(1, expr.TFloat), Desc: true}), workers)
}

func q6(rel storage.Relation, workers int) *engine.Result {
	scan := scan1(rel,
		and(
			ge(col(0, expr.TTimestamp), cDate("1994-01-01")),
			lt(col(0, expr.TTimestamp), cDate("1995-01-01")),
			ge(col(2, expr.TFloat), cFloat(0.05)),
			le(col(2, expr.TFloat), cFloat(0.07)),
			lt(col(3, expr.TBigInt), cInt(24)),
		),
		acc(`data->>'l_shipdate'::Date`),
		acc(`data->>'l_extendedprice'::Float`),
		acc(`data->>'l_discount'::Float`),
		acc(`data->>'l_quantity'::BigInt`),
	)
	gb := engine.NewGroupBy(scan, nil, nil,
		[]engine.AggSpec{{Func: engine.Sum,
			Arg:  mul(col(1, expr.TFloat), col(2, expr.TFloat)),
			Name: "revenue"}})
	return run(gb, workers)
}

func q7(rel storage.Relation, workers int) *engine.Result {
	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "s", nil,
				acc(`data->>'s_suppkey'::BigInt`),
				acc(`data->>'s_nationkey'::BigInt`)),
			table(rel, "l",
				and(ge(col(4, expr.TTimestamp), cDate("1995-01-01")),
					le(col(4, expr.TTimestamp), cDate("1996-12-31"))),
				acc(`data->>'l_orderkey'::BigInt`),
				acc(`data->>'l_suppkey'::BigInt`),
				acc(`data->>'l_extendedprice'::Float`),
				acc(`data->>'l_discount'::Float`),
				acc(`data->>'l_shipdate'::Date`)),
			table(rel, "o", nil,
				acc(`data->>'o_orderkey'::BigInt`),
				acc(`data->>'o_custkey'::BigInt`)),
			table(rel, "c", nil,
				acc(`data->>'c_custkey'::BigInt`),
				acc(`data->>'c_nationkey'::BigInt`)),
			table(rel, "n1", expr.NewIn(col(1, expr.TText),
				expr.TextValue("FRANCE"), expr.TextValue("GERMANY")),
				acc(`data->>'n_nationkey'::BigInt`),
				acc(`data->>'n_name'`)),
			table(rel, "n2", expr.NewIn(col(1, expr.TText),
				expr.TextValue("FRANCE"), expr.TextValue("GERMANY")),
				acc(`data->>'n_nationkey'::BigInt`),
				acc(`data->>'n_name'`)),
		},
		Joins: []optimizer.JoinSpec{
			join("s", 0, "l", 1), join("l", 0, "o", 0), join("o", 1, "c", 0),
			join("s", 1, "n1", 0), join("c", 1, "n2", 0),
		},
	})
	// Only (FRANCE, GERMANY) and (GERMANY, FRANCE) pairs survive.
	sel := engine.NewSelect(op,
		ne(m.ColFor("n1", 1, expr.TText), m.ColFor("n2", 1, expr.TText)))
	gb := engine.NewGroupBy(sel,
		[]expr.Expr{
			m.ColFor("n1", 1, expr.TText),
			m.ColFor("n2", 1, expr.TText),
			expr.NewExtractYear(m.ColFor("l", 4, expr.TTimestamp)),
		},
		[]string{"supp_nation", "cust_nation", "l_year"},
		[]engine.AggSpec{{Func: engine.Sum,
			Arg:  mul(m.ColFor("l", 2, expr.TFloat), sub(cFloat(1), m.ColFor("l", 3, expr.TFloat))),
			Name: "revenue"}})
	return run(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(0, expr.TText)},
		engine.OrderKey{E: col(1, expr.TText)},
		engine.OrderKey{E: col(2, expr.TBigInt)},
	), workers)
}

func q8(rel storage.Relation, workers int) *engine.Result {
	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "p", eq(col(1, expr.TText), cText("ECONOMY ANODIZED BRASS")),
				acc(`data->>'p_partkey'::BigInt`),
				acc(`data->>'p_type'`)),
			table(rel, "l", nil,
				acc(`data->>'l_orderkey'::BigInt`),
				acc(`data->>'l_partkey'::BigInt`),
				acc(`data->>'l_suppkey'::BigInt`),
				acc(`data->>'l_extendedprice'::Float`),
				acc(`data->>'l_discount'::Float`)),
			table(rel, "o",
				and(ge(col(2, expr.TTimestamp), cDate("1995-01-01")),
					le(col(2, expr.TTimestamp), cDate("1996-12-31"))),
				acc(`data->>'o_orderkey'::BigInt`),
				acc(`data->>'o_custkey'::BigInt`),
				acc(`data->>'o_orderdate'::Date`)),
			table(rel, "c", nil,
				acc(`data->>'c_custkey'::BigInt`),
				acc(`data->>'c_nationkey'::BigInt`)),
			table(rel, "n1", nil,
				acc(`data->>'n_nationkey'::BigInt`),
				acc(`data->>'n_regionkey'::BigInt`)),
			table(rel, "r", eq(col(1, expr.TText), cText("AMERICA")),
				acc(`data->>'r_regionkey'::BigInt`),
				acc(`data->>'r_name'`)),
			table(rel, "s", nil,
				acc(`data->>'s_suppkey'::BigInt`),
				acc(`data->>'s_nationkey'::BigInt`)),
			table(rel, "n2", nil,
				acc(`data->>'n_nationkey'::BigInt`),
				acc(`data->>'n_name'`)),
		},
		Joins: []optimizer.JoinSpec{
			join("p", 0, "l", 1), join("l", 0, "o", 0), join("o", 1, "c", 0),
			join("c", 1, "n1", 0), join("n1", 1, "r", 0),
			join("l", 2, "s", 0), join("s", 1, "n2", 0),
		},
	})
	vol := mul(m.ColFor("l", 3, expr.TFloat), sub(cFloat(1), m.ColFor("l", 4, expr.TFloat)))
	brazilVol := expr.NewCase([]expr.When{{
		Cond:   eq(m.ColFor("n2", 1, expr.TText), cText("BRAZIL")),
		Result: vol,
	}}, cFloat(0))
	gb := engine.NewGroupBy(op,
		[]expr.Expr{expr.NewExtractYear(m.ColFor("o", 2, expr.TTimestamp))},
		[]string{"o_year"},
		[]engine.AggSpec{
			{Func: engine.Sum, Arg: brazilVol, Name: "brazil_volume"},
			{Func: engine.Sum, Arg: vol, Name: "volume"},
		})
	share := engine.NewProject(gb, []expr.Expr{
		col(0, expr.TBigInt),
		expr.NewArith(expr.Div, col(1, expr.TFloat), col(2, expr.TFloat)),
	}, []string{"o_year", "mkt_share"})
	return run(engine.NewOrderBy(share, engine.OrderKey{E: col(0, expr.TBigInt)}), workers)
}

func q9(rel storage.Relation, workers int) *engine.Result {
	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "p", expr.NewLike(col(1, expr.TText), "%green%"),
				acc(`data->>'p_partkey'::BigInt`),
				acc(`data->>'p_name'`)),
			table(rel, "l", nil,
				acc(`data->>'l_orderkey'::BigInt`),
				acc(`data->>'l_partkey'::BigInt`),
				acc(`data->>'l_suppkey'::BigInt`),
				acc(`data->>'l_quantity'::BigInt`),
				acc(`data->>'l_extendedprice'::Float`),
				acc(`data->>'l_discount'::Float`)),
			table(rel, "ps", nil,
				acc(`data->>'ps_partkey'::BigInt`),
				acc(`data->>'ps_suppkey'::BigInt`),
				acc(`data->>'ps_supplycost'::Float`)),
			table(rel, "s", nil,
				acc(`data->>'s_suppkey'::BigInt`),
				acc(`data->>'s_nationkey'::BigInt`)),
			table(rel, "o", nil,
				acc(`data->>'o_orderkey'::BigInt`),
				acc(`data->>'o_orderdate'::Date`)),
			table(rel, "n", nil,
				acc(`data->>'n_nationkey'::BigInt`),
				acc(`data->>'n_name'`)),
		},
		Joins: []optimizer.JoinSpec{
			join("p", 0, "l", 1),
			join("l", 1, "ps", 0), join("l", 2, "ps", 1), // composite
			join("l", 2, "s", 0), join("l", 0, "o", 0), join("s", 1, "n", 0),
		},
	})
	amount := sub(
		mul(m.ColFor("l", 4, expr.TFloat), sub(cFloat(1), m.ColFor("l", 5, expr.TFloat))),
		mul(m.ColFor("ps", 2, expr.TFloat), m.ColFor("l", 3, expr.TBigInt)))
	gb := engine.NewGroupBy(op,
		[]expr.Expr{
			m.ColFor("n", 1, expr.TText),
			expr.NewExtractYear(m.ColFor("o", 1, expr.TTimestamp)),
		},
		[]string{"nation", "o_year"},
		[]engine.AggSpec{{Func: engine.Sum, Arg: amount, Name: "sum_profit"}})
	return run(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(0, expr.TText)},
		engine.OrderKey{E: col(1, expr.TBigInt), Desc: true},
	), workers)
}

func q10(rel storage.Relation, workers int) *engine.Result {
	op, m := plan(optimizer.Query{
		Tables: []optimizer.TableSpec{
			table(rel, "c", nil,
				acc(`data->>'c_custkey'::BigInt`),
				acc(`data->>'c_name'`),
				acc(`data->>'c_acctbal'::Float`),
				acc(`data->>'c_nationkey'::BigInt`),
				acc(`data->>'c_address'`),
				acc(`data->>'c_phone'`),
				acc(`data->>'c_comment'`)),
			table(rel, "o",
				and(ge(col(2, expr.TTimestamp), cDate("1993-10-01")),
					lt(col(2, expr.TTimestamp), cDate("1994-01-01"))),
				acc(`data->>'o_orderkey'::BigInt`),
				acc(`data->>'o_custkey'::BigInt`),
				acc(`data->>'o_orderdate'::Date`)),
			table(rel, "l", eq(col(1, expr.TText), cText("R")),
				acc(`data->>'l_orderkey'::BigInt`),
				acc(`data->>'l_returnflag'`),
				acc(`data->>'l_extendedprice'::Float`),
				acc(`data->>'l_discount'::Float`)),
			table(rel, "n", nil,
				acc(`data->>'n_nationkey'::BigInt`),
				acc(`data->>'n_name'`)),
		},
		Joins: []optimizer.JoinSpec{
			join("c", 0, "o", 1), join("o", 0, "l", 0), join("c", 3, "n", 0),
		},
	})
	gb := engine.NewGroupBy(op,
		[]expr.Expr{
			m.ColFor("c", 0, expr.TBigInt),
			m.ColFor("c", 1, expr.TText),
			m.ColFor("c", 2, expr.TFloat),
			m.ColFor("n", 1, expr.TText),
		},
		[]string{"c_custkey", "c_name", "c_acctbal", "n_name"},
		[]engine.AggSpec{{Func: engine.Sum,
			Arg:  mul(m.ColFor("l", 2, expr.TFloat), sub(cFloat(1), m.ColFor("l", 3, expr.TFloat))),
			Name: "revenue"}})
	return run(engine.NewLimit(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(4, expr.TFloat), Desc: true}), 20), workers)
}

func q11(rel storage.Relation, workers int) *engine.Result {
	build := func() (engine.Operator, *optimizer.SlotMap) {
		return plan(optimizer.Query{
			Tables: []optimizer.TableSpec{
				table(rel, "ps", nil,
					acc(`data->>'ps_partkey'::BigInt`),
					acc(`data->>'ps_suppkey'::BigInt`),
					acc(`data->>'ps_supplycost'::Float`),
					acc(`data->>'ps_availqty'::BigInt`)),
				table(rel, "s", nil,
					acc(`data->>'s_suppkey'::BigInt`),
					acc(`data->>'s_nationkey'::BigInt`)),
				table(rel, "n", eq(col(1, expr.TText), cText("GERMANY")),
					acc(`data->>'n_nationkey'::BigInt`),
					acc(`data->>'n_name'`)),
			},
			Joins: []optimizer.JoinSpec{
				join("ps", 1, "s", 0), join("s", 1, "n", 0),
			},
		})
	}
	// Phase 1: total value in GERMANY.
	totOp, totMap := build()
	total := scalarFloat(run(engine.NewGroupBy(totOp, nil, nil,
		[]engine.AggSpec{{Func: engine.Sum,
			Arg:  mul(totMap.ColFor("ps", 2, expr.TFloat), totMap.ColFor("ps", 3, expr.TBigInt)),
			Name: "total"}}), workers))
	// Phase 2: per-part value above the fraction.
	op, m := build()
	gb := engine.NewGroupBy(op,
		[]expr.Expr{m.ColFor("ps", 0, expr.TBigInt)}, []string{"ps_partkey"},
		[]engine.AggSpec{{Func: engine.Sum,
			Arg:  mul(m.ColFor("ps", 2, expr.TFloat), m.ColFor("ps", 3, expr.TBigInt)),
			Name: "value"}})
	having := engine.NewSelect(gb, gt(col(1, expr.TFloat), cFloat(total*0.0001)))
	return run(engine.NewOrderBy(having, engine.OrderKey{E: col(1, expr.TFloat), Desc: true}), workers)
}
