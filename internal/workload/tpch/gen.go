// Package tpch generates the combined TPC-H JSON workload of paper
// §6.1 and implements its 22 queries against the JSON storage formats.
//
// Every row of every TPC-H relation becomes one JSON document whose
// keys are the column names (prefixed per TPC-H convention: l_*, o_*,
// c_*, …), and all documents live in a single combined collection —
// the paper's simulation of combined log data. Queries tell tables
// apart purely by their key sets: a scan for l_orderkey yields NULL on
// customer documents, and null-rejecting predicates drop them (or,
// with JSON tiles, skip whole tiles).
//
// The generator is a deterministic, seeded re-implementation of
// dbgen's shapes: cardinality ratios, key relationships, value
// domains, and date correlations match the specification closely
// enough that the queries' selectivities and join fan-outs are
// realistic. Text columns use small word pools instead of dbgen's
// grammar.
package tpch

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"
)

// Config scales the generated data.
type Config struct {
	// ScaleFactor follows TPC-H: SF 1 is 6M lineitems. The evaluation
	// here runs at small fractions (0.001-0.05).
	ScaleFactor float64
	// Seed makes generation reproducible.
	Seed int64
}

// Counts returns the per-table row counts at the scale factor.
func (c Config) Counts() map[string]int {
	sf := c.ScaleFactor
	if sf <= 0 {
		sf = 0.01
	}
	orders := int(1_500_000 * sf)
	if orders < 10 {
		orders = 10
	}
	cust := int(150_000 * sf)
	if cust < 5 {
		cust = 5
	}
	part := int(200_000 * sf)
	if part < 10 {
		part = 10
	}
	supp := int(10_000 * sf)
	if supp < 3 {
		supp = 3
	}
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": supp,
		"customer": cust,
		"part":     part,
		"partsupp": part * 4,
		"orders":   orders,
		// lineitem is generated per order (1..7 each, ~4 avg).
	}
}

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	nationRegion = []int{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}

	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP CASE", "JUMBO PKG"}
	types      = []string{
		"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM POLISHED BRASS",
		"LARGE BURNISHED STEEL", "ECONOMY BRUSHED NICKEL", "PROMO POLISHED STEEL",
		"PROMO BURNISHED COPPER", "STANDARD BRUSHED BRASS", "SMALL ANODIZED NICKEL",
		"ECONOMY ANODIZED BRASS", "MEDIUM BURNISHED TIN", "LARGE POLISHED COPPER",
	}
	brands = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22",
		"Brand#23", "Brand#31", "Brand#32", "Brand#33", "Brand#41", "Brand#42",
		"Brand#43", "Brand#51", "Brand#52", "Brand#53"}
	partWords = []string{"almond", "antique", "aquamarine", "azure", "beige",
		"bisque", "blanched", "blue", "blush", "brown", "burlywood", "chartreuse",
		"chiffon", "chocolate", "coral", "cornflower", "cream", "cyan", "dark",
		"deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted",
		"gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot",
		"indian", "ivory", "khaki", "lace", "lavender"}
	commentWords = []string{"carefully", "quickly", "furiously", "slyly", "blithely",
		"ironic", "final", "pending", "regular", "express", "special", "bold",
		"deposits", "requests", "accounts", "packages", "instructions", "theodolites",
		"pinto", "beans", "foxes", "ideas", "dependencies", "platelets", "sleep",
		"nag", "haggle", "wake", "cajole", "boost", "detect", "integrate"}
)

const dayMicros = 24 * 60 * 60 * 1_000_000

var (
	startDate = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	endDate   = time.Date(1998, 8, 2, 0, 0, 0, 0, time.UTC)
	totalDays = int(endDate.Sub(startDate).Hours() / 24)
)

func dateStr(day int) string {
	return startDate.AddDate(0, 0, day).Format("2006-01-02")
}

type gen struct {
	r   *rand.Rand
	buf []byte
}

func (g *gen) words(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += commentWords[g.r.Intn(len(commentWords))]
	}
	return s
}

// obj builds one JSON document from alternating key, rendered-value
// pairs (values are pre-rendered JSON fragments).
func (g *gen) obj(kv ...string) []byte {
	g.buf = g.buf[:0]
	g.buf = append(g.buf, '{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			g.buf = append(g.buf, ',')
		}
		g.buf = append(g.buf, '"')
		g.buf = append(g.buf, kv[i]...)
		g.buf = append(g.buf, '"', ':')
		g.buf = append(g.buf, kv[i+1]...)
	}
	g.buf = append(g.buf, '}')
	return append([]byte(nil), g.buf...)
}

func jstr(s string) string { return `"` + s + `"` }
func jint(i int) string    { return strconv.Itoa(i) }
func jmoney(f float64) string {
	return strconv.FormatFloat(float64(int(f*100))/100, 'f', 2, 64)
}

// Generate produces the combined collection: all tables' documents,
// emitted table by table (the natural insertion order the paper's
// sequential experiments use). The returned slice of per-table spans
// lets callers slice out single tables.
func Generate(cfg Config) (lines [][]byte, spans map[string][2]int) {
	g := &gen{r: rand.New(rand.NewSource(cfg.Seed + 7))}
	counts := cfg.Counts()
	spans = map[string][2]int{}

	mark := func(table string, body func()) {
		start := len(lines)
		body()
		spans[table] = [2]int{start, len(lines)}
	}

	mark("region", func() {
		for i := 0; i < counts["region"]; i++ {
			lines = append(lines, g.obj(
				"r_regionkey", jint(i),
				"r_name", jstr(regionNames[i]),
				"r_comment", jstr(g.words(4)),
			))
		}
	})
	mark("nation", func() {
		for i := 0; i < counts["nation"]; i++ {
			lines = append(lines, g.obj(
				"n_nationkey", jint(i),
				"n_name", jstr(nationNames[i]),
				"n_regionkey", jint(nationRegion[i]),
				"n_comment", jstr(g.words(4)),
			))
		}
	})
	nSupp := counts["supplier"]
	mark("supplier", func() {
		for i := 0; i < nSupp; i++ {
			cmt := g.words(5)
			// A fraction of suppliers carry the Q16/Q20-relevant
			// "Customer Complaints" marker.
			if g.r.Intn(100) < 3 {
				cmt = "Customer Complaints " + cmt
			}
			lines = append(lines, g.obj(
				"s_suppkey", jint(i),
				"s_name", jstr(fmt.Sprintf("Supplier#%09d", i)),
				"s_address", jstr(g.words(2)),
				"s_nationkey", jint(g.r.Intn(25)),
				"s_phone", jstr(fmt.Sprintf("%d-%03d-%03d-%04d", 10+g.r.Intn(25), g.r.Intn(1000), g.r.Intn(1000), g.r.Intn(10000))),
				"s_acctbal", jmoney(g.r.Float64()*11000-1000),
				"s_comment", jstr(cmt),
			))
		}
	})
	nCust := counts["customer"]
	mark("customer", func() {
		for i := 0; i < nCust; i++ {
			nation := g.r.Intn(25)
			lines = append(lines, g.obj(
				"c_custkey", jint(i),
				"c_name", jstr(fmt.Sprintf("Customer#%09d", i)),
				"c_address", jstr(g.words(2)),
				"c_nationkey", jint(nation),
				"c_phone", jstr(fmt.Sprintf("%d-%03d-%03d-%04d", 10+nation, g.r.Intn(1000), g.r.Intn(1000), g.r.Intn(10000))),
				"c_acctbal", jmoney(g.r.Float64()*11000-1000),
				"c_mktsegment", jstr(segments[g.r.Intn(len(segments))]),
				"c_comment", jstr(g.words(6)),
			))
		}
	})
	nPart := counts["part"]
	mark("part", func() {
		for i := 0; i < nPart; i++ {
			lines = append(lines, g.obj(
				"p_partkey", jint(i),
				"p_name", jstr(partWords[g.r.Intn(len(partWords))]+" "+partWords[g.r.Intn(len(partWords))]),
				"p_mfgr", jstr(fmt.Sprintf("Manufacturer#%d", 1+g.r.Intn(5))),
				"p_brand", jstr(brands[g.r.Intn(len(brands))]),
				"p_type", jstr(types[g.r.Intn(len(types))]),
				"p_size", jint(1+g.r.Intn(50)),
				"p_container", jstr(containers[g.r.Intn(len(containers))]),
				"p_retailprice", jmoney(900+float64(i%1000)+g.r.Float64()*100),
				"p_comment", jstr(g.words(3)),
			))
		}
	})
	mark("partsupp", func() {
		for p := 0; p < nPart; p++ {
			for s := 0; s < 4; s++ {
				lines = append(lines, g.obj(
					"ps_partkey", jint(p),
					"ps_suppkey", jint((p+s*(nSupp/4+1))%nSupp),
					"ps_availqty", jint(1+g.r.Intn(9999)),
					"ps_supplycost", jmoney(1+g.r.Float64()*999),
					"ps_comment", jstr(g.words(6)),
				))
			}
		}
	})
	nOrders := counts["orders"]
	// Lineitems are buffered during order generation so every table
	// stays contiguous in the combined output.
	var pendingLineitems [][]byte
	mark("orders", func() {
		for o := 0; o < nOrders; o++ {
			orderDay := g.r.Intn(totalDays - 151)
			nLines := 1 + g.r.Intn(7)
			totalPrice := 0.0
			lineDocs := make([][]byte, 0, nLines)
			for ln := 1; ln <= nLines; ln++ {
				qty := 1 + g.r.Intn(50)
				price := 901.0 + g.r.Float64()*99099.0/50*float64(qty)/50
				ext := float64(qty) * price / 10
				disc := float64(g.r.Intn(11)) / 100
				tax := float64(g.r.Intn(9)) / 100
				shipDay := orderDay + 1 + g.r.Intn(121)
				commitDay := orderDay + 30 + g.r.Intn(61)
				receiptDay := shipDay + 1 + g.r.Intn(30)
				rf := "N"
				if receiptDay <= totalDays-365 {
					if g.r.Intn(2) == 0 {
						rf = "R"
					} else {
						rf = "A"
					}
				}
				ls := "O"
				if shipDay < totalDays-180 {
					ls = "F"
				}
				totalPrice += ext * (1 + tax) * (1 - disc)
				lineDocs = append(lineDocs, g.obj(
					"l_orderkey", jint(o),
					"l_partkey", jint(g.r.Intn(nPart)),
					"l_suppkey", jint(g.r.Intn(nSupp)),
					"l_linenumber", jint(ln),
					"l_quantity", jint(qty),
					"l_extendedprice", jmoney(ext),
					"l_discount", strconv.FormatFloat(disc, 'f', 2, 64),
					"l_tax", strconv.FormatFloat(tax, 'f', 2, 64),
					"l_returnflag", jstr(rf),
					"l_linestatus", jstr(ls),
					"l_shipdate", jstr(dateStr(shipDay)),
					"l_commitdate", jstr(dateStr(commitDay)),
					"l_receiptdate", jstr(dateStr(receiptDay)),
					"l_shipinstruct", jstr(instructs[g.r.Intn(len(instructs))]),
					"l_shipmode", jstr(shipmodes[g.r.Intn(len(shipmodes))]),
					"l_comment", jstr(g.words(3)),
				))
			}
			status := "O"
			if orderDay < totalDays-365 {
				status = "F"
			} else if g.r.Intn(2) == 0 {
				status = "P"
			}
			lines = append(lines, g.obj(
				"o_orderkey", jint(o),
				"o_custkey", jint(g.r.Intn(nCust)),
				"o_orderstatus", jstr(status),
				"o_totalprice", jmoney(totalPrice),
				"o_orderdate", jstr(dateStr(orderDay)),
				"o_orderpriority", jstr(priorities[g.r.Intn(len(priorities))]),
				"o_clerk", jstr(fmt.Sprintf("Clerk#%09d", g.r.Intn(1000))),
				"o_shippriority", jint(0),
				"o_comment", jstr(orderComment(g)),
			))
			pendingLineitems = append(pendingLineitems, lineDocs...)
		}
	})
	start := len(lines)
	lines = append(lines, pendingLineitems...)
	spans["lineitem"] = [2]int{start, len(lines)}
	return lines, spans
}

func orderComment(g *gen) string {
	c := g.words(5)
	// Q13 filters out comments matching %special%requests%.
	if g.r.Intn(100) < 2 {
		c = "special requests " + c
	}
	return c
}

// Shuffle returns a deterministically shuffled copy of the lines —
// the shuffled-TPC-H robustness experiment (§6.4).
func Shuffle(lines [][]byte, seed int64) [][]byte {
	out := append([][]byte(nil), lines...)
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
