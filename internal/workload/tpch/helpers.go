package tpch

import (
	"repro/internal/dates"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/exprparse"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// Query helpers shared by the 22 query implementations. Queries are
// written against a *single combined relation* holding all tables'
// documents (paper §6.1): each logical table is a scan of the combined
// relation accessing that table's key prefix; null-rejecting
// predicates (and join keys) drop foreign documents — and let JSON
// tiles skip foreign tiles wholesale.

// acc parses a PostgreSQL-style access expression.
func acc(s string) storage.Access { return exprparse.MustParse(s) }

// col builds a column reference.
func col(i int, t expr.SQLType) *expr.Col { return expr.NewCol(i, t) }

func cInt(v int64) expr.Expr     { return expr.NewConst(expr.IntValue(v)) }
func cFloat(v float64) expr.Expr { return expr.NewConst(expr.FloatValue(v)) }
func cText(s string) expr.Expr   { return expr.NewConst(expr.TextValue(s)) }

// cDate builds a timestamp literal from "YYYY-MM-DD".
func cDate(s string) expr.Expr {
	m, ok := dates.Parse(s)
	if !ok {
		panic("bad date literal: " + s)
	}
	return expr.NewConst(expr.TimestampValue(m))
}

func eq(l, r expr.Expr) expr.Expr { return expr.NewCmp(expr.EQ, l, r) }
func ne(l, r expr.Expr) expr.Expr { return expr.NewCmp(expr.NE, l, r) }
func lt(l, r expr.Expr) expr.Expr { return expr.NewCmp(expr.LT, l, r) }
func le(l, r expr.Expr) expr.Expr { return expr.NewCmp(expr.LE, l, r) }
func gt(l, r expr.Expr) expr.Expr { return expr.NewCmp(expr.GT, l, r) }
func ge(l, r expr.Expr) expr.Expr { return expr.NewCmp(expr.GE, l, r) }
func and(es ...expr.Expr) expr.Expr {
	e := es[0]
	for _, n := range es[1:] {
		e = expr.NewAnd(e, n)
	}
	return e
}
func or(l, r expr.Expr) expr.Expr { return expr.NewOr(l, r) }

func add(l, r expr.Expr) expr.Expr { return expr.NewArith(expr.Add, l, r) }
func sub(l, r expr.Expr) expr.Expr { return expr.NewArith(expr.Sub, l, r) }
func mul(l, r expr.Expr) expr.Expr { return expr.NewArith(expr.Mul, l, r) }

// table declares one logical TPC-H table over the combined relation.
func table(rel storage.Relation, alias string, filter expr.Expr, accs ...storage.Access) optimizer.TableSpec {
	return optimizer.TableSpec{Alias: alias, Rel: rel, Accesses: accs, Filter: filter}
}

// join declares one equi-join edge.
func join(la string, ls int, ra string, rs int) optimizer.JoinSpec {
	return optimizer.JoinSpec{LeftAlias: la, LeftSlot: ls, RightAlias: ra, RightSlot: rs}
}

// plan runs the optimizer; panics on spec errors (static queries).
func plan(q optimizer.Query) (engine.Operator, *optimizer.SlotMap) {
	op, m, err := optimizer.Plan(q)
	if err != nil {
		panic(err)
	}
	return op, m
}

// scan1 builds a single-table scan (no joins).
func scan1(rel storage.Relation, filter expr.Expr, accs ...storage.Access) *engine.Scan {
	return engine.NewScan(rel, accs, nil, filter)
}

// revenue is the recurring l_extendedprice * (1 - l_discount).
func revenue(priceSlot, discSlot int) expr.Expr {
	return mul(col(priceSlot, expr.TFloat),
		sub(cFloat(1), col(discSlot, expr.TFloat)))
}

// run materializes an operator.
func run(op engine.Operator, workers int) *engine.Result {
	res := engine.Materialize(op, workers)
	res.SortRows()
	return res
}

// scalarFloat extracts the single float of a 1×1 result (0 when
// empty/NULL).
func scalarFloat(res *engine.Result) float64 {
	if len(res.Rows) == 0 || res.Rows[0][0].Null {
		return 0
	}
	f, _ := res.Rows[0][0].AsFloat()
	return f
}
