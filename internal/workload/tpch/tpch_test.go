package tpch

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/jsontext"
	"repro/internal/storage"
)

func TestGenerateShape(t *testing.T) {
	cfg := Config{ScaleFactor: 0.001, Seed: 1}
	lines, spans := Generate(cfg)
	if len(lines) == 0 {
		t.Fatal("no documents")
	}
	// Every document is valid JSON.
	for i, l := range lines {
		if !jsontext.Valid(l) {
			t.Fatalf("doc %d invalid: %s", i, l)
		}
	}
	// All 8 tables present with plausible ratios.
	for _, tbl := range []string{"region", "nation", "supplier", "customer",
		"part", "partsupp", "orders", "lineitem"} {
		sp, ok := spans[tbl]
		if !ok || sp[1] <= sp[0] {
			t.Fatalf("table %s empty", tbl)
		}
	}
	if n := spans["region"][1] - spans["region"][0]; n != 5 {
		t.Errorf("regions = %d", n)
	}
	if n := spans["nation"][1] - spans["nation"][0]; n != 25 {
		t.Errorf("nations = %d", n)
	}
	ords := spans["orders"][1] - spans["orders"][0]
	items := spans["lineitem"][1] - spans["lineitem"][0]
	if items < 2*ords || items > 8*ords {
		t.Errorf("lineitem/orders ratio = %d/%d", items, ords)
	}
	// Lineitem docs carry l_ keys only.
	sample := lines[spans["lineitem"][0]]
	if !bytes.Contains(sample, []byte(`"l_orderkey"`)) ||
		bytes.Contains(sample, []byte(`"o_orderkey"`)) {
		t.Errorf("lineitem doc malformed: %s", sample)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{ScaleFactor: 0.001, Seed: 42})
	b, _ := Generate(Config{ScaleFactor: 0.001, Seed: 42})
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("doc %d differs", i)
		}
	}
	c, _ := Generate(Config{ScaleFactor: 0.001, Seed: 43})
	same := 0
	for i := range c {
		if i < len(a) && bytes.Equal(a[i], c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical data")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	a, _ := Generate(Config{ScaleFactor: 0.001, Seed: 1})
	s := Shuffle(a, 99)
	if len(s) != len(a) {
		t.Fatal("length changed")
	}
	seen := map[string]int{}
	for _, l := range a {
		seen[string(l)]++
	}
	for _, l := range s {
		seen[string(l)]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Fatalf("multiset changed for %s", k)
		}
	}
	moved := 0
	for i := range a {
		if !bytes.Equal(a[i], s[i]) {
			moved++
		}
	}
	if moved < len(a)/2 {
		t.Error("shuffle barely moved anything")
	}
}

// loadFormats loads the combined data into every format once per test
// run (the comparison fixture).
func loadFormats(t *testing.T, lines [][]byte) map[storage.FormatKind]storage.Relation {
	t.Helper()
	cfg := storage.DefaultLoaderConfig()
	cfg.Tile.TileSize = 256 // small tiles for small test data
	out := map[storage.FormatKind]storage.Relation{}
	for _, k := range []storage.FormatKind{storage.KindJSON, storage.KindJSONB,
		storage.KindSinew, storage.KindTiles, storage.KindShredded} {
		l, err := storage.NewLoader(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := l.Load(string(k), lines, 2)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		out[k] = rel
	}
	return out
}

func resultString(res *engine.Result) string {
	var b bytes.Buffer
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			// Floats across formats can differ in the last ulps from
			// different summation orders; round for comparison.
			if !v.Null && v.Typ == expr.TFloat {
				fmt.Fprintf(&b, "%.4f", v.F)
			} else {
				b.WriteString(v.String())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestAllQueriesAgreeAcrossFormats is the central correctness check:
// every TPC-H query must return identical results on every storage
// format, serial and parallel.
func TestAllQueriesAgreeAcrossFormats(t *testing.T) {
	lines, _ := Generate(Config{ScaleFactor: 0.002, Seed: 7})
	rels := loadFormats(t, lines)
	for _, q := range Queries() {
		q := q
		t.Run(fmt.Sprintf("Q%d", q.Num), func(t *testing.T) {
			want := ""
			for _, kind := range []storage.FormatKind{storage.KindJSON, storage.KindJSONB,
				storage.KindSinew, storage.KindTiles, storage.KindShredded} {
				res := q.Run(rels[kind], 1)
				got := resultString(res)
				if want == "" {
					want = got
					if got == "" && q.Num != 19 { // Q19's tight filter may select nothing at tiny SF
						t.Logf("Q%d empty result at this scale", q.Num)
					}
					continue
				}
				if got != want {
					t.Errorf("%s differs from JSON baseline\n got: %s\nwant: %s", kind, got, want)
				}
			}
			// Parallel execution must agree too (on Tiles).
			par := resultString(q.Run(rels[storage.KindTiles], 4))
			if par != want {
				t.Errorf("parallel Tiles differs:\n got: %s\nwant: %s", par, want)
			}
		})
	}
}

func TestShuffledAgrees(t *testing.T) {
	lines, _ := Generate(Config{ScaleFactor: 0.002, Seed: 7})
	shuffled := Shuffle(lines, 5)
	cfg := storage.DefaultLoaderConfig()
	cfg.Tile.TileSize = 256
	l, _ := storage.NewLoader(storage.KindTiles, cfg)
	relSeq, err := l.Load("seq", lines, 2)
	if err != nil {
		t.Fatal(err)
	}
	relShuf, err := l.Load("shuf", shuffled, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, num := range []int{1, 3, 6, 18} {
		q, _ := QueryByNum(num)
		a := resultString(q.Run(relSeq, 2))
		b := resultString(q.Run(relShuf, 2))
		if a != b {
			t.Errorf("Q%d: shuffled result differs", num)
		}
	}
}

func TestQ1GroundTruth(t *testing.T) {
	// Q1 aggregates must be internally consistent: count > 0, sums
	// positive, avg*count ≈ sum.
	lines, _ := Generate(Config{ScaleFactor: 0.002, Seed: 7})
	rels := loadFormats(t, lines)
	res := q1(rels[storage.KindTiles], 2)
	if len(res.Rows) < 3 || len(res.Rows) > 6 {
		t.Fatalf("%d groups (returnflag × linestatus)", len(res.Rows))
	}
	for _, row := range res.Rows {
		count := row[9].I
		sumQty, _ := row[2].AsFloat()
		avgQty, _ := row[6].AsFloat()
		if count <= 0 || sumQty <= 0 {
			t.Errorf("degenerate group %v", row)
		}
		if diff := avgQty*float64(count) - sumQty; diff > 1e-6 && diff < -1e-6 {
			t.Errorf("avg*count != sum: %v", row)
		}
	}
}
