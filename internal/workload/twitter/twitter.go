// Package twitter generates tweet streams matching the shapes of the
// paper's Twitter experiments (§2.2, §6.3) and implements the five
// queries of the evaluation. The real Twitter Stream Grab (31 GB of
// June 2020 tweets) is unavailable for redistribution; the generator
// reproduces the properties the algorithms respond to:
//
//   - the modern stream mixes full tweets with *delete records*, whose
//     JSON structure is entirely different (paper: "Deletions use a
//     different JSON structure that is not frequent globally") —
//     reordering clusters them into extractable tiles;
//   - tweets carry high-cardinality entity arrays (hashtags,
//     user_mentions) with skewed lengths — the Tiles-* experiments
//     extract them into side relations;
//   - the *changing* variant replays Twitter's historic schema growth
//     (§2.2): replies (2007), retweets (2009), geo tags (2010) appear
//     era by era, so the implicit schema drifts over the collection.
package twitter

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config scales the stream.
type Config struct {
	Tweets int
	// DeleteRatio is the fraction of delete records interleaved into
	// the stream (the 2020 grab is roughly half deletes).
	DeleteRatio float64
	// Changing replays the 2006→2013 schema evolution instead of the
	// uniform modern structure.
	Changing bool
	Seed     int64
}

// DefaultConfig is the modern-stream setup of §6.3.
func DefaultConfig() Config {
	return Config{Tweets: 20000, DeleteRatio: 0.4, Seed: 1}
}

var (
	hashtagPool = []string{"COVID", "news", "music", "love", "sports", "art",
		"food", "travel", "tech", "gaming", "fashion", "health", "crypto",
		"movies", "science"}
	screenNames = []string{"ladygaga", "katyperry", "justinbieber", "BarackObama",
		"rihanna", "taylorswift13", "Cristiano", "jtimberlake", "KimKardashian",
		"elonmusk", "NASA", "CNN", "nytimes", "BBCBreaking"}
	words = []string{"just", "saw", "the", "new", "update", "today", "really",
		"great", "feeling", "good", "about", "this", "launch", "watching",
		"game", "with", "friends", "happy", "monday", "everyone"}
	langs = []string{"en", "en", "en", "ja", "es", "pt", "ar", "fr", "de"}
)

// Generate emits the interleaved tweet/delete stream.
func Generate(cfg Config) [][]byte {
	if cfg.Tweets == 0 {
		cfg = DefaultConfig()
	}
	r := rand.New(rand.NewSource(cfg.Seed + 17))
	var lines [][]byte
	for i := 0; i < cfg.Tweets; i++ {
		if !cfg.Changing && r.Float64() < cfg.DeleteRatio {
			lines = append(lines, deleteRecord(r, i))
			continue
		}
		era := 4 // modern
		if cfg.Changing {
			// Eras progress over the collection: 2006 → 2013.
			era = i * 5 / cfg.Tweets
		}
		lines = append(lines, tweet(r, i, era))
	}
	return lines
}

func deleteRecord(r *rand.Rand, i int) []byte {
	return []byte(fmt.Sprintf(
		`{"delete":{"status":{"id":%d,"id_str":"%d","user_id":%d,"user_id_str":"%d"},"timestamp_ms":"%d"}}`,
		1_000_000+i, 1_000_000+i, r.Intn(5000), r.Intn(5000),
		1_590_000_000_000+int64(i)*1000))
}

func text(r *rand.Rand, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(words[r.Intn(len(words))])
	}
	return sb.String()
}

// tweet renders one tweet document of the given era:
//
//	era 0  2006: id, created_at, text, user
//	era 1  2007: + in_reply_to_* and entities.hashtags
//	era 2  2009: + retweet_count, favorite_count
//	era 3  2010: + geo / coordinates
//	era 4  2013+ (modern): + lang, source, entities.user_mentions
func tweet(r *rand.Rand, i, era int) []byte {
	var sb strings.Builder
	uid := zipfUser(r)
	sb.WriteString(fmt.Sprintf(`{"id":%d,"created_at":"%s","text":"%s"`,
		1_000_000+i, createdAt(r, i, era), text(r, 4+r.Intn(8))))
	sb.WriteString(fmt.Sprintf(`,"user":{"id":%d,"name":"user %d","screen_name":"%s","followers_count":%d,"verified":%v}`,
		uid, uid, screenNames[uid%len(screenNames)], followers(r, uid), uid < 20))
	if era >= 1 {
		if r.Intn(4) == 0 {
			sb.WriteString(fmt.Sprintf(`,"in_reply_to_status_id":%d,"in_reply_to_user_id":%d`,
				900_000+r.Intn(100_000), zipfUser(r)))
		}
		sb.WriteString(`,"entities":{"hashtags":[`)
		nTags := hashtagCount(r)
		for t := 0; t < nTags; t++ {
			if t > 0 {
				sb.WriteByte(',')
			}
			tag := hashtagPool[r.Intn(len(hashtagPool))]
			sb.WriteString(fmt.Sprintf(`{"text":"%s","indices":[%d,%d]}`, tag, t*10, t*10+len(tag)+1))
		}
		sb.WriteByte(']')
		if era >= 4 {
			sb.WriteString(`,"user_mentions":[`)
			nMent := r.Intn(4)
			for m := 0; m < nMent; m++ {
				if m > 0 {
					sb.WriteByte(',')
				}
				mid := zipfUser(r)
				sb.WriteString(fmt.Sprintf(`{"id":%d,"screen_name":"%s"}`, mid, screenNames[mid%len(screenNames)]))
			}
			sb.WriteByte(']')
		}
		sb.WriteByte('}')
	}
	if era >= 2 {
		sb.WriteString(fmt.Sprintf(`,"retweet_count":%d,"favorite_count":%d`,
			r.Intn(1000), r.Intn(5000)))
	}
	if era >= 3 {
		if r.Intn(3) == 0 {
			sb.WriteString(fmt.Sprintf(`,"geo":{"lat":%.4f,"lon":%.4f}`,
				-90+r.Float64()*180, -180+r.Float64()*360))
		} else {
			sb.WriteString(`,"geo":null`)
		}
	}
	if era >= 4 {
		sb.WriteString(fmt.Sprintf(`,"lang":"%s","source":"web"`, langs[r.Intn(len(langs))]))
	}
	sb.WriteByte('}')
	return []byte(sb.String())
}

func createdAt(r *rand.Rand, i, era int) string {
	year := 2020
	if era < 4 {
		year = 2006 + era*2
	}
	return fmt.Sprintf("%s Jun %02d %02d:%02d:%02d +0000 %d",
		[]string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}[i%7],
		1+r.Intn(28), r.Intn(24), r.Intn(60), r.Intn(60), year)
}

// zipfUser draws a user id with a heavy head: influential accounts
// tweet and get mentioned far more often.
func zipfUser(r *rand.Rand) int {
	if r.Intn(4) == 0 {
		return r.Intn(20) // the head
	}
	return 20 + r.Intn(4980)
}

func followers(r *rand.Rand, uid int) int {
	if uid < 20 {
		return 1_000_000 + r.Intn(50_000_000)
	}
	return r.Intn(5000)
}

// hashtagCount is skewed: most tweets carry 0-2 tags, a tail carries
// many (the high-cardinality array problem of §3.5).
func hashtagCount(r *rand.Rand) int {
	switch {
	case r.Intn(10) < 6:
		return r.Intn(3)
	case r.Intn(10) < 9:
		return 3 + r.Intn(4)
	default:
		return 8 + r.Intn(12)
	}
}
