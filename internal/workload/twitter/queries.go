package twitter

import (
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/exprparse"
	"repro/internal/keypath"
	"repro/internal/storage"
)

// Query is one Twitter analytics query (§6.3). Run executes the plain
// formulation against any storage format; RunStar, when non-nil, is
// the Tiles-* formulation that joins a high-cardinality-array side
// relation instead of probing leading array slots.
type Query struct {
	Num     int
	Name    string
	Run     func(rel storage.Relation, workers int) *engine.Result
	RunStar func(star *storage.TilesStar, workers int) *engine.Result
}

func acc(s string) storage.Access         { return exprparse.MustParse(s) }
func col(i int, t expr.SQLType) *expr.Col { return expr.NewCol(i, t) }

// ArrayPaths returns the high-cardinality arrays extracted for
// Tiles-* (the paper extracts hashtags and mentions).
func ArrayPaths() []keypath.Path {
	return []keypath.Path{
		keypath.NewPath("entities", "hashtags"),
		keypath.NewPath("entities", "user_mentions"),
	}
}

// IDPath is the parent identifier used by the side relations.
func IDPath() keypath.Path { return keypath.NewPath("id") }

// Queries returns the five evaluation queries.
func Queries() []Query {
	return []Query{
		{Num: 1, Name: "tweets of the most influential users", Run: t1},
		{Num: 2, Name: "deleted tweets per user", Run: t2},
		{Num: 3, Name: "tweets mentioning @ladygaga", Run: t3, RunStar: t3Star},
		{Num: 4, Name: "tweets with hashtag #COVID", Run: t4, RunStar: t4Star},
		{Num: 5, Name: "geo-tagged tweets per language", Run: t5},
	}
}

// QueryByNum returns one query.
func QueryByNum(n int) (Query, bool) {
	for _, q := range Queries() {
		if q.Num == n {
			return q, true
		}
	}
	return Query{}, false
}

// t1: the most influential users of the day — the user object is
// mandatory in tweets and extracted by Tiles and Sinew alike.
func t1(rel storage.Relation, workers int) *engine.Result {
	scan := engine.NewScan(rel, []storage.Access{
		acc(`data->'user'->>'id'::BigInt`),
		acc(`data->'user'->>'screen_name'`),
		acc(`data->'user'->>'followers_count'::BigInt`),
	}, nil, expr.NewCmp(expr.GT, col(2, expr.TBigInt), expr.NewConst(expr.IntValue(1_000_000))))
	gb := engine.NewGroupBy(scan,
		[]expr.Expr{col(0, expr.TBigInt), col(1, expr.TText)},
		[]string{"user_id", "screen_name"},
		[]engine.AggSpec{
			{Func: engine.CountStar, Name: "tweets"},
			{Func: engine.Max, Arg: col(2, expr.TBigInt), Name: "followers"},
		})
	top := engine.NewLimit(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(3, expr.TBigInt), Desc: true},
		engine.OrderKey{E: col(0, expr.TBigInt)}), 10)
	return engine.Materialize(top, workers)
}

// t2: deletions use a structure that is not frequent globally;
// reordering clusters and materializes it in some tiles.
func t2(rel storage.Relation, workers int) *engine.Result {
	scan := engine.NewScan(rel, []storage.Access{
		acc(`data->'delete'->'status'->>'user_id'::BigInt`),
	}, nil, expr.NewIsNull(col(0, expr.TBigInt), true))
	gb := engine.NewGroupBy(scan,
		[]expr.Expr{col(0, expr.TBigInt)}, []string{"user_id"},
		[]engine.AggSpec{{Func: engine.CountStar, Name: "deleted"}})
	top := engine.NewLimit(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(1, expr.TBigInt), Desc: true},
		engine.OrderKey{E: col(0, expr.TBigInt)}), 10)
	return engine.Materialize(top, workers)
}

// mentionSlots/hashtagSlots bound the leading-slot probes of the
// non-star formulations; they cover the generator's maximum lengths.
const mentionSlots = 8
const hashtagSlots = 24

// anySlotEquals builds OR(slot_i = value) over the given accesses.
func anySlotEquals(n int, value string) expr.Expr {
	var e expr.Expr
	for i := 0; i < n; i++ {
		cmp := expr.NewCmp(expr.EQ, col(i, expr.TText), expr.NewConst(expr.TextValue(value)))
		if e == nil {
			e = cmp
		} else {
			e = expr.NewOr(e, cmp)
		}
	}
	return e
}

func slotAccesses(base string, n int, field string) []storage.Access {
	out := make([]storage.Access, 0, n+1)
	for i := 0; i < n; i++ {
		p := keypath.NewPath("entities", base).Slot(i).Child(field)
		out = append(out, storage.NewAccessPath(expr.TText, p))
	}
	return out
}

// t3: tweets that mention @ladygaga (user_mentions array).
func t3(rel storage.Relation, workers int) *engine.Result {
	accs := slotAccesses("user_mentions", mentionSlots, "screen_name")
	accs = append(accs, acc(`data->>'id'::BigInt`))
	scan := engine.NewScan(rel, accs, nil, anySlotEquals(mentionSlots, "ladygaga"))
	gb := engine.NewGroupBy(scan, nil, nil,
		[]engine.AggSpec{{Func: engine.CountStar, Name: "mentioning_tweets"}})
	return engine.Materialize(gb, workers)
}

// t4: tweets that include the hashtag #COVID.
func t4(rel storage.Relation, workers int) *engine.Result {
	accs := slotAccesses("hashtags", hashtagSlots, "text")
	accs = append(accs, acc(`data->>'id'::BigInt`))
	scan := engine.NewScan(rel, accs, nil, anySlotEquals(hashtagSlots, "COVID"))
	gb := engine.NewGroupBy(scan, nil, nil,
		[]engine.AggSpec{{Func: engine.CountStar, Name: "covid_tweets"}})
	return engine.Materialize(gb, workers)
}

// starCount joins a filtered side relation back to the base table and
// counts distinct matching tweets — the Tiles-* formulation.
func starCount(star *storage.TilesStar, arrayPath keypath.Path, field, value, outName string, workers int) *engine.Result {
	side, ok := star.Side(arrayPath)
	if !ok {
		panic("side relation missing: " + arrayPath.Encode())
	}
	sideScan := engine.NewScan(side, []storage.Access{
		storage.NewAccess(expr.TBigInt, storage.ParentField),
		storage.NewAccess(expr.TText, field),
	}, nil, expr.NewCmp(expr.EQ, col(1, expr.TText), expr.NewConst(expr.TextValue(value))))
	mainScan := engine.NewScan(star.Main, []storage.Access{
		acc(`data->>'id'::BigInt`),
	}, nil, nil)
	mainScan.MarkNullRejecting(0)
	semi := engine.NewHashJoin(sideScan, mainScan, []int{0}, []int{0}, engine.SemiJoin)
	gb := engine.NewGroupBy(semi, nil, nil,
		[]engine.AggSpec{{Func: engine.CountStar, Name: outName}})
	return engine.Materialize(gb, workers)
}

func t3Star(star *storage.TilesStar, workers int) *engine.Result {
	return starCount(star, keypath.NewPath("entities", "user_mentions"),
		"screen_name", "ladygaga", "mentioning_tweets", workers)
}

func t4Star(star *storage.TilesStar, workers int) *engine.Result {
	return starCount(star, keypath.NewPath("entities", "hashtags"),
		"text", "COVID", "covid_tweets", workers)
}

// t5: geo-tagged tweets per language with retweet statistics.
func t5(rel storage.Relation, workers int) *engine.Result {
	scan := engine.NewScan(rel, []storage.Access{
		acc(`data->>'lang'`),
		acc(`data->'geo'->>'lat'::Float`),
		acc(`data->>'retweet_count'::BigInt`),
	}, nil, expr.NewIsNull(col(1, expr.TFloat), true))
	gb := engine.NewGroupBy(scan,
		[]expr.Expr{col(0, expr.TText)}, []string{"lang"},
		[]engine.AggSpec{
			{Func: engine.CountStar, Name: "geo_tweets"},
			{Func: engine.Avg, Arg: col(2, expr.TBigInt), Name: "avg_retweets"},
		})
	return engine.Materialize(engine.NewOrderBy(gb,
		engine.OrderKey{E: col(1, expr.TBigInt), Desc: true},
		engine.OrderKey{E: col(0, expr.TText)}), workers)
}
