package twitter

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/jsontext"
	"repro/internal/storage"
)

func smallConfig() Config {
	return Config{Tweets: 2000, DeleteRatio: 0.4, Seed: 3}
}

func TestGenerateValid(t *testing.T) {
	for _, cfg := range []Config{smallConfig(), {Tweets: 2000, Changing: true, Seed: 3}} {
		lines := Generate(cfg)
		if len(lines) != 2000 {
			t.Fatalf("%d lines", len(lines))
		}
		deletes, tweets := 0, 0
		for i, l := range lines {
			if !jsontext.Valid(l) {
				t.Fatalf("doc %d invalid: %s", i, l)
			}
			if bytes.Contains(l, []byte(`"delete"`)) {
				deletes++
			} else {
				tweets++
			}
		}
		if !cfg.Changing && (deletes < 500 || deletes > 1100) {
			t.Errorf("deletes = %d", deletes)
		}
		if cfg.Changing && deletes != 0 {
			t.Errorf("changing stream has deletes")
		}
	}
}

func TestChangingSchemaEvolves(t *testing.T) {
	lines := Generate(Config{Tweets: 2000, Changing: true, Seed: 3})
	// Early tweets (2006 era) must lack entities; late tweets have them.
	early := bytes.Contains(lines[0], []byte(`"entities"`))
	late := bytes.Contains(lines[len(lines)-1], []byte(`"entities"`))
	if early || !late {
		t.Errorf("schema evolution broken: early entities=%v, late entities=%v", early, late)
	}
	if bytes.Contains(lines[0], []byte(`"geo"`)) {
		t.Error("2006 tweets should have no geo")
	}
}

func resultString(res *engine.Result) string {
	res.SortRows()
	var b bytes.Buffer
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			if !v.Null && v.Typ == expr.TFloat {
				fmt.Fprintf(&b, "%.4f", v.F)
			} else {
				b.WriteString(v.String())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestQueriesAgreeAcrossFormats(t *testing.T) {
	lines := Generate(smallConfig())
	cfg := storage.DefaultLoaderConfig()
	cfg.Tile.TileSize = 128
	kinds := []storage.FormatKind{storage.KindJSON, storage.KindJSONB,
		storage.KindSinew, storage.KindTiles, storage.KindShredded}
	rels := map[storage.FormatKind]storage.Relation{}
	for _, k := range kinds {
		l, _ := storage.NewLoader(k, cfg)
		rel, err := l.Load(string(k), lines, 2)
		if err != nil {
			t.Fatal(err)
		}
		rels[k] = rel
	}
	star, err := storage.BuildTilesStar("twitter", lines, cfg, 2, IDPath(), ArrayPaths()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Queries() {
		want := ""
		for _, k := range kinds {
			got := resultString(q.Run(rels[k], 2))
			if want == "" {
				want = got
				if got == "" {
					t.Errorf("T%d returned nothing", q.Num)
				}
				continue
			}
			if got != want {
				t.Errorf("T%d: %s differs\n got: %s\nwant: %s", q.Num, k, got, want)
			}
		}
		// Tiles-* must agree with the slot formulation.
		if q.RunStar != nil {
			got := resultString(q.RunStar(star, 2))
			if got != want {
				t.Errorf("T%d: Tiles-* differs\n got: %s\nwant: %s", q.Num, got, want)
			}
		}
	}
}

func TestSideRelationsBuilt(t *testing.T) {
	lines := Generate(smallConfig())
	cfg := storage.DefaultLoaderConfig()
	cfg.Tile.TileSize = 128
	star, err := storage.BuildTilesStar("twitter", lines, cfg, 2, IDPath(), ArrayPaths()...)
	if err != nil {
		t.Fatal(err)
	}
	hs, ok := star.Side(ArrayPaths()[0])
	if !ok || hs.NumRows() == 0 {
		t.Fatal("hashtags side relation empty")
	}
	ms, ok := star.Side(ArrayPaths()[1])
	if !ok || ms.NumRows() == 0 {
		t.Fatal("mentions side relation empty")
	}
	if star.SizeBytes() <= star.Main.SizeBytes() {
		t.Error("size accounting ignores sides")
	}
}

func TestDeleteQueryOnChangingData(t *testing.T) {
	// The changing stream has no deletes; T2 must return no groups
	// (not crash) on every format.
	lines := Generate(Config{Tweets: 1000, Changing: true, Seed: 3})
	l, _ := storage.NewLoader(storage.KindTiles, storage.DefaultLoaderConfig())
	rel, err := l.Load("changing", lines, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := t2(rel, 2)
	if len(res.Rows) != 0 {
		t.Errorf("deletes found in changing stream: %v", res.Rows)
	}
}
