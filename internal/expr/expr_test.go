package expr

import (
	"testing"

	"repro/internal/dates"
)

func row(vs ...Value) []Value { return vs }

func TestThreeValuedLogic(t *testing.T) {
	tr := NewConst(BoolValue(true))
	fa := NewConst(BoolValue(false))
	nu := NewConst(NullValue())

	tests := []struct {
		name string
		e    Expr
		want Value
	}{
		{"t and t", NewAnd(tr, tr), BoolValue(true)},
		{"t and f", NewAnd(tr, fa), BoolValue(false)},
		{"t and null", NewAnd(tr, nu), NullValue()},
		{"f and null", NewAnd(fa, nu), BoolValue(false)},
		{"null and f", NewAnd(nu, fa), BoolValue(false)},
		{"null and null", NewAnd(nu, nu), NullValue()},
		{"t or null", NewOr(tr, nu), BoolValue(true)},
		{"null or t", NewOr(nu, tr), BoolValue(true)},
		{"f or null", NewOr(fa, nu), NullValue()},
		{"null or null", NewOr(nu, nu), NullValue()},
		{"not t", NewNot(tr), BoolValue(false)},
		{"not null", NewNot(nu), NullValue()},
	}
	for _, tt := range tests {
		got := tt.e.Eval(nil)
		if got.Null != tt.want.Null || (!got.Null && got.B != tt.want.B) {
			t.Errorf("%s = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	c := func(op CmpOp, a, b Value) Value {
		return NewCmp(op, NewConst(a), NewConst(b)).Eval(nil)
	}
	if !c(EQ, IntValue(3), IntValue(3)).IsTrue() {
		t.Error("3 = 3")
	}
	if !c(LT, IntValue(2), FloatValue(2.5)).IsTrue() {
		t.Error("2 < 2.5 cross-type")
	}
	if !c(GE, TextValue("b"), TextValue("a")).IsTrue() {
		t.Error("text compare")
	}
	if !c(NE, IntValue(1), IntValue(2)).IsTrue() {
		t.Error("1 <> 2")
	}
	if got := c(EQ, NullValue(), IntValue(1)); !got.Null {
		t.Error("null = 1 must be NULL")
	}
	if got := c(EQ, NullValue(), NullValue()); !got.Null {
		t.Error("null = null must be NULL")
	}
	if !c(LE, TimestampValue(100), TimestampValue(100)).IsTrue() {
		t.Error("timestamp compare")
	}
	// Incomparable -> NULL.
	if got := c(EQ, TextValue("a"), IntValue(1)); !got.Null {
		t.Error("text vs int must be NULL")
	}
}

func TestArithmetic(t *testing.T) {
	a := func(op ArithOp, x, y Value) Value {
		return NewArith(op, NewConst(x), NewConst(y)).Eval(nil)
	}
	if got := a(Add, IntValue(2), IntValue(3)); got.Typ != TBigInt || got.I != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := a(Mul, IntValue(2), FloatValue(1.5)); got.Typ != TFloat || got.F != 3 {
		t.Errorf("2*1.5 = %v", got)
	}
	if got := a(Div, IntValue(7), IntValue(2)); got.Typ != TFloat || got.F != 3.5 {
		t.Errorf("7/2 = %v (SQL-style exactness not modeled; float division)", got)
	}
	if got := a(Div, IntValue(1), IntValue(0)); !got.Null {
		t.Error("division by zero must be NULL")
	}
	if got := a(Sub, NullValue(), IntValue(1)); !got.Null {
		t.Error("null arithmetic")
	}
}

func TestLike(t *testing.T) {
	tests := []struct {
		s, pat string
		want   bool
	}{
		{"hello world", "%world", true},
		{"hello world", "hello%", true},
		{"hello world", "%lo wo%", true},
		{"hello world", "hello world", true},
		{"hello world", "%xyz%", false},
		{"", "%", true},
	}
	for _, tt := range tests {
		got := NewLike(NewConst(TextValue(tt.s)), tt.pat).Eval(nil)
		if got.IsTrue() != tt.want {
			t.Errorf("%q LIKE %q = %v", tt.s, tt.pat, got)
		}
	}
	if got := NewLike(NewConst(NullValue()), "%x%").Eval(nil); !got.Null {
		t.Error("null LIKE")
	}
}

func TestCaseAndIn(t *testing.T) {
	col := NewCol(0, TBigInt)
	c := NewCase([]When{
		{Cond: NewCmp(EQ, col, NewConst(IntValue(1))), Result: NewConst(TextValue("one"))},
		{Cond: NewCmp(EQ, col, NewConst(IntValue(2))), Result: NewConst(TextValue("two"))},
	}, NewConst(TextValue("many")))
	if got := c.Eval(row(IntValue(1))); got.S != "one" {
		t.Errorf("case(1) = %v", got)
	}
	if got := c.Eval(row(IntValue(9))); got.S != "many" {
		t.Errorf("case(9) = %v", got)
	}
	if got := c.Eval(row(NullValue())); got.S != "many" {
		t.Errorf("case(null) falls to else: %v", got)
	}

	in := NewIn(col, IntValue(1), IntValue(3))
	if !in.Eval(row(IntValue(3))).IsTrue() {
		t.Error("3 in (1,3)")
	}
	if in.Eval(row(IntValue(2))).IsTrue() {
		t.Error("2 in (1,3)")
	}
	if got := in.Eval(row(NullValue())); !got.Null {
		t.Error("null in list")
	}
}

func TestIsNull(t *testing.T) {
	col := NewCol(0, TBigInt)
	if !NewIsNull(col, false).Eval(row(NullValue())).IsTrue() {
		t.Error("null is null")
	}
	if NewIsNull(col, false).Eval(row(IntValue(1))).IsTrue() {
		t.Error("1 is null")
	}
	if !NewIsNull(col, true).Eval(row(IntValue(1))).IsTrue() {
		t.Error("1 is not null")
	}
}

func TestCasts(t *testing.T) {
	tests := []struct {
		in   Value
		to   SQLType
		want Value
	}{
		{TextValue("42"), TBigInt, IntValue(42)},
		{TextValue(" 42 "), TBigInt, IntValue(42)},
		{TextValue("2.5"), TFloat, FloatValue(2.5)},
		{TextValue("2.9"), TBigInt, IntValue(2)},
		{TextValue("abc"), TBigInt, NullValue()},
		{IntValue(3), TFloat, FloatValue(3)},
		{FloatValue(3.7), TBigInt, IntValue(3)},
		{IntValue(0), TBool, BoolValue(false)},
		{TextValue("true"), TBool, BoolValue(true)},
		{TextValue("2020-06-01"), TTimestamp, TimestampValue(mustDate("2020-06-01"))},
		{TextValue("nope"), TTimestamp, NullValue()},
		{IntValue(5), TText, TextValue("5")},
		{NullValue(), TBigInt, NullValue()},
	}
	for _, tt := range tests {
		got := CastValue(tt.in, tt.to)
		if got.Null != tt.want.Null {
			t.Errorf("cast %v to %v: %v, want %v", tt.in, tt.to, got, tt.want)
			continue
		}
		if !got.Null && got.String() != tt.want.String() {
			t.Errorf("cast %v to %v = %v, want %v", tt.in, tt.to, got, tt.want)
		}
	}
}

func mustDate(s string) int64 {
	m, ok := dates.Parse(s)
	if !ok {
		panic(s)
	}
	return m
}

func TestExtractYearAndSubstr(t *testing.T) {
	ts := NewConst(TimestampValue(mustDate("1997-03-15")))
	if got := NewExtractYear(ts).Eval(nil); got.I != 1997 {
		t.Errorf("extract year = %v", got)
	}
	s := NewConst(TextValue("EUROPE"))
	if got := NewSubstr(s, 1, 2).Eval(nil); got.S != "EU" {
		t.Errorf("substr = %v", got)
	}
	if got := NewSubstr(s, 6, 10).Eval(nil); got.S != "E" {
		t.Errorf("substr clamp = %q", got.S)
	}
}

func TestNullRejectedSlots(t *testing.T) {
	c0 := NewCol(0, TBigInt)
	c1 := NewCol(1, TBigInt)
	c2 := NewCol(2, TBool)

	cases := []struct {
		name string
		e    Expr
		want map[int]bool
	}{
		{"cmp", NewCmp(GT, c0, NewConst(IntValue(1))), map[int]bool{0: true}},
		{"and", NewAnd(NewCmp(GT, c0, NewConst(IntValue(1))), NewCmp(LT, c1, NewConst(IntValue(9)))),
			map[int]bool{0: true, 1: true}},
		{"or", NewOr(NewCmp(GT, c0, NewConst(IntValue(1))), NewCmp(LT, c1, NewConst(IntValue(9)))),
			map[int]bool{}},
		{"or same slot", NewOr(NewCmp(GT, c0, NewConst(IntValue(1))), NewCmp(LT, c0, NewConst(IntValue(0)))),
			map[int]bool{0: true}},
		{"is null", NewIsNull(c0, false), map[int]bool{}},
		{"is not null", NewIsNull(c0, true), map[int]bool{0: true}},
		{"not", NewNot(NewCmp(EQ, c0, NewConst(IntValue(1)))), map[int]bool{}},
		{"bare bool col", c2, map[int]bool{2: true}},
		{"arith in cmp", NewCmp(GT, NewArith(Add, c0, c1), NewConst(IntValue(1))),
			map[int]bool{0: true, 1: true}},
	}
	for _, tt := range cases {
		got := NullRejectedSlots(tt.e)
		if len(got) != len(tt.want) {
			t.Errorf("%s: got %v, want %v", tt.name, got, tt.want)
			continue
		}
		for k := range tt.want {
			if !got[k] {
				t.Errorf("%s: slot %d missing", tt.name, k)
			}
		}
	}
}

func TestGroupKeyDistinguishesTypesAndNull(t *testing.T) {
	vals := []Value{
		NullValue(), BoolValue(true), BoolValue(false),
		IntValue(1), FloatValue(1), TextValue("1"), TimestampValue(1),
	}
	seen := map[string]int{}
	for i, v := range vals {
		k := v.GroupKey()
		if j, dup := seen[k]; dup {
			t.Errorf("values %d and %d share key %q", i, j, k)
		}
		seen[k] = i
	}
}
