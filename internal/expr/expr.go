package expr

import (
	"strconv"
	"strings"

	"repro/internal/dates"
)

// Expr is an expression evaluated against a row of engine values.
type Expr interface {
	// Eval computes the value for the given input row.
	Eval(row []Value) Value
	// Type is the static result type.
	Type() SQLType
}

// Col references slot idx of the input row.
type Col struct {
	Idx int
	Typ SQLType
}

// NewCol returns a column reference.
func NewCol(idx int, t SQLType) *Col { return &Col{Idx: idx, Typ: t} }

// Eval implements Expr.
func (c *Col) Eval(row []Value) Value { return row[c.Idx] }

// Type implements Expr.
func (c *Col) Type() SQLType { return c.Typ }

// Const is a literal.
type Const struct{ V Value }

// NewConst returns a literal expression.
func NewConst(v Value) *Const { return &Const{V: v} }

// Eval implements Expr.
func (c *Const) Eval([]Value) Value { return c.V }

// Type implements Expr.
func (c *Const) Type() SQLType { return c.V.Typ }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// Cmp compares two expressions with SQL semantics: NULL operands
// yield NULL.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp returns a comparison.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// Eval implements Expr.
func (c *Cmp) Eval(row []Value) Value {
	l := c.L.Eval(row)
	r := c.R.Eval(row)
	if l.Null || r.Null {
		return NullValue()
	}
	cv, ok := Compare(l, r)
	if !ok {
		// Incomparable types: SQL would reject at plan time; evaluate
		// to NULL to stay total.
		return NullValue()
	}
	var b bool
	switch c.Op {
	case EQ:
		b = cv == 0
	case NE:
		b = cv != 0
	case LT:
		b = cv < 0
	case LE:
		b = cv <= 0
	case GT:
		b = cv > 0
	case GE:
		b = cv >= 0
	}
	return BoolValue(b)
}

// Type implements Expr.
func (c *Cmp) Type() SQLType { return TBool }

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// Arith computes arithmetic with numeric widening: BigInt op BigInt
// stays BigInt (except Div), anything with Float widens to Float.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// NewArith returns an arithmetic expression.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, L: l, R: r} }

// Eval implements Expr.
func (a *Arith) Eval(row []Value) Value {
	l := a.L.Eval(row)
	r := a.R.Eval(row)
	if l.Null || r.Null {
		return NullValue()
	}
	if l.Typ == TBigInt && r.Typ == TBigInt && a.Op != Div {
		switch a.Op {
		case Add:
			return IntValue(l.I + r.I)
		case Sub:
			return IntValue(l.I - r.I)
		case Mul:
			return IntValue(l.I * r.I)
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return NullValue()
	}
	switch a.Op {
	case Add:
		return FloatValue(lf + rf)
	case Sub:
		return FloatValue(lf - rf)
	case Mul:
		return FloatValue(lf * rf)
	case Div:
		if rf == 0 {
			return NullValue()
		}
		return FloatValue(lf / rf)
	}
	return NullValue()
}

// Type implements Expr.
func (a *Arith) Type() SQLType {
	if a.Op != Div && a.L.Type() == TBigInt && a.R.Type() == TBigInt {
		return TBigInt
	}
	return TFloat
}

// And is SQL three-valued conjunction.
type And struct{ L, R Expr }

// NewAnd returns a conjunction.
func NewAnd(l, r Expr) *And { return &And{L: l, R: r} }

// Eval implements Expr.
func (a *And) Eval(row []Value) Value {
	l := a.L.Eval(row)
	if !l.Null && l.Typ == TBool && !l.B {
		return BoolValue(false) // short circuit
	}
	r := a.R.Eval(row)
	switch {
	case !r.Null && r.Typ == TBool && !r.B:
		return BoolValue(false)
	case l.Null || r.Null:
		return NullValue()
	default:
		return BoolValue(l.B && r.B)
	}
}

// Type implements Expr.
func (a *And) Type() SQLType { return TBool }

// Or is SQL three-valued disjunction.
type Or struct{ L, R Expr }

// NewOr returns a disjunction.
func NewOr(l, r Expr) *Or { return &Or{L: l, R: r} }

// Eval implements Expr.
func (o *Or) Eval(row []Value) Value {
	l := o.L.Eval(row)
	if l.IsTrue() {
		return BoolValue(true)
	}
	r := o.R.Eval(row)
	switch {
	case r.IsTrue():
		return BoolValue(true)
	case l.Null || r.Null:
		return NullValue()
	default:
		return BoolValue(l.B || r.B)
	}
}

// Type implements Expr.
func (o *Or) Type() SQLType { return TBool }

// Not is SQL negation (NOT NULL = NULL).
type Not struct{ E Expr }

// NewNot returns a negation.
func NewNot(e Expr) *Not { return &Not{E: e} }

// Eval implements Expr.
func (n *Not) Eval(row []Value) Value {
	v := n.E.Eval(row)
	if v.Null {
		return NullValue()
	}
	return BoolValue(!v.B)
}

// Type implements Expr.
func (n *Not) Type() SQLType { return TBool }

// IsNull tests for SQL NULL (never returns NULL itself).
type IsNull struct {
	E      Expr
	Negate bool // IS NOT NULL
}

// NewIsNull returns an IS [NOT] NULL test.
func NewIsNull(e Expr, negate bool) *IsNull { return &IsNull{E: e, Negate: negate} }

// Eval implements Expr.
func (i *IsNull) Eval(row []Value) Value {
	v := i.E.Eval(row)
	return BoolValue(v.Null != i.Negate)
}

// Type implements Expr.
func (i *IsNull) Type() SQLType { return TBool }

// Like is a SQL LIKE with only leading/trailing '%' supported —
// enough for the evaluated workloads (prefix, suffix, containment,
// exact). Null propagates.
type Like struct {
	E       Expr
	Pattern string
}

// NewLike returns a LIKE match.
func NewLike(e Expr, pattern string) *Like { return &Like{E: e, Pattern: pattern} }

// Eval implements Expr.
func (l *Like) Eval(row []Value) Value {
	v := l.E.Eval(row)
	if v.Null {
		return NullValue()
	}
	if v.Typ != TText {
		return NullValue()
	}
	return BoolValue(MatchLike(v.S, l.Pattern))
}

// MatchLike evaluates the restricted LIKE dialect (leading/trailing
// '%' only) — shared with the vectorized kernels so both execution
// paths agree on pattern semantics.
func MatchLike(s, pattern string) bool {
	switch {
	case strings.HasPrefix(pattern, "%") && strings.HasSuffix(pattern, "%") && len(pattern) >= 2:
		return strings.Contains(s, pattern[1:len(pattern)-1])
	case strings.HasPrefix(pattern, "%"):
		return strings.HasSuffix(s, pattern[1:])
	case strings.HasSuffix(pattern, "%") && len(pattern) >= 1:
		return strings.HasPrefix(s, pattern[:len(pattern)-1])
	default:
		return s == pattern
	}
}

// Type implements Expr.
func (l *Like) Type() SQLType { return TBool }

// In tests membership in a constant list.
type In struct {
	E    Expr
	List []Value
}

// NewIn returns an IN-list test.
func NewIn(e Expr, list ...Value) *In { return &In{E: e, List: list} }

// Eval implements Expr.
func (i *In) Eval(row []Value) Value {
	v := i.E.Eval(row)
	if v.Null {
		return NullValue()
	}
	for _, c := range i.List {
		if Equal(v, c) {
			return BoolValue(true)
		}
	}
	return BoolValue(false)
}

// Type implements Expr.
func (i *In) Type() SQLType { return TBool }

// Case is a searched CASE expression: the first WHEN whose condition
// is TRUE selects its result; otherwise Else (NULL when nil).
type Case struct {
	Whens   []When
	Else    Expr
	resultT SQLType
}

// When is one CASE arm.
type When struct {
	Cond   Expr
	Result Expr
}

// NewCase returns a searched CASE.
func NewCase(whens []When, els Expr) *Case {
	t := TNull
	if len(whens) > 0 {
		t = whens[0].Result.Type()
	} else if els != nil {
		t = els.Type()
	}
	return &Case{Whens: whens, Else: els, resultT: t}
}

// Eval implements Expr.
func (c *Case) Eval(row []Value) Value {
	for _, w := range c.Whens {
		if w.Cond.Eval(row).IsTrue() {
			return w.Result.Eval(row)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(row)
	}
	return NullValue()
}

// Type implements Expr.
func (c *Case) Type() SQLType { return c.resultT }

// ExtractYear returns the year of a timestamp as BigInt.
type ExtractYear struct{ E Expr }

// NewExtractYear returns EXTRACT(YEAR FROM e).
func NewExtractYear(e Expr) *ExtractYear { return &ExtractYear{E: e} }

// Eval implements Expr.
func (x *ExtractYear) Eval(row []Value) Value {
	v := x.E.Eval(row)
	if v.Null || v.Typ != TTimestamp {
		return NullValue()
	}
	return IntValue(int64(dates.ToTime(v.I).Year()))
}

// Type implements Expr.
func (x *ExtractYear) Type() SQLType { return TBigInt }

// Substr returns a 1-based substring (SQL SUBSTRING semantics),
// clamped to the string bounds.
type Substr struct {
	E          Expr
	Start, Len int
}

// NewSubstr returns SUBSTRING(e FROM start FOR length).
func NewSubstr(e Expr, start, length int) *Substr { return &Substr{E: e, Start: start, Len: length} }

// Eval implements Expr.
func (s *Substr) Eval(row []Value) Value {
	v := s.E.Eval(row)
	if v.Null || v.Typ != TText {
		return NullValue()
	}
	start := s.Start - 1
	if start < 0 {
		start = 0
	}
	if start > len(v.S) {
		start = len(v.S)
	}
	end := start + s.Len
	if end > len(v.S) {
		end = len(v.S)
	}
	return TextValue(v.S[start:end])
}

// Type implements Expr.
func (s *Substr) Type() SQLType { return TText }

// Cast converts a value to a target SQL type following the paper's
// cast rules (§4.3): numeric↔numeric is cheap; Text sources parse;
// Timestamp→Text is the restricted direction (§4.9) — permitted here
// at the expression level with SQL formatting, while the *scan* never
// serves an extracted timestamp for a Text access.
type Cast struct {
	E  Expr
	To SQLType
}

// NewCast returns a cast.
func NewCast(e Expr, to SQLType) *Cast { return &Cast{E: e, To: to} }

// Eval implements Expr.
func (c *Cast) Eval(row []Value) Value {
	return CastValue(c.E.Eval(row), c.To)
}

// Type implements Expr.
func (c *Cast) Type() SQLType { return c.To }

// CastValue converts v to the target type, yielding NULL when the
// conversion is impossible (PostgreSQL would error; a total function
// keeps the engine simple and matches JSON-access semantics where
// malformed data yields NULL).
func CastValue(v Value, to SQLType) Value {
	if v.Null {
		return NullValue()
	}
	if v.Typ == to {
		return v
	}
	switch to {
	case TBigInt:
		switch v.Typ {
		case TFloat:
			return IntValue(int64(v.F))
		case TBool:
			if v.B {
				return IntValue(1)
			}
			return IntValue(0)
		case TText:
			if i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64); err == nil {
				return IntValue(i)
			}
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64); err == nil {
				return IntValue(int64(f))
			}
			return NullValue()
		case TTimestamp:
			return IntValue(v.I)
		}
	case TFloat:
		switch v.Typ {
		case TBigInt:
			return FloatValue(float64(v.I))
		case TBool:
			if v.B {
				return FloatValue(1)
			}
			return FloatValue(0)
		case TText:
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64); err == nil {
				return FloatValue(f)
			}
			return NullValue()
		}
	case TText:
		return TextValue(v.String())
	case TTimestamp:
		switch v.Typ {
		case TText:
			if m, ok := dates.Parse(v.S); ok {
				return TimestampValue(m)
			}
			return NullValue()
		case TBigInt:
			return TimestampValue(v.I)
		}
	case TBool:
		switch v.Typ {
		case TText:
			switch strings.ToLower(strings.TrimSpace(v.S)) {
			case "true", "t", "1":
				return BoolValue(true)
			case "false", "f", "0":
				return BoolValue(false)
			}
			return NullValue()
		case TBigInt:
			return BoolValue(v.I != 0)
		}
	}
	return NullValue()
}

// NullRejectedSlots computes, conservatively, the set of input slots
// whose NULL forces the predicate to evaluate to not-TRUE. It is the
// analysis behind tile skipping (§4.8): if a scan can prove an access
// is NULL for every tuple of a tile and that access feeds a
// null-rejected slot, the whole tile is skipped.
//
// The approximation is one-sided: a slot in the result is guaranteed
// null-rejecting; slots outside may or may not be. IS NULL, NOT and
// CASE report nothing (their null behaviour inverts or varies).
func NullRejectedSlots(pred Expr) map[int]bool {
	switch e := pred.(type) {
	case *Col:
		return map[int]bool{e.Idx: true} // NULL boolean is not TRUE
	case *Cmp:
		return unionSlots(referencedSlots(e.L), referencedSlots(e.R))
	case *Like:
		return referencedSlots(e.E)
	case *In:
		return referencedSlots(e.E)
	case *And:
		return unionSlots(NullRejectedSlots(e.L), NullRejectedSlots(e.R))
	case *Or:
		return intersectSlots(NullRejectedSlots(e.L), NullRejectedSlots(e.R))
	case *IsNull:
		if e.Negate {
			// x IS NOT NULL: a NULL input makes the predicate FALSE.
			return referencedSlots(e.E)
		}
		return nil
	default:
		return nil
	}
}

// referencedSlots returns every slot an expression reads, valid as a
// null-rejection set only for null-propagating expressions (all value
// expressions here propagate NULL except Case and IsNull).
func referencedSlots(e Expr) map[int]bool {
	switch x := e.(type) {
	case *Col:
		return map[int]bool{x.Idx: true}
	case *Const:
		return nil
	case *Cmp:
		return unionSlots(referencedSlots(x.L), referencedSlots(x.R))
	case *Arith:
		return unionSlots(referencedSlots(x.L), referencedSlots(x.R))
	case *Cast:
		return referencedSlots(x.E)
	case *ExtractYear:
		return referencedSlots(x.E)
	case *Substr:
		return referencedSlots(x.E)
	case *Like:
		return referencedSlots(x.E)
	default:
		return nil // IsNull, Case, Not, ...: no guarantee
	}
}

func unionSlots(a, b map[int]bool) map[int]bool {
	if len(a) == 0 {
		return b
	}
	for k := range b {
		a[k] = true
	}
	return a
}

func intersectSlots(a, b map[int]bool) map[int]bool {
	out := map[int]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// AllSlots returns every slot referenced anywhere in the expression
// tree (planning: which accesses a predicate needs).
func AllSlots(e Expr) map[int]bool {
	out := map[int]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Col:
			out[x.Idx] = true
		case *Cmp:
			walk(x.L)
			walk(x.R)
		case *Arith:
			walk(x.L)
			walk(x.R)
		case *And:
			walk(x.L)
			walk(x.R)
		case *Or:
			walk(x.L)
			walk(x.R)
		case *Not:
			walk(x.E)
		case *IsNull:
			walk(x.E)
		case *Like:
			walk(x.E)
		case *In:
			walk(x.E)
		case *Cast:
			walk(x.E)
		case *ExtractYear:
			walk(x.E)
		case *Substr:
			walk(x.E)
		case *Case:
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			if x.Else != nil {
				walk(x.Else)
			}
		}
	}
	walk(e)
	return out
}
