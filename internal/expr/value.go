// Package expr implements the expression layer of the query engine:
// SQL values, PostgreSQL-style JSON access expressions (-> and ->>),
// cast rewriting (paper §4.3), three-valued logic, and the
// null-rejection analysis that powers tile skipping (§4.8).
package expr

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dates"
	"repro/internal/jsonb"
)

// SQLType is the type of an engine value.
type SQLType uint8

// The SQL types used by the engine. TJSON carries a binary JSON
// document (the result of the -> operator and of whole-column reads).
const (
	TNull SQLType = iota
	TBool
	TBigInt
	TFloat
	TText
	TTimestamp
	TJSON
)

func (t SQLType) String() string {
	switch t {
	case TNull:
		return "Null"
	case TBool:
		return "Bool"
	case TBigInt:
		return "BigInt"
	case TFloat:
		return "Float"
	case TText:
		return "Text"
	case TTimestamp:
		return "Timestamp"
	case TJSON:
		return "JSONB"
	default:
		return fmt.Sprintf("SQLType(%d)", uint8(t))
	}
}

// Value is one SQL value. The zero Value is SQL NULL.
type Value struct {
	Typ  SQLType
	B    bool
	I    int64 // TBigInt and TTimestamp (microseconds)
	F    float64
	S    string
	Doc  jsonb.Doc // TJSON
	Null bool
}

// NullValue returns SQL NULL.
func NullValue() Value { return Value{Typ: TNull, Null: true} }

// BoolValue returns a boolean.
func BoolValue(b bool) Value { return Value{Typ: TBool, B: b} }

// IntValue returns a BigInt.
func IntValue(i int64) Value { return Value{Typ: TBigInt, I: i} }

// FloatValue returns a Float.
func FloatValue(f float64) Value { return Value{Typ: TFloat, F: f} }

// TextValue returns a Text.
func TextValue(s string) Value { return Value{Typ: TText, S: s} }

// TimestampValue returns a Timestamp from epoch microseconds.
func TimestampValue(micros int64) Value { return Value{Typ: TTimestamp, I: micros} }

// JSONValue returns a JSONB document value.
func JSONValue(d jsonb.Doc) Value { return Value{Typ: TJSON, Doc: d} }

// IsTrue reports whether the value is boolean TRUE (SQL predicates
// treat NULL as not-true).
func (v Value) IsTrue() bool { return !v.Null && v.Typ == TBool && v.B }

// AsFloat widens a numeric value to float64.
func (v Value) AsFloat() (float64, bool) {
	if v.Null {
		return 0, false
	}
	switch v.Typ {
	case TBigInt, TTimestamp:
		return float64(v.I), true
	case TFloat:
		return v.F, true
	}
	return 0, false
}

// String renders the value for result output.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Typ {
	case TBool:
		if v.B {
			return "true"
		}
		return "false"
	case TBigInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TText:
		return v.S
	case TTimestamp:
		return dates.Format(v.I)
	case TJSON:
		return v.Doc.JSON()
	}
	return "NULL"
}

// Compare orders two non-null values of comparable types. It returns
// <0, 0, >0 and false when the types are incomparable. Numeric types
// compare cross-type; text compares bytewise.
func Compare(a, b Value) (int, bool) {
	if a.Null || b.Null {
		return 0, false
	}
	switch {
	case a.Typ == TText && b.Typ == TText:
		return strings.Compare(a.S, b.S), true
	case a.Typ == TBool && b.Typ == TBool:
		switch {
		case a.B == b.B:
			return 0, true
		case b.B:
			return -1, true
		default:
			return 1, true
		}
	case a.Typ == TBigInt && b.Typ == TBigInt,
		a.Typ == TTimestamp && b.Typ == TTimestamp:
		switch {
		case a.I < b.I:
			return -1, true
		case a.I > b.I:
			return 1, true
		default:
			return 0, true
		}
	default:
		af, aok := a.AsFloat()
		bf, bok := b.AsFloat()
		if !aok || !bok {
			return 0, false
		}
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
}

// Equal reports SQL equality of two non-null values (false, not NULL,
// for incomparable types).
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// GroupKey renders a value as a hashable group-by / join key. NULLs
// map to a distinct marker (SQL GROUP BY treats NULLs as one group;
// joins never match on NULL — callers filter those before keying).
func (v Value) GroupKey() string {
	if v.Null {
		return "\x00N"
	}
	switch v.Typ {
	case TBool:
		if v.B {
			return "\x01t"
		}
		return "\x01f"
	case TBigInt:
		return "\x02" + strconv.FormatInt(v.I, 10)
	case TFloat:
		return "\x03" + strconv.FormatFloat(v.F, 'b', -1, 64)
	case TText:
		return "\x04" + v.S
	case TTimestamp:
		return "\x05" + strconv.FormatInt(v.I, 10)
	case TJSON:
		return "\x06" + v.Doc.JSON()
	}
	return "\x00N"
}

// NumericGroupKey returns an int64 key for numeric values so hot
// aggregation paths avoid string keys; ok is false for other types.
func (v Value) NumericGroupKey() (int64, bool) {
	if v.Null {
		return 0, false
	}
	switch v.Typ {
	case TBigInt, TTimestamp:
		return v.I, true
	case TBool:
		if v.B {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}
