package jsonvalue

import (
	"math"
	"sort"
	"testing"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() || Null().Kind() != KindNull {
		t.Error("Null")
	}
	if v := Bool(true); v.Kind() != KindBool || !v.BoolVal() {
		t.Error("Bool")
	}
	if v := Int(-7); v.Kind() != KindInt || v.IntVal() != -7 {
		t.Error("Int")
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.FloatVal() != 2.5 {
		t.Error("Float")
	}
	if v := String("x"); v.Kind() != KindString || v.StringVal() != "x" {
		t.Error("String")
	}
	arr := Array(Int(1), Int(2))
	if arr.Kind() != KindArray || arr.Len() != 2 || arr.Elem(1).IntVal() != 2 {
		t.Error("Array")
	}
	obj := Object(M("a", Int(1)), M("b", Int(2)))
	if obj.Kind() != KindObject || obj.Len() != 2 || obj.Member(1).Key != "b" {
		t.Error("Object")
	}
	if len(arr.Elems()) != 2 || len(obj.Members()) != 2 {
		t.Error("backing slices")
	}
	if Null().Len() != 0 || Int(1).Len() != 0 {
		t.Error("scalar Len")
	}
}

func TestLookupSemantics(t *testing.T) {
	obj := Object(M("k", Int(1)), M("k", Int(2)), M("z", Null()))
	// Duplicate keys: last wins.
	if got := obj.Get("k"); got.IntVal() != 2 {
		t.Errorf("duplicate key lookup = %#v", got)
	}
	if v, ok := obj.Lookup("z"); !ok || !v.IsNull() {
		t.Error("null member lookup")
	}
	if _, ok := obj.Lookup("missing"); ok {
		t.Error("missing found")
	}
	if _, ok := Int(5).Lookup("x"); ok {
		t.Error("lookup on scalar")
	}
	nested := Object(M("a", Object(M("b", Int(3)))))
	if got := nested.GetPath("a", "b"); got.IntVal() != 3 {
		t.Error("GetPath")
	}
	if got := nested.GetPath("a", "missing", "c"); !got.IsNull() {
		t.Error("GetPath missing")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Null(), Null(), true},
		{Int(1), Int(1), true},
		{Int(1), Float(1), false}, // kinds differ deliberately
		{Float(math.NaN()), Float(math.NaN()), true},
		{String("a"), String("a"), true},
		{Array(Int(1)), Array(Int(1)), true},
		{Array(Int(1)), Array(Int(2)), false},
		{Array(Int(1)), Array(Int(1), Int(2)), false},
		{Object(M("a", Int(1)), M("b", Int(2))),
			Object(M("b", Int(2)), M("a", Int(1))), true}, // order-insensitive
		{Object(M("a", Int(1))), Object(M("a", Int(2))), false},
		{Object(M("a", Int(1))), Object(M("x", Int(1))), false},
		{Bool(true), Bool(false), false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal = %v, want %v", i, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("case %d: Equal not symmetric", i)
		}
	}
}

func TestSortedMembers(t *testing.T) {
	// Unsorted input: a sorted copy, original untouched.
	obj := Object(M("z", Int(1)), M("a", Int(2)))
	ms := obj.SortedMembers()
	if !sort.SliceIsSorted(ms, func(i, j int) bool { return ms[i].Key < ms[j].Key }) {
		t.Error("not sorted")
	}
	if obj.Members()[0].Key != "z" {
		t.Error("receiver mutated")
	}
	// Already sorted: the backing slice comes back without copying.
	sortedObj := Object(M("a", Int(1)), M("b", Int(2)))
	if got := sortedObj.SortedMembers(); &got[0] != &sortedObj.Members()[0] {
		t.Error("sorted input copied unnecessarily")
	}
}

func TestNumberAsFloat(t *testing.T) {
	if f, ok := Int(3).NumberAsFloat(); !ok || f != 3 {
		t.Error("int")
	}
	if f, ok := Float(2.5).NumberAsFloat(); !ok || f != 2.5 {
		t.Error("float")
	}
	if _, ok := String("3").NumberAsFloat(); ok {
		t.Error("string is not numeric")
	}
}

func TestGoString(t *testing.T) {
	v := Object(M("a", Array(Int(1), Null(), Bool(true), Float(0.5), String("s"))))
	got := v.GoString()
	want := `{"a":[1,null,true,0.5,"s"]}`
	if got != want {
		t.Errorf("GoString = %s", got)
	}
}
