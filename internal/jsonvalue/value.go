// Package jsonvalue defines the typed document tree that every storage
// format in this repository consumes and produces. A Value is an
// immutable-by-convention JSON datum: null, bool, integer, float,
// string, array, or object. Objects preserve the key order of the
// input; duplicate keys keep the last occurrence, matching the
// behaviour of most JSON processors.
//
// Integers and floats are separate kinds even though RFC 8259 has a
// single number production: the tile extraction algorithm (paper §3.4)
// pairs every key path with its primitive type, and "some values are
// integer and some are float" must be observable.
package jsonvalue

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind enumerates the primitive JSON types used throughout the system.
type Kind uint8

// The Kind values. Their order is stable and used as a tie-breaker in
// itemset dictionaries, so new kinds must be appended.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindObject
	KindArray
)

// String returns a human-readable type name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindObject:
		return "object"
	case KindArray:
		return "array"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Member is one key-value pair of an object.
type Member struct {
	Key   string
	Value Value
}

// Value is a JSON datum. The zero Value is JSON null.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	arr  []Value
	obj  []Member
}

// Null returns the JSON null value.
func Null() Value { return Value{kind: KindNull} }

// Bool returns a JSON boolean.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int returns a JSON integer.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a JSON floating-point number.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a JSON string.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Array returns a JSON array wrapping elems. The slice is not copied.
func Array(elems ...Value) Value { return Value{kind: KindArray, arr: elems} }

// Object returns a JSON object wrapping members. The slice is not
// copied and key order is preserved.
func Object(members ...Member) Value { return Value{kind: KindObject, obj: members} }

// M is a convenience constructor for a Member.
func M(key string, v Value) Member { return Member{Key: key, Value: v} }

// Kind reports the type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is JSON null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// BoolVal returns the boolean payload; it is only meaningful for KindBool.
func (v Value) BoolVal() bool { return v.b }

// IntVal returns the integer payload; it is only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.i }

// FloatVal returns the float payload; it is only meaningful for KindFloat.
func (v Value) FloatVal() float64 { return v.f }

// StringVal returns the string payload; it is only meaningful for KindString.
func (v Value) StringVal() string { return v.s }

// Len returns the number of elements (array) or members (object), and
// zero for scalars.
func (v Value) Len() int {
	switch v.kind {
	case KindArray:
		return len(v.arr)
	case KindObject:
		return len(v.obj)
	default:
		return 0
	}
}

// Elem returns the i-th array element. It panics if v is not an array
// or i is out of range, mirroring slice indexing.
func (v Value) Elem(i int) Value { return v.arr[i] }

// Elems returns the backing element slice of an array (nil otherwise).
// Callers must not mutate it.
func (v Value) Elems() []Value { return v.arr }

// Members returns the backing member slice of an object (nil
// otherwise). Callers must not mutate it.
func (v Value) Members() []Member { return v.obj }

// Member returns the i-th member of an object.
func (v Value) Member(i int) Member { return v.obj[i] }

// Lookup finds the value for key in an object. The second result
// reports whether the key is present. Lookup on a non-object returns
// (Null, false). When the input contained duplicate keys the last
// occurrence wins.
func (v Value) Lookup(key string) (Value, bool) {
	if v.kind != KindObject {
		return Null(), false
	}
	for i := len(v.obj) - 1; i >= 0; i-- {
		if v.obj[i].Key == key {
			return v.obj[i].Value, true
		}
	}
	return Null(), false
}

// Get is Lookup without the presence flag: missing keys yield null,
// matching PostgreSQL's -> semantics on absent keys.
func (v Value) Get(key string) Value {
	r, _ := v.Lookup(key)
	return r
}

// GetPath follows a chain of object keys, returning null as soon as a
// segment is missing or a non-object is traversed.
func (v Value) GetPath(keys ...string) Value {
	cur := v
	for _, k := range keys {
		var ok bool
		cur, ok = cur.Lookup(k)
		if !ok {
			return Null()
		}
	}
	return cur
}

// Equal reports deep structural equality. Objects compare by key set
// and per-key value regardless of member order, since key order is not
// semantically significant in JSON. Int and Float compare as distinct
// kinds (Int(1) != Float(1)).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool:
		return v.b == o.b
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case KindString:
		return v.s == o.s
	case KindArray:
		if len(v.arr) != len(o.arr) {
			return false
		}
		for i := range v.arr {
			if !v.arr[i].Equal(o.arr[i]) {
				return false
			}
		}
		return true
	case KindObject:
		// Effective (last-wins) semantics: duplicate keys collapse to
		// their final occurrence, so an object equals itself even when
		// the input carried duplicates.
		for _, m := range v.obj {
			ov, ok := o.Lookup(m.Key)
			if !ok || !v.Get(m.Key).Equal(ov) {
				return false
			}
		}
		for _, m := range o.obj {
			if _, ok := v.Lookup(m.Key); !ok {
				return false
			}
		}
		return true
	}
	return false
}

// SortedMembers returns the object's members sorted by key. When the
// input is already sorted (common for machine-generated data) the
// backing slice is returned without copying; otherwise a sorted copy
// is made and the receiver is unchanged. Used by the JSONB encoder,
// whose format requires sorted keys for binary search.
func (v Value) SortedMembers() []Member {
	sorted := true
	for i := 1; i < len(v.obj); i++ {
		if v.obj[i].Key < v.obj[i-1].Key {
			sorted = false
			break
		}
	}
	if sorted {
		return v.obj
	}
	ms := make([]Member, len(v.obj))
	copy(ms, v.obj)
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].Key < ms[j].Key })
	return ms
}

// NumberAsFloat returns the numeric payload of an Int or Float as a
// float64, and reports whether v is numeric at all.
func (v Value) NumberAsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// GoString implements fmt.GoStringer for debugging output.
func (v Value) GoString() string {
	var sb strings.Builder
	v.goString(&sb)
	return sb.String()
}

func (v Value) goString(sb *strings.Builder) {
	switch v.kind {
	case KindNull:
		sb.WriteString("null")
	case KindBool:
		fmt.Fprintf(sb, "%v", v.b)
	case KindInt:
		fmt.Fprintf(sb, "%d", v.i)
	case KindFloat:
		fmt.Fprintf(sb, "%g", v.f)
	case KindString:
		fmt.Fprintf(sb, "%q", v.s)
	case KindArray:
		sb.WriteByte('[')
		for i, e := range v.arr {
			if i > 0 {
				sb.WriteByte(',')
			}
			e.goString(sb)
		}
		sb.WriteByte(']')
	case KindObject:
		sb.WriteByte('{')
		for i, m := range v.obj {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(sb, "%q:", m.Key)
			m.Value.goString(sb)
		}
		sb.WriteByte('}')
	}
}
