// Dictionary GROUP BY: when the single group key is a text column and
// the input batches carry dictionary vectors, aggregation runs into a
// flat array indexed by dictionary code — no per-row hashing, no key
// allocation, no string comparisons in the hot loop. Each batch's
// touched codes are folded into the worker's hash table afterwards
// (dictionaries are per tile, so the same value may carry different
// codes in different batches), and the shared merge/sort/emit tail
// keeps the output identical to the row path.
package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/vec"
)

// tryBatchGroupBy runs the batch GROUP BY path when the plan shape
// allows it: exactly one group expression that is a bare text column,
// a batch-capable input, and vectorizable aggregate specs. It reports
// whether it ran.
func (g *GroupBy) tryBatchGroupBy(workers int, emit EmitFunc) bool {
	if len(g.Groups) != 1 {
		return false
	}
	col, ok := g.Groups[0].(*expr.Col)
	if !ok || col.Type() != expr.TText {
		return false
	}
	width := len(g.In.Columns())
	if col.Idx < 0 || col.Idx >= width {
		return false
	}
	in, ok := AsBatch(g.In)
	if !ok {
		return false
	}
	slots, ok := g.aggSlots(width)
	if !ok {
		return false
	}
	g.runBatchGroupBy(in, col.Idx, slots, workers, emit)
	return true
}

// gbWorker is one worker's grouping state: the cross-batch hash
// tables (radix-partitioned by key hash, like the row path) plus the
// per-batch code-indexed scratch (states laid out row-major:
// code*nAggs+agg; code dictLen is the NULL group) and a reusable key
// buffer.
type gbWorker struct {
	parts   []map[string]*group
	states  []aggState
	used    []bool
	touched []int32
	keyBuf  []byte
}

func (g *GroupBy) runBatchGroupBy(in BatchOperator, groupSlot int, slots []int, workers int, emit EmitFunc) {
	P := aggPartitionCount(workers)
	ws := make([]*gbWorker, workers+1)
	for i := range ws {
		ws[i] = &gbWorker{parts: newPartTables(P)}
	}
	overflow := &gbWorker{parts: newPartTables(P)}
	var mu sync.Mutex // guards overflow (unexpected worker ids)
	var dictBatches atomic.Int64

	in.RunBatches(workers, func(bw int, b *vec.Batch) {
		var w *gbWorker
		if bw >= 0 && bw < len(ws) {
			w = ws[bw]
		} else {
			mu.Lock()
			defer mu.Unlock()
			w = overflow
		}
		gv := &b.Cols[groupSlot]
		// The code-indexed path amortizes the per-group table work over
		// many rows per code; a dictionary nearly as large as the batch
		// would flush almost every code each batch, paying the array
		// setup on top of the map work. Require rows >= 2 per entry.
		if gv.Dict && gv.Boxed == nil && b.Rows() >= 2*(gv.DictLen()+1) {
			g.dictBatch(w, b, gv, slots)
			dictBatches.Add(1)
			return
		}
		g.hashBatch(w, b, gv, slots)
	})
	obs.DictGroupByFastpath.Add(dictBatches.Load())

	workerParts := make([][]map[string]*group, 0, len(ws)+1)
	for _, w := range ws {
		workerParts = append(workerParts, w.parts)
	}
	workerParts = append(workerParts, overflow.parts)
	g.finishPartitioned(workerParts, workers, emit)
}

// dictBatch aggregates one dictionary batch into the code-indexed
// array and folds the touched codes into the worker's table.
func (g *GroupBy) dictBatch(w *gbWorker, b *vec.Batch, gv *vec.Vector, slots []int) {
	nA := len(g.Aggs)
	dl := gv.DictLen()
	nullSlot := dl
	need := (dl + 1) * nA
	if cap(w.states) < need {
		w.states = make([]aggState, need)
	}
	w.states = w.states[:need]
	if cap(w.used) < dl+1 {
		w.used = make([]bool, dl+1)
	}
	w.used = w.used[:dl+1]

	step := func(i int) {
		k := nullSlot
		if !gv.IsNull(i) {
			k = int(gv.CodeAt(i))
		}
		if !w.used[k] {
			w.used[k] = true
			w.touched = append(w.touched, int32(k))
		}
		base := k * nA
		for ai := range g.Aggs {
			spec := &g.Aggs[ai]
			if spec.Func == CountStar {
				w.states[base+ai].count++
				continue
			}
			if x := b.Cols[slots[ai]].Value(i); !x.Null {
				w.states[base+ai].updateVal(*spec, x)
			}
		}
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			step(int(i))
		}
	} else {
		for i := 0; i < b.Len; i++ {
			step(i)
		}
	}

	// Fold touched codes into the cross-batch table using the exact
	// row-path group key, then reset their scratch slots.
	for _, tk := range w.touched {
		k := int(tk)
		keyVal := expr.NullValue()
		if k != nullSlot {
			keyVal = expr.TextValue(string(gv.DictEntry(k)))
		}
		grp := g.lookupGroup(w, keyVal)
		base := k * nA
		for ai := range g.Aggs {
			grp.states[ai].merge(g.Aggs[ai], &w.states[base+ai])
			w.states[base+ai] = aggState{}
		}
		w.used[k] = false
	}
	w.touched = w.touched[:0]
}

// hashBatch is the non-dictionary batch path: per-row grouping into
// the worker's table (the same work the row path does, minus operator
// boxing overhead).
func (g *GroupBy) hashBatch(w *gbWorker, b *vec.Batch, gv *vec.Vector, slots []int) {
	step := func(i int) {
		grp := g.lookupGroup(w, gv.Value(i))
		for ai := range g.Aggs {
			spec := &g.Aggs[ai]
			if spec.Func == CountStar {
				grp.states[ai].count++
				continue
			}
			if x := b.Cols[slots[ai]].Value(i); !x.Null {
				grp.states[ai].updateVal(*spec, x)
			}
		}
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			step(int(i))
		}
	} else {
		for i := 0; i < b.Len; i++ {
			step(i)
		}
	}
}

// lookupGroup finds or creates the group for one key value, encoding
// the table key exactly like the row path (GroupKey + NUL per group
// column) and hashing it into the same partition, so
// finishPartitioned merges and orders identically.
func (g *GroupBy) lookupGroup(w *gbWorker, keyVal expr.Value) *group {
	w.keyBuf = append(w.keyBuf[:0], keyVal.GroupKey()...)
	w.keyBuf = append(w.keyBuf, 0)
	t := w.parts[partitionOf(w.keyBuf, len(w.parts))]
	grp, ok := t[string(w.keyBuf)]
	if !ok {
		grp = &group{keyVals: []expr.Value{keyVal}, states: make([]aggState, len(g.Aggs))}
		t[string(w.keyBuf)] = grp
	}
	return grp
}
