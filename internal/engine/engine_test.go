package engine

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

// rel loads documents into the JSONB format (the simplest full
// Relation implementation) for operator tests.
func rel(t *testing.T, srcs ...string) storage.Relation {
	t.Helper()
	lines := make([][]byte, len(srcs))
	for i, s := range srcs {
		lines[i] = []byte(s)
	}
	l, err := storage.NewLoader(storage.KindJSONB, storage.DefaultLoaderConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := l.Load("test", lines, 1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func ordersRel(t *testing.T) storage.Relation {
	t.Helper()
	var srcs []string
	for i := 0; i < 20; i++ {
		srcs = append(srcs, fmt.Sprintf(
			`{"id":%d, "cust":%d, "total":%d.5, "status":"%s"}`,
			i, i%5, i*10, []string{"open", "shipped"}[i%2]))
	}
	return rel(t, srcs...)
}

func scanAll(r storage.Relation, filter expr.Expr, accs ...storage.Access) *Scan {
	return NewScan(r, accs, nil, filter)
}

func TestScanWithFilter(t *testing.T) {
	r := ordersRel(t)
	idAcc := storage.NewAccess(expr.TBigInt, "id")
	scan := scanAll(r, expr.NewCmp(expr.LT, expr.NewCol(0, expr.TBigInt), expr.NewConst(expr.IntValue(5))), idAcc)
	res := Materialize(scan, 1)
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(res.Rows))
	}
	// Filter must set the null-rejecting flag for slot 0.
	if !scan.Accesses[0].NullRejecting {
		t.Error("filter did not mark access null-rejecting")
	}
}

func TestScanParallelMatchesSerial(t *testing.T) {
	r := ordersRel(t)
	acc := storage.NewAccess(expr.TBigInt, "id")
	for _, w := range []int{1, 2, 4, 8} {
		res := Materialize(scanAll(r, nil, acc), w)
		if len(res.Rows) != 20 {
			t.Errorf("workers=%d: %d rows", w, len(res.Rows))
		}
	}
}

func TestProjectAndSelect(t *testing.T) {
	r := ordersRel(t)
	scan := scanAll(r, nil,
		storage.NewAccess(expr.TBigInt, "id"),
		storage.NewAccess(expr.TFloat, "total"))
	sel := NewSelect(scan, expr.NewCmp(expr.GE, expr.NewCol(1, expr.TFloat), expr.NewConst(expr.FloatValue(100))))
	proj := NewProject(sel, []expr.Expr{
		expr.NewArith(expr.Mul, expr.NewCol(0, expr.TBigInt), expr.NewConst(expr.IntValue(2))),
	}, []string{"id2"})
	res := Materialize(proj, 2)
	res.SortRows()
	if len(res.Rows) != 10 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Cols[0].Name != "id2" || res.Cols[0].Type != expr.TBigInt {
		t.Errorf("cols = %+v", res.Cols)
	}
	if res.Rows[0][0].I != 20 { // smallest id with total>=100 is 10
		t.Errorf("first row %v", res.Rows[0])
	}
}

func TestGroupByAggregates(t *testing.T) {
	r := ordersRel(t)
	scan := scanAll(r, nil,
		storage.NewAccess(expr.TBigInt, "cust"),
		storage.NewAccess(expr.TFloat, "total"),
		storage.NewAccess(expr.TText, "status"))
	gb := NewGroupBy(scan,
		[]expr.Expr{expr.NewCol(0, expr.TBigInt)},
		[]string{"cust"},
		[]AggSpec{
			{Func: CountStar, Name: "n"},
			{Func: Sum, Arg: expr.NewCol(1, expr.TFloat), Name: "sum_total"},
			{Func: Min, Arg: expr.NewCol(1, expr.TFloat), Name: "min_total"},
			{Func: Max, Arg: expr.NewCol(1, expr.TFloat), Name: "max_total"},
			{Func: Avg, Arg: expr.NewCol(1, expr.TFloat), Name: "avg_total"},
		})
	for _, workers := range []int{1, 4} {
		res := Materialize(gb, workers)
		if len(res.Rows) != 5 {
			t.Fatalf("workers=%d: %d groups", workers, len(res.Rows))
		}
		res.SortRows()
		// cust 0 has ids 0,5,10,15 -> totals 0.5, 50.5, 100.5, 150.5.
		r0 := res.Rows[0]
		if r0[0].I != 0 || r0[1].I != 4 {
			t.Fatalf("group row %v", r0)
		}
		if r0[2].F != 302.0 {
			t.Errorf("sum = %v", r0[2])
		}
		if r0[3].F != 0.5 || r0[4].F != 150.5 {
			t.Errorf("min/max = %v/%v", r0[3], r0[4])
		}
		if r0[5].F != 75.5 {
			t.Errorf("avg = %v", r0[5])
		}
	}
}

func TestGroupByNullHandling(t *testing.T) {
	r := rel(t, `{"g":1,"v":5}`, `{"g":1}`, `{"g":2,"v":null}`, `{"v":7}`)
	scan := scanAll(r, nil,
		storage.NewAccess(expr.TBigInt, "g"),
		storage.NewAccess(expr.TBigInt, "v"))
	gb := NewGroupBy(scan, []expr.Expr{expr.NewCol(0, expr.TBigInt)}, []string{"g"},
		[]AggSpec{
			{Func: CountStar, Name: "all"},
			{Func: Count, Arg: expr.NewCol(1, expr.TBigInt), Name: "vals"},
			{Func: Sum, Arg: expr.NewCol(1, expr.TBigInt), Name: "sum"},
		})
	res := Materialize(gb, 1)
	res.SortRows()
	if len(res.Rows) != 3 {
		t.Fatalf("%d groups (NULL must form its own group)", len(res.Rows))
	}
	// NULL group first after sort.
	if !res.Rows[0][0].Null || res.Rows[0][1].I != 1 || res.Rows[0][2].I != 1 || res.Rows[0][3].I != 7 {
		t.Errorf("null group = %v", res.Rows[0])
	}
	// Group 1: count(*)=2, count(v)=1, sum=5.
	if res.Rows[1][1].I != 2 || res.Rows[1][2].I != 1 || res.Rows[1][3].I != 5 {
		t.Errorf("group 1 = %v", res.Rows[1])
	}
	// Group 2: v is JSON null -> SQL NULL; sum over empty = NULL.
	if res.Rows[2][2].I != 0 || !res.Rows[2][3].Null {
		t.Errorf("group 2 = %v", res.Rows[2])
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	r := rel(t, `{"v":1}`)
	scan := scanAll(r,
		expr.NewCmp(expr.GT, expr.NewCol(0, expr.TBigInt), expr.NewConst(expr.IntValue(100))),
		storage.NewAccess(expr.TBigInt, "v"))
	gb := NewGroupBy(scan, nil, nil, []AggSpec{
		{Func: CountStar, Name: "n"},
		{Func: Sum, Arg: expr.NewCol(0, expr.TBigInt), Name: "s"},
	})
	res := Materialize(gb, 2)
	if len(res.Rows) != 1 {
		t.Fatalf("global agg on empty input: %d rows, want 1", len(res.Rows))
	}
	if res.Rows[0][0].I != 0 || !res.Rows[0][1].Null {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestCountDistinct(t *testing.T) {
	r := rel(t, `{"v":1}`, `{"v":1}`, `{"v":2}`, `{"v":3}`, `{"v":3}`)
	scan := scanAll(r, nil, storage.NewAccess(expr.TBigInt, "v"))
	gb := NewGroupBy(scan, nil, nil, []AggSpec{
		{Func: Count, Arg: expr.NewCol(0, expr.TBigInt), Name: "d", Distinct: true},
	})
	res := Materialize(gb, 3)
	if res.Rows[0][0].I != 3 {
		t.Errorf("count distinct = %v", res.Rows[0][0])
	}
}

func TestHashJoinInner(t *testing.T) {
	orders := ordersRel(t)
	cust := rel(t,
		`{"cid":0,"name":"alice"}`,
		`{"cid":1,"name":"bob"}`,
		`{"cid":2,"name":"carol"}`,
	)
	buildScan := scanAll(cust, nil,
		storage.NewAccess(expr.TBigInt, "cid"),
		storage.NewAccess(expr.TText, "name"))
	probeScan := scanAll(orders, nil,
		storage.NewAccess(expr.TBigInt, "id"),
		storage.NewAccess(expr.TBigInt, "cust"))
	join := NewHashJoin(buildScan, probeScan, []int{0}, []int{1}, InnerJoin)
	for _, workers := range []int{1, 4} {
		res := Materialize(join, workers)
		// custs 0,1,2 each have 4 orders = 12 rows.
		if len(res.Rows) != 12 {
			t.Fatalf("workers=%d: %d rows", workers, len(res.Rows))
		}
		// Output: probe columns then build columns.
		if len(res.Cols) != 4 {
			t.Fatalf("cols = %v", res.Cols)
		}
		res.SortRows()
		if res.Rows[0][0].I != 0 || res.Rows[0][3].S != "alice" {
			t.Errorf("first joined row %v", res.Rows[0])
		}
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	left := rel(t, `{"k":1}`, `{"k":2}`)
	right := rel(t, `{"k":1,"x":"a"}`, `{"k":3,"x":"b"}`, `{"k":null,"x":"c"}`)
	build := scanAll(left, nil, storage.NewAccess(expr.TBigInt, "k"))
	probe := scanAll(right, nil,
		storage.NewAccess(expr.TBigInt, "k"),
		storage.NewAccess(expr.TText, "x"))

	semi := Materialize(NewHashJoin(build, probe, []int{0}, []int{0}, SemiJoin), 1)
	if len(semi.Rows) != 1 || semi.Rows[0][1].S != "a" {
		t.Errorf("semi join rows: %v", semi.Rows)
	}
	anti := Materialize(NewHashJoin(build, probe, []int{0}, []int{0}, AntiJoin), 1)
	// k=3 unmatched; k=NULL also unmatched (NULL never matches).
	if len(anti.Rows) != 2 {
		t.Errorf("anti join rows: %v", anti.Rows)
	}
}

func TestHashJoinOuter(t *testing.T) {
	build := scanAll(rel(t, `{"k":1,"v":"x"}`), nil,
		storage.NewAccess(expr.TBigInt, "k"),
		storage.NewAccess(expr.TText, "v"))
	probe := scanAll(rel(t, `{"k":1}`, `{"k":2}`), nil,
		storage.NewAccess(expr.TBigInt, "k"))
	outer := Materialize(NewHashJoin(build, probe, []int{0}, []int{0}, OuterJoin), 1)
	if len(outer.Rows) != 2 {
		t.Fatalf("outer rows: %v", outer.Rows)
	}
	outer.SortRows()
	if outer.Rows[0][0].I != 1 || outer.Rows[0][2].S != "x" {
		t.Errorf("matched row %v", outer.Rows[0])
	}
	if outer.Rows[1][0].I != 2 || !outer.Rows[1][2].Null {
		t.Errorf("unmatched row %v", outer.Rows[1])
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	build := scanAll(rel(t, `{"k":null,"v":1}`), nil,
		storage.NewAccess(expr.TBigInt, "k"),
		storage.NewAccess(expr.TBigInt, "v"))
	probe := scanAll(rel(t, `{"k":null}`), nil,
		storage.NewAccess(expr.TBigInt, "k"))
	res := Materialize(NewHashJoin(build, probe, []int{0}, []int{0}, InnerJoin), 1)
	if len(res.Rows) != 0 {
		t.Errorf("NULL = NULL matched: %v", res.Rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	r := ordersRel(t)
	scan := scanAll(r, nil,
		storage.NewAccess(expr.TBigInt, "id"),
		storage.NewAccess(expr.TFloat, "total"))
	ob := NewOrderBy(scan, OrderKey{E: expr.NewCol(1, expr.TFloat), Desc: true})
	lim := NewLimit(ob, 3)
	res := Materialize(lim, 4)
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Rows[0][0].I != 19 || res.Rows[1][0].I != 18 || res.Rows[2][0].I != 17 {
		t.Errorf("top-3 by total: %v %v %v", res.Rows[0][0], res.Rows[1][0], res.Rows[2][0])
	}
}

func TestOrderByMultiKeyWithNulls(t *testing.T) {
	r := rel(t, `{"a":1,"b":2}`, `{"a":1,"b":1}`, `{"a":null,"b":9}`, `{"a":2,"b":0}`)
	scan := scanAll(r, nil,
		storage.NewAccess(expr.TBigInt, "a"),
		storage.NewAccess(expr.TBigInt, "b"))
	ob := NewOrderBy(scan,
		OrderKey{E: expr.NewCol(0, expr.TBigInt)},
		OrderKey{E: expr.NewCol(1, expr.TBigInt), Desc: true})
	res := Materialize(ob, 2)
	var got []string
	for _, row := range res.Rows {
		got = append(got, row[0].String()+"/"+row[1].String())
	}
	want := []string{"NULL/9", "1/2", "1/1", "2/0"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestCountRows(t *testing.T) {
	r := ordersRel(t)
	scan := scanAll(r, nil, storage.NewAccess(expr.TBigInt, "id"))
	if n := CountRows(scan, 4); n != 20 {
		t.Errorf("CountRows = %d", n)
	}
}

func TestValuesOperator(t *testing.T) {
	r := ordersRel(t)
	scan := scanAll(r, nil,
		storage.NewAccess(expr.TBigInt, "cust"),
		storage.NewAccess(expr.TFloat, "total"))
	agg := NewGroupBy(scan, []expr.Expr{expr.NewCol(0, expr.TBigInt)}, []string{"cust"},
		[]AggSpec{{Func: Sum, Arg: expr.NewCol(1, expr.TFloat), Name: "t"}})
	first := Materialize(agg, 2)

	// Replaying through Values must be identical and joinable.
	vals := NewValues(first)
	if len(vals.Columns()) != 2 {
		t.Fatalf("columns = %v", vals.Columns())
	}
	again := Materialize(vals, 4)
	if len(again.Rows) != len(first.Rows) {
		t.Fatalf("replay rows = %d", len(again.Rows))
	}
	join := NewHashJoin(vals, scan, []int{0}, []int{0}, InnerJoin)
	res := Materialize(join, 2)
	if len(res.Rows) != 20 {
		t.Errorf("join through Values = %d rows", len(res.Rows))
	}
}
