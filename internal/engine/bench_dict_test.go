package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/tile"
)

// Microbenchmarks comparing dictionary-encoded and arena string
// columns over the same documents: predicate kernels evaluated in code
// space vs per-row byte comparisons, and the code-indexed GROUP BY vs
// per-row hashing.

const dictBenchRows = 50_000

var (
	dictBenchOnce  sync.Once
	dictBenchRel   storage.Relation
	arenaBenchRel  storage.Relation
	dictBenchLines [][]byte
)

func dictBenchRelations(b *testing.B) (dict, arena storage.Relation) {
	b.Helper()
	dictBenchOnce.Do(func() {
		levels := []string{"debug", "error", "info", "warn"}
		dictBenchLines = make([][]byte, dictBenchRows)
		for i := range dictBenchLines {
			dictBenchLines[i] = []byte(fmt.Sprintf(
				`{"level":"%s","latency":%d}`, levels[(i*7)%4], i%1000))
		}
		load := func(threshold float64) storage.Relation {
			cfg := storage.DefaultLoaderConfig()
			cfg.Tile.DictThreshold = threshold
			l, err := storage.NewLoader(storage.KindTiles, cfg)
			if err != nil {
				panic(err)
			}
			rel, err := l.Load("bench", dictBenchLines, 4)
			if err != nil {
				panic(err)
			}
			return rel
		}
		dictBenchRel = load(tile.DefaultConfig().DictThreshold)
		arenaBenchRel = load(0)
	})
	return dictBenchRel, arenaBenchRel
}

func dictBenchAccesses() []storage.Access {
	return []storage.Access{
		storage.NewAccess(expr.TText, "level"),
		storage.NewAccess(expr.TBigInt, "latency"),
	}
}

func runDictFilter(b *testing.B, rel storage.Relation) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	f := expr.NewCmp(expr.EQ, expr.NewCol(0, expr.TText),
		expr.NewConst(expr.TextValue("error")))
	for i := 0; i < b.N; i++ {
		n := CountRows(NewScan(rel, dictBenchAccesses(), nil, f), 1)
		if n == 0 {
			b.Fatal("empty filter result")
		}
	}
}

func BenchmarkStrFilterArena(b *testing.B) {
	_, arena := dictBenchRelations(b)
	runDictFilter(b, arena)
}

func BenchmarkStrFilterDict(b *testing.B) {
	dict, _ := dictBenchRelations(b)
	runDictFilter(b, dict)
}

func runDictGroupBy(b *testing.B, rel storage.Relation) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gb := NewGroupBy(NewScan(rel, dictBenchAccesses(), nil, nil),
			[]expr.Expr{expr.NewCol(0, expr.TText)}, []string{"level"},
			[]AggSpec{
				{Func: CountStar, Name: "n"},
				{Func: Sum, Arg: expr.NewCol(1, expr.TBigInt), Name: "lat"},
			})
		res := Materialize(gb, 1)
		if len(res.Rows) != 4 {
			b.Fatalf("groups = %d", len(res.Rows))
		}
	}
}

func BenchmarkStrGroupByArena(b *testing.B) {
	_, arena := dictBenchRelations(b)
	runDictGroupBy(b, arena)
}

func BenchmarkStrGroupByDict(b *testing.B) {
	dict, _ := dictBenchRelations(b)
	runDictGroupBy(b, dict)
}
