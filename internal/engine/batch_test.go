package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/expr"
	"repro/internal/jsongen"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/obs"
	"repro/internal/storage"
)

var conformanceKinds = []storage.FormatKind{
	storage.KindJSON, storage.KindJSONB, storage.KindSinew,
	storage.KindTiles, storage.KindShredded,
}

func loadKind(t *testing.T, kind storage.FormatKind, lines [][]byte) storage.Relation {
	t.Helper()
	cfg := storage.DefaultLoaderConfig()
	cfg.Tile.TileSize = 16
	l, err := storage.NewLoader(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := l.Load("conf", lines, 2)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// rowMultiset renders a result as a sorted multiset of row strings so
// two executions can be compared regardless of emit order.
func rowMultiset(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		s := ""
		for c, v := range row {
			if c > 0 {
				s += "\x1f"
			}
			s += v.String()
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchRowConformanceAllFormats is the path-equality property the
// batch execution tentpole must preserve: for random documents,
// random accesses and several filter shapes, the vectorized path and
// the row-at-a-time path (forced via storage.RowOnly) return
// identical results on every storage format — including aggregate
// values, bit for bit.
func TestBatchRowConformanceAllFormats(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 6; trial++ {
		nDocs := 40 + r.Intn(80)
		lines := make([][]byte, nDocs)
		docs := make([]jsonvalue.Value, nDocs)
		for i := range lines {
			docs[i] = jsongen.RandomObject(r, 3)
			lines[i] = jsontext.Serialize(docs[i])
		}

		// Sample typed accesses from observed paths plus an absent one.
		var accesses []storage.Access
		seen := map[string]bool{}
		for _, d := range docs {
			keypath.Collect(d, 4, func(p keypath.Path, vt keypath.ValueType, v jsonvalue.Value) {
				enc := p.Encode()
				if seen[enc] || len(accesses) >= 5 {
					return
				}
				seen[enc] = true
				var st expr.SQLType
				switch vt {
				case keypath.TypeBigInt:
					st = expr.TBigInt
				case keypath.TypeDouble:
					st = expr.TFloat
				case keypath.TypeBool:
					st = expr.TBool
				default:
					st = expr.TText
				}
				accesses = append(accesses, storage.NewAccessPath(st, p))
			})
		}
		if len(accesses) == 0 {
			continue
		}
		accesses = append(accesses, storage.NewAccess(expr.TBigInt, "definitely", "absent"))

		// Filters: none, a compilable comparison, a compilable AND/OR
		// tree, and a NOT the kernel compiler rejects (row-eval
		// residual path).
		col0 := expr.NewCol(0, accesses[0].Type)
		filters := []expr.Expr{
			nil,
			expr.NewIsNull(col0, true),
			expr.NewOr(expr.NewIsNull(col0, false),
				expr.NewIsNull(expr.NewCol(len(accesses)-1, expr.TBigInt), false)),
			expr.NewNot(expr.NewIsNull(col0, false)),
		}

		for _, kind := range conformanceKinds {
			rel := loadKind(t, kind, lines)
			rowRel := storage.RowOnly(rel)
			for fi, filter := range filters {
				for _, workers := range []int{1, 3} {
					// Accesses are shared state (NullRejecting flags), so
					// build fresh scans per run.
					vecRes := Materialize(NewScan(rel, append([]storage.Access(nil), accesses...), nil, filter), workers)
					rowRes := Materialize(NewScan(rowRel, append([]storage.Access(nil), accesses...), nil, filter), workers)
					if got, want := rowMultiset(vecRes), rowMultiset(rowRes); !sameRows(got, want) {
						t.Fatalf("trial %d %s filter %d workers %d: vectorized rows differ\n vec: %v\n row: %v",
							trial, kind, fi, workers, got, want)
					}
				}

				// Global aggregates: workers=1 fixes accumulation order so
				// even float sums must match exactly.
				aggs := []AggSpec{
					{Func: CountStar, Name: "n"},
					{Func: Count, Arg: col0, Name: "c"},
					{Func: Sum, Arg: col0, Name: "s"},
					{Func: Avg, Arg: col0, Name: "a"},
					{Func: Min, Arg: col0, Name: "lo"},
					{Func: Max, Arg: col0, Name: "hi"},
				}
				vecAgg := Materialize(NewGroupBy(
					NewScan(rel, append([]storage.Access(nil), accesses...), nil, filter), nil, nil, aggs), 1)
				rowAgg := Materialize(NewGroupBy(
					NewScan(rowRel, append([]storage.Access(nil), accesses...), nil, filter), nil, nil, aggs), 1)
				if got, want := rowMultiset(vecAgg), rowMultiset(rowAgg); !sameRows(got, want) {
					t.Fatalf("trial %d %s filter %d: aggregates differ\n vec: %v\n row: %v",
						trial, kind, fi, got, want)
				}
			}
		}
	}
}

// TestBatchMixedFastPathAndFallbackTiles pins the split accounting: a
// collection whose first tiles serve an access from an extracted int
// column while later tiles hold strings under the same key must
// produce both vectorized and fallback rows — and still agree with
// the row path.
func TestBatchMixedFastPathAndFallbackTiles(t *testing.T) {
	var lines [][]byte
	for i := 0; i < 32; i++ {
		lines = append(lines, []byte(fmt.Sprintf(`{"v":%d,"w":%d}`, i, i*2)))
	}
	for i := 32; i < 64; i++ {
		lines = append(lines, []byte(fmt.Sprintf(`{"v":"s%d","w":%d}`, i, i*2)))
	}
	rel := loadKind(t, storage.KindTiles, lines)
	accesses := []storage.Access{
		storage.NewAccess(expr.TBigInt, "v"),
		storage.NewAccess(expr.TBigInt, "w"),
	}
	filter := expr.NewCmp(expr.GE, expr.NewCol(1, expr.TBigInt), expr.NewConst(expr.IntValue(20)))

	scan := NewScan(rel, append([]storage.Access(nil), accesses...), nil, filter)
	st := &obs.ScanStats{}
	scan.Stats = st
	vecRes := Materialize(scan, 2)
	rowRes := Materialize(NewScan(storage.RowOnly(rel),
		append([]storage.Access(nil), accesses...), nil, filter), 2)
	if got, want := rowMultiset(vecRes), rowMultiset(rowRes); !sameRows(got, want) {
		t.Fatalf("mixed tiles: vec %v != row %v", got, want)
	}
	if st.Batches.Load() == 0 {
		t.Error("no batches recorded")
	}
	if st.RowsVectorized.Load() == 0 {
		t.Errorf("no vectorized rows (int tiles should fast-path); stats %+v", st)
	}
	if st.RowsFallback.Load() == 0 {
		t.Errorf("no fallback rows (string tiles must materialize); stats %+v", st)
	}
	if st.RowsVectorized.Load()+st.RowsFallback.Load() != st.RowsScanned.Load() {
		t.Errorf("vec(%d)+fallback(%d) != scanned(%d)",
			st.RowsVectorized.Load(), st.RowsFallback.Load(), st.RowsScanned.Load())
	}
}

// TestBatchAggregateUsesVectorizedPath asserts the all-vectorized
// pipeline end to end: WhereCmp + global aggregate over an extracted
// int column dispatches kernels and never takes the batch fallback.
func TestBatchAggregateUsesVectorizedPath(t *testing.T) {
	var lines [][]byte
	for i := 0; i < 64; i++ {
		lines = append(lines, []byte(fmt.Sprintf(`{"a":%d,"b":%d.5}`, i, i)))
	}
	rel := loadKind(t, storage.KindTiles, lines)
	accesses := []storage.Access{
		storage.NewAccess(expr.TBigInt, "a"),
		storage.NewAccess(expr.TFloat, "b"),
	}
	filter := expr.NewCmp(expr.LT, expr.NewCol(0, expr.TBigInt), expr.NewConst(expr.IntValue(40)))
	scan := NewScan(rel, accesses, nil, filter)
	st := &obs.ScanStats{}
	scan.Stats = st
	base := obs.KernelDispatches.Load()
	gb := NewGroupBy(scan, nil, nil, []AggSpec{
		{Func: CountStar, Name: "n"},
		{Func: Sum, Arg: expr.NewCol(0, expr.TBigInt), Name: "sa"},
		{Func: Sum, Arg: expr.NewCol(1, expr.TFloat), Name: "sb"},
	})
	res := Materialize(gb, 2)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// sum(a) for a in [0,40) = 780; sum(b) = 780 + 40*0.5 = 800.
	if res.Rows[0][0].I != 40 || res.Rows[0][1].I != 780 || res.Rows[0][2].F != 800 {
		t.Errorf("agg row = %v", res.Rows[0])
	}
	if st.RowsFallback.Load() != 0 {
		t.Errorf("expected pure fast path, got %d fallback rows", st.RowsFallback.Load())
	}
	if st.RowsVectorized.Load() == 0 {
		t.Error("no vectorized rows")
	}
	if obs.KernelDispatches.Load() == base {
		t.Error("no kernel dispatches recorded")
	}
}

// TestBatchProjectPermutation covers the vector-permutation
// projection staying on the batch path.
func TestBatchProjectPermutation(t *testing.T) {
	var lines [][]byte
	for i := 0; i < 48; i++ {
		lines = append(lines, []byte(fmt.Sprintf(`{"a":%d,"b":%d}`, i, 100+i)))
	}
	rel := loadKind(t, storage.KindTiles, lines)
	scan := NewScan(rel, []storage.Access{
		storage.NewAccess(expr.TBigInt, "a"),
		storage.NewAccess(expr.TBigInt, "b"),
	}, nil, nil)
	proj := NewProject(scan, []expr.Expr{
		expr.NewCol(1, expr.TBigInt), expr.NewCol(0, expr.TBigInt),
	}, []string{"b", "a"})
	if _, ok := AsBatch(Operator(proj)); !ok {
		t.Fatal("column-permutation projection should be batch capable")
	}
	res := Materialize(proj, 2)
	res.SortRows()
	if len(res.Rows) != 48 || res.Rows[0][0].I != 100 || res.Rows[0][1].I != 0 {
		t.Errorf("projected rows wrong: %v", res.Rows[0])
	}

	// An expression projection must fall off the batch path but still
	// work through the adapter.
	proj2 := NewProject(scan, []expr.Expr{
		expr.NewArith(expr.Add, expr.NewCol(0, expr.TBigInt), expr.NewConst(expr.IntValue(1))),
	}, []string{"a1"})
	if _, ok := AsBatch(Operator(proj2)); ok {
		t.Fatal("expression projection must not claim batch capability")
	}
	res2 := Materialize(proj2, 2)
	if len(res2.Rows) != 48 {
		t.Errorf("adapter rows = %d", len(res2.Rows))
	}
}

// TestSelectBatchPath covers Select over a batch-capable input with a
// compilable predicate.
func TestSelectBatchPath(t *testing.T) {
	var lines [][]byte
	for i := 0; i < 40; i++ {
		lines = append(lines, []byte(fmt.Sprintf(`{"a":%d}`, i)))
	}
	rel := loadKind(t, storage.KindTiles, lines)
	scan := NewScan(rel, []storage.Access{storage.NewAccess(expr.TBigInt, "a")}, nil, nil)
	sel := NewSelect(scan, expr.NewCmp(expr.GE, expr.NewCol(0, expr.TBigInt), expr.NewConst(expr.IntValue(30))))
	if _, ok := AsBatch(Operator(sel)); !ok {
		t.Fatal("select over batch scan with compilable pred should vectorize")
	}
	if n := CountRows(sel, 2); n != 10 {
		t.Errorf("CountRows = %d", n)
	}
}
