package engine

// Values replays a materialized result as an operator — the bridge
// for multi-phase queries (scalar subqueries, HAVING over a prior
// aggregation joined back, TPC-H Q2/Q11/Q15/Q17/Q18/Q22).
type Values struct {
	Res *Result
}

// NewValues wraps a result.
func NewValues(res *Result) *Values { return &Values{Res: res} }

// Columns implements Operator.
func (v *Values) Columns() []ColumnDesc { return v.Res.Cols }

// Run implements Operator.
func (v *Values) Run(workers int, emit EmitFunc) {
	for _, row := range v.Res.Rows {
		emit(0, row)
	}
}
