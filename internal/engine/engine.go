// Package engine implements the relational operators the evaluation
// queries run on: table scans with pushed-down JSON access expressions
// (paper §4.2), selections, projections, hash joins, hash aggregation,
// sorting and limits. Scans parallelize morsel-style over tiles (or
// row ranges); stateful operators keep per-worker state and merge, so
// the scalability experiment (Figure 8) sweeps one knob.
package engine

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/vec"
)

// ColumnDesc names one output column of an operator.
type ColumnDesc struct {
	Name string
	Type expr.SQLType
}

// EmitFunc consumes operator output. Implementations may be called
// concurrently with distinct worker ids; the row slice is reused and
// must be copied if retained.
type EmitFunc func(worker int, row []expr.Value)

// Operator is a push-based relational operator.
type Operator interface {
	Columns() []ColumnDesc
	Run(workers int, emit EmitFunc)
}

// Scan reads a relation with pushed-down accesses and an optional
// residual filter over the access slots.
type Scan struct {
	Rel      storage.Relation
	Accesses []storage.Access
	Names    []string
	Filter   expr.Expr
	// Stats, when non-nil, receives the relation's per-scan counters
	// (tiles scanned/skipped, column hits, fallbacks) — set by the
	// EXPLAIN ANALYZE path, nil on plain runs.
	Stats *obs.ScanStats
	// Ctx, when non-nil, is the per-query context: cancellation stops
	// the scan at the next morsel claim, and the tenant identity it
	// carries attributes buffer-pool charges. Nil means Background
	// (library calls without a service in front).
	Ctx context.Context
}

// ctx returns the scan's context, defaulting to Background.
func (s *Scan) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// NewScan builds a scan and derives the null-rejection flags for tile
// skipping (§4.8) from the filter.
func NewScan(rel storage.Relation, accesses []storage.Access, names []string, filter expr.Expr) *Scan {
	s := &Scan{Rel: rel, Accesses: accesses, Names: names, Filter: filter}
	if filter != nil {
		for slot := range expr.NullRejectedSlots(filter) {
			if slot >= 0 && slot < len(s.Accesses) {
				s.Accesses[slot].NullRejecting = true
			}
		}
	}
	return s
}

// MarkNullRejecting flags an access slot whose NULL cannot survive an
// operator above (e.g. an inner-join key): tiles provably lacking the
// path are skipped.
func (s *Scan) MarkNullRejecting(slot int) {
	if slot >= 0 && slot < len(s.Accesses) {
		s.Accesses[slot].NullRejecting = true
	}
}

// Columns implements Operator.
func (s *Scan) Columns() []ColumnDesc {
	out := make([]ColumnDesc, len(s.Accesses))
	for i, a := range s.Accesses {
		name := a.PathEnc
		if i < len(s.Names) && s.Names[i] != "" {
			name = s.Names[i]
		}
		out[i] = ColumnDesc{Name: name, Type: a.Type}
	}
	return out
}

// Inputs implements the plan-walking interface (a scan is a leaf).
func (s *Scan) Inputs() []Operator { return nil }

// Run implements Operator. Over a batch-capable relation the scan
// takes the vectorized path (kernel-filtered column batches) and
// adapts back to rows, so row-at-a-time consumers transparently
// benefit; other formats scan row-wise as before.
func (s *Scan) Run(workers int, emit EmitFunc) {
	if s.BatchCapable() {
		runBatchesAsRows(s, workers, emit)
		return
	}
	if s.Filter == nil {
		storage.ScanWith(s.ctx(), s.Rel, s.Accesses, workers, storage.EmitFunc(emit), s.Stats)
		return
	}
	storage.ScanWith(s.ctx(), s.Rel, s.Accesses, workers, func(w int, row []expr.Value) {
		if s.Filter.Eval(row).IsTrue() {
			emit(w, row)
		}
	}, s.Stats)
}

// Select filters rows by a predicate.
type Select struct {
	In   Operator
	Pred expr.Expr
}

// NewSelect builds a selection.
func NewSelect(in Operator, pred expr.Expr) *Select { return &Select{In: in, Pred: pred} }

// Columns implements Operator.
func (s *Select) Columns() []ColumnDesc { return s.In.Columns() }

// Inputs implements the plan-walking interface.
func (s *Select) Inputs() []Operator { return []Operator{s.In} }

// Run implements Operator.
func (s *Select) Run(workers int, emit EmitFunc) {
	s.In.Run(workers, func(w int, row []expr.Value) {
		if s.Pred.Eval(row).IsTrue() {
			emit(w, row)
		}
	})
}

// Project computes output expressions.
type Project struct {
	In    Operator
	Exprs []expr.Expr
	Names []string
}

// NewProject builds a projection.
func NewProject(in Operator, exprs []expr.Expr, names []string) *Project {
	return &Project{In: in, Exprs: exprs, Names: names}
}

// Columns implements Operator.
func (p *Project) Columns() []ColumnDesc {
	out := make([]ColumnDesc, len(p.Exprs))
	for i, e := range p.Exprs {
		name := ""
		if i < len(p.Names) {
			name = p.Names[i]
		}
		out[i] = ColumnDesc{Name: name, Type: e.Type()}
	}
	return out
}

// Inputs implements the plan-walking interface.
func (p *Project) Inputs() []Operator { return []Operator{p.In} }

// Run implements Operator.
func (p *Project) Run(workers int, emit EmitFunc) {
	// One output buffer per worker id, preallocated: worker ids are
	// bounded by the requested parallelism in every operator, so the
	// hot path is lock-free. Unexpected ids get a private buffer.
	bufs := make([][]expr.Value, workers+1)
	for i := range bufs {
		bufs[i] = make([]expr.Value, len(p.Exprs))
	}
	p.In.Run(workers, func(w int, row []expr.Value) {
		var out []expr.Value
		if w >= 0 && w < len(bufs) {
			out = bufs[w]
		} else {
			out = make([]expr.Value, len(p.Exprs))
		}
		for i, e := range p.Exprs {
			out[i] = e.Eval(row)
		}
		emit(w, out)
	})
}

// JoinType selects hash-join semantics.
type JoinType uint8

// Join types. Build side is Left; probe side is Right. Inner emits
// probe++build columns; Semi and Anti emit only probe columns; Outer
// (left-outer over the probe side) emits probe++build with NULL build
// columns for unmatched probes.
const (
	InnerJoin JoinType = iota
	SemiJoin
	AntiJoin
	OuterJoin
)

// HashJoin joins Right (probe) against Left (build) on equi-keys.
type HashJoin struct {
	Left, Right         Operator // build, probe
	LeftKeys, RightKeys []int    // slot indexes
	Type                JoinType
}

// NewHashJoin builds a hash join.
func NewHashJoin(build, probe Operator, buildKeys, probeKeys []int, jt JoinType) *HashJoin {
	return &HashJoin{Left: build, Right: probe, LeftKeys: buildKeys, RightKeys: probeKeys, Type: jt}
}

// Columns implements Operator.
func (j *HashJoin) Columns() []ColumnDesc {
	probe := j.Right.Columns()
	switch j.Type {
	case SemiJoin, AntiJoin:
		return probe
	default:
		return append(append([]ColumnDesc{}, probe...), j.Left.Columns()...)
	}
}

// Inputs implements the plan-walking interface (build side first).
func (j *HashJoin) Inputs() []Operator { return []Operator{j.Left, j.Right} }

// Run implements Operator.
func (j *HashJoin) Run(workers int, emit EmitFunc) {
	// Build phase: each worker accumulates (key, row) pairs locally —
	// no lock on the per-row path — and the hash table is assembled
	// sequentially afterwards. Unexpected worker ids fall back to a
	// mutex-protected overflow partition.
	type buildEntry struct {
		key string
		row []expr.Value
	}
	parts := make([][]buildEntry, workers+1)
	var overflowMu sync.Mutex
	var overflow []buildEntry
	j.Left.Run(workers, func(w int, row []expr.Value) {
		key, ok := joinKey(row, j.LeftKeys)
		if !ok {
			return // NULL keys never match
		}
		cp := append([]expr.Value(nil), row...)
		if w >= 0 && w < len(parts) {
			parts[w] = append(parts[w], buildEntry{key, cp})
			return
		}
		overflowMu.Lock()
		overflow = append(overflow, buildEntry{key, cp})
		overflowMu.Unlock()
	})
	total := len(overflow)
	for _, p := range parts {
		total += len(p)
	}
	table := make(map[string][][]expr.Value, total)
	for _, p := range append(parts, overflow) {
		for _, e := range p {
			table[e.key] = append(table[e.key], e.row)
		}
	}

	buildWidth := len(j.Left.Columns())
	// Probe phase. Per-worker output buffers, preallocated (see
	// Project.Run for the id-bound invariant).
	type probeState struct{ out []expr.Value }
	states := make([]probeState, workers+1)
	getState := func(w int) *probeState {
		if w >= 0 && w < len(states) {
			return &states[w]
		}
		return &probeState{} // unexpected id: private state
	}
	j.Right.Run(workers, func(w int, row []expr.Value) {
		key, ok := joinKey(row, j.RightKeys)
		var matches [][]expr.Value
		if ok {
			matches = table[key]
		}
		switch j.Type {
		case SemiJoin:
			if len(matches) > 0 {
				emit(w, row)
			}
		case AntiJoin:
			if len(matches) == 0 {
				emit(w, row)
			}
		case InnerJoin:
			if len(matches) == 0 {
				return
			}
			st := getState(w)
			for _, m := range matches {
				st.out = st.out[:0]
				st.out = append(st.out, row...)
				st.out = append(st.out, m...)
				emit(w, st.out)
			}
		case OuterJoin:
			st := getState(w)
			if len(matches) == 0 {
				st.out = st.out[:0]
				st.out = append(st.out, row...)
				for i := 0; i < buildWidth; i++ {
					st.out = append(st.out, expr.NullValue())
				}
				emit(w, st.out)
				return
			}
			for _, m := range matches {
				st.out = st.out[:0]
				st.out = append(st.out, row...)
				st.out = append(st.out, m...)
				emit(w, st.out)
			}
		}
	})
}

func joinKey(row []expr.Value, keys []int) (string, bool) {
	var sb []byte
	for _, k := range keys {
		if row[k].Null {
			return "", false
		}
		sb = append(sb, row[k].GroupKey()...)
		sb = append(sb, 0)
	}
	return string(sb), true
}

// Materialize runs an operator and collects all rows (single
// synchronized sink) — the terminal consumer for tests, tools and
// benchmarks.
func Materialize(op Operator, workers int) *Result {
	res := &Result{Cols: op.Columns()}
	var mu sync.Mutex
	op.Run(workers, func(w int, row []expr.Value) {
		cp := append([]expr.Value(nil), row...)
		mu.Lock()
		res.Rows = append(res.Rows, cp)
		mu.Unlock()
	})
	return res
}

// CountRows runs an operator and counts rows without materializing
// them. Batch-capable inputs are counted a batch at a time from the
// selection vector, never boxing a cell.
func CountRows(op Operator, workers int) int64 {
	if b, ok := AsBatch(op); ok {
		counts := make([]int64, (workers+1)*8) // one padded slot per worker
		var overflow atomic.Int64
		b.RunBatches(workers, func(w int, bt *vec.Batch) {
			if w >= 0 && w <= workers {
				counts[w*8] += int64(bt.Rows())
				return
			}
			overflow.Add(int64(bt.Rows()))
		})
		n := overflow.Load()
		for i := 0; i <= workers; i++ {
			n += counts[i*8]
		}
		return n
	}
	var mu sync.Mutex
	var n int64
	op.Run(workers, func(int, []expr.Value) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	return n
}

// Result is a materialized query result.
type Result struct {
	Cols []ColumnDesc
	Rows [][]expr.Value
}

// SortRows orders the result deterministically by every column (tests
// compare results across formats).
func (r *Result) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		for c := range r.Rows[i] {
			a, b := r.Rows[i][c], r.Rows[j][c]
			if a.Null != b.Null {
				return a.Null
			}
			if a.Null {
				continue
			}
			if cv, ok := expr.Compare(a, b); ok && cv != 0 {
				return cv < 0
			}
			as, bs := a.String(), b.String()
			if as != bs {
				return as < bs
			}
		}
		return false
	})
}
