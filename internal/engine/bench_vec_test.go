package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

// Microbenchmarks comparing the row-at-a-time and vectorized
// execution paths over the same tile-backed relation. The row path is
// forced with storage.RowOnly; the vectorized path is what Scan takes
// by default over tiles.

const benchRows = 50_000

var (
	benchOnce   sync.Once
	benchTiles  storage.Relation
	benchRowRel storage.Relation
)

func benchRelation(b *testing.B) (vec, row storage.Relation) {
	b.Helper()
	benchOnce.Do(func() {
		lines := make([][]byte, benchRows)
		for i := range lines {
			lines[i] = []byte(fmt.Sprintf(`{"a":%d,"b":%d.25,"g":%d,"s":"u%d"}`,
				i%1000, i%500, i%10, i%100))
		}
		l, err := storage.NewLoader(storage.KindTiles, storage.DefaultLoaderConfig())
		if err != nil {
			panic(err)
		}
		benchTiles, err = l.Load("bench", lines, 4)
		if err != nil {
			panic(err)
		}
		benchRowRel = storage.RowOnly(benchTiles)
	})
	return benchTiles, benchRowRel
}

func benchAccesses() []storage.Access {
	return []storage.Access{
		storage.NewAccess(expr.TBigInt, "a"),
		storage.NewAccess(expr.TFloat, "b"),
		storage.NewAccess(expr.TBigInt, "g"),
	}
}

func filterA() expr.Expr {
	return expr.NewCmp(expr.LT, expr.NewCol(0, expr.TBigInt), expr.NewConst(expr.IntValue(500)))
}

func runScanFilter(b *testing.B, rel storage.Relation) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := CountRows(NewScan(rel, benchAccesses(), nil, filterA()), 1)
		if n != int64(benchRows)/2 {
			b.Fatalf("count = %d", n)
		}
	}
}

func BenchmarkScanFilterRow(b *testing.B) {
	_, row := benchRelation(b)
	runScanFilter(b, row)
}

func BenchmarkScanFilterVec(b *testing.B) {
	vec, _ := benchRelation(b)
	runScanFilter(b, vec)
}

func runScanSum(b *testing.B, rel storage.Relation) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gb := NewGroupBy(NewScan(rel, benchAccesses(), nil, nil), nil, nil, []AggSpec{
			{Func: Sum, Arg: expr.NewCol(0, expr.TBigInt), Name: "sa"},
			{Func: Sum, Arg: expr.NewCol(1, expr.TFloat), Name: "sb"},
		})
		res := Materialize(gb, 1)
		if len(res.Rows) != 1 || res.Rows[0][0].Null {
			b.Fatal("bad aggregate")
		}
	}
}

func BenchmarkScanSumRow(b *testing.B) {
	_, row := benchRelation(b)
	runScanSum(b, row)
}

func BenchmarkScanSumVec(b *testing.B) {
	vec, _ := benchRelation(b)
	runScanSum(b, vec)
}

func runFilterAgg(b *testing.B, rel storage.Relation) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gb := NewGroupBy(NewScan(rel, benchAccesses(), nil, filterA()), nil, nil, []AggSpec{
			{Func: CountStar, Name: "n"},
			{Func: Sum, Arg: expr.NewCol(1, expr.TFloat), Name: "sb"},
			{Func: Min, Arg: expr.NewCol(0, expr.TBigInt), Name: "lo"},
			{Func: Max, Arg: expr.NewCol(0, expr.TBigInt), Name: "hi"},
		})
		res := Materialize(gb, 1)
		if res.Rows[0][0].I != int64(benchRows)/2 {
			b.Fatalf("count = %v", res.Rows[0][0])
		}
	}
}

func BenchmarkScanFilterAggRow(b *testing.B) {
	_, row := benchRelation(b)
	runFilterAgg(b, row)
}

func BenchmarkScanFilterAggVec(b *testing.B) {
	vec, _ := benchRelation(b)
	runFilterAgg(b, vec)
}

func runFilterGroupBy(b *testing.B, rel storage.Relation) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gb := NewGroupBy(NewScan(rel, benchAccesses(), nil, filterA()),
			[]expr.Expr{expr.NewCol(2, expr.TBigInt)}, []string{"g"},
			[]AggSpec{{Func: Sum, Arg: expr.NewCol(1, expr.TFloat), Name: "sb"}})
		res := Materialize(gb, 1)
		if len(res.Rows) != 10 {
			b.Fatalf("groups = %d", len(res.Rows))
		}
	}
}

func BenchmarkFilterGroupByRow(b *testing.B) {
	_, row := benchRelation(b)
	runFilterGroupBy(b, row)
}

func BenchmarkFilterGroupByVec(b *testing.B) {
	vec, _ := benchRelation(b)
	runFilterGroupBy(b, vec)
}
