// Batch execution: operators that can emit column batches (typed
// vectors + selection vector) instead of boxed rows, and the adapter
// that turns batches back into rows so every row-at-a-time operator
// keeps working unchanged on top of a vectorized input.
package engine

import (
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/vec"
)

// BatchEmitFunc consumes batch-operator output. Like EmitFunc, it may
// be called concurrently with distinct worker ids; the batch and its
// vectors are reused between calls and must not be retained.
type BatchEmitFunc func(worker int, b *vec.Batch)

// BatchOperator is an operator that can additionally push column
// batches. BatchCapable reports whether the batch path is actually
// available for this instance (an operator type may implement the
// interface while a particular plan — e.g. a scan over a format
// without tiles — cannot vectorize); callers must check it before
// RunBatches.
type BatchOperator interface {
	Operator
	BatchCapable() bool
	RunBatches(workers int, emit BatchEmitFunc)
}

// AsBatch returns op's batch interface when the batch path is
// available for it.
func AsBatch(op Operator) (BatchOperator, bool) {
	b, ok := op.(BatchOperator)
	if !ok || !b.BatchCapable() {
		return nil, false
	}
	return b, true
}

// RunRows drives op, taking the batch path with a batch→row adapter
// when available and falling back to the row path otherwise. The
// adapter boxes each selected row into a per-worker reused buffer, so
// downstream row operators see exactly the rows a plain Run would
// deliver.
func RunRows(op Operator, workers int, emit EmitFunc) {
	b, ok := AsBatch(op)
	if !ok {
		op.Run(workers, emit)
		return
	}
	runBatchesAsRows(b, workers, emit)
}

func runBatchesAsRows(b BatchOperator, workers int, emit EmitFunc) {
	width := len(b.Columns())
	bufs := make([][]expr.Value, workers+1)
	for i := range bufs {
		bufs[i] = make([]expr.Value, width)
	}
	b.RunBatches(workers, func(w int, bt *vec.Batch) {
		row := bufs[0]
		if w >= 0 && w < len(bufs) {
			row = bufs[w]
		} else {
			row = make([]expr.Value, width)
		}
		emitBatchRows(bt, w, row, emit)
	})
}

// emitBatchRows boxes every selected row of a batch into buf and
// hands it to emit.
func emitBatchRows(b *vec.Batch, w int, buf []expr.Value, emit EmitFunc) {
	cols := b.Cols
	if b.Sel != nil {
		for _, i := range b.Sel {
			for c := range cols {
				buf[c] = cols[c].Value(int(i))
			}
			emit(w, buf)
		}
		return
	}
	for i := 0; i < b.Len; i++ {
		for c := range cols {
			buf[c] = cols[c].Value(i)
		}
		emit(w, buf)
	}
}

// BatchCapable implements BatchOperator: the scan vectorizes exactly
// when the relation can emit batches (tile-backed formats).
func (s *Scan) BatchCapable() bool {
	_, ok := s.Rel.(storage.BatchScanner)
	return ok
}

// RunBatches implements BatchOperator. A compilable filter is applied
// as a vectorized kernel tree narrowing each batch's selection
// vector; a residual filter the compiler cannot handle is evaluated
// row-wise over the batch (still building a selection, so downstream
// batch consumers keep their typed vectors).
func (s *Scan) RunBatches(workers int, emit BatchEmitFunc) {
	bs := s.Rel.(storage.BatchScanner)
	if s.Filter == nil {
		bs.ScanBatches(s.ctx(), s.Accesses, workers, storage.BatchEmitFunc(emit), s.Stats)
		return
	}
	if pred, ok := vec.Compile(s.Filter, len(s.Accesses)); ok {
		type state struct {
			sc *vec.Scratch
			nb vec.Batch
		}
		states := make([]state, workers+1)
		for i := range states {
			states[i].sc = pred.NewScratch()
		}
		var kernelCalls atomic.Int64
		defer func() { obs.KernelDispatches.Add(kernelCalls.Load()) }()
		bs.ScanBatches(s.ctx(), s.Accesses, workers, func(w int, b *vec.Batch) {
			var st *state
			if w >= 0 && w < len(states) {
				st = &states[w]
			} else {
				st = &state{sc: pred.NewScratch()} // unexpected id: private state
			}
			kernelCalls.Add(1)
			out := pred.Sel(b, st.sc)
			if len(out) == 0 {
				return
			}
			st.nb = *b
			st.nb.Sel = out
			emit(w, &st.nb)
		}, s.Stats)
		return
	}
	// Residual filter outside the kernel grammar: evaluate per row over
	// the batch, boxing into a per-worker row buffer.
	type state struct {
		row []expr.Value
		sel []int32
		nb  vec.Batch
	}
	states := make([]state, workers+1)
	for i := range states {
		states[i].row = make([]expr.Value, len(s.Accesses))
	}
	bs.ScanBatches(s.ctx(), s.Accesses, workers, func(w int, b *vec.Batch) {
		var st *state
		if w >= 0 && w < len(states) {
			st = &states[w]
		} else {
			st = &state{row: make([]expr.Value, len(s.Accesses))}
		}
		sel := st.sel[:0]
		for i := 0; i < b.Len; i++ {
			for c := range b.Cols {
				st.row[c] = b.Cols[c].Value(i)
			}
			if s.Filter.Eval(st.row).IsTrue() {
				sel = append(sel, int32(i))
			}
		}
		st.sel = sel
		if len(sel) == 0 {
			return
		}
		st.nb = *b
		st.nb.Sel = sel
		emit(w, &st.nb)
	}, s.Stats)
}

// BatchCapable implements BatchOperator: a selection vectorizes when
// its input does and its predicate compiles to kernels.
func (s *Select) BatchCapable() bool {
	in, ok := AsBatch(s.In)
	if !ok {
		return false
	}
	_, ok = vec.Compile(s.Pred, len(in.Columns()))
	return ok
}

// RunBatches implements BatchOperator.
func (s *Select) RunBatches(workers int, emit BatchEmitFunc) {
	in, _ := AsBatch(s.In)
	pred, _ := vec.Compile(s.Pred, len(in.Columns()))
	type state struct {
		sc *vec.Scratch
		nb vec.Batch
	}
	states := make([]state, workers+1)
	for i := range states {
		states[i].sc = pred.NewScratch()
	}
	var kernelCalls atomic.Int64
	defer func() { obs.KernelDispatches.Add(kernelCalls.Load()) }()
	in.RunBatches(workers, func(w int, b *vec.Batch) {
		var st *state
		if w >= 0 && w < len(states) {
			st = &states[w]
		} else {
			st = &state{sc: pred.NewScratch()}
		}
		kernelCalls.Add(1)
		out := pred.Sel(b, st.sc)
		if len(out) == 0 {
			return
		}
		st.nb = *b
		st.nb.Sel = out
		emit(w, &st.nb)
	})
}

// BatchCapable implements BatchOperator: a projection vectorizes when
// it only permutes/duplicates input columns (every expression is a
// bare column reference) over a batch-capable input.
func (p *Project) BatchCapable() bool {
	if _, ok := AsBatch(p.In); !ok {
		return false
	}
	width := len(p.In.Columns())
	for _, e := range p.Exprs {
		col, ok := e.(*expr.Col)
		if !ok || col.Idx < 0 || col.Idx >= width {
			return false
		}
	}
	return true
}

// RunBatches implements BatchOperator: column-permutation projections
// shuffle vector headers, never touching the data.
func (p *Project) RunBatches(workers int, emit BatchEmitFunc) {
	in, _ := AsBatch(p.In)
	slots := make([]int, len(p.Exprs))
	for i, e := range p.Exprs {
		slots[i] = e.(*expr.Col).Idx
	}
	type state struct{ nb vec.Batch }
	states := make([]state, workers+1)
	for i := range states {
		states[i].nb.Cols = make([]vec.Vector, len(slots))
	}
	in.RunBatches(workers, func(w int, b *vec.Batch) {
		var st *state
		if w >= 0 && w < len(states) {
			st = &states[w]
		} else {
			st = &state{nb: vec.Batch{Cols: make([]vec.Vector, len(slots))}}
		}
		for i, s := range slots {
			st.nb.Cols[i] = b.Cols[s]
		}
		st.nb.Len, st.nb.Sel, st.nb.Base = b.Len, b.Sel, b.Base
		emit(w, &st.nb)
	})
}
