package engine

import (
	"bytes"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/vec"
	"repro/internal/xxhash"
)

// AggFunc enumerates the aggregate functions.
type AggFunc uint8

// Aggregate functions. CountStar counts rows; Count counts non-null
// arguments; Sum/Avg/Min/Max skip NULLs per SQL.
const (
	CountStar AggFunc = iota
	Count
	Sum
	Avg
	Min
	Max
)

// AggSpec is one aggregate in a GROUP BY.
type AggSpec struct {
	Func     AggFunc
	Arg      expr.Expr // nil for CountStar
	Name     string
	Distinct bool // COUNT(DISTINCT x) style
}

// GroupBy is a hash aggregation operator: each worker radix-partitions
// its groups by key hash into P per-worker hash tables during the
// pipeline, and the merge phase then folds the P partitions in
// parallel — one goroutine per partition, no shared map (morsel-driven
// parallelism's partitioned aggregation). Output order and aggregate
// semantics (DISTINCT, null handling, empty-input rows) are identical
// to a serial merge.
type GroupBy struct {
	In     Operator
	Groups []expr.Expr
	Names  []string
	Aggs   []AggSpec

	// lastPartitions records the partition fan-out of the most recent
	// run's merge phase (EXPLAIN ANALYZE `agg_partitions=`).
	lastPartitions atomic.Int64
}

// Partitions reports the hash-partition fan-out of the last
// execution's merge phase: 0 before any run, 1 for a serial merge
// (workers <= 1 or the global-aggregation kernel path).
func (g *GroupBy) Partitions() int64 { return g.lastPartitions.Load() }

// aggPartitionCount picks the merge fan-out: 1 keeps the serial merge
// at workers <= 1; otherwise the next power of two >= 2×workers so
// every merge goroutine has partitions to pull even under skewed
// group distributions, capped at 64 so tiny aggregations don't pay
// setup for mostly-empty partitions.
func aggPartitionCount(workers int) int {
	if workers <= 1 {
		return 1
	}
	p := 2
	for p < 2*workers && p < 64 {
		p <<= 1
	}
	return p
}

// partitionOf selects the partition of a group key (P a power of two).
func partitionOf(key []byte, p int) int {
	if p <= 1 {
		return 0
	}
	return int(xxhash.Sum64(key) & uint64(p-1))
}

// newPartTables allocates one hash table per partition.
func newPartTables(p int) []map[string]*group {
	out := make([]map[string]*group, p)
	for i := range out {
		out[i] = map[string]*group{}
	}
	return out
}

// NewGroupBy builds a hash aggregation.
func NewGroupBy(in Operator, groups []expr.Expr, names []string, aggs []AggSpec) *GroupBy {
	return &GroupBy{In: in, Groups: groups, Names: names, Aggs: aggs}
}

// Columns implements Operator.
func (g *GroupBy) Columns() []ColumnDesc {
	out := make([]ColumnDesc, 0, len(g.Groups)+len(g.Aggs))
	for i, e := range g.Groups {
		name := ""
		if i < len(g.Names) {
			name = g.Names[i]
		}
		out = append(out, ColumnDesc{Name: name, Type: e.Type()})
	}
	for _, a := range g.Aggs {
		out = append(out, ColumnDesc{Name: a.Name, Type: a.resultType()})
	}
	return out
}

func (a AggSpec) resultType() expr.SQLType {
	switch a.Func {
	case CountStar, Count:
		return expr.TBigInt
	case Avg:
		return expr.TFloat
	case Sum:
		if a.Arg != nil && a.Arg.Type() == expr.TBigInt {
			return expr.TBigInt
		}
		return expr.TFloat
	default:
		if a.Arg != nil {
			return a.Arg.Type()
		}
		return expr.TNull
	}
}

// aggState is the running state of one aggregate for one group.
type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	isFloat  bool
	minmax   expr.Value
	hasMM    bool
	distinct map[string]bool
}

func (s *aggState) update(spec AggSpec, row []expr.Value) {
	if spec.Func == CountStar {
		s.count++
		return
	}
	v := spec.Arg.Eval(row)
	if v.Null {
		return
	}
	if spec.Distinct {
		if s.distinct == nil {
			s.distinct = map[string]bool{}
		}
		s.distinct[v.GroupKey()] = true
		return
	}
	s.updateVal(spec, v)
}

// updateVal folds one non-null argument value into the state — shared
// by the row path and the batch path's generic (boxed-vector)
// fallback, so both accumulate identically.
func (s *aggState) updateVal(spec AggSpec, v expr.Value) {
	switch spec.Func {
	case Count:
		s.count++
	case Sum, Avg:
		s.count++
		switch v.Typ {
		case expr.TBigInt:
			s.sumI += v.I
			s.sumF += float64(v.I)
		case expr.TFloat:
			s.isFloat = true
			s.sumF += v.F
		}
	case Min, Max:
		s.stepMinMax(spec, v)
	}
}

// stepMinMax folds one candidate into the running min/max with the
// row path's comparison (ties and incomparable values keep the
// earlier candidate).
func (s *aggState) stepMinMax(spec AggSpec, v expr.Value) {
	if !s.hasMM {
		s.minmax, s.hasMM = v, true
		return
	}
	c, ok := expr.Compare(v, s.minmax)
	if ok && ((spec.Func == Min && c < 0) || (spec.Func == Max && c > 0)) {
		s.minmax = v
	}
}

func (s *aggState) merge(spec AggSpec, o *aggState) {
	s.count += o.count
	s.sumI += o.sumI
	s.sumF += o.sumF
	s.isFloat = s.isFloat || o.isFloat
	if o.hasMM {
		if !s.hasMM {
			s.minmax, s.hasMM = o.minmax, true
		} else {
			c, ok := expr.Compare(o.minmax, s.minmax)
			if ok && ((spec.Func == Min && c < 0) || (spec.Func == Max && c > 0)) {
				s.minmax = o.minmax
			}
		}
	}
	if o.distinct != nil {
		if s.distinct == nil {
			s.distinct = map[string]bool{}
		}
		for k := range o.distinct {
			s.distinct[k] = true
		}
	}
}

func (s *aggState) result(spec AggSpec) expr.Value {
	if spec.Distinct {
		return expr.IntValue(int64(len(s.distinct)))
	}
	switch spec.Func {
	case CountStar, Count:
		return expr.IntValue(s.count)
	case Sum:
		if s.count == 0 {
			return expr.NullValue()
		}
		if !s.isFloat && spec.resultType() == expr.TBigInt {
			return expr.IntValue(s.sumI)
		}
		return expr.FloatValue(s.sumF)
	case Avg:
		if s.count == 0 {
			return expr.NullValue()
		}
		return expr.FloatValue(s.sumF / float64(s.count))
	default:
		if !s.hasMM {
			return expr.NullValue()
		}
		return s.minmax
	}
}

type group struct {
	keyVals []expr.Value
	states  []aggState
}

// Inputs implements the plan-walking interface.
func (g *GroupBy) Inputs() []Operator { return []Operator{g.In} }

// aggSlots returns the input slot of every aggregate argument when
// the whole spec list is vectorizable — global aggregation (the
// caller checks Groups is empty) with no DISTINCT and every argument
// a bare column reference (CountStar uses slot -1).
func (g *GroupBy) aggSlots(width int) ([]int, bool) {
	slots := make([]int, len(g.Aggs))
	for i, a := range g.Aggs {
		if a.Distinct {
			return nil, false
		}
		if a.Func == CountStar {
			slots[i] = -1
			continue
		}
		col, ok := a.Arg.(*expr.Col)
		if !ok || col.Idx < 0 || col.Idx >= width {
			return nil, false
		}
		slots[i] = col.Idx
	}
	return slots, true
}

// runBatchAgg is the vectorized global-aggregation path: aggregate
// kernels loop directly over each batch's typed column slices into
// per-worker states, merged at the end exactly like the row path's
// per-worker tables.
func (g *GroupBy) runBatchAgg(in BatchOperator, slots []int, workers int, emit EmitFunc) {
	// One state vector per worker; the merge is an O(workers × nAggs)
	// fold with no keys to partition, so it stays serial by design.
	g.lastPartitions.Store(1)
	states := make([][]aggState, workers+1)
	for i := range states {
		states[i] = make([]aggState, len(g.Aggs))
	}
	overflow := make([]aggState, len(g.Aggs))
	var mu sync.Mutex // guards overflow (unexpected worker ids)
	var kernels atomic.Int64
	in.RunBatches(workers, func(w int, b *vec.Batch) {
		var sts []aggState
		if w >= 0 && w < len(states) {
			sts = states[w]
		} else {
			mu.Lock()
			defer mu.Unlock()
			sts = overflow
		}
		dispatched := 0
		for ai := range g.Aggs {
			spec := g.Aggs[ai]
			st := &sts[ai]
			if spec.Func == CountStar {
				st.count += int64(b.Rows())
				continue
			}
			if updateAggFromVector(st, spec, &b.Cols[slots[ai]], b.Sel, b.Len) {
				dispatched++
			}
		}
		if dispatched > 0 {
			kernels.Add(int64(dispatched))
		}
	})
	obs.KernelDispatches.Add(kernels.Load())

	final := make([]aggState, len(g.Aggs))
	for _, sts := range append(states, overflow) {
		for i := range g.Aggs {
			final[i].merge(g.Aggs[i], &sts[i])
		}
	}
	out := make([]expr.Value, len(g.Aggs))
	for i := range g.Aggs {
		out[i] = final[i].result(g.Aggs[i])
	}
	emit(0, out)
}

// updateAggFromVector folds a whole vector into one aggregate state,
// using a typed kernel when the vector's backing allows (reported by
// the return value) and a cell-boxing loop otherwise.
func updateAggFromVector(st *aggState, spec AggSpec, v *vec.Vector, sel []int32, n int) bool {
	if v.AllNull {
		return false
	}
	if v.Boxed == nil {
		switch spec.Func {
		case Count:
			st.count += vec.CountNotNull(v, sel, n)
			return true
		case Sum, Avg:
			switch v.Type {
			case expr.TBigInt:
				r := vec.SumInts(v, sel, n)
				st.count += r.Count
				st.sumI += r.Sum
				st.sumF += r.FSum
				return true
			case expr.TFloat:
				r := vec.SumFloats(v, sel, n)
				st.count += r.Count
				st.sumF += r.Sum
				if r.Count > 0 {
					st.isFloat = true
				}
				return true
			case expr.TTimestamp, expr.TText, expr.TBool:
				// The row path only counts these (no numeric sum).
				st.count += vec.CountNotNull(v, sel, n)
				return true
			}
		case Min, Max:
			switch v.Type {
			case expr.TBigInt, expr.TTimestamp:
				if x, ok := vec.MinMaxInts(v, sel, n, spec.Func == Min); ok {
					val := expr.IntValue(x)
					if v.Type == expr.TTimestamp {
						val = expr.TimestampValue(x)
					}
					st.stepMinMax(spec, val)
				}
				return true
			case expr.TFloat:
				if x, ok := vec.MinMaxFloats(v, sel, n, spec.Func == Min); ok {
					st.stepMinMax(spec, expr.FloatValue(x))
				}
				return true
			case expr.TText:
				minMaxStrs(st, spec, v, sel, n)
				return true
			}
		}
	}
	// Generic fallback: box each selected cell, then the row-path
	// update logic.
	if sel != nil {
		for _, i := range sel {
			if x := v.Value(int(i)); !x.Null {
				st.updateVal(spec, x)
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		if x := v.Value(i); !x.Null {
			st.updateVal(spec, x)
		}
	}
	return false
}

// minMaxStrs scans a text vector for its min/max without boxing: it
// tracks the best row index by byte comparison and boxes once at the
// end. Strict comparisons keep the earliest row on ties, matching the
// row path.
func minMaxStrs(st *aggState, spec AggSpec, v *vec.Vector, sel []int32, n int) {
	best := -1
	step := func(i int) {
		if v.IsNull(i) {
			return
		}
		if best < 0 {
			best = i
			return
		}
		c := bytes.Compare(v.StrAt(i), v.StrAt(best))
		if (spec.Func == Min && c < 0) || (spec.Func == Max && c > 0) {
			best = i
		}
	}
	if sel != nil {
		for _, i := range sel {
			step(int(i))
		}
	} else {
		for i := 0; i < n; i++ {
			step(i)
		}
	}
	if best >= 0 {
		st.stepMinMax(spec, v.Value(best))
	}
}

// Run implements Operator.
func (g *GroupBy) Run(workers int, emit EmitFunc) {
	// Global aggregation over a batch-capable input with column-slot
	// arguments takes the all-vectorized path: no rows are ever boxed
	// between the tile columns and the aggregate states.
	if len(g.Groups) == 0 {
		if in, ok := AsBatch(g.In); ok {
			if slots, ok := g.aggSlots(len(g.In.Columns())); ok {
				g.runBatchAgg(in, slots, workers, emit)
				return
			}
		}
	}
	// Single text group key over a batch-capable input: dictionary
	// batches aggregate into a code-indexed array (dict_groupby.go).
	if g.tryBatchGroupBy(workers, emit) {
		return
	}
	// One table set per worker id, preallocated so the per-row path
	// is lock-free (ids are bounded by the requested parallelism);
	// each set is radix-partitioned by key hash so the merge phase can
	// fold partitions in parallel. Unexpected ids share a
	// mutex-guarded overflow set.
	P := aggPartitionCount(workers)
	tables := make([][]map[string]*group, workers+1)
	for i := range tables {
		tables[i] = newPartTables(P)
	}
	overflow := newPartTables(P)
	var mu sync.Mutex

	g.In.Run(workers, func(w int, row []expr.Value) {
		var parts []map[string]*group
		if w >= 0 && w < len(tables) {
			parts = tables[w]
		} else {
			mu.Lock()
			defer mu.Unlock()
			parts = overflow
		}
		var keyB []byte
		keyVals := make([]expr.Value, len(g.Groups))
		for i, e := range g.Groups {
			keyVals[i] = e.Eval(row)
			keyB = append(keyB, keyVals[i].GroupKey()...)
			keyB = append(keyB, 0)
		}
		t := parts[partitionOf(keyB, P)]
		grp, ok := t[string(keyB)]
		if !ok {
			grp = &group{keyVals: keyVals, states: make([]aggState, len(g.Aggs))}
			t[string(keyB)] = grp
		}
		for i := range g.Aggs {
			grp.states[i].update(g.Aggs[i], row)
		}
	})

	g.finishPartitioned(append(tables, overflow), workers, emit)
}

// finishPartitioned merges the per-worker partition table sets and
// emits the groups in deterministic (sorted key) order — the shared
// tail of the row path and the dictionary batch path. Equal keys land
// in the same partition by construction, so partitions merge
// independently (in parallel when workers and partitions allow) and
// the globally sorted order is the k-way merge of the per-partition
// sorted runs. Per-key merge order stays worker-ascending, exactly
// like the serial fold.
func (g *GroupBy) finishPartitioned(workerParts [][]map[string]*group, workers int, emit EmitFunc) {
	P := len(workerParts[0])
	g.lastPartitions.Store(int64(P))
	type partRun struct {
		keys   []string
		groups map[string]*group
	}
	runs := make([]partRun, P)
	mergeOne := func(p int) {
		merged := map[string]*group{}
		for _, parts := range workerParts {
			for key, grp := range parts[p] {
				if m, ok := merged[key]; ok {
					for i := range g.Aggs {
						m.states[i].merge(g.Aggs[i], &grp.states[i])
					}
				} else {
					merged[key] = grp
				}
			}
		}
		keys := make([]string, 0, len(merged))
		for k := range merged {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		runs[p] = partRun{keys: keys, groups: merged}
	}
	if mergeWorkers := min(P, workers); mergeWorkers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(mergeWorkers)
		for i := 0; i < mergeWorkers; i++ {
			go func() {
				defer wg.Done()
				for {
					p := int(next.Add(1)) - 1
					if p >= P {
						return
					}
					mergeOne(p)
				}
			}()
		}
		wg.Wait()
		obs.AggPartitionedMerges.Inc()
	} else {
		for p := 0; p < P; p++ {
			mergeOne(p)
		}
	}

	total := 0
	for _, r := range runs {
		total += len(r.keys)
	}
	// Global aggregation with zero groups over empty input still
	// yields one row (SQL semantics for e.g. SELECT count(*)).
	if len(g.Groups) == 0 && total == 0 {
		states := make([]aggState, len(g.Aggs))
		out := make([]expr.Value, len(g.Aggs))
		for i := range g.Aggs {
			out[i] = states[i].result(g.Aggs[i])
		}
		emit(0, out)
		return
	}

	// K-way merge of the sorted partition runs: deterministic global
	// key order without re-sorting the union.
	idx := make([]int, P)
	out := make([]expr.Value, len(g.Groups)+len(g.Aggs))
	for n := 0; n < total; n++ {
		best := -1
		for p := 0; p < P; p++ {
			if idx[p] >= len(runs[p].keys) {
				continue
			}
			if best < 0 || runs[p].keys[idx[p]] < runs[best].keys[idx[best]] {
				best = p
			}
		}
		k := runs[best].keys[idx[best]]
		idx[best]++
		grp := runs[best].groups[k]
		copy(out, grp.keyVals)
		for i := range g.Aggs {
			out[len(g.Groups)+i] = grp.states[i].result(g.Aggs[i])
		}
		emit(0, out)
	}
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	E    expr.Expr
	Desc bool
}

// OrderBy sorts the whole input (then usually feeds a Limit). When
// Limit is positive the sort runs as a bounded top-K heap: only the K
// best rows are retained while the input streams, so ORDER BY + LIMIT
// never materializes the full input.
type OrderBy struct {
	In    Operator
	Keys  []OrderKey
	Limit int // > 0: keep only the first Limit rows of the sorted order
}

// NewOrderBy builds a sort.
func NewOrderBy(in Operator, keys ...OrderKey) *OrderBy { return &OrderBy{In: in, Keys: keys} }

// Columns implements Operator.
func (o *OrderBy) Columns() []ColumnDesc { return o.In.Columns() }

// Inputs implements the plan-walking interface.
func (o *OrderBy) Inputs() []Operator { return []Operator{o.In} }

// rowLess reports whether row a sorts strictly before row b (NULLS
// FIRST ascending, flipped per-key by Desc).
func (o *OrderBy) rowLess(a, b []expr.Value) bool {
	for _, k := range o.Keys {
		av := k.E.Eval(a)
		bv := k.E.Eval(b)
		if av.Null && bv.Null {
			continue
		}
		if av.Null {
			return !k.Desc // NULLS FIRST ascending
		}
		if bv.Null {
			return k.Desc
		}
		c, ok := expr.Compare(av, bv)
		if !ok || c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// Run implements Operator.
func (o *OrderBy) Run(workers int, emit EmitFunc) {
	if o.Limit > 0 {
		o.runTopK(workers, emit)
		return
	}
	var mu sync.Mutex
	var rows [][]expr.Value
	o.In.Run(workers, func(w int, row []expr.Value) {
		cp := append([]expr.Value(nil), row...)
		mu.Lock()
		rows = append(rows, cp)
		mu.Unlock()
	})
	sort.SliceStable(rows, func(i, j int) bool { return o.rowLess(rows[i], rows[j]) })
	for _, r := range rows {
		emit(0, r)
	}
}

// topKHeap is a max-heap of the K best rows seen so far (the root is
// the worst retained row); a new row replaces the root only when it
// sorts strictly before it. Memory is O(K) regardless of input size,
// and each input row costs O(log K) comparisons.
type topKHeap struct {
	o    *OrderBy
	k    int
	rows [][]expr.Value
}

// worse reports whether rows[i] sorts after rows[j] — the max-heap
// ordering that keeps the worst retained row at the root.
func (h *topKHeap) worse(i, j int) bool { return h.o.rowLess(h.rows[j], h.rows[i]) }

func (h *topKHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.rows) && h.worse(l, big) {
			big = l
		}
		if r < len(h.rows) && h.worse(r, big) {
			big = r
		}
		if big == i {
			return
		}
		h.rows[i], h.rows[big] = h.rows[big], h.rows[i]
		i = big
	}
}

// pushOwned folds one row the heap may retain without copying.
func (h *topKHeap) pushOwned(row []expr.Value) {
	if len(h.rows) < h.k {
		h.rows = append(h.rows, row)
		// Sift up.
		for i := len(h.rows) - 1; i > 0; {
			p := (i - 1) / 2
			if !h.worse(i, p) {
				break
			}
			h.rows[i], h.rows[p] = h.rows[p], h.rows[i]
			i = p
		}
		return
	}
	if !h.o.rowLess(row, h.rows[0]) {
		return // not better than the worst retained row
	}
	h.rows[0] = row
	h.siftDown(0)
}

// push folds one emitted row (whose backing slice is reused by the
// producer, so it is copied first when it stands a chance of being
// retained).
func (h *topKHeap) push(row []expr.Value) {
	if len(h.rows) >= h.k && !h.o.rowLess(row, h.rows[0]) {
		return
	}
	h.pushOwned(append([]expr.Value(nil), row...))
}

// runTopK runs the bounded top-K sort with one lock-free heap per
// worker; the per-worker heaps are then merged pairwise in parallel
// (each worker's local top-K is a superset of its contribution to the
// global top-K, so merging heaps loses nothing).
func (o *OrderBy) runTopK(workers int, emit EmitFunc) {
	if workers < 1 {
		workers = 1
	}
	heaps := make([]*topKHeap, workers+1)
	for i := range heaps {
		heaps[i] = &topKHeap{o: o, k: o.Limit}
	}
	overflow := &topKHeap{o: o, k: o.Limit}
	var mu sync.Mutex // guards overflow (unexpected worker ids)
	o.In.Run(workers, func(w int, row []expr.Value) {
		if w >= 0 && w < len(heaps) {
			heaps[w].push(row)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		overflow.push(row)
	})
	heaps = append(heaps, overflow)
	// Parallel pairwise merge: each round folds the back half of the
	// heap list into the front half concurrently.
	for len(heaps) > 1 {
		half := (len(heaps) + 1) / 2
		var wg sync.WaitGroup
		for i := 0; i+half < len(heaps); i++ {
			wg.Add(1)
			go func(dst, src *topKHeap) {
				defer wg.Done()
				for _, r := range src.rows {
					dst.pushOwned(r)
				}
			}(heaps[i], heaps[i+half])
		}
		wg.Wait()
		heaps = heaps[:half]
	}
	rows := heaps[0].rows
	sort.SliceStable(rows, func(i, j int) bool { return o.rowLess(rows[i], rows[j]) })
	for _, r := range rows {
		emit(0, r)
	}
}

// Limit passes through the first N rows (input must be serial —
// place after OrderBy or GroupBy).
type Limit struct {
	In Operator
	N  int
}

// NewLimit builds a limit.
func NewLimit(in Operator, n int) *Limit { return &Limit{In: in, N: n} }

// Columns implements Operator.
func (l *Limit) Columns() []ColumnDesc { return l.In.Columns() }

// Inputs implements the plan-walking interface.
func (l *Limit) Inputs() []Operator { return []Operator{l.In} }

// Run implements Operator.
func (l *Limit) Run(workers int, emit EmitFunc) {
	var mu sync.Mutex
	seen := 0
	l.In.Run(workers, func(w int, row []expr.Value) {
		mu.Lock()
		ok := seen < l.N
		if ok {
			seen++
		}
		mu.Unlock()
		if ok {
			emit(w, row)
		}
	})
}
