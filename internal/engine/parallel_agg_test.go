// Cross-worker conformance for the partitioned parallel aggregation
// and top-K paths: the exact same (sorted) results must come out for
// every worker count, including DISTINCT aggregates, NULL group keys,
// empty inputs, the dictionary batch path, and bounded sorts.
package engine

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

var aggWorkers = []int{1, 2, 3, 8}

// resultRows renders a materialized result's rows, sorted, so results
// from different worker counts compare as multisets-with-order for
// sorted operators and as sets otherwise.
func resultRows(res *Result, sorted bool) []string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		s := ""
		for _, v := range r {
			s += v.String() + "\x1f"
		}
		rows[i] = s
	}
	if !sorted {
		for i := 1; i < len(rows); i++ {
			for j := i; j > 0 && rows[j] < rows[j-1]; j-- {
				rows[j], rows[j-1] = rows[j-1], rows[j]
			}
		}
	}
	return rows
}

func sameRowLists(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

// skewRel loads rows whose group column is heavily skewed (half the
// rows share one group) with occasional NULL keys — the shape that
// stresses both morsel scheduling and partition balance.
func skewRel(t *testing.T, n int) storage.Relation {
	t.Helper()
	srcs := make([]string, n)
	for i := 0; i < n; i++ {
		switch {
		case i%13 == 7: // NULL group key
			srcs[i] = fmt.Sprintf(`{"id":%d,"v":%d}`, i, i%10)
		case i%2 == 0: // skew: every even row lands in g-hot
			srcs[i] = fmt.Sprintf(`{"id":%d,"g":"g-hot","v":%d}`, i, i%10)
		default:
			srcs[i] = fmt.Sprintf(`{"id":%d,"g":"g-%d","v":%d}`, i, i%17, i%10)
		}
	}
	return rel(t, srcs...)
}

func skewGroupBy(r storage.Relation) *GroupBy {
	g := storage.NewAccess(expr.TText, "g")
	v := storage.NewAccess(expr.TBigInt, "v")
	id := storage.NewAccess(expr.TBigInt, "id")
	scan := scanAll(r, nil, g, v, id)
	vCol := expr.NewCol(1, expr.TBigInt)
	return NewGroupBy(scan,
		[]expr.Expr{expr.NewCol(0, expr.TText)}, []string{"g"},
		[]AggSpec{
			{Func: CountStar, Name: "n"},
			{Func: Sum, Arg: vCol, Name: "s"},
			{Func: Min, Arg: vCol, Name: "lo"},
			{Func: Max, Arg: vCol, Name: "hi"},
			{Func: Avg, Arg: vCol, Name: "avg"},
			{Func: Count, Arg: vCol, Name: "cv", Distinct: true},
			{Func: Count, Arg: expr.NewCol(2, expr.TBigInt), Name: "cid"},
		})
}

// TestGroupByConformanceAcrossWorkers: the row-path partitioned
// aggregation emits byte-identical sorted output for every worker
// count, including DISTINCT and NULL keys, and records the partition
// fan-out.
func TestGroupByConformanceAcrossWorkers(t *testing.T) {
	r := skewRel(t, 500)
	gb := skewGroupBy(r)
	want := resultRows(Materialize(gb, 1), true)
	if p := gb.Partitions(); p != 1 {
		t.Fatalf("serial run recorded %d partitions, want 1", p)
	}
	if len(want) < 10 {
		t.Fatalf("only %d groups in fixture", len(want))
	}
	for _, w := range aggWorkers[1:] {
		got := resultRows(Materialize(gb, w), true)
		sameRowLists(t, fmt.Sprintf("workers=%d", w), got, want)
		if p := gb.Partitions(); p < int64(2*w) {
			t.Fatalf("workers=%d recorded %d partitions, want >= %d", w, p, 2*w)
		}
	}
}

// TestGlobalAggConformanceAcrossWorkers covers the keyless path
// (serial merge by design) and the empty-input single-row guarantee.
func TestGlobalAggConformanceAcrossWorkers(t *testing.T) {
	r := skewRel(t, 300)
	v := storage.NewAccess(expr.TBigInt, "v")
	mk := func(rel storage.Relation) *GroupBy {
		return NewGroupBy(scanAll(rel, nil, v), nil, nil, []AggSpec{
			{Func: CountStar, Name: "n"},
			{Func: Sum, Arg: expr.NewCol(0, expr.TBigInt), Name: "s"},
			{Func: Count, Arg: expr.NewCol(0, expr.TBigInt), Name: "d", Distinct: true},
		})
	}
	want := resultRows(Materialize(mk(r), 1), true)
	for _, w := range aggWorkers[1:] {
		sameRowLists(t, fmt.Sprintf("global workers=%d", w), resultRows(Materialize(mk(r), w), true), want)
	}

	// Empty input: exactly one row (COUNT 0, SUM NULL) at any width.
	empty := rel(t, `{"v":1}`)
	never := expr.NewCmp(expr.LT, expr.NewCol(0, expr.TBigInt), expr.NewConst(expr.IntValue(-100)))
	for _, w := range aggWorkers {
		gb := NewGroupBy(scanAll(empty, never, v), nil, nil, []AggSpec{
			{Func: CountStar, Name: "n"},
			{Func: Sum, Arg: expr.NewCol(0, expr.TBigInt), Name: "s"},
		})
		res := Materialize(gb, w)
		if len(res.Rows) != 1 {
			t.Fatalf("empty input workers=%d: %d rows, want 1", w, len(res.Rows))
		}
		if res.Rows[0][0].String() != "0" || !res.Rows[0][1].Null {
			t.Fatalf("empty input workers=%d: row = %v", w, res.Rows[0])
		}
	}

	// Grouped empty input: zero rows at any width.
	for _, w := range aggWorkers {
		gb := NewGroupBy(scanAll(empty, never, v),
			[]expr.Expr{expr.NewCol(0, expr.TBigInt)}, []string{"v"},
			[]AggSpec{{Func: CountStar, Name: "n"}})
		if res := Materialize(gb, w); len(res.Rows) != 0 {
			t.Fatalf("grouped empty workers=%d: %d rows, want 0", w, len(res.Rows))
		}
	}
}

// TestBatchGroupByConformanceAcrossWorkers drives the dictionary /
// batch aggregation path (tiles input, low-cardinality text key) and
// checks it against the row path at every worker count.
func TestBatchGroupByConformanceAcrossWorkers(t *testing.T) {
	n := 600
	lines := make([][]byte, n)
	for i := 0; i < n; i++ {
		if i%19 == 3 { // NULL key rows
			lines[i] = []byte(fmt.Sprintf(`{"id":%d,"v":%d}`, i, i%7))
		} else {
			lines[i] = []byte(fmt.Sprintf(`{"id":%d,"lvl":"L%d","v":%d}`, i, i%5, i%7))
		}
	}
	cfg := storage.DefaultLoaderConfig()
	cfg.Tile.TileSize = 64
	l, err := storage.NewLoader(storage.KindTiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiles, err := l.Load("dict", lines, 2)
	if err != nil {
		t.Fatal(err)
	}
	jb := rel(t, func() []string {
		out := make([]string, n)
		for i, b := range lines {
			out[i] = string(b)
		}
		return out
	}()...)

	mk := func(r storage.Relation) *GroupBy {
		lvl := storage.NewAccess(expr.TText, "lvl")
		v := storage.NewAccess(expr.TBigInt, "v")
		return NewGroupBy(scanAll(r, nil, lvl, v),
			[]expr.Expr{expr.NewCol(0, expr.TText)}, []string{"lvl"},
			[]AggSpec{
				{Func: CountStar, Name: "n"},
				{Func: Sum, Arg: expr.NewCol(1, expr.TBigInt), Name: "s"},
				{Func: Max, Arg: expr.NewCol(1, expr.TBigInt), Name: "m"},
			})
	}
	want := resultRows(Materialize(mk(jb), 1), true)
	for _, w := range aggWorkers {
		tg := mk(tiles)
		if !tg.tryBatchGroupBy(w, func(int, []expr.Value) {}) {
			t.Fatalf("workers=%d: batch group-by path did not engage", w)
		}
		sameRowLists(t, fmt.Sprintf("batch workers=%d", w), resultRows(Materialize(mk(tiles), w), true), want)
	}
}

// TestTopKConformanceAcrossWorkers: the per-worker-heap bounded sort
// returns the same top K on a total order at every worker count, and
// never more than K rows.
func TestTopKConformanceAcrossWorkers(t *testing.T) {
	r := skewRel(t, 400)
	id := storage.NewAccess(expr.TBigInt, "id")
	g := storage.NewAccess(expr.TText, "g")
	for _, k := range []int{1, 7, 50, 1000} {
		mk := func() *OrderBy {
			ob := NewOrderBy(scanAll(r, nil, id, g), OrderKey{E: expr.NewCol(0, expr.TBigInt), Desc: true})
			ob.Limit = k
			return ob
		}
		want := resultRows(Materialize(mk(), 1), true)
		wantLen := k
		if wantLen > 400 {
			wantLen = 400
		}
		if len(want) != wantLen {
			t.Fatalf("k=%d: serial top-K returned %d rows", k, len(want))
		}
		for _, w := range aggWorkers[1:] {
			sameRowLists(t, fmt.Sprintf("topk k=%d workers=%d", k, w), resultRows(Materialize(mk(), w), true), want)
		}
	}
}
