package engine

import (
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/vec"
)

// Traced wraps an operator for EXPLAIN ANALYZE: it measures the
// operator's inclusive wall time and counts emitted rows. Plain Run
// paths never construct Traced operators, so tracing has zero cost
// when disabled. Row counting uses cache-line-padded per-worker slots
// (worker ids are bounded by the requested parallelism, see
// Project.Run), summed once after the input drains.
type Traced struct {
	// Label names the operator ("Scan", "HashJoin", "GroupBy", ...).
	Label string
	// Detail is a human-readable operator description for the plan
	// printer (table name, join sides, key counts).
	Detail string
	// EstRows is the optimizer's cardinality estimate (< 0 when the
	// operator has none).
	EstRows float64
	// In is the wrapped operator.
	In Operator
	// ScanStats is non-nil when In is a Scan: the per-scan tile and
	// fallback counters the relation fills during execution.
	ScanStats *obs.ScanStats

	wallNanos atomic.Int64
	rowCount  atomic.Int64
	ran       atomic.Bool
}

// NewTraced wraps in with a tracing node.
func NewTraced(label, detail string, estRows float64, in Operator) *Traced {
	return &Traced{Label: label, Detail: detail, EstRows: estRows, In: in}
}

// Columns implements Operator.
func (t *Traced) Columns() []ColumnDesc { return t.In.Columns() }

// Inputs implements the plan-walking interface.
func (t *Traced) Inputs() []Operator { return []Operator{t.In} }

type paddedCount struct {
	n int64
	_ [56]byte // separate counters onto distinct cache lines
}

// Run implements Operator.
func (t *Traced) Run(workers int, emit EmitFunc) {
	counts := make([]paddedCount, workers+1)
	var overflow atomic.Int64
	start := time.Now()
	t.In.Run(workers, func(w int, row []expr.Value) {
		if w >= 0 && w < len(counts) {
			counts[w].n++
		} else {
			overflow.Add(1)
		}
		emit(w, row)
	})
	t.wallNanos.Add(time.Since(start).Nanoseconds())
	total := overflow.Load()
	for i := range counts {
		total += counts[i].n
	}
	t.rowCount.Add(total)
	t.ran.Store(true)
}

// BatchCapable implements BatchOperator: tracing is transparent to
// the batch path, so a traced plan vectorizes exactly when the
// wrapped plan does.
func (t *Traced) BatchCapable() bool {
	_, ok := AsBatch(t.In)
	return ok
}

// RunBatches implements BatchOperator, counting a whole batch's
// selected rows per emit.
func (t *Traced) RunBatches(workers int, emit BatchEmitFunc) {
	in, _ := AsBatch(t.In)
	counts := make([]paddedCount, workers+1)
	var overflow atomic.Int64
	start := time.Now()
	in.RunBatches(workers, func(w int, b *vec.Batch) {
		if w >= 0 && w < len(counts) {
			counts[w].n += int64(b.Rows())
		} else {
			overflow.Add(int64(b.Rows()))
		}
		emit(w, b)
	})
	t.wallNanos.Add(time.Since(start).Nanoseconds())
	total := overflow.Load()
	for i := range counts {
		total += counts[i].n
	}
	t.rowCount.Add(total)
	t.ran.Store(true)
}

// WallTime returns the operator's inclusive wall time (its whole
// subtree, as push execution nests child Runs inside the parent's).
func (t *Traced) WallTime() time.Duration {
	return time.Duration(t.wallNanos.Load())
}

// Rows returns the number of rows the operator emitted.
func (t *Traced) Rows() int64 { return t.rowCount.Load() }

// Ran reports whether the operator executed (false after Explain).
func (t *Traced) Ran() bool { return t.ran.Load() }

// Inputs returns op's input operators when it exposes them (every
// engine operator does; foreign operators return none).
func Inputs(op Operator) []Operator {
	if h, ok := op.(interface{ Inputs() []Operator }); ok {
		return h.Inputs()
	}
	return nil
}
