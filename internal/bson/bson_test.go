package bson

import (
	"testing"
	"testing/quick"

	"repro/internal/jsongen"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
)

func rt(t *testing.T, src string) {
	t.Helper()
	v, err := jsontext.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	data := Marshal(v)
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal %s: %v", src, err)
	}
	if !back.Equal(v) {
		t.Fatalf("round trip %s -> %#v", src, back)
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		`{}`, `{"a":1}`, `{"a":null,"b":true,"c":false}`,
		`{"i32":2147483647,"i64":2147483648,"neg":-9223372036854775808}`,
		`{"f":2.5,"s":"hello","empty":""}`,
		`{"nested":{"deep":{"deeper":[1,2,3]}}}`,
		`{"arr":[{"x":1},{"y":2},[],{}]}`,
		`{"unicode":"héllo 😀"}`,
		`[1,2,3]`, `"scalar"`, `42`, `null`, `true`,
	}
	for _, s := range srcs {
		rt(t, s)
	}
}

func TestLookup(t *testing.T) {
	v, _ := jsontext.ParseString(`{"id":7,"user":{"name":"bo","id":3},"tags":["a","b"],"z":1.5}`)
	data := Marshal(v)
	got, ok := Lookup(data, "id")
	if !ok || got.IntVal() != 7 {
		t.Errorf("Lookup(id) = %#v, %v", got, ok)
	}
	if _, ok := Lookup(data, "missing"); ok {
		t.Error("missing key found")
	}
	nested, ok := LookupPath(data, "user", "name")
	if !ok || nested.StringVal() != "bo" {
		t.Errorf("LookupPath(user.name) = %#v", nested)
	}
	if _, ok := LookupPath(data, "user", "none"); ok {
		t.Error("user.none found")
	}
	if _, ok := LookupPath(data, "id", "deeper"); ok {
		t.Error("scalar traversal succeeded")
	}
	arr, ok := Lookup(data, "tags")
	if !ok || arr.Kind() != jsonvalue.KindArray || arr.Len() != 2 {
		t.Errorf("tags = %#v", arr)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	v, _ := jsontext.ParseString(`{"a":[1,{"b":"c"}],"d":2.5}`)
	data := Marshal(v)
	for i := 0; i < len(data); i++ {
		Unmarshal(data[:i]) // must not panic
	}
	for i := 0; i < len(data); i++ {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0xFF
		Unmarshal(bad) // must not panic
		Lookup(bad, "a")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(g jsongen.Gen) bool {
		data := Marshal(g.V)
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return back.Equal(g.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickLookupAgrees(t *testing.T) {
	f := func(g jsongen.Gen) bool {
		if g.V.Kind() != jsonvalue.KindObject {
			return true
		}
		data := Marshal(g.V)
		for _, m := range g.V.Members() {
			want := g.V.Get(m.Key) // duplicate keys: last wins in model
			got, ok := Lookup(data, m.Key)
			if !ok {
				return false
			}
			// BSON keeps duplicates; Lookup returns the first. Accept
			// either occurrence.
			if !got.Equal(want) && !got.Equal(m.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
