// Package bson implements enough of the BSON specification
// (bsonspec.org, as used by MongoDB's drivers [45]) to reproduce the
// paper's §6.9 binary-format comparison: serialization from and
// deserialization to the shared JSON value model, plus key lookup.
//
// The design property under test is BSON's *linear-time* element scan:
// documents store elements as a flat sequence of
// (type, cstring name, payload), so finding a key walks elements one
// by one — the contrast to JSONB's sorted keys with binary search.
package bson

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"
	"strconv"

	"repro/internal/jsonvalue"
)

// Element type tags (subset sufficient for JSON data).
const (
	typeDouble = 0x01
	typeString = 0x02
	typeDoc    = 0x03
	typeArray  = 0x04
	typeBool   = 0x08
	typeNull   = 0x0A
	typeInt32  = 0x10
	typeInt64  = 0x12
)

// ErrCorrupt reports an undecodable document.
var ErrCorrupt = errors.New("bson: corrupt document")

// Marshal encodes a JSON value as a BSON document. Non-object roots
// are wrapped per convention into a document with key "" (BSON can
// only encode documents at the top level).
func Marshal(v jsonvalue.Value) []byte {
	if v.Kind() == jsonvalue.KindObject {
		return appendDoc(nil, v.Members(), false)
	}
	return appendDoc(nil, []jsonvalue.Member{{Key: "", Value: v}}, false)
}

func appendDoc(dst []byte, members []jsonvalue.Member, _ bool) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length placeholder
	for _, m := range members {
		dst = appendElement(dst, m.Key, m.Value)
	}
	dst = append(dst, 0x00)
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start))
	return dst
}

func appendArray(dst []byte, elems []jsonvalue.Value) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	for i, e := range elems {
		dst = appendElement(dst, strconv.Itoa(i), e)
	}
	dst = append(dst, 0x00)
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start))
	return dst
}

func appendElement(dst []byte, name string, v jsonvalue.Value) []byte {
	switch v.Kind() {
	case jsonvalue.KindNull:
		dst = append(dst, typeNull)
		dst = appendCString(dst, name)
	case jsonvalue.KindBool:
		dst = append(dst, typeBool)
		dst = appendCString(dst, name)
		if v.BoolVal() {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case jsonvalue.KindInt:
		i := v.IntVal()
		if i >= math.MinInt32 && i <= math.MaxInt32 {
			dst = append(dst, typeInt32)
			dst = appendCString(dst, name)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(i)))
		} else {
			dst = append(dst, typeInt64)
			dst = appendCString(dst, name)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(i))
		}
	case jsonvalue.KindFloat:
		dst = append(dst, typeDouble)
		dst = appendCString(dst, name)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.FloatVal()))
	case jsonvalue.KindString:
		dst = append(dst, typeString)
		dst = appendCString(dst, name)
		s := v.StringVal()
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)+1))
		dst = append(dst, s...)
		dst = append(dst, 0x00)
	case jsonvalue.KindObject:
		dst = append(dst, typeDoc)
		dst = appendCString(dst, name)
		dst = appendDoc(dst, v.Members(), false)
	case jsonvalue.KindArray:
		dst = append(dst, typeArray)
		dst = appendCString(dst, name)
		dst = appendArray(dst, v.Elems())
	}
	return dst
}

func appendCString(dst []byte, s string) []byte {
	// BSON cstrings cannot contain NUL; JSON keys can. Escape NUL as
	// 0x01 0x01 (private convention — the comparison never hits it).
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			dst = append(dst, 0x01, 0x01)
		} else {
			dst = append(dst, s[i])
		}
	}
	return append(dst, 0x00)
}

// Unmarshal decodes a BSON document into the JSON value model. Object
// key order follows the document.
func Unmarshal(data []byte) (jsonvalue.Value, error) {
	v, rest, err := readDoc(data, false)
	if err != nil {
		return jsonvalue.Null(), err
	}
	if len(rest) != 0 {
		return jsonvalue.Null(), ErrCorrupt
	}
	// Unwrap the non-object root convention.
	if v.Len() == 1 && v.Members()[0].Key == "" {
		return v.Members()[0].Value, nil
	}
	return v, nil
}

func readDoc(data []byte, asArray bool) (jsonvalue.Value, []byte, error) {
	if len(data) < 5 {
		return jsonvalue.Null(), nil, ErrCorrupt
	}
	total := int(binary.LittleEndian.Uint32(data))
	if total < 5 || total > len(data) {
		return jsonvalue.Null(), nil, ErrCorrupt
	}
	body := data[4 : total-1]
	if data[total-1] != 0x00 {
		return jsonvalue.Null(), nil, ErrCorrupt
	}
	var members []jsonvalue.Member
	for len(body) > 0 {
		var m jsonvalue.Member
		var err error
		m, body, err = readElement(body)
		if err != nil {
			return jsonvalue.Null(), nil, err
		}
		members = append(members, m)
	}
	if asArray {
		elems := make([]jsonvalue.Value, len(members))
		for i, m := range members {
			elems[i] = m.Value
		}
		return jsonvalue.Array(elems...), data[total:], nil
	}
	return jsonvalue.Object(members...), data[total:], nil
}

func readElement(data []byte) (jsonvalue.Member, []byte, error) {
	if len(data) < 2 {
		return jsonvalue.Member{}, nil, ErrCorrupt
	}
	t := data[0]
	name, rest, err := readCString(data[1:])
	if err != nil {
		return jsonvalue.Member{}, nil, err
	}
	var v jsonvalue.Value
	switch t {
	case typeNull:
		v = jsonvalue.Null()
	case typeBool:
		if len(rest) < 1 {
			return jsonvalue.Member{}, nil, ErrCorrupt
		}
		v = jsonvalue.Bool(rest[0] != 0)
		rest = rest[1:]
	case typeInt32:
		if len(rest) < 4 {
			return jsonvalue.Member{}, nil, ErrCorrupt
		}
		v = jsonvalue.Int(int64(int32(binary.LittleEndian.Uint32(rest))))
		rest = rest[4:]
	case typeInt64:
		if len(rest) < 8 {
			return jsonvalue.Member{}, nil, ErrCorrupt
		}
		v = jsonvalue.Int(int64(binary.LittleEndian.Uint64(rest)))
		rest = rest[8:]
	case typeDouble:
		if len(rest) < 8 {
			return jsonvalue.Member{}, nil, ErrCorrupt
		}
		v = jsonvalue.Float(math.Float64frombits(binary.LittleEndian.Uint64(rest)))
		rest = rest[8:]
	case typeString:
		if len(rest) < 4 {
			return jsonvalue.Member{}, nil, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n < 1 || 4+n > len(rest) || rest[4+n-1] != 0 {
			return jsonvalue.Member{}, nil, ErrCorrupt
		}
		v = jsonvalue.String(string(rest[4 : 4+n-1]))
		rest = rest[4+n:]
	case typeDoc:
		var err error
		v, rest, err = readDoc(rest, false)
		if err != nil {
			return jsonvalue.Member{}, nil, err
		}
	case typeArray:
		var err error
		v, rest, err = readDoc(rest, true)
		if err != nil {
			return jsonvalue.Member{}, nil, err
		}
	default:
		return jsonvalue.Member{}, nil, ErrCorrupt
	}
	return jsonvalue.Member{Key: name, Value: v}, rest, nil
}

func readCString(data []byte) (string, []byte, error) {
	for i := 0; i < len(data); i++ {
		if data[i] == 0 {
			return string(data[:i]), data[i+1:], nil
		}
	}
	return "", nil, ErrCorrupt
}

// Lookup finds a top-level key without decoding the whole document —
// BSON's native access pattern: a linear scan over the element
// sequence, skipping payloads by their sizes. It returns the decoded
// value.
func Lookup(data []byte, key string) (jsonvalue.Value, bool) {
	if len(data) < 5 {
		return jsonvalue.Null(), false
	}
	total := int(binary.LittleEndian.Uint32(data))
	if total < 5 || total > len(data) {
		return jsonvalue.Null(), false
	}
	body := data[4 : total-1]
	for len(body) > 0 {
		t := body[0]
		name, rest, err := readCString(body[1:])
		if err != nil {
			return jsonvalue.Null(), false
		}
		size, ok := payloadSize(t, rest)
		if !ok {
			return jsonvalue.Null(), false
		}
		if name == key {
			m, _, err := readElement(body)
			if err != nil {
				return jsonvalue.Null(), false
			}
			return m.Value, true
		}
		body = rest[size:]
	}
	return jsonvalue.Null(), false
}

// LookupPath chains Lookup through nested documents.
func LookupPath(data []byte, keys ...string) (jsonvalue.Value, bool) {
	// Walk nested docs without re-encoding: find sub-document bytes.
	cur := data
	for i, k := range keys {
		if len(cur) < 5 {
			return jsonvalue.Null(), false
		}
		total := int(binary.LittleEndian.Uint32(cur))
		if total < 5 || total > len(cur) {
			return jsonvalue.Null(), false
		}
		body := cur[4 : total-1]
		found := false
		for len(body) > 0 {
			t := body[0]
			name, rest, err := readCString(body[1:])
			if err != nil {
				return jsonvalue.Null(), false
			}
			size, ok := payloadSize(t, rest)
			if !ok {
				return jsonvalue.Null(), false
			}
			if name == k {
				if i == len(keys)-1 {
					m, _, err := readElement(body)
					if err != nil {
						return jsonvalue.Null(), false
					}
					return m.Value, true
				}
				if t != typeDoc && t != typeArray {
					return jsonvalue.Null(), false
				}
				cur = rest[:size]
				found = true
				break
			}
			body = rest[size:]
		}
		if !found {
			return jsonvalue.Null(), false
		}
	}
	return jsonvalue.Null(), false
}

// payloadSize returns the byte size of an element payload (after the
// name) so scans can skip it.
func payloadSize(t byte, rest []byte) (int, bool) {
	switch t {
	case typeNull:
		return 0, true
	case typeBool:
		return 1, len(rest) >= 1
	case typeInt32:
		return 4, len(rest) >= 4
	case typeInt64, typeDouble:
		return 8, len(rest) >= 8
	case typeString:
		if len(rest) < 4 {
			return 0, false
		}
		n := int(binary.LittleEndian.Uint32(rest))
		return 4 + n, 4+n <= len(rest)
	case typeDoc, typeArray:
		if len(rest) < 4 {
			return 0, false
		}
		n := int(binary.LittleEndian.Uint32(rest))
		return n, n >= 5 && n <= len(rest)
	default:
		return 0, false
	}
}

// Keys returns the top-level keys in document order (diagnostics).
func Keys(data []byte) []string {
	v, err := Unmarshal(data)
	if err != nil || v.Kind() != jsonvalue.KindObject {
		return nil
	}
	keys := make([]string, 0, v.Len())
	for _, m := range v.Members() {
		keys = append(keys, m.Key)
	}
	sort.Strings(keys)
	return keys
}
