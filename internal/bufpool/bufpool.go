// Package bufpool implements the buffer pool that every segment block
// read flows through. The paper's host system (Umbra) manages tile
// blocks through its buffer manager; this package is the equivalent
// for the standalone engine: a capacity-bounded cache of decompressed
// block bytes with clock (second-chance) eviction, refcount pinning,
// and singleflight loading so concurrent scans of the same block pay
// for one disk read + decompression, not N.
//
// The pool caches *decompressed* payloads. Checksum verification and
// LZ4 decompression happen inside the load function on a miss; a hit
// returns bytes that are immediately scannable. Capacity is accounted
// in payload bytes, not entry counts, because block sizes vary by
// orders of magnitude (a tile's JSONB fallback vs. a bool column).
package bufpool

import (
	"sync"

	"repro/internal/obs"
)

// Key identifies one block: a pool-unique file ID (assigned by
// RegisterFile) plus the block's offset within the file. Offsets are
// unique per block within a segment, so (file, offset) is a stable
// identity even across reopens.
type Key struct {
	File uint64
	Off  uint64
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Resident is the current payload byte total; Capacity the bound.
	Resident int64
	Capacity int64
}

// Pool is a capacity-bounded block cache. The zero value is unusable;
// construct with New.
type Pool struct {
	mu       sync.Mutex
	capacity int64
	resident int64
	entries  map[Key]*entry
	ring     []*entry // clock hand sweeps this
	hand     int
	flights  map[Key]*flight
	nextFile uint64

	hits, misses, evictions int64
}

type entry struct {
	key   Key
	bytes []byte
	pins  int32
	ref   bool // clock reference bit: set on access, cleared by the hand
	dead  bool // removed from entries; awaiting ring compaction
}

type flight struct {
	done  chan struct{}
	bytes []byte
	err   error
}

// DefaultCapacity bounds the pool when the caller passes 0: 64 MiB,
// enough for a few hundred resident tile blocks.
const DefaultCapacity = 64 << 20

// New returns a pool bounded to capacity payload bytes.
func New(capacity int64) *Pool {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Pool{
		capacity: capacity,
		entries:  make(map[Key]*entry),
		flights:  make(map[Key]*flight),
	}
}

// RegisterFile allocates a pool-unique file ID for Key.File. Each
// opened segment registers once so blocks from different files never
// collide.
func (p *Pool) RegisterFile() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextFile++
	return p.nextFile
}

// Handle is a pinned reference to a cached block. The payload stays
// resident (never evicted) until Release.
type Handle struct {
	pool *Pool
	ent  *entry
	// Hit reports whether the payload was already resident (true) or
	// was loaded by this Get (false). Scans aggregate this into
	// per-query pool hit/miss counts.
	Hit bool
}

// Bytes returns the cached payload. Callers must not mutate it and
// must not retain it past Release.
func (h *Handle) Bytes() []byte { return h.ent.bytes }

// Release unpins the handle. After Release the payload may be evicted
// at any time; using Bytes' result afterwards is a data race with the
// allocator, not with the pool (bytes are never reused in place).
func (h *Handle) Release() {
	if h.ent == nil {
		return
	}
	h.pool.mu.Lock()
	h.ent.pins--
	h.pool.mu.Unlock()
	h.ent = nil
}

// Get returns a pinned handle for key, calling load (outside the pool
// lock) to produce the payload on a miss. Concurrent Gets for the same
// absent key share one load: the losers block until the winner's load
// returns. A failed load caches nothing and the error propagates to
// every waiter.
func (p *Pool) Get(key Key, load func() ([]byte, error)) (*Handle, error) {
	for {
		p.mu.Lock()
		if e, ok := p.entries[key]; ok {
			e.pins++
			e.ref = true
			p.hits++
			p.mu.Unlock()
			return &Handle{pool: p, ent: e, Hit: true}, nil
		}
		if f, ok := p.flights[key]; ok {
			// Someone else is loading this block; wait and retry. The
			// retry (rather than using f.bytes directly) keeps a single
			// code path for pin accounting.
			p.mu.Unlock()
			<-f.done
			if f.err != nil {
				return nil, f.err
			}
			continue
		}
		f := &flight{done: make(chan struct{})}
		p.flights[key] = f
		p.misses++
		p.mu.Unlock()

		f.bytes, f.err = load()

		p.mu.Lock()
		delete(p.flights, key)
		if f.err != nil {
			p.mu.Unlock()
			close(f.done)
			return nil, f.err
		}
		e := &entry{key: key, bytes: f.bytes, pins: 1, ref: true}
		p.entries[key] = e
		p.ring = append(p.ring, e)
		p.resident += int64(len(e.bytes))
		obs.BufpoolBytes.Add(float64(len(e.bytes)))
		p.evictLocked()
		p.mu.Unlock()
		close(f.done)
		return &Handle{pool: p, ent: e}, nil
	}
}

// evictLocked runs the clock hand until resident fits capacity or no
// entry is evictable (everything pinned or recently referenced —
// recently-referenced entries get their second chance even under
// pressure, but a full fruitless sweep stops to avoid spinning: the
// pool then temporarily exceeds capacity rather than deadlocking).
func (p *Pool) evictLocked() {
	fruitless := 0
	for p.resident > p.capacity && len(p.ring) > 0 && fruitless < 2*len(p.ring) {
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		e := p.ring[p.hand]
		switch {
		case e.pins > 0:
			fruitless++
			p.hand++
		case e.ref:
			e.ref = false
			fruitless++
			p.hand++
		default:
			e.dead = true
			delete(p.entries, e.key)
			p.resident -= int64(len(e.bytes))
			obs.BufpoolBytes.Add(-float64(len(e.bytes)))
			p.evictions++
			// Compact in place: move the last entry into the hole.
			last := len(p.ring) - 1
			p.ring[p.hand] = p.ring[last]
			p.ring[last] = nil
			p.ring = p.ring[:last]
			fruitless = 0
		}
	}
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
		Resident:  p.resident,
		Capacity:  p.capacity,
	}
}

// DropFile evicts every unpinned resident block of the given file
// (called when a segment closes so a long-lived shared pool does not
// accumulate blocks of files nobody can read anymore). Pinned blocks
// survive until released and are then evictable as usual.
func (p *Pool) DropFile(file uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.ring[:0]
	for _, e := range p.ring {
		if e.key.File == file && e.pins == 0 {
			delete(p.entries, e.key)
			p.resident -= int64(len(e.bytes))
			obs.BufpoolBytes.Add(-float64(len(e.bytes)))
			e.dead = true
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(p.ring); i++ {
		p.ring[i] = nil
	}
	p.ring = kept
	if p.hand > len(p.ring) {
		p.hand = 0
	}
}
