// Package bufpool implements the buffer pool that every segment block
// read flows through. The paper's host system (Umbra) manages tile
// blocks through its buffer manager; this package is the equivalent
// for the standalone engine: a capacity-bounded cache of decompressed
// block bytes with second-chance eviction, refcount pinning, and
// singleflight loading so concurrent scans of the same block pay for
// one disk read + decompression, not N.
//
// The pool caches *decompressed* payloads. Checksum verification and
// LZ4 decompression happen inside the load function on a miss; a hit
// returns bytes that are immediately scannable. Capacity is accounted
// in payload bytes, not entry counts, because block sizes vary by
// orders of magnitude (a tile's JSONB fallback vs. a bool column).
//
// Multi-tenant governance: every block is attributed to the tenant
// whose scan loaded it (GetAs), tenants can be given byte quotas
// (SetQuota), and eviction is usage-ranked — a tenant over its quota
// evicts its own blocks, and global capacity pressure evicts from the
// tenant using the largest fraction of its allowance first, so one
// tenant's scan storm cannot wash every other tenant's working set
// out of the cache.
package bufpool

import (
	"sync"

	"repro/internal/obs"
)

// Key identifies one block: a pool-unique file ID (assigned by
// RegisterFile) plus the block's offset within the file. Offsets are
// unique per block within a segment, so (file, offset) is a stable
// identity even across reopens.
type Key struct {
	File uint64
	Off  uint64
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Resident is the current payload byte total; Capacity the bound.
	Resident int64
	Capacity int64
	// PinnedBytes is the payload byte total of currently pinned
	// entries (handles not yet released). A quiesced pool — no scan in
	// flight — must report 0: pins leaking past a query (cancelled or
	// not) would make its blocks unevictable forever.
	PinnedBytes int64
}

// TenantStats is a snapshot of one tenant's pool accounting.
type TenantStats struct {
	// Resident is the payload bytes attributed to the tenant; Quota
	// its configured bound (0 = unquoted, bounded only by capacity).
	Resident int64
	Quota    int64
}

// Pool is a capacity-bounded block cache. The zero value is unusable;
// construct with New.
type Pool struct {
	mu       sync.Mutex
	capacity int64
	resident int64
	entries  map[Key]*entry
	ring     []*entry // eviction sweeps this
	flights  map[Key]*flight
	nextFile uint64
	objIDs   map[string]uint64 // RegisterObject memo: label → file ID
	tenants  map[string]*tenantAcct

	hits, misses, evictions int64
}

type entry struct {
	key    Key
	bytes  []byte
	tenant string // loader attribution (usage-ranked eviction)
	pins   int32
	ref    bool // second-chance bit: set on access, cleared by sweeps
	dead   bool // removed from entries; awaiting ring compaction
	// warmed marks entries inserted by Put (pre-scan fetch or async
	// readahead) and not yet hit: the first Get on one reports
	// Handle.Warmed so scans don't double-count the block (the fetch
	// pass already accounted the miss). prefetched additionally marks
	// asynchronous readahead inserts: the first Get counts as a
	// prefetch hit. Both clear on that first Get.
	warmed     bool
	prefetched bool
}

// tenantAcct is one tenant's resident-byte ledger within a pool.
type tenantAcct struct {
	resident int64
	quota    int64 // 0 = unquoted
}

type flight struct {
	done   chan struct{}
	bytes  []byte
	err    error
	tenant string
}

// DefaultCapacity bounds the pool when the caller passes 0: 64 MiB,
// enough for a few hundred resident tile blocks.
const DefaultCapacity = 64 << 20

// New returns a pool bounded to capacity payload bytes.
func New(capacity int64) *Pool {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Pool{
		capacity: capacity,
		entries:  make(map[Key]*entry),
		flights:  make(map[Key]*flight),
		objIDs:   make(map[string]uint64),
		tenants:  make(map[string]*tenantAcct),
	}
}

// RegisterFile allocates a pool-unique file ID for Key.File. Each
// opened segment registers once so blocks from different files never
// collide.
func (p *Pool) RegisterFile() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextFile++
	return p.nextFile
}

// RegisterObject returns the pool-unique file ID for a store object
// label (store label + "/" + object name), memoized: reopening the
// same immutable object maps to the same ID, so its cached blocks
// survive the reopen. Distinct labels never share an ID.
func (p *Pool) RegisterObject(label string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, ok := p.objIDs[label]; ok {
		return id
	}
	p.nextFile++
	p.objIDs[label] = p.nextFile
	return p.nextFile
}

// Contains reports whether key's payload is resident (no pin taken,
// no hit/miss accounting). Readahead planning filters already-cached
// blocks through this before issuing coalesced reads.
func (p *Pool) Contains(key Key) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.entries[key]
	return ok
}

// Put inserts an unpinned payload for key if neither resident nor
// being loaded, reporting whether it was inserted. This is the
// readahead insert path: coalesced and prefetched reads publish their
// blocks for later Gets without counting as hits or misses.
// prefetched marks the entry for prefetch-hit accounting on its first
// Get.
func (p *Pool) Put(tenant string, key Key, payload []byte, prefetched bool) bool {
	p.mu.Lock()
	if _, ok := p.entries[key]; ok {
		p.mu.Unlock()
		return false
	}
	if _, ok := p.flights[key]; ok {
		// A demand load is already in flight; let it win (one code path
		// for its waiters' pin accounting).
		p.mu.Unlock()
		return false
	}
	e := &entry{key: key, bytes: payload, tenant: tenant, ref: true, warmed: true, prefetched: prefetched}
	p.entries[key] = e
	p.ring = append(p.ring, e)
	p.chargeLocked(e, 1)
	if tenant != "" {
		p.enforceTenantLocked(tenant)
	}
	p.evictLocked()
	p.mu.Unlock()
	return true
}

// SetQuota bounds tenant's resident bytes in this pool. Loading past
// the quota evicts the tenant's own unpinned blocks first, so a noisy
// tenant degrades its own hit ratio, not its neighbors'. A quota of 0
// removes the bound (capacity still applies). The quota is also
// mirrored to the tenant's metrics gauge.
func (p *Pool) SetQuota(tenant string, quota int64) {
	if tenant == "" {
		return
	}
	if quota < 0 {
		quota = 0
	}
	p.mu.Lock()
	p.acctLocked(tenant).quota = quota
	p.enforceTenantLocked(tenant)
	p.mu.Unlock()
	obs.Tenants.Get(tenant).PoolQuota.Set(float64(quota))
}

// Quota returns tenant's configured byte quota (0 = unquoted).
func (p *Pool) Quota(tenant string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a, ok := p.tenants[tenant]; ok {
		return a.quota
	}
	return 0
}

// acctLocked returns tenant's ledger, creating it if needed.
func (p *Pool) acctLocked(tenant string) *tenantAcct {
	a, ok := p.tenants[tenant]
	if !ok {
		a = &tenantAcct{}
		p.tenants[tenant] = a
	}
	return a
}

// Handle is a pinned reference to a cached block. The payload stays
// resident (never evicted) until Release.
type Handle struct {
	pool *Pool
	ent  *entry
	// Hit reports whether the payload was already resident (true) or
	// was loaded by this Get (false). Scans aggregate this into
	// per-query pool hit/miss counts.
	Hit bool
	// Warmed reports that this hit was the first access to a block a
	// fetch pass inserted via Put (scans skip hit accounting: the
	// fetch pass already accounted the miss).
	Warmed bool
	// Prefetched reports that this hit was the first access to an
	// asynchronous-readahead-inserted block (scans count it as a
	// prefetch hit). Implies Warmed.
	Prefetched bool
}

// Bytes returns the cached payload. Callers must not mutate it and
// must not retain it past Release.
func (h *Handle) Bytes() []byte { return h.ent.bytes }

// Release unpins the handle. After Release the payload may be evicted
// at any time; using Bytes' result afterwards is a data race with the
// allocator, not with the pool (bytes are never reused in place).
func (h *Handle) Release() {
	if h.ent == nil {
		return
	}
	p := h.pool
	p.mu.Lock()
	h.ent.pins--
	if h.ent.pins == 0 {
		obs.BufpoolPinnedBytes.Add(-float64(len(h.ent.bytes)))
		// A block pinned through the last insert may have carried its
		// tenant (or the pool) over the bound; the unpin is the first
		// moment it becomes evictable, so enforce here rather than
		// waiting for the next load.
		if t := h.ent.tenant; t != "" {
			p.enforceTenantLocked(t)
		}
		if p.resident > p.capacity {
			p.evictLocked()
		}
	}
	p.mu.Unlock()
	h.ent = nil
}

// Get returns a pinned handle for key, calling load (outside the pool
// lock) to produce the payload on a miss. Concurrent Gets for the same
// absent key share one load: the losers block until the winner's load
// returns. A failed load caches nothing and the error propagates to
// every waiter. Blocks loaded through Get carry no tenant
// attribution; tenanted scans use GetAs.
func (p *Pool) Get(key Key, load func() ([]byte, error)) (*Handle, error) {
	return p.GetAs("", key, load)
}

// GetAs is Get with tenant attribution: a loaded block's bytes charge
// the tenant's ledger, and the insert enforces the tenant's quota by
// evicting its own unpinned blocks. A hit on a block another tenant
// loaded stays attributed to the loader — attribution follows who
// paid the I/O, and a shared hot block should not bounce between
// ledgers on every access.
func (p *Pool) GetAs(tenant string, key Key, load func() ([]byte, error)) (*Handle, error) {
	for {
		p.mu.Lock()
		if e, ok := p.entries[key]; ok {
			if e.pins == 0 {
				obs.BufpoolPinnedBytes.Add(float64(len(e.bytes)))
			}
			e.pins++
			e.ref = true
			p.hits++
			warmed, pf := e.warmed, e.prefetched
			e.warmed, e.prefetched = false, false
			p.mu.Unlock()
			if pf {
				obs.StorePrefetchHits.Add(1)
			}
			return &Handle{pool: p, ent: e, Hit: true, Warmed: warmed, Prefetched: pf}, nil
		}
		if f, ok := p.flights[key]; ok {
			// Someone else is loading this block; wait and retry. The
			// retry (rather than using f.bytes directly) keeps a single
			// code path for pin accounting.
			p.mu.Unlock()
			<-f.done
			if f.err != nil {
				return nil, f.err
			}
			continue
		}
		f := &flight{done: make(chan struct{}), tenant: tenant}
		p.flights[key] = f
		p.misses++
		p.mu.Unlock()

		f.bytes, f.err = load()

		p.mu.Lock()
		delete(p.flights, key)
		if f.err != nil {
			p.mu.Unlock()
			close(f.done)
			return nil, f.err
		}
		e := &entry{key: key, bytes: f.bytes, tenant: tenant, pins: 1, ref: true}
		obs.BufpoolPinnedBytes.Add(float64(len(e.bytes)))
		p.entries[key] = e
		p.ring = append(p.ring, e)
		p.chargeLocked(e, 1)
		if tenant != "" {
			p.enforceTenantLocked(tenant)
		}
		p.evictLocked()
		p.mu.Unlock()
		close(f.done)
		return &Handle{pool: p, ent: e}, nil
	}
}

// chargeLocked books an entry's bytes into the pool-wide and
// per-tenant ledgers and their metrics gauges; sign is +1 on insert,
// -1 on eviction.
func (p *Pool) chargeLocked(e *entry, sign int64) {
	n := sign * int64(len(e.bytes))
	p.resident += n
	obs.BufpoolBytes.Add(float64(n))
	if e.tenant != "" {
		p.acctLocked(e.tenant).resident += n
		obs.Tenants.Get(e.tenant).PoolBytes.Add(float64(n))
	}
}

// removeLocked evicts ring slot i: unbooks the entry and compacts the
// ring in place (the last entry moves into the hole).
func (p *Pool) removeLocked(i int) {
	e := p.ring[i]
	e.dead = true
	delete(p.entries, e.key)
	p.chargeLocked(e, -1)
	p.evictions++
	last := len(p.ring) - 1
	p.ring[i] = p.ring[last]
	p.ring[last] = nil
	p.ring = p.ring[:last]
}

// victimLocked picks one evictable ring slot belonging to tenant
// (any tenant when ""): unpinned, preferring entries without the
// second-chance bit; an entry passed over for its ref bit loses it,
// so repeated pressure degrades gracefully to LRU-ish behavior.
// Returns -1 when the tenant has nothing evictable (all pinned).
func (p *Pool) victimLocked(tenant string) int {
	fallback := -1
	for i, e := range p.ring {
		if e.pins > 0 || (tenant != "" && e.tenant != tenant) {
			continue
		}
		if !e.ref {
			return i
		}
		e.ref = false // second chance spent
		if fallback < 0 {
			fallback = i
		}
	}
	return fallback
}

// enforceTenantLocked evicts tenant's own unpinned blocks until its
// resident bytes fit its quota. With everything pinned the quota is
// temporarily exceeded (like capacity) and re-enforced as pins drop
// (Handle.Release) or on subsequent loads.
func (p *Pool) enforceTenantLocked(tenant string) {
	a, ok := p.tenants[tenant]
	if !ok || a.quota <= 0 {
		return
	}
	for a.resident > a.quota {
		i := p.victimLocked(tenant)
		if i < 0 {
			return
		}
		p.removeLocked(i)
	}
}

// usageLocked is a tenant's fraction of its allowance: resident/quota
// for quoted tenants, resident/capacity otherwise (untenanted bytes
// rank by capacity share too). Usage-ranked global eviction targets
// the highest fraction first.
func (p *Pool) usageLocked(tenant string) float64 {
	var resident int64
	quota := p.capacity
	if tenant == "" {
		resident = p.resident
		for _, a := range p.tenants {
			resident -= a.resident
		}
	} else if a, ok := p.tenants[tenant]; ok {
		resident = a.resident
		if a.quota > 0 {
			quota = a.quota
		}
	}
	if quota <= 0 {
		return 0
	}
	return float64(resident) / float64(quota)
}

// evictLocked enforces the global capacity: while over, evict one
// block from the tenant with the highest allowance usage (sneller's
// tenant-cache policy: heaviest relative user pays first). A heaviest
// tenant with everything pinned falls through to any evictable block;
// when nothing at all is evictable the pool temporarily exceeds
// capacity rather than deadlocking.
func (p *Pool) evictLocked() {
	for p.resident > p.capacity && len(p.ring) > 0 {
		heaviest, top, found := "", 0.0, false
		seen := map[string]bool{}
		for _, e := range p.ring {
			if e.pins > 0 || seen[e.tenant] {
				continue
			}
			seen[e.tenant] = true
			if u := p.usageLocked(e.tenant); !found || u > top {
				heaviest, top, found = e.tenant, u, true
			}
		}
		i := -1
		if found {
			i = p.victimLocked(heaviest)
		}
		if i < 0 && heaviest != "" {
			i = p.victimLocked("")
		}
		if i < 0 {
			return // everything pinned
		}
		p.removeLocked(i)
	}
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var pinned int64
	for _, e := range p.ring {
		if e.pins > 0 {
			pinned += int64(len(e.bytes))
		}
	}
	return Stats{
		Hits:        p.hits,
		Misses:      p.misses,
		Evictions:   p.evictions,
		Resident:    p.resident,
		Capacity:    p.capacity,
		PinnedBytes: pinned,
	}
}

// TenantStats returns tenant's ledger snapshot.
func (p *Pool) TenantStats(tenant string) TenantStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a, ok := p.tenants[tenant]; ok {
		return TenantStats{Resident: a.resident, Quota: a.quota}
	}
	return TenantStats{}
}

// DropFile evicts every unpinned resident block of the given file
// (called when a segment closes so a long-lived shared pool does not
// accumulate blocks of files nobody can read anymore). Pinned blocks
// survive until released and are then evictable as usual.
func (p *Pool) DropFile(file uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.ring[:0]
	for _, e := range p.ring {
		if e.key.File == file && e.pins == 0 {
			delete(p.entries, e.key)
			p.chargeLocked(e, -1)
			e.dead = true
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(p.ring); i++ {
		p.ring[i] = nil
	}
	p.ring = kept
}
