package bufpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func payload(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestGetHitMiss(t *testing.T) {
	p := New(1 << 20)
	f := p.RegisterFile()
	loads := 0
	get := func() *Handle {
		h, err := p.Get(Key{File: f, Off: 0}, func() ([]byte, error) {
			loads++
			return payload(100, 0xAB), nil
		})
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		return h
	}
	h1 := get()
	if h1.Hit {
		t.Error("first Get: want miss")
	}
	if len(h1.Bytes()) != 100 || h1.Bytes()[0] != 0xAB {
		t.Error("payload mismatch")
	}
	h2 := get()
	if !h2.Hit {
		t.Error("second Get: want hit")
	}
	if loads != 1 {
		t.Errorf("loads = %d, want 1", loads)
	}
	h1.Release()
	h2.Release()
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.Resident != 100 {
		t.Errorf("resident = %d, want 100", st.Resident)
	}
}

func TestLoadErrorNotCached(t *testing.T) {
	p := New(1 << 20)
	f := p.RegisterFile()
	boom := errors.New("boom")
	if _, err := p.Get(Key{File: f}, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed load must not leave a flight or an entry behind.
	h, err := p.Get(Key{File: f}, func() ([]byte, error) { return payload(10, 1), nil })
	if err != nil {
		t.Fatalf("retry Get: %v", err)
	}
	if h.Hit {
		t.Error("retry after failed load: want miss")
	}
	h.Release()
}

func TestEviction(t *testing.T) {
	p := New(1000)
	f := p.RegisterFile()
	// Fill with 10 blocks of 200 bytes; capacity holds 5.
	for i := 0; i < 10; i++ {
		h, err := p.Get(Key{File: f, Off: uint64(i)}, func() ([]byte, error) {
			return payload(200, byte(i)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	st := p.Stats()
	if st.Resident > st.Capacity {
		t.Errorf("resident %d exceeds capacity %d with nothing pinned", st.Resident, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Error("want evictions > 0")
	}
}

func TestPinnedBlocksSurviveEviction(t *testing.T) {
	p := New(1000)
	f := p.RegisterFile()
	pinned, err := p.Get(Key{File: f, Off: 999}, func() ([]byte, error) {
		return payload(400, 0xEE), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		h, err := p.Get(Key{File: f, Off: uint64(i)}, func() ([]byte, error) {
			return payload(300, byte(i)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	// The pinned block must still be resident and intact.
	h, err := p.Get(Key{File: f, Off: 999}, func() ([]byte, error) {
		t.Error("pinned block was evicted; load re-ran")
		return payload(400, 0xEE), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Hit {
		t.Error("pinned block: want hit")
	}
	if pinned.Bytes()[0] != 0xEE {
		t.Error("pinned payload corrupted")
	}
	h.Release()
	pinned.Release()
}

func TestSingleflight(t *testing.T) {
	p := New(1 << 20)
	f := p.RegisterFile()
	var loads atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	const goroutines = 16
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := p.Get(Key{File: f, Off: 7}, func() ([]byte, error) {
				loads.Add(1)
				<-release // hold the flight open so everyone piles up
				return payload(64, 7), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			h.Release()
		}()
	}
	close(release)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Errorf("loads = %d, want 1 (singleflight)", n)
	}
	st := p.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Errorf("hits = %d, want %d", st.Hits, goroutines-1)
	}
}

func TestConcurrentChurn(t *testing.T) {
	p := New(10_000) // small: forces constant eviction
	f := p.RegisterFile()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				off := uint64((g*31 + i) % 40)
				h, err := p.Get(Key{File: f, Off: off}, func() ([]byte, error) {
					return payload(512, byte(off)), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				b := h.Bytes()
				if len(b) != 512 || b[0] != byte(off) {
					t.Errorf("block %d: corrupt payload", off)
				}
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*500)
	}
}

func TestDropFile(t *testing.T) {
	p := New(1 << 20)
	f1, f2 := p.RegisterFile(), p.RegisterFile()
	for _, f := range []uint64{f1, f2} {
		h, err := p.Get(Key{File: f, Off: 1}, func() ([]byte, error) {
			return payload(100, byte(f)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	p.DropFile(f1)
	if st := p.Stats(); st.Resident != 100 {
		t.Errorf("resident after DropFile = %d, want 100", st.Resident)
	}
	// f1's block is gone (miss), f2's survives (hit).
	h, err := p.Get(Key{File: f1, Off: 1}, func() ([]byte, error) { return payload(100, 1), nil })
	if err != nil {
		t.Fatal(err)
	}
	if h.Hit {
		t.Error("dropped block: want miss")
	}
	h.Release()
	h2, err := p.Get(Key{File: f2, Off: 1}, func() ([]byte, error) { return payload(100, 2), nil })
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Hit {
		t.Error("other file's block: want hit")
	}
	h2.Release()
}

func TestCapacityDefaults(t *testing.T) {
	for _, c := range []int64{0, -5} {
		p := New(c)
		if got := p.Stats().Capacity; got != DefaultCapacity {
			t.Errorf("New(%d).Capacity = %d, want %d", c, got, DefaultCapacity)
		}
	}
}

func BenchmarkGetHit(b *testing.B) {
	p := New(1 << 20)
	f := p.RegisterFile()
	h, _ := p.Get(Key{File: f}, func() ([]byte, error) { return payload(4096, 1), nil })
	h.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := p.Get(Key{File: f}, func() ([]byte, error) { return nil, fmt.Errorf("unexpected load") })
		if err != nil {
			b.Fatal(err)
		}
		h.Release()
	}
}
