package bufpool

import (
	"fmt"
	"testing"
)

// loadAs fetches a block for a tenant and immediately releases the
// handle (the scan-path usage pattern).
func loadAs(t *testing.T, p *Pool, tenant string, f uint64, off uint64, size int) {
	t.Helper()
	h, err := p.GetAs(tenant, Key{File: f, Off: off}, func() ([]byte, error) {
		return payload(size, byte(off)), nil
	})
	if err != nil {
		t.Fatalf("GetAs(%s, off=%d): %v", tenant, off, err)
	}
	h.Release()
}

func TestTenantQuotaEnforced(t *testing.T) {
	p := New(1 << 20)
	f := p.RegisterFile()
	p.SetQuota("small", 300)
	if got := p.Quota("small"); got != 300 {
		t.Fatalf("Quota = %d, want 300", got)
	}
	// Three 100-byte blocks fit exactly; the fourth must evict one of
	// the tenant's own blocks, keeping resident <= quota.
	for off := uint64(0); off < 4; off++ {
		loadAs(t, p, "small", f, off, 100)
		if ts := p.TenantStats("small"); ts.Resident > 300 {
			t.Fatalf("after block %d: resident %d > quota 300", off, ts.Resident)
		}
	}
	ts := p.TenantStats("small")
	if ts.Resident != 300 || ts.Quota != 300 {
		t.Fatalf("TenantStats = %+v, want resident 300 quota 300", ts)
	}
	// The pool is nowhere near capacity: the eviction was quota-driven.
	if st := p.Stats(); st.Evictions == 0 {
		t.Fatal("expected a quota eviction")
	}
}

func TestTenantQuotaDoesNotEvictOtherTenants(t *testing.T) {
	p := New(1 << 20)
	f := p.RegisterFile()
	p.SetQuota("a", 200)
	loadAs(t, p, "b", f, 100, 100)
	loadAs(t, p, "b", f, 101, 100)
	// Tenant a churns through 5 blocks under a 2-block quota.
	for off := uint64(0); off < 5; off++ {
		loadAs(t, p, "a", f, off, 100)
	}
	if ts := p.TenantStats("b"); ts.Resident != 200 {
		t.Fatalf("tenant b resident = %d, want 200 (a's quota evictions must hit a's own blocks)", ts.Resident)
	}
	if ts := p.TenantStats("a"); ts.Resident > 200 {
		t.Fatalf("tenant a resident = %d > quota 200", ts.Resident)
	}
}

func TestCapacityEvictionPrefersHeaviestTenant(t *testing.T) {
	// Capacity 1000; hog loads 800 bytes, light 100. The next insert
	// overflows capacity and must evict from the hog, not the light
	// tenant.
	p := New(1000)
	f := p.RegisterFile()
	for off := uint64(0); off < 8; off++ {
		loadAs(t, p, "hog", f, off, 100)
	}
	loadAs(t, p, "light", f, 100, 100)
	loadAs(t, p, "light", f, 101, 100) // 1000 resident: at capacity
	loadAs(t, p, "hog", f, 200, 100)   // overflow
	if ts := p.TenantStats("light"); ts.Resident != 200 {
		t.Fatalf("light tenant resident = %d, want 200 (usage-ranked eviction should charge the hog)", ts.Resident)
	}
	if st := p.Stats(); st.Resident > 1000 {
		t.Fatalf("pool resident %d > capacity", st.Resident)
	}
}

func TestQuotaShrinkEvictsImmediately(t *testing.T) {
	p := New(1 << 20)
	f := p.RegisterFile()
	for off := uint64(0); off < 4; off++ {
		loadAs(t, p, "t", f, off, 100)
	}
	if ts := p.TenantStats("t"); ts.Resident != 400 {
		t.Fatalf("resident = %d, want 400", ts.Resident)
	}
	p.SetQuota("t", 150)
	if ts := p.TenantStats("t"); ts.Resident > 150 {
		t.Fatalf("after shrink: resident %d > quota 150", ts.Resident)
	}
}

func TestPinnedBlocksSurviveQuota(t *testing.T) {
	p := New(1 << 20)
	f := p.RegisterFile()
	p.SetQuota("t", 100)
	h, err := p.GetAs("t", Key{File: f, Off: 0}, func() ([]byte, error) {
		return payload(100, 1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Over quota while the first block is pinned: nothing evictable,
	// the tenant temporarily exceeds its quota rather than deadlocking
	// or corrupting the pinned block.
	loadAs(t, p, "t", f, 1, 100)
	if got := h.Bytes()[0]; got != 1 {
		t.Fatal("pinned payload corrupted")
	}
	if st := p.Stats(); st.PinnedBytes != 100 {
		t.Fatalf("PinnedBytes = %d, want 100", st.PinnedBytes)
	}
	h.Release()
	if st := p.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("PinnedBytes after release = %d, want 0", st.PinnedBytes)
	}
	// The next quota enforcement brings the tenant back under.
	loadAs(t, p, "t", f, 2, 100)
	if ts := p.TenantStats("t"); ts.Resident > 100 {
		t.Fatalf("resident %d > quota 100 with nothing pinned", ts.Resident)
	}
}

func TestDropFileUnbooksTenant(t *testing.T) {
	p := New(1 << 20)
	f := p.RegisterFile()
	for off := uint64(0); off < 3; off++ {
		loadAs(t, p, "t", f, off, 100)
	}
	p.DropFile(f)
	if ts := p.TenantStats("t"); ts.Resident != 0 {
		t.Fatalf("after DropFile: tenant resident = %d, want 0", ts.Resident)
	}
	if st := p.Stats(); st.Resident != 0 {
		t.Fatalf("after DropFile: pool resident = %d, want 0", st.Resident)
	}
}

func TestGetDelegatesUnattributed(t *testing.T) {
	p := New(1 << 20)
	f := p.RegisterFile()
	h, err := p.Get(Key{File: f, Off: 0}, func() ([]byte, error) {
		return payload(64, 7), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	// A tenant hitting the unattributed block is a hit, not a charge.
	h2, err := p.GetAs("t", Key{File: f, Off: 0}, func() ([]byte, error) {
		return nil, fmt.Errorf("must not reload")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Hit {
		t.Fatal("want hit")
	}
	h2.Release()
	if ts := p.TenantStats("t"); ts.Resident != 0 {
		t.Fatalf("hit on another loader's block charged the tenant: %d", ts.Resident)
	}
}

func TestReleaseReenforcesQuota(t *testing.T) {
	p := New(1 << 20)
	f := p.RegisterFile()
	p.SetQuota("t", 100)
	// Pin two blocks at once: the tenant sits at 200 > quota with
	// nothing evictable.
	h1, err := p.GetAs("t", Key{File: f, Off: 0}, func() ([]byte, error) {
		return payload(100, 1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := p.GetAs("t", Key{File: f, Off: 1}, func() ([]byte, error) {
		return payload(100, 2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ts := p.TenantStats("t"); ts.Resident != 200 {
		t.Fatalf("resident = %d, want 200 (both pinned)", ts.Resident)
	}
	// Releasing is the first evictable moment: the quota re-enforces
	// without waiting for another load.
	h1.Release()
	if ts := p.TenantStats("t"); ts.Resident > 100 {
		t.Fatalf("after first release: resident %d > quota 100", ts.Resident)
	}
	h2.Release()
	if ts := p.TenantStats("t"); ts.Resident > 100 {
		t.Fatalf("after final release: resident %d > quota 100", ts.Resident)
	}
	if st := p.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("PinnedBytes = %d, want 0", st.PinnedBytes)
	}
}
