// Package jsongen produces pseudo-random JSON documents for property
// tests and fuzz-style round-trip checks. All generation is driven by
// an explicit *rand.Rand so failures are reproducible from the seed.
package jsongen

import (
	"math"
	"math/rand"
	"reflect"
	"strings"

	"repro/internal/jsonvalue"
)

// Gen wraps a generated value and implements testing/quick.Generator,
// so property tests can take a Gen parameter and receive random
// documents.
type Gen struct{ V jsonvalue.Value }

// Generate implements quick.Generator.
func (Gen) Generate(r *rand.Rand, size int) reflect.Value {
	depth := 1 + r.Intn(4)
	return reflect.ValueOf(Gen{V: Random(r, depth)})
}

// Random returns a random JSON value with at most maxDepth levels of
// nesting below it.
func Random(r *rand.Rand, maxDepth int) jsonvalue.Value {
	if maxDepth <= 0 {
		return randomScalar(r)
	}
	switch r.Intn(8) {
	case 0:
		return randomArray(r, maxDepth)
	case 1, 2:
		return randomObject(r, maxDepth)
	default:
		return randomScalar(r)
	}
}

// RandomObject returns a random JSON object (never a scalar root),
// which is what document stores ingest.
func RandomObject(r *rand.Rand, maxDepth int) jsonvalue.Value {
	return randomObject(r, maxDepth)
}

func randomScalar(r *rand.Rand) jsonvalue.Value {
	switch r.Intn(10) {
	case 0:
		return jsonvalue.Null()
	case 1:
		return jsonvalue.Bool(r.Intn(2) == 0)
	case 2, 3:
		// Mix of small and large magnitudes to exercise all integer
		// widths of the binary format.
		switch r.Intn(4) {
		case 0:
			return jsonvalue.Int(int64(r.Intn(8)))
		case 1:
			return jsonvalue.Int(int64(int8(r.Int())))
		case 2:
			return jsonvalue.Int(int64(int32(r.Int())))
		default:
			return jsonvalue.Int(int64(r.Uint64()))
		}
	case 4, 5:
		switch r.Intn(4) {
		case 0:
			return jsonvalue.Float(float64(int16(r.Int()))) // half-exact
		case 1:
			return jsonvalue.Float(float64(float32(r.NormFloat64()))) // single-exact
		case 2:
			return jsonvalue.Float(r.NormFloat64() * math.Pow(10, float64(r.Intn(20)-10)))
		default:
			return jsonvalue.Float(r.Float64())
		}
	default:
		return jsonvalue.String(RandomString(r))
	}
}

// RandomString generates strings that stress escaping, unicode, and
// numeric-string detection.
func RandomString(r *rand.Rand) string {
	switch r.Intn(6) {
	case 0:
		// Numeric-looking strings to hit the §5.2 detector, including
		// shapes it must reject (leading zeros, exponents).
		cands := []string{"0", "12", "-7", "3.50", "0.001", "-0.5", "007",
			"1e5", "12.", ".5", "-0", "999999999999999999999", "19.99", "100.00"}
		return cands[r.Intn(len(cands))]
	case 1:
		return "" // empty
	case 2:
		var sb strings.Builder
		n := r.Intn(12)
		specials := []rune{'"', '\\', '\n', '\t', 'é', '😀', 'a', 'b', ' ', '/', '\x01'}
		for i := 0; i < n; i++ {
			sb.WriteRune(specials[r.Intn(len(specials))])
		}
		return sb.String()
	default:
		const letters = "abcdefghijklmnopqrstuvwxyzABC 0123456789_-"
		n := r.Intn(20)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return string(b)
	}
}

func randomArray(r *rand.Rand, maxDepth int) jsonvalue.Value {
	n := r.Intn(6)
	elems := make([]jsonvalue.Value, n)
	for i := range elems {
		elems[i] = Random(r, maxDepth-1)
	}
	return jsonvalue.Array(elems...)
}

func randomObject(r *rand.Rand, maxDepth int) jsonvalue.Value {
	n := r.Intn(6)
	seen := map[string]bool{}
	var members []jsonvalue.Member
	for i := 0; i < n; i++ {
		key := RandomKey(r)
		if seen[key] {
			continue
		}
		seen[key] = true
		members = append(members, jsonvalue.Member{Key: key, Value: Random(r, maxDepth-1)})
	}
	return jsonvalue.Object(members...)
}

// RandomKey returns a key from a small pool (so generated documents
// share structure, as real data sets do) plus occasional fresh keys.
func RandomKey(r *rand.Rand) string {
	pool := []string{"id", "name", "user", "text", "create", "geo", "lat",
		"lon", "replies", "tags", "score", "type", "url", "k"}
	if r.Intn(10) == 0 {
		return "x" + RandomString(r)
	}
	return pool[r.Intn(len(pool))]
}
