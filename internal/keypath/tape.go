// Tape-driven key-path collection: the same walk as Collect, but over
// a jsontape.Doc — no jsonvalue tree is built, path strings are
// rendered incrementally into one reused byte buffer, and subtrees
// past the array-slot cap are skipped in O(1) per subtree.
package keypath

import (
	"strconv"
	"unicode/utf8"

	"repro/internal/jsontape"
)

// TypeOfKind maps a tape node kind to its paired primitive type,
// mirroring TypeOf over jsonvalue kinds.
func TypeOfKind(k jsontape.Kind) ValueType {
	switch k {
	case jsontape.KTrue, jsontape.KFalse:
		return TypeBool
	case jsontape.KInt:
		return TypeBigInt
	case jsontape.KFloat, jsontape.KFloatPre:
		return TypeDouble
	case jsontape.KString, jsontape.KStringEsc:
		return TypeString
	default:
		return TypeNull
	}
}

// TapeCollectFunc receives each leaf of a tape walk: the encoded path
// (valid only for the duration of the call — it aliases the walker's
// buffer), the paired primitive type, and the tape node.
type TapeCollectFunc func(pathEnc []byte, t ValueType, n jsontape.Node)

// CollectTape walks a parsed tape and reports every key-value leaf,
// with semantics identical to Collect over the materialized tree:
// scalars (including null) are leaves, empty containers report
// TypeObject/TypeArray, a scalar root reports nothing, and array
// elements are visited up to maxArraySlots (<=0 selects
// DefaultMaxArraySlots). Paths arrive already encoded (Path.Encode
// form). It returns the number of subtrees skipped by the array-slot
// cap.
func CollectTape(d *jsontape.Doc, maxArraySlots int, fn TapeCollectFunc) (subtreesSkipped int) {
	if maxArraySlots <= 0 {
		maxArraySlots = DefaultMaxArraySlots
	}
	w := tapeWalker{d: d, maxSlots: maxArraySlots, fn: fn}
	w.visit(0, 0, false)
	return w.skipped
}

type tapeWalker struct {
	d        *jsontape.Doc
	maxSlots int
	fn       TapeCollectFunc
	path     []byte // incrementally rendered Path.Encode form
	key      []byte // scratch for decoding escaped keys
	skipped  int
}

// visit processes the subtree at tape index i. prevWasKey carries the
// Encode separator state: '.' joins two adjacent key segments only.
func (w *tapeWalker) visit(i, depth int, prevWasKey bool) {
	d := w.d
	switch d.KindAt(i) {
	case jsontape.KObj:
		n := d.At(i)
		count := n.Count()
		if count == 0 {
			if depth > 0 {
				w.fn(w.path, TypeObject, n)
			}
			return
		}
		j := i + 1
		for k := 0; k < count; k++ {
			save := len(w.path)
			w.appendKeySegment(d.At(j), prevWasKey)
			w.visit(j+1, depth+1, true)
			w.path = w.path[:save]
			j = d.Skip(j + 1)
		}
	case jsontape.KArr:
		n := d.At(i)
		count := n.Count()
		if count == 0 {
			if depth > 0 {
				w.fn(w.path, TypeArray, n)
			}
			return
		}
		visit := count
		if visit > w.maxSlots {
			visit = w.maxSlots
			w.skipped += count - visit
		}
		j := i + 1
		for k := 0; k < visit; k++ {
			save := len(w.path)
			w.path = append(w.path, '[')
			w.path = strconv.AppendInt(w.path, int64(k), 10)
			w.path = append(w.path, ']')
			w.visit(j, depth+1, false)
			w.path = w.path[:save]
			j = d.Skip(j)
		}
	default:
		if depth == 0 {
			return // scalar root: no key-value pair to speak of
		}
		w.fn(w.path, TypeOfKind(d.KindAt(i)), d.At(i))
	}
}

// appendKeySegment renders one object-key segment exactly as
// Path.Encode does: '.' before it iff the previous segment was a key,
// '.', '[', ']', '\' escaped with '\', and "\e" for the empty key.
// Unescaped valid-UTF-8 keys (the common case) are rendered straight
// from the raw bytes.
func (w *tapeWalker) appendKeySegment(keyNode jsontape.Node, prevWasKey bool) {
	if prevWasKey {
		w.path = append(w.path, '.')
	}
	key, escaped := keyNode.RawString()
	if escaped || !utf8.Valid(key) {
		w.key = keyNode.AppendString(w.key[:0])
		key = w.key
	}
	if len(key) == 0 {
		w.path = append(w.path, '\\', 'e')
		return
	}
	for _, c := range key {
		switch c {
		case '.', '[', '\\', ']':
			w.path = append(w.path, '\\')
		}
		w.path = append(w.path, c)
	}
}

// LookupTape follows a parsed path through a tape document, mirroring
// Lookup over jsonvalue trees.
func LookupTape(d *jsontape.Doc, p Path) (jsontape.Node, bool) {
	cur := d.Root()
	for _, s := range p.Segs {
		if s.IsIndex {
			el, ok := cur.Elem(s.Index)
			if !ok {
				return jsontape.Node{}, false
			}
			cur = el
			continue
		}
		v, ok := cur.Member(s.Key)
		if !ok {
			return jsontape.Node{}, false
		}
		cur = v
	}
	return cur, true
}
