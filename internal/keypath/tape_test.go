package keypath_test

import (
	"testing"

	"repro/internal/jsontape"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
)

var walkDocs = []string{
	`{"a":1,"b":{"c":[1,2.5,"x",true,null]},"d":[]}`,
	`{"deep":{"er":{"est":{"leaf":"v"}}},"empty":{},"n":null}`,
	`[1,2,3,4,5,6,7,8,9,10,11,12]`,
	`{"arr":[{"x":1},{"x":2},[1,[2]],"s"],"weird.key":1,"w[0]":2,"back\\slash":3,"":{"":9}}`,
	`{"dup":1,"dup":"two","dup":null}`,
	`{"u":"é😀","esc.key":5}`,
	`42`, `"scalar root"`, `null`, `{}`, `[]`,
	`{"big":[0,1,2,3,4,5,6,7,8,9,[10],{"k":11}]}`,
}

type leaf struct {
	path string
	typ  keypath.ValueType
	val  jsonvalue.Value
}

func collectTree(t *testing.T, src string, maxSlots int) []leaf {
	t.Helper()
	v, err := jsontext.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	var out []leaf
	keypath.Collect(v, maxSlots, func(p keypath.Path, vt keypath.ValueType, lv jsonvalue.Value) {
		out = append(out, leaf{p.Encode(), vt, lv})
	})
	return out
}

func collectTape(t *testing.T, src string, maxSlots int) ([]leaf, int) {
	t.Helper()
	var d jsontape.Doc
	if err := jsontape.Parse([]byte(src), &d); err != nil {
		t.Fatalf("tape parse %q: %v", src, err)
	}
	var out []leaf
	skipped := keypath.CollectTape(&d, maxSlots, func(p []byte, vt keypath.ValueType, n jsontape.Node) {
		out = append(out, leaf{string(p), vt, n.Materialize()})
	})
	return out, skipped
}

// TestCollectTapeMatchesCollect locks the tape walker to the tree
// walker: same leaves, same encoded paths, same order, same types,
// same values, at both the default and a tiny array-slot cap.
func TestCollectTapeMatchesCollect(t *testing.T) {
	for _, src := range walkDocs {
		for _, maxSlots := range []int{0, 2} {
			tree := collectTree(t, src, maxSlots)
			tape, _ := collectTape(t, src, maxSlots)
			if len(tree) != len(tape) {
				t.Fatalf("%q slots=%d: leaf count tree=%d tape=%d\ntree=%v\ntape=%v",
					src, maxSlots, len(tree), len(tape), tree, tape)
			}
			for i := range tree {
				if tree[i].path != tape[i].path || tree[i].typ != tape[i].typ {
					t.Errorf("%q slots=%d leaf %d: tree=(%q,%v) tape=(%q,%v)",
						src, maxSlots, i, tree[i].path, tree[i].typ, tape[i].path, tape[i].typ)
				}
				if !tree[i].val.Equal(tape[i].val) {
					t.Errorf("%q slots=%d leaf %d (%s): value mismatch", src, maxSlots, i, tree[i].path)
				}
			}
		}
	}
}

func TestCollectTapeSkippedCount(t *testing.T) {
	var d jsontape.Doc
	if err := jsontape.Parse([]byte(`{"a":[1,2,3,4,5],"b":[[6,7],[8]]}`), &d); err != nil {
		t.Fatal(err)
	}
	_, skipped := func() ([]leaf, int) {
		var out []leaf
		n := keypath.CollectTape(&d, 2, func(p []byte, vt keypath.ValueType, nd jsontape.Node) {
			out = append(out, leaf{string(p), vt, nd.Materialize()})
		})
		return out, n
	}()
	// a: elements 2,3,4 skipped; b: fully visited (2 elems), inner
	// arrays lose nothing under cap 2.
	if skipped != 3 {
		t.Fatalf("skipped = %d, want 3", skipped)
	}
}

func TestDictAddBytes(t *testing.T) {
	d := keypath.NewDict()
	id1 := d.Add("a.b", keypath.TypeBigInt)
	if got := d.AddBytes([]byte("a.b"), keypath.TypeBigInt); got != id1 {
		t.Fatalf("AddBytes existing = %d, want %d", got, id1)
	}
	id2 := d.AddBytes([]byte("a.b"), keypath.TypeString)
	if id2 == id1 {
		t.Fatal("different type must get a new id")
	}
	id3 := d.AddBytes([]byte("fresh"), keypath.TypeDouble)
	if got, ok := d.Get("fresh", keypath.TypeDouble); !ok || got != id3 {
		t.Fatalf("Get after AddBytes = %d,%v", got, ok)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	// Ids are first-seen dense.
	for i := 0; i < d.Len(); i++ {
		it := d.Item(int32(i))
		if got, ok := d.Get(it.Path, it.Type); !ok || got != int32(i) {
			t.Fatalf("item %d round trip failed: %v %v", i, got, ok)
		}
	}
}

func TestLookupTapeMatchesLookup(t *testing.T) {
	src := `{"a":{"b":[10,{"c":true}]},"weird.key":"w","arr":[]}`
	v, err := jsontext.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	var d jsontape.Doc
	if err := jsontape.Parse([]byte(src), &d); err != nil {
		t.Fatal(err)
	}
	paths := []keypath.Path{
		keypath.NewPath("a"),
		keypath.NewPath("a", "b").Slot(0),
		keypath.NewPath("a", "b").Slot(1).Child("c"),
		keypath.NewPath("weird.key"),
		keypath.NewPath("arr"),
		keypath.NewPath("missing"),
		keypath.NewPath("a", "b").Slot(9),
		keypath.NewPath("a", "b", "notobj"),
	}
	for _, p := range paths {
		tv, tok := keypath.Lookup(v, p)
		nd, nok := keypath.LookupTape(&d, p)
		if tok != nok {
			t.Fatalf("%s: found mismatch tree=%v tape=%v", p.Encode(), tok, nok)
		}
		if tok && !nd.Materialize().Equal(tv) {
			t.Fatalf("%s: value mismatch %s vs %s", p.Encode(),
				jsontext.Serialize(nd.Materialize()), jsontext.Serialize(tv))
		}
	}
}
