package keypath

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
)

func TestEncodeDisplay(t *testing.T) {
	tests := []struct {
		p       Path
		encoded string
		display string
	}{
		{NewPath("id"), "id", "id"},
		{NewPath("user", "id"), "user.id", "user.id"},
		{NewPath("geo", "lat"), "geo.lat", "geo.lat"},
		{NewPath("a.b"), `a\.b`, "a.b"},
		{NewPath(`a\b`), `a\\b`, `a\b`},
		{NewPath("a[0]"), `a\[0\]`, "a[0]"},
		{NewPath("tags").Slot(0), "tags[0]", "tags[0]"},
		{NewPath("tags").Slot(2).Child("text"), "tags[2]text", "tags[2].text"},
		{NewPath("a").Slot(0).Slot(1), "a[0][1]", "a[0][1]"},
		{NewPath(""), `\e`, ""},
		{NewPath("", "b"), `\e.b`, ".b"},
		{Path{}, "", ""},
	}
	for _, tt := range tests {
		if got := tt.p.Encode(); got != tt.encoded {
			t.Errorf("Encode(%v) = %q, want %q", tt.p, got, tt.encoded)
		}
		if got := tt.p.Display(); got != tt.display {
			t.Errorf("Display(%v) = %q, want %q", tt.p, got, tt.display)
		}
	}
}

func TestParsePathRoundTrip(t *testing.T) {
	paths := []Path{
		NewPath("id"),
		NewPath("user", "id", "name"),
		NewPath("a.b", "c[1]", `d\e`),
		NewPath("tags").Slot(0).Child("text").Slot(3),
		NewPath(""),
		NewPath("", ""),
		NewPath("a", "", "b"),
		NewPath("e"), // must not collide with the empty marker
		NewPath(`\e`),
		Path{},
	}
	for _, p := range paths {
		enc := p.Encode()
		back, err := ParsePath(enc)
		if err != nil {
			t.Errorf("ParsePath(%q): %v", enc, err)
			continue
		}
		if !reflect.DeepEqual(back, p) && !(len(p.Segs) == 0 && len(back.Segs) == 0) {
			t.Errorf("round trip %q: got %+v, want %+v", enc, back.Segs, p.Segs)
		}
	}
}

func TestParsePathErrors(t *testing.T) {
	bad := []string{`[`, `[x]`, `[1`, `a\`, `a]b`, `[0]]`}
	for _, s := range bad {
		if _, err := ParsePath(s); err == nil {
			t.Errorf("ParsePath(%q) succeeded", s)
		}
	}
}

// Property: Encode is injective over random paths and ParsePath
// inverts it.
func TestQuickEncodeInjective(t *testing.T) {
	gen := func(r *rand.Rand) Path {
		n := 1 + r.Intn(4)
		p := Path{}
		keys := []string{"a", "b", "id", "a.b", `x\`, "", "e", "[", "]"}
		for i := 0; i < n; i++ {
			if r.Intn(4) == 0 {
				p = p.Slot(r.Intn(5))
			} else {
				p = p.Child(keys[r.Intn(len(keys))])
			}
		}
		return p
	}
	r := rand.New(rand.NewSource(11))
	seen := map[string]Path{}
	for i := 0; i < 2000; i++ {
		p := gen(r)
		enc := p.Encode()
		if prev, ok := seen[enc]; ok && !reflect.DeepEqual(prev, p) {
			t.Fatalf("collision: %+v and %+v both encode to %q", prev.Segs, p.Segs, enc)
		}
		seen[enc] = p
		back, err := ParsePath(enc)
		if err != nil {
			t.Fatalf("ParsePath(%q): %v", enc, err)
		}
		if !reflect.DeepEqual(back, p) {
			t.Fatalf("round trip %q: %+v != %+v", enc, back.Segs, p.Segs)
		}
	}
}

func doc(t *testing.T, s string) jsonvalue.Value {
	t.Helper()
	v, err := jsontext.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCollectPaperExample(t *testing.T) {
	// Tuple with id 5 from Figure 2: key paths {i, c, t, u_i, r, g_l}.
	d := doc(t, `{"id":5, "create":"1/10", "text":"b", "user":{"id":7}, "replies":3, "geo":{"lat":1.9}}`)
	got := map[string]ValueType{}
	Collect(d, 0, func(p Path, vt ValueType, v jsonvalue.Value) {
		got[p.Encode()] = vt
	})
	want := map[string]ValueType{
		"id":      TypeBigInt,
		"create":  TypeString,
		"text":    TypeString,
		"user.id": TypeBigInt,
		"replies": TypeBigInt,
		"geo.lat": TypeDouble,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("collected %v, want %v", got, want)
	}
}

func TestCollectNullLeaf(t *testing.T) {
	// Tuple 6 of Figure 2 has "geo": null — a leaf of type Null.
	d := doc(t, `{"id":6, "geo":null}`)
	got := map[string]ValueType{}
	Collect(d, 0, func(p Path, vt ValueType, v jsonvalue.Value) {
		got[p.Encode()] = vt
	})
	if got["geo"] != TypeNull {
		t.Errorf("geo type = %v", got["geo"])
	}
	if len(got) != 2 {
		t.Errorf("collected %v", got)
	}
}

func TestCollectArraySlots(t *testing.T) {
	d := doc(t, `{"tags":[{"t":"a"},{"t":"b"},{"t":"c"}], "nums":[1,2]}`)
	var paths []string
	Collect(d, 2, func(p Path, vt ValueType, v jsonvalue.Value) {
		paths = append(paths, p.Encode())
	})
	want := []string{"tags[0]t", "tags[1]t", "nums[0]", "nums[1]"}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("paths = %v, want %v (slot cap 2)", paths, want)
	}
}

func TestCollectEmptyContainersReported(t *testing.T) {
	// Empty containers are presence-only leaves: the path must be
	// visible (headers, skipping) but the type marks it unextractable.
	d := doc(t, `{"a":{}, "b":[], "c":1}`)
	got := map[string]ValueType{}
	Collect(d, 0, func(p Path, vt ValueType, v jsonvalue.Value) {
		got[p.Encode()] = vt
	})
	want := map[string]ValueType{"a": TypeObject, "b": TypeArray, "c": TypeBigInt}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("collected %v, want %v", got, want)
	}
}

func TestCollectScalarRoot(t *testing.T) {
	var n int
	Collect(jsonvalue.Int(5), 0, func(Path, ValueType, jsonvalue.Value) { n++ })
	if n != 0 {
		t.Errorf("scalar root produced %d leaves", n)
	}
}

func TestLookup(t *testing.T) {
	d := doc(t, `{"user":{"id":7,"tags":["x","y"]}, "n":1}`)
	tests := []struct {
		p    Path
		want jsonvalue.Value
		ok   bool
	}{
		{NewPath("n"), jsonvalue.Int(1), true},
		{NewPath("user", "id"), jsonvalue.Int(7), true},
		{NewPath("user", "tags").Slot(1), jsonvalue.String("y"), true},
		{NewPath("user", "tags").Slot(2), jsonvalue.Null(), false},
		{NewPath("missing"), jsonvalue.Null(), false},
		{NewPath("n", "deeper"), jsonvalue.Null(), false},
		{NewPath("user", "tags", "notindex"), jsonvalue.Null(), false},
	}
	for _, tt := range tests {
		got, ok := Lookup(d, tt.p)
		if ok != tt.ok || (ok && !got.Equal(tt.want)) {
			t.Errorf("Lookup(%s) = %#v, %v", tt.p.Display(), got, ok)
		}
	}
}

// Property: every collected path can be looked up and returns the
// same value.
func TestQuickCollectLookupAgree(t *testing.T) {
	type gen struct{ v jsonvalue.Value }
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r, 3)
		ok := true
		Collect(d, 4, func(p Path, vt ValueType, v jsonvalue.Value) {
			got, found := Lookup(d, p)
			if !found || !got.Equal(v) {
				ok = false
				return
			}
			switch vt {
			case TypeObject, TypeArray:
				if got.Len() != 0 {
					ok = false
				}
			default:
				if TypeOf(got) != vt {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	_ = gen{}
}

func randomDoc(r *rand.Rand, depth int) jsonvalue.Value {
	keys := []string{"a", "b", "c", "d.d", ""}
	n := 1 + r.Intn(4)
	var ms []jsonvalue.Member
	used := map[string]bool{}
	for i := 0; i < n; i++ {
		k := keys[r.Intn(len(keys))]
		if used[k] {
			continue
		}
		used[k] = true
		var v jsonvalue.Value
		switch c := r.Intn(6); {
		case c == 0 && depth > 0:
			v = randomDoc(r, depth-1)
		case c == 1 && depth > 0:
			var elems []jsonvalue.Value
			for j := 0; j < r.Intn(6); j++ {
				elems = append(elems, jsonvalue.Int(int64(j)))
			}
			v = jsonvalue.Array(elems...)
		case c == 2:
			v = jsonvalue.Null()
		case c == 3:
			v = jsonvalue.Float(r.Float64())
		default:
			v = jsonvalue.Int(int64(r.Intn(100)))
		}
		ms = append(ms, jsonvalue.M(k, v))
	}
	return jsonvalue.Object(ms...)
}

func TestDict(t *testing.T) {
	d := NewDict()
	id1 := d.Add("user.id", TypeBigInt)
	id2 := d.Add("user.id", TypeString) // same path, different type: distinct item
	id3 := d.Add("user.id", TypeBigInt) // duplicate: same id
	if id1 == id2 {
		t.Error("type pairing broken: same id for different types")
	}
	if id1 != id3 {
		t.Error("duplicate add returned new id")
	}
	if d.Len() != 2 {
		t.Errorf("len = %d", d.Len())
	}
	if it := d.Item(id1); it.Path != "user.id" || it.Type != TypeBigInt {
		t.Errorf("item = %+v", it)
	}
	if _, ok := d.Get("user.id", TypeDouble); ok {
		t.Error("absent item found")
	}
	if got, ok := d.Get("user.id", TypeString); !ok || got != id2 {
		t.Errorf("Get = %d, %v", got, ok)
	}
	if len(d.Items()) != 2 {
		t.Error("Items() wrong length")
	}
}

func TestTypeOf(t *testing.T) {
	tests := []struct {
		v jsonvalue.Value
		t ValueType
	}{
		{jsonvalue.Null(), TypeNull},
		{jsonvalue.Bool(true), TypeBool},
		{jsonvalue.Int(1), TypeBigInt},
		{jsonvalue.Float(1), TypeDouble},
		{jsonvalue.String("x"), TypeString},
	}
	for _, tt := range tests {
		if got := TypeOf(tt.v); got != tt.t {
			t.Errorf("TypeOf(%#v) = %v, want %v", tt.v, got, tt.t)
		}
	}
}

func TestValueTypeString(t *testing.T) {
	names := map[ValueType]string{
		TypeNull: "Null", TypeBool: "Bool", TypeBigInt: "BigInt",
		TypeDouble: "Double", TypeString: "Text", TypeTimestamp: "Timestamp",
	}
	for vt, want := range names {
		if vt.String() != want {
			t.Errorf("%d.String() = %s", vt, vt.String())
		}
	}
}
