// Package keypath implements key-path collection and the type-paired
// item dictionary that feeds frequent itemset mining (paper §3.1 step
// 1, §3.4, §3.5).
//
// A key path is the chain of object keys and array slots followed from
// the document root to an actual key-value pair. Nesting is encoded
// into the path itself so the extractor never distinguishes nested
// from top-level values. Each itemset item is the *pair* of a key path
// and the primitive JSON type of its value — two occurrences of the
// same path only match when their types match too, which is how the
// extractor picks the most common type and leaves outlier-typed values
// in the binary representation.
package keypath

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/jsonvalue"
)

// ValueType is the primitive type paired with a key path. Timestamp
// never appears in mined items (dates arrive as strings, §4.9); it is
// a column storage type assigned after extraction.
type ValueType uint8

// The value types. Order is stable: dictionary keys embed the raw value.
const (
	TypeNull ValueType = iota
	TypeBool
	TypeBigInt
	TypeDouble
	TypeString
	TypeTimestamp // derived: string columns detected as date/time (§4.9)
	// TypeObject and TypeArray mark *empty* containers: they carry no
	// key-value pair to extract, but the path exists in the document —
	// headers and statistics must see it, or an access to it would be
	// wrongly answered with NULL (->> of {} is "{}", not NULL).
	TypeObject
	TypeArray
)

func (t ValueType) String() string {
	switch t {
	case TypeNull:
		return "Null"
	case TypeBool:
		return "Bool"
	case TypeBigInt:
		return "BigInt"
	case TypeDouble:
		return "Double"
	case TypeString:
		return "Text"
	case TypeTimestamp:
		return "Timestamp"
	case TypeObject:
		return "Object"
	case TypeArray:
		return "Array"
	default:
		return fmt.Sprintf("ValueType(%d)", uint8(t))
	}
}

// TypeOf maps a leaf value to its paired primitive type.
func TypeOf(v jsonvalue.Value) ValueType {
	switch v.Kind() {
	case jsonvalue.KindBool:
		return TypeBool
	case jsonvalue.KindInt:
		return TypeBigInt
	case jsonvalue.KindFloat:
		return TypeDouble
	case jsonvalue.KindString:
		return TypeString
	default:
		return TypeNull
	}
}

// Segment is one step of a key path: either an object key or an array
// slot index.
type Segment struct {
	Key     string
	Index   int
	IsIndex bool
}

// Path is a parsed key path.
type Path struct {
	Segs []Segment
}

// NewPath builds a path of object keys (the common case).
func NewPath(keys ...string) Path {
	segs := make([]Segment, len(keys))
	for i, k := range keys {
		segs[i] = Segment{Key: k}
	}
	return Path{Segs: segs}
}

// Child extends the path by an object key.
func (p Path) Child(key string) Path {
	segs := make([]Segment, len(p.Segs)+1)
	copy(segs, p.Segs)
	segs[len(p.Segs)] = Segment{Key: key}
	return Path{Segs: segs}
}

// Slot extends the path by an array index.
func (p Path) Slot(i int) Path {
	segs := make([]Segment, len(p.Segs)+1)
	copy(segs, p.Segs)
	segs[len(p.Segs)] = Segment{Index: i, IsIndex: true}
	return Path{Segs: segs}
}

// Depth returns the nesting level (number of segments).
func (p Path) Depth() int { return len(p.Segs) }

// Encode renders the canonical string form: array slots as "[i]",
// object keys separated from a *preceding key segment* by '.' (no dot
// after an index segment or at the start). '.', '[', ']' and '\'
// inside keys are escaped with '\'; the empty key is encoded as the
// marker "\e". The encoding is injective and ParsePath inverts it.
// This string is the identity used by dictionaries, tile headers,
// bloom filters and statistics.
func (p Path) Encode() string {
	var sb strings.Builder
	prevWasKey := false
	for _, s := range p.Segs {
		if s.IsIndex {
			sb.WriteByte('[')
			sb.WriteString(strconv.Itoa(s.Index))
			sb.WriteByte(']')
			prevWasKey = false
			continue
		}
		if prevWasKey {
			sb.WriteByte('.')
		}
		if s.Key == "" {
			sb.WriteString(`\e`)
		}
		for j := 0; j < len(s.Key); j++ {
			switch c := s.Key[j]; c {
			case '.', '[', '\\', ']':
				sb.WriteByte('\\')
				sb.WriteByte(c)
			default:
				sb.WriteByte(c)
			}
		}
		prevWasKey = true
	}
	return sb.String()
}

// ParsePath inverts Encode.
func ParsePath(s string) (Path, error) {
	var p Path
	i := 0
	prevWasKey := false
	for i < len(s) {
		if s[i] == '[' {
			end := strings.IndexByte(s[i:], ']')
			if end < 0 {
				return Path{}, fmt.Errorf("keypath: unterminated index in %q", s)
			}
			idx, err := strconv.Atoi(s[i+1 : i+end])
			if err != nil {
				return Path{}, fmt.Errorf("keypath: bad index in %q: %v", s, err)
			}
			p.Segs = append(p.Segs, Segment{Index: idx, IsIndex: true})
			i += end + 1
			prevWasKey = false
			continue
		}
		if prevWasKey {
			if s[i] != '.' {
				return Path{}, fmt.Errorf("keypath: missing separator in %q at %d", s, i)
			}
			i++ // consume the separator; a key segment follows
		}
		// Key segment: read until an unescaped '.' or '['.
		var key strings.Builder
		emptyMarker := false
		plainChars := 0
		for i < len(s) && s[i] != '.' && s[i] != '[' {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return Path{}, fmt.Errorf("keypath: trailing escape in %q", s)
				}
				if s[i+1] == 'e' && key.Len() == 0 && plainChars == 0 {
					emptyMarker = true
				} else {
					key.WriteByte(s[i+1])
					plainChars++
				}
				i += 2
				continue
			}
			if s[i] == ']' {
				return Path{}, fmt.Errorf("keypath: stray ']' in %q", s)
			}
			key.WriteByte(s[i])
			plainChars++
			i++
		}
		if emptyMarker && plainChars > 0 {
			return Path{}, fmt.Errorf("keypath: empty-key marker inside key in %q", s)
		}
		p.Segs = append(p.Segs, Segment{Key: key.String()})
		prevWasKey = true
	}
	return p, nil
}

// Display renders the human-readable form used in reports (no
// escaping; lossy for exotic keys).
func (p Path) Display() string {
	var sb strings.Builder
	for i, s := range p.Segs {
		if s.IsIndex {
			fmt.Fprintf(&sb, "[%d]", s.Index)
			continue
		}
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(s.Key)
	}
	return sb.String()
}

// Lookup follows the path through a document.
func Lookup(doc jsonvalue.Value, p Path) (jsonvalue.Value, bool) {
	cur := doc
	for _, s := range p.Segs {
		if s.IsIndex {
			if cur.Kind() != jsonvalue.KindArray || s.Index < 0 || s.Index >= cur.Len() {
				return jsonvalue.Null(), false
			}
			cur = cur.Elem(s.Index)
			continue
		}
		var ok bool
		cur, ok = cur.Lookup(s.Key)
		if !ok {
			return jsonvalue.Null(), false
		}
	}
	return cur, true
}

// DefaultMaxArraySlots bounds how many leading array elements receive
// key paths during collection. Elements beyond the bound stay in the
// binary representation (§3.5: only leading frequent elements are
// materialized); high-cardinality arrays are handled by side
// relations (Tiles-*).
const DefaultMaxArraySlots = 8

// CollectFunc receives each leaf: its path, paired primitive type,
// and value.
type CollectFunc func(p Path, t ValueType, v jsonvalue.Value)

// Collect walks doc and reports every key-value leaf. Scalar values
// (including null) are leaves; empty containers are reported with
// TypeObject/TypeArray so headers and statistics see the path even
// though nothing is extractable from it. Array elements are visited
// up to maxArraySlots (<=0 selects DefaultMaxArraySlots).
func Collect(doc jsonvalue.Value, maxArraySlots int, fn CollectFunc) {
	if maxArraySlots <= 0 {
		maxArraySlots = DefaultMaxArraySlots
	}
	collect(doc, Path{}, maxArraySlots, fn)
}

func collect(v jsonvalue.Value, p Path, maxSlots int, fn CollectFunc) {
	switch v.Kind() {
	case jsonvalue.KindObject:
		if v.Len() == 0 {
			if len(p.Segs) > 0 {
				fn(p, TypeObject, v)
			}
			return
		}
		for _, m := range v.Members() {
			collect(m.Value, p.Child(m.Key), maxSlots, fn)
		}
	case jsonvalue.KindArray:
		if v.Len() == 0 {
			if len(p.Segs) > 0 {
				fn(p, TypeArray, v)
			}
			return
		}
		n := v.Len()
		if n > maxSlots {
			n = maxSlots
		}
		for i := 0; i < n; i++ {
			collect(v.Elem(i), p.Slot(i), maxSlots, fn)
		}
	default:
		if len(p.Segs) == 0 {
			return // scalar root: no key-value pair to speak of
		}
		fn(p, TypeOf(v), v)
	}
}

// Item is a dictionary entry: the canonical path string paired with a
// primitive type.
type Item struct {
	Path string
	Type ValueType
}

// Dict assigns dense int32 ids to (path, type) items — the database
// the FPGrowth miner runs on. Ids are assigned in first-seen order.
// Entries are keyed by path with a small per-type id array so the
// tape walker can look paths up by []byte without allocating.
type Dict struct {
	byPath map[string]*dictEntry
	items  []Item
}

// dictEntry holds one id per ValueType (-1 = unassigned). ValueType
// has 8 values; TypeTimestamp never appears in mined items but the
// slot costs nothing.
type dictEntry [8]int32

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byPath: map[string]*dictEntry{}}
}

func (d *Dict) entry(path string) *dictEntry {
	e := d.byPath[path]
	if e == nil {
		e = &dictEntry{-1, -1, -1, -1, -1, -1, -1, -1}
		d.byPath[path] = e
	}
	return e
}

// Add returns the id for the item, assigning the next id on first
// sight.
func (d *Dict) Add(path string, t ValueType) int32 {
	e := d.entry(path)
	if id := e[t]; id >= 0 {
		return id
	}
	id := int32(len(d.items))
	e[t] = id
	d.items = append(d.items, Item{Path: path, Type: t})
	return id
}

// AddBytes is Add for a path rendered into a byte buffer: the lookup
// allocates no string, and the path is only copied when the item is
// new.
func (d *Dict) AddBytes(path []byte, t ValueType) int32 {
	if e, ok := d.byPath[string(path)]; ok {
		if id := e[t]; id >= 0 {
			return id
		}
		id := int32(len(d.items))
		e[t] = id
		d.items = append(d.items, Item{Path: string(path), Type: t})
		return id
	}
	p := string(path)
	e := d.entry(p)
	id := int32(len(d.items))
	e[t] = id
	d.items = append(d.items, Item{Path: p, Type: t})
	return id
}

// Get returns the id for the item and whether it exists.
func (d *Dict) Get(path string, t ValueType) (int32, bool) {
	if e, ok := d.byPath[path]; ok && e[t] >= 0 {
		return e[t], true
	}
	return 0, false
}

// Item returns the entry for an id.
func (d *Dict) Item(id int32) Item { return d.items[id] }

// Len returns the number of distinct items.
func (d *Dict) Len() int { return len(d.items) }

// Items returns the id-ordered entries; callers must not mutate.
func (d *Dict) Items() []Item { return d.items }
