package service

// The subsystem acceptance test: ten tenants hammer one server over a
// directory-backed table that compacts mid-run — long scans,
// client-cancelled requests, 1 ms deadlines, and two tenants bounded
// by buffer-pool quotas. Admitted queries must return byte-identical
// results to direct library calls, cancelled queries must free their
// buffer-pool pins, and the final /metrics snapshot must show every
// quoted tenant at or under its quota. Run with -race.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	jsontiles "repro"
)

// metricValue extracts one sample (by exact series name, labels
// included) from a /metrics body.
func metricValue(t *testing.T, body, series string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v, true
		}
	}
	return 0, false
}

func TestMultiTenantServiceOverCompactingTable(t *testing.T) {
	const batches = 8
	dir := filepath.Join(t.TempDir(), "reviews")
	o := jsontiles.DefaultOptions()
	o.TileSize = 64
	o.Workers = 2
	o.CompactFanIn = -1    // the test compacts explicitly, mid-run
	o.CacheBytes = 8 << 10 // a pool far smaller than the table: every scan churns blocks
	tbl, err := jsontiles.OpenDir("reviews", dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	docs := testDocs(800)
	per := len(docs) / batches
	for b := 0; b < batches; b++ {
		for _, d := range docs[b*per : (b+1)*per] {
			if err := tbl.Insert(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := tbl.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	quotas := map[string]int64{"acc-quota-a": 2 << 10, "acc-quota-b": 4 << 10}
	for tenant, q := range quotas {
		tbl.SetTenantQuota(tenant, q)
	}

	s := New(Config{
		MaxConcurrent:  3,
		QueueDepth:     4,
		QueueTimeout:   200 * time.Millisecond,
		DefaultTimeout: 10 * time.Second,
	})
	s.Register("reviews", tbl)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The envelopes normal tenants send, with library ground truth
	// computed up front (compaction must not change any answer).
	envelopes := []string{
		`{"table": "reviews", "select": ["data->>'review_id'", "data->>'stars'::BigInt"],
		  "where": [{"col": 1, "op": ">=", "value": 4}], "order_by": [{"col": 0}]}`,
		`{"table": "reviews", "select": ["data->>'stars'::BigInt", "data->>'useful'::BigInt"],
		  "group_by": [0], "aggs": [{"fn": "count", "name": "n"}, {"fn": "sum", "col": 1, "name": "u"}],
		  "order_by": [{"col": 0}]}`,
		`{"table": "reviews", "select": ["data->>'review_id'", "data->>'business'"],
		  "where": [{"col": 1, "op": "in", "values": ["b00", "b07"]}],
		  "order_by": [{"col": 0, "desc": true}], "limit": 25}`,
	}
	want := make([][]string, len(envelopes))
	for i, env := range envelopes {
		req, err := decodeRequest(strings.NewReader(env))
		if err != nil {
			t.Fatalf("envelope %d: %v", i, err)
		}
		q, err := buildQuery(tbl, req)
		if err != nil {
			t.Fatalf("envelope %d: %v", i, err)
		}
		res, err := q.RunContext(context.Background())
		if err != nil {
			t.Fatalf("envelope %d: %v", i, err)
		}
		want[i] = libraryRows(t, res)
	}

	// post sends env for tenant, retrying 429s (admission pushback is
	// expected under 10 concurrent tenants and 3 slots).
	post := func(tenant, env string) (int, string, error) {
		for {
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(env))
			if err != nil {
				return 0, "", err
			}
			req.Header.Set("X-JT-Tenant", tenant)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return 0, "", err
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			return resp.StatusCode, buf.String(), nil
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Five normal tenants: every envelope, answers checked against the
	// library ground truth.
	for n := 0; n < 5; n++ {
		tenant := fmt.Sprintf("acc-n%d", n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, env := range envelopes {
				status, body, err := post(tenant, env)
				if err != nil {
					errs <- fmt.Errorf("%s env %d: %v", tenant, i, err)
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("%s env %d: status %d: %s", tenant, i, status, body)
					return
				}
				_, _, rows := ndjsonRows(t, body)
				if len(rows) != len(want[i]) {
					errs <- fmt.Errorf("%s env %d: %d rows, library %d", tenant, i, len(rows), len(want[i]))
					return
				}
				for j := range rows {
					if rows[j] != want[i][j] {
						errs <- fmt.Errorf("%s env %d row %d:\nhttp:    %s\nlibrary: %s",
							tenant, i, j, rows[j], want[i][j])
						return
					}
				}
			}
		}()
	}

	// Two cancelled tenants: the client walks away almost immediately.
	// Outcome per request is timing-dependent; the invariants (no
	// leaked pins, server keeps serving) are checked after the run.
	for c := 0; c < 2; c++ {
		tenant := fmt.Sprintf("acc-cancel%d", c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				ctx, cancel := context.WithCancel(context.Background())
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
					ts.URL+"/query", strings.NewReader(envelopes[0]))
				req.Header.Set("X-JT-Tenant", tenant)
				go func() {
					time.Sleep(500 * time.Microsecond)
					cancel()
				}()
				if resp, err := http.DefaultClient.Do(req); err == nil {
					resp.Body.Close()
				}
				cancel()
			}
		}()
	}

	// One deadline tenant: a 1 ms budget usually expires mid-scan.
	wg.Add(1)
	go func() {
		defer wg.Done()
		env := `{"table": "reviews", "select": ["data->>'review_id'", "data->>'stars'::BigInt"], "timeout_ms": 1}`
		for k := 0; k < 4; k++ {
			status, body, err := post("acc-deadline", env)
			if err != nil {
				errs <- fmt.Errorf("acc-deadline: %v", err)
				return
			}
			if status != http.StatusOK && status != http.StatusGatewayTimeout && status != http.StatusServiceUnavailable {
				errs <- fmt.Errorf("acc-deadline: unexpected status %d: %s", status, body)
				return
			}
		}
	}()

	// Two quoted tenants: repeated full scans churn far more block
	// bytes than their buffer-pool quotas admit.
	for tenant := range quotas {
		tenant := tenant
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := `{"table": "reviews", "select": ["data->>'review_id'", "data->>'business'", "data->>'useful'::BigInt"]}`
			for k := 0; k < 4; k++ {
				status, body, err := post(tenant, env)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", tenant, err)
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d: %s", tenant, status, body)
					return
				}
			}
		}()
	}

	// Mid-run: compact the table under the live queries.
	time.Sleep(5 * time.Millisecond)
	rounds, err := tbl.Compact()
	if err != nil {
		t.Fatalf("Compact under load: %v", err)
	}
	if rounds == 0 {
		t.Fatal("Compact ran no rounds over 8 segments")
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if got := tbl.NumSegments(); got >= batches {
		t.Fatalf("NumSegments = %d after mid-run compaction, want < %d", got, batches)
	}

	// Final snapshot.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	metrics := buf.String()

	// Every quoted tenant ends at or under its quota.
	for tenant, q := range quotas {
		quota, ok := metricValue(t, metrics, fmt.Sprintf("tenant_pool_quota_bytes{tenant=%q}", tenant))
		if !ok || quota != float64(q) {
			t.Fatalf("%s: quota gauge %v (present=%v), want %d", tenant, quota, ok, q)
		}
		resident, ok := metricValue(t, metrics, fmt.Sprintf("tenant_pool_bytes{tenant=%q}", tenant))
		if !ok {
			t.Fatalf("%s: no tenant_pool_bytes sample", tenant)
		}
		if resident > quota {
			t.Errorf("%s: resident %v bytes > quota %v in final snapshot", tenant, resident, quota)
		}
		scanned, _ := metricValue(t, metrics, fmt.Sprintf("tenant_bytes_scanned_total{tenant=%q}", tenant))
		if scanned <= quota {
			t.Errorf("%s: scanned only %v bytes, not enough churn to exercise the quota", tenant, scanned)
		}
	}

	// Query accounting reached every tenant that ran to completion.
	for n := 0; n < 5; n++ {
		series := fmt.Sprintf("tenant_queries_total{tenant=%q}", fmt.Sprintf("acc-n%d", n))
		if v, ok := metricValue(t, metrics, series); !ok || v < float64(len(envelopes)) {
			t.Errorf("%s = %v (present=%v), want >= %d", series, v, ok, len(envelopes))
		}
	}

	// No pins survive the run: cancelled and admitted queries alike
	// released every buffer-pool handle.
	if v, ok := metricValue(t, metrics, "bufpool_pinned_bytes"); !ok || v != 0 {
		t.Errorf("bufpool_pinned_bytes = %v (present=%v), want 0", v, ok)
	}

	// The server is still healthy after all of it.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d after the run", hr.StatusCode)
	}
}
