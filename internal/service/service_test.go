package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	jsontiles "repro"
)

// testDocs builds n small review documents.
func testDocs(n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		out = append(out, []byte(fmt.Sprintf(
			`{"review_id":"r%04d","business":"b%02d","stars":%d,"useful":%d}`,
			i, i%10, 1+i%5, i%50)))
	}
	return out
}

func testOpts() jsontiles.Options {
	o := jsontiles.DefaultOptions()
	o.TileSize = 64
	o.Workers = 2
	return o
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *jsontiles.Table) {
	t.Helper()
	tbl, err := jsontiles.Load("reviews", testDocs(400), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	s.Register("reviews", tbl)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, tbl
}

// postQuery sends an envelope and returns status, headers, and body.
func postQuery(t *testing.T, url string, tenant string, env string) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/query", strings.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-JT-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.String()
}

// ndjsonRows splits an NDJSON response into header, data rows, and
// trailer.
func ndjsonRows(t *testing.T, body string) (header, trailer string, rows []string) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < 2 {
		t.Fatalf("NDJSON response too short:\n%s", body)
	}
	return lines[0], lines[len(lines)-1], lines[1 : len(lines)-1]
}

// libraryRows renders a direct library result the way streamResult
// does, for byte-identical comparison.
func libraryRows(t *testing.T, res *jsontiles.Result) []string {
	t.Helper()
	out := make([]string, res.NumRows())
	for i := range out {
		row := res.Row(i)
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = v.Any()
		}
		b, err := json.Marshal(vals)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

func TestQueryEndpointMatchesLibrary(t *testing.T) {
	_, ts, tbl := newTestServer(t, Config{})
	status, _, body := postQuery(t, ts.URL, "", `{
		"table": "reviews",
		"select": ["data->>'stars'::BigInt", "data->>'useful'::BigInt"],
		"where":  [{"col": 0, "op": ">=", "value": 2}],
		"group_by": [0],
		"aggs": [{"fn": "count", "name": "n"}, {"fn": "sum", "col": 1, "name": "u"}],
		"order_by": [{"col": 0}]
	}`)
	if status != http.StatusOK {
		t.Fatalf("status %d:\n%s", status, body)
	}
	header, trailer, rows := ndjsonRows(t, body)
	if !strings.Contains(header, `"columns"`) {
		t.Fatalf("bad header line: %s", header)
	}
	var tr struct {
		Rows   int     `json:"rows"`
		WallMS float64 `json:"wall_ms"`
	}
	if err := json.Unmarshal([]byte(trailer), &tr); err != nil {
		t.Fatalf("bad trailer %q: %v", trailer, err)
	}
	if tr.Rows != len(rows) {
		t.Fatalf("trailer rows %d, body rows %d", tr.Rows, len(rows))
	}

	res, err := tbl.Query("data->>'stars'::BigInt", "data->>'useful'::BigInt").
		WhereCmp(0, jsontiles.Ge, 2).GroupBy(0).
		Aggregate(jsontiles.CountAll("n"), jsontiles.Sum(1, "u")).
		OrderBy(0, false).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := libraryRows(t, res)
	if len(rows) != len(want) {
		t.Fatalf("HTTP returned %d rows, library %d", len(rows), len(want))
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("row %d differs:\nhttp:    %s\nlibrary: %s", i, rows[i], want[i])
		}
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name, env string
		status    int
	}{
		{"missing table", `{"select": ["data->>'x'"]}`, http.StatusBadRequest},
		{"missing select", `{"table": "reviews"}`, http.StatusBadRequest},
		{"unknown table", `{"table": "nope", "select": ["data->>'x'"]}`, http.StatusNotFound},
		{"unknown field", `{"table": "reviews", "select": ["data->>'x'"], "wat": 1}`, http.StatusBadRequest},
		{"unknown op", `{"table": "reviews", "select": ["data->>'x'"], "where": [{"col": 0, "op": "~="}]}`, http.StatusBadRequest},
		{"like non-string", `{"table": "reviews", "select": ["data->>'x'"], "where": [{"col": 0, "op": "like", "value": 3}]}`, http.StatusBadRequest},
		{"group without aggs", `{"table": "reviews", "select": ["data->>'x'"], "group_by": [0]}`, http.StatusBadRequest},
		{"bad column index", `{"table": "reviews", "select": ["data->>'x'"], "where": [{"col": 9, "op": "not_null"}]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		status, _, body := postQuery(t, ts.URL, "", c.env)
		if status != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, status, c.status, strings.TrimSpace(body))
		}
		if !strings.Contains(body, `"error"`) {
			t.Errorf("%s: error body missing: %s", c.name, body)
		}
	}
	// GET is not a query.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", resp.StatusCode)
	}
}

// TestAdmissionRejections drives the queue deterministically by
// occupying the execution slots directly (white-box): with the one
// slot taken and the one queue place occupied by a waiting request,
// the next request bounces immediately, and the waiter times out.
func TestAdmissionRejections(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		QueueTimeout:  80 * time.Millisecond,
	})
	s.sem <- struct{}{} // occupy the only execution slot
	defer func() { <-s.sem }()

	env := `{"table": "reviews", "select": ["data->>'review_id'"], "limit": 1}`
	type result struct {
		status int
		hdr    http.Header
		body   string
	}
	waiter := make(chan result, 1)
	go func() {
		st, hdr, body := postQuery(t, ts.URL, "tenant-q", env)
		waiter <- result{st, hdr, body}
	}()
	// Wait until the first request holds the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never entered the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: immediate 429.
	st, hdr, body := postQuery(t, ts.URL, "tenant-full", env)
	if st != http.StatusTooManyRequests {
		t.Fatalf("queue-full status %d:\n%s", st, body)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Fatalf("queue-full Retry-After = %q, want 1", hdr.Get("Retry-After"))
	}
	if !strings.Contains(body, "queue is full") {
		t.Fatalf("queue-full body: %s", body)
	}

	// Queue timeout: the waiter gives up after QueueTimeout.
	r := <-waiter
	if r.status != http.StatusTooManyRequests {
		t.Fatalf("queue-timeout status %d:\n%s", r.status, r.body)
	}
	if !strings.Contains(r.body, "timed out") {
		t.Fatalf("queue-timeout body: %s", r.body)
	}
	if r.hdr.Get("Retry-After") != "1" {
		t.Fatalf("queue-timeout Retry-After = %q, want 1", r.hdr.Get("Retry-After"))
	}
}

// TestQueueAdmitsWhenSlotFrees: a queued request runs once the slot
// holder releases.
func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		QueueTimeout:  5 * time.Second,
	})
	s.sem <- struct{}{}
	env := `{"table": "reviews", "select": ["data->>'review_id'"], "limit": 1}`
	done := make(chan int, 1)
	go func() {
		st, _, _ := postQuery(t, ts.URL, "", env)
		done <- st
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	<-s.sem // free the slot
	if st := <-done; st != http.StatusOK {
		t.Fatalf("queued request finished with %d, want 200", st)
	}
}

func TestDrainingRejectsNewQueries(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	s.draining.Store(true)
	st, _, body := postQuery(t, ts.URL, "", `{"table": "reviews", "select": ["data->>'review_id'"]}`)
	if st != http.StatusServiceUnavailable {
		t.Fatalf("draining /query status %d:\n%s", st, body)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", resp.StatusCode)
	}
}

func TestStartAndShutdown(t *testing.T) {
	tbl, err := jsontiles.Load("reviews", testDocs(200), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Addr: "127.0.0.1:0"})
	s.Register("reviews", tbl)
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr
	st, _, body := postQuery(t, url, "", `{"table": "reviews", "select": ["data->>'review_id'"], "limit": 3}`)
	if st != http.StatusOK {
		t.Fatalf("live server query status %d:\n%s", st, body)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Past shutdown, the listener is closed.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	if st, _, _ := postQuery(t, ts.URL, "metrics-tenant", `{"table": "reviews", "select": ["data->>'review_id'"], "limit": 1}`); st != http.StatusOK {
		t.Fatalf("query status %d", st)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	out := buf.String()
	for _, want := range []string{
		"# TYPE admission_admitted counter",
		`tenant_queries_total{tenant="metrics-tenant"} `,
		"bufpool_pinned_bytes 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
