// Package service is the network front door: an HTTP/JSON query
// endpoint over registered tables with per-query contexts, admission
// control, and per-tenant resource accounting.
//
// Three concerns separate it from a bare handler around Query.Run:
//
//   - Per-query contexts: every request runs under a context derived
//     from the client connection, the configured (or requested)
//     timeout, and the server's shutdown state. Cancellation — client
//     gone, deadline hit, server draining — stops the scans at the
//     next morsel boundary via Query.RunContext.
//   - Admission control: at most MaxConcurrent queries execute at
//     once; up to QueueDepth more wait in line for QueueTimeout.
//     Beyond that, requests are rejected immediately with 429 and a
//     Retry-After hint, so overload degrades to fast rejections
//     instead of a convoy of slow everything.
//   - Tenant governance: the TenantHeader identifies the tenant, the
//     identity rides the query context into the engine, and the
//     tenant's buffer-pool residency, scan bytes, queue waits, and
//     rejections are accounted in obs.Tenants and exported on
//     /metrics as labeled series.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	jsontiles "repro"
	"repro/internal/obs"
)

// Config parameterizes a Server. Zero values select the defaults.
type Config struct {
	// Addr is the listen address for Start (":0" picks a free port).
	Addr string
	// MaxConcurrent caps the queries executing at once (default 4).
	MaxConcurrent int
	// QueueDepth is how many admitted-but-waiting queries may line up
	// behind the executing ones (default 2×MaxConcurrent).
	QueueDepth int
	// QueueTimeout bounds the wait in the admission queue; a query
	// that cannot start in time is rejected with 429 (default 2s).
	QueueTimeout time.Duration
	// DefaultTimeout is the per-query deadline when the request does
	// not set timeout_ms (default 30s).
	DefaultTimeout time.Duration
	// TenantHeader names the HTTP header carrying the tenant identity
	// (default "X-JT-Tenant").
	TenantHeader string
	// DefaultTenant is used when the header is absent (default
	// "default").
	DefaultTenant string
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.TenantHeader == "" {
		c.TenantHeader = "X-JT-Tenant"
	}
	if c.DefaultTenant == "" {
		c.DefaultTenant = "default"
	}
	return c
}

// Server serves queries over registered tables.
type Server struct {
	cfg Config

	mu     sync.RWMutex
	tables map[string]*jsontiles.Table

	sem   chan struct{} // execution slots
	queue chan struct{} // waiting-line slots

	draining atomic.Bool
	inflight sync.WaitGroup // admitted queries

	// baseCtx is cancelled by Shutdown once the drain deadline passes,
	// aborting straggler queries mid-scan.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	srv *http.Server
	ln  net.Listener
}

// New builds a server from cfg. Register tables before Start.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		tables:     map[string]*jsontiles.Table{},
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		queue:      make(chan struct{}, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
}

// Register exposes t under name on the /query endpoint.
func (s *Server) Register(name string, t *jsontiles.Table) {
	s.mu.Lock()
	s.tables[name] = t
	s.mu.Unlock()
}

func (s *Server) table(name string) *jsontiles.Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[name]
}

func (s *Server) tableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler returns the server's HTTP handler (tests drive it through
// httptest without a listener).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// Start listens on cfg.Addr and serves in the background, returning
// the actual listen address.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Shutdown drains the server: new queries are rejected with 503,
// in-flight ones get until ctx's deadline to finish, stragglers are
// cancelled (their scans stop at the next morsel boundary), and the
// HTTP server closes once the handlers return.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel() // abort stragglers mid-scan
		<-done
	}
	s.baseCancel()
	if s.srv == nil {
		return nil
	}
	// The queries are done; give the HTTP layer a moment to flush
	// responses and close connections.
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(sctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

var (
	errDraining     = errors.New("server is draining")
	errQueueFull    = errors.New("admission queue is full")
	errQueueTimeout = errors.New("timed out waiting for an execution slot")
)

// admit acquires an execution slot, waiting in the bounded queue if
// none is free. It returns the release function, or the HTTP status
// to reject with.
func (s *Server) admit(ctx context.Context, tc *obs.TenantCounters) (release func(), status int, err error) {
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, errDraining
	}
	select {
	case s.sem <- struct{}{}:
		obs.AdmissionAdmitted.Inc()
		return func() { <-s.sem }, 0, nil
	default:
	}
	// All slots busy: take a place in the waiting line (or reject).
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, http.StatusTooManyRequests, errQueueFull
	}
	obs.AdmissionQueued.Inc()
	obs.QueriesQueued.Add(1)
	tc.QueueWaits.Inc()
	defer func() {
		<-s.queue
		obs.QueriesQueued.Add(-1)
	}()
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		obs.AdmissionAdmitted.Inc()
		return func() { <-s.sem }, 0, nil
	case <-timer.C:
		return nil, http.StatusTooManyRequests, errQueueTimeout
	case <-ctx.Done():
		return nil, http.StatusServiceUnavailable, ctx.Err()
	}
}

// errorBody is the JSON error shape (pre-stream failures).
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Write([]byte("ok\n"))
}

func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteAllMetrics(w)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a query envelope to /query")
		return
	}
	req, err := decodeRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tbl := s.table(req.Table)
	if tbl == nil {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown table %q (have %v)", req.Table, s.tableNames()))
		return
	}

	tenant := r.Header.Get(s.cfg.TenantHeader)
	if tenant == "" {
		tenant = s.cfg.DefaultTenant
	}
	tc := obs.Tenants.Get(tenant)

	release, status, aerr := s.admit(r.Context(), tc)
	if aerr != nil {
		tc.Rejections.Inc()
		obs.AdmissionRejected.Inc()
		writeError(w, status, aerr.Error())
		return
	}
	s.inflight.Add(1)
	defer func() {
		release()
		s.inflight.Done()
	}()

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	qctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// Shutdown past its drain deadline aborts this query too.
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	qctx = obs.WithTenant(qctx, tenant)

	q, err := buildQuery(tbl, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	start := time.Now()
	var res *jsontiles.Result
	var stats *jsontiles.QueryStats
	if req.Analyze {
		res, stats, err = q.RunAnalyzedContext(qctx)
	} else {
		res, err = q.RunContext(qctx)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, err.Error())
		case errors.Is(err, context.Canceled):
			// Client went away or the server is shutting down; the
			// status is best-effort (the client may never read it).
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	streamResult(w, res, stats, time.Since(start))
}

// responseHeader is the first NDJSON line of a result stream.
type responseHeader struct {
	Columns []string `json:"columns"`
}

// responseTrailer is the last NDJSON line.
type responseTrailer struct {
	Rows   int     `json:"rows"`
	WallMS float64 `json:"wall_ms"`
	Plan   string  `json:"plan,omitempty"`
}

// streamResult writes the result as NDJSON: a columns header, one
// JSON array per row, and a trailer with the row count and wall time.
// The engine materializes results before any byte is written (see
// DESIGN §6.7), so streaming here bounds response memory on the HTTP
// side, not in the engine.
func streamResult(w http.ResponseWriter, res *jsontiles.Result, stats *jsontiles.QueryStats, wall time.Duration) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.Encode(responseHeader{Columns: res.Columns()})
	n := res.NumRows()
	for i := 0; i < n; i++ {
		row := res.Row(i)
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = v.Any()
		}
		enc.Encode(vals)
		if flusher != nil && i%1024 == 1023 {
			flusher.Flush()
		}
	}
	tr := responseTrailer{Rows: n, WallMS: float64(wall) / float64(time.Millisecond)}
	if stats != nil && stats.Plan != nil {
		tr.Plan = stats.Plan.String()
	}
	enc.Encode(tr)
	if flusher != nil {
		flusher.Flush()
	}
}
