package service

import (
	"encoding/json"
	"fmt"
	"io"

	jsontiles "repro"
)

// QueryRequest is the JSON envelope POSTed to /query. Column
// references (where.col, group_by, aggs.col, order_by.col) are
// indexes into the select list — the same convention as the fluent
// Query API the envelope compiles to.
type QueryRequest struct {
	// Table names a registered table.
	Table string `json:"table"`
	// Select lists access expressions, e.g.
	// "data->>'user'->>'id'::BigInt".
	Select []string `json:"select"`
	// Where filters rows; clauses AND together.
	Where []WhereClause `json:"where,omitempty"`
	// GroupBy and Aggs turn the query into an aggregation. For
	// aggregations, order_by indexes the output schema (group columns
	// first, then aggregates).
	GroupBy []int         `json:"group_by,omitempty"`
	Aggs    []AggClause   `json:"aggs,omitempty"`
	OrderBy []OrderClause `json:"order_by,omitempty"`
	// Limit caps the result rows when non-nil.
	Limit *int `json:"limit,omitempty"`
	// TimeoutMS overrides the server's default per-query deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Analyze runs with per-operator instrumentation and includes the
	// analyzed plan in the response trailer.
	Analyze bool `json:"analyze,omitempty"`
}

// WhereClause is one filter. Op is one of =, <>, <, <=, >, >=,
// not_null, null, like (value = pattern), in (values = constants).
type WhereClause struct {
	Col    int    `json:"col"`
	Op     string `json:"op"`
	Value  any    `json:"value,omitempty"`
	Values []any  `json:"values,omitempty"`
}

// AggClause is one aggregate. Fn is one of count, count_not_null,
// sum, avg, min, max. Col is ignored for count.
type AggClause struct {
	Fn   string `json:"fn"`
	Col  int    `json:"col"`
	Name string `json:"name,omitempty"`
}

// OrderClause is one sort key over the output schema.
type OrderClause struct {
	Col  int  `json:"col"`
	Desc bool `json:"desc,omitempty"`
}

// decodeRequest parses the envelope. Numbers decode as json.Number so
// integral constants stay int64 (a float64 round-trip would corrupt
// large BigInt comparisons).
func decodeRequest(r io.Reader) (*QueryRequest, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	dec.DisallowUnknownFields()
	var req QueryRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid query envelope: %w", err)
	}
	if req.Table == "" {
		return nil, fmt.Errorf("query envelope: missing \"table\"")
	}
	if len(req.Select) == 0 {
		return nil, fmt.Errorf("query envelope: missing \"select\"")
	}
	return &req, nil
}

// constFromJSON converts a decoded JSON constant to the Go types the
// query builder accepts: json.Number becomes int64 when integral,
// float64 otherwise.
func constFromJSON(v any) (any, error) {
	switch x := v.(type) {
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return i, nil
		}
		f, err := x.Float64()
		if err != nil {
			return nil, fmt.Errorf("bad numeric constant %q", x.String())
		}
		return f, nil
	case string, bool, nil:
		return x, nil
	default:
		return nil, fmt.Errorf("unsupported constant type %T", v)
	}
}

// buildQuery compiles the envelope into a fluent Query over tbl. The
// builder reports reference errors (bad column indexes, unknown ops)
// before execution.
func buildQuery(tbl *jsontiles.Table, req *QueryRequest) (*jsontiles.Query, error) {
	q := tbl.Query(req.Select...)
	for _, wc := range req.Where {
		switch wc.Op {
		case "not_null":
			q = q.WhereNotNull(wc.Col)
		case "null":
			q = q.WhereNull(wc.Col)
		case "like":
			pat, ok := wc.Value.(string)
			if !ok {
				return nil, fmt.Errorf("where op \"like\" needs a string value")
			}
			q = q.WhereLike(wc.Col, pat)
		case "in":
			if len(wc.Values) == 0 {
				return nil, fmt.Errorf("where op \"in\" needs \"values\"")
			}
			vals := make([]any, len(wc.Values))
			for i, v := range wc.Values {
				cv, err := constFromJSON(v)
				if err != nil {
					return nil, err
				}
				vals[i] = cv
			}
			q = q.WhereIn(wc.Col, vals...)
		case "=", "<>", "<", "<=", ">", ">=":
			cv, err := constFromJSON(wc.Value)
			if err != nil {
				return nil, err
			}
			q = q.WhereCmp(wc.Col, jsontiles.CmpOp(wc.Op), cv)
		default:
			return nil, fmt.Errorf("unknown where op %q", wc.Op)
		}
	}
	if len(req.Aggs) > 0 {
		if len(req.GroupBy) > 0 {
			q = q.GroupBy(req.GroupBy...)
		}
		aggs := make([]jsontiles.AggregateSpec, len(req.Aggs))
		for i, a := range req.Aggs {
			name := a.Name
			if name == "" {
				name = a.Fn
			}
			switch a.Fn {
			case "count":
				aggs[i] = jsontiles.CountAll(name)
			case "count_not_null":
				aggs[i] = jsontiles.CountNotNull(a.Col, name)
			case "sum":
				aggs[i] = jsontiles.Sum(a.Col, name)
			case "avg":
				aggs[i] = jsontiles.Avg(a.Col, name)
			case "min":
				aggs[i] = jsontiles.Min(a.Col, name)
			case "max":
				aggs[i] = jsontiles.Max(a.Col, name)
			default:
				return nil, fmt.Errorf("unknown aggregate fn %q", a.Fn)
			}
		}
		q = q.Aggregate(aggs...)
	} else if len(req.GroupBy) > 0 {
		return nil, fmt.Errorf("group_by needs at least one aggregate in \"aggs\"")
	}
	for _, o := range req.OrderBy {
		q = q.OrderBy(o.Col, o.Desc)
	}
	if req.Limit != nil {
		q = q.Limit(*req.Limit)
	}
	return q, nil
}
