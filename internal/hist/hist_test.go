package hist

import (
	"math"
	"math/rand"
	"testing"
)

func TestUniformSelectivities(t *testing.T) {
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = float64(i) // uniform 0..9999
	}
	h := FromValues(vals)
	if h.Total() != 10000 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Min() != 0 || h.Max() != 9999 {
		t.Fatalf("bounds = [%f, %f]", h.Min(), h.Max())
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{2500, 0.25}, {5000, 0.5}, {9999, 1.0}, {0, 0}, {-5, 0},
	}
	for _, c := range cases {
		got := h.SelLess(c.x)
		if math.Abs(got-c.want) > 0.05 {
			t.Errorf("SelLess(%g) = %f, want ~%f", c.x, got, c.want)
		}
	}
	if got := h.SelGreater(7500); math.Abs(got-0.25) > 0.05 {
		t.Errorf("SelGreater(7500) = %f", got)
	}
	if got := h.SelRange(2500, 5000); math.Abs(got-0.25) > 0.05 {
		t.Errorf("SelRange = %f", got)
	}
}

func TestSkewedData(t *testing.T) {
	// 90% of mass at small values.
	var vals []float64
	for i := 0; i < 9000; i++ {
		vals = append(vals, float64(i%100))
	}
	for i := 0; i < 1000; i++ {
		vals = append(vals, 1000+float64(i))
	}
	h := FromValues(vals)
	if got := h.SelLess(500); got < 0.85 {
		t.Errorf("SelLess(500) = %f on skewed data, want ≥0.85 (default 1/3 would be wrong)", got)
	}
}

func TestDegenerate(t *testing.T) {
	if got := New(0, 0).SelLess(5); got != 1.0/3 {
		t.Errorf("empty histogram SelLess = %f, want the default", got)
	}
	// Single-point histogram.
	h := FromValues([]float64{7, 7, 7})
	if got := h.SelLess(7); got != 0 {
		t.Errorf("SelLess(point) = %f", got)
	}
	if got := h.SelLess(8); got != 1 {
		t.Errorf("SelLess(above point) = %f", got)
	}
	if FromValues(nil).Total() != 0 {
		t.Error("empty FromValues")
	}
}

func TestMerge(t *testing.T) {
	a := FromValues([]float64{0, 1, 2, 3, 4})
	b := FromValues([]float64{5, 6, 7, 8, 9})
	a.Merge(b)
	if a.Total() != 10 {
		t.Fatalf("merged total = %d", a.Total())
	}
	// b's mass lands in overflow (outside a's range); SelLess above
	// a's max must account for it.
	if got := a.SelLess(100); math.Abs(got-1) > 0.01 {
		t.Errorf("SelLess(100) after merge = %f", got)
	}
	if got := a.SelLess(4.5); got < 0.4 || got > 0.6 {
		t.Errorf("SelLess(4.5) after merge = %f, want ~0.5", got)
	}
	// Merging into empty adopts the other.
	e := New(0, 0)
	e.Merge(b)
	if e.Total() != 5 {
		t.Errorf("merge into empty: %d", e.Total())
	}
}

func TestMergeSameRange(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var all, h1v, h2v []float64
	for i := 0; i < 4000; i++ {
		v := r.Float64() * 100
		all = append(all, v)
		if i%2 == 0 {
			h1v = append(h1v, v)
		} else {
			h2v = append(h2v, v)
		}
	}
	whole := FromValues(all)
	h1 := FromValues(h1v)
	h1.Merge(FromValues(h2v))
	for _, x := range []float64{10, 33, 50, 90} {
		a, b := whole.SelLess(x), h1.SelLess(x)
		if math.Abs(a-b) > 0.08 {
			t.Errorf("merged SelLess(%g) = %f vs direct %f", x, b, a)
		}
	}
}

func TestSelPoint(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i % 10)
	}
	h := FromValues(vals)
	if got := h.SelPoint(50); got != 0 {
		t.Errorf("out-of-range point = %f", got)
	}
	if got := h.SelPoint(5); got <= 0 || got > 1 {
		t.Errorf("SelPoint(5) = %f", got)
	}
}

func TestSizeBytes(t *testing.T) {
	if New(0, 1).SizeBytes() < Buckets*8 {
		t.Error("SizeBytes too small")
	}
}
