// Package hist implements small equi-width histograms over numeric
// key-path values. The paper uses HyperLogLog sketches as the primary
// domain statistic and notes that "the collection of regular
// histograms would work analogously" (§4.6); this package is that
// analogous collection: per-tile histograms are built during
// materialization and merged into relation statistics, giving the
// optimizer real range selectivities instead of the 1/3 default.
package hist

import (
	"encoding/binary"
	"math"
)

// Buckets is the fixed resolution. 32 buckets keep a histogram at
// ~300 bytes — well inside the optimizer memory budget.
const Buckets = 32

// Histogram is an equi-width histogram over float64-projected values.
// It is built in two phases: observe min/max bounds (or grow them
// lazily with out-of-range spill), then count.
type Histogram struct {
	min, max float64
	width    float64
	counts   [Buckets]int64
	total    int64
	// underflow/overflow absorb values outside the initial bounds
	// after a merge of histograms with different ranges.
	underflow, overflow int64
}

// New returns a histogram covering [min, max]. Degenerate bounds
// (min >= max) produce a single-point histogram.
func New(min, max float64) *Histogram {
	h := &Histogram{min: min, max: max}
	if max > min {
		h.width = (max - min) / Buckets
	}
	return h
}

// FromValues builds a histogram with bounds taken from the data.
func FromValues(values []float64) *Histogram {
	if len(values) == 0 {
		return New(0, 0)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	h := New(lo, hi)
	for _, v := range values {
		h.Add(v)
	}
	return h
}

// Add counts one value.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.min:
		h.underflow++
	case v > h.max:
		h.overflow++
	case h.width == 0:
		h.counts[0]++
	default:
		b := int((v - h.min) / h.width)
		if b >= Buckets {
			b = Buckets - 1
		}
		h.counts[b]++
	}
}

// Total returns the number of counted values.
func (h *Histogram) Total() int64 { return h.total }

// Min and Max return the covered bounds.
func (h *Histogram) Min() float64 { return h.min }

// Max returns the upper bound.
func (h *Histogram) Max() float64 { return h.max }

// SelLess estimates the fraction of values strictly below x with
// intra-bucket linear interpolation.
func (h *Histogram) SelLess(x float64) float64 {
	if h.total == 0 {
		return 1.0 / 3
	}
	switch {
	case x <= h.min:
		return frac(h.underflow, h.total)
	case x > h.max:
		return frac(h.total-h.overflow, h.total) + frac(h.overflow, h.total)
	case h.width == 0:
		return frac(h.underflow, h.total)
	}
	b := int((x - h.min) / h.width)
	if b >= Buckets {
		b = Buckets - 1
	}
	cum := h.underflow
	for i := 0; i < b; i++ {
		cum += h.counts[i]
	}
	within := (x - (h.min + float64(b)*h.width)) / h.width
	est := float64(cum) + within*float64(h.counts[b])
	return clamp01(est / float64(h.total))
}

// SelGreater estimates the fraction of values strictly above x.
func (h *Histogram) SelGreater(x float64) float64 {
	return clamp01(1 - h.SelLess(x) - h.SelPoint(x))
}

// SelPoint estimates the fraction of values equal to x (one bucket
// spread uniformly; callers usually prefer 1/distinct from HLL).
func (h *Histogram) SelPoint(x float64) float64 {
	if h.total == 0 || x < h.min || x > h.max {
		return 0
	}
	if h.width == 0 {
		return frac(h.counts[0], h.total)
	}
	b := int((x - h.min) / h.width)
	if b >= Buckets {
		b = Buckets - 1
	}
	// Assume ~width distinct values per bucket; a point takes an even
	// share. Without distinct info per bucket, spread over the width.
	share := float64(h.counts[b]) / math.Max(h.width, 1)
	return clamp01(share / float64(h.total))
}

// SelRange estimates the fraction of values in [lo, hi].
func (h *Histogram) SelRange(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	return clamp01(h.SelLess(hi) + h.SelPoint(hi) - h.SelLess(lo))
}

// Merge folds other into h, rebucketing both inputs over the union of
// their ranges (each source bucket's mass is placed at its center).
// Coarser than rebuilding from values, but the tile→relation
// aggregation only needs range-selectivity accuracy at bucket
// granularity.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	if h.total == 0 {
		*h = *other
		return
	}
	if h.min == other.min && h.max == other.max {
		// Fast path: identical ranges merge bucket-wise exactly.
		for i, c := range other.counts {
			h.counts[i] += c
		}
		h.total += other.total
		h.underflow += other.underflow
		h.overflow += other.overflow
		return
	}
	merged := New(math.Min(h.min, other.min), math.Max(h.max, other.max))
	for _, src := range []*Histogram{h, other} {
		merged.total += src.total
		merged.underflow += src.underflow
		merged.overflow += src.overflow
		for i, c := range src.counts {
			if c == 0 {
				continue
			}
			center := src.min + (float64(i)+0.5)*math.Max(src.width, 0)
			if merged.width == 0 {
				merged.counts[0] += c
				continue
			}
			b := int((center - merged.min) / merged.width)
			if b < 0 {
				b = 0
			}
			if b >= Buckets {
				b = Buckets - 1
			}
			merged.counts[b] += c
		}
	}
	*h = *merged
}

// SizeBytes returns the approximate memory footprint.
func (h *Histogram) SizeBytes() int { return Buckets*8 + 5*8 }

// AppendBinary serializes the histogram (fixed 5 floats/ints header +
// bucket counts, little endian) for the segment footer.
func (h *Histogram) AppendBinary(dst []byte) []byte {
	var tmp [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(tmp[:], u)
		dst = append(dst, tmp[:]...)
	}
	put(math.Float64bits(h.min))
	put(math.Float64bits(h.max))
	put(uint64(h.total))
	put(uint64(h.underflow))
	put(uint64(h.overflow))
	for _, c := range h.counts {
		put(uint64(c))
	}
	return dst
}

// BinarySize is the encoded length of one histogram.
const BinarySize = (5 + Buckets) * 8

// FromBinary decodes a histogram serialized by AppendBinary. It
// reports false when the buffer is too short.
func FromBinary(b []byte) (*Histogram, bool) {
	if len(b) < BinarySize {
		return nil, false
	}
	get := func(i int) uint64 { return binary.LittleEndian.Uint64(b[i*8:]) }
	h := New(math.Float64frombits(get(0)), math.Float64frombits(get(1)))
	h.total = int64(get(2))
	h.underflow = int64(get(3))
	h.overflow = int64(get(4))
	for i := range h.counts {
		h.counts[i] = int64(get(5 + i))
	}
	return h, true
}

func frac(a, b int64) float64 { return float64(a) / float64(b) }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
