package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits") // concurrent get-or-create
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Load(); got != workers*perWorker {
		t.Fatalf("hits = %d, want %d", got, workers*perWorker)
	}
}

func TestNilCounterSafe(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter should load 0")
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	r.Counter("b").Add(3)
	base := r.Snapshot()
	r.Counter("a").Add(5)
	r.Counter("c").Add(7)
	d := r.Snapshot().Diff(base)
	if d.Get("a") != 5 || d.Get("b") != 0 || d.Get("c") != 7 {
		t.Fatalf("diff = %v", d)
	}
}

func TestWriteToSortedFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(2)
	r.Counter("alpha").Add(1)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := "alpha 1\nzeta 2\n"
	if sb.String() != want {
		t.Fatalf("export = %q, want %q", sb.String(), want)
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("query")
	plan := root.Child("plan")
	plan.End()
	exec := root.Child("execute")
	exec.SetDuration(5 * time.Millisecond)
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "plan" || kids[1].Name() != "execute" {
		t.Fatalf("children = %v", kids)
	}
	if exec.Duration() != 5*time.Millisecond {
		t.Fatalf("synthetic duration = %v", exec.Duration())
	}
	out := root.String()
	if !strings.Contains(out, "query:") || !strings.Contains(out, "  plan:") {
		t.Fatalf("render = %q", out)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil span child should be nil")
	}
	c.End()
	c.SetDuration(time.Second)
	if s.Duration() != 0 || s.String() != "" || s.Children() != nil {
		t.Fatal("nil span should be inert")
	}
}

func TestScanStatsSkipRatio(t *testing.T) {
	var s *ScanStats
	if s.SkipRatio() != 0 {
		t.Fatal("nil stats skip ratio")
	}
	s = &ScanStats{NumTiles: 10}
	s.TilesScanned.Add(6)
	s.TilesSkipped.Add(4)
	if got := s.SkipRatio(); got != 0.4 {
		t.Fatalf("skip ratio = %v, want 0.4", got)
	}
}
