package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits") // concurrent get-or-create
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Load(); got != workers*perWorker {
		t.Fatalf("hits = %d, want %d", got, workers*perWorker)
	}
}

func TestNilCounterSafe(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter should load 0")
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	r.Counter("b").Add(3)
	base := r.Snapshot()
	r.Counter("a").Add(5)
	r.Counter("c").Add(7)
	d := r.Snapshot().Diff(base)
	if d.Get("a") != 5 || d.Get("b") != 0 || d.Get("c") != 7 {
		t.Fatalf("diff = %v", d)
	}
}

func TestWriteToSortedFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(2)
	r.Counter("alpha").Add(1)
	r.Gauge("mid").Set(1.5)
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE alpha counter\n" +
		"alpha 1\n" +
		"# TYPE zeta counter\n" +
		"zeta 2\n" +
		"# TYPE mid gauge\n" +
		"mid 1.5\n" +
		"# TYPE lat histogram\n" +
		"lat_bucket{le=\"1\"} 1\n" +
		"lat_bucket{le=\"10\"} 2\n" +
		"lat_bucket{le=\"+Inf\"} 3\n" +
		"lat_sum 55.5\n" +
		"lat_count 3\n"
	if sb.String() != want {
		t.Fatalf("export = %q, want %q", sb.String(), want)
	}
}

// Regression: Diff used to iterate only the newer snapshot's names,
// silently dropping instruments present only in the base (e.g. after
// comparing against a different registry). They must surface as
// negative deltas.
func TestSnapshotDiffKeepsBaseOnlyNames(t *testing.T) {
	older := NewRegistry()
	older.Counter("gone").Add(4)
	older.Gauge("gone_gauge").Set(2.5)
	gh := older.Histogram("gone_hist", []float64{1})
	gh.Observe(0.5)
	base := older.Snapshot()

	newer := NewRegistry()
	newer.Counter("fresh").Add(1)
	d := newer.Snapshot().Diff(base)

	if d.Get("fresh") != 1 {
		t.Fatalf("fresh = %d, want 1", d.Get("fresh"))
	}
	if d.Get("gone") != -4 {
		t.Fatalf("gone = %d, want -4 (base-only counters must not be dropped)", d.Get("gone"))
	}
	if d.GaugeVal("gone_gauge") != -2.5 {
		t.Fatalf("gone_gauge = %v, want -2.5", d.GaugeVal("gone_gauge"))
	}
	hs := d.Hist("gone_hist")
	if hs.Count != -1 || hs.Sum != -0.5 {
		t.Fatalf("gone_hist = %+v, want count -1 sum -0.5", hs)
	}
}

// Stress for the -race detector: concurrent get-or-create of all
// three instrument kinds interleaved with snapshots and exports.
func TestRegistryConcurrentMixed(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{1, 10, 100}).Observe(float64(i % 200))
				if i%100 == 0 {
					s := r.Snapshot()
					var sb strings.Builder
					if _, err := s.WriteTo(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	const n = workers * perWorker
	if got := r.Counter("c").Load(); got != n {
		t.Fatalf("counter = %d, want %d", got, n)
	}
	if got := r.Gauge("g").Load(); got != n {
		t.Fatalf("gauge = %v, want %d", got, n)
	}
	if got := r.Histogram("h", nil).Snapshot().Count; got != n {
		t.Fatalf("histogram count = %d, want %d", got, n)
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("query")
	plan := root.Child("plan")
	plan.End()
	exec := root.Child("execute")
	exec.SetDuration(5 * time.Millisecond)
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "plan" || kids[1].Name() != "execute" {
		t.Fatalf("children = %v", kids)
	}
	if exec.Duration() != 5*time.Millisecond {
		t.Fatalf("synthetic duration = %v", exec.Duration())
	}
	out := root.String()
	if !strings.Contains(out, "query:") || !strings.Contains(out, "  plan:") {
		t.Fatalf("render = %q", out)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil span child should be nil")
	}
	c.End()
	c.SetDuration(time.Second)
	if s.Duration() != 0 || s.String() != "" || s.Children() != nil {
		t.Fatal("nil span should be inert")
	}
}

func TestScanStatsSkipRatio(t *testing.T) {
	var s *ScanStats
	if s.SkipRatio() != 0 {
		t.Fatal("nil stats skip ratio")
	}
	s = &ScanStats{NumTiles: 10}
	s.TilesScanned.Add(6)
	s.TilesSkipped.Add(4)
	if got := s.SkipRatio(); got != 0.4 {
		t.Fatalf("skip ratio = %v, want 0.4", got)
	}
}
