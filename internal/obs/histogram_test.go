package obs

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestHistogramObserveBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.5 and 1 land in le=1 (SearchFloat64s: first bound >= v).
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 556.5 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
}

func TestNilHistogramSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should be inert")
	}
	if err := h.Merge(NewHistogram(nil)); err != nil {
		t.Fatal(err)
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot should be zero")
	}
}

// Property: merging two histograms reports exactly what one histogram
// recording the union of both sample streams would have — bucket by
// bucket, count, and sum (within float tolerance for the sum, whose
// addition order differs).
func TestHistogramMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := ExpBuckets(0.001, 10, 6)
	for trial := 0; trial < 50; trial++ {
		a := NewHistogram(bounds)
		b := NewHistogram(bounds)
		union := NewHistogram(bounds)
		for i, n := 0, rng.Intn(200); i < n; i++ {
			v := math.Exp(rng.Float64()*20 - 10) // spread across all buckets
			a.Observe(v)
			union.Observe(v)
		}
		for i, n := 0, rng.Intn(200); i < n; i++ {
			v := math.Exp(rng.Float64()*20 - 10)
			b.Observe(v)
			union.Observe(v)
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		got, want := a.Snapshot(), union.Snapshot()
		if got.Count != want.Count {
			t.Fatalf("trial %d: count %d, want %d", trial, got.Count, want.Count)
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("trial %d bucket %d: %d, want %d", trial, i, got.Counts[i], want.Counts[i])
			}
		}
		if diff := math.Abs(got.Sum - want.Sum); diff > 1e-9*math.Abs(want.Sum)+1e-12 {
			t.Fatalf("trial %d: sum %v, want %v", trial, got.Sum, want.Sum)
		}
	}
}

func TestHistogramMergeRejectsDifferentBounds(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	if err := a.Merge(NewHistogram([]float64{1, 2, 3})); err == nil {
		t.Fatal("merge with different bucket counts should fail")
	}
	if err := a.Merge(NewHistogram([]float64{1, 5})); err == nil {
		t.Fatal("merge with different bounds should fail")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	for v := 1.0; v <= 40; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 10 || p50 > 20 {
		t.Fatalf("p50 = %v, want within (10, 20]", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 30 || p99 > 40 {
		t.Fatalf("p99 = %v, want within (30, 40]", p99)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestHistogramSnapshotDiff(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	base := h.Snapshot()
	h.Observe(5)
	h.Observe(5)
	d := h.Snapshot().Diff(base)
	if d.Count != 2 || d.Sum != 10 {
		t.Fatalf("diff count=%d sum=%v", d.Count, d.Sum)
	}
	if d.Counts[0] != 0 || d.Counts[1] != 2 {
		t.Fatalf("diff counts = %v", d.Counts)
	}
}

func TestGaugeSetAddLoad(t *testing.T) {
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Load() != 0 {
		t.Fatal("nil gauge should be inert")
	}
	g = &Gauge{}
	g.Set(10.5)
	g.Add(-3)
	g.Add(0.5)
	if got := g.Load(); got != 8 {
		t.Fatalf("gauge = %v, want 8", got)
	}
}

func TestQueryRegistryLifecycle(t *testing.T) {
	r := NewQueryRegistry()
	st := &ScanStats{}
	st.RowsScanned.Add(7)
	st.TilesScanned.Add(2)
	st.BlockBytes.Add(1024)
	h := r.Begin("abcd", []string{"events"}, []*ScanStats{st})
	if r.NumLive() != 1 {
		t.Fatalf("live = %d, want 1", r.NumLive())
	}
	live := r.Live()
	if len(live) != 1 {
		t.Fatalf("Live() = %d entries", len(live))
	}
	p := live[0]
	if p.ID != h.ID || p.Digest != "abcd" || p.Rows != 7 || p.TilesScanned != 2 || p.Bytes != 1024 {
		t.Fatalf("progress = %+v", p)
	}
	h.Finish()
	h.Finish() // idempotent
	if r.NumLive() != 0 {
		t.Fatalf("live after finish = %d", r.NumLive())
	}
	var nilH *QueryHandle
	nilH.Finish()
	if rows, _, _, _ := nilH.Progress(); rows != 0 {
		t.Fatal("nil handle progress")
	}
}

func TestTraceRingEvictsOldest(t *testing.T) {
	ring := NewTraceRing(3)
	for i := uint64(1); i <= 5; i++ {
		ring.Add(QueryTrace{ID: i})
	}
	got := ring.Last(0)
	if len(got) != 3 || got[0].ID != 3 || got[2].ID != 5 {
		t.Fatalf("ring = %+v", got)
	}
	if last := ring.Last(2); len(last) != 2 || last[0].ID != 4 {
		t.Fatalf("last(2) = %+v", last)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	root := StartSpan("query")
	child := root.Child("execute")
	child.End()
	root.End()
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, []QueryTrace{{ID: 7, Digest: "beef", Root: root}}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"traceEvents"`, `"query beef"`, `"execute"`, `"ph":"X"`, `"tid":7`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace %q missing %q", out, want)
		}
	}
}
