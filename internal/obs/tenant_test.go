package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTenantContext(t *testing.T) {
	if got := TenantFrom(context.Background()); got != "" {
		t.Fatalf("TenantFrom(Background) = %q, want empty", got)
	}
	ctx := WithTenant(context.Background(), "acme")
	if got := TenantFrom(ctx); got != "acme" {
		t.Fatalf("TenantFrom = %q, want acme", got)
	}
	// Empty tenant is a no-op wrap.
	if got := TenantFrom(WithTenant(context.Background(), "")); got != "" {
		t.Fatalf("TenantFrom(WithTenant(\"\")) = %q, want empty", got)
	}
	if got := TenantFrom(nil); got != "" {
		t.Fatalf("TenantFrom(nil) = %q, want empty", got)
	}
}

func TestTenantRegistryStablePointers(t *testing.T) {
	r := NewTenantRegistry()
	a := r.Get("a")
	a.Queries.Inc()
	if again := r.Get("a"); again != a {
		t.Fatal("Get returned a different pointer for the same tenant")
	}
	if got := r.Get("a").Queries.Load(); got != 1 {
		t.Fatalf("Queries = %d, want 1", got)
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("Names = %v", names)
	}
}

func TestTenantRegistryWriteTo(t *testing.T) {
	r := NewTenantRegistry()
	// Empty registry emits nothing (no dangling TYPE lines).
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("empty registry wrote %q", sb.String())
	}

	r.Get("b").Queries.Add(3)
	r.Get("a").RowsReturned.Add(7)
	r.Get("a").PoolQuota.Set(1 << 20)
	sb.Reset()
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE tenant_queries_total counter",
		`tenant_queries_total{tenant="b"} 3`,
		`tenant_queries_total{tenant="a"} 0`,
		`tenant_rows_returned_total{tenant="a"} 7`,
		"# TYPE tenant_pool_quota_bytes gauge",
		`tenant_pool_quota_bytes{tenant="a"} 1.048576e+06`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTo output missing %q:\n%s", want, out)
		}
	}
	// Sorted tenant order within each metric.
	if strings.Index(out, `tenant_queries_total{tenant="a"}`) > strings.Index(out, `tenant_queries_total{tenant="b"}`) {
		t.Error("tenants not sorted in WriteTo output")
	}
}
