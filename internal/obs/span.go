package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one node of an execution trace: a named wall-time interval
// with child spans. Durations use the monotonic clock carried by
// time.Time. All methods are nil-safe — when tracing is disabled the
// caller holds a nil *Span and every call is a cheap no-op — so
// instrumented code never branches on an "enabled" flag.
type Span struct {
	name string

	mu       sync.Mutex
	start    time.Time
	dur      time.Duration
	ended    bool
	children []*Span
}

// StartSpan starts a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a child span. Safe on a nil receiver (returns nil, so
// whole disabled subtrees cost one pointer comparison per call).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span's clock. Subsequent Ends are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// SetDuration overrides the measured duration — used to graft
// externally measured intervals (e.g. the tile.Metrics load breakdown)
// into a trace tree as synthetic spans.
func (s *Span) SetDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dur = d
	s.ended = true
	s.mu.Unlock()
}

// StartTime returns when the span started (zero on nil).
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the measured duration; a still-running span reports
// the time elapsed so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Children returns the child spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// String renders the span tree with durations, one node per line.
func (s *Span) String() string {
	if s == nil {
		return ""
	}
	var sb strings.Builder
	s.write(&sb, 0)
	return sb.String()
}

func (s *Span) write(sb *strings.Builder, depth int) {
	fmt.Fprintf(sb, "%s%s: %s\n", strings.Repeat("  ", depth), s.name,
		s.Duration().Round(time.Microsecond))
	for _, c := range s.Children() {
		c.write(sb, depth+1)
	}
}
