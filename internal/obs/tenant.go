package obs

// Multi-tenant accounting: tenant identity rides the query context
// (WithTenant/TenantFrom), and every tenant gets its own counter
// block in a process-wide registry, exported on /metrics as labeled
// Prometheus series (`tenant_queries_total{tenant="a"} 3`). The
// per-tenant instruments are plain Counters/Gauges, so hot paths pay
// one registry lookup per query, not per row.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
)

type tenantKey struct{}

// WithTenant returns a context carrying the tenant identity. Scans,
// buffer-pool charging, and query accounting attribute their work to
// it.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom extracts the tenant identity from a context ("" when the
// context carries none — library calls without a service in front).
func TenantFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// TenantCounters is one tenant's instrument block.
type TenantCounters struct {
	// Queries counts completed queries; Cancelled the subset that
	// ended on context cancellation or deadline.
	Queries   Counter
	Cancelled Counter
	// RowsReturned totals final result rows; BytesScanned the stored
	// bytes this tenant's scans read from disk (buffer-pool misses).
	RowsReturned Counter
	BytesScanned Counter
	// QueueWaits counts queries that waited in the admission queue;
	// Rejections those turned away (queue full or timed out).
	QueueWaits Counter
	Rejections Counter
	// PoolBytes is the tenant's resident buffer-pool payload bytes;
	// PoolQuota its configured byte quota (0 = unquoted).
	PoolBytes Gauge
	PoolQuota Gauge
}

// TenantRegistry maps tenant names to their counter blocks.
type TenantRegistry struct {
	mu sync.RWMutex
	m  map[string]*TenantCounters
}

// NewTenantRegistry returns an empty registry.
func NewTenantRegistry() *TenantRegistry {
	return &TenantRegistry{m: map[string]*TenantCounters{}}
}

// Tenants is the process-wide tenant registry.
var Tenants = NewTenantRegistry()

// Get returns tenant's counter block, creating it on first use. The
// pointer is stable for the process lifetime.
func (r *TenantRegistry) Get(tenant string) *TenantCounters {
	r.mu.RLock()
	tc, ok := r.m[tenant]
	r.mu.RUnlock()
	if ok {
		return tc
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if tc, ok = r.m[tenant]; ok {
		return tc
	}
	tc = &TenantCounters{}
	r.m[tenant] = tc
	return tc
}

// Names returns the known tenants, sorted.
func (r *TenantRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// tenantMetric describes one exported per-tenant series.
type tenantMetric struct {
	name  string
	kind  string // "counter" or "gauge"
	value func(*TenantCounters) float64
}

var tenantMetrics = []tenantMetric{
	{"tenant_queries_total", "counter", func(t *TenantCounters) float64 { return float64(t.Queries.Load()) }},
	{"tenant_queries_cancelled_total", "counter", func(t *TenantCounters) float64 { return float64(t.Cancelled.Load()) }},
	{"tenant_rows_returned_total", "counter", func(t *TenantCounters) float64 { return float64(t.RowsReturned.Load()) }},
	{"tenant_bytes_scanned_total", "counter", func(t *TenantCounters) float64 { return float64(t.BytesScanned.Load()) }},
	{"tenant_queue_waits_total", "counter", func(t *TenantCounters) float64 { return float64(t.QueueWaits.Load()) }},
	{"tenant_rejections_total", "counter", func(t *TenantCounters) float64 { return float64(t.Rejections.Load()) }},
	{"tenant_pool_bytes", "gauge", func(t *TenantCounters) float64 { return t.PoolBytes.Load() }},
	{"tenant_pool_quota_bytes", "gauge", func(t *TenantCounters) float64 { return t.PoolQuota.Load() }},
}

// WriteTo exports every tenant's instruments as labeled Prometheus
// series, one TYPE line per metric followed by one sample per tenant.
func (r *TenantRegistry) WriteTo(w io.Writer) (int64, error) {
	names := r.Names()
	if len(names) == 0 {
		return 0, nil
	}
	blocks := make([]*TenantCounters, len(names))
	for i, name := range names {
		blocks[i] = r.Get(name)
	}
	var total int64
	for _, m := range tenantMetrics {
		n, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind)
		total += int64(n)
		if err != nil {
			return total, err
		}
		for i, name := range names {
			n, err := fmt.Fprintf(w, "%s{tenant=%q} %s\n", m.name, name, formatFloat(m.value(blocks[i])))
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// WriteAllMetrics exports the default registry followed by the
// per-tenant series — the full /metrics payload, shared by the debug
// server and the query service.
func WriteAllMetrics(w io.Writer) (int64, error) {
	n1, err := Default.WriteTo(w)
	if err != nil {
		return n1, err
	}
	n2, err := Tenants.WriteTo(w)
	return n1 + n2, err
}
