package obs

import (
	"sync"
	"time"
)

// QueryHandle is one in-flight query in the live-query registry:
// identity, start time, plan digest, and live progress read straight
// from the scans' ScanStats — no extra hot-path writes beyond what
// EXPLAIN ANALYZE accounting already pays.
type QueryHandle struct {
	// ID is the process-unique query id (monotonic).
	ID uint64
	// Start is when execution began.
	Start time.Time
	// Digest identifies the plan shape (a short hash over the operator
	// tree; identical queries share a digest).
	Digest string
	// Tables names the scanned relations.
	Tables []string

	reg   *QueryRegistry
	scans []*ScanStats
	done  bool
}

// Progress sums the handle's scan counters: rows and tiles scanned so
// far, tiles skipped, and stored bytes read from disk.
func (h *QueryHandle) Progress() (rows, tilesScanned, tilesSkipped, bytes int64) {
	if h == nil {
		return
	}
	for _, st := range h.scans {
		rows += st.RowsScanned.Load()
		tilesScanned += st.TilesScanned.Load()
		tilesSkipped += st.TilesSkipped.Load()
		bytes += st.BlockBytes.Load()
	}
	return
}

// Finish deregisters the query. Idempotent; safe on nil.
func (h *QueryHandle) Finish() {
	if h == nil || h.reg == nil {
		return
	}
	h.reg.mu.Lock()
	if !h.done {
		h.done = true
		delete(h.reg.live, h.ID)
	}
	h.reg.mu.Unlock()
	QueriesActive.Set(float64(h.reg.NumLive()))
}

// QueryRegistry is a process-wide table of in-flight queries. Every
// Run/RunAnalyzed registers on start and deregisters on completion;
// the diagnostics server lists the table as /debug/queries.
type QueryRegistry struct {
	mu     sync.Mutex
	nextID uint64
	live   map[uint64]*QueryHandle
}

// NewQueryRegistry returns an empty registry.
func NewQueryRegistry() *QueryRegistry {
	return &QueryRegistry{live: map[uint64]*QueryHandle{}}
}

// Queries is the process-wide live-query registry.
var Queries = NewQueryRegistry()

// Begin registers a query and returns its handle. scans are the
// per-scan statistics the execution fills; progress is read from them
// live.
func (r *QueryRegistry) Begin(digest string, tables []string, scans []*ScanStats) *QueryHandle {
	r.mu.Lock()
	r.nextID++
	h := &QueryHandle{
		ID:     r.nextID,
		Start:  time.Now(),
		Digest: digest,
		Tables: tables,
		reg:    r,
		scans:  scans,
	}
	r.live[h.ID] = h
	n := len(r.live)
	r.mu.Unlock()
	QueriesActive.Set(float64(n))
	return h
}

// NumLive returns the number of in-flight queries.
func (r *QueryRegistry) NumLive() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// QueryProgress is a point-in-time view of one in-flight query.
type QueryProgress struct {
	ID           uint64    `json:"id"`
	Digest       string    `json:"plan_digest"`
	Tables       []string  `json:"tables,omitempty"`
	Start        time.Time `json:"start"`
	ElapsedMs    float64   `json:"elapsed_ms"`
	Rows         int64     `json:"rows_scanned"`
	TilesScanned int64     `json:"tiles_scanned"`
	TilesSkipped int64     `json:"tiles_skipped"`
	Bytes        int64     `json:"bytes_read"`
}

// Live snapshots every in-flight query, oldest first.
func (r *QueryRegistry) Live() []QueryProgress {
	r.mu.Lock()
	handles := make([]*QueryHandle, 0, len(r.live))
	for _, h := range r.live {
		handles = append(handles, h)
	}
	r.mu.Unlock()

	out := make([]QueryProgress, 0, len(handles))
	for _, h := range handles {
		rows, ts, tk, bytes := h.Progress()
		out = append(out, QueryProgress{
			ID: h.ID, Digest: h.Digest, Tables: h.Tables, Start: h.Start,
			ElapsedMs:    float64(time.Since(h.Start).Microseconds()) / 1e3,
			Rows:         rows,
			TilesScanned: ts, TilesSkipped: tk, Bytes: bytes,
		})
	}
	sortProgress(out)
	return out
}

func sortProgress(ps []QueryProgress) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].ID < ps[j-1].ID; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
