package obs

import (
	"math"
	"sync/atomic"
)

// Gauge is a point-in-time value: bytes resident in a cache, live
// segments, queries in flight. Unlike a Counter it can go down, and
// unlike a Counter it is a float64 so ratios (bufpool hit rate) fit
// the same instrument. All methods are nil-safe, matching Counter.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (negative to decrease). Levels
// maintained by multiple writers — e.g. resident bytes across several
// buffer pools — Add their deltas so the gauge tracks the global sum.
func (g *Gauge) Add(delta float64) {
	if g == nil || delta == 0 {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
