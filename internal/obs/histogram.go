package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution of observed values —
// latencies, sizes — cheap enough for per-query recording: one atomic
// add into the matching bucket, one atomic add to the count, one CAS
// loop for the float sum. Bucket bounds are fixed at construction
// (exponential layouts via ExpBuckets), so two histograms with equal
// bounds merge bucket-by-bucket and snapshots subtract for deltas.
type Histogram struct {
	bounds  []float64      // sorted upper bounds; implicit +Inf last bucket
	buckets []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits
}

// ExpBuckets returns n exponentially growing upper bounds starting at
// start: start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the default layout for latency histograms:
// 1µs → ~537s in ×2 steps.
var DurationBuckets = ExpBuckets(1e-6, 2, 30)

// SizeBuckets is the default layout for byte-size histograms:
// 1KiB → 1GiB in ×4 steps.
var SizeBuckets = ExpBuckets(1024, 4, 11)

// NewHistogram builds a histogram with the given upper bounds (nil
// selects DurationBuckets). Bounds must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; +Inf bucket past the end
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Merge folds other's observations into h. Both histograms must share
// the same bucket bounds; after a successful merge h reports exactly
// what recording the union of both sample streams would have.
func (h *Histogram) Merge(other *Histogram) error {
	if h == nil || other == nil {
		return nil
	}
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d bounds", len(h.bounds), len(other.bounds))
	}
	for i, b := range h.bounds {
		if b != other.bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds at %d (%g vs %g)", i, b, other.bounds[i])
		}
	}
	for i := range other.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
	h.count.Add(other.count.Load())
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + other.Sum())
		if h.sumBits.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// Snapshot copies the histogram state. Concurrent observations may
// straddle the copy (a bucket add visible without its count add); the
// skew is at most the observations in flight at that instant.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a histogram: per-bucket
// counts (Counts[i] observed ≤ Bounds[i]; the final slot is the +Inf
// bucket), total count, and value sum.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the containing bucket. Values beyond the last
// bound report the last bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: no upper bound to interpolate toward.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Diff returns s minus base, bucket by bucket — the distribution of
// observations recorded between the two snapshots. An empty base
// passes s through.
func (s HistSnapshot) Diff(base HistSnapshot) HistSnapshot {
	if len(base.Counts) == 0 {
		return s
	}
	if len(s.Counts) == 0 {
		// Histogram present only in the base: report it negated so the
		// delta still accounts for it (mirrors Snapshot.Diff counters).
		return base.Neg()
	}
	out := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - base.Count,
		Sum:    s.Sum - base.Sum,
	}
	for i := range s.Counts {
		c := s.Counts[i]
		if i < len(base.Counts) {
			c -= base.Counts[i]
		}
		out.Counts[i] = c
	}
	return out
}

// Neg returns the snapshot with every count and the sum negated.
func (s HistSnapshot) Neg() HistSnapshot {
	out := HistSnapshot{Bounds: s.Bounds, Counts: make([]int64, len(s.Counts)), Count: -s.Count, Sum: -s.Sum}
	for i, c := range s.Counts {
		out.Counts[i] = -c
	}
	return out
}
