package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// QueryTrace is one completed query's span tree, retained in the
// trace ring for post-hoc inspection (/debug/trace).
type QueryTrace struct {
	ID     uint64
	Digest string
	Root   *Span
}

// TraceRing is a fixed-capacity ring buffer of recent query traces.
type TraceRing struct {
	mu   sync.Mutex
	buf  []QueryTrace
	next int
	n    int
}

// NewTraceRing returns a ring retaining the last capacity traces.
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]QueryTrace, capacity)}
}

// Traces is the process-wide ring of recent query traces.
var Traces = NewTraceRing(128)

// Add records a completed trace, evicting the oldest when full.
func (t *TraceRing) Add(qt QueryTrace) {
	t.mu.Lock()
	t.buf[t.next] = qt
	t.next = (t.next + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	t.mu.Unlock()
}

// Last returns up to n most recent traces, oldest first (n <= 0 means
// everything retained).
func (t *TraceRing) Last(n int) []QueryTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]QueryTrace, 0, n)
	start := t.next - n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// WriteChromeTrace exports the traces as Chrome trace-event JSON (the
// format chrome://tracing and Perfetto load): one complete ("X")
// event per span, query id as the thread id, timestamps in
// microseconds since the Unix epoch.
func WriteChromeTrace(w io.Writer, traces []QueryTrace) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":["); err != nil {
		return err
	}
	first := true
	for _, qt := range traces {
		if err := writeChromeSpan(w, qt, qt.Root, &first); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

func writeChromeSpan(w io.Writer, qt QueryTrace, s *Span, first *bool) error {
	if s == nil {
		return nil
	}
	sep := ","
	if *first {
		sep = ""
		*first = false
	}
	name := s.Name()
	if s == qt.Root && qt.Digest != "" {
		name = fmt.Sprintf("%s %s", name, qt.Digest)
	}
	_, err := fmt.Fprintf(w, `%s{"name":%q,"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"args":{"query_id":%d}}`,
		sep, escapeName(name), qt.ID,
		s.StartTime().UnixMicro(), s.Duration().Microseconds(), qt.ID)
	if err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := writeChromeSpan(w, qt, c, first); err != nil {
			return err
		}
	}
	return nil
}

func escapeName(s string) string {
	return strings.Map(func(r rune) rune {
		if r < 0x20 {
			return ' '
		}
		return r
	}, s)
}
