package obs

import "sync/atomic"

// ScanStats collects the counters of one relation scan for EXPLAIN
// ANALYZE. Relations batch their updates per tile (or per worker
// chunk), so the atomic adds are off the per-row path. NumTiles is set
// by the planner before the scan starts and read only after it ends.
type ScanStats struct {
	// NumTiles is the total tile count of the scanned relation (0 for
	// formats without tiles).
	NumTiles int64

	// SegmentsLive is the number of live segments backing the scanned
	// relation (0 for single-file and in-memory formats). Set by the
	// planner alongside NumTiles.
	SegmentsLive int64

	// Morsels is the number of work units the scan was cut into for
	// the morsel scheduler (EXPLAIN ANALYZE `morsels=`).
	Morsels atomic.Int64

	TilesScanned   atomic.Int64
	TilesSkipped   atomic.Int64
	RowsScanned    atomic.Int64
	ColumnHits     atomic.Int64
	JSONBFallbacks atomic.Int64
	CastErrors     atomic.Int64

	// Batch-execution split: batches emitted by this scan, rows whose
	// accesses were all served from typed vectors, and rows that
	// needed at least one materialized (boxed) cell. Zero for scans
	// taking the row-at-a-time path.
	Batches        atomic.Int64
	RowsVectorized atomic.Int64
	RowsFallback   atomic.Int64

	// Segment I/O split (zero for in-memory relations): blocks and
	// stored bytes read from disk, and buffer-pool hits vs misses for
	// this scan's block accesses.
	BlocksRead atomic.Int64
	BlockBytes atomic.Int64
	PoolHits   atomic.Int64
	PoolMisses atomic.Int64

	// BlockStore split (zero when every block was pool-resident):
	// ranged read requests this scan issued (retry attempts included),
	// payload bytes those requests returned (coalescing gap bytes
	// included), block fetches saved by coalescing, pool hits on
	// readahead-resident blocks, and transient-failure retries.
	StoreRangeReads   atomic.Int64
	StoreBytesRead    atomic.Int64
	StoreCoalesced    atomic.Int64
	StorePrefetchHits atomic.Int64
	StoreRetries      atomic.Int64
}

// SkipRatio returns the fraction of tiles skipped of those considered.
func (s *ScanStats) SkipRatio() float64 {
	if s == nil {
		return 0
	}
	total := s.TilesScanned.Load() + s.TilesSkipped.Load()
	if total == 0 {
		return 0
	}
	return float64(s.TilesSkipped.Load()) / float64(total)
}
