// Package obs is the observability layer of the engine: atomic
// counters, gauges, and histograms aggregated in a process-wide
// Registry, a nil-safe span tracer for wall-time breakdowns, a
// live-query registry for in-flight progress, and the per-scan
// statistics the query path fills for EXPLAIN ANALYZE. Everything
// here is designed to stay off the hot path: counters are batched per
// tile or chunk before one atomic add, histograms are two atomic adds
// and a CAS, and a nil *Span makes the whole tracing API a no-op.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry is a named collection of counters, gauges, and histograms.
// Instruments are created on first use and live for the lifetime of
// the registry; reads never block writers (instrument updates are
// lock-free once obtained).
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it if
// needed. The returned pointer is stable; hot paths should obtain it
// once and keep it.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if
// needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds if needed (nil bounds select
// DurationBuckets). The first registration fixes the bounds; later
// calls return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.histograms[name] = h
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current instrument values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Diff returns s minus base, instrument by instrument. Names absent
// from base count from zero; names present only in base are emitted
// as negative values (a counter that vanished — fresh registry,
// renamed instrument — still shows up in the delta instead of being
// silently dropped).
func (s Snapshot) Diff(base Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - base.Counters[name]
	}
	for name, v := range base.Counters {
		if _, ok := s.Counters[name]; !ok {
			out.Counters[name] = -v
		}
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v - base.Gauges[name]
	}
	for name, v := range base.Gauges {
		if _, ok := s.Gauges[name]; !ok {
			out.Gauges[name] = -v
		}
	}
	for name, v := range s.Histograms {
		out.Histograms[name] = v.Diff(base.Histograms[name])
	}
	for name, v := range base.Histograms {
		if _, ok := s.Histograms[name]; !ok {
			out.Histograms[name] = v.Neg()
		}
	}
	return out
}

// Get returns the snapshot counter value for name (0 when absent).
func (s Snapshot) Get(name string) int64 { return s.Counters[name] }

// GaugeVal returns the snapshot gauge value for name (0 when absent).
func (s Snapshot) GaugeVal(name string) float64 { return s.Gauges[name] }

// Hist returns the snapshot of the named histogram (zero when
// absent).
func (s Snapshot) Hist(name string) HistSnapshot { return s.Histograms[name] }

// WriteTo exports every instrument in Prometheus text exposition
// format, implementing io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	return r.Snapshot().WriteTo(w)
}

// WriteTo exports the snapshot in Prometheus text exposition format:
// one "# TYPE" line per metric followed by its samples, histograms as
// cumulative _bucket series plus _sum and _count, all sorted by
// metric name.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := emit("# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return total, err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := emit("# TYPE %s gauge\n%s %s\n", name, name, formatFloat(s.Gauges[name])); err != nil {
			return total, err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if err := emit("# TYPE %s histogram\n", name); err != nil {
			return total, err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if err := emit("%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum); err != nil {
				return total, err
			}
		}
		if err := emit("%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, h.Count, name, formatFloat(h.Sum), name, h.Count); err != nil {
			return total, err
		}
	}
	return total, nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Default is the process-wide registry every scan, load, and query
// reports into.
var Default = NewRegistry()

// The standard engine counters (see README "Observability" for the
// glossary and DESIGN.md for the paper-section mapping).
var (
	TilesScanned      = Default.Counter("tiles_scanned")
	TilesSkipped      = Default.Counter("tiles_skipped")
	RowsScanned       = Default.Counter("rows_scanned")
	RowsEmitted       = Default.Counter("rows_emitted")
	ColumnHits        = Default.Counter("column_hits")
	JSONBFallbacks    = Default.Counter("jsonb_fallbacks")
	CastErrors        = Default.Counter("cast_errors")
	BytesDecompressed = Default.Counter("bytes_decompressed")
	DocsLoaded        = Default.Counter("docs_loaded")
	TilesBuilt        = Default.Counter("tiles_built")
	QueriesRun        = Default.Counter("queries_run")
)

// On-demand ingest counters (structural-tape parsing; DESIGN.md §6.8).
var (
	// IngestDocsTape counts documents ingested through the structural
	// tape without materializing a jsonvalue tree.
	IngestDocsTape = Default.Counter("ingest_docs_tape")
	// IngestDocsTreeFallback counts documents ingested through the
	// boxed jsonvalue-tree path — tape-limit fallbacks, tree-mode
	// loads, tile recomputation, and synthesized star-schema side
	// documents.
	IngestDocsTreeFallback = Default.Counter("ingest_docs_tree_fallback")
	// IngestSubtreesSkipped counts subtrees the ingest walks skipped
	// via the tape (array elements past the slot cap).
	IngestSubtreesSkipped = Default.Counter("ingest_subtrees_skipped")
	// IngestTapeBytes counts bytes of structural tape built (8 bytes
	// per tape word).
	IngestTapeBytes = Default.Counter("ingest_tape_bytes")
)

// Batch-execution counters (vectorized query path).
var (
	// BatchesEmitted counts column batches produced by batch scans.
	BatchesEmitted = Default.Counter("batches_emitted")
	// RowsVectorized counts rows delivered in batches whose every
	// access was served from a typed column vector (zero-copy or
	// cheap-cast) — no per-cell boxing.
	RowsVectorized = Default.Counter("rows_vectorized")
	// RowsBatchFallback counts rows delivered in batches where at
	// least one access had to be materialized cell-by-cell (binary
	// JSON fallback, type outliers, renders).
	RowsBatchFallback = Default.Counter("rows_batch_fallback")
	// KernelDispatches counts invocations of vectorized predicate or
	// aggregate kernels (one per batch per compiled kernel tree).
	KernelDispatches = Default.Counter("kernel_dispatches")
)

// Segment persistence counters (disk-backed relations).
var (
	// SegmentBlocksRead counts blocks fetched from disk (buffer-pool
	// misses; hits never reach the disk).
	SegmentBlocksRead = Default.Counter("segment_blocks_read")
	// SegmentBytesRead counts stored (compressed) bytes read from disk.
	SegmentBytesRead = Default.Counter("segment_bytes_read")
	// BufpoolHits and BufpoolMisses count buffer-pool lookups during
	// scans; BufpoolEvictions counts blocks evicted to stay inside the
	// pool's capacity.
	BufpoolHits      = Default.Counter("bufpool_hits")
	BufpoolMisses    = Default.Counter("bufpool_misses")
	BufpoolEvictions = Default.Counter("bufpool_evictions")
)

// BlockStore counters (storage/compute separation; DESIGN.md §6.9).
var (
	// StoreRangeReads counts ranged read requests issued to block
	// stores (every attempt, retries included). On a remote store this
	// is the request count — the headline cost metric.
	StoreRangeReads = Default.Counter("store_range_reads")
	// StoreBytesRead counts payload bytes returned by ranged reads,
	// gap bytes of coalesced runs included.
	StoreBytesRead = Default.Counter("store_bytes_read")
	// StoreReadCoalesced counts block fetches that rode along in a
	// merged ranged read instead of issuing their own request — the
	// requests coalescing saved.
	StoreReadCoalesced = Default.Counter("store_read_coalesced")
	// StorePrefetchHits counts buffer-pool hits on blocks resident
	// because the morsel-path readahead fetched them ahead of the scan.
	StorePrefetchHits = Default.Counter("store_prefetch_hits")
	// StoreRetries counts transient read failures that were retried
	// (with backoff) rather than surfaced.
	StoreRetries = Default.Counter("store_retries")
)

// Dictionary-encoding counters (low-cardinality text columns).
var (
	// DictColumnsBuilt counts text columns dictionary-encoded at tile
	// extraction time (HLL NDV estimate under the configured threshold).
	DictColumnsBuilt = Default.Counter("dict_columns_built")
	// DictKernelShortcuts counts predicate-kernel invocations that
	// evaluated Cmp/LIKE/IN in code space — once per dictionary entry
	// instead of once per row.
	DictKernelShortcuts = Default.Counter("dict_kernel_shortcuts")
	// DictGroupByFastpath counts batches aggregated through the
	// array-indexed (code-keyed) GROUP BY fast path.
	DictGroupByFastpath = Default.Counter("dict_groupby_fastpath")
)

// Morsel-scheduler counters (dynamic parallel work distribution).
var (
	// MorselsDispatched counts morsels — tile/row-range work units —
	// pulled off shared scan queues (one increment per queue drain,
	// covering all its morsels).
	MorselsDispatched = Default.Counter("morsels_dispatched")
	// MorselQueueWaits counts workers that found the morsel queue
	// already dry before processing a single morsel — parallelism the
	// input was too small to use.
	MorselQueueWaits = Default.Counter("morsel_queue_waits")
	// AggPartitionedMerges counts GROUP BY merge phases that ran
	// hash-partitioned in parallel (vs the serial single-map fold used
	// at workers <= 1).
	AggPartitionedMerges = Default.Counter("agg_partitioned_merges")
)

// Shared worker-pool counters (the scheduler concurrent queries draw
// scan helpers from).
var (
	// SchedTasksRun counts tasks executed by shared-pool workers.
	SchedTasksRun = Default.Counter("sched_tasks_run")
	// SchedSubmitMisses counts helper submissions rejected because the
	// pool queue was full — scans that ran with less parallelism
	// because the machine was already saturated.
	SchedSubmitMisses = Default.Counter("sched_submit_misses")
	// SchedHelpersLate counts pool helpers that started only after
	// their scan had already drained its queue (pool latency the scan
	// absorbed inline).
	SchedHelpersLate = Default.Counter("sched_helpers_late")
)

// Admission-control counters (the query service's front door).
var (
	// AdmissionAdmitted counts queries that acquired an execution slot
	// (immediately or after queueing).
	AdmissionAdmitted = Default.Counter("admission_admitted")
	// AdmissionQueued counts queries that had to wait in the admission
	// queue before getting a slot.
	AdmissionQueued = Default.Counter("admission_queued")
	// AdmissionRejected counts queries turned away: queue full, queue
	// timeout, or server draining.
	AdmissionRejected = Default.Counter("admission_rejected")
	// QueriesCancelled counts queries that ended with a context
	// cancellation or deadline instead of a result.
	QueriesCancelled = Default.Counter("queries_cancelled")
)

// SkewBuckets is the layout for load-imbalance ratios (1.0 = perfectly
// balanced).
var SkewBuckets = []float64{1, 1.1, 1.25, 1.5, 2, 3, 5, 8}

// MorselWorkerSkew records, per parallel queue drain, the maximum over
// workers of morsels-pulled divided by the balanced share — how uneven
// the dynamic schedule ended up (1.0 = every worker pulled the same
// number of morsels).
var MorselWorkerSkew = Default.Histogram("morsel_worker_skew", SkewBuckets)

// Multi-segment table store counters (manifest + compaction).
var (
	// CompactionsRun counts completed compaction rounds (each merges
	// one group of segments into a larger one).
	CompactionsRun = Default.Counter("compactions_run")
	// CompactionBytesRewritten totals the bytes of merged segment
	// files written by compaction — the write amplification spent to
	// keep segment counts bounded.
	CompactionBytesRewritten = Default.Counter("compaction_bytes_rewritten")
	// ManifestRecoveries counts table-directory opens that had to
	// garbage-collect leftovers of an interrupted commit (orphaned
	// segments or half-written manifests).
	ManifestRecoveries = Default.Counter("manifest_recoveries")
)

// Point-in-time gauges.
var (
	// SegmentsLive tracks the number of currently open segments across
	// all directory-backed tables (opens add, closes and compaction
	// drops subtract).
	SegmentsLive = Default.Gauge("segments_live")
	// QueriesActive is the number of queries currently executing
	// (mirrors the live-query registry's size).
	QueriesActive = Default.Gauge("queries_active")
	// BufpoolBytes is the total decompressed payload bytes resident
	// across every buffer pool in the process.
	BufpoolBytes = Default.Gauge("bufpool_bytes")
	// BufpoolPinnedBytes is the payload bytes currently pinned by
	// outstanding handles across every pool. With no scan in flight it
	// must read 0 — a nonzero quiesced value means a query (cancelled
	// or not) leaked pins and its blocks can never be evicted.
	BufpoolPinnedBytes = Default.Gauge("bufpool_pinned_bytes")
	// BufpoolHitRatio is hits/(hits+misses) over all pool lookups so
	// far (0 before the first lookup). Refreshed after every scan.
	BufpoolHitRatio = Default.Gauge("bufpool_hit_ratio")
	// CompactionBacklog is the number of segments currently eligible
	// for compaction (members of tiers holding at least fan-in
	// segments), summed over all directory tables.
	CompactionBacklog = Default.Gauge("compaction_backlog")
	// QueriesQueued is the number of queries currently waiting in the
	// admission queue for an execution slot.
	QueriesQueued = Default.Gauge("queries_queued")
)

// Latency and size distributions.
var (
	// QueryWallSeconds, QueryPlanSeconds, and QueryExecSeconds are the
	// end-to-end, optimizer, and execution latency distributions over
	// every Run/RunAnalyzed in the process.
	QueryWallSeconds = Default.Histogram("query_wall_seconds", DurationBuckets)
	QueryPlanSeconds = Default.Histogram("query_plan_seconds", DurationBuckets)
	QueryExecSeconds = Default.Histogram("query_exec_seconds", DurationBuckets)
	// QueryRowsReturned is the result-size distribution.
	QueryRowsReturned = Default.Histogram("query_rows_returned", ExpBuckets(1, 4, 12))
	// CompactionSeconds is the duration distribution of compaction
	// rounds (merge + manifest publish).
	CompactionSeconds = Default.Histogram("compaction_seconds", DurationBuckets)
	// SegmentWriteSeconds and SegmentOpenSeconds time segment-file
	// writes (flush, merge) and metadata-only opens.
	SegmentWriteSeconds = Default.Histogram("segment_write_seconds", DurationBuckets)
	SegmentOpenSeconds  = Default.Histogram("segment_open_seconds", DurationBuckets)
	// SegmentWriteBytes is the size distribution of written segments.
	SegmentWriteBytes = Default.Histogram("segment_write_bytes", SizeBuckets)
	// ManifestCommitSeconds times durable manifest commits
	// (write + fsync + rename + dir sync).
	ManifestCommitSeconds = Default.Histogram("manifest_commit_seconds", DurationBuckets)
)
