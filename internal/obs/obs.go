// Package obs is the observability layer of the engine: atomic
// counters aggregated in a process-wide Registry, a nil-safe span
// tracer for wall-time breakdowns, and the per-scan statistics the
// query path fills for EXPLAIN ANALYZE. Everything here is designed to
// stay off the hot path: counters are batched per tile or chunk before
// one atomic add, and a nil *Span makes the whole tracing API a no-op.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry is a named collection of counters. Counters are created on
// first use and live for the lifetime of the registry; reads never
// block writers (counter updates are lock-free once obtained).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}}
}

// Counter returns the counter registered under name, creating it if
// needed. The returned pointer is stable; hot paths should obtain it
// once and keep it.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Snapshot is a point-in-time copy of every counter value.
type Snapshot map[string]int64

// Snapshot copies the current counter values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := make(Snapshot, len(r.counters))
	for name, c := range r.counters {
		s[name] = c.Load()
	}
	return s
}

// Diff returns s minus base, counter by counter (counters absent from
// base count from zero).
func (s Snapshot) Diff(base Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for name, v := range s {
		out[name] = v - base[name]
	}
	return out
}

// Get returns the snapshot value for name (0 when absent).
func (s Snapshot) Get(name string) int64 { return s[name] }

// WriteTo exports every counter as "name value" lines in sorted order
// (expvar-style text format), implementing io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	return r.Snapshot().WriteTo(w)
}

// WriteTo exports the snapshot as sorted "name value" lines.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	var total int64
	for _, name := range names {
		n, err := fmt.Fprintf(w, "%s %d\n", name, s[name])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Default is the process-wide registry every scan and load reports
// into.
var Default = NewRegistry()

// The standard engine counters (see README "Observability" for the
// glossary and DESIGN.md for the paper-section mapping).
var (
	TilesScanned      = Default.Counter("tiles_scanned")
	TilesSkipped      = Default.Counter("tiles_skipped")
	RowsScanned       = Default.Counter("rows_scanned")
	RowsEmitted       = Default.Counter("rows_emitted")
	ColumnHits        = Default.Counter("column_hits")
	JSONBFallbacks    = Default.Counter("jsonb_fallbacks")
	CastErrors        = Default.Counter("cast_errors")
	BytesDecompressed = Default.Counter("bytes_decompressed")
	DocsLoaded        = Default.Counter("docs_loaded")
	TilesBuilt        = Default.Counter("tiles_built")
	QueriesRun        = Default.Counter("queries_run")
)

// Batch-execution counters (vectorized query path).
var (
	// BatchesEmitted counts column batches produced by batch scans.
	BatchesEmitted = Default.Counter("batches_emitted")
	// RowsVectorized counts rows delivered in batches whose every
	// access was served from a typed column vector (zero-copy or
	// cheap-cast) — no per-cell boxing.
	RowsVectorized = Default.Counter("rows_vectorized")
	// RowsBatchFallback counts rows delivered in batches where at
	// least one access had to be materialized cell-by-cell (binary
	// JSON fallback, type outliers, renders).
	RowsBatchFallback = Default.Counter("rows_batch_fallback")
	// KernelDispatches counts invocations of vectorized predicate or
	// aggregate kernels (one per batch per compiled kernel tree).
	KernelDispatches = Default.Counter("kernel_dispatches")
)

// Segment persistence counters (disk-backed relations).
var (
	// SegmentBlocksRead counts blocks fetched from disk (buffer-pool
	// misses; hits never reach the disk).
	SegmentBlocksRead = Default.Counter("segment_blocks_read")
	// SegmentBytesRead counts stored (compressed) bytes read from disk.
	SegmentBytesRead = Default.Counter("segment_bytes_read")
	// BufpoolHits and BufpoolMisses count buffer-pool lookups during
	// scans; BufpoolEvictions counts blocks evicted to stay inside the
	// pool's capacity.
	BufpoolHits      = Default.Counter("bufpool_hits")
	BufpoolMisses    = Default.Counter("bufpool_misses")
	BufpoolEvictions = Default.Counter("bufpool_evictions")
)

// Dictionary-encoding counters (low-cardinality text columns).
var (
	// DictColumnsBuilt counts text columns dictionary-encoded at tile
	// extraction time (HLL NDV estimate under the configured threshold).
	DictColumnsBuilt = Default.Counter("dict_columns_built")
	// DictKernelShortcuts counts predicate-kernel invocations that
	// evaluated Cmp/LIKE/IN in code space — once per dictionary entry
	// instead of once per row.
	DictKernelShortcuts = Default.Counter("dict_kernel_shortcuts")
	// DictGroupByFastpath counts batches aggregated through the
	// array-indexed (code-keyed) GROUP BY fast path.
	DictGroupByFastpath = Default.Counter("dict_groupby_fastpath")
)

// Multi-segment table store counters (manifest + compaction).
var (
	// SegmentsLive tracks the number of currently open segments across
	// all directory-backed tables (a gauge: opens add, closes and
	// compaction drops subtract).
	SegmentsLive = Default.Counter("segments_live")
	// CompactionsRun counts completed compaction rounds (each merges
	// one group of segments into a larger one).
	CompactionsRun = Default.Counter("compactions_run")
	// CompactionBytesRewritten totals the bytes of merged segment
	// files written by compaction — the write amplification spent to
	// keep segment counts bounded.
	CompactionBytesRewritten = Default.Counter("compaction_bytes_rewritten")
	// ManifestRecoveries counts table-directory opens that had to
	// garbage-collect leftovers of an interrupted commit (orphaned
	// segments or half-written manifests).
	ManifestRecoveries = Default.Counter("manifest_recoveries")
)
