package tile

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/jsontape"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
)

// tapeCorpus is a mixed corpus exercising every identity-relevant
// feature: frequent paths above and below the threshold, type
// outliers, nulls, date-like strings, duplicate keys, escaped keys,
// arrays past the slot cap, and empty containers.
func tapeCorpus(t *testing.T) (docs []jsonvalue.Value, tapes []*jsontape.Doc) {
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, fmt.Sprintf(
			`{"id":%d,"name":"user-%d","score":%d.5,"active":%v,"when":"2021-0%d-1%d","tags":[%d,%d,"x"]}`,
			i, i%7, i, i%2 == 0, i%9+1, i%10, i, i+1))
	}
	// Type outliers: "id" as string, "score" as int, nulls.
	lines = append(lines,
		`{"id":"oops","name":null,"score":7,"active":1,"when":"not a date"}`,
		`{"id":99,"extra":{"deep":{"leaf":true}},"empty":{},"ar":[]}`,
		`{"dup":1,"dup":"two","a.b":3,"c\\d":4,"":5}`,
		`{"big":[0,1,2,3,4,5,6,7,8,9,10,11],"id":100}`,
	)
	for _, ln := range lines {
		v, err := jsontext.Parse([]byte(ln))
		if err != nil {
			t.Fatalf("parse %q: %v", ln, err)
		}
		docs = append(docs, v)
		d := &jsontape.Doc{}
		if err := jsontape.Parse([]byte(ln), d); err != nil {
			t.Fatalf("tape parse %q: %v", ln, err)
		}
		tapes = append(tapes, d)
	}
	return docs, tapes
}

// TestBuildTapeMatchesBuild locks the tape build to the tree build:
// identical header, columns (bytes), statistics, and raw storage.
func TestBuildTapeMatchesBuild(t *testing.T) {
	docs, tapes := tapeCorpus(t)
	cfg := DefaultConfig()
	cfg.TileSize = len(docs)
	cfg.MaxArraySlots = 2

	var mTree, mTape Metrics
	tree := NewBuilder(cfg, &mTree).Build(docs)
	tape := NewBuilder(cfg, &mTape).BuildTape(tapes)

	if tree.NumRows() != tape.NumRows() {
		t.Fatalf("numRows: tree %d tape %d", tree.NumRows(), tape.NumRows())
	}
	tc, pc := tree.Columns(), tape.Columns()
	if len(tc) != len(pc) {
		t.Fatalf("column count: tree %d tape %d", len(tc), len(pc))
	}
	for i := range tc {
		a, b := tc[i], pc[i]
		if a.Path != b.Path || a.MinedType != b.MinedType || a.StorageType != b.StorageType ||
			a.HasTypeOutliers != b.HasTypeOutliers {
			t.Errorf("column %d header differs: tree %+v tape %+v", i, a, b)
		}
		if !bytes.Equal(a.Col.Serialize(), b.Col.Serialize()) {
			t.Errorf("column %d (%s) bytes differ", i, a.Path)
		}
	}
	if !reflect.DeepEqual(tree.PathFrequencies(), tape.PathFrequencies()) {
		t.Errorf("pathFreq differs:\n tree %v\n tape %v", tree.PathFrequencies(), tape.PathFrequencies())
	}
	for p, s := range tree.Sketches() {
		o := tape.Sketch(p)
		if o == nil || o.Estimate() != s.Estimate() {
			t.Errorf("sketch %q differs", p)
		}
	}
	for p, h := range tree.Histograms() {
		o := tape.Histogram(p)
		if o == nil || o.Total() != h.Total() || o.Min() != h.Min() || o.Max() != h.Max() {
			t.Errorf("histogram %q differs", p)
		}
	}
	if !reflect.DeepEqual(tree.SeenFilter().Bits(), tape.SeenFilter().Bits()) {
		t.Errorf("seen-paths bloom filter differs")
	}
	for i := 0; i < tree.NumRows(); i++ {
		if !bytes.Equal(tree.RawBytes(i), tape.RawBytes(i)) {
			t.Errorf("raw doc %d differs", i)
		}
	}
	if mTape.DocsTape.Load() != int64(len(tapes)) || mTape.DocsTree.Load() != 0 {
		t.Errorf("tape metrics: DocsTape=%d DocsTree=%d", mTape.DocsTape.Load(), mTape.DocsTree.Load())
	}
	if mTree.DocsTree.Load() != int64(len(docs)) || mTree.DocsTape.Load() != 0 {
		t.Errorf("tree metrics: DocsTape=%d DocsTree=%d", mTree.DocsTape.Load(), mTree.DocsTree.Load())
	}
	if mTape.SubtreesSkipped.Load() == 0 {
		t.Errorf("expected skipped subtrees with MaxArraySlots=2")
	}
}

// TestCollectTapeTransactionsMatchesTree checks the shared-dictionary
// transactions agree id for id.
func TestCollectTapeTransactionsMatchesTree(t *testing.T) {
	docs, tapes := tapeCorpus(t)
	dictTree, dictTape := keypath.NewDict(), keypath.NewDict()
	txTree := CollectTransactions(docs, 2, dictTree)
	txTape := CollectTapeTransactions(tapes, 2, dictTape)
	if dictTree.Len() != dictTape.Len() {
		t.Fatalf("dict length: tree %d tape %d", dictTree.Len(), dictTape.Len())
	}
	for id := int32(0); id < int32(dictTree.Len()); id++ {
		if dictTree.Item(id) != dictTape.Item(id) {
			t.Fatalf("dict item %d: tree %+v tape %+v", id, dictTree.Item(id), dictTape.Item(id))
		}
	}
	if !reflect.DeepEqual(txTree, txTape) {
		t.Fatalf("transactions differ")
	}
}
