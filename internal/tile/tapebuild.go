package tile

import (
	"math"
	"time"

	"repro/internal/bloom"
	"repro/internal/column"
	"repro/internal/dates"
	"repro/internal/fpgrowth"
	"repro/internal/hist"
	"repro/internal/hll"
	"repro/internal/jsontape"
	"repro/internal/keypath"
	"repro/internal/obs"
)

// Tape-driven tile construction: the same mining and extraction as
// Build, but consuming structural tapes (DESIGN.md §6.8). Where the
// tree path walks every document twice (once for transactions, once
// for leaves) over boxed jsonvalue nodes, BuildTape walks each tape
// once, recording (dictionary id, tape node) pairs; columns then
// decode scalar payloads lazily, straight from the document bytes.
// The resulting tile is byte-identical to Build over the materialized
// trees: same dictionary ids, same transactions, same column order
// and contents, and EncodeTape matches Encode byte for byte.

// CollectTapeTransactions is the tape analogue of CollectTransactions:
// one sorted item-id list per document over a shared dictionary. The
// partition reorderer uses it to cluster tapes before tile building.
func CollectTapeTransactions(tapes []*jsontape.Doc, maxSlots int, dict *keypath.Dict) [][]int32 {
	txs := make([][]int32, len(tapes))
	for i, d := range tapes {
		var tx []int32
		keypath.CollectTape(d, maxSlots, func(pathEnc []byte, t keypath.ValueType, n jsontape.Node) {
			tx = append(tx, dict.AddBytes(pathEnc, t))
		})
		txs[i] = sortDedup(tx)
	}
	return txs
}

// BuildTape materializes one tile from parsed tapes. It mirrors Build
// exactly but walks each document once: the walk yields both the
// mining transaction and the leaf nodes the extraction pass decodes.
func (b *Builder) BuildTape(tapes []*jsontape.Doc) *Tile {
	obs.IngestDocsTape.Add(int64(len(tapes)))
	if b.Metrics != nil {
		b.Metrics.DocsTape.Add(int64(len(tapes)))
	}

	start := time.Now()
	// Single walk per document: flat (id, node) pairs plus per-doc end
	// offsets. Leaf order within a document matches the tree walk, so
	// last-occurrence-wins semantics carry over unchanged.
	dict := keypath.NewDict()
	var (
		ids     []int32
		nodes   []jsontape.Node
		docEnd  = make([]int32, len(tapes))
		skipped int
	)
	for i, d := range tapes {
		skipped += keypath.CollectTape(d, b.Config.MaxArraySlots, func(pathEnc []byte, t keypath.ValueType, n jsontape.Node) {
			ids = append(ids, dict.AddBytes(pathEnc, t))
			nodes = append(nodes, n)
		})
		docEnd[i] = int32(len(ids))
	}
	obs.IngestSubtreesSkipped.Add(int64(skipped))
	if b.Metrics != nil {
		b.Metrics.SubtreesSkipped.Add(int64(skipped))
	}

	// Transactions are sorted-deduped copies: the flat run keeps the
	// original leaf order for the extraction pass.
	txs := make([][]int32, len(tapes))
	lo := int32(0)
	for i := range tapes {
		hi := docEnd[i]
		tx := make([]int32, hi-lo)
		copy(tx, ids[lo:hi])
		txs[i] = sortDedup(tx)
		lo = hi
	}
	miner := fpgrowth.Miner{MinSupport: b.Config.MinSupport(len(tapes)), Budget: b.Config.Budget}
	maximal := fpgrowth.Maximal(miner.Mine(txs))
	if b.Metrics != nil {
		b.Metrics.MineNanos.Add(time.Since(start).Nanoseconds())
	}
	return b.materializeTape(tapes, dict, maximal, ids, nodes, docEnd)
}

func (b *Builder) materializeTape(tapes []*jsontape.Doc, dict *keypath.Dict,
	maximal []fpgrowth.Itemset, ids []int32, nodes []jsontape.Node, docEnd []int32) *Tile {
	start := time.Now()
	extractedIDs := map[int32]bool{}
	for _, s := range maximal {
		for _, id := range s.Items {
			extractedIDs[id] = true
		}
	}

	t := &Tile{
		numRows:    len(tapes),
		byItem:     map[keypath.Item]int{},
		byPath:     map[string][]int{},
		pathFreq:   map[string]int{},
		sketches:   map[string]*hll.Sketch{},
		histograms: map[string]*hist.Histogram{},
	}

	var orderedIDs []int32
	for id := int32(0); id < int32(dict.Len()); id++ {
		if extractedIDs[id] && isExtractableType(dict.Item(id).Type) {
			orderedIDs = append(orderedIDs, id)
		}
	}

	// Path frequency counts every non-null leaf occurrence, exactly as
	// the tree walk does.
	for _, id := range ids {
		if item := dict.Item(id); item.Type != keypath.TypeNull {
			t.pathFreq[item.Path]++
		}
	}

	// Seen paths = every collected path plus its proper prefixes (an
	// access to ->'user' on a tile holding user.id must neither skip
	// nor return NULL-for-all). The dictionary already dedups paths.
	seenPaths := map[string]bool{}
	for _, item := range dict.Items() {
		if seenPaths[item.Path] {
			continue
		}
		seenPaths[item.Path] = true
		p, err := keypath.ParsePath(item.Path)
		if err != nil {
			continue
		}
		for n := len(p.Segs) - 1; n >= 1; n-- {
			prefix := keypath.Path{Segs: p.Segs[:n]}.Encode()
			if seenPaths[prefix] {
				break
			}
			seenPaths[prefix] = true
		}
	}

	// The tree path gathers per-document leaves into a map keyed by
	// path with last-occurrence-wins. The tape equivalent is a dense
	// docs × extracted-path matrix of flat-run indexes: one column per
	// extracted PATH (all types share it, exactly like the map slot),
	// filled by a forward scan so later occurrences overwrite earlier.
	extGroup := map[string]int32{}
	for _, id := range orderedIDs {
		path := dict.Item(id).Path
		if _, ok := extGroup[path]; !ok {
			extGroup[path] = int32(len(extGroup))
		}
	}
	G := len(extGroup)
	extOfID := make([]int32, dict.Len())
	for id := 0; id < dict.Len(); id++ {
		if g, ok := extGroup[dict.Item(int32(id)).Path]; ok {
			extOfID[id] = g
		} else {
			extOfID[id] = -1
		}
	}
	eff := make([]int32, len(tapes)*G)
	for i := range eff {
		eff[i] = -1
	}
	lo := int32(0)
	for i := range tapes {
		hi := docEnd[i]
		for j := lo; j < hi; j++ {
			if g := extOfID[ids[j]]; g >= 0 {
				eff[i*G+int(g)] = j
			}
		}
		lo = hi
	}

	for _, id := range orderedIDs {
		item := dict.Item(id)
		g := int(extGroup[item.Path])
		info := ColumnInfo{Path: item.Path, MinedType: item.Type, StorageType: item.Type}

		if item.Type == keypath.TypeString && b.Config.DetectDates {
			var sample []string
			for i := range tapes {
				if li := eff[i*G+g]; li >= 0 && ids[li] == id {
					sample = append(sample, nodes[li].StringVal())
					if len(sample) >= 64 {
						break
					}
				}
			}
			if dates.DetectColumn(sample, 64) {
				info.StorageType = keypath.TypeTimestamp
			}
		}

		col := column.New(info.StorageType)
		sketch := hll.New()
		var numeric []float64
		for i := range tapes {
			li := eff[i*G+g]
			if li < 0 {
				col.AppendNull()
				continue
			}
			if ids[li] != id {
				col.AppendNull()
				if dict.Item(ids[li]).Type != keypath.TypeNull {
					info.HasTypeOutliers = true
				}
				continue
			}
			n := nodes[li]
			switch info.StorageType {
			case keypath.TypeBigInt:
				v := n.IntVal()
				col.AppendInt(v)
				sketch.AddInt64(v)
				numeric = append(numeric, float64(v))
			case keypath.TypeDouble:
				v := n.FloatVal()
				col.AppendFloat(v)
				sketch.AddHash(hll.HashUint64(math.Float64bits(v)))
				numeric = append(numeric, v)
			case keypath.TypeBool:
				v := n.BoolVal()
				col.AppendBool(v)
				if v {
					sketch.AddInt64(1)
				} else {
					sketch.AddInt64(0)
				}
			case keypath.TypeString:
				s := n.StringVal()
				col.AppendString(s)
				sketch.AddString(s)
			case keypath.TypeTimestamp:
				if ts, ok := dates.Parse(n.StringVal()); ok {
					col.AppendInt(ts)
					sketch.AddInt64(ts)
					numeric = append(numeric, float64(ts))
				} else {
					col.AppendNull()
					info.HasTypeOutliers = true
				}
			}
		}
		if info.StorageType == keypath.TypeString && b.Config.DictThreshold > 0 {
			nonNull := col.Len() - col.NullCount()
			ndvCap := int(math.Ceil(b.Config.DictThreshold * float64(nonNull)))
			if ndvCap < 1 {
				ndvCap = 1
			}
			if sketch.Estimate() <= float64(ndvCap) && col.DictEncode(ndvCap) {
				obs.DictColumnsBuilt.Inc()
			}
		}
		idx := len(t.columns)
		info.Col = col
		t.columns = append(t.columns, info)
		t.byItem[keypath.Item{Path: item.Path, Type: item.Type}] = idx
		t.byPath[item.Path] = append(t.byPath[item.Path], idx)
		t.sketches[item.Path] = sketch
		if len(numeric) > 0 {
			t.histograms[item.Path] = hist.FromValues(numeric)
		}
	}

	t.notExtracted = bloom.New(len(seenPaths)+8, 0.01)
	for p := range seenPaths {
		if _, ok := t.byPath[p]; !ok {
			t.notExtracted.Add(p)
		}
	}
	if b.Metrics != nil {
		b.Metrics.ExtractNanos.Add(time.Since(start).Nanoseconds())
	}

	start = time.Now()
	t.raw = make([][]byte, len(tapes))
	for i, d := range tapes {
		t.raw[i] = b.enc.EncodeTape(d)
	}
	if b.Metrics != nil {
		b.Metrics.WriteJSONBNanos.Add(time.Since(start).Nanoseconds())
		b.Metrics.TilesBuilt.Add(1)
	}
	obs.TilesBuilt.Inc()
	return t
}
