// Package tile implements JSON tiles (paper §3): columnar chunks of a
// JSON collection whose locally-frequent key paths are materialized as
// typed relational columns, with a per-tile header describing what was
// seen and what was extracted (§4.4), per-tile statistics for the
// optimizer (§4.6), in-place updates (§4.7), and the information the
// scan needs to skip tiles without matches (§4.8).
package tile

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/bloom"
	"repro/internal/column"
	"repro/internal/dates"
	"repro/internal/fpgrowth"
	"repro/internal/hist"
	"repro/internal/hll"
	"repro/internal/jsonb"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/obs"
)

// Config holds the extraction parameters. The defaults follow the
// paper's evaluation: tile size 2¹⁰, partition size 8, extraction
// threshold 60 %.
type Config struct {
	// TileSize is the number of tuples per tile.
	TileSize int
	// PartitionSize is the number of neighboring tiles grouped for
	// tuple reordering (§3.2).
	PartitionSize int
	// Threshold is the extraction threshold: an itemset is extracted
	// when at least Threshold × TileSize tuples contain it.
	Threshold float64
	// Budget bounds the number of itemsets the miner may generate
	// (Eq. 1); zero selects fpgrowth.DefaultBudget.
	Budget int
	// MaxArraySlots bounds how many leading array elements receive key
	// paths (§3.5); zero selects keypath.DefaultMaxArraySlots.
	MaxArraySlots int
	// DetectDates enables timestamp extraction for date-like string
	// columns (§4.9). The fig14 "no Date" ablation turns it off.
	DetectDates bool
	// DictThreshold enables dictionary encoding for extracted text
	// columns whose HLL-estimated NDV/rows ratio is at or below the
	// threshold (the sorted dictionary turns string predicates and
	// group-bys into integer-code work). Zero or negative disables
	// dictionary encoding, so zero-value Configs keep the arena layout.
	DictThreshold float64
}

// DefaultConfig returns the paper's recommended settings.
func DefaultConfig() Config {
	return Config{
		TileSize:      1 << 10,
		PartitionSize: 8,
		Threshold:     0.6,
		DetectDates:   true,
		DictThreshold: 0.5,
	}
}

// MinSupport converts the relative threshold into the absolute tuple
// count for n tuples (an itemset is frequent if its frequency count
// divided by n exceeds the threshold).
func (c Config) MinSupport(n int) int {
	s := int(math.Ceil(c.Threshold * float64(n)))
	if s < 1 {
		s = 1
	}
	return s
}

// Metrics accumulates loading-time breakdowns (Figure 16). Fields are
// atomically updated nanosecond counters so parallel loaders can share
// one Metrics.
type Metrics struct {
	ParseNanos      atomic.Int64
	MineNanos       atomic.Int64
	ExtractNanos    atomic.Int64
	WriteJSONBNanos atomic.Int64
	ReorderNanos    atomic.Int64
	TilesBuilt      atomic.Int64
	// On-demand ingest accounting (DESIGN.md §6.8): documents built
	// from the structural tape vs the boxed jsonvalue-tree fallback,
	// and subtrees the tape walks skipped.
	DocsTape        atomic.Int64
	DocsTree        atomic.Int64
	SubtreesSkipped atomic.Int64
}

// MetricsSnapshot is a point-in-time copy of Metrics, comparable and
// diffable (the CLI prints per-experiment deltas).
type MetricsSnapshot struct {
	ParseNanos      int64
	MineNanos       int64
	ExtractNanos    int64
	WriteJSONBNanos int64
	ReorderNanos    int64
	TilesBuilt      int64
	DocsTape        int64
	DocsTree        int64
	SubtreesSkipped int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		ParseNanos:      m.ParseNanos.Load(),
		MineNanos:       m.MineNanos.Load(),
		ExtractNanos:    m.ExtractNanos.Load(),
		WriteJSONBNanos: m.WriteJSONBNanos.Load(),
		ReorderNanos:    m.ReorderNanos.Load(),
		TilesBuilt:      m.TilesBuilt.Load(),
		DocsTape:        m.DocsTape.Load(),
		DocsTree:        m.DocsTree.Load(),
		SubtreesSkipped: m.SubtreesSkipped.Load(),
	}
}

// Sub returns the delta s - base, phase by phase.
func (s MetricsSnapshot) Sub(base MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		ParseNanos:      s.ParseNanos - base.ParseNanos,
		MineNanos:       s.MineNanos - base.MineNanos,
		ExtractNanos:    s.ExtractNanos - base.ExtractNanos,
		WriteJSONBNanos: s.WriteJSONBNanos - base.WriteJSONBNanos,
		ReorderNanos:    s.ReorderNanos - base.ReorderNanos,
		TilesBuilt:      s.TilesBuilt - base.TilesBuilt,
		DocsTape:        s.DocsTape - base.DocsTape,
		DocsTree:        s.DocsTree - base.DocsTree,
		SubtreesSkipped: s.SubtreesSkipped - base.SubtreesSkipped,
	}
}

// String renders the Figure-16-style insertion breakdown on one line.
func (s MetricsSnapshot) String() string {
	ms := func(n int64) float64 { return float64(n) / 1e6 }
	return fmt.Sprintf(
		"parse %.1fms  mine %.1fms  extract %.1fms  jsonb %.1fms  reorder %.1fms  (%d tiles, %d tape / %d tree docs)",
		ms(s.ParseNanos), ms(s.MineNanos), ms(s.ExtractNanos),
		ms(s.WriteJSONBNanos), ms(s.ReorderNanos), s.TilesBuilt, s.DocsTape, s.DocsTree)
}

// ColumnInfo describes one extracted column in the tile header.
type ColumnInfo struct {
	// Path is the canonical encoded key path.
	Path string
	// MinedType is the primitive JSON type paired with the path in the
	// frequent itemset.
	MinedType keypath.ValueType
	// StorageType is the column's storage type; it differs from
	// MinedType only for detected dates (Text mined, Timestamp stored).
	StorageType keypath.ValueType
	// HasTypeOutliers is set when some tuple carries the path with a
	// different non-null type (or an unparseable date): a null in the
	// column then requires the binary-JSON fallback to stay correct.
	HasTypeOutliers bool
	// Col is the materialized data.
	Col *column.Column
}

// Tile is one materialized chunk.
type Tile struct {
	numRows int
	columns []ColumnInfo
	byItem  map[keypath.Item]int // (path, mined type) -> column index
	byPath  map[string][]int     // path -> column indexes (usually one)

	// notExtracted remembers every key path seen in the tile but not
	// materialized; MayContainPath consults it before a tile is
	// skipped (§4.8). Updates add new paths here (§4.7).
	notExtracted *bloom.Filter

	// pathFreq counts, per key path, the tuples carrying the path with
	// a non-null value — the per-tile frequency database aggregated
	// into relation statistics (§4.6).
	pathFreq map[string]int

	// sketches holds one HyperLogLog per extracted path over its
	// values (§4.6).
	sketches map[string]*hll.Sketch

	// histograms holds one equi-width histogram per extracted numeric
	// or timestamp path (the "regular histograms" the paper mentions
	// as the analogous domain statistic).
	histograms map[string]*hist.Histogram

	raw [][]byte // binary JSON of every tuple (fallback storage)

	outliers int // updated docs that share nothing with the schema (§4.7)
}

// Builder constructs tiles. A Builder is not safe for concurrent use;
// parallel loading uses one Builder per worker sharing a Metrics.
type Builder struct {
	Config  Config
	Metrics *Metrics
	enc     jsonb.Encoder
}

// NewBuilder returns a Builder with the given config.
func NewBuilder(cfg Config, m *Metrics) *Builder {
	if cfg.TileSize <= 0 {
		cfg = DefaultConfig()
	}
	return &Builder{Config: cfg, Metrics: m}
}

// CollectTransactions turns documents into itemset transactions over a
// shared dictionary — one sorted item-id list per document. The same
// routine serves tile building and partition reordering.
func CollectTransactions(docs []jsonvalue.Value, maxSlots int, dict *keypath.Dict) [][]int32 {
	txs := make([][]int32, len(docs))
	for i, d := range docs {
		var tx []int32
		keypath.Collect(d, maxSlots, func(p keypath.Path, t keypath.ValueType, v jsonvalue.Value) {
			tx = append(tx, dict.Add(p.Encode(), t))
		})
		tx = sortDedup(tx)
		txs[i] = tx
	}
	return txs
}

// isExtractableType reports whether a mined item type can become a
// typed column. Nulls and empty containers only mark presence.
func isExtractableType(t keypath.ValueType) bool {
	switch t {
	case keypath.TypeBool, keypath.TypeBigInt, keypath.TypeDouble, keypath.TypeString:
		return true
	default:
		return false
	}
}

func sortDedup(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	// Insertion sort: transactions are small and mostly sorted
	// (collection order is deterministic).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// Build materializes one tile from docs: collect key paths, mine
// frequent itemsets at the extraction threshold, extract the union of
// the maximal itemsets as typed columns (§3.1), and encode every
// document into binary JSON for the fallback path.
func (b *Builder) Build(docs []jsonvalue.Value) *Tile {
	// Tree-based builds are the boxed fallback path; BuildTape is the
	// tape-driven hot path.
	obs.IngestDocsTreeFallback.Add(int64(len(docs)))
	if b.Metrics != nil {
		b.Metrics.DocsTree.Add(int64(len(docs)))
	}
	dict := keypath.NewDict()
	start := time.Now()
	txs := CollectTransactions(docs, b.Config.MaxArraySlots, dict)
	miner := fpgrowth.Miner{MinSupport: b.Config.MinSupport(len(docs)), Budget: b.Config.Budget}
	sets := miner.Mine(txs)
	maximal := fpgrowth.Maximal(sets)
	if b.Metrics != nil {
		b.Metrics.MineNanos.Add(time.Since(start).Nanoseconds())
	}
	return b.materialize(docs, dict, maximal)
}

func (b *Builder) materialize(docs []jsonvalue.Value, dict *keypath.Dict, maximal []fpgrowth.Itemset) *Tile {
	start := time.Now()
	// Union of the maximal itemsets = the extracted items (§3.1 step 3).
	extractedIDs := map[int32]bool{}
	for _, s := range maximal {
		for _, id := range s.Items {
			extractedIDs[id] = true
		}
	}

	t := &Tile{
		numRows:    len(docs),
		byItem:     map[keypath.Item]int{},
		byPath:     map[string][]int{},
		pathFreq:   map[string]int{},
		sketches:   map[string]*hll.Sketch{},
		histograms: map[string]*hist.Histogram{},
	}

	// Deterministic column order: dictionary id order.
	var orderedIDs []int32
	for id := int32(0); id < int32(dict.Len()); id++ {
		if extractedIDs[id] && isExtractableType(dict.Item(id).Type) {
			orderedIDs = append(orderedIDs, id)
		}
	}

	// Per-document path values, gathered in a single walk per doc.
	type docLeaf struct {
		t keypath.ValueType
		v jsonvalue.Value
	}
	leaves := make([]map[string]docLeaf, len(docs))
	seenPaths := map[string]bool{}
	for i, d := range docs {
		m := map[string]docLeaf{}
		keypath.Collect(d, b.Config.MaxArraySlots, func(p keypath.Path, vt keypath.ValueType, v jsonvalue.Value) {
			enc := p.Encode()
			m[enc] = docLeaf{t: vt, v: v}
			if !seenPaths[enc] {
				seenPaths[enc] = true
				// Every prefix is a reachable path too: an access to
				// ->'user' on a tile holding user.id must neither skip
				// nor return NULL-for-all.
				for n := len(p.Segs) - 1; n >= 1; n-- {
					prefix := keypath.Path{Segs: p.Segs[:n]}.Encode()
					if seenPaths[prefix] {
						break
					}
					seenPaths[prefix] = true
				}
			}
			if vt != keypath.TypeNull {
				t.pathFreq[enc]++
			}
		})
		leaves[i] = m
	}

	for _, id := range orderedIDs {
		item := dict.Item(id)
		info := ColumnInfo{Path: item.Path, MinedType: item.Type, StorageType: item.Type}

		// Date detection (§4.9): sample the string values first.
		if item.Type == keypath.TypeString && b.Config.DetectDates {
			var sample []string
			for i := range docs {
				if lf, ok := leaves[i][item.Path]; ok && lf.t == keypath.TypeString {
					sample = append(sample, lf.v.StringVal())
					if len(sample) >= 64 {
						break
					}
				}
			}
			if dates.DetectColumn(sample, 64) {
				info.StorageType = keypath.TypeTimestamp
			}
		}

		col := column.New(info.StorageType)
		sketch := hll.New()
		var numeric []float64
		for i := range docs {
			lf, present := leaves[i][item.Path]
			if !present {
				col.AppendNull()
				continue
			}
			if lf.t != item.Type {
				col.AppendNull()
				if lf.t != keypath.TypeNull {
					info.HasTypeOutliers = true
				}
				continue
			}
			switch info.StorageType {
			case keypath.TypeBigInt:
				col.AppendInt(lf.v.IntVal())
				sketch.AddInt64(lf.v.IntVal())
				numeric = append(numeric, float64(lf.v.IntVal()))
			case keypath.TypeDouble:
				col.AppendFloat(lf.v.FloatVal())
				sketch.AddHash(hll.HashUint64(math.Float64bits(lf.v.FloatVal())))
				numeric = append(numeric, lf.v.FloatVal())
			case keypath.TypeBool:
				col.AppendBool(lf.v.BoolVal())
				if lf.v.BoolVal() {
					sketch.AddInt64(1)
				} else {
					sketch.AddInt64(0)
				}
			case keypath.TypeString:
				col.AppendString(lf.v.StringVal())
				sketch.AddString(lf.v.StringVal())
			case keypath.TypeTimestamp:
				if ts, ok := dates.Parse(lf.v.StringVal()); ok {
					col.AppendInt(ts)
					sketch.AddInt64(ts)
					numeric = append(numeric, float64(ts))
				} else {
					col.AppendNull()
					info.HasTypeOutliers = true
				}
			}
		}
		// Low-cardinality text columns switch to the dictionary layout:
		// the per-path HLL sketch (§4.6) estimates NDV for free, and
		// DictEncode re-checks the exact count so an HLL undershoot
		// falls back losslessly to the arena.
		if info.StorageType == keypath.TypeString && b.Config.DictThreshold > 0 {
			nonNull := col.Len() - col.NullCount()
			ndvCap := int(math.Ceil(b.Config.DictThreshold * float64(nonNull)))
			if ndvCap < 1 {
				ndvCap = 1
			}
			if sketch.Estimate() <= float64(ndvCap) && col.DictEncode(ndvCap) {
				obs.DictColumnsBuilt.Inc()
			}
		}
		idx := len(t.columns)
		info.Col = col
		t.columns = append(t.columns, info)
		t.byItem[keypath.Item{Path: item.Path, Type: item.Type}] = idx
		t.byPath[item.Path] = append(t.byPath[item.Path], idx)
		t.sketches[item.Path] = sketch
		if len(numeric) > 0 {
			t.histograms[item.Path] = hist.FromValues(numeric)
		}
	}

	// Header bloom filter over the paths seen but not extracted (§4.4).
	t.notExtracted = bloom.New(len(seenPaths)+8, 0.01)
	for p := range seenPaths {
		if _, ok := t.byPath[p]; !ok {
			t.notExtracted.Add(p)
		}
	}
	if b.Metrics != nil {
		b.Metrics.ExtractNanos.Add(time.Since(start).Nanoseconds())
	}

	// Binary JSON for every tuple (the fallback and outlier storage).
	start = time.Now()
	t.raw = make([][]byte, len(docs))
	for i, d := range docs {
		t.raw[i] = b.enc.Encode(d)
	}
	if b.Metrics != nil {
		b.Metrics.WriteJSONBNanos.Add(time.Since(start).Nanoseconds())
		b.Metrics.TilesBuilt.Add(1)
	}
	obs.TilesBuilt.Inc()
	return t
}

// NumRows returns the tuple count.
func (t *Tile) NumRows() int { return t.numRows }

// Columns returns the header's extracted-column descriptors.
func (t *Tile) Columns() []ColumnInfo { return t.columns }

// Raw returns the binary JSON document of row i.
func (t *Tile) Raw(i int) jsonb.Doc { return jsonb.NewDoc(t.raw[i]) }

// RawBytes returns the encoded buffer of row i.
func (t *Tile) RawBytes(i int) []byte { return t.raw[i] }

// FindColumn returns the column index for (path, mined type), or -1.
func (t *Tile) FindColumn(path string, mined keypath.ValueType) int {
	if idx, ok := t.byItem[keypath.Item{Path: path, Type: mined}]; ok {
		return idx
	}
	return -1
}

// ColumnsForPath returns the indexes of all columns extracted for the
// path (multiple when the tile holds the path with several types).
func (t *Tile) ColumnsForPath(path string) []int { return t.byPath[path] }

// Column returns the descriptor at index idx.
func (t *Tile) Column(idx int) *ColumnInfo { return &t.columns[idx] }

// MayContainPath reports whether any tuple might carry the path: true
// when the path is extracted or the seen-paths bloom filter matches.
// False guarantees every access to the path yields null, which is
// what tile skipping needs (§4.8).
func (t *Tile) MayContainPath(path string) bool {
	if _, ok := t.byPath[path]; ok {
		return true
	}
	return t.notExtracted.MayContain(path)
}

// SeenFilter exposes the seen-but-not-extracted bloom filter so the
// segment writer can persist tile headers. Read-only; may be nil for
// a tile that never finalized.
func (t *Tile) SeenFilter() *bloom.Filter { return t.notExtracted }

// PathFrequency returns the number of tuples carrying the path with a
// non-null value.
func (t *Tile) PathFrequency(path string) int { return t.pathFreq[path] }

// PathFrequencies exposes the per-tile frequency database for
// relation-level aggregation.
func (t *Tile) PathFrequencies() map[string]int { return t.pathFreq }

// Sketch returns the HyperLogLog sketch of an extracted path (nil if
// the path was not extracted).
func (t *Tile) Sketch(path string) *hll.Sketch { return t.sketches[path] }

// Sketches exposes all per-path sketches for aggregation.
func (t *Tile) Sketches() map[string]*hll.Sketch { return t.sketches }

// Histogram returns the numeric histogram of an extracted path (nil
// when the path is not extracted or not numeric).
func (t *Tile) Histogram(path string) *hist.Histogram { return t.histograms[path] }

// Histograms exposes all per-path histograms for aggregation.
func (t *Tile) Histograms() map[string]*hist.Histogram { return t.histograms }

// ColumnSizeBytes returns the memory consumed by extracted columns —
// the "+Tiles" storage overhead of Table 6.
func (t *Tile) ColumnSizeBytes() int {
	total := 0
	for _, c := range t.columns {
		total += c.Col.SizeBytes() + len(c.Path) + 8
	}
	if t.notExtracted != nil {
		total += t.notExtracted.SizeBytes()
	}
	return total
}

// ColumnCompressedSizeBytes returns the LZ4-compressed column bytes —
// the "+LZ4-Tiles" row of Table 6.
func (t *Tile) ColumnCompressedSizeBytes() int {
	total := 0
	for _, c := range t.columns {
		total += c.Col.CompressedSize() + len(c.Path) + 8
	}
	if t.notExtracted != nil {
		total += t.notExtracted.SizeBytes()
	}
	return total
}

// RawSizeBytes returns the binary JSON bytes stored in the tile.
func (t *Tile) RawSizeBytes() int {
	total := 0
	for _, r := range t.raw {
		total += len(r)
	}
	return total
}

// Update replaces the document of row i (§4.7). Extracted columns are
// updated in place; keys the new document lacks become nulls; new key
// paths are added to the header bloom filter so skipping stays
// correct. It returns whether the new document was an outlier (no
// overlap with the extracted schema).
func (t *Tile) Update(i int, doc jsonvalue.Value, enc *jsonb.Encoder, maxSlots int) bool {
	if enc == nil {
		enc = &jsonb.Encoder{}
	}
	t.raw[i] = enc.Encode(doc)

	leaves := map[string]struct {
		t keypath.ValueType
		v jsonvalue.Value
	}{}
	keypath.Collect(doc, maxSlots, func(p keypath.Path, vt keypath.ValueType, v jsonvalue.Value) {
		enc := p.Encode()
		leaves[enc] = struct {
			t keypath.ValueType
			v jsonvalue.Value
		}{vt, v}
		if _, extracted := t.byPath[enc]; !extracted {
			t.notExtracted.Add(enc)
		}
		for n := len(p.Segs) - 1; n >= 1; n-- {
			prefix := keypath.Path{Segs: p.Segs[:n]}.Encode()
			if _, extracted := t.byPath[prefix]; !extracted {
				t.notExtracted.Add(prefix)
			}
		}
	})

	overlap := 0
	for ci := range t.columns {
		info := &t.columns[ci]
		lf, present := leaves[info.Path]
		if !present || lf.t != info.MinedType {
			info.Col.SetNull(i)
			if present && lf.t != keypath.TypeNull {
				info.HasTypeOutliers = true
			}
			continue
		}
		overlap++
		switch info.StorageType {
		case keypath.TypeBigInt:
			info.Col.SetInt(i, lf.v.IntVal())
		case keypath.TypeDouble:
			info.Col.SetFloat(i, lf.v.FloatVal())
		case keypath.TypeTimestamp:
			if ts, ok := dates.Parse(lf.v.StringVal()); ok {
				info.Col.SetInt(i, ts)
			} else {
				info.Col.SetNull(i)
				info.HasTypeOutliers = true
			}
		default:
			// Text and Bool updates rewrite the whole slot region in a
			// real system; here we mark null and serve from the binary
			// JSON, which preserves correctness.
			info.Col.SetNull(i)
			info.HasTypeOutliers = true
		}
	}
	if overlap == 0 && len(t.columns) > 0 {
		t.outliers++
	}
	return overlap == 0 && len(t.columns) > 0
}

// NeedsRecompute reports whether enough outlier documents accumulated
// that re-materializing the tile is worthwhile (§4.7: "only ... after
// the majority of the tuples do not match the current extracted
// schema").
func (t *Tile) NeedsRecompute() bool {
	return t.outliers > t.numRows/2
}

// Documents decodes the tile's current contents from the binary JSON
// column — the input for recomputation. Object key order reflects the
// binary format (sorted), which does not affect extraction.
func (t *Tile) Documents() []jsonvalue.Value {
	docs := make([]jsonvalue.Value, t.numRows)
	for i := range docs {
		docs[i] = t.Raw(i).Decode()
	}
	return docs
}

// OutlierCount returns the number of update-introduced outliers.
func (t *Tile) OutlierCount() int { return t.outliers }
