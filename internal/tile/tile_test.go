package tile

import (
	"fmt"
	"testing"

	"repro/internal/jsonb"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
)

func docs(t *testing.T, srcs ...string) []jsonvalue.Value {
	t.Helper()
	out := make([]jsonvalue.Value, len(srcs))
	for i, s := range srcs {
		v, err := jsontext.ParseString(s)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		out[i] = v
	}
	return out
}

// figure2Tile2 is the paper's running example: tile #2 of Figure 2,
// tile size 4, extraction threshold 60%.
func figure2Tile2(t *testing.T) []jsonvalue.Value {
	return docs(t,
		`{"id":5, "create": "1/10", "text": "b", "user": {"id": 7}, "replies": 3, "geo": {"lat": 1.9}}`,
		`{"id":6, "create": "1/11", "text": "c", "user": {"id": 1}, "replies": 2, "geo": null}`,
		`{"id":7, "create": "1/12", "text": "d", "user": {"id": 3}, "replies": 0, "geo": {"lat": 2.7}}`,
		`{"id":8, "create": "1/13", "text": "x", "user": {"id": 3}, "replies": 1, "geo": {"lat": 3.5}}`,
	)
}

func build(t *testing.T, cfg Config, ds []jsonvalue.Value) *Tile {
	t.Helper()
	b := NewBuilder(cfg, nil)
	return b.Build(ds)
}

func TestPaperFigure2Extraction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 4
	cfg.DetectDates = false // "1/10" is not a real date format
	tl := build(t, cfg, figure2Tile2(t))

	// The paper extracts { id, create, text, user.id, replies, geo.lat }.
	wantPaths := map[string]keypath.ValueType{
		"id":      keypath.TypeBigInt,
		"create":  keypath.TypeString,
		"text":    keypath.TypeString,
		"user.id": keypath.TypeBigInt,
		"replies": keypath.TypeBigInt,
		"geo.lat": keypath.TypeDouble,
	}
	if len(tl.Columns()) != len(wantPaths) {
		var got []string
		for _, c := range tl.Columns() {
			got = append(got, c.Path)
		}
		t.Fatalf("extracted %v, want %v", got, wantPaths)
	}
	for _, c := range tl.Columns() {
		wt, ok := wantPaths[c.Path]
		if !ok {
			t.Errorf("unexpected extracted path %s", c.Path)
			continue
		}
		if c.StorageType != wt {
			t.Errorf("%s storage type %v, want %v", c.Path, c.StorageType, wt)
		}
	}

	// geo.lat has a null for tuple 6 (geo is JSON null there).
	gi := tl.FindColumn("geo.lat", keypath.TypeDouble)
	if gi < 0 {
		t.Fatal("geo.lat not extracted")
	}
	geo := tl.Column(gi).Col
	if !geo.IsNull(1) {
		t.Error("geo.lat row 1 should be null")
	}
	for i, want := range map[int]float64{0: 1.9, 2: 2.7, 3: 3.5} {
		if geo.IsNull(i) || geo.Float(i) != want {
			t.Errorf("geo.lat[%d] = %v (null=%v), want %v", i, geo.Float(i), geo.IsNull(i), want)
		}
	}

	// replies fully populated.
	ri := tl.FindColumn("replies", keypath.TypeBigInt)
	replies := tl.Column(ri).Col
	for i, want := range []int64{3, 2, 0, 1} {
		if replies.IsNull(i) || replies.Int(i) != want {
			t.Errorf("replies[%d] = %d", i, replies.Int(i))
		}
	}
}

func TestPathFrequencies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DetectDates = false
	tl := build(t, cfg, figure2Tile2(t))
	// replies present non-null in all 4; geo.lat in 3; geo (the object
	// itself) is a leaf only for tuple 6 where it is null -> 0.
	if got := tl.PathFrequency("replies"); got != 4 {
		t.Errorf("freq(replies) = %d", got)
	}
	if got := tl.PathFrequency("geo.lat"); got != 3 {
		t.Errorf("freq(geo.lat) = %d", got)
	}
	if got := tl.PathFrequency("geo"); got != 0 {
		t.Errorf("freq(geo) = %d (null leaves must not count)", got)
	}
	if got := tl.PathFrequency("absent"); got != 0 {
		t.Errorf("freq(absent) = %d", got)
	}
}

func TestMayContainPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DetectDates = false
	// One outlier doc carries "rare" below the threshold.
	ds := docs(t,
		`{"a":1,"b":1}`, `{"a":2,"b":2}`, `{"a":3,"b":3}`,
		`{"a":4,"b":4,"rare":true}`,
	)
	tl := build(t, cfg, ds)
	if !tl.MayContainPath("a") {
		t.Error("extracted path reported absent")
	}
	if !tl.MayContainPath("rare") {
		t.Error("seen-but-not-extracted path must hit the bloom filter")
	}
	if tl.MayContainPath("never-seen-path-xyz") {
		t.Error("unseen path reported present (bloom false positive is possible but wildly unlikely here)")
	}
}

func TestTypeOutlierFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DetectDates = false
	// "v" is int in 3 of 4 docs, float in one: ints win, float value
	// stays in binary JSON, column gets a null with HasTypeOutliers.
	ds := docs(t,
		`{"v":1}`, `{"v":2}`, `{"v":3}`, `{"v":2.5}`,
	)
	tl := build(t, cfg, ds)
	vi := tl.FindColumn("v", keypath.TypeBigInt)
	if vi < 0 {
		t.Fatal("v (BigInt) not extracted")
	}
	info := tl.Column(vi)
	if !info.HasTypeOutliers {
		t.Error("HasTypeOutliers not set")
	}
	if !info.Col.IsNull(3) {
		t.Error("outlier row should be null in the column")
	}
	// The value is still reachable through the binary representation.
	d, ok := tl.Raw(3).Get("v")
	if !ok {
		t.Fatal("v missing from JSONB")
	}
	if f, _ := d.Float64(); f != 2.5 {
		t.Errorf("fallback value = %v", f)
	}
}

func TestDateDetection(t *testing.T) {
	cfg := DefaultConfig()
	ds := docs(t,
		`{"created":"2020-06-01 10:00:00","v":1}`,
		`{"created":"2020-06-01 11:30:00","v":2}`,
		`{"created":"2020-06-02 09:15:00","v":3}`,
	)
	tl := build(t, cfg, ds)
	ci := -1
	for i, c := range tl.Columns() {
		if c.Path == "created" {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatal("created not extracted")
	}
	info := tl.Column(ci)
	if info.StorageType != keypath.TypeTimestamp {
		t.Fatalf("storage type %v, want Timestamp", info.StorageType)
	}
	if info.MinedType != keypath.TypeString {
		t.Errorf("mined type %v, want Text", info.MinedType)
	}
	if info.Col.IsNull(0) {
		t.Error("timestamp row 0 null")
	}
	// Chronological order must be preserved by the micros encoding.
	if !(info.Col.Int(0) < info.Col.Int(1) && info.Col.Int(1) < info.Col.Int(2)) {
		t.Error("timestamps not ordered")
	}

	// With detection off, the column stays Text.
	cfg.DetectDates = false
	tl2 := build(t, cfg, ds)
	for _, c := range tl2.Columns() {
		if c.Path == "created" && c.StorageType != keypath.TypeString {
			t.Errorf("no-Date ablation still extracted %v", c.StorageType)
		}
	}
}

func TestNonDateStringsStayText(t *testing.T) {
	cfg := DefaultConfig()
	ds := docs(t,
		`{"name":"alice"}`, `{"name":"bob"}`, `{"name":"carol"}`,
	)
	tl := build(t, cfg, ds)
	for _, c := range tl.Columns() {
		if c.Path == "name" && c.StorageType != keypath.TypeString {
			t.Errorf("name stored as %v", c.StorageType)
		}
	}
}

func TestNullTypedItemsNotMaterialized(t *testing.T) {
	cfg := DefaultConfig()
	ds := docs(t, `{"g":null}`, `{"g":null}`, `{"g":null}`)
	tl := build(t, cfg, ds)
	if n := len(tl.Columns()); n != 0 {
		t.Errorf("%d columns extracted from all-null key", n)
	}
	// But the path must be in the header for skip correctness.
	if !tl.MayContainPath("g") {
		t.Error("null-only path missing from header")
	}
}

func TestHeterogeneousBelowThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DetectDates = false
	// Five distinct structures, each 20%: nothing reaches 60%.
	ds := docs(t,
		`{"a":1}`, `{"b":1}`, `{"c":1}`, `{"d":1}`, `{"e":1}`,
	)
	tl := build(t, cfg, ds)
	if len(tl.Columns()) != 0 {
		t.Errorf("extracted %d columns from fully heterogeneous tile", len(tl.Columns()))
	}
	for _, p := range []string{"a", "b", "c", "d", "e"} {
		if !tl.MayContainPath(p) {
			t.Errorf("path %s lost", p)
		}
	}
}

func TestSketchDistinctCounts(t *testing.T) {
	cfg := DefaultConfig()
	var srcs []string
	for i := 0; i < 256; i++ {
		srcs = append(srcs, fmt.Sprintf(`{"k":%d,"c":%d}`, i, i%4))
	}
	tl := build(t, cfg, docs(t, srcs...))
	if s := tl.Sketch("k"); s == nil || s.Estimate() < 200 || s.Estimate() > 300 {
		t.Errorf("k distinct estimate: %v", s.Estimate())
	}
	if s := tl.Sketch("c"); s == nil || s.Estimate() < 3 || s.Estimate() > 5 {
		t.Errorf("c distinct estimate: %v", s.Estimate())
	}
	if tl.Sketch("missing") != nil {
		t.Error("sketch for missing path")
	}
}

func TestUpdate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DetectDates = false
	ds := docs(t, `{"a":1,"b":1.5}`, `{"a":2,"b":2.5}`, `{"a":3,"b":3.5}`)
	tl := build(t, cfg, ds)

	nd := docs(t, `{"a":42,"newkey":"x"}`)[0]
	var enc jsonb.Encoder
	outlier := tl.Update(1, nd, &enc, 0)
	if outlier {
		t.Error("doc sharing `a` flagged as outlier")
	}

	ai := tl.FindColumn("a", keypath.TypeBigInt)
	if tl.Column(ai).Col.Int(1) != 42 {
		t.Errorf("a[1] = %d after update", tl.Column(ai).Col.Int(1))
	}
	bi := tl.FindColumn("b", keypath.TypeDouble)
	if !tl.Column(bi).Col.IsNull(1) {
		t.Error("b[1] should be null after update (key removed)")
	}
	// New key path must be visible to MayContainPath.
	if !tl.MayContainPath("newkey") {
		t.Error("newkey not added to header filter")
	}
	// Raw JSONB replaced.
	if v, ok := tl.Raw(1).Get("newkey"); !ok {
		t.Error("newkey missing from JSONB")
	} else if s, _ := v.String(); s != "x" {
		t.Errorf("newkey = %q", s)
	}
}

func TestUpdateOutlierTriggersRecompute(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DetectDates = false
	ds := docs(t, `{"a":1}`, `{"a":2}`, `{"a":3}`, `{"a":4}`)
	tl := build(t, cfg, ds)
	if tl.NeedsRecompute() {
		t.Fatal("fresh tile needs recompute")
	}
	var enc jsonb.Encoder
	for i := 0; i < 3; i++ {
		if !tl.Update(i, docs(t, `{"z":true}`)[0], &enc, 0) {
			t.Fatalf("update %d not flagged outlier", i)
		}
	}
	if tl.OutlierCount() != 3 {
		t.Errorf("outliers = %d", tl.OutlierCount())
	}
	if !tl.NeedsRecompute() {
		t.Error("3/4 outliers should trigger recompute")
	}
}

func TestMinSupport(t *testing.T) {
	cfg := Config{Threshold: 0.6}
	tests := []struct{ n, want int }{
		{4, 3}, {1024, 615}, {0, 1}, {1, 1},
	}
	for _, tt := range tests {
		if got := cfg.MinSupport(tt.n); got != tt.want {
			t.Errorf("MinSupport(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestMetricsAccumulate(t *testing.T) {
	var m Metrics
	b := NewBuilder(DefaultConfig(), &m)
	b.Build(figure2Tile2(t))
	if m.TilesBuilt.Load() != 1 {
		t.Errorf("tiles built = %d", m.TilesBuilt.Load())
	}
	if m.MineNanos.Load() <= 0 || m.ExtractNanos.Load() <= 0 || m.WriteJSONBNanos.Load() <= 0 {
		t.Error("timers did not accumulate")
	}
}

func TestStorageAccounting(t *testing.T) {
	cfg := DefaultConfig()
	var srcs []string
	for i := 0; i < 512; i++ {
		srcs = append(srcs, fmt.Sprintf(`{"k":%d,"s":"constant-value"}`, i%10))
	}
	tl := build(t, cfg, docs(t, srcs...))
	raw := tl.RawSizeBytes()
	cols := tl.ColumnSizeBytes()
	comp := tl.ColumnCompressedSizeBytes()
	if raw <= 0 || cols <= 0 || comp <= 0 {
		t.Fatalf("sizes: raw=%d cols=%d comp=%d", raw, cols, comp)
	}
	if comp >= cols {
		t.Errorf("LZ4 did not shrink repetitive columns: %d -> %d", cols, comp)
	}
}

func TestBuildEmptyAndSingle(t *testing.T) {
	cfg := DefaultConfig()
	tl := build(t, cfg, nil)
	if tl.NumRows() != 0 {
		t.Error("empty build")
	}
	tl2 := build(t, cfg, docs(t, `{"a":1}`))
	if tl2.NumRows() != 1 {
		t.Error("single build")
	}
	// With one doc, its structure is 100% frequent.
	if tl2.FindColumn("a", keypath.TypeBigInt) < 0 {
		t.Error("single-doc tile did not extract")
	}
}

func TestArrayLeadingElements(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DetectDates = false
	// All docs share 2 leading elements; one has a third (below 60%).
	ds := docs(t,
		`{"tags":["a","b"]}`,
		`{"tags":["c","d","e"]}`,
		`{"tags":["f","g"]}`,
	)
	tl := build(t, cfg, ds)
	if tl.FindColumn("tags[0]", keypath.TypeString) < 0 {
		t.Error("tags[0] not extracted")
	}
	if tl.FindColumn("tags[1]", keypath.TypeString) < 0 {
		t.Error("tags[1] not extracted")
	}
	if tl.FindColumn("tags[2]", keypath.TypeString) >= 0 {
		t.Error("tags[2] extracted despite 33% frequency")
	}
	if !tl.MayContainPath("tags[2]") {
		t.Error("tags[2] lost from header")
	}
}
