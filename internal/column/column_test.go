package column

import (
	"testing"
	"testing/quick"

	"repro/internal/keypath"
)

func TestIntColumn(t *testing.T) {
	c := New(keypath.TypeBigInt)
	c.AppendInt(10)
	c.AppendNull()
	c.AppendInt(-5)
	if c.Len() != 3 || c.Type() != keypath.TypeBigInt {
		t.Fatalf("len=%d type=%v", c.Len(), c.Type())
	}
	if c.Int(0) != 10 || c.Int(2) != -5 {
		t.Error("values wrong")
	}
	if c.IsNull(0) || !c.IsNull(1) || c.IsNull(2) {
		t.Error("null bitmap wrong")
	}
	if !c.HasNulls() || c.NullCount() != 1 {
		t.Error("null accounting wrong")
	}
}

func TestStringColumn(t *testing.T) {
	c := New(keypath.TypeString)
	c.AppendString("hello")
	c.AppendString("")
	c.AppendNull()
	c.AppendString("world")
	want := []string{"hello", "", "", "world"}
	for i, w := range want {
		if got := c.String(i); got != w {
			t.Errorf("String(%d) = %q, want %q", i, got, w)
		}
		if got := string(c.StringBytes(i)); got != w {
			t.Errorf("StringBytes(%d) = %q", i, got)
		}
	}
	if !c.IsNull(2) || c.IsNull(1) {
		t.Error("null vs empty-string confusion")
	}
}

func TestFloatAndBoolColumns(t *testing.T) {
	f := New(keypath.TypeDouble)
	f.AppendFloat(1.5)
	f.AppendNull()
	if f.Float(0) != 1.5 || !f.IsNull(1) {
		t.Error("float column wrong")
	}
	b := New(keypath.TypeBool)
	b.AppendBool(true)
	b.AppendBool(false)
	b.AppendNull()
	b.AppendBool(true)
	if !b.Bool(0) || b.Bool(1) || !b.Bool(3) {
		t.Error("bool column wrong")
	}
	if !b.IsNull(2) {
		t.Error("bool null wrong")
	}
}

func TestSetInPlace(t *testing.T) {
	c := New(keypath.TypeBigInt)
	c.AppendNull()
	c.AppendInt(1)
	c.SetInt(0, 99) // null -> value
	if c.IsNull(0) || c.Int(0) != 99 {
		t.Error("SetInt on null row failed")
	}
	c.SetNull(1)
	if !c.IsNull(1) {
		t.Error("SetNull failed")
	}
	f := New(keypath.TypeDouble)
	f.AppendFloat(1)
	f.SetFloat(0, 2.5)
	if f.Float(0) != 2.5 {
		t.Error("SetFloat failed")
	}
}

func TestNullBitmapAcrossWords(t *testing.T) {
	c := New(keypath.TypeBigInt)
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			c.AppendNull()
		} else {
			c.AppendInt(int64(i))
		}
	}
	for i := 0; i < 200; i++ {
		if got := c.IsNull(i); got != (i%3 == 0) {
			t.Fatalf("IsNull(%d) = %v", i, got)
		}
	}
	if c.NullCount() != 67 {
		t.Errorf("NullCount = %d", c.NullCount())
	}
}

func TestSerializeAndCompress(t *testing.T) {
	c := New(keypath.TypeString)
	for i := 0; i < 500; i++ {
		c.AppendString("repetitive-value")
	}
	raw := c.Serialize()
	if len(raw) == 0 {
		t.Fatal("empty serialization")
	}
	if cs := c.CompressedSize(); cs >= len(raw) {
		t.Errorf("compression did not help: %d -> %d", len(raw), cs)
	}
	if c.SizeBytes() <= 0 {
		t.Error("SizeBytes")
	}
}

// Property: appended values read back identically in order.
func TestQuickAppendRead(t *testing.T) {
	f := func(vals []int64, nullMask []bool) bool {
		c := New(keypath.TypeBigInt)
		expect := make([]struct {
			v    int64
			null bool
		}, 0, len(vals))
		for i, v := range vals {
			null := i < len(nullMask) && nullMask[i]
			if null {
				c.AppendNull()
			} else {
				c.AppendInt(v)
			}
			expect = append(expect, struct {
				v    int64
				null bool
			}{v, null})
		}
		for i, e := range expect {
			if c.IsNull(i) != e.null {
				return false
			}
			if !e.null && c.Int(i) != e.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
