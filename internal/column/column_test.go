package column

import (
	"testing"
	"testing/quick"

	"repro/internal/keypath"
)

func TestIntColumn(t *testing.T) {
	c := New(keypath.TypeBigInt)
	c.AppendInt(10)
	c.AppendNull()
	c.AppendInt(-5)
	if c.Len() != 3 || c.Type() != keypath.TypeBigInt {
		t.Fatalf("len=%d type=%v", c.Len(), c.Type())
	}
	if c.Int(0) != 10 || c.Int(2) != -5 {
		t.Error("values wrong")
	}
	if c.IsNull(0) || !c.IsNull(1) || c.IsNull(2) {
		t.Error("null bitmap wrong")
	}
	if !c.HasNulls() || c.NullCount() != 1 {
		t.Error("null accounting wrong")
	}
}

func TestStringColumn(t *testing.T) {
	c := New(keypath.TypeString)
	c.AppendString("hello")
	c.AppendString("")
	c.AppendNull()
	c.AppendString("world")
	want := []string{"hello", "", "", "world"}
	for i, w := range want {
		if got := c.String(i); got != w {
			t.Errorf("String(%d) = %q, want %q", i, got, w)
		}
		if got := string(c.StringBytes(i)); got != w {
			t.Errorf("StringBytes(%d) = %q", i, got)
		}
	}
	if !c.IsNull(2) || c.IsNull(1) {
		t.Error("null vs empty-string confusion")
	}
}

func TestFloatAndBoolColumns(t *testing.T) {
	f := New(keypath.TypeDouble)
	f.AppendFloat(1.5)
	f.AppendNull()
	if f.Float(0) != 1.5 || !f.IsNull(1) {
		t.Error("float column wrong")
	}
	b := New(keypath.TypeBool)
	b.AppendBool(true)
	b.AppendBool(false)
	b.AppendNull()
	b.AppendBool(true)
	if !b.Bool(0) || b.Bool(1) || !b.Bool(3) {
		t.Error("bool column wrong")
	}
	if !b.IsNull(2) {
		t.Error("bool null wrong")
	}
}

func TestSetInPlace(t *testing.T) {
	c := New(keypath.TypeBigInt)
	c.AppendNull()
	c.AppendInt(1)
	c.SetInt(0, 99) // null -> value
	if c.IsNull(0) || c.Int(0) != 99 {
		t.Error("SetInt on null row failed")
	}
	c.SetNull(1)
	if !c.IsNull(1) {
		t.Error("SetNull failed")
	}
	f := New(keypath.TypeDouble)
	f.AppendFloat(1)
	f.SetFloat(0, 2.5)
	if f.Float(0) != 2.5 {
		t.Error("SetFloat failed")
	}
}

func TestNullBitmapAcrossWords(t *testing.T) {
	c := New(keypath.TypeBigInt)
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			c.AppendNull()
		} else {
			c.AppendInt(int64(i))
		}
	}
	for i := 0; i < 200; i++ {
		if got := c.IsNull(i); got != (i%3 == 0) {
			t.Fatalf("IsNull(%d) = %v", i, got)
		}
	}
	if c.NullCount() != 67 {
		t.Errorf("NullCount = %d", c.NullCount())
	}
}

func TestSerializeAndCompress(t *testing.T) {
	c := New(keypath.TypeString)
	for i := 0; i < 500; i++ {
		c.AppendString("repetitive-value")
	}
	raw := c.Serialize()
	if len(raw) == 0 {
		t.Fatal("empty serialization")
	}
	if cs := c.CompressedSize(); cs >= len(raw) {
		t.Errorf("compression did not help: %d -> %d", len(raw), cs)
	}
	if c.SizeBytes() <= 0 {
		t.Error("SizeBytes")
	}
}

// Property: appended values read back identically in order.
func TestQuickAppendRead(t *testing.T) {
	f := func(vals []int64, nullMask []bool) bool {
		c := New(keypath.TypeBigInt)
		expect := make([]struct {
			v    int64
			null bool
		}, 0, len(vals))
		for i, v := range vals {
			null := i < len(nullMask) && nullMask[i]
			if null {
				c.AppendNull()
			} else {
				c.AppendInt(v)
			}
			expect = append(expect, struct {
				v    int64
				null bool
			}{v, null})
		}
		for i, e := range expect {
			if c.IsNull(i) != e.null {
				return false
			}
			if !e.null && c.Int(i) != e.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Serialize → Deserialize must restore an identical column for every
// type, including lazily-grown (short) bitmaps and empty columns.
func TestSerializeRoundTrip(t *testing.T) {
	build := map[string]func() *Column{
		"bigint": func() *Column {
			c := New(keypath.TypeBigInt)
			c.AppendInt(-5)
			c.AppendNull()
			c.AppendInt(1 << 40)
			return c
		},
		"double": func() *Column {
			c := New(keypath.TypeDouble)
			c.AppendFloat(3.25)
			c.AppendFloat(-0.5)
			c.AppendNull()
			return c
		},
		"bool-no-bitmaps": func() *Column {
			c := New(keypath.TypeBool)
			c.AppendBool(false)
			c.AppendBool(false)
			return c
		},
		"bool-mixed": func() *Column {
			c := New(keypath.TypeBool)
			c.AppendBool(true)
			c.AppendNull()
			c.AppendBool(false)
			c.AppendBool(true)
			return c
		},
		"text": func() *Column {
			c := New(keypath.TypeString)
			c.AppendString("hello")
			c.AppendNull()
			c.AppendString("")
			c.AppendString("worldly")
			return c
		},
		"timestamp": func() *Column {
			c := New(keypath.TypeTimestamp)
			c.AppendInt(1600000000000000)
			c.AppendNull()
			return c
		},
		"empty": func() *Column { return New(keypath.TypeBigInt) },
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			c := mk()
			got, err := Deserialize(c.Serialize())
			if err != nil {
				t.Fatalf("deserialize: %v", err)
			}
			if got.Type() != c.Type() || got.Len() != c.Len() {
				t.Fatalf("type/len = %v/%d, want %v/%d", got.Type(), got.Len(), c.Type(), c.Len())
			}
			for i := 0; i < c.Len(); i++ {
				if got.IsNull(i) != c.IsNull(i) {
					t.Fatalf("row %d null mismatch", i)
				}
				if c.IsNull(i) {
					continue
				}
				switch c.Type() {
				case keypath.TypeBigInt, keypath.TypeTimestamp:
					if got.Int(i) != c.Int(i) {
						t.Fatalf("row %d int mismatch", i)
					}
				case keypath.TypeDouble:
					if got.Float(i) != c.Float(i) {
						t.Fatalf("row %d float mismatch", i)
					}
				case keypath.TypeBool:
					if got.Bool(i) != c.Bool(i) {
						t.Fatalf("row %d bool mismatch", i)
					}
				case keypath.TypeString:
					if got.String(i) != c.String(i) {
						t.Fatalf("row %d string mismatch", i)
					}
				}
			}
		})
	}
}

// Truncations and bit flips of a valid serialization must never panic;
// they either error or decode to some well-formed column.
func TestDeserializeCorrupt(t *testing.T) {
	c := New(keypath.TypeString)
	c.AppendString("abc")
	c.AppendString("defg")
	c.AppendNull()
	buf := c.Serialize()
	for cut := 0; cut < len(buf); cut++ {
		if _, err := Deserialize(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d: want error", cut)
		}
	}
	for i := 0; i < len(buf); i++ {
		cp := append([]byte(nil), buf...)
		cp[i] ^= 0xFF
		col, err := Deserialize(cp) // must not panic
		if err == nil && col.Len() > 0 {
			_ = col.IsNull(0)
		}
	}
	if _, err := Deserialize(nil); err == nil {
		t.Fatal("nil input: want error")
	}
}
