// Package column implements the typed columnar chunks that JSON tiles
// materialize extracted key paths into. A column stores one value type
// (BigInt, Double, Text, Bool, or Timestamp) plus a null bitmap; null
// marks tuples whose document lacks the path or carries an
// outlier-typed value — those are answered from the binary JSON
// fallback (paper §3.4).
//
// Strings live in a single byte arena with offsets, so a column's
// memory is a handful of flat slices: cheap to scan, cheap to measure
// (Table 6), and trivially compressible (LZ4).
package column

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/keypath"
	"repro/internal/lz4"
)

// Column is an append-only typed column with a null bitmap.
type Column struct {
	typ   keypath.ValueType
	n     int
	nulls []uint64 // bit i set = row i is null

	ints     []int64   // BigInt and Timestamp (microseconds since epoch)
	floats   []float64 // Double
	bools    []uint64  // Bool bitmap
	strOff   []uint32  // Text: end offsets into strBytes (start = off[i-1])
	strBytes []byte

	// Dictionary layout (Text only, see dict.go): when codeWidth != 0
	// the per-row strings are replaced by codes into a sorted distinct-
	// value arena and strOff/strBytes are nil.
	dictOff   []uint32 // dict entry end offsets into dictBytes
	dictBytes []byte
	codeWidth uint8 // 0 = arena layout; 1, 2, or 4 byte codes
	codes8    []uint8
	codes16   []uint16
	codes32   []uint32
}

// New returns an empty column of the given storage type.
func New(t keypath.ValueType) *Column { return &Column{typ: t} }

// Type returns the storage type.
func (c *Column) Type() keypath.ValueType { return c.typ }

// Len returns the number of rows.
func (c *Column) Len() int { return c.n }

func (c *Column) setNull(i int) {
	w := i >> 6
	for len(c.nulls) <= w {
		c.nulls = append(c.nulls, 0)
	}
	c.nulls[w] |= 1 << (uint(i) & 63)
}

// IsNull reports whether row i is null.
func (c *Column) IsNull(i int) bool {
	w := i >> 6
	if w >= len(c.nulls) {
		return false
	}
	return c.nulls[w]&(1<<(uint(i)&63)) != 0
}

// HasNulls reports whether any row is null.
func (c *Column) HasNulls() bool {
	for _, w := range c.nulls {
		if w != 0 {
			return true
		}
	}
	return false
}

// NullCount returns the number of null rows.
func (c *Column) NullCount() int {
	total := 0
	for _, w := range c.nulls {
		total += popcount(w)
	}
	return total
}

func popcount(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}

// AppendNull adds a null row.
func (c *Column) AppendNull() {
	c.setNull(c.n)
	switch c.typ {
	case keypath.TypeBigInt, keypath.TypeTimestamp:
		c.ints = append(c.ints, 0)
	case keypath.TypeDouble:
		c.floats = append(c.floats, 0)
	case keypath.TypeString:
		switch c.codeWidth {
		case 0:
			var last uint32
			if len(c.strOff) > 0 {
				last = c.strOff[len(c.strOff)-1]
			}
			c.strOff = append(c.strOff, last)
		case 1:
			c.codes8 = append(c.codes8, 0)
		case 2:
			c.codes16 = append(c.codes16, 0)
		default:
			c.codes32 = append(c.codes32, 0)
		}
	case keypath.TypeBool:
		// bitmap grows lazily
	}
	c.n++
}

// AppendInt adds a BigInt or Timestamp row.
func (c *Column) AppendInt(v int64) {
	c.ints = append(c.ints, v)
	c.n++
}

// AppendFloat adds a Double row.
func (c *Column) AppendFloat(v float64) {
	c.floats = append(c.floats, v)
	c.n++
}

// AppendString adds a Text row.
func (c *Column) AppendString(v string) {
	c.strBytes = append(c.strBytes, v...)
	c.strOff = append(c.strOff, uint32(len(c.strBytes)))
	c.n++
}

// AppendBool adds a Bool row.
func (c *Column) AppendBool(v bool) {
	if v {
		w := c.n >> 6
		for len(c.bools) <= w {
			c.bools = append(c.bools, 0)
		}
		c.bools[w] |= 1 << (uint(c.n) & 63)
	}
	c.n++
}

// Int returns the integer value of row i (BigInt or Timestamp).
func (c *Column) Int(i int) int64 { return c.ints[i] }

// Float returns the double value of row i.
func (c *Column) Float(i int) float64 { return c.floats[i] }

// Bool returns the boolean value of row i.
func (c *Column) Bool(i int) bool {
	w := i >> 6
	if w >= len(c.bools) {
		return false
	}
	return c.bools[w]&(1<<(uint(i)&63)) != 0
}

// String returns the text value of row i.
func (c *Column) String(i int) string {
	if c.codeWidth != 0 {
		return string(c.dictEntryOfRow(i))
	}
	var start uint32
	if i > 0 {
		start = c.strOff[i-1]
	}
	return string(c.strBytes[start:c.strOff[i]])
}

// StringBytes returns the text of row i without copying. Callers must
// not retain or mutate the slice.
func (c *Column) StringBytes(i int) []byte {
	if c.codeWidth != 0 {
		return c.dictEntryOfRow(i)
	}
	var start uint32
	if i > 0 {
		start = c.strOff[i-1]
	}
	return c.strBytes[start:c.strOff[i]]
}

// IntSlice exposes the raw int64 backing (BigInt and Timestamp
// columns) for zero-copy vectorized scans. Read-only.
func (c *Column) IntSlice() []int64 { return c.ints }

// FloatSlice exposes the raw float64 backing. Read-only.
func (c *Column) FloatSlice() []float64 { return c.floats }

// BoolBits exposes the boolean bitmap. Read-only.
func (c *Column) BoolBits() []uint64 { return c.bools }

// NullBits exposes the null bitmap (nil when no row is null).
// Read-only.
func (c *Column) NullBits() []uint64 { return c.nulls }

// StringData exposes the text arena: end offsets and the shared byte
// buffer (row i spans offsets[i-1]..offsets[i]). Read-only. Nil for
// dictionary columns — use DictData and Codes instead.
func (c *Column) StringData() (offsets []uint32, bytes []byte) {
	return c.strOff, c.strBytes
}

// SetInt updates row i in place (update path, §4.7).
func (c *Column) SetInt(i int, v int64) {
	c.ints[i] = v
	c.clearNull(i)
}

// SetFloat updates row i in place.
func (c *Column) SetFloat(i int, v float64) {
	c.floats[i] = v
	c.clearNull(i)
}

// SetNull marks row i null in place.
func (c *Column) SetNull(i int) { c.setNull(i) }

func (c *Column) clearNull(i int) {
	w := i >> 6
	if w < len(c.nulls) {
		c.nulls[w] &^= 1 << (uint(i) & 63)
	}
}

// SizeBytes returns the in-memory footprint of the column data.
func (c *Column) SizeBytes() int {
	return len(c.nulls)*8 + len(c.ints)*8 + len(c.floats)*8 +
		len(c.bools)*8 + len(c.strOff)*4 + len(c.strBytes) +
		len(c.dictOff)*4 + len(c.dictBytes) +
		len(c.codes8) + len(c.codes16)*2 + len(c.codes32)*4
}

// ErrCorrupt reports an undecodable serialized column.
var ErrCorrupt = errors.New("column: corrupt serialized column")

// Serialize flattens the column into one contiguous self-describing
// buffer: the payload of a segment column block, and the form measured
// (and LZ4-compressed) for the Table 6 storage accounting.
//
// Layout (little endian): type byte, u32 row count, u32 null-bitmap
// word count + words, then the typed data — u64 per row for
// BigInt/Timestamp/Double, a length-prefixed u64 bitmap for Bool, and
// u32 end offsets plus a length-prefixed byte arena for Text. The
// lazily-grown bitmaps keep their in-memory (possibly short) lengths,
// so Deserialize restores an identical column.
func (c *Column) Serialize() []byte {
	out := make([]byte, 0, c.SizeBytes()+32)
	if c.codeWidth != 0 {
		// Dictionary layout: the codes part followed by the dictionary
		// part, each independently parseable (segments store them as
		// two blocks; see SerializeCodes/SerializeDict).
		return c.serializeDict(c.serializeCodes(out))
	}
	out = append(out, byte(c.typ))
	var tmp [8]byte
	pu32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		out = append(out, tmp[:4]...)
	}
	pwords := func(ws []uint64) {
		pu32(uint32(len(ws)))
		for _, w := range ws {
			binary.LittleEndian.PutUint64(tmp[:], w)
			out = append(out, tmp[:]...)
		}
	}
	pu32(uint32(c.n))
	pwords(c.nulls)
	switch c.typ {
	case keypath.TypeBigInt, keypath.TypeTimestamp:
		for _, v := range c.ints {
			binary.LittleEndian.PutUint64(tmp[:], uint64(v))
			out = append(out, tmp[:]...)
		}
	case keypath.TypeDouble:
		for _, v := range c.floats {
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
			out = append(out, tmp[:]...)
		}
	case keypath.TypeBool:
		pwords(c.bools)
	case keypath.TypeString:
		for _, o := range c.strOff {
			pu32(o)
		}
		pu32(uint32(len(c.strBytes)))
		out = append(out, c.strBytes...)
	}
	return out
}

// Deserialize reconstructs a column serialized by Serialize. Every
// length field is validated against the remaining buffer and against
// the row count, so corrupt block payloads yield ErrCorrupt instead of
// panicking or over-allocating.
func Deserialize(b []byte) (*Column, error) {
	if len(b) < 5 {
		return nil, ErrCorrupt
	}
	if b[0]&dictMarker != 0 {
		c, rest, err := deserializeCodes(b)
		if err != nil {
			return nil, err
		}
		rest, err = c.deserializeDict(rest)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, ErrCorrupt
		}
		return c, nil
	}
	typ := keypath.ValueType(b[0])
	b = b[1:]
	// The row count is untrusted: every per-row allocation below is
	// gated on the remaining buffer actually holding that many values,
	// so a corrupt count cannot over-allocate.
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	words := func() ([]uint64, bool) {
		if len(b) < 4 {
			return nil, false
		}
		w := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if w < 0 || w > (n+63)/64 || len(b) < w*8 {
			return nil, false
		}
		ws := make([]uint64, w)
		for i := range ws {
			ws[i] = binary.LittleEndian.Uint64(b[i*8:])
		}
		b = b[w*8:]
		return ws, true
	}
	c := &Column{typ: typ, n: n}
	var ok bool
	if c.nulls, ok = words(); !ok {
		return nil, ErrCorrupt
	}
	switch typ {
	case keypath.TypeBigInt, keypath.TypeTimestamp, keypath.TypeDouble:
		if len(b) < n*8 {
			return nil, ErrCorrupt
		}
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint64(b[i*8:])
		}
		b = b[n*8:]
		if typ == keypath.TypeDouble {
			c.floats = make([]float64, n)
			for i, v := range vals {
				c.floats[i] = math.Float64frombits(v)
			}
		} else {
			c.ints = make([]int64, n)
			for i, v := range vals {
				c.ints[i] = int64(v)
			}
		}
	case keypath.TypeBool:
		if c.bools, ok = words(); !ok {
			return nil, ErrCorrupt
		}
	case keypath.TypeString:
		if len(b) < n*4+4 {
			return nil, ErrCorrupt
		}
		c.strOff = make([]uint32, n)
		prev := uint32(0)
		for i := range c.strOff {
			o := binary.LittleEndian.Uint32(b[i*4:])
			if o < prev {
				return nil, ErrCorrupt // offsets must be monotonic
			}
			c.strOff[i] = o
			prev = o
		}
		b = b[n*4:]
		bl := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if bl < 0 || len(b) < bl || (n > 0 && int(c.strOff[n-1]) != bl) {
			return nil, ErrCorrupt
		}
		c.strBytes = append([]byte(nil), b[:bl]...)
		b = b[bl:]
	default:
		return nil, ErrCorrupt
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return c, nil
}

// CompressedSize returns the LZ4-compressed size of the serialized
// column.
func (c *Column) CompressedSize() int {
	return len(lz4.Compress(nil, c.Serialize()))
}
