// Dictionary-encoded text columns: low-cardinality string columns
// store each distinct value once in a sorted arena and replace the
// per-row strings with minimal-width integer codes (u8/u16/u32).
// Because the dictionary is sorted, equality and range predicates
// collapse to a binary-searched code range, LIKE/IN evaluate once per
// distinct value, and GROUP BY can aggregate into an array indexed by
// code — the per-row hot loops touch only integers (paper §3, §5;
// extracted paths exist precisely so analytics run at columnar speed).
package column

import (
	"bytes"
	"encoding/binary"
	"sort"

	"repro/internal/keypath"
)

// dictMarker flags the dictionary layout in the serialized type byte.
// Arena-layout serialization is byte-identical to the pre-dictionary
// format, so v1 segment blocks decode unchanged.
const dictMarker = 0x80

// IsDict reports whether the column uses the dictionary layout.
func (c *Column) IsDict() bool { return c.codeWidth != 0 }

// DictLen returns the number of distinct dictionary entries.
func (c *Column) DictLen() int { return len(c.dictOff) }

// DictEntryBytes returns dictionary entry k without copying. Entries
// are sorted ascending; callers must not retain or mutate the slice.
func (c *Column) DictEntryBytes(k int) []byte {
	var start uint32
	if k > 0 {
		start = c.dictOff[k-1]
	}
	return c.dictBytes[start:c.dictOff[k]]
}

// DictEntryString returns dictionary entry k as a string.
func (c *Column) DictEntryString(k int) string { return string(c.DictEntryBytes(k)) }

// Code returns the dictionary code of row i. Null rows carry code 0.
func (c *Column) Code(i int) uint32 {
	switch c.codeWidth {
	case 1:
		return uint32(c.codes8[i])
	case 2:
		return uint32(c.codes16[i])
	default:
		return c.codes32[i]
	}
}

// DictData exposes the sorted dictionary arena: end offsets and the
// shared byte buffer (entry k spans offsets[k-1]..offsets[k]).
// Read-only.
func (c *Column) DictData() (offsets []uint32, bytes []byte) {
	return c.dictOff, c.dictBytes
}

// Codes exposes the raw code slices for zero-copy vectorized scans:
// exactly one of c8/c16/c32 is non-nil, matching width. Read-only.
func (c *Column) Codes() (width uint8, c8 []uint8, c16 []uint16, c32 []uint32) {
	return c.codeWidth, c.codes8, c.codes16, c.codes32
}

func (c *Column) dictEntryOfRow(i int) []byte {
	k := c.Code(i)
	if k == 0 && c.IsNull(i) {
		return nil // null rows park on code 0; don't alias entry 0's bytes
	}
	return c.DictEntryBytes(int(k))
}

// DictEncode converts an arena-layout text column to the dictionary
// layout in place, keeping at most maxNDV distinct values. It returns
// false — leaving the column untouched — when the column is not an
// arena text column or the exact distinct count exceeds maxNDV (the
// lossless fallback: HLL estimates that invited the attempt can
// undershoot).
func (c *Column) DictEncode(maxNDV int) bool {
	if c.typ != keypath.TypeString || c.codeWidth != 0 || maxNDV <= 0 {
		return false
	}
	distinct := make(map[string]struct{}, 16)
	for i := 0; i < c.n; i++ {
		if c.IsNull(i) {
			continue
		}
		b := c.StringBytes(i)
		if _, ok := distinct[string(b)]; !ok {
			if len(distinct) >= maxNDV {
				return false
			}
			distinct[string(b)] = struct{}{}
		}
	}
	entries := make([]string, 0, len(distinct))
	for s := range distinct {
		entries = append(entries, s)
	}
	sort.Strings(entries)
	codeOf := make(map[string]uint32, len(entries))
	var dictBytes []byte
	dictOff := make([]uint32, len(entries))
	for k, s := range entries {
		codeOf[s] = uint32(k)
		dictBytes = append(dictBytes, s...)
		dictOff[k] = uint32(len(dictBytes))
	}
	width := codeWidthFor(len(entries))
	var c8 []uint8
	var c16 []uint16
	var c32 []uint32
	switch width {
	case 1:
		c8 = make([]uint8, c.n)
	case 2:
		c16 = make([]uint16, c.n)
	default:
		c32 = make([]uint32, c.n)
	}
	for i := 0; i < c.n; i++ {
		if c.IsNull(i) {
			continue // null rows keep code 0
		}
		k := codeOf[string(c.StringBytes(i))]
		switch width {
		case 1:
			c8[i] = uint8(k)
		case 2:
			c16[i] = uint16(k)
		default:
			c32[i] = k
		}
	}
	c.dictOff, c.dictBytes = dictOff, dictBytes
	c.codeWidth, c.codes8, c.codes16, c.codes32 = width, c8, c16, c32
	c.strOff, c.strBytes = nil, nil
	return true
}

// codeWidthFor picks the minimal code width for ndv entries.
func codeWidthFor(ndv int) uint8 {
	switch {
	case ndv <= 1<<8:
		return 1
	case ndv <= 1<<16:
		return 2
	default:
		return 4
	}
}

// SerializeCodes flattens the code half of a dictionary column: the
// header (marker type byte, row count, null bitmap) plus the code
// width and the packed codes. It is the payload of a segment column
// block; the dictionary itself travels in its own block
// (SerializeDict) so a tile's codes and dictionary are independently
// checksummed and cached.
func (c *Column) SerializeCodes() []byte {
	return c.serializeCodes(make([]byte, 0, 16+len(c.nulls)*8+c.n*int(c.codeWidth)))
}

func (c *Column) serializeCodes(out []byte) []byte {
	out = append(out, dictMarker|byte(c.typ))
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(c.n))
	out = append(out, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(c.nulls)))
	out = append(out, tmp[:4]...)
	for _, w := range c.nulls {
		binary.LittleEndian.PutUint64(tmp[:], w)
		out = append(out, tmp[:]...)
	}
	out = append(out, c.codeWidth)
	switch c.codeWidth {
	case 1:
		out = append(out, c.codes8...)
	case 2:
		for _, v := range c.codes16 {
			binary.LittleEndian.PutUint16(tmp[:2], v)
			out = append(out, tmp[:2]...)
		}
	default:
		for _, v := range c.codes32 {
			binary.LittleEndian.PutUint32(tmp[:4], v)
			out = append(out, tmp[:4]...)
		}
	}
	return out
}

// SerializeDict flattens the dictionary half: entry count, sorted
// entry end offsets, and the length-prefixed entry arena.
func (c *Column) SerializeDict() []byte {
	return c.serializeDict(make([]byte, 0, 8+len(c.dictOff)*4+len(c.dictBytes)))
}

func (c *Column) serializeDict(out []byte) []byte {
	var tmp [4]byte
	pu32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	pu32(uint32(len(c.dictOff)))
	for _, o := range c.dictOff {
		pu32(o)
	}
	pu32(uint32(len(c.dictBytes)))
	out = append(out, c.dictBytes...)
	return out
}

// deserializeCodes parses a SerializeCodes payload and returns the
// partially constructed column (dictionary still empty) plus the
// unconsumed remainder.
func deserializeCodes(b []byte) (*Column, []byte, error) {
	if len(b) < 5 || b[0] != dictMarker|byte(keypath.TypeString) {
		return nil, nil, ErrCorrupt
	}
	b = b[1:]
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < 4 {
		return nil, nil, ErrCorrupt
	}
	w := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if w < 0 || w > (n+63)/64 || len(b) < w*8 {
		return nil, nil, ErrCorrupt
	}
	c := &Column{typ: keypath.TypeString, n: n}
	if w > 0 {
		c.nulls = make([]uint64, w)
		for i := range c.nulls {
			c.nulls[i] = binary.LittleEndian.Uint64(b[i*8:])
		}
		b = b[w*8:]
	}
	if len(b) < 1 {
		return nil, nil, ErrCorrupt
	}
	width := b[0]
	b = b[1:]
	if width != 1 && width != 2 && width != 4 {
		return nil, nil, ErrCorrupt
	}
	if len(b) < n*int(width) {
		return nil, nil, ErrCorrupt
	}
	c.codeWidth = width
	switch width {
	case 1:
		c.codes8 = append([]uint8(nil), b[:n]...)
		b = b[n:]
	case 2:
		c.codes16 = make([]uint16, n)
		for i := range c.codes16 {
			c.codes16[i] = binary.LittleEndian.Uint16(b[i*2:])
		}
		b = b[n*2:]
	default:
		c.codes32 = make([]uint32, n)
		for i := range c.codes32 {
			c.codes32[i] = binary.LittleEndian.Uint32(b[i*4:])
		}
		b = b[n*4:]
	}
	return c, b, nil
}

// deserializeDict parses a SerializeDict payload into c and returns
// the unconsumed remainder. It validates offset monotonicity, strict
// entry ordering (the code-range kernels rely on a sorted, duplicate-
// free dictionary), and that every row's code addresses a real entry.
func (c *Column) deserializeDict(b []byte) ([]byte, error) {
	if len(b) < 4 {
		return nil, ErrCorrupt
	}
	dl := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if dl < 0 || dl > c.n || len(b) < dl*4+4 {
		return nil, ErrCorrupt
	}
	c.dictOff = make([]uint32, dl)
	prev := uint32(0)
	for i := range c.dictOff {
		o := binary.LittleEndian.Uint32(b[i*4:])
		if o < prev {
			return nil, ErrCorrupt
		}
		c.dictOff[i] = o
		prev = o
	}
	b = b[dl*4:]
	bl := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if bl < 0 || len(b) < bl || (dl > 0 && int(c.dictOff[dl-1]) != bl) || (dl == 0 && bl != 0) {
		return nil, ErrCorrupt
	}
	c.dictBytes = append([]byte(nil), b[:bl]...)
	b = b[bl:]
	for k := 1; k < dl; k++ {
		if bytes.Compare(c.DictEntryBytes(k-1), c.DictEntryBytes(k)) >= 0 {
			return nil, ErrCorrupt // must be sorted and duplicate-free
		}
	}
	limit := uint32(dl)
	for i := 0; i < c.n; i++ {
		code := c.Code(i)
		if code >= limit && !(code == 0 && c.IsNull(i)) {
			return nil, ErrCorrupt
		}
	}
	return b, nil
}

// DeserializeDict reconstructs a dictionary column from its two block
// payloads: a SerializeCodes buffer and a SerializeDict buffer.
func DeserializeDict(codes, dict []byte) (*Column, error) {
	c, rest, err := deserializeCodes(codes)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrCorrupt
	}
	rest, err = c.deserializeDict(dict)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrCorrupt
	}
	return c, nil
}
