package column

import (
	"fmt"
	"testing"

	"repro/internal/keypath"
)

func buildTextColumn(vals []string, nulls map[int]bool) *Column {
	c := New(keypath.TypeString)
	for i, v := range vals {
		if nulls[i] {
			c.AppendNull()
		} else {
			c.AppendString(v)
		}
	}
	return c
}

func checkSameValues(t *testing.T, want, got *Column) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.IsNull(i) != want.IsNull(i) {
			t.Fatalf("row %d: null = %v, want %v", i, got.IsNull(i), want.IsNull(i))
		}
		if !want.IsNull(i) && got.String(i) != want.String(i) {
			t.Fatalf("row %d: %q, want %q", i, got.String(i), want.String(i))
		}
	}
}

func TestDictEncodeRoundTrip(t *testing.T) {
	vals := []string{"warn", "info", "error", "info", "", "warn", "info", "debug", ""}
	arena := buildTextColumn(vals, map[int]bool{4: true})
	dict := buildTextColumn(vals, map[int]bool{4: true})
	if !dict.DictEncode(len(vals)) {
		t.Fatal("DictEncode refused")
	}
	if !dict.IsDict() || arena.IsDict() {
		t.Fatal("IsDict mismatch")
	}
	if dict.DictLen() != 5 { // "", debug, error, info, warn
		t.Fatalf("DictLen = %d, want 5", dict.DictLen())
	}
	for k := 1; k < dict.DictLen(); k++ {
		if dict.DictEntryString(k-1) >= dict.DictEntryString(k) {
			t.Fatalf("dict not sorted at %d", k)
		}
	}
	checkSameValues(t, arena, dict)

	// Full-buffer round trip.
	rt, err := Deserialize(dict.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if !rt.IsDict() {
		t.Fatal("round trip lost dict layout")
	}
	checkSameValues(t, arena, rt)

	// Split codes/dict round trip (the segment block layout).
	rt2, err := DeserializeDict(dict.SerializeCodes(), dict.SerializeDict())
	if err != nil {
		t.Fatal(err)
	}
	checkSameValues(t, arena, rt2)
}

func TestDictEncodeFallback(t *testing.T) {
	vals := make([]string, 100)
	for i := range vals {
		vals[i] = fmt.Sprintf("unique-%03d", i)
	}
	c := buildTextColumn(vals, nil)
	if c.DictEncode(50) {
		t.Fatal("DictEncode should refuse when NDV exceeds the cap")
	}
	if c.IsDict() {
		t.Fatal("failed encode must leave arena layout")
	}
	if c.String(7) != "unique-007" {
		t.Fatal("arena damaged by refused encode")
	}
	wrongType := New(keypath.TypeBigInt)
	wrongType.AppendInt(1)
	if wrongType.DictEncode(10) {
		t.Fatal("DictEncode on non-text column")
	}
}

func TestDictCodeWidths(t *testing.T) {
	for _, ndv := range []int{3, 300, 70000} {
		n := ndv * 2
		c := New(keypath.TypeString)
		for i := 0; i < n; i++ {
			c.AppendString(fmt.Sprintf("v%06d", i%ndv))
		}
		if !c.DictEncode(ndv) {
			t.Fatalf("ndv %d: refused", ndv)
		}
		width, _, _, _ := c.Codes()
		want := uint8(1)
		if ndv > 1<<8 {
			want = 2
		}
		if ndv > 1<<16 {
			want = 4
		}
		if width != want {
			t.Fatalf("ndv %d: width = %d, want %d", ndv, width, want)
		}
		if c.DictLen() != ndv {
			t.Fatalf("ndv %d: DictLen = %d", ndv, c.DictLen())
		}
		rt, err := Deserialize(c.Serialize())
		if err != nil {
			t.Fatalf("ndv %d: %v", ndv, err)
		}
		for _, i := range []int{0, 1, n / 2, n - 1} {
			if rt.String(i) != fmt.Sprintf("v%06d", i%ndv) {
				t.Fatalf("ndv %d row %d: %q", ndv, i, rt.String(i))
			}
		}
	}
}

func TestDictAllNull(t *testing.T) {
	c := New(keypath.TypeString)
	for i := 0; i < 5; i++ {
		c.AppendNull()
	}
	if !c.DictEncode(10) {
		t.Fatal("all-null column should dict-encode")
	}
	if c.DictLen() != 0 {
		t.Fatalf("DictLen = %d, want 0", c.DictLen())
	}
	rt, err := Deserialize(c.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !rt.IsNull(i) || rt.String(i) != "" {
			t.Fatalf("row %d not null after round trip", i)
		}
	}
}

func TestDictDeserializeRejectsCorrupt(t *testing.T) {
	c := buildTextColumn([]string{"a", "b", "a", "c"}, nil)
	if !c.DictEncode(4) {
		t.Fatal("encode")
	}
	good := c.Serialize()
	if _, err := Deserialize(good); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(good); i++ {
		for _, delta := range []byte{1, 0x80, 0xff} {
			mut := append([]byte(nil), good...)
			mut[i] ^= delta
			col, err := Deserialize(mut)
			if err != nil {
				continue
			}
			// Accepted mutants must still be fully readable.
			for r := 0; r < col.Len(); r++ {
				_ = col.IsNull(r)
				_ = col.String(r)
			}
		}
	}
	// Truncations must never be accepted as the original.
	for i := 0; i < len(good); i++ {
		if _, err := Deserialize(good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestDictAppendNullAfterEncode(t *testing.T) {
	c := buildTextColumn([]string{"x", "y"}, nil)
	if !c.DictEncode(2) {
		t.Fatal("encode")
	}
	c.AppendNull()
	if c.Len() != 3 || !c.IsNull(2) || c.String(2) != "" {
		t.Fatal("AppendNull on dict column broken")
	}
	if _, err := Deserialize(c.Serialize()); err != nil {
		t.Fatal(err)
	}
}
