package column

import (
	"bytes"
	"testing"

	"repro/internal/keypath"
)

// FuzzDictColumn drives arbitrary bytes through the dictionary codec:
// any buffer Deserialize accepts must survive a full read of every
// row, re-serialize, deserialize again, and compare value-for-value —
// including through the split codes/dict path that segment blocks use.
func FuzzDictColumn(f *testing.F) {
	dict := buildTextColumn(
		[]string{"info", "warn", "info", "error", "", "info"},
		map[int]bool{4: true})
	if !dict.DictEncode(6) {
		f.Fatal("seed encode")
	}
	f.Add(dict.Serialize())
	arena := buildTextColumn([]string{"a", "bb", "ccc"}, nil)
	f.Add(arena.Serialize())
	allNull := New(keypath.TypeString)
	allNull.AppendNull()
	allNull.AppendNull()
	allNull.DictEncode(2)
	f.Add(allNull.Serialize())
	f.Add([]byte{dictMarker | byte(keypath.TypeString), 0, 0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Deserialize(data)
		if err != nil {
			return
		}
		// Every row must be readable without panicking.
		vals := make([]string, c.Len())
		nulls := make([]bool, c.Len())
		for i := 0; i < c.Len(); i++ {
			nulls[i] = c.IsNull(i)
			vals[i] = c.String(i)
			if !bytes.Equal(c.StringBytes(i), []byte(vals[i])) {
				t.Fatalf("row %d: String/StringBytes disagree", i)
			}
		}
		// Serialize → Deserialize must reproduce the values.
		rt, err := Deserialize(c.Serialize())
		if err != nil {
			t.Fatalf("re-deserialize: %v", err)
		}
		compare := func(label string, got *Column) {
			t.Helper()
			if got.Len() != c.Len() {
				t.Fatalf("%s: len %d, want %d", label, got.Len(), c.Len())
			}
			for i := 0; i < c.Len(); i++ {
				if got.IsNull(i) != nulls[i] || got.String(i) != vals[i] {
					t.Fatalf("%s row %d: (%v,%q), want (%v,%q)",
						label, i, got.IsNull(i), got.String(i), nulls[i], vals[i])
				}
			}
		}
		compare("full", rt)
		if c.IsDict() {
			rt2, err := DeserializeDict(c.SerializeCodes(), c.SerializeDict())
			if err != nil {
				t.Fatalf("split round trip: %v", err)
			}
			compare("split", rt2)
		}
	})
}
