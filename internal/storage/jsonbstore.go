package storage

import (
	"context"

	"repro/internal/expr"
	"repro/internal/jsonb"
	"repro/internal/jsontape"
	"repro/internal/obs"
	"repro/internal/stats"
)

// jsonbStore keeps one binary JSON document per tuple (§5) — the
// "JSONB" competitor. Accesses avoid parsing but still traverse each
// document per tuple.
type jsonbStore struct {
	name string
	docs [][]byte
}

type jsonbLoader struct{ cfg LoaderConfig }

func (l jsonbLoader) Load(name string, lines [][]byte, workers int) (Relation, error) {
	if l.cfg.TreeIngest {
		docs, err := parseAll(lines, workers)
		if err != nil {
			return nil, err
		}
		obs.IngestDocsTreeFallback.Add(int64(len(docs)))
		encoded := make([][]byte, len(docs))
		morselRange(len(docs), workers, func(w, lo, hi int) {
			var enc jsonb.Encoder
			for i := lo; i < hi; i++ {
				encoded[i] = enc.Encode(docs[i])
			}
		})
		return &jsonbStore{name: name, docs: encoded}, nil
	}
	// Tape path: parse and encode per document in one pass — the tree
	// is never materialized, and each worker reuses one pooled tape and
	// encoder. Over-limit documents fall back individually.
	encoded := make([][]byte, len(lines))
	pe := newParseErrs()
	morselRange(len(lines), workers, func(w, lo, hi int) {
		if pe.failedBefore(lo) {
			return
		}
		s := ingestScratchPool.Get().(*ingestScratch)
		defer ingestScratchPool.Put(s)
		var tapeDocs, treeDocs, tapeBytes int64
		defer func() {
			obs.IngestDocsTape.Add(tapeDocs)
			obs.IngestDocsTreeFallback.Add(treeDocs)
			obs.IngestTapeBytes.Add(tapeBytes)
		}()
		for i := lo; i < hi; i++ {
			err := jsontape.Parse(lines[i], &s.doc)
			if err == nil {
				tapeDocs++
				tapeBytes += int64(8 * len(s.doc.Tape))
				encoded[i] = s.enc.EncodeTape(&s.doc)
				continue
			}
			if jsontape.IsLimit(err) {
				v, terr := parseDoc(lines[i])
				if terr != nil {
					pe.record(i, terr)
					return
				}
				treeDocs++
				encoded[i] = s.enc.Encode(v)
				continue
			}
			pe.record(i, err)
			return
		}
	})
	if err := pe.get(); err != nil {
		return nil, err
	}
	return &jsonbStore{name: name, docs: encoded}, nil
}

func (r *jsonbStore) Name() string             { return r.name }
func (r *jsonbStore) NumRows() int             { return len(r.docs) }
func (r *jsonbStore) Stats() *stats.TableStats { return nil }

func (r *jsonbStore) SizeBytes() int {
	total := 0
	for _, d := range r.docs {
		total += len(d)
	}
	return total
}

func (r *jsonbStore) Scan(accesses []Access, workers int, emit EmitFunc) {
	r.ScanWithStats(context.Background(), accesses, workers, emit, nil)
}

// ScanWithStats implements StatsScanner. Every access traverses the
// per-document binary JSON, so they all count as fallbacks — the
// baseline the tiles column-hit ratio is compared against.
func (r *jsonbStore) ScanWithStats(ctx context.Context, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats) {
	morselRangeCtx(ctx, len(r.docs), workers, func(w, lo, hi int) {
		cnt := scanCounters{morsels: 1}
		defer cnt.flush(st)
		cnt.rows = int64(hi - lo)
		cnt.fallbacks = int64(hi-lo) * int64(len(accesses))
		row := make([]expr.Value, len(accesses))
		for i := lo; i < hi; i++ {
			d := jsonb.NewDoc(r.docs[i])
			for ai, a := range accesses {
				row[ai] = docAccess(d, a.Path, a.Type)
			}
			emit(w, row)
		}
	})
}

// Doc exposes row i (tests and the Tiles-* side-relation builder).
func (r *jsonbStore) Doc(i int) jsonb.Doc { return jsonb.NewDoc(r.docs[i]) }
