package storage

import (
	"context"

	"repro/internal/expr"
	"repro/internal/jsonb"
	"repro/internal/obs"
	"repro/internal/stats"
)

// jsonbStore keeps one binary JSON document per tuple (§5) — the
// "JSONB" competitor. Accesses avoid parsing but still traverse each
// document per tuple.
type jsonbStore struct {
	name string
	docs [][]byte
}

type jsonbLoader struct{}

func (jsonbLoader) Load(name string, lines [][]byte, workers int) (Relation, error) {
	docs, err := parseAll(lines, workers)
	if err != nil {
		return nil, err
	}
	encoded := make([][]byte, len(docs))
	morselRange(len(docs), workers, func(w, lo, hi int) {
		var enc jsonb.Encoder
		for i := lo; i < hi; i++ {
			encoded[i] = enc.Encode(docs[i])
		}
	})
	return &jsonbStore{name: name, docs: encoded}, nil
}

func (r *jsonbStore) Name() string             { return r.name }
func (r *jsonbStore) NumRows() int             { return len(r.docs) }
func (r *jsonbStore) Stats() *stats.TableStats { return nil }

func (r *jsonbStore) SizeBytes() int {
	total := 0
	for _, d := range r.docs {
		total += len(d)
	}
	return total
}

func (r *jsonbStore) Scan(accesses []Access, workers int, emit EmitFunc) {
	r.ScanWithStats(context.Background(), accesses, workers, emit, nil)
}

// ScanWithStats implements StatsScanner. Every access traverses the
// per-document binary JSON, so they all count as fallbacks — the
// baseline the tiles column-hit ratio is compared against.
func (r *jsonbStore) ScanWithStats(ctx context.Context, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats) {
	morselRangeCtx(ctx, len(r.docs), workers, func(w, lo, hi int) {
		cnt := scanCounters{morsels: 1}
		defer cnt.flush(st)
		cnt.rows = int64(hi - lo)
		cnt.fallbacks = int64(hi-lo) * int64(len(accesses))
		row := make([]expr.Value, len(accesses))
		for i := lo; i < hi; i++ {
			d := jsonb.NewDoc(r.docs[i])
			for ai, a := range accesses {
				row[ai] = docAccess(d, a.Path, a.Type)
			}
			emit(w, row)
		}
	})
}

// Doc exposes row i (tests and the Tiles-* side-relation builder).
func (r *jsonbStore) Doc(i int) jsonb.Doc { return jsonb.NewDoc(r.docs[i]) }
