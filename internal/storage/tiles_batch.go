package storage

import (
	"context"

	"repro/internal/column"
	"repro/internal/expr"
	"repro/internal/keypath"
	"repro/internal/obs"
	"repro/internal/vec"
)

// Batch scanning over JSON tiles: each tile becomes one column batch.
// Accesses served by a materialized column whose storage type matches
// the requested SQL type are handed out as zero-copy slices of the
// tile's column data; a BigInt column accessed as Float is widened in
// a typed copy (still no boxing); provably-absent paths become
// all-NULL vectors; everything else — binary-JSON fallbacks, renders,
// type-outlier columns — is materialized cell-by-cell into a boxed
// vector by the same resolver logic the row scan uses, so both paths
// agree bit-for-bit. The loop itself lives in the scan core
// (scancore.go), shared with the disk-backed segment relation.

type vecKind uint8

const (
	vkBoxed vecKind = iota
	vkZero
	vkIntToFloat
	vkNullAll
)

type batchResolver struct {
	kind vecKind
	col  *column.Column
	row  colResolver // boxed path: the row-at-a-time resolver
}

// zeroVec wraps a tile column's backing slices into a vector without
// copying.
func zeroVec(c *column.Column, t expr.SQLType) vec.Vector {
	v := vec.Vector{Type: t, Nulls: c.NullBits()}
	switch c.Type() {
	case keypath.TypeBigInt, keypath.TypeTimestamp:
		v.Ints = c.IntSlice()
	case keypath.TypeDouble:
		v.Floats = c.FloatSlice()
	case keypath.TypeBool:
		v.Bools = c.BoolBits()
	case keypath.TypeString:
		if c.IsDict() {
			v.Dict = true
			v.DictOff, v.DictBytes = c.DictData()
			_, v.Codes8, v.Codes16, v.Codes32 = c.Codes()
		} else {
			v.StrOff, v.StrBytes = c.StringData()
		}
	}
	return v
}

var _ BatchScanner = (*tilesRelation)(nil)

// ScanBatches implements BatchScanner via the shared scan core: one
// batch per surviving tile, with the same skip decisions and
// observability accounting as the row scan plus the
// batch/vectorized-row split.
func (r *tilesRelation) ScanBatches(ctx context.Context, accesses []Access, workers int, emit BatchEmitFunc, st *obs.ScanStats) {
	scanBatchesCore(ctx, r, accesses, workers, emit, st)
}
