package storage

import (
	"repro/internal/column"
	"repro/internal/expr"
	"repro/internal/keypath"
	"repro/internal/obs"
	"repro/internal/tile"
	"repro/internal/vec"
)

// Batch scanning over JSON tiles: each tile becomes one column batch.
// Accesses served by a materialized column whose storage type matches
// the requested SQL type are handed out as zero-copy slices of the
// tile's column data; a BigInt column accessed as Float is widened in
// a typed copy (still no boxing); provably-absent paths become
// all-NULL vectors; everything else — binary-JSON fallbacks, renders,
// type-outlier columns — is materialized cell-by-cell into a boxed
// vector by the same resolver logic the row scan uses, so both paths
// agree bit-for-bit.

type vecKind uint8

const (
	vkBoxed vecKind = iota
	vkZero
	vkIntToFloat
	vkNullAll
)

type batchResolver struct {
	kind vecKind
	col  *column.Column
	row  colResolver // boxed path: the row-at-a-time resolver
}

// resolveTileBatch decides how an access is served in batch form.
func (r *tilesRelation) resolveTileBatch(t *tile.Tile, a Access) batchResolver {
	rv := r.resolveTile(t, a)
	switch rv.mode {
	case modeNullAll:
		return batchResolver{kind: vkNullAll}
	case modeColumn:
		if !rv.fallbackOnNull {
			switch rv.col.Type() {
			case keypath.TypeBigInt:
				switch a.Type {
				case expr.TBigInt:
					return batchResolver{kind: vkZero, col: rv.col}
				case expr.TFloat:
					return batchResolver{kind: vkIntToFloat, col: rv.col}
				}
			case keypath.TypeDouble:
				if a.Type == expr.TFloat {
					return batchResolver{kind: vkZero, col: rv.col}
				}
			case keypath.TypeString:
				if a.Type == expr.TText {
					return batchResolver{kind: vkZero, col: rv.col}
				}
			case keypath.TypeBool:
				if a.Type == expr.TBool {
					return batchResolver{kind: vkZero, col: rv.col}
				}
			case keypath.TypeTimestamp:
				if a.Type == expr.TTimestamp {
					return batchResolver{kind: vkZero, col: rv.col}
				}
			}
		}
	}
	return batchResolver{kind: vkBoxed, row: rv}
}

// zeroVec wraps a tile column's backing slices into a vector without
// copying.
func zeroVec(c *column.Column, t expr.SQLType) vec.Vector {
	v := vec.Vector{Type: t, Nulls: c.NullBits()}
	switch c.Type() {
	case keypath.TypeBigInt, keypath.TypeTimestamp:
		v.Ints = c.IntSlice()
	case keypath.TypeDouble:
		v.Floats = c.FloatSlice()
	case keypath.TypeBool:
		v.Bools = c.BoolBits()
	case keypath.TypeString:
		v.StrOff, v.StrBytes = c.StringData()
	}
	return v
}

var _ BatchScanner = (*tilesRelation)(nil)

// ScanBatches implements BatchScanner: one batch per surviving tile,
// with the same skip decisions and observability accounting as the
// row scan plus the batch/vectorized-row split.
func (r *tilesRelation) ScanBatches(accesses []Access, workers int, emit BatchEmitFunc, st *obs.ScanStats) {
	// Global row id of each tile's first row (Base of its batch).
	offs := make([]int64, len(r.tiles))
	var run int64
	for i, t := range r.tiles {
		offs[i] = run
		run += int64(t.NumRows())
	}
	parallelRange(len(r.tiles), workers, func(w, lo, hi int) {
		var (
			batch vec.Batch
			boxed = make([][]expr.Value, len(accesses))
			fbuf  = make([][]float64, len(accesses))
			cnt   scanCounters
		)
		batch.Cols = make([]vec.Vector, len(accesses))
		defer cnt.flush(st)
		for ti := lo; ti < hi; ti++ {
			t := r.tiles[ti]
			if r.cfg.SkipTiles && r.skippable(t, accesses) {
				cnt.tilesSkipped++
				continue
			}
			cnt.tilesScanned++
			n := t.NumRows()
			cnt.rows += int64(n)
			allVec := true
			for ai := range accesses {
				a := accesses[ai]
				br := r.resolveTileBatch(t, a)
				switch br.kind {
				case vkZero:
					batch.Cols[ai] = zeroVec(br.col, a.Type)
					cnt.hits += int64(n)
				case vkIntToFloat:
					buf := fbuf[ai]
					if cap(buf) < n {
						buf = make([]float64, n)
					} else {
						buf = buf[:n]
					}
					ints := br.col.IntSlice()
					for i := 0; i < n; i++ {
						buf[i] = float64(ints[i])
					}
					fbuf[ai] = buf
					batch.Cols[ai] = vec.Vector{Type: expr.TFloat, Floats: buf, Nulls: br.col.NullBits()}
					cnt.hits += int64(n)
				case vkNullAll:
					batch.Cols[ai] = vec.NullVector(a.Type, n)
				default: // boxed: row-at-a-time materialization
					allVec = false
					vals := boxed[ai]
					if cap(vals) < n {
						vals = make([]expr.Value, n)
					} else {
						vals = vals[:n]
					}
					for i := 0; i < n; i++ {
						v, needDoc, castErr := br.row.read(i)
						if needDoc {
							cnt.fallbacks++
							v = docAccess(t.Raw(i), a.Path, a.Type)
						} else if br.row.mode == modeColumn {
							cnt.hits++
						}
						if castErr {
							cnt.castErrs++
						}
						vals[i] = v
					}
					boxed[ai] = vals
					batch.Cols[ai] = vec.Vector{Type: a.Type, Boxed: vals}
				}
			}
			cnt.batches++
			if allVec {
				cnt.rowsVec += int64(n)
			} else {
				cnt.rowsFallback += int64(n)
			}
			batch.Len = n
			batch.Sel = nil
			batch.Base = offs[ti]
			emit(w, &batch)
		}
	})
}
