package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bufpool"
	"repro/internal/expr"
	"repro/internal/jsongen"
	"repro/internal/jsontape"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
)

// Tape-vs-tree conformance (DESIGN.md §6.8): for every storage format
// and several worker counts, loading through the structural-tape path
// must produce results identical to the boxed jsonvalue-tree path
// (LoaderConfig.TreeIngest), which is the long-standing reference.

// tapeConfSample derives a handful of typed accesses from the
// documents, plus one absent path.
func tapeConfSample(r *rand.Rand, docs []jsonvalue.Value) []Access {
	type cand struct {
		path keypath.Path
		t    expr.SQLType
	}
	var cands []cand
	seen := map[string]bool{}
	for _, d := range docs {
		keypath.Collect(d, 4, func(p keypath.Path, vt keypath.ValueType, v jsonvalue.Value) {
			enc := p.Encode()
			if seen[enc] {
				return
			}
			seen[enc] = true
			var st expr.SQLType
			switch vt {
			case keypath.TypeBigInt:
				st = expr.TBigInt
			case keypath.TypeDouble:
				st = expr.TFloat
			case keypath.TypeBool:
				st = expr.TBool
			default:
				st = expr.TText
			}
			cands = append(cands, cand{path: p, t: st})
		})
	}
	r.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > 5 {
		cands = cands[:5]
	}
	cands = append(cands, cand{path: keypath.NewPath("definitely", "absent"), t: expr.TBigInt})
	accesses := make([]Access, len(cands))
	for i, c := range cands {
		accesses[i] = NewAccessPath(c.t, c.path)
	}
	return accesses
}

// normRowMultiset collects a relation's row scan as a multiset with
// container cells canonicalized.
func normRowMultiset(rel Relation, accesses []Access, workers int) map[string]int {
	got := map[string]int{}
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	rel.Scan(accesses, workers, func(w int, row []expr.Value) {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = normalizeCell(v.String())
		}
		key := joinRow(cells)
		<-mu
		got[key]++
		mu <- struct{}{}
	})
	return got
}

func TestTapeMatchesTreeAllFormats(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		nDocs := 24 + r.Intn(72)
		docs := make([]jsonvalue.Value, nDocs)
		docLines := make([][]byte, nDocs)
		for i := range docs {
			docs[i] = jsongen.RandomObject(r, 3)
			docLines[i] = jsontext.Serialize(docs[i])
		}
		accesses := tapeConfSample(r, docs)

		for _, k := range allKinds() {
			for _, workers := range []int{1, 4} {
				treeCfg := DefaultLoaderConfig()
				treeCfg.Tile.TileSize = 16
				treeCfg.TreeIngest = true
				lt, _ := NewLoader(k, treeCfg)
				treeRel, err := lt.Load("conf", docLines, workers)
				if err != nil {
					t.Fatalf("trial %d %s w%d tree: %v", trial, k, workers, err)
				}
				truthSet := normRowMultiset(treeRel, accesses, workers)

				tapeCfg := treeCfg
				tapeCfg.TreeIngest = false
				lp, _ := NewLoader(k, tapeCfg)
				tapeRel, err := lp.Load("conf", docLines, workers)
				if err != nil {
					t.Fatalf("trial %d %s w%d tape: %v", trial, k, workers, err)
				}
				// Row and batch scans against the tree-path truth.
				verifyConformance(t, trial, string(k)+"-tape", tapeRel, accesses, truthSet)

				if k != KindTiles {
					continue
				}
				// The tile layouts must agree byte for byte: same tile
				// boundaries and the same JSONB raw storage per row.
				treeTiles := treeRel.(TileIntrospector).Tiles()
				tapeTiles := tapeRel.(TileIntrospector).Tiles()
				if len(treeTiles) != len(tapeTiles) {
					t.Fatalf("trial %d w%d: %d tree tiles vs %d tape tiles",
						trial, workers, len(treeTiles), len(tapeTiles))
				}
				for ti := range treeTiles {
					a, b := treeTiles[ti], tapeTiles[ti]
					if a.NumRows() != b.NumRows() {
						t.Fatalf("trial %d tile %d rows differ", trial, ti)
					}
					for i := 0; i < a.NumRows(); i++ {
						if !bytes.Equal(a.RawBytes(i), b.RawBytes(i)) {
							t.Fatalf("trial %d tile %d raw doc %d differs", trial, ti, i)
						}
					}
				}

				// Segment round trip of the tape-loaded relation.
				segPath := filepath.Join(t.TempDir(), "tape.seg")
				if err := WriteSegmentFile(segPath, tapeRel); err != nil {
					t.Fatalf("trial %d segment write: %v", trial, err)
				}
				srel, err := OpenSegmentFile("conf", segPath, bufpool.New(0), tapeCfg)
				if err != nil {
					t.Fatalf("trial %d segment open: %v", trial, err)
				}
				verifyConformance(t, trial, "tape-segment", srel, accesses, truthSet)
				if err := srel.Err(); err != nil {
					t.Fatalf("trial %d segment scan: %v", trial, err)
				}
				if err := srel.Close(); err != nil {
					t.Fatalf("trial %d segment close: %v", trial, err)
				}
			}
		}
	}
}

// TestTapeLimitFallback shrinks the tape limits so every loader hits
// LimitError and exercises its tree fallback; results must match the
// forced-tree reference exactly.
func TestTapeLimitFallback(t *testing.T) {
	docLines := lines(
		`{"id":1,"tags":["a","b","c","d","e"],"name":"x"}`,
		`{"id":2,"tags":[1,2,3],"name":"y"}`,
		`{"id":3,"nested":{"deep":{"list":[true,false,null,1,2,3,4]}}}`,
	)
	accesses := []Access{
		NewAccess(expr.TBigInt, "id"),
		NewAccess(expr.TText, "name"),
		NewAccess(expr.TText, "tags"),
	}

	treeCfg := DefaultLoaderConfig()
	treeCfg.TreeIngest = true

	restore := jsontape.SetLimitsForTesting(4, 1<<20)
	defer restore()
	for _, k := range allKinds() {
		lt, _ := NewLoader(k, treeCfg)
		treeRel, err := lt.Load("lim", docLines, 2)
		if err != nil {
			t.Fatalf("%s tree: %v", k, err)
		}
		truthSet := normRowMultiset(treeRel, accesses, 2)

		lp, _ := NewLoader(k, DefaultLoaderConfig())
		tapeRel, err := lp.Load("lim", docLines, 2)
		if err != nil {
			t.Fatalf("%s tape-with-limits: %v", k, err)
		}
		verifyConformance(t, 0, string(k)+"-limited", tapeRel, accesses, truthSet)
	}

	// ValidateDoc must also survive the limit through its fallback.
	if err := ValidateDoc(docLines[0]); err != nil {
		t.Fatalf("ValidateDoc under limits: %v", err)
	}
	if err := ValidateDoc([]byte(`{"bad":`)); err == nil {
		t.Fatal("ValidateDoc accepted malformed input")
	}
}

// TestParseErrorDeterminism locks the reported load error to the
// lowest failing document index — with its byte offset — regardless of
// format or worker count.
func TestParseErrorDeterminism(t *testing.T) {
	docLines := make([][]byte, 64)
	for i := range docLines {
		docLines[i] = []byte(`{"ok":true}`)
	}
	// Failures at 9, 17, and 41: index 9 must always win.
	docLines[41] = []byte(`{"x":}`)
	docLines[9] = []byte(`{"key": tru}`)
	docLines[17] = []byte(`[1,2,`)

	var want string
	for _, k := range allKinds() {
		for _, workers := range []int{1, 2, 8} {
			for _, treeIngest := range []bool{false, true} {
				cfg := DefaultLoaderConfig()
				cfg.TreeIngest = treeIngest
				l, _ := NewLoader(k, cfg)
				_, err := l.Load("bad", docLines, workers)
				if err == nil {
					t.Fatalf("%s w%d tree=%v: expected error", k, workers, treeIngest)
				}
				msg := err.Error()
				if !strings.Contains(msg, "document 9") {
					t.Fatalf("%s w%d tree=%v: error %q does not report document 9", k, workers, treeIngest, msg)
				}
				if !strings.Contains(msg, "offset") {
					t.Fatalf("%s w%d tree=%v: error %q has no byte offset", k, workers, treeIngest, msg)
				}
				if want == "" {
					want = msg
				} else if msg != want {
					t.Fatalf("%s w%d tree=%v: error %q differs from %q", k, workers, treeIngest, msg, want)
				}
			}
		}
	}
}
