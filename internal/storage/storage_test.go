package storage

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/expr"
	"repro/internal/keypath"
)

func lines(srcs ...string) [][]byte {
	out := make([][]byte, len(srcs))
	for i, s := range srcs {
		out[i] = []byte(s)
	}
	return out
}

func allKinds() []FormatKind {
	return []FormatKind{KindJSON, KindJSONB, KindSinew, KindTiles, KindShredded}
}

func loadAll(t *testing.T, data [][]byte) map[FormatKind]Relation {
	t.Helper()
	out := map[FormatKind]Relation{}
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 4
	cfg.Tile.DetectDates = false
	for _, k := range allKinds() {
		l, err := NewLoader(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := l.Load(string(k), data, 2)
		if err != nil {
			t.Fatalf("%s load: %v", k, err)
		}
		out[k] = rel
	}
	return out
}

// collectScan materializes a scan's output rows as strings, sorted.
func collectScan(rel Relation, accesses []Access, workers int) []string {
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	var rows []string
	rel.Scan(accesses, workers, func(w int, row []expr.Value) {
		var s string
		for i, v := range row {
			if i > 0 {
				s += "|"
			}
			s += v.String()
		}
		<-mu
		rows = append(rows, s)
		mu <- struct{}{}
	})
	sortStrings(rows)
	return rows
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

var twitterDocs = lines(
	`{"id":1, "create": "3/06", "text": "a", "user": {"id": 1}}`,
	`{"id":2, "create": "3/07", "text": "b", "user": {"id": 3}}`,
	`{"id":3, "create": "6/07", "text": "c", "user": {"id": 5}}`,
	`{"id":4, "create": "1/08", "text": "a", "user": {"id": 1}, "replies": 9}`,
	`{"id":5, "create": "1/10", "text": "b", "user": {"id": 7}, "replies": 3, "geo": {"lat": 1.9}}`,
	`{"id":6, "create": "1/11", "text": "c", "user": {"id": 1}, "replies": 2, "geo": null}`,
	`{"id":7, "create": "1/12", "text": "d", "user": {"id": 3}, "replies": 0, "geo": {"lat": 2.7}}`,
	`{"id":8, "create": "1/13", "text": "x", "user": {"id": 3}, "replies": 1, "geo": {"lat": 3.5}}`,
)

func TestAllFormatsAgreeOnFigure2(t *testing.T) {
	rels := loadAll(t, twitterDocs)
	accesses := []Access{
		NewAccess(expr.TBigInt, "id"),
		NewAccess(expr.TText, "create"),
		NewAccess(expr.TBigInt, "user", "id"),
		NewAccess(expr.TBigInt, "replies"),
		NewAccess(expr.TFloat, "geo", "lat"),
	}
	var want []string
	for kind, rel := range rels {
		if rel.NumRows() != 8 {
			t.Fatalf("%s: %d rows", kind, rel.NumRows())
		}
		got := collectScan(rel, accesses, 1)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s scan differs:\n got %v\nwant %v", kind, got, want)
		}
	}
	// Spot-check one row against ground truth.
	found := false
	for _, r := range want {
		if r == "5|1/10|7|3|1.9" {
			found = true
		}
	}
	if !found {
		t.Errorf("row for id=5 missing: %v", want)
	}
}

func TestAllFormatsAgreeParallel(t *testing.T) {
	rels := loadAll(t, twitterDocs)
	accesses := []Access{NewAccess(expr.TBigInt, "id")}
	want := collectScan(rels[KindJSON], accesses, 1)
	for kind, rel := range rels {
		for _, workers := range []int{1, 2, 4} {
			got := collectScan(rel, accesses, workers)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s workers=%d differs", kind, workers)
			}
		}
	}
}

func TestHeterogeneousTypesAcrossFormats(t *testing.T) {
	data := lines(
		`{"v":1}`, `{"v":2}`, `{"v":3}`, `{"v":2.5}`,
		`{"v":"txt"}`, `{"v":null}`, `{"w":1}`,
	)
	rels := loadAll(t, data)
	accesses := []Access{
		NewAccess(expr.TFloat, "v"),
		NewAccess(expr.TText, "v"),
	}
	var want []string
	for kind, rel := range rels {
		got := collectScan(rel, accesses, 1)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s differs:\n got %v\nwant %v", kind, got, want)
		}
	}
	// Outlier float must be readable everywhere.
	has := false
	for _, r := range want {
		if r == "2.5|2.5" {
			has = true
		}
	}
	if !has {
		t.Errorf("outlier float lost: %v", want)
	}
}

func TestNumericStringsServeTypedAccess(t *testing.T) {
	data := lines(
		`{"price":"19.99"}`, `{"price":"5.00"}`, `{"price":"100.10"}`,
	)
	rels := loadAll(t, data)
	accesses := []Access{
		NewAccess(expr.TFloat, "price"),
		NewAccess(expr.TText, "price"),
	}
	for kind, rel := range rels {
		rows := collectScan(rel, accesses, 1)
		if rows[0] != "100.1|100.10" {
			t.Errorf("%s: rows = %v", kind, rows)
		}
	}
}

func TestDateAccessAcrossFormats(t *testing.T) {
	data := lines(
		`{"d":"2020-06-01 10:00:00"}`,
		`{"d":"2020-06-02 11:00:00"}`,
		`{"d":"2020-06-03 12:00:00"}`,
	)
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 4
	accesses := []Access{NewAccess(expr.TTimestamp, "d")}
	var want []string
	for _, k := range allKinds() {
		l, _ := NewLoader(k, cfg)
		rel, err := l.Load(string(k), data, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := collectScan(rel, accesses, 1)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s timestamp scan differs: %v vs %v", k, got, want)
		}
	}
	if want[0] != "2020-06-01 10:00:00" {
		t.Errorf("timestamp = %v", want)
	}
}

func TestTimestampColumnNeverServesText(t *testing.T) {
	// Date detection stores timestamps; a ->> text access must return
	// the exact original string, via the binary JSON (§4.9).
	data := lines(
		`{"d":"2020-06-01T10:00:00Z"}`,
		`{"d":"2020-06-02T11:00:00Z"}`,
	)
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 4
	l, _ := NewLoader(KindTiles, cfg)
	rel, err := l.Load("t", data, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := collectScan(rel, []Access{NewAccess(expr.TText, "d")}, 1)
	if rows[0] != "2020-06-01T10:00:00Z" {
		t.Errorf("text access returned %q, want the original string", rows[0])
	}
}

func TestTileSkipping(t *testing.T) {
	// Two structure clusters; a null-rejecting access to a path that
	// exists only in one cluster must not change results, only work.
	var data [][]byte
	for i := 0; i < 8; i++ {
		data = append(data, []byte(fmt.Sprintf(`{"a":%d}`, i)))
	}
	for i := 0; i < 8; i++ {
		data = append(data, []byte(fmt.Sprintf(`{"b":%d}`, i)))
	}
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 8
	cfg.Tile.PartitionSize = 1
	cfg.Reorder = false

	for _, skip := range []bool{true, false} {
		cfg.SkipTiles = skip
		l, _ := NewLoader(KindTiles, cfg)
		rel, err := l.Load("t", data, 1)
		if err != nil {
			t.Fatal(err)
		}
		acc := []Access{NewAccess(expr.TBigInt, "b")}
		acc[0].NullRejecting = true
		rows := collectScan(rel, acc, 1)
		// With skipping the first tile is not scanned at all; without,
		// its rows surface as NULLs. Both are correct *given that* a
		// null-rejecting consumer drops NULLs; emulate it:
		nonNull := 0
		for _, r := range rows {
			if r != "NULL" {
				nonNull++
			}
		}
		if nonNull != 8 {
			t.Errorf("skip=%v: %d non-null rows, want 8", skip, nonNull)
		}
		if skip && len(rows) != 8 {
			t.Errorf("skipping did not skip: %d rows emitted", len(rows))
		}
		if !skip && len(rows) != 16 {
			t.Errorf("no-skip emitted %d rows", len(rows))
		}
	}
}

func TestSinewGlobalExtraction(t *testing.T) {
	// "a" in 100%, "b" in 75%, "c" in 25%: threshold 60% extracts a, b.
	data := lines(
		`{"a":1,"b":1}`, `{"a":2,"b":2}`, `{"a":3,"b":3,"c":3}`, `{"a":4}`,
	)
	cfg := DefaultLoaderConfig()
	l, _ := NewLoader(KindSinew, cfg)
	rel, err := l.Load("s", data, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := rel.(*sinew)
	got := s.ExtractedPaths()
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("extracted %v", got)
	}
	// "c" still accessible via fallback.
	rows := collectScan(rel, []Access{NewAccess(expr.TBigInt, "c")}, 1)
	if !reflect.DeepEqual(rows, []string{"3", "NULL", "NULL", "NULL"}) {
		t.Errorf("c rows = %v", rows)
	}
}

func TestShreddedColumnExplosionAndReassembly(t *testing.T) {
	data := lines(
		`{"id":1,"tags":[{"t":"a"},{"t":"b"}]}`,
		`{"id":2,"tags":[{"t":"c"}]}`,
		`{"id":3,"nested":{"x":{"y":5}}}`,
	)
	cfg := DefaultLoaderConfig()
	l, _ := NewLoader(KindShredded, cfg)
	rel, err := l.Load("sh", data, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh := rel.(*shredded)
	// Columns: id, tags[0]t, tags[1]t, nested.x.y = 4.
	if sh.NumColumns() != 4 {
		t.Errorf("%d columns", sh.NumColumns())
	}
	// Deep access works.
	rows := collectScan(rel, []Access{NewAccess(expr.TBigInt, "nested", "x", "y")}, 1)
	if !reflect.DeepEqual(rows, []string{"5", "NULL", "NULL"}) {
		t.Errorf("nested rows = %v", rows)
	}
	// Reassembly rebuilds the document.
	doc := sh.Reassemble(0)
	if got := doc.Get("id"); got.IntVal() != 1 {
		t.Errorf("reassembled id = %#v", got)
	}
	tags := doc.Get("tags")
	if tags.Len() != 2 || tags.Elem(1).Get("t").StringVal() != "b" {
		t.Errorf("reassembled tags = %#v", tags)
	}
}

func TestTilesStatsPopulated(t *testing.T) {
	rels := loadAll(t, twitterDocs)
	st := rels[KindTiles].Stats()
	if st == nil {
		t.Fatal("tiles relation has no stats")
	}
	if st.RowCount() != 8 {
		t.Errorf("row count %d", st.RowCount())
	}
	if got := st.PathCount("replies"); got != 5 {
		t.Errorf("PathCount(replies) = %d, want 5", got)
	}
	if got := st.PathCount("id"); got != 8 {
		t.Errorf("PathCount(id) = %d", got)
	}
	// Other formats keep none.
	for _, k := range []FormatKind{KindJSON, KindJSONB, KindSinew, KindShredded} {
		if rels[k].Stats() != nil {
			t.Errorf("%s unexpectedly has stats", k)
		}
	}
}

func TestJSONAccessOperator(t *testing.T) {
	// -> (TJSON) must return documents on every format.
	data := lines(`{"user":{"id":7,"name":"bo"}}`)
	rels := loadAll(t, data)
	for kind, rel := range rels {
		var got string
		rel.Scan([]Access{NewAccess(expr.TJSON, "user")}, 1, func(w int, row []expr.Value) {
			got = row[0].String()
		})
		if got != `{"id":7,"name":"bo"}` {
			t.Errorf("%s -> returned %s", kind, got)
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	data := lines(`{"a":1}`, `{bad`)
	for _, k := range allKinds() {
		l, _ := NewLoader(k, DefaultLoaderConfig())
		if _, err := l.Load("x", data, 2); err == nil {
			t.Errorf("%s accepted malformed input", k)
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	rels := loadAll(t, twitterDocs)
	for kind, rel := range rels {
		if rel.SizeBytes() <= 0 {
			t.Errorf("%s SizeBytes = %d", kind, rel.SizeBytes())
		}
	}
	tr := rels[KindTiles].(*tilesRelation)
	if tr.ColumnSizeBytes() <= 0 || tr.RawSizeBytes() <= 0 {
		t.Error("tiles size accounting broken")
	}
	if tr.CompressedColumnSizeBytes() <= 0 {
		t.Error("compressed size zero")
	}
}

func TestArraySlotAccess(t *testing.T) {
	data := lines(
		`{"tags":["x","y","z"]}`,
		`{"tags":["p"]}`,
	)
	rels := loadAll(t, data)
	acc := []Access{
		NewAccessPath(expr.TText, keypath.NewPath("tags").Slot(0)),
		NewAccessPath(expr.TText, keypath.NewPath("tags").Slot(2)),
	}
	want := []string{"p|NULL", "x|z"}
	for kind, rel := range rels {
		got := collectScan(rel, acc, 1)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: %v", kind, got)
		}
	}
}
