package storage

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/expr"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/stats"
	"repro/internal/tile"
)

// tilesRelation is the paper's contribution: documents stored as JSON
// tiles with local column extraction, partition reordering during
// load, relation-level statistics, per-tile access resolution, and
// tile skipping.
type tilesRelation struct {
	name    string
	cfg     LoaderConfig
	tiles   []*tile.Tile
	numRows int
	stats   *stats.TableStats
	metrics *tile.Metrics
}

var (
	_ StatsScanner     = (*tilesRelation)(nil)
	_ TileIntrospector = (*tilesRelation)(nil)
)

type tilesLoader struct {
	cfg LoaderConfig
}

// NewTilesLoader returns a Tiles loader that records build metrics
// (Figure 16's insertion breakdown) into m, overriding cfg.Metrics.
func NewTilesLoader(cfg LoaderConfig, m *tile.Metrics) Loader {
	if m != nil {
		cfg.Metrics = m
	}
	return tilesLoader{cfg: cfg}
}

func (l tilesLoader) Load(name string, lines [][]byte, workers int) (Relation, error) {
	return BuildTilesFromLines(name, lines, l.cfg, workers, l.cfg.Metrics)
}

// BuildTiles constructs a Tiles relation from parsed documents.
// Partitions are fully independent (§3.2: "Each thread is dedicated to
// a disjoint subset of the data"), so they are processed in parallel.
func BuildTiles(name string, docs []jsonvalue.Value, cfg LoaderConfig, workers int, metrics *tile.Metrics) Relation {
	if metrics == nil {
		metrics = cfg.Metrics
	}
	tcfg := cfg.Tile
	if tcfg.TileSize <= 0 {
		tcfg = tile.DefaultConfig()
	}
	partDocs := tcfg.TileSize * tcfg.PartitionSize
	if partDocs <= 0 {
		partDocs = tcfg.TileSize
	}
	numParts := (len(docs) + partDocs - 1) / partDocs

	r := &tilesRelation{name: name, cfg: cfg, numRows: len(docs),
		stats: stats.New(0, 0), metrics: metrics}
	partTiles := make([][]*tile.Tile, numParts)

	// One morsel per partition: a partition is already thousands of
	// documents, so unit granularity gives the queue its work stealing
	// without splitting the reorder/extraction scope.
	morselRangeSized(numParts, workers, 1, func(w, lo, hi int) {
		builder := tile.NewBuilder(tcfg, metrics)
		for p := lo; p < hi; p++ {
			dlo := p * partDocs
			dhi := dlo + partDocs
			if dhi > len(docs) {
				dhi = len(docs)
			}
			part := docs[dlo:dhi]
			if cfg.Reorder && tcfg.PartitionSize > 1 {
				reorder.Partition(part, tcfg, metrics)
			}
			var tiles []*tile.Tile
			for tlo := 0; tlo < len(part); tlo += tcfg.TileSize {
				thi := tlo + tcfg.TileSize
				if thi > len(part) {
					thi = len(part)
				}
				tiles = append(tiles, builder.Build(part[tlo:thi]))
			}
			partTiles[p] = tiles
		}
	})
	for _, pt := range partTiles {
		for _, t := range pt {
			r.tiles = append(r.tiles, t)
			r.stats.AddTile(t)
		}
	}
	return r
}

func (r *tilesRelation) Name() string             { return r.name }
func (r *tilesRelation) NumRows() int             { return r.numRows }
func (r *tilesRelation) Stats() *stats.TableStats { return r.stats }

// Tiles exposes the underlying tiles (tests, size accounting, array
// extraction).
func (r *tilesRelation) Tiles() []*tile.Tile { return r.tiles }

// NumTiles implements TileCounter.
func (r *tilesRelation) NumTiles() int { return len(r.tiles) }

func (r *tilesRelation) SizeBytes() int {
	total := 0
	for _, t := range r.tiles {
		total += t.RawSizeBytes() + t.ColumnSizeBytes()
	}
	return total
}

// ColumnSizeBytes returns only the materialized-column overhead (the
// "+Tiles" column of Table 6).
func (r *tilesRelation) ColumnSizeBytes() int {
	total := 0
	for _, t := range r.tiles {
		total += t.ColumnSizeBytes()
	}
	return total
}

// CompressedColumnSizeBytes returns the LZ4-compressed column bytes
// ("+LZ4-Tiles", Table 6).
func (r *tilesRelation) CompressedColumnSizeBytes() int {
	total := 0
	for _, t := range r.tiles {
		total += t.ColumnCompressedSizeBytes()
	}
	return total
}

// UpdateRow replaces the document at global row index i in place
// (§4.7) and reports whether the tile now wants recomputation.
func (r *tilesRelation) UpdateRow(i int, doc jsonvalue.Value) (needsRecompute bool, err error) {
	if i < 0 || i >= r.numRows {
		return false, fmt.Errorf("storage: row %d out of range (%d rows)", i, r.numRows)
	}
	for _, t := range r.tiles {
		if i < t.NumRows() {
			t.Update(i, doc, nil, r.cfg.Tile.MaxArraySlots)
			return t.NeedsRecompute(), nil
		}
		i -= t.NumRows()
	}
	return false, fmt.Errorf("storage: row index beyond tiles")
}

// RecomputeTiles re-materializes every tile whose update-introduced
// outliers exceed the §4.7 threshold, re-mining the (changed) frequent
// structures. Relation statistics are rebuilt from all tiles. It
// returns the number of tiles recomputed.
func (r *tilesRelation) RecomputeTiles() int {
	tcfg := r.cfg.Tile
	if tcfg.TileSize <= 0 {
		tcfg = tile.DefaultConfig()
	}
	builder := tile.NewBuilder(tcfg, r.metrics)
	recomputed := 0
	for i, t := range r.tiles {
		if !t.NeedsRecompute() {
			continue
		}
		r.tiles[i] = builder.Build(t.Documents())
		recomputed++
	}
	if recomputed > 0 {
		r.stats = stats.New(0, 0)
		for _, t := range r.tiles {
			r.stats.AddTile(t)
		}
	}
	return recomputed
}

// RawSizeBytes returns the binary JSON bytes.
func (r *tilesRelation) RawSizeBytes() int {
	total := 0
	for _, t := range r.tiles {
		total += t.RawSizeBytes()
	}
	return total
}

func (r *tilesRelation) Scan(accesses []Access, workers int, emit EmitFunc) {
	r.ScanWithStats(context.Background(), accesses, workers, emit, nil)
}

// scanCounters batches per-worker observability counts so the per-row
// path touches only local integers; they are flushed with a handful of
// atomic adds per worker chunk.
type scanCounters struct {
	tilesScanned, tilesSkipped      int64
	rows, hits, fallbacks, castErrs int64
	// morsels processed (flushed to per-scan stats only; the global
	// morsels_dispatched counter is maintained by the queue runner).
	morsels int64
	// Batch path only.
	batches, rowsVec, rowsFallback int64
	// Segment-backed scans only: block I/O and buffer-pool traffic.
	blocksRead, blockBytes, poolHits, poolMisses int64
	// Store-backed scans only: ranged store requests (retry attempts
	// included), bytes those requests returned, block fetches saved by
	// coalescing, pool hits on readahead-resident blocks, and transient
	// retries. The matching process-wide counters are incremented at
	// the store layer, so flush forwards these to the per-scan stats
	// only — adding them globally here would double-count.
	rangeReads, rangeBytes, coalesced, prefetchHits, retries int64
	// tenant attributes the scan's buffer-pool charges and byte
	// accounting to the query's tenant ("" for library calls).
	tenant string
}

func (c *scanCounters) flush(st *obs.ScanStats) {
	obs.TilesScanned.Add(c.tilesScanned)
	obs.TilesSkipped.Add(c.tilesSkipped)
	obs.RowsScanned.Add(c.rows)
	obs.ColumnHits.Add(c.hits)
	obs.JSONBFallbacks.Add(c.fallbacks)
	obs.CastErrors.Add(c.castErrs)
	obs.BatchesEmitted.Add(c.batches)
	obs.RowsVectorized.Add(c.rowsVec)
	obs.RowsBatchFallback.Add(c.rowsFallback)
	obs.SegmentBlocksRead.Add(c.blocksRead)
	obs.SegmentBytesRead.Add(c.blockBytes)
	obs.BufpoolHits.Add(c.poolHits)
	obs.BufpoolMisses.Add(c.poolMisses)
	if c.tenant != "" && c.blockBytes > 0 {
		obs.Tenants.Get(c.tenant).BytesScanned.Add(c.blockBytes)
	}
	if st == nil {
		return
	}
	st.Morsels.Add(c.morsels)
	st.TilesScanned.Add(c.tilesScanned)
	st.TilesSkipped.Add(c.tilesSkipped)
	st.RowsScanned.Add(c.rows)
	st.ColumnHits.Add(c.hits)
	st.JSONBFallbacks.Add(c.fallbacks)
	st.CastErrors.Add(c.castErrs)
	st.Batches.Add(c.batches)
	st.RowsVectorized.Add(c.rowsVec)
	st.RowsFallback.Add(c.rowsFallback)
	st.BlocksRead.Add(c.blocksRead)
	st.BlockBytes.Add(c.blockBytes)
	st.PoolHits.Add(c.poolHits)
	st.PoolMisses.Add(c.poolMisses)
	st.StoreRangeReads.Add(c.rangeReads)
	st.StoreBytesRead.Add(c.rangeBytes)
	st.StoreCoalesced.Add(c.coalesced)
	st.StorePrefetchHits.Add(c.prefetchHits)
	st.StoreRetries.Add(c.retries)
}

// scanScratch holds a worker's reusable row buffer and per-tile
// resolver slice, pooled across scans so repeated queries don't
// allocate per worker per scan.
type scanScratch struct {
	row []expr.Value
	res []colResolver
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

func getScanScratch(n int) *scanScratch {
	s := scanScratchPool.Get().(*scanScratch)
	if cap(s.row) < n {
		s.row = make([]expr.Value, n)
		s.res = make([]colResolver, n)
	}
	s.row = s.row[:n]
	s.res = s.res[:n]
	return s
}

func putScanScratch(s *scanScratch) {
	for i := range s.row {
		s.row[i] = expr.Value{} // drop Doc references
	}
	scanScratchPool.Put(s)
}

// ScanWithStats implements StatsScanner via the shared scan core: the
// per-tile skip decisions (§4.8) and the column-hit vs
// binary-JSON-fallback split (§4.5/§5) are the key observability
// signals of the format.
func (r *tilesRelation) ScanWithStats(ctx context.Context, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats) {
	scanRowsCore(ctx, r, accesses, workers, emit, st)
}

// scanSource implementation: in-memory tiles are their own scan
// views — no lazy I/O, no per-scan state.
func (r *tilesRelation) numScanTiles() int                             { return len(r.tiles) }
func (r *tilesRelation) openScanTile(ti int, _ *scanCounters) scanTile { return r.tiles[ti] }
func (r *tilesRelation) scanConfig() scanConfig {
	return scanConfig{skipTiles: r.cfg.SkipTiles, maxSlots: r.maxSlots(), morselRows: r.cfg.MorselRows}
}

func (r *tilesRelation) maxSlots() int {
	if ms := r.cfg.Tile.MaxArraySlots; ms > 0 {
		return ms
	}
	return keypath.DefaultMaxArraySlots
}

// cappedPrefix reports whether the path indexes an array slot at or
// beyond the collection cap — such paths can exist in documents while
// being invisible to the tile header, so header absence proves
// nothing. The returned prefix (the array itself) is what the header
// can answer for.
func cappedPrefix(p keypath.Path, maxSlots int) (string, bool) {
	for i, seg := range p.Segs {
		if seg.IsIndex && seg.Index >= maxSlots {
			return keypath.Path{Segs: p.Segs[:i]}.Encode(), true
		}
	}
	return "", false
}
