package storage

import (
	"strconv"

	"repro/internal/column"
	"repro/internal/dates"
	"repro/internal/expr"
	"repro/internal/keypath"
)

// Access resolution (§4.5): computing how to serve an access is done
// once per tile (or once per relation for global schemas), cached, and
// reused for every tuple.

type resolveMode uint8

const (
	// modeNullAll: the path provably never occurs — every access is
	// NULL without touching any data (and the tile may be skippable).
	modeNullAll resolveMode = iota
	// modeFallback: always traverse the binary JSON document.
	modeFallback
	// modeColumn: serve from the materialized column; NULL entries
	// either mean NULL or divert to the document (type outliers).
	modeColumn
)

type colResolver struct {
	mode           resolveMode
	col            *column.Column
	convert        func(c *column.Column, i int) expr.Value
	fallbackOnNull bool
}

// read returns the value for row i, or needDoc=true when the caller
// must perform a document access instead. castErr reports a stored
// non-null value the requested cast could not convert (e.g. a text
// column accessed as ::BigInt with a non-numeric string).
func (r colResolver) read(i int) (v expr.Value, needDoc, castErr bool) {
	switch r.mode {
	case modeNullAll:
		return expr.NullValue(), false, false
	case modeFallback:
		return expr.Value{}, true, false
	default:
		if r.col.IsNull(i) {
			if r.fallbackOnNull {
				return expr.Value{}, true, false
			}
			return expr.NullValue(), false, false
		}
		v = r.convert(r.col, i)
		return v, false, v.Null
	}
}

// resolveColumn decides how a column with the given mined and storage
// types serves a desired SQL type, implementing the matching rules of
// §4.5: exact matches read directly, numeric pairs use a cheap cast,
// Text requests render — except from Timestamp columns, which must
// never serve Text (§4.9; the original string is not reconstructible),
// and JSON requests always take the document.
func resolveColumn(col *column.Column, mined, storage keypath.ValueType, hasOutliers bool, want expr.SQLType) colResolver {
	r := colResolver{mode: modeColumn, col: col, fallbackOnNull: hasOutliers}
	switch storage {
	case keypath.TypeBigInt:
		switch want {
		case expr.TBigInt:
			r.convert = func(c *column.Column, i int) expr.Value { return expr.IntValue(c.Int(i)) }
		case expr.TFloat:
			r.convert = func(c *column.Column, i int) expr.Value { return expr.FloatValue(float64(c.Int(i))) }
		case expr.TText:
			r.convert = func(c *column.Column, i int) expr.Value {
				return expr.TextValue(strconv.FormatInt(c.Int(i), 10))
			}
		case expr.TBool:
			r.convert = func(c *column.Column, i int) expr.Value { return expr.BoolValue(c.Int(i) != 0) }
		default:
			return colResolver{mode: modeFallback}
		}
	case keypath.TypeDouble:
		switch want {
		case expr.TFloat:
			r.convert = func(c *column.Column, i int) expr.Value { return expr.FloatValue(c.Float(i)) }
		case expr.TBigInt:
			r.convert = func(c *column.Column, i int) expr.Value { return expr.IntValue(int64(c.Float(i))) }
		case expr.TText:
			r.convert = func(c *column.Column, i int) expr.Value {
				return expr.TextValue(strconv.FormatFloat(c.Float(i), 'g', -1, 64))
			}
		default:
			return colResolver{mode: modeFallback}
		}
	case keypath.TypeString:
		switch want {
		case expr.TText:
			r.convert = func(c *column.Column, i int) expr.Value { return expr.TextValue(c.String(i)) }
		case expr.TBigInt:
			r.convert = func(c *column.Column, i int) expr.Value { return parseIntText(c.String(i)) }
		case expr.TFloat:
			r.convert = func(c *column.Column, i int) expr.Value {
				if f, err := strconv.ParseFloat(c.String(i), 64); err == nil {
					return expr.FloatValue(f)
				}
				return expr.NullValue()
			}
		case expr.TTimestamp:
			r.convert = func(c *column.Column, i int) expr.Value {
				if m, ok := dates.Parse(c.String(i)); ok {
					return expr.TimestampValue(m)
				}
				return expr.NullValue()
			}
		case expr.TBool:
			r.convert = func(c *column.Column, i int) expr.Value {
				return expr.CastValue(expr.TextValue(c.String(i)), expr.TBool)
			}
		default:
			return colResolver{mode: modeFallback}
		}
	case keypath.TypeBool:
		switch want {
		case expr.TBool:
			r.convert = func(c *column.Column, i int) expr.Value { return expr.BoolValue(c.Bool(i)) }
		case expr.TText:
			r.convert = func(c *column.Column, i int) expr.Value {
				if c.Bool(i) {
					return expr.TextValue("true")
				}
				return expr.TextValue("false")
			}
		case expr.TBigInt:
			r.convert = func(c *column.Column, i int) expr.Value {
				if c.Bool(i) {
					return expr.IntValue(1)
				}
				return expr.IntValue(0)
			}
		default:
			return colResolver{mode: modeFallback}
		}
	case keypath.TypeTimestamp:
		switch want {
		case expr.TTimestamp:
			r.convert = func(c *column.Column, i int) expr.Value { return expr.TimestampValue(c.Int(i)) }
		default:
			// Includes TText: extracted timestamps cannot recreate the
			// exact input string — always take the document (§4.9).
			return colResolver{mode: modeFallback}
		}
	default:
		return colResolver{mode: modeFallback}
	}
	_ = mined
	return r
}
