package storage

import (
	"context"
	"errors"
	"math"
	"sort"

	"repro/internal/column"
	"repro/internal/expr"
	"repro/internal/jsonb"
	"repro/internal/jsontape"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/obs"
	"repro/internal/stats"
)

// sinew implements the Sinew [57] baseline: one global schema,
// extracting every key path whose table-wide frequency reaches the
// threshold (the original paper's 60 %). There is no locality, no
// reordering, no date detection, and no per-key statistics — the
// paper's §6 configuration. Values whose type differs from the
// column's (or whose key fell under the threshold) are answered from
// the per-document binary JSON.
type sinew struct {
	name    string
	numRows int
	cols    []sinewColumn
	byPath  map[string]int
	raw     [][]byte
}

type sinewColumn struct {
	path            string
	minedType       keypath.ValueType
	col             *column.Column
	hasTypeOutliers bool
}

type sinewLoader struct{ cfg LoaderConfig }

func (l sinewLoader) Load(name string, lines [][]byte, workers int) (Relation, error) {
	if !l.cfg.TreeIngest {
		r, err := l.loadTapes(name, lines, workers)
		if !errors.Is(err, errTapeLimit) {
			return r, err
		}
		// Some document exceeds the tape limits: retry on the tree path.
	}
	docs, err := parseAll(lines, workers)
	if err != nil {
		return nil, err
	}
	obs.IngestDocsTreeFallback.Add(int64(len(docs)))
	threshold := l.cfg.SinewThreshold
	if threshold <= 0 {
		threshold = 0.6
	}
	maxSlots := l.cfg.Tile.MaxArraySlots

	// Global frequency pass. Deliberately single-threaded: the paper
	// attributes Sinew's loading drop to "the single-threaded
	// frequency algorithm and the materialization of the detected
	// columns" (§6.8).
	freq := map[keypath.Item]int{}
	for _, d := range docs {
		keypath.Collect(d, maxSlots, func(p keypath.Path, t keypath.ValueType, v jsonvalue.Value) {
			switch t {
			case keypath.TypeBool, keypath.TypeBigInt, keypath.TypeDouble, keypath.TypeString:
				freq[keypath.Item{Path: p.Encode(), Type: t}]++
			}
		})
	}
	need := int(math.Ceil(threshold * float64(len(docs))))
	if need < 1 {
		need = 1
	}
	// Pick extracted items; when several types of one path qualify
	// (possible only with thresholds < 50 %) keep the most frequent.
	bestForPath := map[string]keypath.Item{}
	for it, c := range freq {
		if c < need {
			continue
		}
		if prev, ok := bestForPath[it.Path]; !ok || freq[prev] < c ||
			(freq[prev] == c && it.Type < prev.Type) {
			bestForPath[it.Path] = it
		}
	}
	var items []keypath.Item
	for _, it := range bestForPath {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Path < items[j].Path })

	r := &sinew{name: name, numRows: len(docs), byPath: map[string]int{}}
	for _, it := range items {
		r.byPath[it.Path] = len(r.cols)
		r.cols = append(r.cols, sinewColumn{
			path:      it.Path,
			minedType: it.Type,
			col:       column.New(it.Type),
		})
	}

	// Materialize (single pass over the documents, all columns at once).
	for _, d := range docs {
		leaves := map[string]jsonvalue.Value{}
		types := map[string]keypath.ValueType{}
		keypath.Collect(d, maxSlots, func(p keypath.Path, t keypath.ValueType, v jsonvalue.Value) {
			enc := p.Encode()
			leaves[enc] = v
			types[enc] = t
		})
		for ci := range r.cols {
			sc := &r.cols[ci]
			v, present := leaves[sc.path]
			if !present || types[sc.path] != sc.minedType {
				sc.col.AppendNull()
				if present && types[sc.path] != keypath.TypeNull {
					sc.hasTypeOutliers = true
				}
				continue
			}
			switch sc.minedType {
			case keypath.TypeBigInt:
				sc.col.AppendInt(v.IntVal())
			case keypath.TypeDouble:
				sc.col.AppendFloat(v.FloatVal())
			case keypath.TypeBool:
				sc.col.AppendBool(v.BoolVal())
			case keypath.TypeString:
				sc.col.AppendString(v.StringVal())
			}
		}
	}

	// Binary JSON fallback storage (parallel, like the JSONB format).
	r.raw = make([][]byte, len(docs))
	morselRange(len(docs), workers, func(w, lo, hi int) {
		var enc jsonb.Encoder
		for i := lo; i < hi; i++ {
			r.raw[i] = enc.Encode(docs[i])
		}
	})
	return r, nil
}

func (r *sinew) Name() string             { return r.name }
func (r *sinew) NumRows() int             { return r.numRows }
func (r *sinew) Stats() *stats.TableStats { return nil }

func (r *sinew) SizeBytes() int {
	total := 0
	for _, c := range r.cols {
		total += c.col.SizeBytes()
	}
	for _, d := range r.raw {
		total += len(d)
	}
	return total
}

// ColumnSizeBytes is the extraction overhead beyond the binary JSON.
func (r *sinew) ColumnSizeBytes() int {
	total := 0
	for _, c := range r.cols {
		total += c.col.SizeBytes()
	}
	return total
}

// ExtractedPaths lists the globally extracted paths (tests).
func (r *sinew) ExtractedPaths() []string {
	out := make([]string, len(r.cols))
	for i, c := range r.cols {
		out[i] = c.path
	}
	return out
}

func (r *sinew) Scan(accesses []Access, workers int, emit EmitFunc) {
	r.ScanWithStats(context.Background(), accesses, workers, emit, nil)
}

// ScanWithStats implements StatsScanner; Sinew's global schema has no
// tiles, but the column-hit vs fallback split is still the interesting
// signal (accesses missing from the single schema always fall back).
func (r *sinew) ScanWithStats(ctx context.Context, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats) {
	// Resolve each access once against the single global schema.
	res := make([]colResolver, len(accesses))
	for i, a := range accesses {
		if ci, ok := r.byPath[a.PathEnc]; ok {
			res[i] = resolveColumn(r.cols[ci].col, r.cols[ci].minedType, r.cols[ci].minedType,
				r.cols[ci].hasTypeOutliers, a.Type)
		} else {
			res[i] = colResolver{mode: modeFallback}
		}
	}
	morselRangeCtx(ctx, r.numRows, workers, func(w, lo, hi int) {
		row := make([]expr.Value, len(accesses))
		cnt := scanCounters{morsels: 1}
		defer cnt.flush(st)
		cnt.rows = int64(hi - lo)
		for i := lo; i < hi; i++ {
			var d jsonb.Doc
			haveDoc := false
			for ai := range accesses {
				v, needDoc, castErr := res[ai].read(i)
				if needDoc {
					cnt.fallbacks++
					if !haveDoc {
						d = jsonb.NewDoc(r.raw[i])
						haveDoc = true
					}
					v = docAccess(d, accesses[ai].Path, accesses[ai].Type)
				} else if res[ai].mode == modeColumn {
					cnt.hits++
				}
				if castErr {
					cnt.castErrs++
				}
				row[ai] = v
			}
			emit(w, row)
		}
	})
}

// loadTapes is the tape-driven Sinew load: the global frequency pass
// and the column materialization walk tapes (the deliberately
// single-threaded part matching the paper), and the binary JSON
// fallback encodes tapes in parallel. The result is identical to the
// tree path column for column and byte for byte.
func (l sinewLoader) loadTapes(name string, lines [][]byte, workers int) (Relation, error) {
	tapes, err := parseAllTapes(lines, workers)
	if err != nil {
		return nil, err
	}
	obs.IngestDocsTape.Add(int64(len(tapes)))
	threshold := l.cfg.SinewThreshold
	if threshold <= 0 {
		threshold = 0.6
	}
	maxSlots := l.cfg.Tile.MaxArraySlots

	// Global frequency pass over a shared dictionary: AddBytes avoids
	// the per-leaf path allocation of the map-of-Item tree pass.
	dict := keypath.NewDict()
	var counts []int
	for _, d := range tapes {
		keypath.CollectTape(d, maxSlots, func(pathEnc []byte, t keypath.ValueType, n jsontape.Node) {
			switch t {
			case keypath.TypeBool, keypath.TypeBigInt, keypath.TypeDouble, keypath.TypeString:
				id := dict.AddBytes(pathEnc, t)
				for int(id) >= len(counts) {
					counts = append(counts, 0)
				}
				counts[id]++
			}
		})
	}
	need := int(math.Ceil(threshold * float64(len(tapes))))
	if need < 1 {
		need = 1
	}
	bestForPath := map[string]keypath.Item{}
	freqOf := func(it keypath.Item) int {
		if id, ok := dict.Get(it.Path, it.Type); ok {
			return counts[id]
		}
		return 0
	}
	for id := int32(0); id < int32(dict.Len()); id++ {
		c := counts[id]
		if c < need {
			continue
		}
		it := dict.Item(id)
		if prev, ok := bestForPath[it.Path]; !ok || freqOf(prev) < c ||
			(freqOf(prev) == c && it.Type < prev.Type) {
			bestForPath[it.Path] = it
		}
	}
	var items []keypath.Item
	for _, it := range bestForPath {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Path < items[j].Path })

	r := &sinew{name: name, numRows: len(tapes), byPath: map[string]int{}}
	for _, it := range items {
		r.byPath[it.Path] = len(r.cols)
		r.cols = append(r.cols, sinewColumn{
			path:      it.Path,
			minedType: it.Type,
			col:       column.New(it.Type),
		})
	}

	// Materialize. The tree path gathers a per-document leaves map with
	// last-occurrence-wins; here a generation-stamped per-column slot
	// does the same without the map: the walk overwrites the slot on
	// every occurrence of the column's path, whatever the type.
	nCols := len(r.cols)
	stamp := make([]int, nCols)
	for i := range stamp {
		stamp[i] = -1
	}
	lastType := make([]keypath.ValueType, nCols)
	lastNode := make([]jsontape.Node, nCols)
	for di, d := range tapes {
		keypath.CollectTape(d, maxSlots, func(pathEnc []byte, t keypath.ValueType, n jsontape.Node) {
			ci, ok := r.byPath[string(pathEnc)]
			if !ok {
				return
			}
			stamp[ci] = di
			lastType[ci] = t
			lastNode[ci] = n
		})
		for ci := range r.cols {
			sc := &r.cols[ci]
			if stamp[ci] != di {
				sc.col.AppendNull()
				continue
			}
			if lastType[ci] != sc.minedType {
				sc.col.AppendNull()
				if lastType[ci] != keypath.TypeNull {
					sc.hasTypeOutliers = true
				}
				continue
			}
			n := lastNode[ci]
			switch sc.minedType {
			case keypath.TypeBigInt:
				sc.col.AppendInt(n.IntVal())
			case keypath.TypeDouble:
				sc.col.AppendFloat(n.FloatVal())
			case keypath.TypeBool:
				sc.col.AppendBool(n.BoolVal())
			case keypath.TypeString:
				sc.col.AppendString(n.StringVal())
			}
		}
	}

	// Binary JSON fallback storage (parallel, like the JSONB format).
	r.raw = make([][]byte, len(tapes))
	morselRange(len(tapes), workers, func(w, lo, hi int) {
		s := ingestScratchPool.Get().(*ingestScratch)
		defer ingestScratchPool.Put(s)
		for i := lo; i < hi; i++ {
			r.raw[i] = s.enc.EncodeTape(tapes[i])
		}
	})
	return r, nil
}
