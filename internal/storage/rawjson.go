package storage

import (
	"context"

	"repro/internal/expr"
	"repro/internal/jsontape"
	"repro/internal/jsontext"
	"repro/internal/obs"
	"repro/internal/stats"
)

// rawJSON stores every document as verbatim JSON text — the baseline
// "JSON" format. Every access during a scan re-parses the whole
// document, which is exactly the overhead the paper's JSON column
// measures.
type rawJSON struct {
	name  string
	lines [][]byte
}

type rawJSONLoader struct{ cfg LoaderConfig }

func (l rawJSONLoader) Load(name string, lines [][]byte, workers int) (Relation, error) {
	// Validate up front (a database rejects malformed documents at
	// insert); store the verbatim text.
	if l.cfg.TreeIngest {
		if _, err := parseAll(lines, workers); err != nil {
			return nil, err
		}
	} else if err := validateAll(lines, workers); err != nil {
		return nil, err
	}
	stored := make([][]byte, len(lines))
	for i, l := range lines {
		stored[i] = append([]byte(nil), l...)
	}
	return &rawJSON{name: name, lines: stored}, nil
}

func (r *rawJSON) Name() string             { return r.name }
func (r *rawJSON) NumRows() int             { return len(r.lines) }
func (r *rawJSON) Stats() *stats.TableStats { return nil }

func (r *rawJSON) SizeBytes() int {
	total := 0
	for _, l := range r.lines {
		total += len(l)
	}
	return total
}

func (r *rawJSON) Scan(accesses []Access, workers int, emit EmitFunc) {
	r.ScanWithStats(context.Background(), accesses, workers, emit, nil)
}

// ScanWithStats implements StatsScanner (rows only; the text format
// re-parses every document, there is nothing columnar to hit).
func (r *rawJSON) ScanWithStats(ctx context.Context, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats) {
	morselRangeCtx(ctx, len(r.lines), workers, func(w, lo, hi int) {
		cnt := scanCounters{morsels: 1}
		defer cnt.flush(st)
		cnt.rows = int64(hi - lo)
		row := make([]expr.Value, len(accesses))
		for i := lo; i < hi; i++ {
			doc, err := jsontext.Parse(r.lines[i])
			if err != nil {
				continue // unreachable: validated at load
			}
			for ai, a := range accesses {
				row[ai] = valueAccess(doc, a.Path, a.Type)
			}
			emit(w, row)
		}
	})
}

// validateAll checks every line with the tape parser (no tree is
// built), falling back per document past the tape limits. Errors
// report the lowest failing index, like parseAll.
func validateAll(lines [][]byte, workers int) error {
	pe := newParseErrs()
	morselRange(len(lines), workers, func(w, lo, hi int) {
		if pe.failedBefore(lo) {
			return
		}
		s := ingestScratchPool.Get().(*ingestScratch)
		defer ingestScratchPool.Put(s)
		var tapeDocs, treeDocs, tapeBytes int64
		defer func() {
			obs.IngestDocsTape.Add(tapeDocs)
			obs.IngestDocsTreeFallback.Add(treeDocs)
			obs.IngestTapeBytes.Add(tapeBytes)
		}()
		for i := lo; i < hi; i++ {
			err := jsontape.Parse(lines[i], &s.doc)
			if err == nil {
				tapeDocs++
				tapeBytes += int64(8 * len(s.doc.Tape))
				continue
			}
			if jsontape.IsLimit(err) {
				treeDocs++
				if _, terr := parseDoc(lines[i]); terr != nil {
					pe.record(i, terr)
					return
				}
				continue
			}
			pe.record(i, err)
			return
		}
	})
	return pe.get()
}
