package storage

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockstore"
	"repro/internal/bufpool"
	"repro/internal/keypath"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/segment"
	"repro/internal/stats"
	"repro/internal/tile"
)

// DirTable is a multi-segment, disk-backed relation: a directory of
// immutable segment files catalogued by a crash-safe manifest.
// Appends write a new segment and commit a new manifest generation —
// O(new data), never a table rewrite — and a size-tiered compactor
// folds accumulated small segments into larger ones in the
// background. Queries scan the union of the live segments through
// the shared scan core, so per-segment zone-map and bloom skipping
// work exactly as they do for a single segment.
//
// Concurrency follows an epoch scheme: every scan pins the segment
// list it starts with (per-segment refcounts), so compaction can
// commit a new generation and mark old segments dead while in-flight
// scans keep reading them; the last release closes the reader, drops
// its pool blocks, and deletes the dead file.
type DirTable struct {
	name     string
	dir      string // backing directory ("" for non-FS stores)
	store    blockstore.Store
	ownStore bool // OpenDirTable created the store; Close closes it
	pool     *bufpool.Pool
	ownPool  bool
	cfg      LoaderConfig
	scancfg  scanConfig
	fanIn    int  // segments merged per compaction round (≥2)
	auto     bool // compact in the background after appends

	// mu guards the current generation: manifest, segment list,
	// closed flag, and segment-id allocation. nextID is the allocation
	// watermark — kept outside the manifest object because t.man is
	// swapped wholesale on commit, and a reservation taken between a
	// commit's clone and its swap must survive the swap.
	mu     sync.Mutex
	man    *manifest.Manifest
	segs   []*liveSeg
	nextID uint64
	closed bool

	// writeMu serializes manifest commits (append and compaction
	// publish steps). Held only around clone-commit-swap, never
	// during segment file writes.
	writeMu sync.Mutex

	// compactMu serializes compaction work; wg tracks background
	// compaction goroutines so Close can wait them out.
	compactMu sync.Mutex
	wg        sync.WaitGroup

	statsMu     sync.Mutex
	statsCache  *stats.TableStats
	evictionsMu sync.Mutex
	lastEvict   int64
	backlogMu   sync.Mutex
	lastBacklog int64

	errMu sync.Mutex
	err   error
}

var (
	_ Relation       = (*DirTable)(nil)
	_ StatsScanner   = (*DirTable)(nil)
	_ BatchScanner   = (*DirTable)(nil)
	_ TileCounter    = (*DirTable)(nil)
	_ SegmentCounter = (*DirTable)(nil)
)

// SegmentCounter is implemented by relations backed by a set of live
// segment files; the planner surfaces the count as EXPLAIN ANALYZE's
// segments_live figure.
type SegmentCounter interface {
	NumSegments() int
}

// liveSeg is one open segment of some table generation. refs counts
// the table's own membership (1 while the segment is in the current
// generation) plus one per in-flight scan pinning it; the release
// that drops refs to zero closes the reader and, if the segment was
// compacted away, deletes its object.
type liveSeg struct {
	rel   *segRelation
	store blockstore.Store
	id    uint64
	file  string // object name within the store
	rows  int
	bytes int64
	refs  atomic.Int64
	drop  atomic.Bool
}

func (ls *liveSeg) retain() { ls.refs.Add(1) }

func (ls *liveSeg) release() {
	if ls.refs.Add(-1) == 0 {
		ls.rel.Close()
		if ls.drop.Load() {
			ls.store.Delete(ls.file)
		}
	}
}

var errDirTableClosed = errors.New("storage: directory table is closed")

// DefaultCompactFanIn is how many same-tier segments trigger (and
// take part in) one compaction round when no explicit fan-in is set.
const DefaultCompactFanIn = 4

// OpenDirTable opens (or creates) a multi-segment table directory.
// Recovery runs first: temporaries and segment files the committed
// manifest does not reference are garbage-collected, so a crash
// between segment write and manifest rename leaves no trace beyond
// this cleanup. fanIn sets the compaction fan-in (0 selects
// DefaultCompactFanIn, values below 2 are raised to 2); auto enables
// background compaction after appends. All block reads flow through
// pool (a private default-capacity pool is created when nil).
func OpenDirTable(name, dir string, pool *bufpool.Pool, cfg LoaderConfig, fanIn int, auto bool) (*DirTable, error) {
	store, err := blockstore.NewFS(dir)
	if err != nil {
		return nil, err
	}
	t, err := OpenDirStore(name, store, pool, cfg, fanIn, auto)
	if err != nil {
		blockstore.Close(store)
		return nil, err
	}
	t.dir = dir
	t.ownStore = true
	return t, nil
}

// OpenDirStore opens (or creates) a multi-segment table over any
// block store — the storage/compute-separated form of OpenDirTable.
// Catalog, recovery, appends, compaction, and scans all speak the
// store interface; the caller keeps ownership of the store (Close
// leaves it open).
func OpenDirStore(name string, store blockstore.Store, pool *bufpool.Pool, cfg LoaderConfig, fanIn int, auto bool) (*DirTable, error) {
	man, removed, err := manifest.RecoverStore(store)
	if err != nil {
		return nil, err
	}
	if removed > 0 {
		obs.ManifestRecoveries.Add(1)
	}
	if man.Version == 0 {
		// Fresh store: commit the empty first generation so the store
		// is a recognizable table from here on.
		man.Version = 1
		if err := manifest.CommitStore(store, man); err != nil {
			return nil, err
		}
	}
	ownPool := pool == nil
	if ownPool {
		pool = bufpool.New(0)
	}
	maxSlots := cfg.Tile.MaxArraySlots
	if maxSlots <= 0 {
		maxSlots = keypath.DefaultMaxArraySlots
	}
	if fanIn == 0 {
		fanIn = DefaultCompactFanIn
	}
	if fanIn < 2 {
		fanIn = 2
	}
	t := &DirTable{
		name:    name,
		store:   store,
		pool:    pool,
		ownPool: ownPool,
		cfg:     cfg,
		scancfg: scanCfgOf(cfg, maxSlots),
		fanIn:   fanIn,
		auto:    auto,
		man:     man,
		nextID:  man.NextID,
	}
	for _, s := range man.Segments {
		rel, err := OpenSegmentStore(name, store, s.File, pool, cfg)
		if err != nil {
			for _, ls := range t.segs {
				ls.rel.Close()
			}
			return nil, fmt.Errorf("segment %s: %w", s.File, err)
		}
		ls := &liveSeg{rel: rel, store: store, id: s.ID, file: s.File, rows: s.Rows, bytes: s.Bytes}
		ls.refs.Store(1)
		t.segs = append(t.segs, ls)
	}
	obs.SegmentsLive.Add(float64(len(t.segs)))
	t.updateBacklogGauge()
	return t, nil
}

// scanCfgOf derives the scan-core settings from a loader config.
func scanCfgOf(cfg LoaderConfig, maxSlots int) scanConfig {
	return scanConfig{
		skipTiles:  cfg.SkipTiles,
		maxSlots:   maxSlots,
		morselRows: cfg.MorselRows,
		prefetch:   cfg.StorePrefetch,
	}
}

func (t *DirTable) Name() string { return t.name }

// Dir returns the table directory path.
func (t *DirTable) Dir() string { return t.dir }

func (t *DirTable) NumRows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for _, ls := range t.segs {
		total += ls.rows
	}
	return total
}

// SizeBytes is the on-disk footprint of the live segment files.
func (t *DirTable) SizeBytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := int64(0)
	for _, ls := range t.segs {
		total += ls.bytes
	}
	return int(total)
}

// NumTiles sums the live segments' tile counts.
func (t *DirTable) NumTiles() int {
	segs := t.snapshot()
	defer releaseSegs(segs)
	total := 0
	for _, ls := range segs {
		total += ls.rel.NumTiles()
	}
	return total
}

// NumSegments returns the number of live segments (the EXPLAIN
// ANALYZE segments_live figure).
func (t *DirTable) NumSegments() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.segs)
}

// Generation returns the committed manifest version.
func (t *DirTable) Generation() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.man.Version
}

// Pool exposes the buffer pool serving this table.
func (t *DirTable) Pool() *bufpool.Pool { return t.pool }

// Stats returns the relation statistics: the merged view over every
// live segment's persisted footer statistics, cached until the
// segment set changes.
func (t *DirTable) Stats() *stats.TableStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.statsCache == nil {
		merged := stats.New(0, 0)
		segs := t.snapshot()
		for _, ls := range segs {
			merged.Merge(ls.rel.Stats())
		}
		releaseSegs(segs)
		t.statsCache = merged
	}
	return t.statsCache
}

func (t *DirTable) invalidateStats() {
	t.statsMu.Lock()
	t.statsCache = nil
	t.statsMu.Unlock()
}

// Err returns the first degraded-scan error any live segment
// recorded, or the table's own first error.
func (t *DirTable) Err() error {
	t.errMu.Lock()
	err := t.err
	t.errMu.Unlock()
	if err != nil {
		return err
	}
	segs := t.snapshot()
	defer releaseSegs(segs)
	for _, ls := range segs {
		if err := ls.rel.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (t *DirTable) recordErr(err error) {
	t.errMu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.errMu.Unlock()
}

// snapshot pins and returns the current generation's segment list.
// Callers must releaseSegs the result.
func (t *DirTable) snapshot() []*liveSeg {
	t.mu.Lock()
	segs := make([]*liveSeg, len(t.segs))
	copy(segs, t.segs)
	for _, ls := range segs {
		ls.retain()
	}
	t.mu.Unlock()
	return segs
}

func releaseSegs(segs []*liveSeg) {
	for _, ls := range segs {
		ls.release()
	}
}

// multiSource drives the shared scan core over the union of pinned
// segments: tile indexes are globalized across segments, so tile
// parallelism and skip accounting span the whole table.
type multiSource struct {
	rels []*segRelation
	offs []int // offs[i] = first global tile index of segment i; offs[len] = total
	cfg  scanConfig
}

func newMultiSource(segs []*liveSeg, cfg scanConfig) *multiSource {
	m := &multiSource{
		rels: make([]*segRelation, len(segs)),
		offs: make([]int, len(segs)+1),
		cfg:  cfg,
	}
	for i, ls := range segs {
		m.rels[i] = ls.rel
		m.offs[i+1] = m.offs[i] + ls.rel.NumTiles()
	}
	return m
}

func (m *multiSource) numScanTiles() int      { return m.offs[len(m.rels)] }
func (m *multiSource) scanConfig() scanConfig { return m.cfg }

func (m *multiSource) openScanTile(ti int, cnt *scanCounters) scanTile {
	i := sort.Search(len(m.rels), func(i int) bool { return m.offs[i+1] > ti })
	return m.rels[i].openScanTile(ti-m.offs[i], cnt)
}

func (t *DirTable) Scan(accesses []Access, workers int, emit EmitFunc) {
	t.ScanWithStats(context.Background(), accesses, workers, emit, nil)
}

// ScanWithStats runs the shared row-scan core over the pinned union
// of live segments. A cancelled ctx stops the scan within one morsel;
// the deferred release drops the segment pins either way, so
// compaction is never blocked by abandoned queries.
func (t *DirTable) ScanWithStats(ctx context.Context, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats) {
	segs := t.snapshot()
	defer releaseSegs(segs)
	scanRowsCore(ctx, newMultiSource(segs, t.scancfg), accesses, workers, emit, st)
	t.flushPoolCounters()
}

// ScanBatches runs the shared batch-scan core over the pinned union
// of live segments.
func (t *DirTable) ScanBatches(ctx context.Context, accesses []Access, workers int, emit BatchEmitFunc, st *obs.ScanStats) {
	segs := t.snapshot()
	defer releaseSegs(segs)
	scanBatchesCore(ctx, newMultiSource(segs, t.scancfg), accesses, workers, emit, st)
	t.flushPoolCounters()
}

// flushPoolCounters forwards the shared pool's eviction delta to the
// registry once per scan (per-segment flushing would multiply-count
// a pool shared by every segment).
func (t *DirTable) flushPoolCounters() {
	ps := t.pool.Stats()
	t.evictionsMu.Lock()
	delta := ps.Evictions - t.lastEvict
	t.lastEvict = ps.Evictions
	t.evictionsMu.Unlock()
	obs.BufpoolEvictions.Add(delta)
	updateHitRatioGauge()
}

// AppendTiles persists the tiles (with their relation statistics) as
// one new segment and commits a manifest generation referencing it —
// the incremental flush path. Work is O(new data): existing segments
// are untouched. If the manifest commit fails, the freshly written
// segment file is left for recovery to collect, exactly as a crash
// at that point would; the table keeps serving the prior generation.
func (t *DirTable) AppendTiles(tiles []*tile.Tile, st *stats.TableStats) error {
	if len(tiles) == 0 {
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errDirTableClosed
	}
	id := t.nextID
	t.nextID++
	t.mu.Unlock()

	file := manifest.SegmentFileName(id)
	if _, err := segment.WriteStore(t.store, file, tiles, st); err != nil {
		return err
	}
	rel, err := OpenSegmentStore(t.name, t.store, file, t.pool, t.cfg)
	if err != nil {
		t.store.Delete(file)
		return err
	}
	ls := &liveSeg{rel: rel, store: t.store, id: id, file: file, rows: rel.NumRows(), bytes: int64(rel.SizeBytes())}
	ls.refs.Store(1)

	entry := manifest.Segment{ID: id, File: file, Rows: ls.rows, Bytes: ls.bytes}
	if err := t.commitGeneration(func(man *manifest.Manifest) {
		if id >= man.NextID {
			man.NextID = id + 1
		}
		man.Segments = append(man.Segments, entry)
	}, func() {
		t.segs = append(t.segs, ls)
	}); err != nil {
		// Crash-equivalent state: the segment file exists but no
		// generation references it. Recovery on the next open removes
		// it; the current generation stays live and consistent.
		rel.Close()
		return err
	}
	obs.SegmentsLive.Add(1)
	t.updateBacklogGauge()
	t.invalidateStats()
	if t.auto {
		t.compactAsync()
	}
	return nil
}

// updateBacklogGauge refreshes this table's contribution to the
// process-wide compaction-backlog gauge: the number of live segments
// sitting in tiers that have reached the compaction fan-in. Deltas
// are added (not Set) so tables sharing the gauge sum correctly.
func (t *DirTable) updateBacklogGauge() {
	t.mu.Lock()
	byTier := map[int]int{}
	for _, ls := range t.segs {
		byTier[tierOf(ls.bytes)]++
	}
	backlog := 0
	for _, n := range byTier {
		if n >= t.fanIn {
			backlog += n
		}
	}
	t.mu.Unlock()
	t.backlogMu.Lock()
	delta := int64(backlog) - t.lastBacklog
	t.lastBacklog = int64(backlog)
	t.backlogMu.Unlock()
	obs.CompactionBacklog.Add(float64(delta))
}

// commitGeneration clones the current manifest, applies edit, commits
// it durably, and on success applies swap to the in-memory segment
// list — all under the commit lock so generations are totally
// ordered.
func (t *DirTable) commitGeneration(edit func(*manifest.Manifest), swap func()) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errDirTableClosed
	}
	man := &manifest.Manifest{
		Version: t.man.Version,
		// The committed NextID is the live allocation watermark, so ids
		// reserved by in-flight writers are never reusable after a
		// crash, even before their own commits land.
		NextID:   t.nextID,
		Segments: append([]manifest.Segment(nil), t.man.Segments...),
	}
	t.mu.Unlock()
	man.Version++
	edit(man)
	if err := manifest.CommitStore(t.store, man); err != nil {
		return err
	}
	t.mu.Lock()
	t.man = man
	swap()
	t.mu.Unlock()
	return nil
}

// Compact runs size-tiered compaction rounds until no tier holds
// fanIn segments, returning how many rounds ran. Safe to call
// concurrently with scans and appends; rounds are serialized.
func (t *DirTable) Compact() (int, error) {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	rounds := 0
	for {
		did, err := t.compactOnce()
		if err != nil || !did {
			return rounds, err
		}
		rounds++
	}
}

// compactAsync kicks one background compaction pass if none is
// running (a running pass loops until stable, so a skipped kick loses
// nothing).
func (t *DirTable) compactAsync() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.wg.Add(1)
	t.mu.Unlock()
	go func() {
		defer t.wg.Done()
		if !t.compactMu.TryLock() {
			return
		}
		defer t.compactMu.Unlock()
		for {
			did, err := t.compactOnce()
			if err != nil {
				t.recordErr(err)
				return
			}
			if !did {
				return
			}
		}
	}()
}

// tierOf buckets a segment by size: tier 0 under 64 KiB, each tier
// spanning a 4× size range above that. Segments only merge within a
// tier, so one big early segment never forces rewriting the table to
// absorb small appends.
func tierOf(bytes int64) int {
	t := 0
	for s := int64(64 << 10); bytes >= s && t < 30; s *= 4 {
		t++
	}
	return t
}

// pickCompaction chooses the fanIn smallest segments of the lowest
// tier holding at least fanIn members, or nil when the table is
// already compact. Called with t.mu held.
func (t *DirTable) pickCompaction() []*liveSeg {
	byTier := map[int][]*liveSeg{}
	for _, ls := range t.segs {
		tier := tierOf(ls.bytes)
		byTier[tier] = append(byTier[tier], ls)
	}
	best := -1
	for tier, group := range byTier {
		if len(group) >= t.fanIn && (best < 0 || tier < best) {
			best = tier
		}
	}
	if best < 0 {
		return nil
	}
	group := byTier[best]
	sort.Slice(group, func(i, j int) bool {
		if group[i].bytes != group[j].bytes {
			return group[i].bytes < group[j].bytes
		}
		return group[i].id < group[j].id
	})
	return group[:t.fanIn]
}

// compactOnce merges one group of same-tier segments into a new
// segment and commits the generation that swaps them. Sources stay
// readable throughout: in-flight scans hold pins, and files are
// deleted only when the last pin drops.
func (t *DirTable) compactOnce() (bool, error) {
	start := time.Now()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return false, nil
	}
	group := t.pickCompaction()
	if group == nil {
		t.mu.Unlock()
		return false, nil
	}
	for _, ls := range group {
		ls.retain()
	}
	id := t.nextID
	t.nextID++
	t.mu.Unlock()
	defer releaseSegs(group)

	readers := make([]*segment.Reader, len(group))
	for i, ls := range group {
		readers[i] = ls.rel.r
	}
	file := manifest.SegmentFileName(id)
	n, err := segment.MergeStore(t.store, file, readers)
	if err != nil {
		return false, err
	}
	rel, err := OpenSegmentStore(t.name, t.store, file, t.pool, t.cfg)
	if err != nil {
		t.store.Delete(file)
		return false, err
	}
	merged := &liveSeg{rel: rel, store: t.store, id: id, file: file, rows: rel.NumRows(), bytes: int64(rel.SizeBytes())}
	merged.refs.Store(1)

	dead := make(map[*liveSeg]bool, len(group))
	for _, ls := range group {
		dead[ls] = true
	}
	entry := manifest.Segment{ID: id, File: file, Rows: merged.rows, Bytes: merged.bytes}
	if err := t.commitGeneration(func(man *manifest.Manifest) {
		if id >= man.NextID {
			man.NextID = id + 1
		}
		deadFiles := make(map[string]bool, len(group))
		for _, ls := range group {
			deadFiles[manifest.SegmentFileName(ls.id)] = true
		}
		kept := man.Segments[:0]
		inserted := false
		for _, s := range man.Segments {
			if deadFiles[s.File] {
				// The merged segment takes the slot of the first dead
				// source, preserving rough scan order.
				if !inserted {
					kept = append(kept, entry)
					inserted = true
				}
				continue
			}
			kept = append(kept, s)
		}
		if !inserted {
			kept = append(kept, entry)
		}
		man.Segments = kept
	}, func() {
		segs := t.segs[:0]
		inserted := false
		for _, ls := range t.segs {
			if dead[ls] {
				if !inserted {
					segs = append(segs, merged)
					inserted = true
				}
				continue
			}
			segs = append(segs, ls)
		}
		if !inserted {
			segs = append(segs, merged)
		}
		t.segs = segs
	}); err != nil {
		// Failed publish: drop the merged output (it is unreferenced)
		// and keep serving the sources.
		rel.Close()
		t.store.Delete(file)
		return false, err
	}
	// Retire the sources: mark dead so the final release deletes the
	// file, then drop the store's own reference. Scans still holding
	// pins keep the old generation alive until they finish.
	for _, ls := range group {
		ls.drop.Store(true)
		ls.release()
	}
	obs.SegmentsLive.Add(float64(1 - len(group)))
	obs.CompactionsRun.Add(1)
	obs.CompactionBytesRewritten.Add(n)
	obs.CompactionSeconds.ObserveSince(start)
	t.updateBacklogGauge()
	t.invalidateStats()
	return true, nil
}

// Close waits out background compaction, releases every live segment,
// and (for a privately created pool) leaves its blocks to the
// garbage collector. In-flight scans finish against their pinned
// generation.
func (t *DirTable) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.wg.Wait()
	t.mu.Lock()
	segs := t.segs
	t.segs = nil
	t.mu.Unlock()
	for _, ls := range segs {
		ls.release()
	}
	obs.SegmentsLive.Add(-float64(len(segs)))
	t.updateBacklogGauge()
	if t.ownStore {
		return blockstore.Close(t.store)
	}
	return nil
}

// Store exposes the block store backing this table.
func (t *DirTable) Store() blockstore.Store { return t.store }
