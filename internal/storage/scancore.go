package storage

import (
	"context"

	"repro/internal/expr"
	"repro/internal/jsonb"
	"repro/internal/keypath"
	"repro/internal/obs"
	"repro/internal/tile"
	"repro/internal/vec"
)

// The scan core: the row and batch scan loops shared by the in-memory
// tiles relation and the disk-backed segment relation. Both formats
// present their tiles through the scanTile view, so skip decisions,
// per-tile access resolution (§4.5), and the column-hit vs
// binary-JSON-fallback split behave identically — a query over a
// reopened segment returns byte-identical results to the in-memory
// path, with lazy block I/O as the only difference.

// scanTile is one tile as the scan loops see it. *tile.Tile satisfies
// it directly; the segment relation implements it with a lazy view
// that fetches column and document blocks through the buffer pool on
// first access, so unaccessed columns and skipped tiles cost no I/O.
type scanTile interface {
	NumRows() int
	// MayContainPath must answer from tile metadata alone (skip
	// decisions happen before any data access).
	MayContainPath(path string) bool
	ColumnsForPath(path string) []int
	// Column may perform lazy I/O; it is only called for columns whose
	// path some access resolved to.
	Column(idx int) *tile.ColumnInfo
	// Raw may lazily load the tile's fallback documents.
	Raw(i int) jsonb.Doc
}

var _ scanTile = (*tile.Tile)(nil)

// scanSource is a relation the scan core can drive: a tile count and
// a per-scan view of each tile. openScanTile receives the worker's
// counter block so lazily loading views can account block I/O.
type scanSource interface {
	numScanTiles() int
	openScanTile(ti int, cnt *scanCounters) scanTile
	scanConfig() scanConfig
}

type scanConfig struct {
	skipTiles  bool
	maxSlots   int
	morselRows int
	// prefetch enables the bounded readahead on store-backed scans:
	// while a worker scans one tile, its next tile's surviving blocks
	// are fetched asynchronously (one outstanding fetch per worker).
	prefetch bool
}

// preparableTile is implemented by lazy tile views that can make every
// block the scan will touch pool-resident in one coalesced pass; tiles
// that are already in memory simply don't implement it.
type preparableTile interface {
	prepare(accesses []Access, prefetched bool)
}

// prepareTile runs the synchronous pre-scan fetch on a surviving tile.
func prepareTile(t scanTile, accesses []Access) {
	if pt, ok := t.(preparableTile); ok {
		pt.prepare(accesses, false)
	}
}

// prefetcher overlaps the next tile's block fetches with the current
// tile's scan: at most one outstanding asynchronous fetch per worker,
// always waited out before the worker touches its next tile. The
// prefetch goroutine gets its own counter block (worker counters are
// plain integers, not atomics) which it flushes straight to the
// per-scan stats when the fetch completes.
type prefetcher struct {
	src      scanSource
	accesses []Access
	cfg      scanConfig
	st       *obs.ScanStats
	tenant   string
	pend     chan struct{} // non-nil while a fetch is in flight
}

func newPrefetcher(src scanSource, accesses []Access, cfg scanConfig, st *obs.ScanStats, tenant string) *prefetcher {
	if !cfg.prefetch {
		return nil
	}
	return &prefetcher{src: src, accesses: accesses, cfg: cfg, st: st, tenant: tenant}
}

// start kicks the asynchronous fetch of tile ti, if the source's tiles
// support preparation and no fetch is already outstanding.
func (p *prefetcher) start(ti int) {
	if p == nil || p.pend != nil {
		return
	}
	cnt := &scanCounters{tenant: p.tenant}
	t := p.src.openScanTile(ti, cnt)
	pt, ok := t.(preparableTile)
	if !ok {
		return
	}
	done := make(chan struct{})
	p.pend = done
	go func() {
		defer close(done)
		if !(p.cfg.skipTiles && skippableTile(t, p.accesses, p.cfg.maxSlots)) {
			pt.prepare(p.accesses, true)
		}
		cnt.flush(p.st)
	}()
}

// wait blocks until the outstanding fetch (if any) completes, so the
// scan never races the prefetch goroutine on the buffer pool's
// in-flight state for the same blocks.
func (p *prefetcher) wait() {
	if p == nil || p.pend == nil {
		return
	}
	<-p.pend
	p.pend = nil
}

// mayContainTile answers MayContainPath with the capped-slot
// correction: paths indexing an array slot at or beyond the
// collection cap are invisible to tile headers, so only their prefix
// (the array itself) can be consulted.
func mayContainTile(t scanTile, a Access, maxSlots int) bool {
	if prefix, capped := cappedPrefix(a.Path, maxSlots); capped {
		return t.MayContainPath(prefix)
	}
	return t.MayContainPath(a.PathEnc)
}

// skippableTile reports whether the tile provably contains no tuple
// that can satisfy the query: some null-rejecting access targets a
// path absent from the whole tile (§4.8). Metadata-only.
func skippableTile(t scanTile, accesses []Access, maxSlots int) bool {
	for _, a := range accesses {
		if a.NullRejecting && !mayContainTile(t, a, maxSlots) {
			return true
		}
	}
	return false
}

// resolveTileAccess computes how the tile serves one access (§4.5),
// once per tile, reused for every tuple.
func resolveTileAccess(t scanTile, a Access, maxSlots int) colResolver {
	if a.Type == expr.TJSON {
		// The -> operator returns documents; serve from binary JSON.
		if !mayContainTile(t, a, maxSlots) {
			return colResolver{mode: modeNullAll}
		}
		return colResolver{mode: modeFallback}
	}
	if _, capped := cappedPrefix(a.Path, maxSlots); capped {
		if !mayContainTile(t, a, maxSlots) {
			return colResolver{mode: modeNullAll}
		}
		return colResolver{mode: modeFallback}
	}
	cols := t.ColumnsForPath(a.PathEnc)
	// Prefer a column that serves the type directly; fall back to any
	// column, then to the document.
	var fallbackish *colResolver
	for _, ci := range cols {
		info := t.Column(ci)
		rv := resolveColumn(info.Col, info.MinedType, info.StorageType, info.HasTypeOutliers, a.Type)
		if rv.mode == modeColumn {
			// A column serves directly, but other same-path columns
			// (different mined type) would hold the remaining values;
			// with >1 columns stay safe and fall back on null.
			if len(cols) > 1 {
				rv.fallbackOnNull = true
			}
			return rv
		}
		f := rv
		fallbackish = &f
	}
	if fallbackish != nil {
		return *fallbackish
	}
	if !mayContainTile(t, a, maxSlots) {
		return colResolver{mode: modeNullAll}
	}
	return colResolver{mode: modeFallback}
}

// resolveTileAccessBatch decides how an access is served in batch
// form (see tiles_batch.go for the vector kinds).
func resolveTileAccessBatch(t scanTile, a Access, maxSlots int) batchResolver {
	rv := resolveTileAccess(t, a, maxSlots)
	switch rv.mode {
	case modeNullAll:
		return batchResolver{kind: vkNullAll}
	case modeColumn:
		if !rv.fallbackOnNull {
			switch rv.col.Type() {
			case keypath.TypeBigInt:
				switch a.Type {
				case expr.TBigInt:
					return batchResolver{kind: vkZero, col: rv.col}
				case expr.TFloat:
					return batchResolver{kind: vkIntToFloat, col: rv.col}
				}
			case keypath.TypeDouble:
				if a.Type == expr.TFloat {
					return batchResolver{kind: vkZero, col: rv.col}
				}
			case keypath.TypeString:
				if a.Type == expr.TText {
					return batchResolver{kind: vkZero, col: rv.col}
				}
			case keypath.TypeBool:
				if a.Type == expr.TBool {
					return batchResolver{kind: vkZero, col: rv.col}
				}
			case keypath.TypeTimestamp:
				if a.Type == expr.TTimestamp {
					return batchResolver{kind: vkZero, col: rv.col}
				}
			}
		}
	}
	return batchResolver{kind: vkBoxed, row: rv}
}

// scanRowsCore is the shared row-at-a-time scan loop (§4.8 skipping,
// §4.5 per-tile resolution, §4.5/§5 column-hit vs fallback split).
func scanRowsCore(ctx context.Context, src scanSource, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats) {
	cfg := src.scanConfig()
	nTiles := src.numScanTiles()
	if nTiles == 0 {
		return
	}
	tenant := obs.TenantFrom(ctx)
	// Row counts come from tile metadata: no I/O.
	head := scanCounters{tenant: tenant}
	rowCounts := make([]int, nTiles)
	for i := range rowCounts {
		rowCounts[i] = src.openScanTile(i, &head).NumRows()
	}
	head.flush(st)
	morsels := buildTileMorsels(rowCounts, workers, cfg.morselRows, true)
	runMorsels(ctx, morsels, workers, func(w int, m morsel) {
		scratch := getScanScratch(len(accesses))
		defer putScanScratch(scratch)
		row, res := scratch.row, scratch.res
		cnt := scanCounters{morsels: 1, tenant: tenant}
		defer cnt.flush(st)
		pf := newPrefetcher(src, accesses, cfg, st, tenant)
		defer pf.wait()
		for ti := m.tileLo; ti < m.tileHi; ti++ {
			// Wait out the readahead for this tile, then overlap the
			// next tile's fetch with this tile's scan. Row-split morsels
			// cover a single tile, so they never prefetch.
			pf.wait()
			if ti+1 < m.tileHi {
				pf.start(ti + 1)
			}
			t := src.openScanTile(ti, &cnt)
			lo, hi := 0, t.NumRows()
			if !m.wholeTiles() {
				lo, hi = m.rowLo, m.rowHi
			}
			// Tile-level counters fire once per tile: the sub-morsel
			// starting at row 0 accounts for the whole tile.
			if cfg.skipTiles && skippableTile(t, accesses, cfg.maxSlots) {
				if lo == 0 {
					cnt.tilesSkipped++
				}
				continue
			}
			prepareTile(t, accesses)
			if lo == 0 {
				cnt.tilesScanned++
			}
			// Per-tile access resolution, computed once and reused for
			// every tuple of the morsel (§4.5).
			for ai, a := range accesses {
				res[ai] = resolveTileAccess(t, a, cfg.maxSlots)
			}
			cnt.rows += int64(hi - lo)
			for i := lo; i < hi; i++ {
				var d jsonb.Doc
				haveDoc := false
				for ai := range accesses {
					v, needDoc, castErr := res[ai].read(i)
					if needDoc {
						cnt.fallbacks++
						if !haveDoc {
							d = t.Raw(i)
							haveDoc = true
						}
						v = docAccess(d, accesses[ai].Path, accesses[ai].Type)
					} else if res[ai].mode == modeColumn {
						cnt.hits++
					}
					if castErr {
						cnt.castErrs++
					}
					row[ai] = v
				}
				emit(w, row)
			}
		}
	})
}

// scanBatchesCore is the shared batch scan loop: one batch per
// surviving tile, with the same skip decisions and accounting as the
// row scan plus the batch/vectorized-row split.
func scanBatchesCore(ctx context.Context, src scanSource, accesses []Access, workers int, emit BatchEmitFunc, st *obs.ScanStats) {
	cfg := src.scanConfig()
	nTiles := src.numScanTiles()
	if nTiles == 0 {
		return
	}
	tenant := obs.TenantFrom(ctx)
	// Global row id of each tile's first row (Base of its batch).
	// Row counts come from metadata, so this loop performs no I/O.
	offs := make([]int64, nTiles)
	rowCounts := make([]int, nTiles)
	var run int64
	head := scanCounters{tenant: tenant}
	for i := 0; i < nTiles; i++ {
		offs[i] = run
		rowCounts[i] = src.openScanTile(i, &head).NumRows()
		run += int64(rowCounts[i])
	}
	head.flush(st)
	// Batches alias one tile's column slices, so morsels stay at tile
	// granularity here: tiny tiles batch together, big tiles are one
	// morsel each (never row-split).
	morsels := buildTileMorsels(rowCounts, workers, cfg.morselRows, false)
	runMorsels(ctx, morsels, workers, func(w int, m morsel) {
		var (
			batch vec.Batch
			boxed = make([][]expr.Value, len(accesses))
			fbuf  = make([][]float64, len(accesses))
			cnt   = scanCounters{morsels: 1, tenant: tenant}
		)
		batch.Cols = make([]vec.Vector, len(accesses))
		defer cnt.flush(st)
		pf := newPrefetcher(src, accesses, cfg, st, tenant)
		defer pf.wait()
		for ti := m.tileLo; ti < m.tileHi; ti++ {
			pf.wait()
			if ti+1 < m.tileHi {
				pf.start(ti + 1)
			}
			t := src.openScanTile(ti, &cnt)
			if cfg.skipTiles && skippableTile(t, accesses, cfg.maxSlots) {
				cnt.tilesSkipped++
				continue
			}
			cnt.tilesScanned++
			prepareTile(t, accesses)
			n := t.NumRows()
			cnt.rows += int64(n)
			allVec := true
			for ai := range accesses {
				a := accesses[ai]
				br := resolveTileAccessBatch(t, a, cfg.maxSlots)
				switch br.kind {
				case vkZero:
					batch.Cols[ai] = zeroVec(br.col, a.Type)
					cnt.hits += int64(n)
				case vkIntToFloat:
					buf := fbuf[ai]
					if cap(buf) < n {
						buf = make([]float64, n)
					} else {
						buf = buf[:n]
					}
					ints := br.col.IntSlice()
					for i := 0; i < n; i++ {
						buf[i] = float64(ints[i])
					}
					fbuf[ai] = buf
					batch.Cols[ai] = vec.Vector{Type: expr.TFloat, Floats: buf, Nulls: br.col.NullBits()}
					cnt.hits += int64(n)
				case vkNullAll:
					batch.Cols[ai] = vec.NullVector(a.Type, n)
				default: // boxed: row-at-a-time materialization
					allVec = false
					vals := boxed[ai]
					if cap(vals) < n {
						vals = make([]expr.Value, n)
					} else {
						vals = vals[:n]
					}
					for i := 0; i < n; i++ {
						v, needDoc, castErr := br.row.read(i)
						if needDoc {
							cnt.fallbacks++
							v = docAccess(t.Raw(i), a.Path, a.Type)
						} else if br.row.mode == modeColumn {
							cnt.hits++
						}
						if castErr {
							cnt.castErrs++
						}
						vals[i] = v
					}
					boxed[ai] = vals
					batch.Cols[ai] = vec.Vector{Type: a.Type, Boxed: vals}
				}
			}
			cnt.batches++
			if allVec {
				cnt.rowsVec += int64(n)
			} else {
				cnt.rowsFallback += int64(n)
			}
			batch.Len = n
			batch.Sel = nil
			batch.Base = offs[ti]
			emit(w, &batch)
		}
	})
}
