package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/expr"
	"repro/internal/keypath"
	"repro/internal/manifest"
	"repro/internal/stats"
	"repro/internal/tile"
)

// dirTestBatch builds one flush-worth of tiles plus statistics from
// JSON lines.
func dirTestBatch(t *testing.T, lines []string) ([]*tile.Tile, *stats.TableStats) {
	t.Helper()
	raw := make([][]byte, len(lines))
	for i, l := range lines {
		raw[i] = []byte(l)
	}
	docs, err := parseAll(raw, 2)
	if err != nil {
		t.Fatalf("parseAll: %v", err)
	}
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 16
	rel := BuildTiles("batch", docs, cfg, 2, nil)
	return rel.(TileIntrospector).Tiles(), rel.Stats()
}

func dirTestLines(batch, n int) []string {
	lines := make([]string, n)
	for i := 0; i < n; i++ {
		id := batch*n + i
		lines[i] = fmt.Sprintf(`{"id":%d,"batch":%d,"name":"doc-%d","score":%g}`,
			id, batch, id, float64(id)*0.25)
	}
	return lines
}

func dirTestAccesses() []Access {
	return []Access{
		NewAccessPath(expr.TBigInt, keypath.NewPath("id")),
		NewAccessPath(expr.TBigInt, keypath.NewPath("batch")),
		NewAccessPath(expr.TText, keypath.NewPath("name")),
		NewAccessPath(expr.TFloat, keypath.NewPath("score")),
	}
}

// scanMultiset collects a relation's row scan as a multiset of
// rendered rows.
func scanMultiset(rel Relation, accesses []Access) map[string]int {
	got := map[string]int{}
	var mu sync.Mutex
	rel.Scan(accesses, 2, func(w int, row []expr.Value) {
		key := ""
		for _, v := range row {
			key += v.String() + "|"
		}
		mu.Lock()
		got[key]++
		mu.Unlock()
	})
	return got
}

func sameMultiset(t *testing.T, label string, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d distinct rows, want %d", label, len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s: row %q count %d, want %d", label, k, got[k], n)
		}
	}
}

func TestDirTableAppendCompactReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 16
	dt, err := OpenDirTable("t", dir, nil, cfg, 4, false)
	if err != nil {
		t.Fatalf("OpenDirTable: %v", err)
	}

	const batches, rows = 8, 48
	var all []string
	for b := 0; b < batches; b++ {
		lines := dirTestLines(b, rows)
		all = append(all, lines...)
		tiles, st := dirTestBatch(t, lines)
		if err := dt.AppendTiles(tiles, st); err != nil {
			t.Fatalf("AppendTiles %d: %v", b, err)
		}
	}
	if got := dt.NumSegments(); got != batches {
		t.Fatalf("NumSegments = %d, want %d", got, batches)
	}
	if got := dt.NumRows(); got != batches*rows {
		t.Fatalf("NumRows = %d, want %d", got, batches*rows)
	}
	if got := dt.Stats().RowCount(); got != int64(batches*rows) {
		t.Fatalf("stats rows = %d, want %d", got, batches*rows)
	}

	// Ground truth: the same documents as one in-memory relation.
	raw := make([][]byte, len(all))
	for i, l := range all {
		raw[i] = []byte(l)
	}
	docs, err := parseAll(raw, 2)
	if err != nil {
		t.Fatalf("parseAll: %v", err)
	}
	mem := BuildTiles("mem", docs, cfg, 2, nil)
	accesses := dirTestAccesses()
	want := scanMultiset(mem, accesses)

	sameMultiset(t, "before compaction", scanMultiset(dt, accesses), want)

	rounds, err := dt.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if rounds == 0 {
		t.Fatal("Compact ran no rounds over 8 small segments")
	}
	after := dt.NumSegments()
	if after >= batches {
		t.Fatalf("NumSegments = %d after compaction, want < %d", after, batches)
	}
	sameMultiset(t, "after compaction", scanMultiset(dt, accesses), want)
	if dt.NumRows() != batches*rows {
		t.Fatalf("NumRows after compaction = %d", dt.NumRows())
	}
	if err := dt.Err(); err != nil {
		t.Fatalf("Err after compaction: %v", err)
	}

	// Dead segment files must be gone; live ones must match the
	// manifest exactly.
	man, err := manifest.Load(dir)
	if err != nil {
		t.Fatalf("Load manifest: %v", err)
	}
	if len(man.Segments) != after {
		t.Fatalf("manifest lists %d segments, table has %d", len(man.Segments), after)
	}
	entries, _ := os.ReadDir(dir)
	segFiles := 0
	for _, e := range entries {
		if manifest.IsSegmentFileName(e.Name()) {
			segFiles++
		}
	}
	if segFiles != after {
		t.Fatalf("%d segment files on disk, want %d", segFiles, after)
	}

	if err := dt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the compacted generation serves identical results.
	dt2, err := OpenDirTable("t", dir, nil, cfg, 4, false)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer dt2.Close()
	if dt2.NumSegments() != after {
		t.Fatalf("reopened NumSegments = %d, want %d", dt2.NumSegments(), after)
	}
	sameMultiset(t, "after reopen", scanMultiset(dt2, accesses), want)
}

func TestDirTableScansPinOldGenerationDuringCompact(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 16
	dt, err := OpenDirTable("t", dir, nil, cfg, 2, false)
	if err != nil {
		t.Fatalf("OpenDirTable: %v", err)
	}
	defer dt.Close()

	var all []string
	for b := 0; b < 4; b++ {
		lines := dirTestLines(b, 64)
		all = append(all, lines...)
		tiles, st := dirTestBatch(t, lines)
		if err := dt.AppendTiles(tiles, st); err != nil {
			t.Fatalf("AppendTiles: %v", err)
		}
	}
	accesses := dirTestAccesses()
	want := scanMultiset(dt, accesses)

	// Concurrent scans race one compaction; every scan must see a
	// complete, consistent generation (old or new).
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := scanMultiset(dt, accesses)
			if len(got) != len(want) {
				errs <- fmt.Sprintf("scan saw %d distinct rows, want %d", len(got), len(want))
			}
		}()
	}
	if _, err := dt.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if err := dt.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	sameMultiset(t, "post-compact", scanMultiset(dt, accesses), want)
}

func TestDirTableCrashBeforeManifestRenameRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 16
	dt, err := OpenDirTable("t", dir, nil, cfg, 4, false)
	if err != nil {
		t.Fatalf("OpenDirTable: %v", err)
	}
	tiles, st := dirTestBatch(t, dirTestLines(0, 32))
	if err := dt.AppendTiles(tiles, st); err != nil {
		t.Fatalf("AppendTiles: %v", err)
	}
	accesses := dirTestAccesses()
	want := scanMultiset(dt, accesses)

	// Crash between segment write and manifest rename: the append
	// fails, the orphan segment stays on disk (nothing runs after a
	// real crash), and the committed generation is untouched.
	blockstore.Rename = func(oldpath, newpath string) error {
		if strings.HasSuffix(newpath, manifest.FileName) {
			return fmt.Errorf("injected crash before rename")
		}
		return os.Rename(oldpath, newpath)
	}
	tiles2, st2 := dirTestBatch(t, dirTestLines(1, 32))
	err = dt.AppendTiles(tiles2, st2)
	blockstore.Rename = os.Rename
	if err == nil {
		t.Fatal("AppendTiles succeeded despite failing rename")
	}
	dt.Close()

	orphans := 0
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if manifest.IsSegmentFileName(e.Name()) {
			orphans++
		}
	}
	if orphans != 2 {
		t.Fatalf("%d segment files before recovery, want 2 (1 live + 1 orphan)", orphans)
	}

	dt2, err := OpenDirTable("t", dir, nil, cfg, 4, false)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer dt2.Close()
	if dt2.NumSegments() != 1 || dt2.NumRows() != 32 {
		t.Fatalf("recovered table: %d segments, %d rows; want 1, 32", dt2.NumSegments(), dt2.NumRows())
	}
	sameMultiset(t, "recovered", scanMultiset(dt2, accesses), want)

	entries, _ = os.ReadDir(dir)
	for _, e := range entries {
		if manifest.IsSegmentFileName(e.Name()) && e.Name() != manifest.SegmentFileName(0) {
			t.Fatalf("orphan %s survived recovery", e.Name())
		}
	}
}

func TestDirTableBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 16
	dt, err := OpenDirTable("t", dir, nil, cfg, 2, true)
	if err != nil {
		t.Fatalf("OpenDirTable: %v", err)
	}
	for b := 0; b < 6; b++ {
		tiles, st := dirTestBatch(t, dirTestLines(b, 32))
		if err := dt.AppendTiles(tiles, st); err != nil {
			t.Fatalf("AppendTiles: %v", err)
		}
	}
	// Close waits out background compaction; afterwards the manifest
	// must be internally consistent and reopenable.
	if err := dt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	dt2, err := OpenDirTable("t", dir, nil, cfg, 2, false)
	if err != nil {
		t.Fatalf("reopen after background compaction: %v", err)
	}
	defer dt2.Close()
	if dt2.NumRows() != 6*32 {
		t.Fatalf("NumRows = %d, want %d", dt2.NumRows(), 6*32)
	}
}

func TestTierOf(t *testing.T) {
	cases := []struct {
		bytes int64
		tier  int
	}{
		{0, 0}, {1 << 10, 0}, {63 << 10, 0},
		{64 << 10, 1}, {255 << 10, 1},
		{256 << 10, 2}, {1 << 20, 3},
	}
	for _, c := range cases {
		if got := tierOf(c.bytes); got != c.tier {
			t.Errorf("tierOf(%d) = %d, want %d", c.bytes, got, c.tier)
		}
	}
}

func TestDirTableEmpty(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tbl")
	cfg := DefaultLoaderConfig()
	dt, err := OpenDirTable("t", dir, nil, cfg, 0, false)
	if err != nil {
		t.Fatalf("OpenDirTable: %v", err)
	}
	defer dt.Close()
	if dt.NumRows() != 0 || dt.NumSegments() != 0 {
		t.Fatalf("empty table: %d rows, %d segments", dt.NumRows(), dt.NumSegments())
	}
	if got := scanMultiset(dt, dirTestAccesses()); len(got) != 0 {
		t.Fatalf("empty table scan returned %d rows", len(got))
	}
	if rounds, err := dt.Compact(); err != nil || rounds != 0 {
		t.Fatalf("Compact on empty = %d, %v", rounds, err)
	}
	// The empty first generation is committed: a second open sees it.
	dt2, err := OpenDirTable("t", dir, nil, cfg, 0, false)
	if err != nil {
		t.Fatalf("reopen empty: %v", err)
	}
	dt2.Close()
}
