package storage

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bufpool"
	"repro/internal/expr"
	"repro/internal/vec"
)

// --- scheduler unit tests ---------------------------------------------------

// TestMorselRangeCoversAll: every index in [0, n) is visited exactly
// once, and worker ids stay dense in [0, workers), for a grid of
// shapes including n < workers, n == 0, and n not divisible by the
// morsel size.
func TestMorselRangeCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 257, 1000, 5000} {
		for _, workers := range []int{1, 2, 3, 8, 17} {
			seen := make([]int32, n)
			var mu sync.Mutex
			morselRange(n, workers, func(w, lo, hi int) {
				if w < 0 || w >= workers {
					t.Errorf("n=%d workers=%d: worker id %d out of range", n, workers, w)
				}
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d workers=%d: bad range [%d,%d)", n, workers, lo, hi)
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestMorselSizeFor(t *testing.T) {
	cases := []struct {
		n, workers, target, want int
	}{
		// Large input: the target stands.
		{1 << 20, 4, DefaultMorselRows, DefaultMorselRows},
		// Small input shrinks the morsel so each worker gets ~4 pulls.
		{32 << 10, 8, DefaultMorselRows, 32 << 10 / (8 * morselsPerWorker)},
		// ...but never below the floor.
		{1000, 8, DefaultMorselRows, minMorselRows},
		// Serial execution keeps the target (no point shrinking).
		{1000, 1, DefaultMorselRows, DefaultMorselRows},
		// target <= 0 falls back to the default.
		{1 << 20, 1, 0, DefaultMorselRows},
	}
	for _, c := range cases {
		if got := morselSizeFor(c.n, c.workers, c.target); got != c.want {
			t.Errorf("morselSizeFor(%d, %d, %d) = %d, want %d", c.n, c.workers, c.target, got, c.want)
		}
	}
}

// coveredRows replays a morsel list over the given per-tile row
// counts and returns how often each (tile, row) was covered.
func coveredRows(rowCounts []int, ms []morsel) [][]int {
	cover := make([][]int, len(rowCounts))
	for i, r := range rowCounts {
		cover[i] = make([]int, r)
	}
	for _, m := range ms {
		if m.wholeTiles() {
			for ti := m.tileLo; ti < m.tileHi; ti++ {
				for i := range cover[ti] {
					cover[ti][i]++
				}
			}
			continue
		}
		for i := m.rowLo; i < m.rowHi; i++ {
			cover[m.tileLo][i]++
		}
	}
	return cover
}

func checkCoverage(t *testing.T, label string, rowCounts []int, ms []morsel) {
	t.Helper()
	for ti, rows := range coveredRows(rowCounts, ms) {
		for i, c := range rows {
			if c != 1 {
				t.Fatalf("%s: tile %d row %d covered %d times", label, ti, i, c)
			}
		}
	}
}

func TestBuildTileMorselsBatchesTinyTiles(t *testing.T) {
	// 64 tiles of 8 rows with a 128-row target: consecutive tiles are
	// batched ~16 per morsel instead of 64 single-tile morsels.
	rowCounts := make([]int, 64)
	for i := range rowCounts {
		rowCounts[i] = 8
	}
	ms := buildTileMorsels(rowCounts, 1, 128, true)
	checkCoverage(t, "tiny tiles", rowCounts, ms)
	if len(ms) >= 16 {
		t.Fatalf("tiny tiles produced %d morsels, want batched (< 16)", len(ms))
	}
	for _, m := range ms {
		if !m.wholeTiles() {
			t.Fatalf("tiny tiles produced a row-split morsel %+v", m)
		}
	}
}

func TestBuildTileMorselsSplitsHugeTile(t *testing.T) {
	// One 10000-row tile among small ones, 512-row target: the big
	// tile is cut into row ranges so it cannot serialize the scan.
	rowCounts := []int{100, 10000, 100}
	ms := buildTileMorsels(rowCounts, 4, 512, true)
	checkCoverage(t, "split", rowCounts, ms)
	splits := 0
	for _, m := range ms {
		if !m.wholeTiles() {
			if m.tileLo != 1 || m.tileHi != 2 {
				t.Fatalf("row split on tile range [%d,%d), want tile 1", m.tileLo, m.tileHi)
			}
			splits++
		}
	}
	if splits < 2 {
		t.Fatalf("huge tile split into %d row morsels, want >= 2", splits)
	}

	// The batch path must never row-split (batches alias tile memory).
	for _, m := range buildTileMorsels(rowCounts, 4, 512, false) {
		if !m.wholeTiles() {
			t.Fatalf("split=false produced row morsel %+v", m)
		}
	}
	checkCoverage(t, "no-split", rowCounts, buildTileMorsels(rowCounts, 4, 512, false))
}

func TestBuildTileMorselsEmptyAndZeroTiles(t *testing.T) {
	if ms := buildTileMorsels(nil, 4, 512, true); len(ms) != 0 {
		t.Fatalf("no tiles produced %d morsels", len(ms))
	}
	// Zero-row tiles ride along in whole-tile runs without producing
	// empty standalone morsels.
	rowCounts := []int{0, 5, 0, 0, 7, 0}
	ms := buildTileMorsels(rowCounts, 2, 4, true)
	checkCoverage(t, "zero tiles", rowCounts, ms)
	tilesCovered := make([]bool, len(rowCounts))
	for _, m := range ms {
		for ti := m.tileLo; ti < m.tileHi; ti++ {
			tilesCovered[ti] = true
		}
	}
	if !reflect.DeepEqual(tilesCovered, []bool{true, true, true, true, true, true}) {
		t.Fatalf("tiles covered = %v", tilesCovered)
	}
}

// --- cross-worker scan conformance ------------------------------------------

// skewedDocs builds n documents with a mix of typed fields.
func skewedDocs(start, n int) [][]byte {
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		id := start + i
		out[i] = []byte(fmt.Sprintf(`{"id":%d,"grp":"g-%d","val":%g}`, id, id%7, float64(id)*0.5))
	}
	return out
}

// skewedTilesRel loads a deliberately skewed tiles relation: one huge
// tile (a big load with an oversized TileSize) concatenated with many
// tiny tiles, so static per-worker chunking would leave most workers
// idle behind the big tile.
func skewedTilesRel(t *testing.T) Relation {
	t.Helper()
	bigCfg := DefaultLoaderConfig()
	bigCfg.Tile.TileSize = 4096
	lb, _ := NewLoader(KindTiles, bigCfg)
	big, err := lb.Load("big", skewedDocs(0, 2500), 2)
	if err != nil {
		t.Fatal(err)
	}
	tinyCfg := DefaultLoaderConfig()
	tinyCfg.Tile.TileSize = 4
	lt, _ := NewLoader(KindTiles, tinyCfg)
	tiny, err := lt.Load("tiny", skewedDocs(2500, 500), 2)
	if err != nil {
		t.Fatal(err)
	}
	cc := Concat("skewed", big, tiny)
	if _, ok := cc.(*tilesRelation); !ok {
		t.Fatal("tiles+tiles concat did not merge natively")
	}
	return cc
}

func skewedAccesses() []Access {
	return []Access{
		NewAccess(expr.TBigInt, "id"),
		NewAccess(expr.TText, "grp"),
		NewAccess(expr.TFloat, "val"),
	}
}

// rowMultiset collects a row scan as a multiset.
func rowMultiset(rel Relation, accesses []Access, workers int) map[string]int {
	got := map[string]int{}
	var mu sync.Mutex
	rel.Scan(accesses, workers, func(w int, row []expr.Value) {
		key := ""
		for _, v := range row {
			key += v.String() + "\x1f"
		}
		mu.Lock()
		got[key]++
		mu.Unlock()
	})
	return got
}

// batchMultiset collects a batch scan as the same multiset.
func batchMultiset(bs BatchScanner, accesses []Access, workers int) map[string]int {
	got := map[string]int{}
	var mu sync.Mutex
	bs.ScanBatches(context.Background(), accesses, workers, func(w int, b *vec.Batch) {
		rows := make([]string, 0, b.Rows())
		emit := func(i int) {
			key := ""
			for ci := range b.Cols {
				key += b.Cols[ci].Value(i).String() + "\x1f"
			}
			rows = append(rows, key)
		}
		if b.Sel != nil {
			for _, i := range b.Sel {
				emit(int(i))
			}
		} else {
			for i := 0; i < b.Len; i++ {
				emit(i)
			}
		}
		mu.Lock()
		for _, k := range rows {
			got[k]++
		}
		mu.Unlock()
	}, nil)
	return got
}

var conformanceWorkers = []int{1, 2, 3, 8}

// TestMorselScanConformanceSkewedTiles: the skewed relation — and its
// segment-file round trip — returns the identical row multiset for
// every worker count, on both the row and batch scan paths.
func TestMorselScanConformanceSkewedTiles(t *testing.T) {
	rel := skewedTilesRel(t)
	accesses := skewedAccesses()
	want := rowMultiset(rel, accesses, 1)
	if len(want) != 3000 {
		t.Fatalf("ground truth has %d rows, want 3000", len(want))
	}

	check := func(label string, rel Relation) {
		t.Helper()
		for _, w := range conformanceWorkers {
			sameMultiset(t, fmt.Sprintf("%s rows workers=%d", label, w), rowMultiset(rel, accesses, w), want)
			if bs, ok := rel.(BatchScanner); ok {
				sameMultiset(t, fmt.Sprintf("%s batches workers=%d", label, w), batchMultiset(bs, accesses, w), want)
			}
		}
	}
	check("memory", rel)

	segPath := filepath.Join(t.TempDir(), "skewed.seg")
	if err := WriteSegmentFile(segPath, rel); err != nil {
		t.Fatal(err)
	}
	srel, err := OpenSegmentFile("skewed", segPath, bufpool.New(0), DefaultLoaderConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srel.Close()
	check("segment", srel)
	if err := srel.Err(); err != nil {
		t.Fatalf("segment scan error: %v", err)
	}
}

// TestMorselScanConformanceAllFormats: every non-tile format serves
// the identical multiset across worker counts (their scans run
// through morselRange rather than tile morsels).
func TestMorselScanConformanceAllFormats(t *testing.T) {
	data := skewedDocs(0, 600)
	accesses := skewedAccesses()
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 16
	for _, k := range allKinds() {
		l, _ := NewLoader(k, cfg)
		rel, err := l.Load(string(k), data, 2)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		want := rowMultiset(rel, accesses, 1)
		for _, w := range conformanceWorkers {
			sameMultiset(t, fmt.Sprintf("%s workers=%d", k, w), rowMultiset(rel, accesses, w), want)
		}
	}
}

// TestMorselScanConformanceDirTable: a multi-segment DirTable with
// skewed segment sizes (one big flush + several tiny ones) feeds one
// global morsel stream; results must not depend on the worker count,
// before or after compaction.
func TestMorselScanConformanceDirTable(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 16
	dt, err := OpenDirTable("t", dir, nil, cfg, 4, false)
	if err != nil {
		t.Fatalf("OpenDirTable: %v", err)
	}
	defer dt.Close()

	appendBatch := func(start, n int) {
		t.Helper()
		docs, err := parseAll(skewedDocs(start, n), 2)
		if err != nil {
			t.Fatal(err)
		}
		rel := BuildTiles("batch", docs, cfg, 2, nil)
		if err := dt.AppendTiles(rel.(*tilesRelation).Tiles(), rel.Stats()); err != nil {
			t.Fatalf("AppendTiles: %v", err)
		}
	}
	appendBatch(0, 800) // one big segment
	next := 800
	for i := 0; i < 6; i++ { // six tiny segments
		appendBatch(next, 24)
		next += 24
	}

	accesses := skewedAccesses()
	want := rowMultiset(dt, accesses, 1)
	if len(want) != next {
		t.Fatalf("ground truth has %d rows, want %d", len(want), next)
	}
	for _, w := range conformanceWorkers {
		sameMultiset(t, fmt.Sprintf("dirtable workers=%d", w), rowMultiset(dt, accesses, w), want)
	}
	if _, err := dt.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for _, w := range conformanceWorkers {
		sameMultiset(t, fmt.Sprintf("compacted workers=%d", w), rowMultiset(dt, accesses, w), want)
	}
	if err := dt.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
}
