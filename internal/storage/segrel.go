package storage

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/blockstore"
	"repro/internal/bufpool"
	"repro/internal/column"
	"repro/internal/expr"
	"repro/internal/jsonb"
	"repro/internal/keypath"
	"repro/internal/obs"
	"repro/internal/segment"
	"repro/internal/stats"
	"repro/internal/tile"
)

// segRelation is the disk-backed counterpart of tilesRelation: a
// relation whose tiles live in a segment file and whose scans
// materialize only the blocks they touch, through the buffer pool.
// Tile skipping, access resolution, and result values are identical
// to the in-memory relation (both run the shared scan core); the
// difference is purely physical — lazy, cached, checksummed I/O.
type segRelation struct {
	name    string
	r       *segment.Reader
	pool    *bufpool.Pool
	ownPool bool
	numRows int
	cfg     scanConfig

	mu            sync.Mutex
	err           error // first degraded-scan error (corrupt block served as NULLs)
	lastEvictions int64 // pool evictions already forwarded to the registry
}

var (
	_ Relation     = (*segRelation)(nil)
	_ StatsScanner = (*segRelation)(nil)
	_ BatchScanner = (*segRelation)(nil)
	_ TileCounter  = (*segRelation)(nil)
)

// WriteSegmentFile persists a tile-backed relation (the Tiles format)
// as a segment file. Relations of other formats have no tiles to
// persist and are rejected.
func WriteSegmentFile(path string, rel Relation) error {
	ti, ok := rel.(TileIntrospector)
	if !ok {
		return fmt.Errorf("storage: relation %q (%T) is not tile-backed; only the Tiles format persists as a segment", rel.Name(), rel)
	}
	return segment.WriteFile(path, ti.Tiles(), rel.Stats())
}

// OpenSegmentFile opens a segment as a disk-backed relation. All
// block reads flow through pool (a private default-capacity pool is
// created when nil — pass a shared pool to bound memory across many
// open segments). cfg supplies the scan settings (tile skipping,
// array-slot caps); zero values take the defaults.
func OpenSegmentFile(name, path string, pool *bufpool.Pool, cfg LoaderConfig) (*segRelation, error) {
	ownPool := pool == nil
	if ownPool {
		pool = bufpool.New(0)
	}
	r, err := segment.Open(path, pool)
	if err != nil {
		return nil, err
	}
	return newSegRelation(name, r, pool, ownPool, cfg), nil
}

// OpenSegmentStore opens the named segment object of a block store as
// a disk-backed relation — the storage/compute-separated form of
// OpenSegmentFile. The caller keeps ownership of the store.
func OpenSegmentStore(name string, store blockstore.Store, object string, pool *bufpool.Pool, cfg LoaderConfig) (*segRelation, error) {
	ownPool := pool == nil
	if ownPool {
		pool = bufpool.New(0)
	}
	r, err := segment.OpenStore(store, object, pool)
	if err != nil {
		return nil, err
	}
	return newSegRelation(name, r, pool, ownPool, cfg), nil
}

func newSegRelation(name string, r *segment.Reader, pool *bufpool.Pool, ownPool bool, cfg LoaderConfig) *segRelation {
	r.SetCoalesceGap(cfg.StoreGapBytes)
	maxSlots := cfg.Tile.MaxArraySlots
	if maxSlots <= 0 {
		maxSlots = keypath.DefaultMaxArraySlots
	}
	return &segRelation{
		name:    name,
		r:       r,
		pool:    pool,
		ownPool: ownPool,
		numRows: r.NumRows(),
		cfg:     scanCfgOf(cfg, maxSlots),
	}
}

func (r *segRelation) Name() string             { return r.name }
func (r *segRelation) NumRows() int             { return r.numRows }
func (r *segRelation) Stats() *stats.TableStats { return r.r.Stats() }
func (r *segRelation) NumTiles() int            { return r.r.NumTiles() }

// SizeBytes is the on-disk footprint of the segment file.
func (r *segRelation) SizeBytes() int { return int(r.r.FileSize()) }

// Close releases the underlying file and drops its cached blocks.
func (r *segRelation) Close() error { return r.r.Close() }

// Pool exposes the buffer pool serving this relation (diagnostics,
// EXPLAIN ANALYZE cache summaries).
func (r *segRelation) Pool() *bufpool.Pool { return r.pool }

// Err returns the first block-level error any scan encountered.
// Scans degrade corrupt or unreadable blocks to NULL values rather
// than panicking mid-query; callers that must distinguish "NULL
// because absent" from "NULL because unreadable" check Err after the
// scan.
func (r *segRelation) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *segRelation) recordErr(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

func (r *segRelation) Scan(accesses []Access, workers int, emit EmitFunc) {
	r.ScanWithStats(context.Background(), accesses, workers, emit, nil)
}

// ScanWithStats runs the shared row-scan core over lazy tile views.
func (r *segRelation) ScanWithStats(ctx context.Context, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats) {
	scanRowsCore(ctx, r, accesses, workers, emit, st)
	r.flushPoolCounters(st)
}

// ScanBatches runs the shared batch-scan core over lazy tile views.
func (r *segRelation) ScanBatches(ctx context.Context, accesses []Access, workers int, emit BatchEmitFunc, st *obs.ScanStats) {
	scanBatchesCore(ctx, r, accesses, workers, emit, st)
	r.flushPoolCounters(st)
}

// flushPoolCounters forwards pool-wide eviction counts to the global
// registry (evictions are a pool property, not a per-scan one, so
// they are snapshotted rather than accumulated per worker).
func (r *segRelation) flushPoolCounters(_ *obs.ScanStats) {
	ps := r.pool.Stats()
	// The registry counter tracks the high-water total across all
	// pools; add only the delta since the last flush.
	r.mu.Lock()
	delta := ps.Evictions - r.lastEvictions
	r.lastEvictions = ps.Evictions
	r.mu.Unlock()
	obs.BufpoolEvictions.Add(delta)
	updateHitRatioGauge()
}

// updateHitRatioGauge refreshes the process-wide pool hit-ratio gauge
// from the global hit/miss counters (exact across all pools).
func updateHitRatioGauge() {
	hits, misses := obs.BufpoolHits.Load(), obs.BufpoolMisses.Load()
	if total := hits + misses; total > 0 {
		obs.BufpoolHitRatio.Set(float64(hits) / float64(total))
	}
}

// scanSource implementation.
func (r *segRelation) numScanTiles() int      { return r.r.NumTiles() }
func (r *segRelation) scanConfig() scanConfig { return r.cfg }

func (r *segRelation) openScanTile(ti int, cnt *scanCounters) scanTile {
	return &segTileView{rel: r, ti: ti, meta: r.r.Tile(ti), cnt: cnt}
}

// segTileView is a per-scan lazy view of one tile. Metadata queries
// (row count, skip checks, column resolution) answer from the footer;
// column data and fallback documents load through the buffer pool on
// first access and stay cached in the view for the rest of the scan.
// Views are per-worker and never shared, so no locking.
type segTileView struct {
	rel  *segRelation
	ti   int
	meta *segment.TileMeta
	cnt  *scanCounters

	cols   []tile.ColumnInfo // Col nil until loaded
	loaded []bool
	docs   [][]byte
	docsOK bool
}

func (v *segTileView) NumRows() int                     { return v.meta.Rows }
func (v *segTileView) MayContainPath(path string) bool  { return v.meta.MayContainPath(path) }
func (v *segTileView) ColumnsForPath(path string) []int { return v.meta.ColumnsForPath(path) }

func (v *segTileView) account(info segment.ReadInfo) {
	if v.cnt == nil {
		return
	}
	if info.Hit {
		switch {
		case info.Prefetched:
			// First access to an async-readahead block: the prefetch
			// pass accounted the miss; this is the readahead paying off.
			v.cnt.prefetchHits++
		case info.Warmed:
			// First access to a block this scan's own pre-scan fetch
			// inserted: the fetch accounted the miss, so counting a hit
			// here would make every cold scan look half-cached.
		default:
			v.cnt.poolHits++
		}
	} else {
		v.cnt.poolMisses++
		v.cnt.blocksRead++
		v.cnt.blockBytes += int64(info.StoredBytes)
		v.cnt.rangeReads += int64(info.RangeReads)
		v.cnt.rangeBytes += int64(info.StoredBytes)
		v.cnt.retries += int64(info.Retries)
	}
}

// prepare makes every block this scan can touch on the tile
// pool-resident in one coalesced pass. The scan loop calls it
// synchronously after the skip check (so a surviving tile costs one
// or two ranged reads instead of one per block) and asynchronously
// from the readahead path (prefetched=true) while the previous tile
// is still scanning. Idempotent: already-resident blocks are skipped,
// so the demand accesses that follow are pool hits.
func (v *segTileView) prepare(accesses []Access, prefetched bool) {
	refs := v.neededRefs(accesses)
	if len(refs) == 0 {
		return
	}
	fi := v.rel.r.FetchBlocks(v.cnt.tenant, refs, prefetched)
	v.cnt.rangeReads += fi.RangeReads
	v.cnt.rangeBytes += fi.BytesRead
	v.cnt.coalesced += fi.Coalesced
	v.cnt.retries += fi.Retries
	v.cnt.blocksRead += fi.Blocks
	v.cnt.blockBytes += fi.BytesRead
	v.cnt.poolMisses += fi.Blocks
}

// neededRefs computes the conservative set of blocks the access list
// can touch on this tile, mirroring resolveTileAccess's decision tree
// from metadata alone: column (and dictionary) blocks for every column
// a path resolves to, plus the fallback documents whenever any access
// may read them (JSON-typed accesses, capped array paths, paths with
// no extracted column, and ambiguous multi-column paths).
func (v *segTileView) neededRefs(accesses []Access) []segment.BlockRef {
	maxSlots := v.rel.cfg.maxSlots
	var refs []segment.BlockRef
	needDocs := false
	for _, a := range accesses {
		if a.Type == expr.TJSON {
			needDocs = needDocs || mayContainTile(v, a, maxSlots)
			continue
		}
		if _, capped := cappedPrefix(a.Path, maxSlots); capped {
			needDocs = needDocs || mayContainTile(v, a, maxSlots)
			continue
		}
		cols := v.meta.ColumnsForPath(a.PathEnc)
		if len(cols) == 0 {
			needDocs = needDocs || mayContainTile(v, a, maxSlots)
			continue
		}
		if len(cols) > 1 {
			// Ambiguous typing falls back on per-row NULLs.
			needDocs = true
		}
		for _, ci := range cols {
			cm := &v.meta.Columns[ci]
			refs = append(refs, cm.Block)
			if cm.HasDict {
				refs = append(refs, cm.Dict)
			}
		}
	}
	if needDocs {
		refs = append(refs, v.meta.Docs)
	}
	return refs
}

// Column lazily materializes one extracted column. A block that
// fails its checksum or decode degrades to an all-NULL column of the
// declared type — the scan completes with NULLs instead of crashing
// mid-query — and the error is recorded on the relation.
func (v *segTileView) Column(idx int) *tile.ColumnInfo {
	if v.cols == nil {
		v.cols = make([]tile.ColumnInfo, len(v.meta.Columns))
		v.loaded = make([]bool, len(v.meta.Columns))
	}
	if !v.loaded[idx] {
		v.loaded[idx] = true
		cm := &v.meta.Columns[idx]
		col, infos, err := v.rel.r.ColumnT(v.cnt.tenant, v.ti, idx)
		for _, info := range infos {
			v.account(info)
		}
		if err != nil {
			v.rel.recordErr(err)
			col = nullColumn(cm.StorageType, v.meta.Rows)
		}
		v.cols[idx] = tile.ColumnInfo{
			Path:            cm.Path,
			MinedType:       cm.MinedType,
			StorageType:     cm.StorageType,
			HasTypeOutliers: cm.HasTypeOutliers,
			Col:             col,
		}
	}
	return &v.cols[idx]
}

// Raw lazily loads the tile's fallback documents; an unreadable docs
// block degrades every fallback access to NULL (empty document).
func (v *segTileView) Raw(i int) jsonb.Doc {
	if !v.docsOK {
		v.docsOK = true
		docs, info, err := v.rel.r.DocsT(v.cnt.tenant, v.ti)
		v.account(info)
		if err != nil {
			v.rel.recordErr(err)
			docs = make([][]byte, v.meta.Rows)
		}
		v.docs = docs
	}
	return jsonb.NewDoc(v.docs[i])
}

// nullColumn builds an all-NULL column of n rows (degraded reads).
func nullColumn(t keypath.ValueType, n int) *column.Column {
	c := column.New(t)
	for i := 0; i < n; i++ {
		c.AppendNull()
	}
	return c
}
