package storage

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// --- cancellation behavior of the morsel scheduler --------------------------

// TestRunMorselsCancelBounded: cancelling the context mid-scan stops
// claiming promptly. The bound is one in-flight morsel per
// participant (the caller plus each pool helper), because the context
// is checked before every claim but never inside fn.
func TestRunMorselsCancelBounded(t *testing.T) {
	const n = 100
	morsels := make([]morsel, n)
	for i := range morsels {
		morsels[i] = morsel{tileLo: i, tileHi: i + 1}
	}
	workers := 4
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	runMorsels(ctx, morsels, workers, func(w int, m morsel) {
		ran.Add(1)
		cancel() // first morsel cancels everyone
	})
	// Each of the at-most-`workers` participants can have claimed one
	// morsel before observing the cancel.
	if got := ran.Load(); got > int64(workers) {
		t.Fatalf("ran %d morsels after cancel, want <= %d (one in-flight per worker)", got, workers)
	}
	if got := ran.Load(); got == 0 {
		t.Fatal("no morsel ran at all")
	}
}

// TestRunMorselsPreCancelled: an already-cancelled context runs
// nothing.
func TestRunMorselsPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	morsels := []morsel{{tileLo: 0, tileHi: 1}, {tileLo: 1, tileHi: 2}}
	runMorsels(ctx, morsels, 4, func(w int, m morsel) { ran.Add(1) })
	if got := ran.Load(); got != 0 {
		t.Fatalf("pre-cancelled context ran %d morsels, want 0", got)
	}
	// Serial path too.
	runMorsels(ctx, morsels, 1, func(w int, m morsel) { ran.Add(1) })
	if got := ran.Load(); got != 0 {
		t.Fatalf("pre-cancelled context ran %d morsels serially, want 0", got)
	}
}

// TestMorselRangeCtxCancelSerial: the serial path (workers == 1)
// checks the context between morsels.
func TestMorselRangeCtxCancelSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	morselRangeCtx(ctx, 10*DefaultMorselRows, 1, func(w, lo, hi int) {
		calls++
		cancel()
	})
	if calls != 1 {
		t.Fatalf("serial scan ran %d morsels after first-call cancel, want 1", calls)
	}
}

// TestRunMorselsCompletesWithoutCancel: a context that is never
// cancelled still covers every morsel exactly once (regression guard:
// the ctx checks must not skip work).
func TestRunMorselsCompletesWithoutCancel(t *testing.T) {
	const n = 257
	morsels := make([]morsel, n)
	for i := range morsels {
		morsels[i] = morsel{tileLo: i, tileHi: i + 1}
	}
	seen := make([]int32, n)
	var mu sync.Mutex
	runMorsels(context.Background(), morsels, 3, func(w int, m morsel) {
		mu.Lock()
		seen[m.tileLo]++
		mu.Unlock()
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("morsel %d run %d times, want 1", i, c)
		}
	}
}
