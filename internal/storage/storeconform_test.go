package storage

// Storage/compute-separation conformance: the same segments answer
// byte-identical query results whether they live on the local
// filesystem, in memory, or behind the latency/failure-injecting
// object-store fake — on the row and batch paths, serial and parallel,
// across mid-scan compaction, and under injected transient failures.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/expr"
	"repro/internal/obs"
)

// storeConformTable builds the same multi-segment table on a store.
func storeConformTable(t *testing.T, store blockstore.Store, batches, rows int) *DirTable {
	t.Helper()
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 16
	dt, err := OpenDirStore("t", store, nil, cfg, 4, false)
	if err != nil {
		t.Fatalf("OpenDirStore(%s): %v", store.Label(), err)
	}
	for b := 0; b < batches; b++ {
		tiles, st := dirTestBatch(t, dirTestLines(b, rows))
		if err := dt.AppendTiles(tiles, st); err != nil {
			t.Fatalf("AppendTiles(%s) %d: %v", store.Label(), b, err)
		}
	}
	return dt
}

func TestStoreConformanceAcrossBackends(t *testing.T) {
	const batches, rows = 4, 48
	// Ground truth from the in-memory relation over the same lines.
	var all []string
	for b := 0; b < batches; b++ {
		all = append(all, dirTestLines(b, rows)...)
	}
	raw := make([][]byte, len(all))
	for i, l := range all {
		raw[i] = []byte(l)
	}
	docs, err := parseAll(raw, 2)
	if err != nil {
		t.Fatalf("parseAll: %v", err)
	}
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 16
	mem := BuildTiles("mem", docs, cfg, 2, nil)
	accesses := dirTestAccesses()

	fsStore, err := blockstore.NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fsStore.Close()
	fake := blockstore.NewFakeS3(nil, blockstore.FakeS3Config{Latency: 100 * time.Microsecond})
	stores := []blockstore.Store{fsStore, blockstore.NewMem(), fake}

	for _, workers := range []int{1, 4} {
		want := rowMultiset(mem, accesses, workers)
		wantBatch := batchMultiset(mem.(BatchScanner), accesses, workers)
		for _, store := range stores {
			dt := storeConformTable(t, store, batches, rows)
			label := store.Label()
			sameMultiset(t, label+" rows", rowMultiset(dt, accesses, workers), want)
			sameMultiset(t, label+" batches", batchMultiset(dt, accesses, workers), wantBatch)
			if err := dt.Err(); err != nil {
				t.Fatalf("%s: Err: %v", label, err)
			}
			if err := dt.Close(); err != nil {
				t.Fatalf("%s: Close: %v", label, err)
			}
			// The store outlives the table: reopening serves the same
			// committed generation (read-after-commit visibility).
			dt2, err := OpenDirStore("t", store, nil, cfg, 4, false)
			if err != nil {
				t.Fatalf("reopen %s: %v", label, err)
			}
			sameMultiset(t, label+" reopened", rowMultiset(dt2, accesses, workers), want)
			dt2.Close()
			// Fresh namespace for the next workers round.
			for _, name := range mustList(t, store) {
				store.Delete(name)
			}
		}
	}
}

func mustList(t *testing.T, s blockstore.Store) []string {
	t.Helper()
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestStoreConformanceMidScanCompaction compacts the table while a
// scan over the pre-compaction generation is mid-flight: the scan's
// pinned segments stay readable (and are deleted only at the last
// release), so the result multiset is unaffected.
func TestStoreConformanceMidScanCompaction(t *testing.T) {
	const batches, rows = 6, 48
	fake := blockstore.NewFakeS3(nil, blockstore.FakeS3Config{})
	dt := storeConformTable(t, fake, batches, rows)
	defer dt.Close()
	accesses := dirTestAccesses()
	want := scanMultiset(dt, accesses)

	got := map[string]int{}
	var mu sync.Mutex
	var once sync.Once
	dt.Scan(accesses, 1, func(w int, row []expr.Value) {
		once.Do(func() {
			// Mid-scan: fold the segments this very scan is reading.
			if rounds, err := dt.Compact(); err != nil || rounds == 0 {
				t.Errorf("mid-scan Compact = %d rounds, %v", rounds, err)
			}
		})
		key := ""
		for _, v := range row {
			key += v.String() + "|"
		}
		mu.Lock()
		got[key]++
		mu.Unlock()
	})
	sameMultiset(t, "mid-scan compaction", got, map[string]int(want))
	if err := dt.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if dt.NumSegments() >= batches {
		t.Fatalf("NumSegments = %d after compaction, want < %d", dt.NumSegments(), batches)
	}
	sameMultiset(t, "post-compaction", scanMultiset(dt, accesses), want)
}

// TestStoreConformanceTransientFailures scans through a store that
// fails every few range reads with transient errors: the retry layer
// absorbs them (no wrong answers, no degraded-scan errors) and the
// retries surface in the per-scan statistics.
func TestStoreConformanceTransientFailures(t *testing.T) {
	const batches, rows = 3, 48
	clean := blockstore.NewFakeS3(nil, blockstore.FakeS3Config{})
	dt := storeConformTable(t, clean, batches, rows)
	accesses := dirTestAccesses()
	want := scanMultiset(dt, accesses)
	dt.Close()

	// Same bytes behind a failing fake: every 4th range read errors.
	failing := blockstore.NewFakeS3(clean.Inner(), blockstore.FakeS3Config{FailEveryN: 4})
	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 16

	for _, workers := range []int{1, 4} {
		// A fresh open per round keeps the buffer pool cold, so every
		// round actually exercises the failing read path.
		dt2, err := OpenDirStore("t", failing, nil, cfg, 4, false)
		if err != nil {
			t.Fatalf("OpenDirStore(failing): %v", err)
		}
		var st obs.ScanStats
		got := map[string]int{}
		var mu sync.Mutex
		dt2.ScanWithStats(context.Background(), accesses, workers, func(w int, row []expr.Value) {
			key := ""
			for _, v := range row {
				key += v.String() + "|"
			}
			mu.Lock()
			got[key]++
			mu.Unlock()
		}, &st)
		sameMultiset(t, "with transient failures", got, want)
		if err := dt2.Err(); err != nil {
			t.Fatalf("workers=%d: scan degraded despite retries: %v", workers, err)
		}
		if st.StoreRetries.Load() == 0 {
			t.Errorf("workers=%d: no retries recorded under FailEveryN=4", workers)
		}
		if st.StoreRangeReads.Load() <= st.StoreRetries.Load() {
			t.Errorf("workers=%d: range reads %d not above retries %d",
				workers, st.StoreRangeReads.Load(), st.StoreRetries.Load())
		}
		if err := dt2.Close(); err != nil {
			t.Fatalf("workers=%d: Close: %v", workers, err)
		}
	}
	if failing.InjectedFailures() == 0 {
		t.Error("fake injected no failures")
	}
}
