package storage

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sched"
)

// Morsel-driven parallel execution (Leis et al., "Morsel-Driven
// Parallelism"): instead of statically splitting an input range into
// one chunk per worker, the input is cut into many small morsels that
// all workers pull from one shared queue. A worker that finishes its
// morsel immediately grabs the next, so skewed tile sizes, skipped
// tiles, and workers > morsels no longer leave cores idle behind the
// slowest static chunk. The queue is a prebuilt slice consumed with a
// single atomic fetch-add per morsel — no locks, no channels.
//
// Two properties matter for the query service on top:
//
//   - Cancellation: the queue checks ctx before every morsel claim, so
//     a cancelled query stops within one morsel (~32K rows) on every
//     worker, releases its tile views, and lets segment pins drop.
//   - Shared workers: parallel drains run inline on the caller plus
//     helpers borrowed from the process-wide sched pool, so N
//     concurrent queries share the machine's cores instead of each
//     spawning its own `workers` goroutines. A saturated pool just
//     means fewer helpers — the inline drain always makes progress.

// DefaultMorselRows is the target number of rows per morsel when the
// caller does not configure one (Options.MorselRows). The paper-style
// sweet spot is 16–64K rows: large enough that per-morsel setup
// (tile access resolution, scratch checkout) is amortized, small
// enough that a scan produces several morsels per worker.
const DefaultMorselRows = 32 << 10

// minMorselRows floors the adaptive morsel size so tiny inputs are
// not shredded into per-row morsels whose scheduling overhead would
// dominate the work.
const minMorselRows = 256

// morselsPerWorker is how many morsels per worker the adaptive sizing
// aims for at minimum — enough queue slack to absorb skew without a
// worker idling behind one outsized chunk.
const morselsPerWorker = 4

// morsel is one unit of schedulable scan work. For tile sources it
// covers the tile range [tileLo, tileHi); when rowHi >= 0 it instead
// covers rows [rowLo, rowHi) of the single tile tileLo (an oversized
// tile split into row ranges). Flat (tile-less) sources use only
// [rowLo, rowHi) as an item range.
type morsel struct {
	tileLo, tileHi int
	rowLo, rowHi   int
}

// wholeTiles reports whether the morsel covers whole tiles (no row
// split).
func (m morsel) wholeTiles() bool { return m.rowHi < 0 }

// morselSizeFor adapts the target morsel size to the input: aim for
// `target` rows, but shrink (down to minMorselRows) when the input is
// so small that target-sized morsels would not give every worker
// morselsPerWorker pulls.
func morselSizeFor(n, workers, target int) int {
	if target <= 0 {
		target = DefaultMorselRows
	}
	if workers > 1 {
		if per := n / (workers * morselsPerWorker); per < target {
			target = per
		}
	}
	if target < minMorselRows {
		target = minMorselRows
	}
	return target
}

// drainGate coordinates the inline drain with pool helpers: helpers
// register on start and are refused once the drain is closed, so
// runMorsels waits only for helpers that actually began working — a
// helper still queued behind other scans' tasks when the queue runs
// dry becomes a no-op instead of a latency tax.
type drainGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	active int
	closed bool
}

func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.active++
	return true
}

func (g *drainGate) exit() {
	g.mu.Lock()
	g.active--
	if g.active == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// closeAndWait refuses new helpers and waits out the active ones.
func (g *drainGate) closeAndWait() {
	g.mu.Lock()
	g.closed = true
	for g.active > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// runMorsels drives fn over the morsel queue with up to `workers`
// participants: the calling goroutine plus helpers borrowed from the
// shared scheduler pool. Worker ids passed to fn are dense in
// [0, workers). ctx is checked before every morsel claim, bounding
// cancellation latency to one morsel per participant. The
// morsels_dispatched / morsel_queue_waits counters and the per-scan
// worker-skew histogram are maintained here, once per queue drain.
func runMorsels(ctx context.Context, morsels []morsel, workers int, fn func(worker int, m morsel)) {
	n := len(morsels)
	if n == 0 || ctx.Err() != nil {
		return
	}
	if workers < 1 {
		workers = 1
	}
	obs.MorselsDispatched.Add(int64(n))
	if workers > n {
		// Surplus workers would pull from an already-dry queue.
		obs.MorselQueueWaits.Add(int64(workers - n))
		workers = n
	}
	if workers == 1 {
		for _, m := range morsels {
			if ctx.Err() != nil {
				return
			}
			fn(0, m)
		}
		return
	}
	var next atomic.Int64
	counts := make([]atomic.Int64, workers)
	drain := func(w int) {
		var got int64
		for ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				break
			}
			fn(w, morsels[i])
			got++
		}
		if got == 0 {
			obs.MorselQueueWaits.Inc()
		}
		counts[w].Store(got)
	}
	gate := &drainGate{}
	gate.cond = sync.NewCond(&gate.mu)
	participants := 1
	for w := 1; w < workers; w++ {
		w := w
		ok := sched.Shared.TrySubmit(func() {
			// A helper arriving after the drain closed does nothing:
			// its morsels were already claimed by the others.
			if !gate.enter() {
				obs.SchedHelpersLate.Inc()
				return
			}
			defer gate.exit()
			drain(w)
		})
		if !ok {
			break // pool saturated: run with fewer helpers
		}
		participants++
	}
	drain(0)
	gate.closeAndWait()
	var maxGot, total int64
	for w := 0; w < participants; w++ {
		c := counts[w].Load()
		total += c
		if c > maxGot {
			maxGot = c
		}
	}
	if total > 0 {
		// max/mean morsels per participant: 1.0 = perfectly balanced.
		obs.MorselWorkerSkew.Observe(float64(maxGot) * float64(participants) / float64(total))
	}
}

// morselRange is the drop-in replacement for static range splitting
// over n uniform items: fn(worker, lo, hi) is invoked once per morsel
// of adaptively-sized item ranges that workers pull dynamically.
func morselRange(n, workers int, fn func(worker, lo, hi int)) {
	morselRangeCtx(context.Background(), n, workers, fn)
}

// morselRangeCtx is morselRange with a per-request context: scan-path
// ranges over flat (tile-less) sources thread the query context here
// so cancellation stops them at the next morsel claim.
func morselRangeCtx(ctx context.Context, n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	size := morselSizeFor(n, workers, DefaultMorselRows)
	ms := make([]morsel, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		ms = append(ms, morsel{rowLo: lo, rowHi: hi})
	}
	runMorsels(ctx, ms, workers, func(w int, m morsel) { fn(w, m.rowLo, m.rowHi) })
}

// morselRangeSized is morselRange with an explicit morsel size — size
// 1 makes every item its own morsel (coarse units such as tile
// partitions, where one item is already thousands of documents).
// Load-path ranges have no per-request context; they run under
// Background.
func morselRangeSized(n, workers, size int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if size < 1 {
		size = 1
	}
	ms := make([]morsel, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		ms = append(ms, morsel{rowLo: lo, rowHi: hi})
	}
	runMorsels(context.Background(), ms, workers, func(w int, m morsel) { fn(w, m.rowLo, m.rowHi) })
}

// buildTileMorsels cuts a tile sequence into morsels of ~size rows:
// consecutive tiny tiles are batched into one morsel, and — when
// split is set (row path) — a tile of at least twice the target is
// cut into row-range morsels so one giant tile cannot serialize the
// scan. The batch path keeps tile granularity (a batch aliases one
// tile's column slices), so it passes split=false.
func buildTileMorsels(rowCounts []int, workers, target int, split bool) []morsel {
	total := 0
	for _, r := range rowCounts {
		total += r
	}
	size := morselSizeFor(total, workers, target)
	ms := make([]morsel, 0, workers*morselsPerWorker)
	runLo, runRows := 0, 0
	flush := func(hi int) {
		if runLo < hi {
			ms = append(ms, morsel{tileLo: runLo, tileHi: hi, rowLo: 0, rowHi: -1})
		}
	}
	for ti, r := range rowCounts {
		if split && r >= 2*size {
			flush(ti)
			parts := (r + size - 1) / size
			per := (r + parts - 1) / parts
			for lo := 0; lo < r; lo += per {
				hi := lo + per
				if hi > r {
					hi = r
				}
				ms = append(ms, morsel{tileLo: ti, tileHi: ti + 1, rowLo: lo, rowHi: hi})
			}
			runLo, runRows = ti+1, 0
			continue
		}
		runRows += r
		if runRows >= size {
			flush(ti + 1)
			runLo, runRows = ti+1, 0
		}
	}
	flush(len(rowCounts))
	return ms
}
