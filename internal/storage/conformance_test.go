package storage

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bufpool"
	"repro/internal/expr"
	"repro/internal/jsonb"
	"repro/internal/jsongen"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/segment"
	"repro/internal/vec"
)

// Cross-format conformance: for randomly generated document sets and
// randomly chosen accesses, every format's scan must agree with the
// ground truth computed directly on the parsed value trees. This is
// the strongest correctness property the formats share — whatever the
// layout (tiles, global columns, stripes, raw text), the answers are
// identical.
func TestConformanceRandomDocsAllFormats(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for trial := 0; trial < 12; trial++ {
		nDocs := 16 + r.Intn(80)
		docs := make([]jsonvalue.Value, nDocs)
		lines := make([][]byte, nDocs)
		for i := range docs {
			docs[i] = jsongen.RandomObject(r, 3)
			lines[i] = jsontext.Serialize(docs[i])
		}

		// Sample accesses from the observed paths, plus one absent path.
		type cand struct {
			path keypath.Path
			t    expr.SQLType
		}
		var cands []cand
		seen := map[string]bool{}
		for _, d := range docs {
			keypath.Collect(d, 4, func(p keypath.Path, vt keypath.ValueType, v jsonvalue.Value) {
				enc := p.Encode()
				if seen[enc] {
					return
				}
				seen[enc] = true
				var st expr.SQLType
				switch vt {
				case keypath.TypeBigInt:
					st = expr.TBigInt
				case keypath.TypeDouble:
					st = expr.TFloat
				case keypath.TypeBool:
					st = expr.TBool
				default:
					st = expr.TText
				}
				cands = append(cands, cand{path: p, t: st})
			})
		}
		if len(cands) == 0 {
			continue
		}
		r.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		if len(cands) > 5 {
			cands = cands[:5]
		}
		cands = append(cands, cand{path: keypath.NewPath("definitely", "absent"), t: expr.TBigInt})

		accesses := make([]Access, len(cands))
		for i, c := range cands {
			accesses[i] = NewAccessPath(c.t, c.path)
		}

		// Ground truth straight from the value trees. Container-valued
		// text cells are canonicalized (sorted keys): the binary format
		// deliberately does not preserve input key order (§5), so a ->>
		// rendering of an object differs textually, not semantically,
		// between the raw-text and binary formats.
		truth := make([][]string, nDocs)
		for i, d := range docs {
			row := make([]string, len(accesses))
			for ai, a := range accesses {
				row[ai] = normalizeCell(valueAccess(d, a.Path, a.Type).String())
			}
			truth[i] = row
		}
		truthSet := map[string]int{}
		for _, row := range truth {
			truthSet[joinRow(row)]++
		}

		cfg := DefaultLoaderConfig()
		cfg.Tile.TileSize = 16
		for _, k := range allKinds() {
			l, _ := NewLoader(k, cfg)
			rel, err := l.Load("conf", lines, 2)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, k, err)
			}
			verifyConformance(t, trial, string(k), rel, accesses, truthSet)

			// The Tiles relation additionally round-trips through a
			// segment file: the reopened disk-backed relation must pass
			// the identical row and batch checks.
			if k != KindTiles {
				continue
			}
			segPath := filepath.Join(t.TempDir(), "conf.seg")
			if err := WriteSegmentFile(segPath, rel); err != nil {
				t.Fatalf("trial %d segment write: %v", trial, err)
			}
			srel, err := OpenSegmentFile("conf", segPath, bufpool.New(0), cfg)
			if err != nil {
				t.Fatalf("trial %d segment open: %v", trial, err)
			}
			verifyConformance(t, trial, "Segment", srel, accesses, truthSet)
			if err := srel.Err(); err != nil {
				t.Fatalf("trial %d segment scan error: %v", trial, err)
			}
			if err := srel.Close(); err != nil {
				t.Fatalf("trial %d segment close: %v", trial, err)
			}
		}
	}
}

// verifyConformance checks one relation's row-at-a-time scan — and,
// when the format supports it, its vectorized batch scan — against the
// ground-truth multiset of rows.
func verifyConformance(t *testing.T, trial int, label string, rel Relation, accesses []Access, truthSet map[string]int) {
	t.Helper()
	compare := func(path string, got map[string]int) {
		t.Helper()
		if len(got) != len(truthSet) {
			t.Fatalf("trial %d %s %s: %d distinct rows, want %d\n got: %v\nwant: %v",
				trial, label, path, len(got), len(truthSet), got, truthSet)
		}
		for key, n := range truthSet {
			if got[key] != n {
				t.Fatalf("trial %d %s %s: row %q count %d, want %d", trial, label, path, key, got[key], n)
			}
		}
	}

	got := map[string]int{}
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	rel.Scan(accesses, 2, func(w int, row []expr.Value) {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = normalizeCell(v.String())
		}
		key := joinRow(cells)
		<-mu
		got[key]++
		mu <- struct{}{}
	})
	compare("rows", got)

	bs, ok := rel.(BatchScanner)
	if !ok {
		return
	}
	got = map[string]int{}
	bs.ScanBatches(context.Background(), accesses, 2, func(w int, b *vec.Batch) {
		rows := make([]string, 0, b.Rows())
		emitRow := func(i int) {
			cells := make([]string, len(b.Cols))
			for ci := range b.Cols {
				cells[ci] = normalizeCell(b.Cols[ci].Value(i).String())
			}
			rows = append(rows, joinRow(cells))
		}
		if b.Sel != nil {
			for _, i := range b.Sel {
				emitRow(int(i))
			}
		} else {
			for i := 0; i < b.Len; i++ {
				emitRow(i)
			}
		}
		<-mu
		for _, key := range rows {
			got[key]++
		}
		mu <- struct{}{}
	}, nil)
	compare("batches", got)
}

// normalizeCell re-serializes container-valued text cells through the
// binary format so key order is canonical.
func normalizeCell(s string) string {
	if len(s) == 0 || (s[0] != '{' && s[0] != '[') {
		return s
	}
	v, err := jsontext.ParseString(s)
	if err != nil {
		return s
	}
	return jsonb.NewDoc(jsonb.Encode(v)).JSON()
}

func joinRow(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += "\x1f"
		}
		out += c
	}
	return out
}

// TestConformanceDictColumns drives low-cardinality text data — the
// workload dictionary encoding targets — through every scan path and
// checks each against an arena-layout relation of the same documents:
// in-memory rows and batches, a v2 segment round trip, and a legacy v1
// segment written from dict-free tiles.
func TestConformanceDictColumns(t *testing.T) {
	levels := []string{"debug", "error", "info", "warn"}
	services := []string{"api", "auth", "billing", "cache", "db", "web"}
	nDocs := 300
	docLines := make([][]byte, nDocs)
	for i := 0; i < nDocs; i++ {
		switch {
		case i%11 == 5: // level absent → NULL
			docLines[i] = []byte(fmt.Sprintf(
				`{"id":%d,"service":"%s","msg":"m-%d"}`, i, services[i%len(services)], i))
		default:
			docLines[i] = []byte(fmt.Sprintf(
				`{"id":%d,"level":"%s","service":"%s","msg":"m-%d"}`,
				i, levels[i%len(levels)], services[i%len(services)], i))
		}
	}
	accesses := []Access{
		NewAccess(expr.TBigInt, "id"),
		NewAccess(expr.TText, "level"),
		NewAccess(expr.TText, "service"),
		NewAccess(expr.TText, "msg"),
	}

	// Arena relation (dictionary disabled) supplies the ground truth.
	arenaCfg := DefaultLoaderConfig()
	arenaCfg.Tile.TileSize = 64
	arenaCfg.Tile.DictThreshold = 0
	la, _ := NewLoader(KindTiles, arenaCfg)
	arenaRel, err := la.Load("arena", docLines, 2)
	if err != nil {
		t.Fatal(err)
	}
	truthSet := map[string]int{}
	arenaRel.Scan(accesses, 1, func(w int, row []expr.Value) {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = normalizeCell(v.String())
		}
		truthSet[joinRow(cells)]++
	})
	for _, tl := range arenaRel.(TileIntrospector).Tiles() {
		for _, ci := range tl.Columns() {
			if ci.Col.IsDict() {
				t.Fatalf("arena relation built a dict column at %q with DictThreshold 0", ci.Path)
			}
		}
	}

	cfg := DefaultLoaderConfig()
	cfg.Tile.TileSize = 64
	l, _ := NewLoader(KindTiles, cfg)
	rel, err := l.Load("dict", docLines, 2)
	if err != nil {
		t.Fatal(err)
	}
	dictCols := 0
	for _, tl := range rel.(TileIntrospector).Tiles() {
		for _, ci := range tl.Columns() {
			if ci.Col.IsDict() {
				dictCols++
			}
		}
	}
	if dictCols == 0 {
		t.Fatal("no dictionary columns built on a low-cardinality workload")
	}
	verifyConformance(t, 0, "DictTiles", rel, accesses, truthSet)

	// v2 segment round trip: dictionaries persist as separate blocks.
	segPath := filepath.Join(t.TempDir(), "dict.seg")
	if err := WriteSegmentFile(segPath, rel); err != nil {
		t.Fatal(err)
	}
	srel, err := OpenSegmentFile("dict", segPath, bufpool.New(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	verifyConformance(t, 0, "DictSegment", srel, accesses, truthSet)
	if err := srel.Err(); err != nil {
		t.Fatalf("dict segment scan error: %v", err)
	}
	if err := srel.Close(); err != nil {
		t.Fatal(err)
	}

	// Legacy v1 segment written from the arena tiles: the reader must
	// still serve it, and the scans must agree with the same truth.
	v1Path := filepath.Join(t.TempDir(), "v1.seg")
	f, err := os.Create(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := segment.WriteV1(f, arenaRel.(TileIntrospector).Tiles(), arenaRel.Stats()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	v1rel, err := OpenSegmentFile("v1", v1Path, bufpool.New(0), cfg)
	if err != nil {
		t.Fatalf("open v1 segment: %v", err)
	}
	verifyConformance(t, 0, "V1Segment", v1rel, accesses, truthSet)
	if err := v1rel.Err(); err != nil {
		t.Fatalf("v1 segment scan error: %v", err)
	}
	if err := v1rel.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcatGenericPath(t *testing.T) {
	// Mixing formats exercises the generic concat relation.
	a := lines(`{"x":1}`, `{"x":2}`)
	b := lines(`{"x":3}`)
	lj, _ := NewLoader(KindJSONB, DefaultLoaderConfig())
	relA, err := lj.Load("a", a, 1)
	if err != nil {
		t.Fatal(err)
	}
	lt, _ := NewLoader(KindTiles, DefaultLoaderConfig())
	relB, err := lt.Load("b", b, 1)
	if err != nil {
		t.Fatal(err)
	}
	cc := Concat("ab", relA, relB)
	if cc.NumRows() != 3 {
		t.Fatalf("rows = %d", cc.NumRows())
	}
	if cc.SizeBytes() <= 0 {
		t.Error("size")
	}
	if cc.Stats() != nil {
		t.Error("generic concat should report no stats")
	}
	if cc.Name() != "ab" {
		t.Error("name")
	}
	rows := collectScan(cc, []Access{NewAccess(expr.TBigInt, "x")}, 2)
	if len(rows) != 3 || rows[0] != "1" || rows[2] != "3" {
		t.Errorf("rows = %v", rows)
	}
}

func TestConcatTilesFastPath(t *testing.T) {
	lt, _ := NewLoader(KindTiles, DefaultLoaderConfig())
	relA, _ := lt.Load("a", lines(`{"x":1}`, `{"x":2}`), 1)
	relB, _ := lt.Load("b", lines(`{"x":3}`), 1)
	cc := Concat("ab", relA, relB)
	if _, ok := cc.(*tilesRelation); !ok {
		t.Fatal("tiles+tiles concat did not merge natively")
	}
	if cc.Stats() == nil || cc.Stats().RowCount() != 3 {
		t.Error("merged stats wrong")
	}
	if cc.Stats().PathCount("x") != 3 {
		t.Errorf("PathCount(x) = %d", cc.Stats().PathCount("x"))
	}
}

// TestEmptyContainerVisibility is the regression test for the
// conformance-discovered bug: a tile whose documents carry a key with
// an empty container value must not claim the path is absent — ->> of
// {} is "{}", not NULL, and the tile must not be skipped.
func TestEmptyContainerVisibility(t *testing.T) {
	data := lines(`{"geo":{},"id":1}`, `{"geo":{},"id":2}`, `{"geo":[],"id":3}`)
	for _, k := range allKinds() {
		l, _ := NewLoader(k, DefaultLoaderConfig())
		rel, err := l.Load("e", data, 1)
		if err != nil {
			t.Fatal(err)
		}
		acc := []Access{NewAccess(expr.TText, "geo")}
		acc[0].NullRejecting = true // invite skipping; it must not trigger
		rows := collectScan(rel, acc, 1)
		want := []string{"[]", "{}", "{}"}
		if len(rows) != 3 || rows[0] != want[0] || rows[1] != want[1] || rows[2] != want[2] {
			t.Errorf("%s: rows = %v, want %v", k, rows, want)
		}
	}
}
