package storage

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jsonb"
	"repro/internal/jsontape"
	"repro/internal/jsonvalue"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/stats"
	"repro/internal/tile"
)

// On-demand ingest (DESIGN.md §6.8): every loader parses documents
// into structural tapes and feeds them straight to its extraction or
// encoding pass, materializing jsonvalue trees only for documents the
// tape cannot represent (LimitError: ≥4 GiB documents or ≥2^28-element
// spans) — the boxed fallback path, counted by ingest_docs_tree_fallback.
// Setting LoaderConfig.TreeIngest forces the fallback everywhere, which
// the ingest benchmark and the conformance suite use as the reference.

// errTapeLimit signals that some document exceeded the tape encoding
// limits; whole-input loaders retry on the tree path.
var errTapeLimit = errors.New("storage: document exceeds tape limits")

// ingestScratch pools one worker's tape document and JSONB encoder so
// repeated loads reuse the tape and encoder buffers (like
// scanScratchPool on the read side).
type ingestScratch struct {
	doc jsontape.Doc
	enc jsonb.Encoder
}

var ingestScratchPool = sync.Pool{New: func() any { return new(ingestScratch) }}

// tapeBatch pools a partition's worth of tape documents: grow keeps
// previously-allocated tape buffers so a worker re-parses partition
// after partition without reallocating.
type tapeBatch struct {
	docs []jsontape.Doc
	ptrs []*jsontape.Doc
}

var tapeBatchPool = sync.Pool{New: func() any { return new(tapeBatch) }}

// prep returns n tape-document pointers backed by the batch's reusable
// storage. The ptrs slice is rebuilt each call (reordering permutes
// it) but the docs — and their tape buffers — persist.
func (b *tapeBatch) prep(n int) []*jsontape.Doc {
	for len(b.docs) < n {
		b.docs = append(b.docs, jsontape.Doc{})
	}
	b.ptrs = b.ptrs[:0]
	for i := 0; i < n; i++ {
		b.ptrs = append(b.ptrs, &b.docs[i])
	}
	return b.ptrs
}

// parseErrs collects parse failures from parallel workers and always
// reports the lowest failing document index, so the error a caller
// sees does not depend on worker count or morsel scheduling. The
// wrapped *jsontext.SyntaxError carries the byte offset within the
// document.
type parseErrs struct {
	min atomic.Int64 // lowest failing index seen so far
	mu  sync.Mutex
	idx int
	err error
}

func newParseErrs() *parseErrs {
	p := &parseErrs{}
	p.min.Store(math.MaxInt64)
	return p
}

func (p *parseErrs) record(i int, err error) {
	p.mu.Lock()
	if p.err == nil || i < p.idx {
		p.idx, p.err = i, err
	}
	p.mu.Unlock()
	for {
		cur := p.min.Load()
		if int64(i) >= cur || p.min.CompareAndSwap(cur, int64(i)) {
			return
		}
	}
}

// failedBefore reports whether some document before index lo already
// failed — work at lo and beyond cannot change the reported error, so
// morsels may skip it.
func (p *parseErrs) failedBefore(lo int) bool {
	return p.min.Load() < int64(lo)
}

func (p *parseErrs) get() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil {
		return nil
	}
	return fmt.Errorf("document %d: %w", p.idx, p.err)
}

// parseAllTapes parses every line into a resident tape in parallel.
// It returns errTapeLimit when any document exceeds the tape limits
// (the caller retries on the tree path) and otherwise the lowest-index
// parse error, exactly like parseAll.
func parseAllTapes(lines [][]byte, workers int) ([]*jsontape.Doc, error) {
	tapes := make([]*jsontape.Doc, len(lines))
	pe := newParseErrs()
	var limited atomic.Bool
	morselRange(len(lines), workers, func(w, lo, hi int) {
		if pe.failedBefore(lo) || limited.Load() {
			return
		}
		var tapeBytes int64
		defer func() { obs.IngestTapeBytes.Add(tapeBytes) }()
		for i := lo; i < hi; i++ {
			d := new(jsontape.Doc)
			if err := jsontape.Parse(lines[i], d); err != nil {
				if jsontape.IsLimit(err) {
					limited.Store(true)
				} else {
					pe.record(i, err)
				}
				return
			}
			tapeBytes += int64(8 * len(d.Tape))
			tapes[i] = d
		}
	})
	if err := pe.get(); err != nil {
		return nil, err
	}
	if limited.Load() {
		return nil, errTapeLimit
	}
	return tapes, nil
}

// ValidateDoc checks that line is one well-formed JSON document, using
// the tape parser with tree fallback past its limits — the insert-time
// validation of the public API.
func ValidateDoc(line []byte) error {
	s := ingestScratchPool.Get().(*ingestScratch)
	err := jsontape.Parse(line, &s.doc)
	ingestScratchPool.Put(s)
	if jsontape.IsLimit(err) {
		_, err = parseDoc(line)
	}
	return err
}

// BuildTilesFromLines parses and ingests raw JSON lines into a Tiles
// relation. The default path is tape-driven and morsel-parallel with
// partition granularity: each worker parses a partition's lines into
// pooled tapes, reorders them (§3.2), and builds its tiles directly
// from the tapes — documents are never materialized as trees. A
// partition containing an over-limit document falls back to the tree
// path for that partition only. With cfg.TreeIngest the whole load
// uses the tree path (parseAll + BuildTiles).
func BuildTilesFromLines(name string, lines [][]byte, cfg LoaderConfig, workers int, metrics *tile.Metrics) (Relation, error) {
	if metrics == nil {
		metrics = cfg.Metrics
	}
	if cfg.TreeIngest {
		start := time.Now()
		docs, err := parseAll(lines, workers)
		if err != nil {
			return nil, err
		}
		if metrics != nil {
			metrics.ParseNanos.Add(time.Since(start).Nanoseconds())
		}
		obs.DocsLoaded.Add(int64(len(docs)))
		return BuildTiles(name, docs, cfg, workers, metrics), nil
	}

	tcfg := cfg.Tile
	if tcfg.TileSize <= 0 {
		tcfg = tile.DefaultConfig()
	}
	partDocs := tcfg.TileSize * tcfg.PartitionSize
	if partDocs <= 0 {
		partDocs = tcfg.TileSize
	}
	numParts := (len(lines) + partDocs - 1) / partDocs

	r := &tilesRelation{name: name, cfg: cfg, numRows: len(lines),
		stats: stats.New(0, 0), metrics: metrics}
	partTiles := make([][]*tile.Tile, numParts)
	pe := newParseErrs()

	morselRangeSized(numParts, workers, 1, func(w, lo, hi int) {
		builder := tile.NewBuilder(tcfg, metrics)
		batch := tapeBatchPool.Get().(*tapeBatch)
		defer tapeBatchPool.Put(batch)
		for p := lo; p < hi; p++ {
			dlo := p * partDocs
			dhi := dlo + partDocs
			if dhi > len(lines) {
				dhi = len(lines)
			}
			if pe.failedBefore(dlo) {
				continue
			}
			part := lines[dlo:dhi]

			start := time.Now()
			tapes := batch.prep(len(part))
			limited := false
			failed := false
			var tapeBytes int64
			for i, line := range part {
				if err := jsontape.Parse(line, tapes[i]); err != nil {
					if jsontape.IsLimit(err) {
						limited = true
					} else {
						pe.record(dlo+i, err)
						failed = true
					}
					break
				}
				tapeBytes += int64(8 * len(tapes[i].Tape))
			}
			if metrics != nil {
				metrics.ParseNanos.Add(time.Since(start).Nanoseconds())
			}
			obs.IngestTapeBytes.Add(tapeBytes)
			if failed {
				continue
			}
			if limited {
				partTiles[p] = buildPartitionTree(builder, part, dlo, tcfg, cfg, metrics, pe)
				continue
			}
			if cfg.Reorder && tcfg.PartitionSize > 1 {
				reorder.PartitionTapes(tapes, tcfg, metrics)
			}
			var tiles []*tile.Tile
			for tlo := 0; tlo < len(tapes); tlo += tcfg.TileSize {
				thi := tlo + tcfg.TileSize
				if thi > len(tapes) {
					thi = len(tapes)
				}
				tiles = append(tiles, builder.BuildTape(tapes[tlo:thi]))
			}
			partTiles[p] = tiles
		}
	})
	if err := pe.get(); err != nil {
		return nil, err
	}
	for _, pt := range partTiles {
		for _, t := range pt {
			r.tiles = append(r.tiles, t)
			r.stats.AddTile(t)
		}
	}
	obs.DocsLoaded.Add(int64(len(lines)))
	return r, nil
}

// buildPartitionTree is the per-partition tree fallback of
// BuildTilesFromLines: parse the partition's lines into trees (the
// partition holds an over-limit document) and build through the boxed
// path. The partition's global line offset keeps error indexes
// deterministic.
func buildPartitionTree(builder *tile.Builder, part [][]byte, dlo int,
	tcfg tile.Config, cfg LoaderConfig, metrics *tile.Metrics, pe *parseErrs) []*tile.Tile {
	start := time.Now()
	docs := make([]jsonvalue.Value, len(part))
	for i, line := range part {
		v, err := parseDoc(line)
		if err != nil {
			pe.record(dlo+i, err)
			return nil
		}
		docs[i] = v
	}
	if metrics != nil {
		metrics.ParseNanos.Add(time.Since(start).Nanoseconds())
	}
	if cfg.Reorder && tcfg.PartitionSize > 1 {
		reorder.Partition(docs, tcfg, metrics)
	}
	var tiles []*tile.Tile
	for tlo := 0; tlo < len(docs); tlo += tcfg.TileSize {
		thi := tlo + tcfg.TileSize
		if thi > len(docs) {
			thi = len(docs)
		}
		tiles = append(tiles, builder.Build(docs[tlo:thi]))
	}
	return tiles
}

// buildTilesFromTapes builds a Tiles relation from already-parsed
// resident tapes (the Tiles-* main relation path).
func buildTilesFromTapes(name string, tapes []*jsontape.Doc, cfg LoaderConfig, workers int, metrics *tile.Metrics) *tilesRelation {
	if metrics == nil {
		metrics = cfg.Metrics
	}
	tcfg := cfg.Tile
	if tcfg.TileSize <= 0 {
		tcfg = tile.DefaultConfig()
	}
	partDocs := tcfg.TileSize * tcfg.PartitionSize
	if partDocs <= 0 {
		partDocs = tcfg.TileSize
	}
	numParts := (len(tapes) + partDocs - 1) / partDocs

	r := &tilesRelation{name: name, cfg: cfg, numRows: len(tapes),
		stats: stats.New(0, 0), metrics: metrics}
	partTiles := make([][]*tile.Tile, numParts)
	morselRangeSized(numParts, workers, 1, func(w, lo, hi int) {
		builder := tile.NewBuilder(tcfg, metrics)
		for p := lo; p < hi; p++ {
			dlo := p * partDocs
			dhi := dlo + partDocs
			if dhi > len(tapes) {
				dhi = len(tapes)
			}
			part := tapes[dlo:dhi]
			if cfg.Reorder && tcfg.PartitionSize > 1 {
				reorder.PartitionTapes(part, tcfg, metrics)
			}
			var tiles []*tile.Tile
			for tlo := 0; tlo < len(part); tlo += tcfg.TileSize {
				thi := tlo + tcfg.TileSize
				if thi > len(part) {
					thi = len(part)
				}
				tiles = append(tiles, builder.BuildTape(part[tlo:thi]))
			}
			partTiles[p] = tiles
		}
	})
	for _, pt := range partTiles {
		for _, t := range pt {
			r.tiles = append(r.tiles, t)
			r.stats.AddTile(t)
		}
	}
	return r
}
