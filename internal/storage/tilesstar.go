package storage

import (
	"fmt"

	"repro/internal/jsonvalue"
	"repro/internal/keypath"
)

// TilesStar is the §6.3 "Tiles-*" configuration: JSON tiles for the
// main collection plus separate JSON-tiles relations for detected
// high-cardinality arrays. Each array element becomes one document of
// the side relation, tagged with its parent's identifier and slot
// index; queries join the side relation back to the base table
// instead of probing a bounded number of leading slots.
type TilesStar struct {
	// Main is the base Tiles relation.
	Main Relation
	// Sides maps the array path (encoded) to its side relation.
	Sides map[string]Relation
}

// ParentField and IndexField are the bookkeeping keys added to each
// side-relation document.
const (
	ParentField = "_parent"
	IndexField  = "_idx"
)

// BuildTilesStar loads the main Tiles relation and one side relation
// per given high-cardinality array path. idPath identifies the parent
// document (e.g. "id" for tweets). The detection of which arrays
// deserve extraction is the orthogonal problem of [19, 54] (paper
// §3.5); callers name them explicitly, as the paper does (hashtags,
// mentions).
func BuildTilesStar(name string, lines [][]byte, cfg LoaderConfig, workers int,
	idPath keypath.Path, arrayPaths ...keypath.Path) (*TilesStar, error) {

	docs, err := parseAll(lines, workers)
	if err != nil {
		return nil, err
	}
	star := &TilesStar{Sides: map[string]Relation{}}
	star.Main = BuildTiles(name, docs, cfg, workers, nil)

	for _, ap := range arrayPaths {
		var sideDocs []jsonvalue.Value
		for _, d := range docs {
			parent, ok := keypath.Lookup(d, idPath)
			if !ok {
				continue
			}
			arr, ok := keypath.Lookup(d, ap)
			if !ok || arr.Kind() != jsonvalue.KindArray {
				continue
			}
			for i := 0; i < arr.Len(); i++ {
				el := arr.Elem(i)
				members := []jsonvalue.Member{
					jsonvalue.M(ParentField, parent),
					jsonvalue.M(IndexField, jsonvalue.Int(int64(i))),
				}
				if el.Kind() == jsonvalue.KindObject {
					members = append(members, el.Members()...)
				} else {
					members = append(members, jsonvalue.M("value", el))
				}
				sideDocs = append(sideDocs, jsonvalue.Object(members...))
			}
		}
		enc := ap.Encode()
		star.Sides[enc] = BuildTiles(fmt.Sprintf("%s[%s]", name, enc), sideDocs, cfg, workers, nil)
	}
	return star, nil
}

// Side returns the side relation for an array path.
func (s *TilesStar) Side(arrayPath keypath.Path) (Relation, bool) {
	r, ok := s.Sides[arrayPath.Encode()]
	return r, ok
}

// SizeBytes sums main and side storage.
func (s *TilesStar) SizeBytes() int {
	total := s.Main.SizeBytes()
	for _, r := range s.Sides {
		total += r.SizeBytes()
	}
	return total
}
