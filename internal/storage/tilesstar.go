package storage

import (
	"errors"
	"fmt"

	"repro/internal/jsontape"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/obs"
)

// TilesStar is the §6.3 "Tiles-*" configuration: JSON tiles for the
// main collection plus separate JSON-tiles relations for detected
// high-cardinality arrays. Each array element becomes one document of
// the side relation, tagged with its parent's identifier and slot
// index; queries join the side relation back to the base table
// instead of probing a bounded number of leading slots.
type TilesStar struct {
	// Main is the base Tiles relation.
	Main Relation
	// Sides maps the array path (encoded) to its side relation.
	Sides map[string]Relation
}

// ParentField and IndexField are the bookkeeping keys added to each
// side-relation document.
const (
	ParentField = "_parent"
	IndexField  = "_idx"
)

// BuildTilesStar loads the main Tiles relation and one side relation
// per given high-cardinality array path. idPath identifies the parent
// document (e.g. "id" for tweets). The detection of which arrays
// deserve extraction is the orthogonal problem of [19, 54] (paper
// §3.5); callers name them explicitly, as the paper does (hashtags,
// mentions).
func BuildTilesStar(name string, lines [][]byte, cfg LoaderConfig, workers int,
	idPath keypath.Path, arrayPaths ...keypath.Path) (*TilesStar, error) {

	if !cfg.TreeIngest {
		star, err := buildTilesStarTapes(name, lines, cfg, workers, idPath, arrayPaths...)
		if !errors.Is(err, errTapeLimit) {
			return star, err
		}
		// Some document exceeds the tape limits: retry on the tree path.
	}
	docs, err := parseAll(lines, workers)
	if err != nil {
		return nil, err
	}
	obs.IngestDocsTreeFallback.Add(int64(len(docs)))
	star := &TilesStar{Sides: map[string]Relation{}}
	star.Main = BuildTiles(name, docs, cfg, workers, nil)

	for _, ap := range arrayPaths {
		var sideDocs []jsonvalue.Value
		for _, d := range docs {
			parent, ok := keypath.Lookup(d, idPath)
			if !ok {
				continue
			}
			arr, ok := keypath.Lookup(d, ap)
			if !ok || arr.Kind() != jsonvalue.KindArray {
				continue
			}
			for i := 0; i < arr.Len(); i++ {
				el := arr.Elem(i)
				sideDocs = append(sideDocs, sideDoc(parent, i, el))
			}
		}
		enc := ap.Encode()
		star.Sides[enc] = BuildTiles(fmt.Sprintf("%s[%s]", name, enc), sideDocs, cfg, workers, nil)
	}
	return star, nil
}

// buildTilesStarTapes is the tape-driven Tiles-* load: the main
// relation builds straight from the resident tapes, while side
// documents — small synthesized objects — materialize only the parent
// id and the extracted array elements.
func buildTilesStarTapes(name string, lines [][]byte, cfg LoaderConfig, workers int,
	idPath keypath.Path, arrayPaths ...keypath.Path) (*TilesStar, error) {

	tapes, err := parseAllTapes(lines, workers)
	if err != nil {
		return nil, err
	}
	obs.IngestDocsTape.Add(int64(len(tapes)))
	star := &TilesStar{Sides: map[string]Relation{}}
	star.Main = buildTilesFromTapes(name, tapes, cfg, workers, nil)

	for _, ap := range arrayPaths {
		var sideDocs []jsonvalue.Value
		for _, d := range tapes {
			pn, ok := keypath.LookupTape(d, idPath)
			if !ok {
				continue
			}
			an, ok := keypath.LookupTape(d, ap)
			if !ok || an.Kind() != jsontape.KArr {
				continue
			}
			parent := pn.Materialize()
			for i := 0; i < an.Count(); i++ {
				el, _ := an.Elem(i)
				sideDocs = append(sideDocs, sideDoc(parent, i, el.Materialize()))
			}
		}
		enc := ap.Encode()
		star.Sides[enc] = BuildTiles(fmt.Sprintf("%s[%s]", name, enc), sideDocs, cfg, workers, nil)
	}
	return star, nil
}

// sideDoc synthesizes one side-relation document from a parent id,
// slot index, and array element.
func sideDoc(parent jsonvalue.Value, idx int, el jsonvalue.Value) jsonvalue.Value {
	members := []jsonvalue.Member{
		jsonvalue.M(ParentField, parent),
		jsonvalue.M(IndexField, jsonvalue.Int(int64(idx))),
	}
	if el.Kind() == jsonvalue.KindObject {
		members = append(members, el.Members()...)
	} else {
		members = append(members, jsonvalue.M("value", el))
	}
	return jsonvalue.Object(members...)
}

// Side returns the side relation for an array path.
func (s *TilesStar) Side(arrayPath keypath.Path) (Relation, bool) {
	r, ok := s.Sides[arrayPath.Encode()]
	return r, ok
}

// SizeBytes sums main and side storage.
func (s *TilesStar) SizeBytes() int {
	total := s.Main.SizeBytes()
	for _, r := range s.Sides {
		total += r.SizeBytes()
	}
	return total
}
