package storage

import (
	"strconv"
	"strings"

	"repro/internal/dates"
	"repro/internal/expr"
	"repro/internal/jsonb"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/tile"
)

// LoaderConfig parameterizes format construction.
type LoaderConfig struct {
	// Tile holds the JSON tiles extraction settings (also reused for
	// array-slot bounds by Sinew and Shredded so path spaces match).
	Tile tile.Config
	// SinewThreshold is Sinew's global column-extraction threshold
	// (the original paper's 60 % when zero).
	SinewThreshold float64
	// Reorder enables partition reordering for the Tiles format.
	Reorder bool
	// SkipTiles enables tile skipping (§4.8); the fig14 "no Skip"
	// ablation turns it off.
	SkipTiles bool
	// MorselRows is the target rows per scan morsel (0 selects
	// DefaultMorselRows). Small inputs shrink it automatically so
	// every worker still gets several morsels.
	MorselRows int
	// TreeIngest forces the boxed jsonvalue-tree ingest path instead
	// of the default structural-tape path (DESIGN.md §6.8) — the
	// reference for the ingest benchmark and conformance tests.
	TreeIngest bool
	// Metrics, when non-nil, accumulates the load-time breakdown
	// (parse/mine/extract/JSONB/reorder nanos — Figure 16) across every
	// load performed with this config.
	Metrics *tile.Metrics
	// StoreGapBytes is the block-read coalescing gap threshold for
	// store-backed scans: adjacent surviving block refs whose dead
	// space is at most this many bytes merge into one ranged read
	// (0 selects blockstore.DefaultCoalesceGap; negative disables
	// merging).
	StoreGapBytes int64
	// StorePrefetch enables the bounded morsel-path readahead: while a
	// worker scans one tile, its next tile's surviving blocks are
	// fetched asynchronously (one outstanding prefetch per worker).
	StorePrefetch bool
}

// DefaultLoaderConfig mirrors the paper's evaluation defaults.
func DefaultLoaderConfig() LoaderConfig {
	return LoaderConfig{
		Tile:           tile.DefaultConfig(),
		SinewThreshold: 0.6,
		Reorder:        true,
		SkipTiles:      true,
		StorePrefetch:  true,
	}
}

func parseDoc(line []byte) (jsonvalue.Value, error) {
	return jsontext.Parse(line)
}

// docAccess traverses a binary JSON document along the path and
// converts the result to the desired SQL type — the optimized typed
// access expressions of §4.5/§5.4.
func docAccess(d jsonb.Doc, path keypath.Path, want expr.SQLType) expr.Value {
	cur := d
	for _, seg := range path.Segs {
		var ok bool
		if seg.IsIndex {
			cur, ok = cur.Index(seg.Index)
		} else {
			cur, ok = cur.Get(seg.Key)
		}
		if !ok {
			return expr.NullValue() // absent key or parent: SQL NULL
		}
	}
	return docValue(cur, want)
}

// docValue converts a positioned binary JSON value to the desired SQL
// type.
func docValue(cur jsonb.Doc, want expr.SQLType) expr.Value {
	if cur.IsNull() {
		return expr.NullValue()
	}
	switch want {
	case expr.TJSON:
		return expr.JSONValue(cur)
	case expr.TText:
		return expr.TextValue(cur.AsText())
	case expr.TBigInt:
		switch cur.Kind() {
		case jsonb.KindInt:
			i, _ := cur.Int64()
			return expr.IntValue(i)
		case jsonb.KindFloat:
			f, _ := cur.Float64()
			return expr.IntValue(int64(f))
		case jsonb.KindString:
			if m, sc, ok := cur.NumericString(); ok && sc == 0 {
				return expr.IntValue(m) // typed numeric string: no parse
			}
			s, _ := cur.String()
			return parseIntText(s)
		case jsonb.KindBool:
			b, _ := cur.Bool()
			if b {
				return expr.IntValue(1)
			}
			return expr.IntValue(0)
		}
		return expr.NullValue()
	case expr.TFloat:
		switch cur.Kind() {
		case jsonb.KindInt:
			i, _ := cur.Int64()
			return expr.FloatValue(float64(i))
		case jsonb.KindFloat:
			f, _ := cur.Float64()
			return expr.FloatValue(f)
		case jsonb.KindString:
			if m, sc, ok := cur.NumericString(); ok {
				return expr.FloatValue(scaleDecimal(m, sc))
			}
			s, _ := cur.String()
			if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
				return expr.FloatValue(f)
			}
			return expr.NullValue()
		}
		return expr.NullValue()
	case expr.TBool:
		if b, ok := cur.Bool(); ok {
			return expr.BoolValue(b)
		}
		if s, ok := cur.String(); ok {
			return expr.CastValue(expr.TextValue(s), expr.TBool)
		}
		return expr.NullValue()
	case expr.TTimestamp:
		if s, ok := cur.String(); ok {
			if m, ok := dates.Parse(s); ok {
				return expr.TimestampValue(m)
			}
		}
		return expr.NullValue()
	}
	return expr.NullValue()
}

func scaleDecimal(mantissa int64, scale uint8) float64 {
	f := float64(mantissa)
	for ; scale > 0; scale-- {
		f /= 10
	}
	return f
}

func parseIntText(s string) expr.Value {
	s = strings.TrimSpace(s)
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return expr.IntValue(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return expr.IntValue(int64(f))
	}
	return expr.NullValue()
}

// valueAccess is docAccess over a parsed value tree (the raw-JSON
// format's per-tuple path).
func valueAccess(doc jsonvalue.Value, path keypath.Path, want expr.SQLType) expr.Value {
	v, ok := keypath.Lookup(doc, path)
	if !ok {
		return expr.NullValue()
	}
	return treeValue(v, want)
}

func treeValue(v jsonvalue.Value, want expr.SQLType) expr.Value {
	if v.IsNull() {
		return expr.NullValue()
	}
	switch want {
	case expr.TJSON:
		// The raw format has no binary form; encode on demand (this is
		// exactly the cost the format pays in the paper).
		return expr.JSONValue(jsonb.NewDoc(jsonb.Encode(v)))
	case expr.TText:
		switch v.Kind() {
		case jsonvalue.KindString:
			return expr.TextValue(v.StringVal())
		case jsonvalue.KindObject, jsonvalue.KindArray:
			return expr.TextValue(jsontext.SerializeString(v))
		case jsonvalue.KindBool:
			if v.BoolVal() {
				return expr.TextValue("true")
			}
			return expr.TextValue("false")
		case jsonvalue.KindInt:
			return expr.TextValue(strconv.FormatInt(v.IntVal(), 10))
		case jsonvalue.KindFloat:
			return expr.TextValue(strconv.FormatFloat(v.FloatVal(), 'g', -1, 64))
		}
	case expr.TBigInt:
		switch v.Kind() {
		case jsonvalue.KindInt:
			return expr.IntValue(v.IntVal())
		case jsonvalue.KindFloat:
			return expr.IntValue(int64(v.FloatVal()))
		case jsonvalue.KindString:
			return parseIntText(v.StringVal())
		case jsonvalue.KindBool:
			if v.BoolVal() {
				return expr.IntValue(1)
			}
			return expr.IntValue(0)
		}
	case expr.TFloat:
		switch v.Kind() {
		case jsonvalue.KindInt:
			return expr.FloatValue(float64(v.IntVal()))
		case jsonvalue.KindFloat:
			return expr.FloatValue(v.FloatVal())
		case jsonvalue.KindString:
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.StringVal()), 64); err == nil {
				return expr.FloatValue(f)
			}
		}
	case expr.TBool:
		switch v.Kind() {
		case jsonvalue.KindBool:
			return expr.BoolValue(v.BoolVal())
		case jsonvalue.KindString:
			return expr.CastValue(expr.TextValue(v.StringVal()), expr.TBool)
		}
	case expr.TTimestamp:
		if v.Kind() == jsonvalue.KindString {
			if m, ok := dates.Parse(v.StringVal()); ok {
				return expr.TimestampValue(m)
			}
		}
	}
	return expr.NullValue()
}
