package storage

import (
	"context"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Concat combines two relations of the same logical table — the
// incremental-insert path appends freshly materialized partitions to
// the existing tiles. Two Tiles relations merge natively (tiles are
// independent chunks; statistics re-aggregate); other combinations
// scan both inputs in sequence.
func Concat(name string, a, b Relation) Relation {
	ta, okA := a.(*tilesRelation)
	tb, okB := b.(*tilesRelation)
	if okA && okB {
		merged := &tilesRelation{name: name, cfg: ta.cfg,
			numRows: ta.numRows + tb.numRows, stats: stats.New(0, 0)}
		merged.tiles = append(merged.tiles, ta.tiles...)
		merged.tiles = append(merged.tiles, tb.tiles...)
		for _, t := range merged.tiles {
			merged.stats.AddTile(t)
		}
		return merged
	}
	return &concatRelation{name: name, parts: []Relation{a, b}}
}

type concatRelation struct {
	name  string
	parts []Relation
}

func (r *concatRelation) Name() string { return r.name }

func (r *concatRelation) NumRows() int {
	n := 0
	for _, p := range r.parts {
		n += p.NumRows()
	}
	return n
}

func (r *concatRelation) SizeBytes() int {
	n := 0
	for _, p := range r.parts {
		n += p.SizeBytes()
	}
	return n
}

func (r *concatRelation) Stats() *stats.TableStats { return nil }

func (r *concatRelation) Scan(accesses []Access, workers int, emit EmitFunc) {
	for _, p := range r.parts {
		p.Scan(accesses, workers, emit)
	}
}

// ScanWithStats implements StatsScanner by delegating to each part, so
// counters aggregate across the concatenated segments.
func (r *concatRelation) ScanWithStats(ctx context.Context, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats) {
	for _, p := range r.parts {
		if ctx.Err() != nil {
			return
		}
		ScanWith(ctx, p, accesses, workers, emit, st)
	}
}
