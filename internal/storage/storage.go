// Package storage implements the competing storage formats of the
// paper's evaluation behind one Relation interface, all sharing the
// same engine and expression layer so that — exactly as in the paper's
// internal comparison — measured differences isolate the storage
// design:
//
//	JSON      raw text, full parse per tuple access        (§6 "JSON")
//	JSONB     per-document binary JSON (§5)                (§6 "JSONB")
//	Sinew     global single-schema column extraction [57]  (§6 "Sinew")
//	Tiles     JSON tiles (this paper)                      (§6 "Tiles")
//	Tiles-*   tiles + high-cardinality array relations     (§6.3)
//	Shredded  Dremel-style full shredding with definition
//	          levels — the Parquet stand-in               (§6 "Spark/Parquet")
package storage

import (
	"context"
	"fmt"

	"repro/internal/expr"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tile"
	"repro/internal/vec"
)

// Access is one pushed-down JSON access expression (§4.2): the scan
// operator receives the key path and — after cast rewriting (§4.3) —
// the result type the query actually wants, so the storage format can
// serve it from the best representation it has.
type Access struct {
	// Path is the parsed key path.
	Path keypath.Path
	// PathEnc is Path.Encode(), cached.
	PathEnc string
	// Type is the desired result type. TJSON corresponds to the ->
	// operator, TText to ->> without a cast, anything else to a
	// rewritten cast (e.g. ->>'x'::BigInt).
	Type expr.SQLType
	// NullRejecting marks accesses whose NULL makes the row's
	// predicate not-TRUE; a tile guaranteed to lack the path can then
	// be skipped wholesale (§4.8).
	NullRejecting bool
}

// NewAccess builds an access from dotted segments.
func NewAccess(t expr.SQLType, segs ...string) Access {
	p := keypath.NewPath(segs...)
	return Access{Path: p, PathEnc: p.Encode(), Type: t}
}

// NewAccessPath builds an access from a parsed path.
func NewAccessPath(t expr.SQLType, p keypath.Path) Access {
	return Access{Path: p, PathEnc: p.Encode(), Type: t}
}

// EmitFunc receives scan output. Implementations may call it from
// `workers` goroutines concurrently, identified by worker id; the row
// slice is reused between calls and must not be retained.
type EmitFunc func(worker int, row []expr.Value)

// Relation is a stored JSON collection in some format.
type Relation interface {
	// Name identifies the relation (diagnostics).
	Name() string
	// NumRows is the tuple count.
	NumRows() int
	// Scan evaluates the access expressions for every tuple.
	Scan(accesses []Access, workers int, emit EmitFunc)
	// SizeBytes is the storage footprint.
	SizeBytes() int
	// Stats returns relation statistics, or nil when the format keeps
	// none (every format except Tiles, matching the paper).
	Stats() *stats.TableStats
}

// StatsScanner is implemented by relations that report per-scan
// observability counters (tiles scanned/skipped, rows, column hits vs
// binary-JSON fallbacks). Scanning with a nil *obs.ScanStats is
// equivalent to Scan.
type StatsScanner interface {
	ScanWithStats(ctx context.Context, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats)
}

// ScanWith scans rel, routing per-scan counters into st when non-nil
// and threading ctx (cancellation, tenant identity) into relations
// that support it. Relations without native stats support still
// report rows scanned.
func ScanWith(ctx context.Context, rel Relation, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats) {
	if ss, ok := rel.(StatsScanner); ok {
		ss.ScanWithStats(ctx, accesses, workers, emit, st)
		return
	}
	if st == nil {
		rel.Scan(accesses, workers, emit)
		return
	}
	rel.Scan(accesses, workers, func(w int, row []expr.Value) {
		st.RowsScanned.Add(1)
		emit(w, row)
	})
}

// BatchEmitFunc receives batch-scan output. Implementations may call
// it from `workers` goroutines concurrently; the batch and its
// vectors are reused between calls and must not be retained.
type BatchEmitFunc func(worker int, b *vec.Batch)

// BatchScanner is implemented by relations that can emit column
// batches (typed vectors + selection vector) instead of boxed rows —
// the vectorized fast path. Accesses a tile serves from a
// materialized column are handed out as zero-copy slices; everything
// else is materialized into boxed vectors, so batch scans are always
// complete (never a subset of the accesses).
type BatchScanner interface {
	ScanBatches(ctx context.Context, accesses []Access, workers int, emit BatchEmitFunc, st *obs.ScanStats)
}

// RowOnly wraps rel so that it no longer advertises batch scanning —
// benchmarking and conformance-testing the row-at-a-time path against
// the vectorized one. Per-scan stats keep working.
func RowOnly(rel Relation) Relation { return rowOnlyRel{rel: rel} }

type rowOnlyRel struct{ rel Relation }

func (r rowOnlyRel) Name() string             { return r.rel.Name() }
func (r rowOnlyRel) NumRows() int             { return r.rel.NumRows() }
func (r rowOnlyRel) SizeBytes() int           { return r.rel.SizeBytes() }
func (r rowOnlyRel) Stats() *stats.TableStats { return r.rel.Stats() }
func (r rowOnlyRel) Scan(accesses []Access, workers int, emit EmitFunc) {
	r.rel.Scan(accesses, workers, emit)
}

// ScanWithStats delegates to the wrapped relation's stats-aware row
// scan (RowOnly hides only the batch capability).
func (r rowOnlyRel) ScanWithStats(ctx context.Context, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats) {
	if ss, ok := r.rel.(StatsScanner); ok {
		ss.ScanWithStats(ctx, accesses, workers, emit, st)
		return
	}
	ScanWith(ctx, r.rel, accesses, workers, emit, st)
}

// TileCounter is implemented by relations that know their tile count
// without materializing tiles — EXPLAIN ANALYZE uses it for the skip
// denominator. Disk-backed relations answer from the footer; the
// in-memory relation from its tile slice.
type TileCounter interface {
	NumTiles() int
}

// TileIntrospector is implemented by tile-backed relations and exposes
// the physical layout for statistics and diagnostics (Table 6 size
// accounting, per-tile extracted paths, tile counts for skip ratios).
type TileIntrospector interface {
	// Tiles returns the materialized tiles in row order.
	Tiles() []*tile.Tile
	// RawSizeBytes is the per-document binary JSON footprint.
	RawSizeBytes() int
	// ColumnSizeBytes is the extracted-column overhead ("+Tiles").
	ColumnSizeBytes() int
	// CompressedColumnSizeBytes is the LZ4-compressed column size
	// ("+LZ4-Tiles").
	CompressedColumnSizeBytes() int
}

// FormatKind names a storage format for the benchmark harness.
type FormatKind string

// The format kinds.
const (
	KindJSON     FormatKind = "JSON"
	KindJSONB    FormatKind = "JSONB"
	KindSinew    FormatKind = "Sinew"
	KindTiles    FormatKind = "Tiles"
	KindShredded FormatKind = "Shredded"
)

// Loader builds a Relation of a given format from raw JSON documents.
type Loader interface {
	// Load parses and ingests the documents using up to `workers`
	// goroutines, returning the finished relation.
	Load(name string, lines [][]byte, workers int) (Relation, error)
}

// NewLoader returns the loader for a format kind with the given tile
// configuration (ignored by formats without tiles).
func NewLoader(kind FormatKind, cfg LoaderConfig) (Loader, error) {
	switch kind {
	case KindJSON:
		return rawJSONLoader{cfg: cfg}, nil
	case KindJSONB:
		return jsonbLoader{cfg: cfg}, nil
	case KindSinew:
		return sinewLoader{cfg: cfg}, nil
	case KindTiles:
		return tilesLoader{cfg: cfg}, nil
	case KindShredded:
		return shredLoader{cfg: cfg}, nil
	default:
		return nil, fmt.Errorf("storage: unknown format %q", kind)
	}
}

// parseAll parses JSON lines into documents in parallel (morsels of
// lines pulled from a shared queue — see morsel.go). On malformed
// input it reports the lowest failing document index regardless of
// worker count or morsel scheduling, with the byte offset carried by
// the wrapped syntax error.
func parseAll(lines [][]byte, workers int) ([]jsonvalue.Value, error) {
	docs := make([]jsonvalue.Value, len(lines))
	pe := newParseErrs()
	morselRange(len(lines), workers, func(w, lo, hi int) {
		if pe.failedBefore(lo) {
			return
		}
		for i := lo; i < hi; i++ {
			v, err := parseDoc(lines[i])
			if err != nil {
				pe.record(i, err)
				return
			}
			docs[i] = v
		}
	})
	if err := pe.get(); err != nil {
		return nil, err
	}
	return docs, nil
}
