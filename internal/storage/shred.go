package storage

import (
	"context"
	"errors"
	"sort"

	"repro/internal/expr"
	"repro/internal/jsonb"
	"repro/internal/jsontape"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/obs"
	"repro/internal/stats"
)

// shredded implements Dremel-style record shredding [42], the stand-in
// for the Spark/Parquet competitor: *every* key path observed anywhere
// in the table becomes a striped column, with presence encoded as
// definition levels (here: a sorted row-id list per column, the moral
// equivalent of packed def-levels). There is no threshold, no
// locality, and no binary-JSON fallback — record reassembly rebuilds
// documents from the stripes, which is exactly the work the paper
// blames for Parquet's CPU-bound scans on heterogeneous data ("many
// different optional fields have to be handled while evaluating the
// access automata").
type shredded struct {
	name    string
	numRows int
	cols    []*sparseColumn
	byItem  map[keypath.Item]int
	byPath  map[string][]int
	// pathsSorted supports record reassembly in deterministic order;
	// parsedPaths caches the parsed forms for prefix checks.
	pathsSorted []string
	parsedPaths []keypath.Path
}

// sparseColumn stores only present values: rows[i] is the row id of
// vals[i], sorted ascending — reading in row order advances a cursor.
type sparseColumn struct {
	item keypath.Item
	rows []int32
	ints []int64
	flts []float64
	strs []string
	bls  []bool
}

func (c *sparseColumn) appendVal(row int, v jsonvalue.Value) {
	c.rows = append(c.rows, int32(row))
	switch c.item.Type {
	case keypath.TypeBigInt:
		c.ints = append(c.ints, v.IntVal())
	case keypath.TypeDouble:
		c.flts = append(c.flts, v.FloatVal())
	case keypath.TypeString:
		c.strs = append(c.strs, v.StringVal())
	case keypath.TypeBool:
		c.bls = append(c.bls, v.BoolVal())
	case keypath.TypeObject, keypath.TypeArray:
		// Empty containers: presence only, no payload.
	}
}

// appendTape is appendVal decoding straight from a tape node.
func (c *sparseColumn) appendTape(row int, n jsontape.Node) {
	c.rows = append(c.rows, int32(row))
	switch c.item.Type {
	case keypath.TypeBigInt:
		c.ints = append(c.ints, n.IntVal())
	case keypath.TypeDouble:
		c.flts = append(c.flts, n.FloatVal())
	case keypath.TypeString:
		c.strs = append(c.strs, n.StringVal())
	case keypath.TypeBool:
		c.bls = append(c.bls, n.BoolVal())
	case keypath.TypeObject, keypath.TypeArray:
		// Empty containers: presence only, no payload.
	}
}

// value converts the stored payload to the desired SQL type through
// the same conversion matrix every other format uses (treeValue), so
// e.g. a Float access on a Bool value is NULL everywhere.
func (c *sparseColumn) value(pos int, want expr.SQLType) expr.Value {
	return treeValue(c.jsonValue(pos), want)
}

func (c *sparseColumn) jsonValue(pos int) jsonvalue.Value {
	switch c.item.Type {
	case keypath.TypeBigInt:
		return jsonvalue.Int(c.ints[pos])
	case keypath.TypeDouble:
		return jsonvalue.Float(c.flts[pos])
	case keypath.TypeString:
		return jsonvalue.String(c.strs[pos])
	case keypath.TypeBool:
		return jsonvalue.Bool(c.bls[pos])
	case keypath.TypeObject:
		return jsonvalue.Object()
	case keypath.TypeArray:
		return jsonvalue.Array()
	}
	return jsonvalue.Null()
}

// shredMaxArraySlots: shredding must be lossless, so arrays are
// striped to their full length (up to a generous bound), unlike the
// tile extractor's leading-slot cap. This is what makes
// high-cardinality arrays painful for the shredded format — column
// explosion — matching the paper's observations.
const shredMaxArraySlots = 4096

type shredLoader struct{ cfg LoaderConfig }

func (l shredLoader) Load(name string, lines [][]byte, workers int) (Relation, error) {
	if !l.cfg.TreeIngest {
		r, err := l.loadTapes(name, lines, workers)
		if !errors.Is(err, errTapeLimit) {
			return r, err
		}
		// Some document exceeds the tape limits: retry on the tree path.
	}
	docs, err := parseAll(lines, workers)
	if err != nil {
		return nil, err
	}
	obs.IngestDocsTreeFallback.Add(int64(len(docs)))
	r := &shredded{
		name:    name,
		numRows: len(docs),
		byItem:  map[keypath.Item]int{},
		byPath:  map[string][]int{},
	}
	for i, d := range docs {
		keypath.Collect(d, shredMaxArraySlots, func(p keypath.Path, t keypath.ValueType, v jsonvalue.Value) {
			if t == keypath.TypeNull {
				return
			}
			it := keypath.Item{Path: p.Encode(), Type: t}
			ci, ok := r.byItem[it]
			if !ok {
				ci = len(r.cols)
				r.byItem[it] = ci
				r.cols = append(r.cols, &sparseColumn{item: it})
				r.byPath[it.Path] = append(r.byPath[it.Path], ci)
			}
			r.cols[ci].appendVal(i, v)
		})
	}
	return finishShredded(r)
}

// loadTapes is the tape-driven shredded load: stripes are appended
// straight from tape nodes. A shared dictionary maps (path, type)
// items to column indexes so the per-leaf path string is allocated
// only on a column's first appearance.
func (l shredLoader) loadTapes(name string, lines [][]byte, workers int) (Relation, error) {
	tapes, err := parseAllTapes(lines, workers)
	if err != nil {
		return nil, err
	}
	obs.IngestDocsTape.Add(int64(len(tapes)))
	r := &shredded{
		name:    name,
		numRows: len(tapes),
		byItem:  map[keypath.Item]int{},
		byPath:  map[string][]int{},
	}
	dict := keypath.NewDict()
	var colOfID []int32
	for i, d := range tapes {
		keypath.CollectTape(d, shredMaxArraySlots, func(pathEnc []byte, t keypath.ValueType, n jsontape.Node) {
			if t == keypath.TypeNull {
				return
			}
			id := dict.AddBytes(pathEnc, t)
			for int(id) >= len(colOfID) {
				colOfID = append(colOfID, -1)
			}
			ci := colOfID[id]
			if ci < 0 {
				it := dict.Item(id)
				ci = int32(len(r.cols))
				colOfID[id] = ci
				r.byItem[it] = int(ci)
				r.cols = append(r.cols, &sparseColumn{item: it})
				r.byPath[it.Path] = append(r.byPath[it.Path], int(ci))
			}
			r.cols[ci].appendTape(i, n)
		})
	}
	return finishShredded(r)
}

func finishShredded(r *shredded) (Relation, error) {
	for p := range r.byPath {
		r.pathsSorted = append(r.pathsSorted, p)
	}
	sort.Strings(r.pathsSorted)
	for _, enc := range r.pathsSorted {
		if parsed, err := keypath.ParsePath(enc); err == nil {
			r.parsedPaths = append(r.parsedPaths, parsed)
		}
	}
	return r, nil
}

func (r *shredded) Name() string             { return r.name }
func (r *shredded) NumRows() int             { return r.numRows }
func (r *shredded) Stats() *stats.TableStats { return nil }

func (r *shredded) SizeBytes() int {
	total := 0
	for _, c := range r.cols {
		total += len(c.rows)*4 + len(c.ints)*8 + len(c.flts)*8 + len(c.bls)
		for _, s := range c.strs {
			total += len(s) + 4
		}
	}
	return total
}

// NumColumns reports the stripe count (tests: column explosion on
// high-cardinality arrays).
func (r *shredded) NumColumns() int { return len(r.cols) }

func (r *shredded) Scan(accesses []Access, workers int, emit EmitFunc) {
	r.ScanWithStats(context.Background(), accesses, workers, emit, nil)
}

// ScanWithStats implements StatsScanner (rows only: the shredded
// format has neither tiles nor a binary-JSON fallback — record
// reassembly is its cost model, not fallback counts).
func (r *shredded) ScanWithStats(ctx context.Context, accesses []Access, workers int, emit EmitFunc, st *obs.ScanStats) {
	morselRangeCtx(ctx, r.numRows, workers, func(w, lo, hi int) {
		cnt := scanCounters{morsels: 1}
		defer cnt.flush(st)
		cnt.rows = int64(hi - lo)
		row := make([]expr.Value, len(accesses))
		// Per-access cursor into the sparse columns: the def-level
		// walk of record shredding.
		type cursorSet struct {
			cols []*sparseColumn
			pos  []int
		}
		cursors := make([]cursorSet, len(accesses))
		reassemble := make([]bool, len(accesses))
		prefixed := make([]bool, len(accesses))
		for ai, a := range accesses {
			if a.Type == expr.TJSON {
				reassemble[ai] = true
				continue
			}
			// A path with striped descendants names a non-empty
			// container in at least some rows: those rows need record
			// re-assembly (Dremel's record-assembly cost) even when a
			// direct column exists for rows where the path is scalar.
			prefixed[ai] = r.hasPrefix(a.Path)
			if len(r.byPath[a.PathEnc]) == 0 && prefixed[ai] {
				reassemble[ai] = true
				continue
			}
			for _, ci := range r.byPath[a.PathEnc] {
				c := r.cols[ci]
				pos := sort.Search(len(c.rows), func(k int) bool { return int(c.rows[k]) >= lo })
				cursors[ai].cols = append(cursors[ai].cols, c)
				cursors[ai].pos = append(cursors[ai].pos, pos)
			}
		}
		for i := lo; i < hi; i++ {
			for ai, a := range accesses {
				if reassemble[ai] {
					row[ai] = r.reassembleAccess(i, a)
					continue
				}
				v := expr.NullValue()
				hit := false
				cs := &cursors[ai]
				for k, c := range cs.cols {
					for cs.pos[k] < len(c.rows) && int(c.rows[cs.pos[k]]) < i {
						cs.pos[k]++
					}
					if cs.pos[k] < len(c.rows) && int(c.rows[cs.pos[k]]) == i {
						v = c.value(cs.pos[k], a.Type)
						hit = true
						break
					}
				}
				if !hit && prefixed[ai] {
					v = r.reassembleAccess(i, a)
				}
				row[ai] = v
			}
			emit(w, row)
		}
	})
}

// reassembleAccess rebuilds the sub-document rooted at the access path
// for row i from the stripes — Dremel record assembly, paid on every
// -> access and on container-valued ->> accesses.
func (r *shredded) reassembleAccess(i int, a Access) expr.Value {
	doc := r.Reassemble(i)
	v, ok := keypath.Lookup(doc, a.Path)
	if !ok || v.IsNull() {
		return expr.NullValue()
	}
	if a.Type == expr.TJSON {
		return expr.JSONValue(jsonb.NewDoc(jsonb.Encode(v)))
	}
	return treeValue(v, a.Type)
}

// hasPrefix reports whether any striped path lies strictly below p.
func (r *shredded) hasPrefix(p keypath.Path) bool {
	for _, parsed := range r.parsedPaths {
		if len(parsed.Segs) <= len(p.Segs) {
			continue
		}
		match := true
		for i, seg := range p.Segs {
			if parsed.Segs[i] != seg {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Reassemble reconstructs the full document of row i from the columns.
// Key order and empty containers are not preserved (inherent to
// shredding); values and structure are.
func (r *shredded) Reassemble(i int) jsonvalue.Value {
	root := newShredNode()
	for _, pathEnc := range r.pathsSorted {
		for _, ci := range r.byPath[pathEnc] {
			c := r.cols[ci]
			pos := sort.Search(len(c.rows), func(k int) bool { return int(c.rows[k]) >= i })
			if pos >= len(c.rows) || int(c.rows[pos]) != i {
				continue
			}
			p, err := keypath.ParsePath(pathEnc)
			if err != nil {
				continue
			}
			root.insert(p.Segs, c.jsonValue(pos))
		}
	}
	return root.build()
}

// shredNode is a mutable tree used during reassembly.
type shredNode struct {
	leaf     *jsonvalue.Value
	children map[string]*shredNode // object keys
	slots    map[int]*shredNode    // array slots
	keys     []string              // insertion order
}

func newShredNode() *shredNode {
	return &shredNode{children: map[string]*shredNode{}, slots: map[int]*shredNode{}}
}

func (n *shredNode) insert(segs []keypath.Segment, v jsonvalue.Value) {
	if len(segs) == 0 {
		n.leaf = &v
		return
	}
	s := segs[0]
	if s.IsIndex {
		child, ok := n.slots[s.Index]
		if !ok {
			child = newShredNode()
			n.slots[s.Index] = child
		}
		child.insert(segs[1:], v)
		return
	}
	child, ok := n.children[s.Key]
	if !ok {
		child = newShredNode()
		n.children[s.Key] = child
		n.keys = append(n.keys, s.Key)
	}
	child.insert(segs[1:], v)
}

func (n *shredNode) build() jsonvalue.Value {
	if n.leaf != nil {
		return *n.leaf
	}
	if len(n.slots) > 0 {
		max := -1
		for idx := range n.slots {
			if idx > max {
				max = idx
			}
		}
		elems := make([]jsonvalue.Value, max+1)
		for idx := range elems {
			if c, ok := n.slots[idx]; ok {
				elems[idx] = c.build()
			} else {
				elems[idx] = jsonvalue.Null()
			}
		}
		return jsonvalue.Array(elems...)
	}
	members := make([]jsonvalue.Member, 0, len(n.keys))
	for _, k := range n.keys {
		members = append(members, jsonvalue.M(k, n.children[k].build()))
	}
	return jsonvalue.Object(members...)
}
