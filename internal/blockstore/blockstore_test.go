package blockstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// eachStore runs f against every store implementation, each over a
// fresh namespace.
func eachStore(t *testing.T, f func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("fs", func(t *testing.T) {
		s, err := NewFS(t.TempDir())
		if err != nil {
			t.Fatalf("NewFS: %v", err)
		}
		defer s.Close()
		f(t, s)
	})
	t.Run("mem", func(t *testing.T) {
		f(t, NewMem())
	})
	t.Run("fakes3", func(t *testing.T) {
		s := NewFakeS3(nil, FakeS3Config{})
		defer s.Close()
		f(t, s)
	})
}

func TestStoreContract(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		data := []byte("hello, block store world")
		if err := s.Put("obj", data); err != nil {
			t.Fatalf("Put: %v", err)
		}
		// Read-after-commit: readable the moment Put returns.
		if n, err := s.Size("obj"); err != nil || n != int64(len(data)) {
			t.Fatalf("Size = %d, %v; want %d", n, err, len(data))
		}
		got, err := s.ReadRange("obj", 7, 5)
		if err != nil || string(got) != "block" {
			t.Fatalf("ReadRange = %q, %v; want \"block\"", got, err)
		}
		// Put over an existing name replaces the whole object.
		if err := s.Put("obj", []byte("v2")); err != nil {
			t.Fatalf("re-Put: %v", err)
		}
		if b, err := ReadAll(s, "obj"); err != nil || string(b) != "v2" {
			t.Fatalf("ReadAll after re-Put = %q, %v", b, err)
		}
		// List is sorted and complete.
		s.Put("aaa", []byte("x"))
		names, err := s.List()
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		if len(names) != 2 || names[0] != "aaa" || names[1] != "obj" {
			t.Fatalf("List = %v, want [aaa obj]", names)
		}
		// Delete removes; a second delete errors.
		if err := s.Delete("aaa"); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if err := s.Delete("aaa"); err == nil {
			t.Fatal("Delete of missing object succeeded")
		}
	})
}

func TestStoreErrorTaxonomy(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		s.Put("obj", []byte("0123456789"))

		// Missing objects wrap fs.ErrNotExist.
		if _, err := s.ReadRange("nope", 0, 1); !IsNotExist(err) {
			t.Errorf("missing ReadRange error = %v, want fs.ErrNotExist", err)
		}
		if _, err := s.Size("nope"); !IsNotExist(err) {
			t.Errorf("missing Size error = %v, want fs.ErrNotExist", err)
		}

		// A range past the end is a short read wrapping
		// io.ErrUnexpectedEOF, naming the object and range.
		_, err := s.ReadRange("obj", 8, 5)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("short read error = %v, want io.ErrUnexpectedEOF", err)
		}
		msg := err.Error()
		if !strings.Contains(msg, "obj") || !strings.Contains(msg, "[8,+5)") {
			t.Errorf("short read error %q lacks object name or range", msg)
		}
	})
}

func TestStoreLabelsDistinct(t *testing.T) {
	a, b := NewMem(), NewMem()
	if a.Label() == b.Label() {
		t.Fatalf("two Mem stores share label %q", a.Label())
	}
	fsDir := t.TempDir()
	f1, _ := NewFS(fsDir)
	f2, _ := NewFS(fsDir)
	defer f1.Close()
	defer f2.Close()
	if f1.Label() != f2.Label() {
		t.Fatalf("same directory, different labels: %q vs %q", f1.Label(), f2.Label())
	}
	s3 := NewFakeS3(NewMem(), FakeS3Config{})
	if !strings.HasPrefix(s3.Label(), "fakes3(") {
		t.Fatalf("fake label = %q", s3.Label())
	}
}

func TestFSPutAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("obj", []byte("previous generation"))

	// A crash at the rename leaves the previous object intact and a
	// .tmp temporary behind — never a partial object.
	Rename = func(oldpath, newpath string) error {
		return fmt.Errorf("injected crash at rename")
	}
	err = s.Put("obj", []byte("next generation"))
	Rename = os.Rename
	if err == nil {
		t.Fatal("Put succeeded despite failing rename")
	}
	b, err := ReadAll(s, "obj")
	if err != nil || string(b) != "previous generation" {
		t.Fatalf("object after failed Put = %q, %v", b, err)
	}
}

func TestFSRejectsBadNames(t *testing.T) {
	s, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, name := range []string{"", ".", "..", "a/b", `a\b`} {
		if err := s.Put(name, []byte("x")); err == nil {
			t.Errorf("Put(%q) succeeded, want error", name)
		}
	}
}

func TestFSListSkipsDirectories(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("obj", []byte("x"))
	os.Mkdir(filepath.Join(dir, "subdir"), 0o755)
	names, err := s.List()
	if err != nil || len(names) != 1 || names[0] != "obj" {
		t.Fatalf("List = %v, %v; want [obj]", names, err)
	}
}

func TestMemReadRangeIsImmutableView(t *testing.T) {
	s := NewMem()
	s.Put("obj", []byte("abcdef"))
	b, err := s.ReadRange("obj", 1, 3)
	if err != nil || string(b) != "bcd" {
		t.Fatalf("ReadRange = %q, %v", b, err)
	}
	// The view is capacity-clipped: appending cannot clobber the rest
	// of the stored object.
	b = append(b, 'X')
	if full, _ := ReadAll(s, "obj"); !bytes.Equal(full, []byte("abcdef")) {
		t.Fatalf("stored object mutated to %q", full)
	}
}

func TestCoalesce(t *testing.T) {
	r := func(off, n int64) Range { return Range{Off: off, Len: n} }
	cases := []struct {
		name   string
		in     []Range
		gap    int64
		maxRun int64
		want   []Run
	}{
		{"empty", nil, 0, 0, nil},
		{"single", []Range{r(10, 5)}, 32, 0, []Run{{10, 5, 1}}},
		{"adjacent merge", []Range{r(0, 10), r(10, 10)}, 0, 0, []Run{{0, 20, 2}}},
		{"gap within threshold", []Range{r(0, 10), r(30, 10)}, 20, 0, []Run{{0, 40, 2}}},
		{"gap beyond threshold", []Range{r(0, 10), r(31, 10)}, 20, 0, []Run{{0, 10, 1}, {31, 10, 1}}},
		{"negative gap disables", []Range{r(0, 10), r(10, 10)}, -1, 0, []Run{{0, 10, 1}, {10, 10, 1}}},
		{"max run splits", []Range{r(0, 60), r(60, 60), r(120, 60)}, 0, 130, []Run{{0, 120, 2}, {120, 60, 1}}},
		{"three-way chain", []Range{r(0, 10), r(15, 10), r(30, 10)}, 5, 0, []Run{{0, 40, 3}}},
	}
	for _, tc := range cases {
		got := Coalesce(tc.in, tc.gap, tc.maxRun)
		if len(got) != len(tc.want) {
			t.Errorf("%s: %d runs, want %d (%+v)", tc.name, len(got), len(tc.want), got)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: run %d = %+v, want %+v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}

func TestReadRangeRetryTransient(t *testing.T) {
	s := NewFakeS3(nil, FakeS3Config{})
	s.Put("obj", []byte("0123456789"))

	// Two injected transient failures, then success: the retry loop
	// absorbs them and reports the retries taken.
	s.FailNextReads(2)
	b, retries, err := ReadRangeRetry(s, "obj", 2, 4, 0)
	if err != nil || string(b) != "2345" {
		t.Fatalf("ReadRangeRetry = %q, %v", b, err)
	}
	if retries != 2 {
		t.Fatalf("retries = %d, want 2", retries)
	}
	if s.InjectedFailures() != 2 {
		t.Fatalf("injected = %d, want 2", s.InjectedFailures())
	}

	// More failures than attempts: the final error is transient and
	// carries the object name.
	s.FailNextReads(10)
	_, retries, err = ReadRangeRetry(s, "obj", 0, 1, 3)
	if !IsTransient(err) {
		t.Fatalf("exhausted retry error = %v, want transient", err)
	}
	if retries != 2 {
		t.Fatalf("retries = %d, want 2 (attempts=3)", retries)
	}
	if !strings.Contains(err.Error(), "obj") {
		t.Errorf("error %q lacks object name", err)
	}
	s.FailNextReads(-10) // drain leftovers for any following test
}

func TestReadRangeRetryPermanentNotRetried(t *testing.T) {
	s := NewMem()
	s.Put("obj", []byte("xy"))
	_, retries, err := ReadRangeRetry(s, "missing", 0, 1, 0)
	if !IsNotExist(err) || retries != 0 {
		t.Fatalf("ReadRangeRetry(missing) = retries %d, err %v; want 0, not-exist", retries, err)
	}
	var pathErr *fs.PathError
	_ = pathErr
}

func TestFakeS3FailEveryN(t *testing.T) {
	s := NewFakeS3(nil, FakeS3Config{FailEveryN: 3})
	s.Put("obj", []byte("abc"))
	failures := 0
	for i := 0; i < 9; i++ {
		if _, err := s.ReadRange("obj", 0, 1); err != nil {
			if !IsTransient(err) {
				t.Fatalf("injected error not transient: %v", err)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("%d injected failures over 9 reads, want 3", failures)
	}
}

func TestFakeS3Counters(t *testing.T) {
	s := NewFakeS3(nil, FakeS3Config{})
	s.Put("obj", []byte("0123456789"))
	s.ReadRange("obj", 0, 4)
	s.ReadRange("obj", 4, 6)
	s.Size("obj")
	if got := s.RangeReadCount(); got != 2 {
		t.Errorf("RangeReadCount = %d, want 2", got)
	}
	if got := s.BytesRead(); got != 10 {
		t.Errorf("BytesRead = %d, want 10", got)
	}
	if got := s.Requests(); got != 4 {
		t.Errorf("Requests = %d, want 4 (put + 2 reads + size)", got)
	}
}
