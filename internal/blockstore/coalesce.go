package blockstore

// Range is one byte range of an object, as the coalescer sees it.
type Range struct {
	Off, Len int64
}

// Run is one merged ranged read: it covers Blocks consecutive input
// ranges (and the gap bytes between them).
type Run struct {
	Off, Len int64
	Blocks   int
}

// DefaultCoalesceGap is the gap threshold when callers pass 0: two
// block refs whose dead space is under 32 KiB merge into one ranged
// read. On an object store a request costs far more than 32 KiB of
// discarded payload; on local disk the readahead window absorbs it.
const DefaultCoalesceGap = 32 << 10

// MaxCoalescedRun bounds one merged read (8 MiB) so coalescing a long
// block sequence never turns into an unbounded buffer.
const MaxCoalescedRun = 8 << 20

// Coalesce merges ranges (which must be sorted by Off and
// non-overlapping) into runs: a range joins the current run when the
// gap to the run's end is at most gap and the merged length stays
// within maxRun. gap < 0 disables merging (every range is its own
// run); maxRun <= 0 selects MaxCoalescedRun.
func Coalesce(ranges []Range, gap, maxRun int64) []Run {
	if len(ranges) == 0 {
		return nil
	}
	if maxRun <= 0 {
		maxRun = MaxCoalescedRun
	}
	runs := make([]Run, 0, len(ranges))
	cur := Run{Off: ranges[0].Off, Len: ranges[0].Len, Blocks: 1}
	for _, r := range ranges[1:] {
		end := cur.Off + cur.Len
		newLen := r.Off + r.Len - cur.Off
		if gap >= 0 && r.Off-end <= gap && newLen <= maxRun {
			cur.Len = newLen
			cur.Blocks++
			continue
		}
		runs = append(runs, cur)
		cur = Run{Off: r.Off, Len: r.Len, Blocks: 1}
	}
	return append(runs, cur)
}
