package blockstore

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Mem is the in-memory store: a map of immutable byte objects. It is
// the substrate for tests, the fake remote, and fully in-memory
// tables; contents die with the process.
type Mem struct {
	label string
	mu    sync.RWMutex
	objs  map[string][]byte
}

var _ Store = (*Mem)(nil)

// memSeq makes every Mem label unique: two Mem stores never share
// cached blocks even when both serve an object of the same name.
var memSeq atomic.Uint64

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		label: fmt.Sprintf("mem:%d", memSeq.Add(1)),
		objs:  make(map[string][]byte),
	}
}

func (s *Mem) Label() string { return s.label }

func (s *Mem) ReadRange(name string, off, n int64) ([]byte, error) {
	s.mu.RLock()
	b, ok := s.objs[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("blockstore: %s: %w", name, os.ErrNotExist)
	}
	if off < 0 || n < 0 || off+n > int64(len(b)) {
		return nil, fmt.Errorf("blockstore: %s: range [%d,+%d) outside object of %d bytes: %w",
			name, off, n, len(b), io.ErrUnexpectedEOF)
	}
	countRead(n)
	// Objects are immutable; returning a subslice is safe and free.
	return b[off : off+n : off+n], nil
}

func (s *Mem) Size(name string) (int64, error) {
	s.mu.RLock()
	b, ok := s.objs[name]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("blockstore: %s: %w", name, os.ErrNotExist)
	}
	return int64(len(b)), nil
}

func (s *Mem) Put(name string, data []byte) error {
	if err := validName(name); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.objs[name] = cp
	s.mu.Unlock()
	return nil
}

func (s *Mem) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objs[name]; !ok {
		return fmt.Errorf("blockstore: %s: %w", name, os.ErrNotExist)
	}
	delete(s.objs, name)
	return nil
}

func (s *Mem) List() ([]string, error) {
	s.mu.RLock()
	names := make([]string, 0, len(s.objs))
	for name := range s.objs {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names, nil
}
