package blockstore

import (
	"fmt"
	"sync/atomic"
	"time"
)

// FakeS3Config shapes the fake remote's behavior.
type FakeS3Config struct {
	// Latency is the fixed per-request round trip added to every
	// operation (the dominant cost of real object stores: ~ tens of
	// milliseconds per GET regardless of size).
	Latency time.Duration
	// ThroughputBps caps transfer speed: each request additionally
	// sleeps payloadBytes/ThroughputBps. 0 = unbounded.
	ThroughputBps int64
	// FailEveryN makes every Nth ReadRange fail with a transient error
	// before touching the inner store (0 = never). Models throttling
	// and connection resets.
	FailEveryN int
}

// FakeS3 is an S3-style remote fake: a wrapper that charges per-request
// latency and throughput, counts requests, and injects transient
// range-read failures. It wraps any inner store (Mem by default; FS to
// fake a remote over a persistent directory), so its data path is real
// and only the cost model is simulated.
type FakeS3 struct {
	inner Store
	cfg   FakeS3Config
	label string

	requests   atomic.Int64 // every operation
	rangeReads atomic.Int64 // ReadRange operations (incl. injected failures)
	bytesRead  atomic.Int64 // payload bytes served by ReadRange
	injected   atomic.Int64 // failures injected
	failNext   atomic.Int64 // pending forced failures (FailNextReads)
	readSeq    atomic.Int64 // ReadRange sequence for FailEveryN
}

var _ Store = (*FakeS3)(nil)

// NewFakeS3 wraps inner (nil selects a fresh Mem) with the fake's cost
// model.
func NewFakeS3(inner Store, cfg FakeS3Config) *FakeS3 {
	if inner == nil {
		inner = NewMem()
	}
	return &FakeS3{inner: inner, cfg: cfg, label: "fakes3(" + inner.Label() + ")"}
}

// Inner returns the wrapped store.
func (s *FakeS3) Inner() Store { return s.inner }

func (s *FakeS3) Label() string { return s.label }

// delay charges one request round trip plus n payload bytes.
func (s *FakeS3) delay(n int64) {
	d := s.cfg.Latency
	if s.cfg.ThroughputBps > 0 {
		d += time.Duration(n * int64(time.Second) / s.cfg.ThroughputBps)
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// shouldFail consumes one forced or periodic failure, if due.
func (s *FakeS3) shouldFail() bool {
	for {
		v := s.failNext.Load()
		if v <= 0 {
			break
		}
		if s.failNext.CompareAndSwap(v, v-1) {
			return true
		}
	}
	if n := s.cfg.FailEveryN; n > 0 && s.readSeq.Add(1)%int64(n) == 0 {
		return true
	}
	return false
}

func (s *FakeS3) ReadRange(name string, off, n int64) ([]byte, error) {
	s.requests.Add(1)
	s.rangeReads.Add(1)
	if s.shouldFail() {
		s.injected.Add(1)
		s.delay(0)
		return nil, fmt.Errorf("blockstore: %s: range [%d,+%d): injected failure: %w",
			name, off, n, ErrTransient)
	}
	s.delay(n)
	b, err := s.inner.ReadRange(name, off, n)
	if err == nil {
		s.bytesRead.Add(n)
	}
	return b, err
}

func (s *FakeS3) Size(name string) (int64, error) {
	s.requests.Add(1)
	s.delay(0)
	return s.inner.Size(name)
}

func (s *FakeS3) Put(name string, data []byte) error {
	s.requests.Add(1)
	s.delay(int64(len(data)))
	return s.inner.Put(name, data)
}

func (s *FakeS3) Delete(name string) error {
	s.requests.Add(1)
	s.delay(0)
	return s.inner.Delete(name)
}

func (s *FakeS3) List() ([]string, error) {
	s.requests.Add(1)
	s.delay(0)
	return s.inner.List()
}

// FailNextReads forces the next n ReadRange calls to fail with a
// transient error (robustness and retry tests). Negative n clears any
// pending forced failures.
func (s *FakeS3) FailNextReads(n int) {
	if n < 0 {
		s.failNext.Store(0)
		return
	}
	s.failNext.Add(int64(n))
}

// Requests returns the total request count across all operations.
func (s *FakeS3) Requests() int64 { return s.requests.Load() }

// RangeReadCount returns ReadRange requests issued (failures included).
func (s *FakeS3) RangeReadCount() int64 { return s.rangeReads.Load() }

// BytesRead returns payload bytes served by successful range reads.
func (s *FakeS3) BytesRead() int64 { return s.bytesRead.Load() }

// InjectedFailures returns how many transient failures were injected.
func (s *FakeS3) InjectedFailures() int64 { return s.injected.Load() }

// Close closes the inner store, if closable.
func (s *FakeS3) Close() error { return Close(s.inner) }
