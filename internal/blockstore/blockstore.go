// Package blockstore abstracts segment I/O behind a ranged-read
// object store — the storage half of a storage/compute separation.
// Segments, manifests, and recovery all speak this interface, so the
// same engine runs off a local directory, an in-memory map, or (via
// the latency-injecting fake) an S3-style remote.
//
// The storage contract (DESIGN.md §6.9):
//
//   - Objects are immutable: once Put returns, the bytes under that
//     name never change. The one exception is the manifest, which is
//     republished wholesale under its fixed name; a Put over an
//     existing name atomically replaces the whole object.
//   - Put is atomic and durable: readers see either the previous
//     object (or none) or the complete new one, never a prefix, and a
//     nil error means the object survives a crash.
//   - Read-after-commit visibility: an object is readable by name the
//     moment Put returns. Nothing is promised about objects whose Put
//     never returned — recovery deletes them.
//   - ReadRange(name, off, n) returns exactly n bytes or an error; a
//     range past the object's end is a short read, reported as an
//     error wrapping io.ErrUnexpectedEOF with the name and range.
//   - Missing objects report an error wrapping fs.ErrNotExist.
//   - Transient errors (throttling, connection resets — injected by
//     the fake) wrap ErrTransient; callers retry with backoff
//     (ReadRangeRetry) before treating a failure as real.
package blockstore

import (
	"errors"
	"io"
	"os"
	"time"

	"repro/internal/obs"
)

// Store is a flat namespace of immutable byte objects with ranged
// reads. Implementations must be safe for concurrent use.
type Store interface {
	// Label uniquely identifies the store instance for cache keying:
	// buffer-pool object IDs are derived from Label()+"/"+name, so two
	// stores must never share a label unless they serve identical bytes.
	Label() string
	// ReadRange returns bytes [off, off+n) of the named object. The
	// returned slice must not be mutated by the caller (it may alias
	// store-internal memory).
	ReadRange(name string, off, n int64) ([]byte, error)
	// Size returns the object's length in bytes.
	Size(name string) (int64, error)
	// Put atomically publishes data under name (see the package
	// contract). The store copies or otherwise owns data after return.
	Put(name string, data []byte) error
	// Delete removes the named object.
	Delete(name string) error
	// List returns every object name, sorted.
	List() ([]string, error)
}

// ErrTransient marks a retryable store failure (throttling, connection
// reset). Errors wrapping it are retried by ReadRangeRetry; anything
// else is treated as permanent.
var ErrTransient = errors.New("transient store error")

// IsTransient reports whether err is a retryable store failure.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsNotExist reports whether err means the object does not exist.
func IsNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }

// countRead books one issued range read into the global registry.
// The concrete stores (FS, Mem) call it; the fake delegates to an
// inner store, so each request is counted exactly once.
func countRead(n int64) {
	obs.StoreRangeReads.Add(1)
	obs.StoreBytesRead.Add(n)
}

// Rename is the atomic-commit step of FS.Put. Tests inject a failing
// hook here to simulate a crash between writing an object's temporary
// and publishing it — the window the manifest recovery protocol
// exists for. Production code never touches it.
var Rename = os.Rename

// DefaultReadAttempts bounds ReadRangeRetry: the initial read plus up
// to three retries, with exponential backoff starting at retryBaseDelay.
const DefaultReadAttempts = 4

// retryBaseDelay is the first backoff step; it doubles per retry. Kept
// short because the fake's injected failures are instantaneous and
// real transients (throttling) are themselves sub-second.
const retryBaseDelay = time.Millisecond

// ReadRangeRetry is ReadRange with bounded retry-with-backoff on
// transient errors. It returns the bytes, the number of retries taken
// (0 when the first attempt succeeded), and the final error. attempts
// <= 0 selects DefaultReadAttempts. Every retry increments the global
// store_retries counter.
func ReadRangeRetry(s Store, name string, off, n int64, attempts int) ([]byte, int, error) {
	if attempts <= 0 {
		attempts = DefaultReadAttempts
	}
	delay := retryBaseDelay
	retries := 0
	for {
		b, err := s.ReadRange(name, off, n)
		if err == nil || !IsTransient(err) || retries >= attempts-1 {
			return b, retries, err
		}
		retries++
		obs.StoreRetries.Add(1)
		time.Sleep(delay)
		delay *= 2
	}
}

// ReadAll returns the named object's full contents (Size + one ranged
// read, with transient retries).
func ReadAll(s Store, name string) ([]byte, error) {
	size, err := s.Size(name)
	if err != nil {
		return nil, err
	}
	b, _, err := ReadRangeRetry(s, name, 0, size, 0)
	return b, err
}

// Close closes the store if its implementation holds releasable
// resources (FS file handles); stores without a Close are a no-op.
func Close(s Store) error {
	if c, ok := s.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
