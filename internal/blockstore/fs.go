package blockstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// FS is the local-filesystem store: objects are files directly under
// one directory — exactly the layout table directories have always
// used, so FS over an existing directory reads it unchanged. Read
// handles are cached per object (segments are read many times over
// their life) and dropped on Put/Delete.
type FS struct {
	dir   string
	label string

	mu     sync.Mutex
	files  map[string]*os.File
	closed bool
}

var _ Store = (*FS)(nil)

// NewFS opens (creating if needed) the directory as a store.
func NewFS(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	label := dir
	if abs, err := filepath.Abs(dir); err == nil {
		label = abs
	}
	return &FS{dir: dir, label: "fs:" + label, files: make(map[string]*os.File)}, nil
}

// Dir returns the backing directory path.
func (s *FS) Dir() string { return s.dir }

func (s *FS) Label() string { return s.label }

// validName rejects names that would escape the store's flat
// namespace (path separators, dot traversals, empty names).
func validName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("blockstore: invalid object name %q", name)
	}
	return nil
}

// handle returns the cached read handle for name, opening it on first
// use. The caller must not close it.
func (s *FS) handle(name string) (*os.File, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("blockstore: %s: store is closed", name)
	}
	if f, ok := s.files[name]; ok {
		return f, nil
	}
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	s.files[name] = f
	return f, nil
}

// dropHandle closes and forgets name's cached handle (the object was
// replaced or deleted).
func (s *FS) dropHandle(name string) {
	s.mu.Lock()
	if f, ok := s.files[name]; ok {
		delete(s.files, name)
		f.Close()
	}
	s.mu.Unlock()
}

func (s *FS) ReadRange(name string, off, n int64) ([]byte, error) {
	f, err := s.handle(name)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("blockstore: %s: range [%d,+%d): %w", name, off, n, err)
	}
	countRead(n)
	return buf, nil
}

func (s *FS) Size(name string) (int64, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	fi, err := os.Stat(filepath.Join(s.dir, name))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Put writes data to a temporary sibling, fsyncs, and renames it into
// place — the atomic-publish protocol segment files and manifests have
// always used, now enforced for every object. The directory itself is
// synced (best effort) so the rename survives a crash.
func (s *FS) Put(name string, data []byte) error {
	if err := validName(name); err != nil {
		return err
	}
	path := filepath.Join(s.dir, name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	s.syncDir()
	s.dropHandle(name)
	return nil
}

// syncDir makes a rename durable (best effort — some platforms cannot
// fsync directories).
func (s *FS) syncDir() {
	d, err := os.Open(s.dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

func (s *FS) Delete(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	s.dropHandle(name)
	return os.Remove(filepath.Join(s.dir, name))
}

func (s *FS) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil // ReadDir sorts
}

// Close releases every cached read handle. Reads after Close fail.
func (s *FS) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for name, f := range s.files {
		if err := f.Close(); first == nil {
			first = err
		}
		delete(s.files, name)
	}
	s.closed = true
	return first
}
