package dates

import (
	"testing"
	"time"
)

func TestParseFormats(t *testing.T) {
	ok := []string{
		"2020-06-01",
		"2020-06-01 13:45:09",
		"2020-06-01T13:45:09Z",
		"2020-06-01T13:45:09+02:00",
		"2020-06-01T13:45:09",
		"Mon Jun 01 13:45:09 +0000 2020",
		"2020/06/01",
		"06/01/2020",
	}
	for _, s := range ok {
		if _, got := Parse(s); !got {
			t.Errorf("Parse(%q) failed", s)
		}
	}
	bad := []string{
		"", "hello", "12345678", "2020-13-40", "not a date at all",
		"2020-06-01x", "99.99", "June first", "1/10",
	}
	for _, s := range bad {
		if _, got := Parse(s); got {
			t.Errorf("Parse(%q) unexpectedly succeeded", s)
		}
	}
}

func TestParseValue(t *testing.T) {
	m, ok := Parse("2020-06-01 00:00:00")
	if !ok {
		t.Fatal("parse failed")
	}
	want := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC).UnixMicro()
	if m != want {
		t.Errorf("micros = %d, want %d", m, want)
	}
	if Format(m) != "2020-06-01 00:00:00" {
		t.Errorf("Format = %s", Format(m))
	}
	if FormatDate(m) != "2020-06-01" {
		t.Errorf("FormatDate = %s", FormatDate(m))
	}
}

func TestRoundTripThroughTime(t *testing.T) {
	now := time.Date(2021, 3, 14, 15, 9, 26, 535000, time.UTC)
	m := FromTime(now)
	if !ToTime(m).Equal(now) {
		t.Errorf("round trip: %v != %v", ToTime(m), now)
	}
}

func TestDetectColumn(t *testing.T) {
	dates := []string{"2020-06-01", "2020-06-02", "2020-06-03"}
	if !DetectColumn(dates, 0) {
		t.Error("all-dates column not detected")
	}
	mixed := []string{"2020-06-01", "not-a-date", "2020-06-03"}
	if DetectColumn(mixed, 0) {
		t.Error("mixed column detected as dates")
	}
	if DetectColumn(nil, 0) {
		t.Error("empty column detected")
	}
	names := []string{"alice", "bob"}
	if DetectColumn(names, 0) {
		t.Error("names detected as dates")
	}
}

func TestDetectColumnSampling(t *testing.T) {
	// Large column: detection must stay cheap but still correct.
	many := make([]string, 100000)
	for i := range many {
		many[i] = "2020-06-01 10:00:00"
	}
	if !DetectColumn(many, 64) {
		t.Error("large date column not detected")
	}
}
