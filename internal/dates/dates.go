// Package dates implements the date/time detection of paper §4.9.
// JSON has no date type, so dates arrive as strings; queries cast them
// (`->>'create'::Date`). When the values of a string column match a
// known date or time format, the tile extractor stores them as SQL
// Timestamps, and the cast resolves against the typed column. Because
// the exact input string cannot always be recreated from a timestamp,
// extracted timestamps are only served for Date/Time-typed casts —
// text accesses fall back to the binary JSON (the "hybrid method").
package dates

import "time"

// Micros is a timestamp in microseconds since the Unix epoch — the
// SQL Timestamp representation used by extracted columns.
type Micros = int64

// layouts are tried in order. The set covers ISO 8601/RFC 3339, SQL
// timestamp syntax, the Twitter API's created_at format, and plain
// dates — the formats of the paper's evaluated data sets.
var layouts = []string{
	"2006-01-02 15:04:05",
	"2006-01-02T15:04:05Z07:00", // RFC 3339
	"2006-01-02T15:04:05",
	"2006-01-02 15:04:05.999999",
	"2006-01-02",
	"Mon Jan 02 15:04:05 -0700 2006", // Twitter created_at
	"2006/01/02",
	"01/02/2006",
	"2006-01-02 15:04:05 -0700",
}

// Parse attempts to interpret s as a date or timestamp, returning
// microseconds since the epoch. Matching is strict: the whole string
// must be consumed by one known layout.
func Parse(s string) (Micros, bool) {
	if len(s) < 8 || len(s) > 35 {
		return 0, false
	}
	// Cheap pre-filter: a date/time string starts with a digit or a
	// weekday name and contains a separator.
	c := s[0]
	if !(c >= '0' && c <= '9') && !(c >= 'A' && c <= 'Z') {
		return 0, false
	}
	for _, layout := range layouts {
		if len(layout) > len(s)+6 || len(layout) < len(s)-12 {
			continue
		}
		if t, err := time.Parse(layout, s); err == nil {
			return t.UnixMicro(), true
		}
	}
	return 0, false
}

// Format renders a timestamp in SQL form ("2006-01-02 15:04:05"), the
// representation returned for Date/Time-typed casts.
func Format(m Micros) string {
	return time.UnixMicro(m).UTC().Format("2006-01-02 15:04:05")
}

// FormatDate renders just the date part.
func FormatDate(m Micros) string {
	return time.UnixMicro(m).UTC().Format("2006-01-02")
}

// FromTime converts a time.Time.
func FromTime(t time.Time) Micros { return t.UnixMicro() }

// ToTime converts back to a time.Time in UTC.
func ToTime(m Micros) time.Time { return time.UnixMicro(m).UTC() }

// DetectColumn samples string values and reports whether the column
// should be extracted as Timestamp: every sampled non-empty value must
// parse. The paper samples the potential column before deciding
// (§4.9); sampleLimit bounds the work.
func DetectColumn(values []string, sampleLimit int) bool {
	if len(values) == 0 {
		return false
	}
	if sampleLimit <= 0 {
		sampleLimit = 64
	}
	checked := 0
	step := len(values)/sampleLimit + 1
	for i := 0; i < len(values); i += step {
		if _, ok := Parse(values[i]); !ok {
			return false
		}
		checked++
	}
	return checked > 0
}
