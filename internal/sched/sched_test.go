package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsSubmittedTasks(t *testing.T) {
	p := New(2)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		for !p.TrySubmit(func() { n.Add(1); wg.Done() }) {
			time.Sleep(time.Millisecond) // queue full: wait for drain
		}
	}
	wg.Wait()
	if got := n.Load(); got != 50 {
		t.Fatalf("ran %d tasks, want 50", got)
	}
}

func TestTrySubmitRejectsWhenSaturated(t *testing.T) {
	p := New(1) // 1 worker, queue of 8
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	// Occupy the worker...
	for !p.TrySubmit(func() { <-block; wg.Done() }) {
	}
	// ...then fill the queue until rejection.
	rejected := false
	for i := 0; i < 100; i++ {
		if !p.TrySubmit(func() {}) {
			rejected = true
			break
		}
	}
	close(block)
	wg.Wait()
	if !rejected {
		t.Fatal("TrySubmit never rejected with a blocked worker and 100 pending tasks")
	}
}
