// Package sched provides the process-wide worker pool that parallel
// scans draw their helper goroutines from. Before the query service,
// every scan spawned its own `workers` goroutines; N concurrent
// queries therefore ran N×workers goroutines fighting over the same
// cores. The pool caps execution parallelism at the machine's core
// count: each scan drains its morsel queue inline on the calling
// goroutine and enlists up to workers−1 pool helpers, so concurrent
// queries share the cores instead of oversubscribing them — the
// morsel-driven equivalent of a database's shared worker scheduler.
package sched

import (
	"runtime"

	"repro/internal/obs"
)

// Pool is a fixed-size worker pool fed by a bounded task queue.
// Submission is non-blocking: when the queue is full the caller keeps
// the work (runs it inline), so the pool can never deadlock on its own
// backlog and overload degrades to less parallelism, not more
// goroutines.
type Pool struct {
	tasks chan func()
}

// New returns a pool of n workers (minimum 1) with a task queue of
// 8×n slots — enough for several concurrent scans to park their
// helper requests without unbounded buildup.
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{tasks: make(chan func(), 8*n)}
	for i := 0; i < n; i++ {
		go p.loop()
	}
	return p
}

func (p *Pool) loop() {
	for f := range p.tasks {
		f()
		obs.SchedTasksRun.Inc()
	}
}

// TrySubmit enqueues f for a pool worker, reporting whether it was
// accepted. A full queue rejects immediately — callers fall back to
// doing the work inline with less parallelism.
func (p *Pool) TrySubmit(f func()) bool {
	select {
	case p.tasks <- f:
		return true
	default:
		obs.SchedSubmitMisses.Inc()
		return false
	}
}

// Shared is the process-wide pool, sized to the machine: all scans —
// and through them all concurrent queries — share these workers.
var Shared = New(runtime.GOMAXPROCS(0))
