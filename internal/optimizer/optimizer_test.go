package optimizer

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/exprparse"
	"repro/internal/storage"
)

// fixture builds three Tiles relations with very different sizes so
// join ordering has something to optimize: dim (10 rows), mid (200),
// fact (2000).
func fixture(t *testing.T) (dim, mid, fact storage.Relation) {
	t.Helper()
	load := func(name string, lines [][]byte) storage.Relation {
		cfg := storage.DefaultLoaderConfig()
		cfg.Tile.TileSize = 256
		l, _ := storage.NewLoader(storage.KindTiles, cfg)
		rel, err := l.Load(name, lines, 2)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	var dimL, midL, factL [][]byte
	for i := 0; i < 10; i++ {
		dimL = append(dimL, []byte(fmt.Sprintf(`{"d_id":%d,"d_name":"dim%d"}`, i, i)))
	}
	for i := 0; i < 200; i++ {
		midL = append(midL, []byte(fmt.Sprintf(`{"m_id":%d,"m_d":%d}`, i, i%10)))
	}
	for i := 0; i < 2000; i++ {
		factL = append(factL, []byte(fmt.Sprintf(`{"f_id":%d,"f_m":%d,"f_v":%d}`, i, i%200, i%7)))
	}
	return load("dim", dimL), load("mid", midL), load("fact", factL)
}

func acc(s string) storage.Access { return exprparse.MustParse(s) }

func TestPlanThreeWayJoin(t *testing.T) {
	dim, mid, fact := fixture(t)
	op, m, err := Plan(Query{
		Tables: []TableSpec{
			{Alias: "d", Rel: dim, Accesses: []storage.Access{
				acc(`data->>'d_id'::BigInt`), acc(`data->>'d_name'`)}},
			{Alias: "m", Rel: mid, Accesses: []storage.Access{
				acc(`data->>'m_id'::BigInt`), acc(`data->>'m_d'::BigInt`)}},
			{Alias: "f", Rel: fact, Accesses: []storage.Access{
				acc(`data->>'f_m'::BigInt`), acc(`data->>'f_v'::BigInt`)}},
		},
		Joins: []JoinSpec{
			{LeftAlias: "d", LeftSlot: 0, RightAlias: "m", RightSlot: 1},
			{LeftAlias: "m", LeftSlot: 0, RightAlias: "f", RightSlot: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Materialize(op, 2)
	if len(res.Rows) != 2000 {
		t.Fatalf("join produced %d rows, want 2000", len(res.Rows))
	}
	// Slot map must address every column.
	row := res.Rows[0]
	for _, probe := range []struct {
		alias string
		slot  int
	}{{"d", 0}, {"d", 1}, {"m", 0}, {"m", 1}, {"f", 0}, {"f", 1}} {
		idx := m.Slot(probe.alias, probe.slot)
		if idx < 0 || idx >= len(row) {
			t.Errorf("slot %s.%d out of range: %d", probe.alias, probe.slot, idx)
		}
	}
	// Spot-check join correctness: f_m joins m_id; m_d joins d_id.
	for _, r := range res.Rows[:20] {
		fm := r[m.Slot("f", 0)].I
		mid := r[m.Slot("m", 0)].I
		if fm != mid {
			t.Fatalf("join key mismatch: f_m=%d m_id=%d", fm, mid)
		}
		md := r[m.Slot("m", 1)].I
		did := r[m.Slot("d", 0)].I
		if md != did {
			t.Fatalf("join key mismatch: m_d=%d d_id=%d", md, did)
		}
	}
}

func TestPlanWithFilters(t *testing.T) {
	dim, mid, _ := fixture(t)
	op, m, err := Plan(Query{
		Tables: []TableSpec{
			{Alias: "d", Rel: dim,
				Accesses: []storage.Access{acc(`data->>'d_id'::BigInt`), acc(`data->>'d_name'`)},
				Filter: expr.NewCmp(expr.EQ, expr.NewCol(1, expr.TText),
					expr.NewConst(expr.TextValue("dim3")))},
			{Alias: "m", Rel: mid, Accesses: []storage.Access{
				acc(`data->>'m_id'::BigInt`), acc(`data->>'m_d'::BigInt`)}},
		},
		Joins: []JoinSpec{{LeftAlias: "d", LeftSlot: 0, RightAlias: "m", RightSlot: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Materialize(op, 1)
	if len(res.Rows) != 20 { // 200 mids / 10 dims
		t.Fatalf("%d rows, want 20", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[m.Slot("d", 1)].S != "dim3" {
			t.Fatal("filter leaked")
		}
	}
}

func TestCrossProductFallback(t *testing.T) {
	dim, _, _ := fixture(t)
	op, _, err := Plan(Query{
		Tables: []TableSpec{
			{Alias: "a", Rel: dim, Accesses: []storage.Access{acc(`data->>'d_id'::BigInt`)}},
			{Alias: "b", Rel: dim, Accesses: []storage.Access{acc(`data->>'d_id'::BigInt`)}},
		},
		// No join edges: cross product.
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := engine.CountRows(op, 1); n != 100 {
		t.Fatalf("cross product = %d rows, want 100", n)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, _, err := Plan(Query{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestJoinOrderPrefersSelectiveSide(t *testing.T) {
	// The estimator must rate (filtered dim ⋈ mid) cheaper than
	// (mid ⋈ fact): with statistics present, estimateBase shrinks the
	// filtered dim.
	dim, mid, fact := fixture(t)
	dSpec := TableSpec{Alias: "d", Rel: dim,
		Accesses: []storage.Access{acc(`data->>'d_id'::BigInt`), acc(`data->>'d_name'`)},
		Filter: expr.NewCmp(expr.EQ, expr.NewCol(1, expr.TText),
			expr.NewConst(expr.TextValue("dim3")))}
	if est := estimateBase(dSpec); est >= 10 {
		t.Errorf("filtered dim estimate %f not reduced", est)
	}
	mSpec := TableSpec{Alias: "m", Rel: mid, Accesses: []storage.Access{
		acc(`data->>'m_id'::BigInt`), acc(`data->>'m_d'::BigInt`)}}
	fSpec := TableSpec{Alias: "f", Rel: fact, Accesses: []storage.Access{
		acc(`data->>'f_m'::BigInt`)}}
	if em, ef := estimateBase(mSpec), estimateBase(fSpec); em >= ef {
		t.Errorf("mid (%f) should estimate smaller than fact (%f)", em, ef)
	}
}

func TestJoinKeysMarkedNullRejecting(t *testing.T) {
	dim, mid, _ := fixture(t)
	q := Query{
		Tables: []TableSpec{
			{Alias: "d", Rel: dim, Accesses: []storage.Access{acc(`data->>'d_id'::BigInt`)}},
			{Alias: "m", Rel: mid, Accesses: []storage.Access{
				acc(`data->>'m_id'::BigInt`), acc(`data->>'m_d'::BigInt`)}},
		},
		Joins: []JoinSpec{{LeftAlias: "d", LeftSlot: 0, RightAlias: "m", RightSlot: 1}},
	}
	// Plan mutates copies of the accesses; correctness is observable
	// through results (rows with NULL keys never join), but we can at
	// least check the plan runs and agrees with a manual join count.
	op, _, err := Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if n := engine.CountRows(op, 1); n != 200 {
		t.Errorf("join rows = %d, want 200", n)
	}
}

func TestExplain(t *testing.T) {
	dim, mid, fact := fixture(t)
	steps, err := Explain(Query{
		Tables: []TableSpec{
			{Alias: "d", Rel: dim, Accesses: []storage.Access{acc(`data->>'d_id'::BigInt`)}},
			{Alias: "m", Rel: mid, Accesses: []storage.Access{
				acc(`data->>'m_id'::BigInt`), acc(`data->>'m_d'::BigInt`)}},
			{Alias: "f", Rel: fact, Accesses: []storage.Access{acc(`data->>'f_m'::BigInt`)}},
		},
		Joins: []JoinSpec{
			{LeftAlias: "d", LeftSlot: 0, RightAlias: "m", RightSlot: 1},
			{LeftAlias: "m", LeftSlot: 0, RightAlias: "f", RightSlot: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %v", steps)
	}
	// The small dim ⋈ mid join must be chosen before touching the fact
	// table — the statistics-driven order the paper's §4.6 argues for.
	if steps[0] != "d ⋈ m (est=200)" {
		t.Errorf("first join = %q", steps[0])
	}
}
