// Package optimizer implements cost-based join ordering over JSON
// relations (paper §4.6). Cardinalities come from the relation
// statistics JSON tiles maintain (path frequency counters +
// HyperLogLog distinct counts); formats without statistics fall back
// to textbook default selectivities — which is precisely how bad join
// orders happen on them, the effect the paper demonstrates with
// PostgreSQL on Q18.
//
// The algorithm is greedy operator ordering (GOO): repeatedly join the
// pair of connected components with the smallest estimated result,
// building the smaller side of each hash join. For the join-graph
// sizes of the evaluated queries (≤ 8 relations) GOO tracks the
// optimal order closely while staying linear-ish.
package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/storage"
)

// TableSpec declares one base relation of a query: its accesses
// (pushed-down JSON paths) and an optional filter over those slots.
type TableSpec struct {
	Alias    string
	Rel      storage.Relation
	Accesses []storage.Access
	Names    []string
	Filter   expr.Expr
}

// JoinSpec is one equi-join edge between two table aliases, naming a
// slot (access index) on each side.
type JoinSpec struct {
	LeftAlias  string
	LeftSlot   int
	RightAlias string
	RightSlot  int
}

// Query is the join-level query description; aggregation and ordering
// are applied by the caller on top of the planned operator.
type Query struct {
	Tables []TableSpec
	Joins  []JoinSpec
	// Instrument, when non-nil, wraps every scan and join the planner
	// constructs (the EXPLAIN/ANALYZE path installs tracing operators
	// here). label names the operator kind, detail describes it, and
	// est is the planner's cardinality estimate.
	Instrument func(op engine.Operator, label, detail string, est float64) engine.Operator
}

// SlotMap resolves (alias, table-local slot) to the output slot of the
// planned operator tree.
type SlotMap struct {
	offsets map[string]int
}

// Slot returns the output slot for the alias's local access index.
func (m *SlotMap) Slot(alias string, local int) int {
	off, ok := m.offsets[alias]
	if !ok {
		panic(fmt.Sprintf("optimizer: unknown alias %q", alias))
	}
	return off + local
}

// Col builds a column reference for the alias's local slot with the
// access's type.
func (m *SlotMap) ColFor(alias string, local int, t expr.SQLType) *expr.Col {
	return expr.NewCol(m.Slot(alias, local), t)
}

// component is a connected sub-plan during GOO.
type component struct {
	op      engine.Operator
	card    float64
	offsets map[string]int
	width   int
	scans   map[string]*engine.Scan // alias -> scan (null-rejection marking)
	specs   map[string]TableSpec
}

// Explain returns the join order Plan would choose, as a list of
// "alias ⋈ alias (est=N)" steps — visibility into the §4.6 statistics
// integration for tests and demos.
func Explain(q Query) ([]string, error) {
	var steps []string
	_, _, err := plan(q, func(a, b *component, est float64) {
		steps = append(steps, fmt.Sprintf("%s ⋈ %s (est=%.0f)", aliases(a), aliases(b), est))
	})
	return steps, err
}

func aliases(c *component) string {
	out := make([]string, 0, len(c.offsets))
	for a := range c.offsets {
		out = append(out, a)
	}
	sort.Strings(out)
	return strings.Join(out, "+")
}

// Plan orders the query's joins and returns the root operator and the
// slot map.
func Plan(q Query) (engine.Operator, *SlotMap, error) {
	return plan(q, nil)
}

func plan(q Query, trace func(a, b *component, est float64)) (engine.Operator, *SlotMap, error) {
	if len(q.Tables) == 0 {
		return nil, nil, fmt.Errorf("optimizer: no tables")
	}
	// Mark join-key slots null-rejecting before scans are constructed:
	// inner-join keys never match NULL, so a tile lacking the key path
	// can be skipped (§4.8).
	rejecting := map[string]map[int]bool{}
	for _, j := range q.Joins {
		if rejecting[j.LeftAlias] == nil {
			rejecting[j.LeftAlias] = map[int]bool{}
		}
		if rejecting[j.RightAlias] == nil {
			rejecting[j.RightAlias] = map[int]bool{}
		}
		rejecting[j.LeftAlias][j.LeftSlot] = true
		rejecting[j.RightAlias][j.RightSlot] = true
	}

	comps := map[string]*component{}
	for _, t := range q.Tables {
		scan := engine.NewScan(t.Rel, append([]storage.Access(nil), t.Accesses...), t.Names, t.Filter)
		for slot := range rejecting[t.Alias] {
			scan.MarkNullRejecting(slot)
		}
		card := estimateBase(t)
		var op engine.Operator = scan
		if q.Instrument != nil {
			op = q.Instrument(scan, "Scan",
				fmt.Sprintf("%s %s", t.Alias, t.Rel.Name()), card)
		}
		comps[t.Alias] = &component{
			op:      op,
			card:    card,
			offsets: map[string]int{t.Alias: 0},
			width:   len(t.Accesses),
			scans:   map[string]*engine.Scan{t.Alias: scan},
			specs:   map[string]TableSpec{t.Alias: t},
		}
	}
	find := func(alias string) *component {
		for _, c := range comps {
			if _, ok := c.offsets[alias]; ok {
				return c
			}
		}
		return nil
	}

	edges := append([]JoinSpec(nil), q.Joins...)
	for len(comps) > 1 {
		// Choose the connected pair with the smallest estimated join
		// result; if the graph is disconnected, the smallest product.
		type choice struct {
			a, b    *component
			keys    []JoinSpec
			estCard float64
		}
		var best *choice
		for _, e := range edges {
			ca, cb := find(e.LeftAlias), find(e.RightAlias)
			if ca == nil || cb == nil || ca == cb {
				continue
			}
			keys := connectingEdges(edges, ca, cb)
			est := estimateJoin(ca, cb, keys, q)
			if best == nil || est < best.estCard {
				best = &choice{a: ca, b: cb, keys: keys, estCard: est}
			}
		}
		if best == nil {
			// Cross product: pick the two smallest components.
			var a, b *component
			for _, c := range comps {
				switch {
				case a == nil || c.card < a.card:
					a, b = c, a
				case b == nil || c.card < b.card:
					b = c
				}
			}
			best = &choice{a: a, b: b, estCard: a.card * b.card}
		}
		if trace != nil {
			trace(best.a, best.b, best.estCard)
		}
		merged := joinComponents(best.a, best.b, best.keys)
		merged.card = best.estCard
		if q.Instrument != nil {
			merged.op = q.Instrument(merged.op, "HashJoin",
				fmt.Sprintf("%s ⋈ %s", aliases(best.a), aliases(best.b)), best.estCard)
		}
		// Replace the two inputs with the merged component.
		for alias := range comps {
			if comps[alias] == best.a || comps[alias] == best.b {
				delete(comps, alias)
			}
		}
		var anchor string
		for a := range merged.offsets {
			anchor = a
			break
		}
		comps[anchor] = merged
	}
	var root *component
	for _, c := range comps {
		root = c
	}
	return root.op, &SlotMap{offsets: root.offsets}, nil
}

// connectingEdges returns every join edge between the two components
// (composite join keys).
func connectingEdges(edges []JoinSpec, a, b *component) []JoinSpec {
	var out []JoinSpec
	for _, e := range edges {
		_, la := a.offsets[e.LeftAlias]
		_, ra := a.offsets[e.RightAlias]
		_, lb := b.offsets[e.LeftAlias]
		_, rb := b.offsets[e.RightAlias]
		if (la && rb) || (ra && lb) {
			out = append(out, e)
		}
	}
	return out
}

// joinComponents builds the hash join: the smaller side becomes the
// build input.
func joinComponents(a, b *component, keys []JoinSpec) *component {
	build, probe := a, b
	if b.card < a.card {
		build, probe = b, a
	}
	var buildKeys, probeKeys []int
	for _, e := range keys {
		if _, onBuild := build.offsets[e.LeftAlias]; onBuild {
			buildKeys = append(buildKeys, build.offsets[e.LeftAlias]+e.LeftSlot)
			probeKeys = append(probeKeys, probe.offsets[e.RightAlias]+e.RightSlot)
		} else {
			buildKeys = append(buildKeys, build.offsets[e.RightAlias]+e.RightSlot)
			probeKeys = append(probeKeys, probe.offsets[e.LeftAlias]+e.LeftSlot)
		}
	}
	join := engine.NewHashJoin(build.op, probe.op, buildKeys, probeKeys, engine.InnerJoin)
	// Output layout: probe columns first, then build columns.
	offsets := map[string]int{}
	for alias, off := range probe.offsets {
		offsets[alias] = off
	}
	for alias, off := range build.offsets {
		offsets[alias] = probe.width + off
	}
	scans := map[string]*engine.Scan{}
	specs := map[string]TableSpec{}
	for m, src := range map[*component]bool{a: true, b: true} {
		_ = src
		for k, v := range m.scans {
			scans[k] = v
		}
		for k, v := range m.specs {
			specs[k] = v
		}
	}
	return &component{
		op:      join,
		offsets: offsets,
		width:   probe.width + build.width,
		scans:   scans,
		specs:   specs,
	}
}

// estimateBase estimates a filtered table's cardinality.
func estimateBase(t TableSpec) float64 {
	rows := float64(t.Rel.NumRows())
	if t.Filter == nil {
		return rows
	}
	return rows * estimateSelectivity(t.Filter, t, t.Rel.Stats())
}

// estimateSelectivity walks a predicate and combines per-atom
// estimates. With statistics, equality uses 1/distinct and presence
// uses the frequency counters; without, System-R style defaults.
func estimateSelectivity(e expr.Expr, t TableSpec, st *stats.TableStats) float64 {
	switch x := e.(type) {
	case *expr.And:
		return estimateSelectivity(x.L, t, st) * estimateSelectivity(x.R, t, st)
	case *expr.Or:
		s := estimateSelectivity(x.L, t, st) + estimateSelectivity(x.R, t, st)
		if s > 1 {
			s = 1
		}
		return s
	case *expr.Not:
		return 1 - estimateSelectivity(x.E, t, st)
	case *expr.Cmp:
		path := slotPath(x.L, t)
		constSide := x.R
		if path == "" {
			path = slotPath(x.R, t)
			constSide = x.L
		}
		if x.Op == expr.EQ {
			if st != nil && path != "" {
				return st.SelEquality(path)
			}
			return 0.05
		}
		if st != nil && path != "" {
			// Histogram-backed range estimate when the other side is a
			// numeric constant.
			if c, ok := constSide.(*expr.Const); ok {
				if xv, isNum := c.V.AsFloat(); isNum {
					switch x.Op {
					case expr.LT, expr.LE:
						return st.SelLess(path, xv)
					case expr.GT, expr.GE:
						return st.SelGreater(path, xv)
					}
				}
			}
			return st.SelRange(path)
		}
		return 1.0 / 3
	case *expr.Like:
		return 0.1
	case *expr.In:
		base := 0.05
		if st != nil {
			if path := slotPath(x.E, t); path != "" {
				base = st.SelEquality(path)
			}
		}
		s := base * float64(len(x.List))
		if s > 1 {
			s = 1
		}
		return s
	case *expr.IsNull:
		if st != nil {
			for slot := range expr.AllSlots(x.E) {
				if slot < len(t.Accesses) {
					nn := st.SelNotNull(t.Accesses[slot].PathEnc)
					if x.Negate {
						return nn
					}
					return 1 - nn
				}
			}
		}
		if x.Negate {
			return 0.9
		}
		return 0.1
	default:
		return 0.25
	}
}

// slotPath maps a column-reference expression (possibly wrapped in
// casts/arithmetic) back to its access path.
func slotPath(e expr.Expr, t TableSpec) string {
	for slot := range expr.AllSlots(e) {
		if slot >= 0 && slot < len(t.Accesses) {
			return t.Accesses[slot].PathEnc
		}
	}
	return ""
}

// estimateJoin estimates |A ⋈ B| over the connecting keys.
func estimateJoin(a, b *component, keys []JoinSpec, q Query) float64 {
	if len(keys) == 0 {
		return a.card * b.card
	}
	sel := 1.0
	for _, e := range keys {
		dl := distinctOf(a, b, e.LeftAlias, e.LeftSlot)
		dr := distinctOf(a, b, e.RightAlias, e.RightSlot)
		d := math.Max(dl, dr)
		if d < 1 {
			d = 1
		}
		sel /= d
	}
	est := a.card * b.card * sel
	if est < 1 {
		est = 1
	}
	return est
}

func distinctOf(a, b *component, alias string, slot int) float64 {
	for _, c := range []*component{a, b} {
		if spec, ok := c.specs[alias]; ok {
			if st := spec.Rel.Stats(); st != nil && slot < len(spec.Accesses) {
				return st.DistinctCount(spec.Accesses[slot].PathEnc)
			}
			// No statistics: assume the join key is unique on this
			// side (the default that goes wrong on skewed keys).
			return c.card
		}
	}
	return 1
}
