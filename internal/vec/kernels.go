// Predicate kernels: compiled filter trees that narrow a batch's
// selection vector with typed loops instead of per-row expression
// evaluation. Selection semantics follow SQL WHERE: a row survives
// only when the predicate is TRUE — NULL and FALSE both drop it —
// which is what lets conjunction chain kernels and disjunction merge
// two selections without tracking three-valued results per row.
package vec

import (
	"bytes"
	"strings"

	"repro/internal/expr"
)

// Pred is a compiled, immutable predicate. Apply narrows sel (nil =
// all n rows) writing into out[:0]; out may alias sel because kernels
// write behind their read position.
type pred interface {
	apply(b *Batch, sel []int32, n int, out []int32, sc *Scratch) []int32
}

// CompiledPred is a vectorizable predicate over batch column slots.
type CompiledPred struct {
	root    pred
	orPairs int
}

// Scratch holds the per-worker selection buffers a compiled predicate
// needs (one result buffer plus two per OR node). A Scratch must not
// be shared between concurrent workers.
type Scratch struct {
	main []int32
	or   [][]int32
	mask []bool // per-dictionary-code match table (LIKE/IN dict paths)
}

// NewScratch returns a scratch sized for the predicate.
func (p *CompiledPred) NewScratch() *Scratch {
	return &Scratch{or: make([][]int32, 2*p.orPairs)}
}

func grow(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, 0, n)
	}
	return buf[:0]
}

// Sel applies the predicate to the batch's current selection and
// returns the surviving selection (backed by the scratch; valid until
// the next Sel call with the same scratch).
func (p *CompiledPred) Sel(b *Batch, sc *Scratch) []int32 {
	sc.main = grow(sc.main, b.Len)
	for i := range sc.or {
		sc.or[i] = grow(sc.or[i], b.Len)
	}
	out := p.root.apply(b, b.Sel, b.Len, sc.main, sc)
	sc.main = out[:0]
	return out
}

// Compile translates an expression into a vectorized predicate. The
// supported shapes are comparisons between a column and a constant,
// IS [NOT] NULL, IN over constants, LIKE, bare boolean columns, AND
// and OR. ok is false when the expression (or a referenced slot ≥
// width) cannot be vectorized and the caller must evaluate row-wise.
func Compile(e expr.Expr, width int) (*CompiledPred, bool) {
	c := &CompiledPred{}
	root, ok := c.compile(e, width)
	if !ok {
		return nil, false
	}
	c.root = root
	return c, true
}

func (c *CompiledPred) compile(e expr.Expr, width int) (pred, bool) {
	slotOK := func(i int) bool { return i >= 0 && i < width }
	switch x := e.(type) {
	case *expr.And:
		l, ok := c.compile(x.L, width)
		if !ok {
			return nil, false
		}
		r, ok := c.compile(x.R, width)
		if !ok {
			return nil, false
		}
		return &andPred{l: l, r: r}, true
	case *expr.Or:
		id := c.orPairs
		c.orPairs++
		l, ok := c.compile(x.L, width)
		if !ok {
			return nil, false
		}
		r, ok := c.compile(x.R, width)
		if !ok {
			return nil, false
		}
		return &orPred{l: l, r: r, id: id}, true
	case *expr.Cmp:
		if col, okL := x.L.(*expr.Col); okL {
			if k, okR := x.R.(*expr.Const); okR && slotOK(col.Idx) {
				return &cmpPred{slot: col.Idx, op: x.Op, c: k.V}, true
			}
		}
		if k, okL := x.L.(*expr.Const); okL {
			if col, okR := x.R.(*expr.Col); okR && slotOK(col.Idx) {
				return &cmpPred{slot: col.Idx, op: flipCmp(x.Op), c: k.V}, true
			}
		}
		return nil, false
	case *expr.IsNull:
		if col, ok := x.E.(*expr.Col); ok && slotOK(col.Idx) {
			return &isNullPred{slot: col.Idx, negate: x.Negate}, true
		}
		return nil, false
	case *expr.In:
		if col, ok := x.E.(*expr.Col); ok && slotOK(col.Idx) {
			return newInPred(col.Idx, x.List), true
		}
		return nil, false
	case *expr.Like:
		if col, ok := x.E.(*expr.Col); ok && slotOK(col.Idx) {
			return newLikePred(col.Idx, x.Pattern), true
		}
		return nil, false
	case *expr.Col:
		if slotOK(x.Idx) {
			return &boolColPred{slot: x.Idx}, true
		}
		return nil, false
	default:
		return nil, false
	}
}

// flipCmp mirrors an operator across swapped operands (c op col →
// col flip(op) c).
func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op // EQ, NE are symmetric
	}
}

type andPred struct{ l, r pred }

func (p *andPred) apply(b *Batch, sel []int32, n int, out []int32, sc *Scratch) []int32 {
	o := p.l.apply(b, sel, n, out, sc)
	// The right side filters the left's output in place: its writes
	// trail its reads.
	return p.r.apply(b, o, n, o[:0], sc)
}

type orPred struct {
	l, r pred
	id   int
}

func (p *orPred) apply(b *Batch, sel []int32, n int, out []int32, sc *Scratch) []int32 {
	a := p.l.apply(b, sel, n, sc.or[2*p.id], sc)
	bb := p.r.apply(b, sel, n, sc.or[2*p.id+1], sc)
	sc.or[2*p.id] = a[:0]
	sc.or[2*p.id+1] = bb[:0]
	return mergeUnion(a, bb, out)
}

// mergeUnion merges two ascending selections (subsequences of the
// same parent selection) into out, dropping duplicates.
func mergeUnion(a, b, out []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// matchCmp converts a three-way comparison into the operator's truth
// value.
func matchCmp(op expr.CmpOp, c int) bool {
	switch op {
	case expr.EQ:
		return c == 0
	case expr.NE:
		return c != 0
	case expr.LT:
		return c < 0
	case expr.LE:
		return c <= 0
	case expr.GT:
		return c > 0
	default:
		return c >= 0
	}
}

type cmpPred struct {
	slot int
	op   expr.CmpOp
	c    expr.Value
}

func (p *cmpPred) apply(b *Batch, sel []int32, n int, out []int32, sc *Scratch) []int32 {
	v := &b.Cols[p.slot]
	if p.c.Null || v.AllNull {
		return out // NULL comparison is never TRUE
	}
	if v.Boxed != nil {
		return cmpBoxed(v, p.op, p.c, sel, n, out)
	}
	switch v.Type {
	case expr.TBigInt, expr.TTimestamp:
		switch p.c.Typ {
		case expr.TBigInt, expr.TTimestamp:
			if p.c.Typ == v.Type {
				return cmpInts(v, p.op, p.c.I, sel, n, out)
			}
			// Cross numeric types compare as float (expr.Compare).
			return cmpIntsAsFloat(v, p.op, float64(p.c.I), sel, n, out)
		case expr.TFloat:
			return cmpIntsAsFloat(v, p.op, p.c.F, sel, n, out)
		}
		return out
	case expr.TFloat:
		cf, ok := p.c.AsFloat()
		if !ok {
			return out
		}
		return cmpFloats(v, p.op, cf, sel, n, out)
	case expr.TText:
		if p.c.Typ != expr.TText {
			return out
		}
		return cmpStrs(v, p.op, p.c.S, sel, n, out)
	case expr.TBool:
		if p.c.Typ != expr.TBool {
			return out
		}
		return cmpBools(v, p.op, p.c.B, sel, n, out)
	}
	return out
}

func cmpInts(v *Vector, op expr.CmpOp, c int64, sel []int32, n int, out []int32) []int32 {
	ints := v.Ints
	if sel != nil {
		for _, i := range sel {
			if !v.IsNull(int(i)) {
				x := ints[i]
				if matchCmp(op, cmp3Int(x, c)) {
					out = append(out, i)
				}
			}
		}
		return out
	}
	if v.Nulls == nil {
		// Dense, null-free inner loop — the common extracted-column case.
		for i := 0; i < n; i++ {
			if matchCmp(op, cmp3Int(ints[i], c)) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if !v.IsNull(i) && matchCmp(op, cmp3Int(ints[i], c)) {
			out = append(out, int32(i))
		}
	}
	return out
}

func cmpIntsAsFloat(v *Vector, op expr.CmpOp, c float64, sel []int32, n int, out []int32) []int32 {
	ints := v.Ints
	if sel != nil {
		for _, i := range sel {
			if !v.IsNull(int(i)) && matchCmp(op, cmp3Float(float64(ints[i]), c)) {
				out = append(out, i)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if !v.IsNull(i) && matchCmp(op, cmp3Float(float64(ints[i]), c)) {
			out = append(out, int32(i))
		}
	}
	return out
}

func cmpFloats(v *Vector, op expr.CmpOp, c float64, sel []int32, n int, out []int32) []int32 {
	fs := v.Floats
	if sel != nil {
		for _, i := range sel {
			if !v.IsNull(int(i)) && matchCmp(op, cmp3Float(fs[i], c)) {
				out = append(out, i)
			}
		}
		return out
	}
	if v.Nulls == nil {
		for i := 0; i < n; i++ {
			if matchCmp(op, cmp3Float(fs[i], c)) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if !v.IsNull(i) && matchCmp(op, cmp3Float(fs[i], c)) {
			out = append(out, int32(i))
		}
	}
	return out
}

func cmpStrs(v *Vector, op expr.CmpOp, c string, sel []int32, n int, out []int32) []int32 {
	cb := []byte(c)
	if v.Dict {
		return cmpStrsDict(v, op, cb, sel, n, out)
	}
	if sel != nil {
		for _, i := range sel {
			if !v.IsNull(int(i)) && matchCmp(op, bytes.Compare(v.StrAt(int(i)), cb)) {
				out = append(out, i)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if !v.IsNull(i) && matchCmp(op, bytes.Compare(v.StrAt(i), cb)) {
			out = append(out, int32(i))
		}
	}
	return out
}

func cmpBools(v *Vector, op expr.CmpOp, c bool, sel []int32, n int, out []int32) []int32 {
	cmp := func(x bool) int {
		switch {
		case x == c:
			return 0
		case c:
			return -1
		default:
			return 1
		}
	}
	if sel != nil {
		for _, i := range sel {
			if !v.IsNull(int(i)) && matchCmp(op, cmp(v.Bool(int(i)))) {
				out = append(out, i)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if !v.IsNull(i) && matchCmp(op, cmp(v.Bool(i))) {
			out = append(out, int32(i))
		}
	}
	return out
}

func cmpBoxed(v *Vector, op expr.CmpOp, c expr.Value, sel []int32, n int, out []int32) []int32 {
	test := func(i int) bool {
		x := v.Boxed[i]
		if x.Null {
			return false
		}
		cv, ok := expr.Compare(x, c)
		return ok && matchCmp(op, cv)
	}
	if sel != nil {
		for _, i := range sel {
			if test(int(i)) {
				out = append(out, i)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if test(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

func cmp3Int(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmp3Float(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

type isNullPred struct {
	slot   int
	negate bool
}

func (p *isNullPred) apply(b *Batch, sel []int32, n int, out []int32, sc *Scratch) []int32 {
	v := &b.Cols[p.slot]
	if sel != nil {
		for _, i := range sel {
			if v.IsNull(int(i)) != p.negate {
				out = append(out, i)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if v.IsNull(i) != p.negate {
			out = append(out, int32(i))
		}
	}
	return out
}

type inPred struct {
	slot int
	list []expr.Value
	strs [][]byte // TText constants pre-converted for byte comparison
}

func newInPred(slot int, list []expr.Value) *inPred {
	p := &inPred{slot: slot, list: list}
	for _, c := range list {
		if !c.Null && c.Typ == expr.TText {
			p.strs = append(p.strs, []byte(c.S))
		}
	}
	return p
}

func (p *inPred) apply(b *Batch, sel []int32, n int, out []int32, sc *Scratch) []int32 {
	v := &b.Cols[p.slot]
	if v.AllNull {
		return out
	}
	var test func(i int) bool
	switch {
	case v.Boxed != nil:
		test = func(i int) bool {
			x := v.Boxed[i]
			if x.Null {
				return false
			}
			for _, c := range p.list {
				if expr.Equal(x, c) {
					return true
				}
			}
			return false
		}
	case v.Type == expr.TText:
		if v.Dict {
			return p.inDict(v, sel, n, out, sc)
		}
		test = func(i int) bool {
			if v.IsNull(i) {
				return false
			}
			s := v.StrAt(i)
			for _, c := range p.strs {
				if bytes.Equal(s, c) {
					return true
				}
			}
			return false
		}
	default:
		// Numeric / bool / timestamp vectors: box the cell (no
		// allocation for these types) and reuse SQL equality.
		test = func(i int) bool {
			if v.IsNull(i) {
				return false
			}
			x := v.Value(i)
			for _, c := range p.list {
				if expr.Equal(x, c) {
					return true
				}
			}
			return false
		}
	}
	if sel != nil {
		for _, i := range sel {
			if test(int(i)) {
				out = append(out, i)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if test(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

type likeKind uint8

const (
	likeExact likeKind = iota
	likePrefix
	likeSuffix
	likeContains
)

type likePred struct {
	slot    int
	pattern string
	kind    likeKind
	needle  []byte // pattern with the % stripped, pre-converted
}

func newLikePred(slot int, pattern string) *likePred {
	p := &likePred{slot: slot, pattern: pattern}
	switch {
	case strings.HasPrefix(pattern, "%") && strings.HasSuffix(pattern, "%") && len(pattern) >= 2:
		p.kind, p.needle = likeContains, []byte(pattern[1:len(pattern)-1])
	case strings.HasPrefix(pattern, "%"):
		p.kind, p.needle = likeSuffix, []byte(pattern[1:])
	case strings.HasSuffix(pattern, "%") && len(pattern) >= 1:
		p.kind, p.needle = likePrefix, []byte(pattern[:len(pattern)-1])
	default:
		p.kind, p.needle = likeExact, []byte(pattern)
	}
	return p
}

func (p *likePred) match(s []byte) bool {
	switch p.kind {
	case likeContains:
		return bytes.Contains(s, p.needle)
	case likeSuffix:
		return bytes.HasSuffix(s, p.needle)
	case likePrefix:
		return bytes.HasPrefix(s, p.needle)
	default:
		return bytes.Equal(s, p.needle)
	}
}

func (p *likePred) apply(b *Batch, sel []int32, n int, out []int32, sc *Scratch) []int32 {
	v := &b.Cols[p.slot]
	if v.AllNull {
		return out
	}
	var test func(i int) bool
	switch {
	case v.Boxed != nil:
		test = func(i int) bool {
			x := v.Boxed[i]
			return !x.Null && x.Typ == expr.TText && expr.MatchLike(x.S, p.pattern)
		}
	case v.Type == expr.TText:
		if v.Dict {
			return p.likeDict(v, sel, n, out, sc)
		}
		test = func(i int) bool {
			return !v.IsNull(i) && p.match(v.StrAt(i))
		}
	default:
		return out // non-text LIKE is NULL row-wise, never TRUE
	}
	if sel != nil {
		for _, i := range sel {
			if test(int(i)) {
				out = append(out, i)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if test(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

type boolColPred struct{ slot int }

func (p *boolColPred) apply(b *Batch, sel []int32, n int, out []int32, sc *Scratch) []int32 {
	v := &b.Cols[p.slot]
	if v.AllNull {
		return out
	}
	var test func(i int) bool
	if v.Boxed != nil {
		test = func(i int) bool { return v.Boxed[i].IsTrue() }
	} else if v.Type == expr.TBool {
		test = func(i int) bool { return !v.IsNull(i) && v.Bool(i) }
	} else {
		return out
	}
	if sel != nil {
		for _, i := range sel {
			if test(int(i)) {
				out = append(out, i)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if test(i) {
			out = append(out, int32(i))
		}
	}
	return out
}
