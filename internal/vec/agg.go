// Aggregate kernels: tight loops over the typed backing of a vector,
// restricted to the selected rows. Accumulation order and arithmetic
// mirror the row-at-a-time aggregation states exactly (integer sums
// keep a parallel float sum accumulated per element, min/max use
// strict comparisons and keep the first value on ties) so that both
// execution paths produce identical results.
package vec

// IntSums holds the result of a SumInts pass.
type IntSums struct {
	Sum   int64
	FSum  float64
	Count int64
}

// SumInts sums the selected non-null rows of an int-backed vector
// (TBigInt, TTimestamp).
func SumInts(v *Vector, sel []int32, n int) IntSums {
	var r IntSums
	ints := v.Ints
	if sel != nil {
		for _, i := range sel {
			if !v.IsNull(int(i)) {
				x := ints[i]
				r.Sum += x
				r.FSum += float64(x)
				r.Count++
			}
		}
		return r
	}
	if v.Nulls == nil {
		for i := 0; i < n; i++ {
			x := ints[i]
			r.Sum += x
			r.FSum += float64(x)
		}
		r.Count = int64(n)
		return r
	}
	for i := 0; i < n; i++ {
		if !v.IsNull(i) {
			x := ints[i]
			r.Sum += x
			r.FSum += float64(x)
			r.Count++
		}
	}
	return r
}

// FloatSums holds the result of a SumFloats pass.
type FloatSums struct {
	Sum   float64
	Count int64
}

// SumFloats sums the selected non-null rows of a float-backed vector.
func SumFloats(v *Vector, sel []int32, n int) FloatSums {
	var r FloatSums
	fs := v.Floats
	if sel != nil {
		for _, i := range sel {
			if !v.IsNull(int(i)) {
				r.Sum += fs[i]
				r.Count++
			}
		}
		return r
	}
	if v.Nulls == nil {
		for i := 0; i < n; i++ {
			r.Sum += fs[i]
		}
		r.Count = int64(n)
		return r
	}
	for i := 0; i < n; i++ {
		if !v.IsNull(i) {
			r.Sum += fs[i]
			r.Count++
		}
	}
	return r
}

// MinMaxInts returns the min or max of the selected non-null rows of
// an int-backed vector; ok is false when no row qualified. Ties keep
// the earlier value, matching the row-at-a-time comparison order.
func MinMaxInts(v *Vector, sel []int32, n int, wantMin bool) (val int64, ok bool) {
	ints := v.Ints
	step := func(x int64) {
		if !ok {
			val, ok = x, true
			return
		}
		if wantMin {
			if x < val {
				val = x
			}
		} else if x > val {
			val = x
		}
	}
	if sel != nil {
		for _, i := range sel {
			if !v.IsNull(int(i)) {
				step(ints[i])
			}
		}
		return val, ok
	}
	for i := 0; i < n; i++ {
		if !v.IsNull(i) {
			step(ints[i])
		}
	}
	return val, ok
}

// MinMaxFloats is MinMaxInts over a float-backed vector. The strict
// comparisons reproduce the row path's NaN behaviour (a NaN never
// replaces the running value; a leading NaN is kept).
func MinMaxFloats(v *Vector, sel []int32, n int, wantMin bool) (val float64, ok bool) {
	fs := v.Floats
	step := func(x float64) {
		if !ok {
			val, ok = x, true
			return
		}
		if wantMin {
			if x < val {
				val = x
			}
		} else if x > val {
			val = x
		}
	}
	if sel != nil {
		for _, i := range sel {
			if !v.IsNull(int(i)) {
				step(fs[i])
			}
		}
		return val, ok
	}
	for i := 0; i < n; i++ {
		if !v.IsNull(i) {
			step(fs[i])
		}
	}
	return val, ok
}

// CountNotNull counts the selected non-null rows of any vector.
func CountNotNull(v *Vector, sel []int32, n int) int64 {
	if v.AllNull {
		return 0
	}
	var c int64
	if sel != nil {
		for _, i := range sel {
			if !v.IsNull(int(i)) {
				c++
			}
		}
		return c
	}
	if v.Boxed == nil && v.Nulls == nil {
		return int64(n)
	}
	for i := 0; i < n; i++ {
		if !v.IsNull(i) {
			c++
		}
	}
	return c
}
