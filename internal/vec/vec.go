// Package vec implements the vectorized batch representation of the
// execution engine: typed column vectors over one tile-sized chunk of
// rows, a selection vector naming the surviving rows, and the
// predicate / aggregate kernels that operate on whole vectors without
// boxing individual cells into expr.Value.
//
// The layout mirrors the JSON-tiles storage (paper §4): a tile's
// materialized columns are flat typed slices, so a scan can hand them
// to the engine zero-copy; accesses the tile cannot serve from a
// column are materialized into a boxed vector by the per-row fallback
// path. Downstream operators filter by narrowing the selection vector
// and aggregate by looping directly over the typed slices — the
// batch-at-a-time design of vectorized analytics engines.
package vec

import (
	"repro/internal/expr"
)

// Vector is one column of a batch. Exactly one backing is populated:
//
//   - Ints for TBigInt and TTimestamp
//   - Floats for TFloat
//   - Bools (a bitmap) for TBool
//   - StrOff/StrBytes (an offset-indexed arena) for TText
//   - Boxed for anything materialized row-by-row (JSONB fallback,
//     cast results, TJSON documents)
//
// AllNull marks a vector whose every row is NULL without any backing
// (the path provably never occurs in the tile). Nulls is a bitmap
// (bit i set = row i NULL); nil means no nulls. Fast-path vectors
// alias storage-owned slices and must be treated as read-only.
type Vector struct {
	Type  expr.SQLType
	Nulls []uint64

	Ints     []int64
	Floats   []float64
	Bools    []uint64
	StrOff   []uint32
	StrBytes []byte

	Boxed []expr.Value

	// Dictionary text vectors (Dict true): per-row integer codes into
	// a sorted distinct-value arena shared with the storage column
	// (zero-copy). Exactly one code slice matches the column's width.
	// Null rows carry code 0. Kernels evaluate string predicates once
	// per dictionary entry and then filter on the codes.
	Dict      bool
	DictOff   []uint32
	DictBytes []byte
	Codes8    []uint8
	Codes16   []uint16
	Codes32   []uint32

	AllNull bool
}

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool {
	if v.AllNull {
		return true
	}
	if v.Boxed != nil {
		return v.Boxed[i].Null
	}
	w := i >> 6
	if w >= len(v.Nulls) {
		return false
	}
	return v.Nulls[w]&(1<<(uint(i)&63)) != 0
}

// Int returns the int64 backing of row i (TBigInt, TTimestamp).
func (v *Vector) Int(i int) int64 { return v.Ints[i] }

// Float returns the float64 backing of row i.
func (v *Vector) Float(i int) float64 { return v.Floats[i] }

// Bool returns the boolean backing of row i.
func (v *Vector) Bool(i int) bool {
	w := i >> 6
	if w >= len(v.Bools) {
		return false
	}
	return v.Bools[w]&(1<<(uint(i)&63)) != 0
}

// StrAt returns the text of row i without copying. Callers must not
// retain or mutate the slice, and must check IsNull first (a null
// row's bytes are unspecified).
func (v *Vector) StrAt(i int) []byte {
	if v.Dict {
		return v.DictEntry(int(v.CodeAt(i)))
	}
	var start uint32
	if i > 0 {
		start = v.StrOff[i-1]
	}
	return v.StrBytes[start:v.StrOff[i]]
}

// CodeAt returns the dictionary code of row i (Dict vectors only).
func (v *Vector) CodeAt(i int) uint32 {
	switch {
	case v.Codes8 != nil:
		return uint32(v.Codes8[i])
	case v.Codes16 != nil:
		return uint32(v.Codes16[i])
	default:
		return v.Codes32[i]
	}
}

// DictLen returns the number of dictionary entries (Dict vectors only).
func (v *Vector) DictLen() int { return len(v.DictOff) }

// DictEntry returns dictionary entry k without copying. Entries are
// sorted ascending. Callers must not retain or mutate the slice.
func (v *Vector) DictEntry(k int) []byte {
	var start uint32
	if k > 0 {
		start = v.DictOff[k-1]
	}
	return v.DictBytes[start:v.DictOff[k]]
}

// Value boxes row i into an engine value — the batch→row adapter.
func (v *Vector) Value(i int) expr.Value {
	if v.Boxed != nil {
		return v.Boxed[i]
	}
	if v.IsNull(i) {
		return expr.NullValue()
	}
	switch v.Type {
	case expr.TBigInt:
		return expr.IntValue(v.Ints[i])
	case expr.TTimestamp:
		return expr.TimestampValue(v.Ints[i])
	case expr.TFloat:
		return expr.FloatValue(v.Floats[i])
	case expr.TBool:
		return expr.BoolValue(v.Bool(i))
	case expr.TText:
		return expr.TextValue(string(v.StrAt(i)))
	}
	return expr.NullValue()
}

// NullVector returns an n-row all-NULL vector of type t.
func NullVector(t expr.SQLType, n int) Vector {
	return Vector{Type: t, AllNull: true}
}

// Batch is one chunk of rows flowing through the batch execution
// path: column vectors, the physical row count, and an optional
// selection vector naming the selected physical rows in ascending
// order (nil selects every row). Base is the global row id of
// physical row 0. Like emitted rows, a batch and its vectors are
// only valid during the emit call that delivers them.
type Batch struct {
	Cols []Vector
	Len  int
	Sel  []int32
	Base int64
}

// Rows returns the number of selected rows.
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.Len
}
