package vec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
)

// buildVector makes an n-row vector of the given type with ~1/4 NULL
// rows (boxed when boxed is set, typed otherwise).
func buildVector(r *rand.Rand, t expr.SQLType, n int, boxed bool) Vector {
	vals := make([]expr.Value, n)
	for i := range vals {
		if r.Intn(4) == 0 {
			vals[i] = expr.NullValue()
			continue
		}
		switch t {
		case expr.TBigInt:
			vals[i] = expr.IntValue(int64(r.Intn(21) - 10))
		case expr.TTimestamp:
			vals[i] = expr.TimestampValue(int64(r.Intn(1000)))
		case expr.TFloat:
			vals[i] = expr.FloatValue(float64(r.Intn(21)-10) / 2)
		case expr.TBool:
			vals[i] = expr.BoolValue(r.Intn(2) == 0)
		case expr.TText:
			vals[i] = expr.TextValue([]string{"", "a", "ab", "abc", "b", "ba", "zz"}[r.Intn(7)])
		}
	}
	if boxed {
		return Vector{Type: t, Boxed: vals}
	}
	v := Vector{Type: t}
	for i, x := range vals {
		if x.Null {
			w := i >> 6
			for len(v.Nulls) <= w {
				v.Nulls = append(v.Nulls, 0)
			}
			v.Nulls[w] |= 1 << (uint(i) & 63)
		}
		switch t {
		case expr.TBigInt, expr.TTimestamp:
			v.Ints = append(v.Ints, x.I)
		case expr.TFloat:
			v.Floats = append(v.Floats, x.F)
		case expr.TBool:
			if x.B {
				w := i >> 6
				for len(v.Bools) <= w {
					v.Bools = append(v.Bools, 0)
				}
				v.Bools[w] |= 1 << (uint(i) & 63)
			}
		case expr.TText:
			v.StrBytes = append(v.StrBytes, x.S...)
			v.StrOff = append(v.StrOff, uint32(len(v.StrBytes)))
		}
	}
	return v
}

// randomPred builds a random vectorizable predicate over the batch's
// column slots.
func randomPred(r *rand.Rand, types []expr.SQLType, depth int) expr.Expr {
	if depth > 0 && r.Intn(3) == 0 {
		l := randomPred(r, types, depth-1)
		rr := randomPred(r, types, depth-1)
		if r.Intn(2) == 0 {
			return expr.NewAnd(l, rr)
		}
		return expr.NewOr(l, rr)
	}
	slot := r.Intn(len(types))
	col := expr.NewCol(slot, types[slot])
	switch r.Intn(4) {
	case 0:
		return expr.NewIsNull(col, r.Intn(2) == 0)
	case 1:
		var consts []expr.Value
		for k := 0; k < 1+r.Intn(3); k++ {
			consts = append(consts, randConst(r, types[slot]))
		}
		return expr.NewIn(col, consts...)
	case 2:
		if types[slot] == expr.TText {
			return expr.NewLike(col, []string{"a%", "%b", "%a%", "ab", "%"}[r.Intn(5)])
		}
		fallthrough
	default:
		op := []expr.CmpOp{expr.EQ, expr.NE, expr.LT, expr.LE, expr.GT, expr.GE}[r.Intn(6)]
		k := expr.NewConst(randConst(r, types[slot]))
		if r.Intn(2) == 0 {
			return expr.NewCmp(op, col, k)
		}
		return expr.NewCmp(op, k, col)
	}
}

func randConst(r *rand.Rand, t expr.SQLType) expr.Value {
	switch t {
	case expr.TBigInt:
		// Occasionally a cross-type numeric constant.
		if r.Intn(4) == 0 {
			return expr.FloatValue(float64(r.Intn(11) - 5))
		}
		return expr.IntValue(int64(r.Intn(11) - 5))
	case expr.TTimestamp:
		return expr.TimestampValue(int64(r.Intn(1000)))
	case expr.TFloat:
		return expr.FloatValue(float64(r.Intn(11)-5) / 2)
	case expr.TBool:
		return expr.BoolValue(r.Intn(2) == 0)
	default:
		return expr.TextValue([]string{"", "a", "ab", "b"}[r.Intn(4)])
	}
}

// TestCompiledPredMatchesRowEval is the kernel conformance property:
// for random batches (typed and boxed vectors, with and without an
// input selection) and random predicates, the compiled selection must
// equal row-at-a-time WHERE evaluation.
func TestCompiledPredMatchesRowEval(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	types := []expr.SQLType{expr.TBigInt, expr.TFloat, expr.TText, expr.TBool, expr.TTimestamp}
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(100)
		b := &Batch{Len: n}
		colTypes := make([]expr.SQLType, 2+r.Intn(3))
		for i := range colTypes {
			colTypes[i] = types[r.Intn(len(types))]
			b.Cols = append(b.Cols, buildVector(r, colTypes[i], n, r.Intn(3) == 0))
		}
		if r.Intn(4) == 0 {
			// Random ascending input selection.
			for i := 0; i < n; i++ {
				if r.Intn(2) == 0 {
					b.Sel = append(b.Sel, int32(i))
				}
			}
			if b.Sel == nil {
				b.Sel = []int32{}
			}
		}
		e := randomPred(r, colTypes, 2)
		p, ok := Compile(e, len(colTypes))
		if !ok {
			t.Fatalf("trial %d: predicate did not compile", trial)
		}
		got := p.Sel(b, p.NewScratch())

		// Row-at-a-time ground truth.
		row := make([]expr.Value, len(b.Cols))
		var want []int32
		each := func(i int) {
			for c := range b.Cols {
				row[c] = b.Cols[c].Value(i)
			}
			if e.Eval(row).IsTrue() {
				want = append(want, int32(i))
			}
		}
		if b.Sel != nil {
			for _, i := range b.Sel {
				each(int(i))
			}
		} else {
			for i := 0; i < n; i++ {
				each(i)
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: kernel sel %v != row sel %v (pred over %v)", trial, got, want, colTypes)
		}
	}
}

func TestCompileRejectsNonVectorizable(t *testing.T) {
	col := expr.NewCol(0, expr.TBigInt)
	cases := []expr.Expr{
		expr.NewNot(expr.NewCmp(expr.EQ, col, expr.NewConst(expr.IntValue(1)))),
		expr.NewCmp(expr.EQ, col, expr.NewCol(1, expr.TBigInt)), // col-col
		expr.NewCmp(expr.EQ,
			expr.NewArith(expr.Add, col, expr.NewConst(expr.IntValue(1))),
			expr.NewConst(expr.IntValue(2))),
		expr.NewCol(5, expr.TBool), // slot out of range
	}
	for i, e := range cases {
		if _, ok := Compile(e, 2); ok {
			t.Errorf("case %d: compiled, want rejection", i)
		}
	}
}

func TestAggKernelsMatchManual(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(80)
		iv := buildVector(r, expr.TBigInt, n, false)
		fv := buildVector(r, expr.TFloat, n, false)
		var sel []int32
		if r.Intn(2) == 0 {
			for i := 0; i < n; i++ {
				if r.Intn(2) == 0 {
					sel = append(sel, int32(i))
				}
			}
			if sel == nil {
				sel = []int32{}
			}
		}
		each := func(f func(i int)) {
			if sel != nil {
				for _, i := range sel {
					f(int(i))
				}
			} else {
				for i := 0; i < n; i++ {
					f(i)
				}
			}
		}

		is := SumInts(&iv, sel, n)
		var wantSum int64
		var wantF float64
		var wantN int64
		each(func(i int) {
			if !iv.IsNull(i) {
				wantSum += iv.Ints[i]
				wantF += float64(iv.Ints[i])
				wantN++
			}
		})
		if is.Sum != wantSum || is.FSum != wantF || is.Count != wantN {
			t.Fatalf("trial %d: SumInts %+v, want %d/%g/%d", trial, is, wantSum, wantF, wantN)
		}

		fs := SumFloats(&fv, sel, n)
		var wantFS float64
		var wantFN int64
		each(func(i int) {
			if !fv.IsNull(i) {
				wantFS += fv.Floats[i]
				wantFN++
			}
		})
		if fs.Sum != wantFS || fs.Count != wantFN {
			t.Fatalf("trial %d: SumFloats %+v", trial, fs)
		}

		for _, wantMin := range []bool{true, false} {
			got, ok := MinMaxInts(&iv, sel, n, wantMin)
			var want int64
			have := false
			each(func(i int) {
				if iv.IsNull(i) {
					return
				}
				x := iv.Ints[i]
				if !have || (wantMin && x < want) || (!wantMin && x > want) {
					want, have = x, true
				}
			})
			if ok != have || (ok && got != want) {
				t.Fatalf("trial %d: MinMaxInts(min=%v) = %d,%v want %d,%v", trial, wantMin, got, ok, want, have)
			}
		}

		if c := CountNotNull(&iv, sel, n); c != wantN {
			t.Fatalf("trial %d: CountNotNull = %d want %d", trial, c, wantN)
		}
	}
}

func TestMinMaxFloatsNaN(t *testing.T) {
	nan := math.NaN()
	v := Vector{Type: expr.TFloat, Floats: []float64{nan, 2, 1}}
	got, ok := MinMaxFloats(&v, nil, 3, true)
	// A leading NaN is kept: strict comparisons never replace it —
	// exactly what the row path's expr.Compare produces.
	if !ok || !math.IsNaN(got) {
		t.Errorf("min = %v, %v (want leading NaN kept)", got, ok)
	}
	v2 := Vector{Type: expr.TFloat, Floats: []float64{2, nan, 1}}
	got, ok = MinMaxFloats(&v2, nil, 3, true)
	if !ok || got != 1 {
		t.Errorf("min = %v, want 1 (NaN skipped after first)", got)
	}
}

func TestBatchRowsAndNullVector(t *testing.T) {
	b := Batch{Len: 10}
	if b.Rows() != 10 {
		t.Errorf("Rows = %d", b.Rows())
	}
	b.Sel = []int32{1, 3}
	if b.Rows() != 2 {
		t.Errorf("Rows = %d", b.Rows())
	}
	nv := NullVector(expr.TBigInt, 4)
	for i := 0; i < 4; i++ {
		if !nv.IsNull(i) || !nv.Value(i).Null {
			t.Errorf("row %d not NULL", i)
		}
	}
}
