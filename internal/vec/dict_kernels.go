// Dictionary kernels: predicate evaluation in code space. For a
// dictionary text vector the expensive string work happens once per
// distinct value — equality and range predicates binary-search the
// sorted dictionary and collapse to a contiguous code range, LIKE and
// IN test each dictionary entry once into a per-code mask — and the
// per-row loop then compares only integer codes.
package vec

import (
	"bytes"
	"sort"

	"repro/internal/expr"
	"repro/internal/obs"
)

// cmpStrsDict narrows sel by `col op const` on a dictionary vector.
func cmpStrsDict(v *Vector, op expr.CmpOp, cb []byte, sel []int32, n int, out []int32) []int32 {
	obs.DictKernelShortcuts.Inc()
	dl := v.DictLen()
	if dl == 0 {
		return out // every row is null
	}
	// lo is the first entry >= the constant; found means entry lo == it.
	lo := sort.Search(dl, func(k int) bool { return bytes.Compare(v.DictEntry(k), cb) >= 0 })
	found := lo < dl && bytes.Equal(v.DictEntry(lo), cb)
	if op == expr.NE {
		eq := int64(-1)
		if found {
			eq = int64(lo)
		}
		return selCodeNotEq(v, eq, sel, n, out)
	}
	var rlo, rhi uint32
	switch op {
	case expr.EQ:
		if !found {
			return out
		}
		rlo, rhi = uint32(lo), uint32(lo)+1
	case expr.LT:
		rlo, rhi = 0, uint32(lo)
	case expr.LE:
		rlo, rhi = 0, uint32(lo)
		if found {
			rhi++
		}
	case expr.GT:
		rlo, rhi = uint32(lo), uint32(dl)
		if found {
			rlo++
		}
	default: // GE
		rlo, rhi = uint32(lo), uint32(dl)
	}
	return selCodeRange(v, rlo, rhi, sel, n, out)
}

// selCodeRange selects non-null rows whose code lies in [lo, hi).
func selCodeRange(v *Vector, lo, hi uint32, sel []int32, n int, out []int32) []int32 {
	if lo >= hi {
		return out
	}
	switch {
	case v.Codes8 != nil:
		return codeRangeLoop(v, v.Codes8, lo, hi, sel, n, out)
	case v.Codes16 != nil:
		return codeRangeLoop(v, v.Codes16, lo, hi, sel, n, out)
	default:
		return codeRangeLoop(v, v.Codes32, lo, hi, sel, n, out)
	}
}

func codeRangeLoop[T uint8 | uint16 | uint32](v *Vector, codes []T, lo, hi uint32, sel []int32, n int, out []int32) []int32 {
	if sel != nil {
		for _, i := range sel {
			k := uint32(codes[i])
			if k >= lo && k < hi && !v.IsNull(int(i)) {
				out = append(out, i)
			}
		}
		return out
	}
	if v.Nulls == nil {
		// Dense, null-free inner loop: pure integer compares.
		for i := 0; i < n; i++ {
			k := uint32(codes[i])
			if k >= lo && k < hi {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		k := uint32(codes[i])
		if k >= lo && k < hi && !v.IsNull(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

// selCodeNotEq selects non-null rows whose code differs from eq
// (eq < 0 selects every non-null row).
func selCodeNotEq(v *Vector, eq int64, sel []int32, n int, out []int32) []int32 {
	switch {
	case v.Codes8 != nil:
		return codeNotEqLoop(v, v.Codes8, eq, sel, n, out)
	case v.Codes16 != nil:
		return codeNotEqLoop(v, v.Codes16, eq, sel, n, out)
	default:
		return codeNotEqLoop(v, v.Codes32, eq, sel, n, out)
	}
}

func codeNotEqLoop[T uint8 | uint16 | uint32](v *Vector, codes []T, eq int64, sel []int32, n int, out []int32) []int32 {
	if sel != nil {
		for _, i := range sel {
			if int64(codes[i]) != eq && !v.IsNull(int(i)) {
				out = append(out, i)
			}
		}
		return out
	}
	if v.Nulls == nil {
		for i := 0; i < n; i++ {
			if int64(codes[i]) != eq {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if int64(codes[i]) != eq && !v.IsNull(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

// selCodeMask selects non-null rows whose code's mask entry is true.
// The mask must have one entry per dictionary code.
func selCodeMask(v *Vector, mask []bool, sel []int32, n int, out []int32) []int32 {
	switch {
	case v.Codes8 != nil:
		return codeMaskLoop(v, v.Codes8, mask, sel, n, out)
	case v.Codes16 != nil:
		return codeMaskLoop(v, v.Codes16, mask, sel, n, out)
	default:
		return codeMaskLoop(v, v.Codes32, mask, sel, n, out)
	}
}

func codeMaskLoop[T uint8 | uint16 | uint32](v *Vector, codes []T, mask []bool, sel []int32, n int, out []int32) []int32 {
	if sel != nil {
		for _, i := range sel {
			if mask[codes[i]] && !v.IsNull(int(i)) {
				out = append(out, i)
			}
		}
		return out
	}
	if v.Nulls == nil {
		for i := 0; i < n; i++ {
			if mask[codes[i]] {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if mask[codes[i]] && !v.IsNull(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

// codeMask returns the scratch's per-code mask resized to dl entries
// (contents unspecified; callers overwrite or clear).
func (sc *Scratch) codeMask(dl int) []bool {
	if cap(sc.mask) < dl {
		sc.mask = make([]bool, dl)
	}
	sc.mask = sc.mask[:dl]
	return sc.mask
}

// likeDict evaluates the LIKE pattern once per dictionary entry and
// filters rows on the resulting per-code mask.
func (p *likePred) likeDict(v *Vector, sel []int32, n int, out []int32, sc *Scratch) []int32 {
	obs.DictKernelShortcuts.Inc()
	dl := v.DictLen()
	if dl == 0 {
		return out
	}
	mask := sc.codeMask(dl)
	for k := 0; k < dl; k++ {
		mask[k] = p.match(v.DictEntry(k))
	}
	return selCodeMask(v, mask, sel, n, out)
}

// inDict binary-searches each IN constant in the dictionary and
// filters rows on the resulting per-code mask.
func (p *inPred) inDict(v *Vector, sel []int32, n int, out []int32, sc *Scratch) []int32 {
	obs.DictKernelShortcuts.Inc()
	dl := v.DictLen()
	if dl == 0 {
		return out
	}
	mask := sc.codeMask(dl)
	for k := range mask {
		mask[k] = false
	}
	any := false
	for _, c := range p.strs {
		k := sort.Search(dl, func(k int) bool { return bytes.Compare(v.DictEntry(k), c) >= 0 })
		if k < dl && bytes.Equal(v.DictEntry(k), c) {
			mask[k] = true
			any = true
		}
	}
	if !any {
		return out
	}
	return selCodeMask(v, mask, sel, n, out)
}
