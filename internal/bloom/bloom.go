// Package bloom implements the bloom filter used by the JSON tile
// header to remember key paths that were *seen* but not extracted
// (paper §4.4): the tile-skipping optimization (§4.8) must never skip
// a tile that might contain an accessed path, so the filter's
// one-sided error (no false negatives) is exactly what is required.
//
// Hashing follows Kirsch & Mitzenmacher [35]: two base hashes combined
// as g_i(x) = h1(x) + i·h2(x) give the accuracy of k independent hash
// functions at the cost of two.
package bloom

import (
	"math"
	"math/bits"
)

// Filter is a standard bloom filter over strings. The zero value is
// unusable; construct with New or FromBits.
type Filter struct {
	bits  []uint64
	nbits uint64
	k     int
}

// New sizes a filter for n expected entries at false-positive rate p.
// n and p are clamped to sane minimums so degenerate inputs still give
// a working filter.
func New(n int, p float64) *Filter {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	// Optimal m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), nbits: words * 64, k: k}
}

// Add inserts s.
func (f *Filter) Add(s string) {
	h1, h2 := hash2(s)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		f.bits[pos/64] |= 1 << (pos % 64)
	}
}

// MayContain reports whether s may have been added. False means
// definitely absent.
func (f *Filter) MayContain(s string) bool {
	h1, h2 := hash2(s)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// FillRatio returns the fraction of set bits, a health signal for
// sizing decisions.
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(f.nbits)
}

// SizeBytes returns the memory footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// Bits exposes the raw bit array for serialization (the segment
// footer persists tile headers). Read-only.
func (f *Filter) Bits() []uint64 { return f.bits }

// K returns the number of hash probes per key.
func (f *Filter) K() int { return f.k }

// FromBits reconstructs a filter from a serialized bit array and probe
// count. The slice is retained, not copied. k is clamped to [1, 16]
// and an empty bit array yields a one-word filter so a corrupt header
// can never produce a filter that panics on probe.
func FromBits(bits []uint64, k int) *Filter {
	if len(bits) == 0 {
		bits = make([]uint64, 1)
	}
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{bits: bits, nbits: uint64(len(bits)) * 64, k: k}
}

// hash2 derives two 64-bit hashes from one FNV-1a pass plus an
// avalanche remix, avoiding a second scan over the key.
func hash2(s string) (uint64, uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h2 := mix(h ^ 0x9E3779B97F4A7C15)
	if h2 == 0 {
		// h2 = 0 would collapse all k probes onto one position.
		h2 = 1
	}
	return h, h2
}

// mix is the finalizer from SplitMix64.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
