package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("key-path-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain(fmt.Sprintf("key-path-%d", i)) {
			t.Fatalf("false negative for key-path-%d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("present-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 { // 3x headroom over the target 1%
		t.Errorf("false positive rate %.4f too high", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(100, 0.01)
	for i := 0; i < 100; i++ {
		if f.MayContain(fmt.Sprintf("x%d", i)) {
			t.Fatalf("empty filter claims to contain x%d", i)
		}
	}
	if f.FillRatio() != 0 {
		t.Errorf("fill ratio %f", f.FillRatio())
	}
}

func TestDegenerateParams(t *testing.T) {
	for _, f := range []*Filter{New(0, 0.01), New(-5, 0.5), New(10, 0), New(10, 1.5)} {
		f.Add("a")
		if !f.MayContain("a") {
			t.Error("degenerate-parameter filter lost an element")
		}
	}
}

func TestEmptyStringKey(t *testing.T) {
	f := New(10, 0.01)
	f.Add("")
	if !f.MayContain("") {
		t.Error("empty string lost")
	}
}

// Property: anything added is always contained.
func TestQuickMembership(t *testing.T) {
	f := New(500, 0.01)
	var added []string
	check := func(s string) bool {
		f.Add(s)
		added = append(added, s)
		for _, a := range added {
			if !f.MayContain(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFillRatioGrows(t *testing.T) {
	f := New(100, 0.01)
	prev := f.FillRatio()
	for i := 0; i < 100; i += 10 {
		for j := 0; j < 10; j++ {
			f.Add(fmt.Sprintf("k%d-%d", i, j))
		}
		cur := f.FillRatio()
		if cur < prev {
			t.Fatal("fill ratio decreased")
		}
		prev = cur
	}
	if f.SizeBytes() == 0 {
		t.Error("zero size")
	}
}
