// Package xxhash implements the 64-bit XXH64 hash (Collet's xxHash),
// used as the block checksum of the on-disk segment format: fast
// enough to verify every block read off storage without showing up in
// scan profiles, and with far better error detection than a simple
// additive checksum. Stdlib-only, seed fixed to zero.
package xxhash

import (
	"encoding/binary"
	"math/bits"
)

const (
	prime1 uint64 = 11400714785074694791
	prime2 uint64 = 14029467366897019727
	prime3 uint64 = 1609587929392839161
	prime4 uint64 = 9650029242287828579
	prime5 uint64 = 2870177450012600261
)

// Sum64 returns the XXH64 hash of b with seed 0.
func Sum64(b []byte) uint64 {
	n := uint64(len(b))
	var h uint64
	if len(b) >= 32 {
		v1 := prime1
		v1 += prime2
		v2 := prime2
		v3 := uint64(0)
		v4 := uint64(0)
		v4 -= prime1
		for len(b) >= 32 {
			v1 = round(v1, binary.LittleEndian.Uint64(b[0:8]))
			v2 = round(v2, binary.LittleEndian.Uint64(b[8:16]))
			v3 = round(v3, binary.LittleEndian.Uint64(b[16:24]))
			v4 = round(v4, binary.LittleEndian.Uint64(b[24:32]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = prime5
	}
	h += n
	for len(b) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(b[:8]))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b[:4])) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	return bits.RotateLeft64(acc, 31) * prime1
}

func mergeRound(h, v uint64) uint64 {
	h ^= round(0, v)
	return h*prime1 + prime4
}
