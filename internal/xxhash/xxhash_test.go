package xxhash

import (
	"bytes"
	"testing"
)

// Reference vectors from the xxHash specification (seed 0).
func TestKnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xEF46DB3751D8E999},
		{"a", 0xD24EC4F1A98C6E5B},
		{"abc", 0x44BC2CF5AD770999},
		{"message digest", 0x066ED728FCEEB3BE},
	}
	for _, c := range cases {
		if got := Sum64([]byte(c.in)); got != c.want {
			t.Errorf("Sum64(%q) = %#016x, want %#016x", c.in, got, c.want)
		}
	}
}

// Every length up to well past the 32-byte stripe boundary must hash
// deterministically and differ under single-bit corruption — the
// property the segment checksums rely on.
func TestCorruptionDetection(t *testing.T) {
	buf := make([]byte, 257)
	for i := range buf {
		buf[i] = byte(i * 131)
	}
	for n := 0; n <= len(buf); n++ {
		h := Sum64(buf[:n])
		if h != Sum64(append([]byte(nil), buf[:n]...)) {
			t.Fatalf("len %d: not deterministic", n)
		}
		if n == 0 {
			continue
		}
		cp := append([]byte(nil), buf[:n]...)
		cp[n/2] ^= 0x40
		if Sum64(cp) == h {
			t.Fatalf("len %d: bit flip not detected", n)
		}
	}
}

func TestPrefixesDiffer(t *testing.T) {
	data := bytes.Repeat([]byte("segment"), 40)
	seen := map[uint64]int{}
	for n := 0; n <= len(data); n++ {
		h := Sum64(data[:n])
		if prev, dup := seen[h]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[h] = n
	}
}
