package fpgrowth

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// bruteForce enumerates frequent itemsets by testing every subset of
// observed items up to maxK — the ground truth for small inputs.
func bruteForce(transactions [][]int32, minSupport, maxK int) []Itemset {
	itemSet := map[int32]bool{}
	for _, tx := range transactions {
		for _, it := range tx {
			itemSet[it] = true
		}
	}
	var items []int32
	for it := range itemSet {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	var out []Itemset
	var rec func(start int, cur []int32)
	count := func(set []int32) int {
		n := 0
		for _, tx := range transactions {
			sorted := append([]int32(nil), tx...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			if isSubset(set, dedupSorted(sorted)) {
				n++
			}
		}
		return n
	}
	rec = func(start int, cur []int32) {
		if len(cur) > 0 {
			if c := count(cur); c >= minSupport {
				out = append(out, Itemset{Items: append([]int32(nil), cur...), Count: c})
			} else {
				return // supersets cannot be frequent (anti-monotonicity)
			}
		}
		if len(cur) >= maxK {
			return
		}
		for i := start; i < len(items); i++ {
			rec(i+1, append(cur, items[i]))
		}
	}
	rec(0, nil)
	sort.Slice(out, func(i, j int) bool { return lessItemset(out[i], out[j]) })
	return out
}

func TestPaperRunningExample(t *testing.T) {
	// Tile #2 of Figure 2: items i=0 c=1 t=2 u_i=3 r=4 g_l=5.
	// Tuples 5,7,8 have all six; tuple 6 lacks g_l. Threshold 60% of
	// 4 tuples = 2.4 → min support 3 (ceil).
	tx := [][]int32{
		{0, 1, 2, 3, 4, 5},
		{0, 1, 2, 3, 4},
		{0, 1, 2, 3, 4, 5},
		{0, 1, 2, 3, 4, 5},
	}
	m := Miner{MinSupport: 3}
	sets := m.Mine(tx)
	maximal := Maximal(sets)

	// The paper's two maximal itemsets: ({i,c,t,u_i,r}, 4) and
	// ({i,c,t,u_i,r,g_l}, 3). The 5-set is a subset of the 6-set but
	// with a *higher* count, so both are maximal in the
	// count-annotated sense the paper uses. Our Maximal() keeps only
	// set-maximal itemsets; the 6-item set must be present and its
	// union with everything else must cover all 6 key paths.
	found6 := false
	for _, s := range maximal {
		if len(s.Items) == 6 {
			found6 = true
			if s.Count != 3 {
				t.Errorf("6-itemset count = %d, want 3", s.Count)
			}
		}
	}
	if !found6 {
		t.Fatalf("6-item maximal set missing: %v", maximal)
	}
	// The full 5-set {i,c,t,u_i,r} must be frequent with count 4.
	want5 := []int32{0, 1, 2, 3, 4}
	ok5 := false
	for _, s := range sets {
		if reflect.DeepEqual(s.Items, want5) && s.Count == 4 {
			ok5 = true
		}
	}
	if !ok5 {
		t.Errorf("5-itemset {i,c,t,u_i,r} with count 4 not mined")
	}
}

func TestSingleItem(t *testing.T) {
	m := Miner{MinSupport: 2}
	sets := m.Mine([][]int32{{7}, {7}, {8}})
	if len(sets) != 1 || sets[0].Items[0] != 7 || sets[0].Count != 2 {
		t.Errorf("sets = %+v", sets)
	}
}

func TestEmptyAndBelowSupport(t *testing.T) {
	m := Miner{MinSupport: 2}
	if sets := m.Mine(nil); sets != nil {
		t.Errorf("nil transactions: %v", sets)
	}
	if sets := m.Mine([][]int32{{1}, {2}, {3}}); sets != nil {
		t.Errorf("all below support: %v", sets)
	}
	bad := Miner{MinSupport: 0}
	if sets := bad.Mine([][]int32{{1}}); sets != nil {
		t.Errorf("zero support: %v", sets)
	}
}

func TestDuplicateItemsInTransaction(t *testing.T) {
	m := Miner{MinSupport: 2}
	sets := m.Mine([][]int32{{1, 1, 1}, {1, 1}})
	if len(sets) != 1 || sets[0].Count != 2 {
		t.Errorf("duplicates inflated counts: %+v", sets)
	}
}

func TestAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		nItems := 2 + r.Intn(6)
		nTx := 5 + r.Intn(20)
		tx := make([][]int32, nTx)
		for i := range tx {
			n := 1 + r.Intn(nItems)
			for j := 0; j < n; j++ {
				tx[i] = append(tx[i], int32(r.Intn(nItems)))
			}
		}
		minSupport := 1 + r.Intn(nTx/2+1)
		m := Miner{MinSupport: minSupport, Budget: 1 << 20}
		got := m.Mine(tx)
		want := bruteForce(tx, minSupport, nItems)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (minSupport=%d, tx=%v):\ngot  %v\nwant %v",
				trial, minSupport, tx, got, want)
		}
	}
}

func TestBudgetBoundsOutput(t *testing.T) {
	// 12 items all co-occurring: full powerset would be 4095 itemsets.
	tx := make([][]int32, 10)
	for i := range tx {
		for j := int32(0); j < 12; j++ {
			tx[i] = append(tx[i], j)
		}
	}
	m := Miner{MinSupport: 5, Budget: 100}
	sets := m.Mine(tx)
	if len(sets) > 100 {
		t.Fatalf("budget exceeded: %d sets", len(sets))
	}
	if len(sets) == 0 {
		t.Fatal("budget silenced mining entirely")
	}
	// Graceful degradation: small itemsets first — every single item
	// must be present.
	singles := 0
	for _, s := range sets {
		if len(s.Items) == 1 {
			singles++
		}
	}
	if singles != 12 {
		t.Errorf("%d singles, want 12 (small itemsets must survive the budget)", singles)
	}
}

func TestMaxItemsetSize(t *testing.T) {
	tests := []struct{ n, u, want int }{
		{4, 1 << 20, 4}, // unbounded: full powerset fits
		{4, 14, 3},      // C(4,1)+C(4,2)+C(4,3) = 4+6+4 = 14
		{4, 13, 2},      // 13 < 14 but ≥ 10
		{4, 4, 1},       // only singles
		{4, 1, 1},       // k floors at 1
		{100, 100, 1},   // C(100,1)=100 fits exactly
		{100, 5049, 1},  // 100 + 4950 = 5050 > 5049
		{100, 5050, 2},  // exactly C(100,1)+C(100,2)
		{1, 10, 1},
	}
	for _, tt := range tests {
		if got := maxItemsetSize(tt.n, tt.u); got != tt.want {
			t.Errorf("maxItemsetSize(%d, %d) = %d, want %d", tt.n, tt.u, got, tt.want)
		}
	}
}

func TestMaximal(t *testing.T) {
	sets := []Itemset{
		{Items: []int32{1}, Count: 5},
		{Items: []int32{2}, Count: 4},
		{Items: []int32{1, 2}, Count: 4},
		{Items: []int32{3}, Count: 3},
	}
	max := Maximal(sets)
	if len(max) != 2 {
		t.Fatalf("maximal = %v", max)
	}
	if !reflect.DeepEqual(max[0].Items, []int32{1, 2}) {
		t.Errorf("first maximal = %v, want {1,2}", max[0].Items)
	}
	if !reflect.DeepEqual(max[1].Items, []int32{3}) {
		t.Errorf("second maximal = %v, want {3}", max[1].Items)
	}
}

func TestIsSubsetAndOverlap(t *testing.T) {
	if !isSubset([]int32{}, []int32{1, 2}) {
		t.Error("empty set not subset")
	}
	if !isSubset([]int32{2}, []int32{1, 2, 3}) {
		t.Error("{2} not subset of {1,2,3}")
	}
	if isSubset([]int32{4}, []int32{1, 2, 3}) {
		t.Error("{4} subset of {1,2,3}")
	}
	if got := Overlap([]int32{1, 3, 5}, []int32{1, 2, 3, 4}); got != 2 {
		t.Errorf("Overlap = %d, want 2", got)
	}
	if got := Overlap(nil, []int32{1}); got != 0 {
		t.Errorf("Overlap(nil) = %d", got)
	}
}

func TestContains(t *testing.T) {
	s := Itemset{Items: []int32{1, 5, 9}}
	for _, it := range []int32{1, 5, 9} {
		if !s.Contains(it) {
			t.Errorf("Contains(%d) = false", it)
		}
	}
	for _, it := range []int32{0, 2, 10} {
		if s.Contains(it) {
			t.Errorf("Contains(%d) = true", it)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tx := make([][]int32, 50)
	for i := range tx {
		n := 1 + r.Intn(8)
		for j := 0; j < n; j++ {
			tx[i] = append(tx[i], int32(r.Intn(10)))
		}
	}
	m := Miner{MinSupport: 5}
	first := m.Mine(tx)
	for i := 0; i < 5; i++ {
		if again := m.Mine(tx); !reflect.DeepEqual(first, again) {
			t.Fatal("non-deterministic mining output")
		}
	}
}

// Property: every mined itemset's reported count matches a direct
// scan, and every mined itemset meets the support threshold.
func TestQuickCountsAreExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nItems := 2 + r.Intn(8)
		tx := make([][]int32, 10+r.Intn(30))
		for i := range tx {
			n := 1 + r.Intn(nItems)
			for j := 0; j < n; j++ {
				tx[i] = append(tx[i], int32(r.Intn(nItems)))
			}
		}
		minSupport := 1 + r.Intn(5)
		m := Miner{MinSupport: minSupport, Budget: 1 << 16}
		for _, s := range m.Mine(tx) {
			actual := 0
			for _, txi := range tx {
				sorted := append([]int32(nil), txi...)
				sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
				if isSubset(s.Items, dedupSorted(sorted)) {
					actual++
				}
			}
			if actual != s.Count || s.Count < minSupport {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
