// Package fpgrowth implements the FPGrowth frequent-itemset mining
// algorithm of Han et al. [29], which the tile extraction uses to find
// common key-path structures (paper §3.3). Unlike Apriori, FPGrowth
// generates no candidate sets: it compresses the transaction database
// into a prefix tree of frequent items (the FP-tree) and recursively
// mines conditional trees.
//
// Result-size explosion is the known hazard — in the worst case the
// number of frequent itemsets is the powerset of the frequent items.
// The miner therefore enforces the paper's budget (Eq. 1): it derives
// the largest itemset size k such that Σᵢ₌₁ᵏ C(n,i) stays within the
// budget u, bounds the recursion depth by k, and additionally caps the
// absolute number of emitted itemsets, degrading gracefully (smaller
// itemsets are produced first, exactly as the paper prescribes).
package fpgrowth

import "sort"

// Itemset is a set of item ids frequent in the mined database.
type Itemset struct {
	Items []int32 // sorted ascending
	Count int     // number of transactions containing every item
}

// Miner configures a mining run. The zero value is not useful: set
// MinSupport to an absolute transaction count.
type Miner struct {
	// MinSupport is the absolute frequency threshold: an itemset is
	// frequent iff at least MinSupport transactions contain it.
	MinSupport int
	// Budget is the paper's u — an upper bound on the number of
	// itemsets the miner may generate. Zero selects DefaultBudget.
	Budget int
}

// DefaultBudget bounds itemset generation when the caller does not
// choose one. Tiles hold 2^10..2^12 tuples with tens of distinct key
// paths; 4096 potential itemsets is far beyond what extraction needs
// while keeping worst-case mining cheap.
const DefaultBudget = 4096

// fpNode is one FP-tree node. Children are kept in a small sorted
// slice: trees built from rigid machine-generated documents have tiny
// fan-out, where a slice beats a map.
type fpNode struct {
	item     int32
	count    int
	parent   *fpNode
	children []*fpNode
	nextLink *fpNode // header-table chain of nodes with the same item
}

func (n *fpNode) child(item int32) *fpNode {
	for _, c := range n.children {
		if c.item == item {
			return c
		}
	}
	return nil
}

type headerEntry struct {
	item  int32
	count int
	head  *fpNode
}

type fpTree struct {
	root    *fpNode
	headers []headerEntry // ascending total count (mining order)
	index   map[int32]int // item -> headers position
}

// Mine returns all frequent itemsets of the transaction database,
// subject to MinSupport and the budget. Each transaction is a set of
// item ids (duplicates within a transaction are ignored). Itemsets
// come out deterministically ordered: ascending size, then
// lexicographically by items.
func (m *Miner) Mine(transactions [][]int32) []Itemset {
	if m.MinSupport < 1 {
		return nil
	}
	budget := m.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}

	// Pass 1: global item frequencies.
	freq := map[int32]int{}
	for _, tx := range transactions {
		seen := map[int32]bool{}
		for _, it := range tx {
			if !seen[it] {
				seen[it] = true
				freq[it]++
			}
		}
	}
	var frequentItems []int32
	for it, c := range freq {
		if c >= m.MinSupport {
			frequentItems = append(frequentItems, it)
		}
	}
	if len(frequentItems) == 0 {
		return nil
	}
	// Depth bound from Eq. 1.
	maxK := maxItemsetSize(len(frequentItems), budget)

	// Insertion order: descending frequency, ties by ascending item id
	// (deterministic trees regardless of map iteration order).
	rank := make(map[int32]int, len(frequentItems))
	sort.Slice(frequentItems, func(i, j int) bool {
		fi, fj := freq[frequentItems[i]], freq[frequentItems[j]]
		if fi != fj {
			return fi > fj
		}
		return frequentItems[i] < frequentItems[j]
	})
	for pos, it := range frequentItems {
		rank[it] = pos
	}

	// Pass 2: build the FP-tree.
	tree := newTree()
	scratch := make([]int32, 0, 16)
	for _, tx := range transactions {
		scratch = scratch[:0]
		for _, it := range tx {
			if _, ok := rank[it]; ok {
				scratch = append(scratch, it)
			}
		}
		if len(scratch) == 0 {
			continue
		}
		sort.Slice(scratch, func(i, j int) bool { return rank[scratch[i]] < rank[scratch[j]] })
		scratch = dedupSorted(scratch)
		tree.insert(scratch, 1)
	}

	st := &mineState{minSupport: m.MinSupport, budget: budget, maxK: maxK}
	st.mine(tree, nil)

	sort.Slice(st.out, func(i, j int) bool { return lessItemset(st.out[i], st.out[j]) })
	return st.out
}

func newTree() *fpTree {
	return &fpTree{root: &fpNode{item: -1}, index: map[int32]int{}}
}

// insert adds one (pattern-ordered, deduplicated) transaction path,
// accumulating header-table support totals as it goes.
func (t *fpTree) insert(items []int32, count int) {
	cur := t.root
	for _, it := range items {
		next := cur.child(it)
		if next == nil {
			next = &fpNode{item: it, parent: cur}
			cur.children = append(cur.children, next)
			hi, ok := t.index[it]
			if !ok {
				hi = len(t.headers)
				t.index[it] = hi
				t.headers = append(t.headers, headerEntry{item: it})
			}
			next.nextLink = t.headers[hi].head
			t.headers[hi].head = next
		}
		next.count += count
		cur = next
	}
	for _, it := range items {
		t.headers[t.index[it]].count += count
	}
}

// singlePath returns the single chain of nodes when the tree is a
// path, enabling the classic all-combinations shortcut.
func (t *fpTree) singlePath() []*fpNode {
	var path []*fpNode
	cur := t.root
	for {
		if len(cur.children) == 0 {
			return path
		}
		if len(cur.children) > 1 {
			return nil
		}
		cur = cur.children[0]
		path = append(path, cur)
	}
}

type mineState struct {
	minSupport int
	budget     int
	maxK       int
	generated  int
	out        []Itemset
}

func (s *mineState) emit(items []int32, count int) bool {
	if s.generated >= s.budget {
		return false
	}
	s.generated++
	sorted := append([]int32(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.out = append(s.out, Itemset{Items: sorted, Count: count})
	return true
}

// mine recursively emits suffix-extended itemsets. Header entries are
// processed in ascending support order (the FPGrowth convention).
func (s *mineState) mine(t *fpTree, suffix []int32) {
	if s.generated >= s.budget || len(suffix) >= s.maxK {
		return
	}
	// Single-path shortcut: every combination of path nodes is
	// frequent with the count of its deepest node.
	if path := t.singlePath(); path != nil {
		s.minePath(path, suffix)
		return
	}

	headers := append([]headerEntry(nil), t.headers...)
	sort.Slice(headers, func(i, j int) bool {
		if headers[i].count != headers[j].count {
			return headers[i].count < headers[j].count
		}
		return headers[i].item < headers[j].item
	})
	for _, h := range headers {
		if h.count < s.minSupport {
			continue
		}
		itemset := append(append([]int32(nil), suffix...), h.item)
		if !s.emit(itemset, h.count) {
			return
		}
		if len(itemset) >= s.maxK {
			continue
		}
		// Conditional pattern base: prefix paths of every node
		// carrying h.item.
		cond := newTree()
		var prefix []int32
		for node := h.head; node != nil; node = node.nextLink {
			prefix = prefix[:0]
			for p := node.parent; p != nil && p.item != -1; p = p.parent {
				prefix = append(prefix, p.item)
			}
			if len(prefix) == 0 {
				continue
			}
			// prefix is leaf→root; reverse to root→leaf insertion order.
			for i, j := 0, len(prefix)-1; i < j; i, j = i+1, j-1 {
				prefix[i], prefix[j] = prefix[j], prefix[i]
			}
			cond.insert(prefix, node.count)
		}
		if len(cond.headers) > 0 {
			cond.prune(s.minSupport)
			s.mine(cond, itemset)
		}
	}
}

// minePath emits all combinations of a single-path tree appended to
// the suffix, smallest combinations first so budget exhaustion keeps
// the small itemsets (graceful degradation).
func (s *mineState) minePath(path []*fpNode, suffix []int32) {
	// Filter to frequent nodes.
	var nodes []*fpNode
	for _, n := range path {
		if n.count >= s.minSupport {
			nodes = append(nodes, n)
		}
	}
	maxChoose := s.maxK - len(suffix)
	if maxChoose > len(nodes) {
		maxChoose = len(nodes)
	}
	idx := make([]int, 0, maxChoose)
	var rec func(start int)
	rec = func(start int) {
		if len(idx) > 0 {
			// Support of a combination is the count of its deepest
			// (last, since path order is root→leaf) node.
			items := append([]int32(nil), suffix...)
			minCount := nodes[idx[0]].count
			for _, i := range idx {
				items = append(items, nodes[i].item)
				if nodes[i].count < minCount {
					minCount = nodes[i].count
				}
			}
			if !s.emit(items, minCount) {
				return
			}
		}
		if len(idx) >= maxChoose {
			return
		}
		for i := start; i < len(nodes); i++ {
			idx = append(idx, i)
			rec(i + 1)
			idx = idx[:len(idx)-1]
			if s.generated >= s.budget {
				return
			}
		}
	}
	rec(0)
}

// prune removes infrequent items from a conditional tree by filtering
// its header table; nodes stay in place (their paths simply skip
// infrequent items during the next conditional-base walk). For
// correctness of count propagation we rebuild instead: cheaper trees
// are tiny in practice.
func (t *fpTree) prune(minSupport int) {
	keep := map[int32]bool{}
	for _, h := range t.headers {
		if h.count >= minSupport {
			keep[h.item] = true
		}
	}
	if len(keep) == len(t.headers) {
		return
	}
	// Rebuild the tree with only kept items.
	old := *t
	*t = *newTree()
	var walk func(n *fpNode, path []int32)
	walk = func(n *fpNode, path []int32) {
		if n.item >= 0 && keep[n.item] {
			path = append(path, n.item)
		}
		childSum := 0
		for _, c := range n.children {
			childSum += c.count
			walk(c, path)
		}
		// A node's own weight beyond its children represents
		// transactions ending here.
		if n.item >= 0 {
			if own := n.count - childSum; own > 0 && len(path) > 0 {
				t.insert(path, own)
			}
		}
	}
	walk(old.root, nil)
}

// maxItemsetSize computes the largest k with Σᵢ₌₁ᵏ C(n,i) ≤ u (Eq. 1),
// with k at least 1 so mining always proceeds.
func maxItemsetSize(n, u int) int {
	total := 0
	binom := 1
	for k := 1; k <= n; k++ {
		// C(n,k) = C(n,k-1) * (n-k+1) / k, guarded against overflow.
		binom = binom * (n - k + 1) / k
		if binom < 0 || total+binom > u {
			if k == 1 {
				return 1
			}
			return k - 1
		}
		total += binom
	}
	return n
}

// Maximal filters sets to those not strictly contained in another
// frequent set — the tile extractor materializes the union of maximal
// itemsets (§3.1 step 3).
func Maximal(sets []Itemset) []Itemset {
	var out []Itemset
	for i, a := range sets {
		maximal := true
		for j, b := range sets {
			if i == j || len(a.Items) >= len(b.Items) {
				continue
			}
			if isSubset(a.Items, b.Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, a)
		}
	}
	// Largest, most frequent first: the extraction step unions in
	// this order.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Items) != len(out[j].Items) {
			return len(out[i].Items) > len(out[j].Items)
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return lessItems(out[i].Items, out[j].Items)
	})
	return out
}

// isSubset reports a ⊆ b for sorted slices.
func isSubset(a, b []int32) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// Contains reports whether the sorted itemset contains item.
func (s Itemset) Contains(item int32) bool {
	lo, hi := 0, len(s.Items)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s.Items[mid] < item:
			lo = mid + 1
		case s.Items[mid] > item:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Overlap counts how many of the sorted items appear in the sorted
// transaction — used by reordering to match tuples to itemsets.
func Overlap(items, tx []int32) int {
	i, n := 0, 0
	for _, x := range items {
		for i < len(tx) && tx[i] < x {
			i++
		}
		if i < len(tx) && tx[i] == x {
			n++
			i++
		}
	}
	return n
}

func dedupSorted(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

func lessItemset(a, b Itemset) bool {
	if len(a.Items) != len(b.Items) {
		return len(a.Items) < len(b.Items)
	}
	return lessItems(a.Items, b.Items)
}

func lessItems(a, b []int32) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
