package lz4

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	comp := Compress(nil, src)
	dst := make([]byte, len(src))
	n, err := Decompress(dst, comp)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if n != len(src) {
		t.Fatalf("decompressed %d bytes, want %d", n, len(src))
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("round trip mismatch")
	}
	return comp
}

// Regression test for the declared-size guard: a block whose length
// field claims a huge decompressed size must be rejected with
// ErrSizeLimit before any allocation — a corrupt segment block length
// must not be able to OOM the reader.
func TestDecompressAllocSizeLimit(t *testing.T) {
	src := Compress(nil, []byte("payload"))
	for _, size := range []int{-1, MaxDecompressedSize + 1, 1 << 50} {
		if _, err := DecompressAlloc(src, size); err != ErrSizeLimit {
			t.Errorf("declared size %d: err = %v, want ErrSizeLimit", size, err)
		}
	}
	// A truthful declared size still round-trips.
	out, err := DecompressAlloc(src, len("payload"))
	if err != nil || string(out) != "payload" {
		t.Fatalf("DecompressAlloc = %q, %v", out, err)
	}
	// A wrong-but-sane declared size is corruption, not success.
	if _, err := DecompressAlloc(src, len("payload")+3); err == nil {
		t.Error("over-declared size: want error, got nil")
	}
	if _, err := DecompressAlloc(src, 2); err == nil {
		t.Error("under-declared size: want error, got nil")
	}
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("hello"),
		[]byte("hello world hello world hello world"),
		bytes.Repeat([]byte("x"), 10000),
		bytes.Repeat([]byte("abcd"), 5000),
		[]byte(strings.Repeat(`{"id":1,"name":"test","tags":["a","b"]}`, 200)),
	}
	for i, src := range cases {
		t.Run(string(rune('a'+i)), func(t *testing.T) { roundTrip(t, src) })
	}
}

func TestCompressionRatioOnRepetitive(t *testing.T) {
	src := bytes.Repeat([]byte(`{"l_orderkey":1,"l_partkey":155190,"l_quantity":17},`), 1000)
	comp := roundTrip(t, src)
	ratio := float64(len(src)) / float64(len(comp))
	if ratio < 5 {
		t.Errorf("ratio %.1f too low for highly repetitive input (%d -> %d)",
			ratio, len(src), len(comp))
	}
}

func TestIncompressibleWithinBound(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	src := make([]byte, 100000)
	r.Read(src)
	comp := roundTrip(t, src)
	if len(comp) > CompressBound(len(src)) {
		t.Errorf("compressed %d exceeds bound %d", len(comp), CompressBound(len(src)))
	}
}

func TestShortInputs(t *testing.T) {
	for n := 0; n < 32; n++ {
		src := bytes.Repeat([]byte("ab"), n)[:n]
		roundTrip(t, src)
	}
}

func TestOverlappingMatches(t *testing.T) {
	// RLE-style data forces offset < matchLen (overlapping copies).
	roundTrip(t, bytes.Repeat([]byte{0xAA}, 1000))
	roundTrip(t, bytes.Repeat([]byte{1, 2}, 1000))
	roundTrip(t, bytes.Repeat([]byte{1, 2, 3}, 1000))
}

func TestLongLiteralRuns(t *testing.T) {
	// Random data produces literal runs needing length extension bytes.
	r := rand.New(rand.NewSource(7))
	src := make([]byte, 1000)
	r.Read(src)
	roundTrip(t, src)
}

func TestLongMatches(t *testing.T) {
	// >270-byte matches need match-length extension bytes.
	src := append([]byte("prefix-data-1234"), bytes.Repeat([]byte("z"), 5000)...)
	roundTrip(t, src)
}

func TestDecompressCorrupt(t *testing.T) {
	src := bytes.Repeat([]byte("hello world "), 100)
	comp := Compress(nil, src)
	dst := make([]byte, len(src))

	// Truncations must error or return short, never panic.
	for i := 0; i < len(comp); i++ {
		n, err := Decompress(dst, comp[:i])
		if err == nil && n == len(src) {
			t.Errorf("truncation at %d decoded fully", i)
		}
	}
	// Bit flips must never panic.
	for i := 0; i < len(comp); i++ {
		bad := append([]byte(nil), comp...)
		bad[i] ^= 0xFF
		Decompress(dst, bad)
	}
}

func TestDecompressShortDst(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 100)
	comp := Compress(nil, src)
	dst := make([]byte, len(src)/2)
	if _, err := Decompress(dst, comp); err == nil {
		t.Error("expected error on short destination")
	}
}

func TestZeroOffsetRejected(t *testing.T) {
	// token: 1 literal, match len 4; literal 'x'; offset 0 (invalid).
	bad := []byte{0x10, 'x', 0x00, 0x00}
	dst := make([]byte, 64)
	if _, err := Decompress(dst, bad); err == nil {
		t.Error("zero offset accepted")
	}
}

func TestOffsetBeyondStartRejected(t *testing.T) {
	// offset 5 with only 1 byte produced.
	bad := []byte{0x10, 'x', 0x05, 0x00}
	dst := make([]byte, 64)
	if _, err := Decompress(dst, bad); err == nil {
		t.Error("out-of-range offset accepted")
	}
}

// Property: compress→decompress is the identity for arbitrary bytes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		comp := Compress(nil, src)
		dst := make([]byte, len(src))
		n, err := Decompress(dst, comp)
		return err == nil && n == len(src) && bytes.Equal(dst, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: structured JSON-ish data compresses below 60%.
func TestStructuredDataCompresses(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		sb.WriteString(`{"id":`)
		sb.WriteString(strings.Repeat("9", 1+i%5))
		sb.WriteString(`,"status":"shipped","region":"EUROPE"}`)
	}
	src := []byte(sb.String())
	comp := roundTrip(t, src)
	if float64(len(comp)) > 0.6*float64(len(src)) {
		t.Errorf("only compressed %d -> %d", len(src), len(comp))
	}
}
