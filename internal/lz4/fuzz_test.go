package lz4

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip: compress→decompress must be the identity for any
// input, within the documented bound.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("a"))
	f.Add(bytes.Repeat([]byte("ab"), 100))
	f.Add([]byte(`{"id":1,"status":"shipped","status":"shipped"}`))
	f.Fuzz(func(t *testing.T, src []byte) {
		comp := Compress(nil, src)
		if len(comp) > CompressBound(len(src)) {
			t.Fatalf("compressed %d exceeds bound %d", len(comp), CompressBound(len(src)))
		}
		dst := make([]byte, len(src))
		n, err := Decompress(dst, comp)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if n != len(src) || !bytes.Equal(dst[:n], src) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecompress: arbitrary bytes must never panic or overrun.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{0x10, 'x', 0x01, 0x00}, 64)
	f.Add([]byte{0xF0, 0xFF, 0x01}, 16)
	f.Fuzz(func(t *testing.T, data []byte, size int) {
		if size < 0 || size > 1<<16 {
			return
		}
		dst := make([]byte, size)
		n, err := Decompress(dst, data)
		if err == nil && n > size {
			t.Fatalf("wrote %d into %d-byte buffer", n, size)
		}
	})
}
