// Package lz4 implements the LZ4 block format (compressor and
// decompressor) from scratch — the repository is stdlib-only, and the
// paper's Table 6 reports JSON tile storage "+LZ4-Tiles". The
// compressor is the classic greedy hash-chain-free scheme of the LZ4
// reference implementation: a 4-byte hash table proposes one candidate
// match per position.
//
// Block layout per sequence:
//
//	token (1B): high nibble = literal length (15 = extended),
//	            low nibble = match length - 4 (15 = extended)
//	[literal length extension: 255* + last byte]
//	literals
//	match offset (2B little endian, 1..65535)
//	[match length extension: 255* + last byte]
//
// The final sequence carries only literals. The format requires the
// last 5 bytes to be literals and the last match to begin at least 12
// bytes before the end; the compressor honors both.
package lz4

import (
	"encoding/binary"
	"errors"

	"repro/internal/obs"
)

const (
	minMatch     = 4
	lastLiterals = 5  // spec: last 5 bytes must be literals
	mfLimit      = 12 // spec: matches must not start within 12 bytes of the end
	maxOffset    = 65535
	hashLog      = 16
)

// ErrCorrupt reports an undecodable block.
var ErrCorrupt = errors.New("lz4: corrupt block")

// ErrShortDst reports a destination too small for the decompressed data.
var ErrShortDst = errors.New("lz4: destination too small")

// ErrSizeLimit reports a declared decompressed size beyond
// MaxDecompressedSize — a corrupt or hostile length field that must be
// rejected before any allocation happens.
var ErrSizeLimit = errors.New("lz4: declared size exceeds limit")

// MaxDecompressedSize bounds the decompressed size DecompressAlloc is
// willing to allocate for. Segment blocks hold at most one tile's
// column or binary-JSON payload, which is orders of magnitude below
// this; anything larger in a length field is corruption, not data.
const MaxDecompressedSize = 1 << 30

// DecompressAlloc allocates a buffer for the declared decompressed
// size and decodes src into it. Unlike Decompress, the declared size
// comes from untrusted input (a file's length field), so it is checked
// against MaxDecompressedSize *before* allocating — a corrupt block
// length yields ErrSizeLimit, not an OOM. The decode must fill the
// buffer exactly.
func DecompressAlloc(src []byte, declaredSize int) ([]byte, error) {
	if declaredSize < 0 || declaredSize > MaxDecompressedSize {
		return nil, ErrSizeLimit
	}
	dst := make([]byte, declaredSize)
	n, err := Decompress(dst, src)
	if err != nil {
		return nil, err
	}
	if n != declaredSize {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// CompressBound returns the maximum compressed size for an input of
// length n (the spec's worst-case expansion bound).
func CompressBound(n int) int { return n + n/255 + 16 }

func hash4(u uint32) uint32 {
	return (u * 2654435761) >> (32 - hashLog)
}

// Compress appends the LZ4 block encoding of src to dst and returns
// the extended slice. An empty src yields an empty block.
func Compress(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	if len(src) < mfLimit+minMatch {
		return emitLastLiterals(dst, src)
	}
	var table [1 << hashLog]int32 // candidate position + 1 per hash bucket
	anchor := 0
	pos := 0
	limit := len(src) - mfLimit
	for pos < limit {
		seq := binary.LittleEndian.Uint32(src[pos:])
		h := hash4(seq)
		cand := int(table[h]) - 1
		table[h] = int32(pos) + 1
		if cand < 0 || pos-cand > maxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != seq {
			pos++
			continue
		}
		// Extend the match forward; it must stop short of the final
		// literal region.
		matchEnd := pos + minMatch
		candEnd := cand + minMatch
		hardEnd := len(src) - lastLiterals
		for matchEnd < hardEnd && src[matchEnd] == src[candEnd] {
			matchEnd++
			candEnd++
		}
		// Extend the match backwards over pending literals.
		for pos > anchor && cand > 0 && src[pos-1] == src[cand-1] {
			pos--
			cand--
		}
		matchLen := matchEnd - pos
		offset := pos - cand
		dst = emitSequence(dst, src[anchor:pos], offset, matchLen)
		pos = matchEnd
		anchor = pos
		if pos < limit && pos >= 2 {
			// Prime the table with an interior position to improve
			// the next search, as the reference implementation does.
			mid := pos - 2
			table[hash4(binary.LittleEndian.Uint32(src[mid:]))] = int32(mid) + 1
		}
	}
	return emitLastLiterals(dst, src[anchor:])
}

func emitSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	mlCode := matchLen - minMatch
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if mlCode >= 15 {
		token |= 15
	} else {
		token |= byte(mlCode)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLenExt(dst, litLen-15)
	}
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if mlCode >= 15 {
		dst = appendLenExt(dst, mlCode-15)
	}
	return dst
}

func emitLastLiterals(dst, literals []byte) []byte {
	litLen := len(literals)
	if litLen >= 15 {
		dst = append(dst, 15<<4)
		dst = appendLenExt(dst, litLen-15)
	} else {
		dst = append(dst, byte(litLen)<<4)
	}
	return append(dst, literals...)
}

func appendLenExt(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// Decompress decodes an LZ4 block into dst, which must be exactly the
// original length. It returns the number of bytes written. Successful
// decompressions report their output size to the process-wide
// observability registry (bytes_decompressed).
func Decompress(dst, src []byte) (int, error) {
	n, err := decompress(dst, src)
	if err == nil {
		obs.BytesDecompressed.Add(int64(n))
	}
	return n, err
}

func decompress(dst, src []byte) (int, error) {
	if len(src) == 0 {
		return 0, nil
	}
	d := 0
	s := 0
	for {
		if s >= len(src) {
			return 0, ErrCorrupt
		}
		token := src[s]
		s++
		// Literals.
		litLen := int(token >> 4)
		if litLen == 15 {
			n, ns, err := readLenExt(src, s)
			if err != nil {
				return 0, err
			}
			litLen += n
			s = ns
		}
		if s+litLen > len(src) || d+litLen > len(dst) {
			return 0, corruptOrShort(d+litLen, len(dst))
		}
		copy(dst[d:], src[s:s+litLen])
		s += litLen
		d += litLen
		if s == len(src) {
			return d, nil // final sequence: literals only
		}
		// Match.
		if s+2 > len(src) {
			return 0, ErrCorrupt
		}
		offset := int(src[s]) | int(src[s+1])<<8
		s += 2
		if offset == 0 || offset > d {
			return 0, ErrCorrupt
		}
		matchLen := int(token&0xF) + minMatch
		if token&0xF == 15 {
			n, ns, err := readLenExt(src, s)
			if err != nil {
				return 0, err
			}
			matchLen += n
			s = ns
		}
		if d+matchLen > len(dst) {
			return 0, ErrShortDst
		}
		// Overlapping copy: byte-wise when the regions overlap.
		if offset >= matchLen {
			copy(dst[d:], dst[d-offset:d-offset+matchLen])
			d += matchLen
		} else {
			for i := 0; i < matchLen; i++ {
				dst[d] = dst[d-offset]
				d++
			}
		}
	}
}

func readLenExt(src []byte, s int) (int, int, error) {
	n := 0
	for {
		if s >= len(src) {
			return 0, 0, ErrCorrupt
		}
		b := src[s]
		s++
		n += int(b)
		if b != 255 {
			return n, s, nil
		}
	}
}

func corruptOrShort(need, have int) error {
	if need > have {
		return ErrShortDst
	}
	return ErrCorrupt
}
