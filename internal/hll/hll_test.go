package hll

import (
	"fmt"
	"math"
	"testing"
)

func relErr(est, actual float64) float64 {
	return math.Abs(est-actual) / actual
}

func TestEstimateAccuracy(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 10000, 100000} {
		s := New()
		for i := 0; i < n; i++ {
			s.AddString(fmt.Sprintf("value-%d", i))
		}
		est := s.Estimate()
		// p=12 gives ~1.6% standard error; allow 5 sigma plus
		// small-range slack.
		tol := 0.10
		if re := relErr(est, float64(n)); re > tol {
			t.Errorf("n=%d: estimate %.0f off by %.2f%%", n, est, re*100)
		}
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := New()
	for i := 0; i < 100000; i++ {
		s.AddString(fmt.Sprintf("v%d", i%50))
	}
	if est := s.Estimate(); est < 40 || est > 60 {
		t.Errorf("estimate %.1f for 50 distinct", est)
	}
}

func TestEmptyEstimateZero(t *testing.T) {
	if est := New().Estimate(); est != 0 {
		t.Errorf("empty sketch estimates %f", est)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, u := New(), New(), New()
	for i := 0; i < 5000; i++ {
		v := fmt.Sprintf("a%d", i)
		a.AddString(v)
		u.AddString(v)
	}
	for i := 0; i < 5000; i++ {
		v := fmt.Sprintf("b%d", i)
		b.AddString(v)
		u.AddString(v)
	}
	a.Merge(b)
	if ae, ue := a.Estimate(), u.Estimate(); ae != ue {
		t.Errorf("merged estimate %.2f != union estimate %.2f", ae, ue)
	}
}

func TestMergeOverlap(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 1000; i++ {
		a.AddString(fmt.Sprintf("x%d", i))
		b.AddString(fmt.Sprintf("x%d", i+500)) // 500 overlap
	}
	a.Merge(b)
	if est := a.Estimate(); relErr(est, 1500) > 0.10 {
		t.Errorf("overlap merge estimate %.0f, want ~1500", est)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New()
	a.AddString("x")
	c := a.Clone()
	c.AddString("y")
	// a must be unaffected by additions to the clone; estimates of
	// one- and two-element sketches differ.
	if a.Estimate() == c.Estimate() {
		t.Error("clone shares registers with original")
	}
}

func TestIntAndStringHashesDiffer(t *testing.T) {
	s1, s2 := New(), New()
	for i := int64(0); i < 1000; i++ {
		s1.AddInt64(i)
		s2.AddString(fmt.Sprintf("%d", i))
	}
	if relErr(s1.Estimate(), 1000) > 0.10 {
		t.Errorf("int estimate %.0f", s1.Estimate())
	}
	if relErr(s2.Estimate(), 1000) > 0.10 {
		t.Errorf("string estimate %.0f", s2.Estimate())
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New().SizeBytes(); got != m {
		t.Errorf("SizeBytes = %d, want %d", got, m)
	}
}
