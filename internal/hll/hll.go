// Package hll implements HyperLogLog cardinality sketches
// (Flajolet et al. [25]), the primary source of domain statistics for
// the query optimizer integration (paper §4.6). Sketches are
// register-wise mergeable, which is what lets per-tile statistics be
// aggregated into relation-level statistics.
package hll

import "math"

// Precision is the number of index bits. 2^Precision registers of one
// byte each: p=12 gives 4096 registers (~0.016 relative error) at 4 KiB
// per sketch, comfortably inside the paper's "restrict the maximum
// amount of memory used for query optimization" budget.
const Precision = 12

const m = 1 << Precision

// Sketch is a HyperLogLog cardinality estimator. The zero value is
// not usable; call New.
type Sketch struct {
	registers []uint8
}

// New returns an empty sketch.
func New() *Sketch { return &Sketch{registers: make([]uint8, m)} }

// AddHash inserts a pre-hashed 64-bit item.
func (s *Sketch) AddHash(h uint64) {
	idx := h >> (64 - Precision)
	rest := h<<Precision | 1<<(Precision-1) // guard bit bounds rho
	rho := uint8(1)
	for rest&(1<<63) == 0 {
		rho++
		rest <<= 1
	}
	if rho > s.registers[idx] {
		s.registers[idx] = rho
	}
}

// AddString inserts a string item.
func (s *Sketch) AddString(v string) { s.AddHash(hashString(v)) }

// AddInt64 inserts an integer item.
func (s *Sketch) AddInt64(v int64) { s.AddHash(HashUint64(uint64(v))) }

// Estimate returns the approximate number of distinct items added.
func (s *Sketch) Estimate() float64 {
	sum := 0.0
	zeros := 0
	for _, r := range s.registers {
		sum += 1.0 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/float64(m))
	est := alpha * m * m / sum
	// Small-range correction: linear counting.
	if est <= 2.5*m && zeros > 0 {
		est = float64(m) * math.Log(float64(m)/float64(zeros))
	}
	return est
}

// Merge folds other into s (register-wise max). Sketches built from
// the union of two streams and the merge of their sketches are
// identical — the property exploited for tile→table aggregation.
func (s *Sketch) Merge(other *Sketch) {
	for i, r := range other.registers {
		if r > s.registers[i] {
			s.registers[i] = r
		}
	}
}

// Clone returns an independent copy.
func (s *Sketch) Clone() *Sketch {
	c := New()
	copy(c.registers, s.registers)
	return c
}

// SizeBytes returns the register footprint.
func (s *Sketch) SizeBytes() int { return len(s.registers) }

// Registers exposes the raw register array for serialization (the
// segment footer persists relation statistics). Read-only.
func (s *Sketch) Registers() []uint8 { return s.registers }

// FromRegisters reconstructs a sketch from serialized registers.
// Inputs of the wrong length are truncated or zero-padded to the
// sketch size so corrupt statistics degrade the estimate instead of
// panicking.
func FromRegisters(regs []uint8) *Sketch {
	c := New()
	copy(c.registers, regs)
	return c
}

// hashString is FNV-1a with a SplitMix64 finalizer; HLL needs good
// high-bit diffusion because the register index is the top bits.
func hashString(v string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= prime64
	}
	return mix(h)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// HashString exposes the sketch's string hash so callers hashing other
// payload shapes (e.g. float bit patterns) stay consistent.
func HashString(v string) uint64 { return hashString(v) }

// HashUint64 hashes an integer payload.
func HashUint64(v uint64) uint64 { return mix(v ^ 0xA24BAED4963EE407) }
