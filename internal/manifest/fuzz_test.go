package manifest

import (
	"bytes"
	"testing"
)

// FuzzManifest throws arbitrary bytes at the manifest decoder: it
// must never panic, and anything it accepts must re-encode and decode
// to the same catalog (the recovery path trusts accepted manifests
// completely).
func FuzzManifest(f *testing.F) {
	f.Add([]byte(""))
	f.Add((&Manifest{Version: 1, NextID: 1}).Encode())
	f.Add(testManifest().Encode())
	enc := testManifest().Encode()
	f.Add(enc[:len(enc)-3])
	f.Add(append([]byte("JTMAN001 0000000000000000\n"), []byte("{}")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("accepted manifest fails round trip: %v", err)
		}
		if !bytes.Equal(m.Encode(), again.Encode()) {
			t.Fatal("round trip not stable")
		}
	})
}
