package manifest

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testManifest() *Manifest {
	return &Manifest{
		Version: 3,
		NextID:  5,
		Segments: []Segment{
			{ID: 1, File: SegmentFileName(1), Rows: 100, Bytes: 4096},
			{ID: 4, File: SegmentFileName(4), Rows: 25, Bytes: 1024},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := testManifest()
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Version != m.Version || got.NextID != m.NextID || len(got.Segments) != len(m.Segments) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	for i, s := range got.Segments {
		if s != m.Segments[i] {
			t.Fatalf("segment %d: %+v vs %+v", i, s, m.Segments[i])
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := testManifest().Encode()
	cases := map[string][]byte{
		"empty":        nil,
		"no header":    []byte("{}"),
		"bad magic":    append([]byte("XXMAN001 0000000000000000\n"), enc[26:]...),
		"flipped body": append(append([]byte{}, enc[:len(enc)-1]...), enc[len(enc)-1]^1),
		"truncated":    enc[:len(enc)/2],
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func TestDecodeRejectsInconsistentSegments(t *testing.T) {
	cases := []*Manifest{
		{Version: 1, NextID: 1, Segments: []Segment{{ID: 1, File: SegmentFileName(1)}}},           // id >= next_id
		{Version: 1, NextID: 5, Segments: []Segment{{ID: 1, File: "other.seg"}}},                  // wrong name
		{Version: 1, NextID: 5, Segments: []Segment{{ID: 1, File: SegmentFileName(1), Rows: -1}}}, // negative rows
		{Version: 1, NextID: 5, Segments: []Segment{
			{ID: 1, File: SegmentFileName(1)}, {ID: 1, File: SegmentFileName(1)},
		}}, // duplicate
	}
	for i, m := range cases {
		if _, err := Decode(m.Encode()); err == nil {
			t.Errorf("case %d: Decode accepted inconsistent manifest", i)
		}
	}
}

func TestCommitLoad(t *testing.T) {
	dir := t.TempDir()
	if m, err := Load(dir); err != nil || m != nil {
		t.Fatalf("Load of empty dir = %v, %v; want nil, nil", m, err)
	}
	want := testManifest()
	if err := Commit(dir, want); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	got, err := Load(dir)
	if err != nil || got == nil {
		t.Fatalf("Load: %v, %v", got, err)
	}
	if got.Version != want.Version || len(got.Segments) != 2 {
		t.Fatalf("Load = %+v, want %+v", got, want)
	}
	// A second commit replaces the generation atomically.
	want.Version++
	want.Segments = want.Segments[:1]
	if err := Commit(dir, want); err != nil {
		t.Fatalf("Commit 2: %v", err)
	}
	got, err = Load(dir)
	if err != nil || got.Version != want.Version || len(got.Segments) != 1 {
		t.Fatalf("Load 2 = %+v, %v", got, err)
	}
}

func TestCommitRenameFailureKeepsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	old := testManifest()
	if err := Commit(dir, old); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	Rename = func(oldpath, newpath string) error { return fmt.Errorf("injected crash") }
	defer func() { Rename = os.Rename }()
	next := testManifest()
	next.Version++
	if err := Commit(dir, next); err == nil {
		t.Fatal("Commit with failing rename succeeded")
	}
	got, err := Load(dir)
	if err != nil || got.Version != old.Version {
		t.Fatalf("old generation lost: %+v, %v", got, err)
	}
	if _, err := os.Stat(filepath.Join(dir, FileName+tmpSuffix)); !os.IsNotExist(err) {
		t.Fatalf("temporary manifest left behind: %v", err)
	}
}

func TestRecover(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		Version:  2,
		NextID:   3,
		Segments: []Segment{{ID: 0, File: SegmentFileName(0), Rows: 10, Bytes: 100}},
	}
	if err := Commit(dir, m); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	writeFile := func(name string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(SegmentFileName(0))             // live: kept
	writeFile(SegmentFileName(2))             // orphan: removed
	writeFile(SegmentFileName(7) + tmpSuffix) // temporary: removed
	writeFile("notes.txt")                    // unrelated: kept

	got, removed, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if removed != 2 {
		t.Fatalf("removed %d files, want 2", removed)
	}
	if got.Version != 2 || len(got.Segments) != 1 {
		t.Fatalf("Recover manifest = %+v", got)
	}
	for name, want := range map[string]bool{
		SegmentFileName(0): true,
		SegmentFileName(2): false,
		"notes.txt":        true,
	} {
		_, err := os.Stat(filepath.Join(dir, name))
		if exists := err == nil; exists != want {
			t.Errorf("%s: exists=%v, want %v", name, exists, want)
		}
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	m, removed, err := Recover(t.TempDir())
	if err != nil || removed != 0 {
		t.Fatalf("Recover: %d, %v", removed, err)
	}
	if m.Version != 0 || m.NextID != 0 || len(m.Segments) != 0 {
		t.Fatalf("fresh manifest = %+v", m)
	}
}

func TestSegmentFileName(t *testing.T) {
	if got := SegmentFileName(42); got != "seg-000042.seg" {
		t.Fatalf("SegmentFileName(42) = %q", got)
	}
	if !IsSegmentFileName("seg-000042.seg") || IsSegmentFileName("MANIFEST") {
		t.Fatal("IsSegmentFileName misclassifies")
	}
}
