package manifest

import (
	"testing"

	"repro/internal/blockstore"
)

func TestStoreCommitLoadRoundTrip(t *testing.T) {
	s := blockstore.NewMem()

	// A store without a manifest is a fresh table.
	if m, err := LoadStore(s); err != nil || m != nil {
		t.Fatalf("LoadStore(empty) = %+v, %v; want nil, nil", m, err)
	}

	want := testManifest()
	if err := CommitStore(s, want); err != nil {
		t.Fatalf("CommitStore: %v", err)
	}
	got, err := LoadStore(s)
	if err != nil {
		t.Fatalf("LoadStore: %v", err)
	}
	if got.Version != want.Version || got.NextID != want.NextID || len(got.Segments) != len(want.Segments) {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}

	// CommitStore replaces the generation atomically via Put.
	want.Version++
	if err := CommitStore(s, want); err != nil {
		t.Fatalf("re-CommitStore: %v", err)
	}
	if got, _ := LoadStore(s); got.Version != want.Version {
		t.Fatalf("after re-commit, version = %d, want %d", got.Version, want.Version)
	}
}

func TestRecoverStore(t *testing.T) {
	s := blockstore.NewMem()
	if err := CommitStore(s, testManifest()); err != nil {
		t.Fatal(err)
	}
	// Live segment, orphan segment (no committed reference), leftover
	// temporary, and an unrelated object.
	s.Put(SegmentFileName(1), []byte("live"))
	s.Put(SegmentFileName(2), []byte("orphan"))
	s.Put("seg-000002.seg.tmp", []byte("torn"))
	s.Put("notes.txt", []byte("keep"))

	m, removed, err := RecoverStore(s)
	if err != nil {
		t.Fatalf("RecoverStore: %v", err)
	}
	if m.Version != 3 || removed != 2 {
		t.Fatalf("RecoverStore = version %d, removed %d; want 3, 2", m.Version, removed)
	}
	names, _ := s.List()
	want := []string{FileName, "notes.txt", SegmentFileName(1)}
	if len(names) != len(want) {
		t.Fatalf("surviving objects = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("surviving objects = %v, want %v", names, want)
		}
	}
}

func TestRecoverStoreEmpty(t *testing.T) {
	m, removed, err := RecoverStore(blockstore.NewMem())
	if err != nil || removed != 0 {
		t.Fatalf("RecoverStore: %d, %v", removed, err)
	}
	if m.Version != 0 || m.NextID != 0 || len(m.Segments) != 0 {
		t.Fatalf("fresh manifest = %+v", m)
	}
}
